//===- tests/property_random_apps_test.cpp - Randomized app property tests -===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Property-style stress tests: randomly generated applications (chains of
/// vector kernels over shared buffers, with interleaved host writes and
/// reads) must produce bit-identical results under FluidiCL and under each
/// single device. This hammers the version tracker, the DH stage, the
/// merge, and the location tracking far beyond the structured benchmarks.
///
//===----------------------------------------------------------------------===//

#include "fluidicl/Runtime.h"
#include "runtime/SingleDevice.h"
#include "support/Rng.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

#include <vector>

using namespace fcl;

namespace {

/// One randomly generated application step.
struct Step {
  enum KindT { VecAdd, Saxpy, Scale, HostWrite, HostRead } Kind;
  int A = 0, B = 0, C = 0; // Buffer indices.
  double Alpha = 1.0;
};

/// A reproducible random program over NumBufs equal-size buffers.
struct Program {
  int64_t N = 256;
  int NumBufs = 4;
  std::vector<Step> Steps;
};

Program generate(uint64_t Seed) {
  Rng R(Seed);
  Program P;
  P.NumBufs = 3 + static_cast<int>(R.nextBelow(3));
  int NumSteps = 6 + static_cast<int>(R.nextBelow(10));
  for (int I = 0; I < NumSteps; ++I) {
    Step S;
    switch (R.nextBelow(8)) {
    case 0:
    case 1:
    case 2:
      S.Kind = Step::VecAdd;
      break;
    case 3:
    case 4:
      S.Kind = Step::Saxpy;
      break;
    case 5:
      S.Kind = Step::Scale;
      break;
    case 6:
      S.Kind = Step::HostWrite;
      break;
    default:
      S.Kind = Step::HostRead;
      break;
    }
    S.A = static_cast<int>(R.nextBelow(static_cast<uint64_t>(P.NumBufs)));
    S.B = static_cast<int>(R.nextBelow(static_cast<uint64_t>(P.NumBufs)));
    S.C = static_cast<int>(R.nextBelow(static_cast<uint64_t>(P.NumBufs)));
    // Keep values bounded so repeated SAXPY chains stay finite.
    S.Alpha = 0.25 + R.nextDouble() * 0.5;
    P.Steps.push_back(S);
  }
  return P;
}

/// Runs \p P under \p RT and returns the final contents of every buffer.
std::vector<std::vector<float>> execute(runtime::HeteroRuntime &RT,
                                        const Program &P, uint64_t Seed) {
  Rng R(Seed ^ 0xDA7A);
  uint64_t Bytes = static_cast<uint64_t>(P.N) * 4;
  std::vector<runtime::BufferId> Ids;
  std::vector<float> Init(static_cast<size_t>(P.N));
  for (int B = 0; B < P.NumBufs; ++B) {
    Ids.push_back(RT.createBuffer(Bytes, "buf" + std::to_string(B)));
    for (float &V : Init)
      V = static_cast<float>(R.nextInRange(0.1, 1.0));
    RT.writeBuffer(Ids[static_cast<size_t>(B)], Init.data(), Bytes);
  }

  kern::NDRange Range = kern::NDRange::of1D(static_cast<uint64_t>(P.N), 32);
  std::vector<float> Scratch(static_cast<size_t>(P.N));
  for (const Step &S : P.Steps) {
    using runtime::KArg;
    switch (S.Kind) {
    case Step::VecAdd:
      if (S.C == S.A || S.C == S.B)
        break; // Keep out buffers distinct from inputs for this kernel.
      RT.launchKernel("vec_add", Range,
                      {KArg::buffer(Ids[static_cast<size_t>(S.A)]),
                       KArg::buffer(Ids[static_cast<size_t>(S.B)]),
                       KArg::buffer(Ids[static_cast<size_t>(S.C)]),
                       KArg::i64(P.N)});
      break;
    case Step::Saxpy:
      if (S.A == S.B)
        break;
      RT.launchKernel("saxpy", Range,
                      {KArg::buffer(Ids[static_cast<size_t>(S.A)]),
                       KArg::buffer(Ids[static_cast<size_t>(S.B)]),
                       KArg::f64(S.Alpha), KArg::i64(P.N)});
      break;
    case Step::Scale:
      if (S.A == S.B)
        break;
      RT.launchKernel("vec_scale", Range,
                      {KArg::buffer(Ids[static_cast<size_t>(S.A)]),
                       KArg::buffer(Ids[static_cast<size_t>(S.B)]),
                       KArg::f64(S.Alpha), KArg::i64(P.N)});
      break;
    case Step::HostWrite:
      for (float &V : Scratch)
        V = static_cast<float>(R.nextInRange(0.1, 1.0));
      RT.writeBuffer(Ids[static_cast<size_t>(S.A)], Scratch.data(), Bytes);
      break;
    case Step::HostRead:
      // Mid-program read: exercises location tracking + coherence.
      RT.readBuffer(Ids[static_cast<size_t>(S.A)], Scratch.data(), Bytes);
      break;
    }
  }

  std::vector<std::vector<float>> Out;
  for (int B = 0; B < P.NumBufs; ++B) {
    std::vector<float> V(static_cast<size_t>(P.N));
    RT.readBuffer(Ids[static_cast<size_t>(B)], V.data(), Bytes);
    Out.push_back(std::move(V));
  }
  RT.finish();
  return Out;
}

class RandomAppTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomAppTest, FluidiclMatchesCpuOnlyBitExactly) {
  uint64_t Seed = GetParam();
  Program P = generate(Seed);

  std::vector<std::vector<float>> Want;
  {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
    runtime::SingleDeviceRuntime RT(Ctx, mcl::DeviceKind::Cpu);
    Want = execute(RT, P, Seed);
  }
  std::vector<std::vector<float>> Got;
  {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
    fluidicl::Runtime RT(Ctx);
    Got = execute(RT, P, Seed);
  }
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t B = 0; B < Want.size(); ++B)
    EXPECT_EQ(Got[B], Want[B]) << "buffer " << B << " seed " << Seed;
}

TEST_P(RandomAppTest, FluidiclOptionsDoNotChangeResults) {
  uint64_t Seed = GetParam();
  Program P = generate(Seed);

  std::vector<std::vector<float>> Base;
  {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
    fluidicl::Runtime RT(Ctx);
    Base = execute(RT, P, Seed);
  }
  fluidicl::Options Variants[3];
  Variants[0].AbortPolicy = hw::AbortPolicyKind::AtStart;
  Variants[0].CpuWorkGroupSplit = false;
  Variants[1].RegionTransfers = true;
  Variants[2].InitialChunkPct = 25.0;
  Variants[2].StepPct = 0.0;
  Variants[2].BufferPool = false;
  for (const fluidicl::Options &Opts : Variants) {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
    fluidicl::Runtime RT(Ctx, Opts);
    std::vector<std::vector<float>> Got = execute(RT, P, Seed);
    for (size_t B = 0; B < Base.size(); ++B)
      EXPECT_EQ(Got[B], Base[B]) << "buffer " << B << " seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAppTest,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
