//===- tests/sim_test.cpp - Discrete-event simulator tests -----------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <vector>

using namespace fcl;
using namespace fcl::sim;

namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator Sim;
  EXPECT_EQ(Sim.now().nanos(), 0);
  EXPECT_FALSE(Sim.hasPending());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator Sim;
  std::vector<int> Order;
  Sim.scheduleAfter(Duration::nanoseconds(30), [&] { Order.push_back(3); });
  Sim.scheduleAfter(Duration::nanoseconds(10), [&] { Order.push_back(1); });
  Sim.scheduleAfter(Duration::nanoseconds(20), [&] { Order.push_back(2); });
  Sim.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(Sim.now().nanos(), 30);
}

TEST(SimulatorTest, EqualTimestampsFireInScheduleOrder) {
  Simulator Sim;
  std::vector<int> Order;
  for (int I = 0; I < 10; ++I)
    Sim.scheduleAfter(Duration::nanoseconds(5), [&, I] { Order.push_back(I); });
  Sim.run();
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Order[static_cast<size_t>(I)], I);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator Sim;
  TimePoint Seen;
  Sim.scheduleAt(TimePoint(12345), [&] { Seen = Sim.now(); });
  Sim.run();
  EXPECT_EQ(Seen.nanos(), 12345);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator Sim;
  std::vector<int> Order;
  Sim.scheduleAfter(Duration::nanoseconds(10), [&] {
    Order.push_back(1);
    Sim.scheduleAfter(Duration::nanoseconds(5), [&] { Order.push_back(2); });
  });
  Sim.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2}));
  EXPECT_EQ(Sim.now().nanos(), 15);
}

TEST(SimulatorTest, ZeroDelayEventFiresAtSameTime) {
  Simulator Sim;
  bool Ran = false;
  Sim.scheduleAfter(Duration::zero(), [&] { Ran = true; });
  Sim.run();
  EXPECT_TRUE(Ran);
  EXPECT_EQ(Sim.now().nanos(), 0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator Sim;
  bool Ran = false;
  EventId Id = Sim.scheduleAfter(Duration::nanoseconds(10), [&] { Ran = true; });
  EXPECT_TRUE(Sim.cancel(Id));
  Sim.run();
  EXPECT_FALSE(Ran);
}

TEST(SimulatorTest, CancelReturnsFalseWhenAlreadyFired) {
  Simulator Sim;
  EventId Id = Sim.scheduleAfter(Duration::nanoseconds(1), [] {});
  Sim.run();
  EXPECT_FALSE(Sim.cancel(Id));
}

TEST(SimulatorTest, CancelTwiceIsNoOp) {
  Simulator Sim;
  EventId Id = Sim.scheduleAfter(Duration::nanoseconds(1), [] {});
  EXPECT_TRUE(Sim.cancel(Id));
  EXPECT_FALSE(Sim.cancel(Id));
  Sim.run();
}

TEST(SimulatorTest, DefaultEventIdIsInvalid) {
  Simulator Sim;
  EXPECT_FALSE(Sim.cancel(EventId()));
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator Sim;
  int Count = 0;
  Sim.scheduleAfter(Duration::nanoseconds(1), [&] { ++Count; });
  Sim.scheduleAfter(Duration::nanoseconds(2), [&] { ++Count; });
  EXPECT_TRUE(Sim.step());
  EXPECT_EQ(Count, 1);
  EXPECT_TRUE(Sim.step());
  EXPECT_EQ(Count, 2);
  EXPECT_FALSE(Sim.step());
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator Sim;
  std::vector<int> Order;
  Sim.scheduleAfter(Duration::nanoseconds(10), [&] { Order.push_back(1); });
  Sim.scheduleAfter(Duration::nanoseconds(30), [&] { Order.push_back(2); });
  Sim.runUntil(TimePoint(20));
  EXPECT_EQ(Order, (std::vector<int>{1}));
  EXPECT_EQ(Sim.now().nanos(), 20);
  Sim.run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RunUntilIncludesDeadlineEvents) {
  Simulator Sim;
  bool Ran = false;
  Sim.scheduleAt(TimePoint(20), [&] { Ran = true; });
  Sim.runUntil(TimePoint(20));
  EXPECT_TRUE(Ran);
}

TEST(SimulatorTest, RunWhileNotStopsWhenPredicateHolds) {
  Simulator Sim;
  int Count = 0;
  for (int I = 1; I <= 10; ++I)
    Sim.scheduleAfter(Duration::nanoseconds(I), [&] { ++Count; });
  bool Satisfied = Sim.runWhileNot([&] { return Count >= 4; });
  EXPECT_TRUE(Satisfied);
  EXPECT_EQ(Count, 4);
}

TEST(SimulatorTest, RunWhileNotReturnsFalseWhenQueueDrains) {
  Simulator Sim;
  Sim.scheduleAfter(Duration::nanoseconds(1), [] {});
  EXPECT_FALSE(Sim.runWhileNot([] { return false; }));
}

TEST(SimulatorTest, RunWhileNotImmediateWhenAlreadyTrue) {
  Simulator Sim;
  bool Ran = false;
  Sim.scheduleAfter(Duration::nanoseconds(1), [&] { Ran = true; });
  EXPECT_TRUE(Sim.runWhileNot([] { return true; }));
  EXPECT_FALSE(Ran);
}

TEST(SimulatorTest, EventsExecutedCounts) {
  Simulator Sim;
  for (int I = 0; I < 5; ++I)
    Sim.scheduleAfter(Duration::nanoseconds(I), [] {});
  Sim.run();
  EXPECT_EQ(Sim.eventsExecuted(), 5u);
}

TEST(SimulatorTest, ManyCancellationsCompactWithoutLoss) {
  Simulator Sim;
  int Ran = 0;
  std::vector<EventId> Ids;
  // Interleave survivors and cancels at a scale that triggers compaction.
  for (int I = 0; I < 5000; ++I) {
    if (I % 2 == 0) {
      Ids.push_back(
          Sim.scheduleAfter(Duration::nanoseconds(I), [&] { ++Ran; }));
    } else {
      EventId Doomed =
          Sim.scheduleAfter(Duration::nanoseconds(I), [&] { ++Ran; });
      EXPECT_TRUE(Sim.cancel(Doomed));
    }
  }
  // Cancel half of the survivors too.
  for (size_t I = 0; I < Ids.size(); I += 2)
    EXPECT_TRUE(Sim.cancel(Ids[I]));
  Sim.run();
  EXPECT_EQ(Ran, 1250);
}

TEST(SimulatorTest, TombstoneHealthCountersTrackCancellations) {
  Simulator Sim;
  EXPECT_EQ(Sim.pendingTombstones(), 0u);
  EXPECT_EQ(Sim.tombstoneSkips(), 0u);
  std::vector<EventId> Doomed;
  for (int I = 0; I < 8; ++I) {
    EventId Id = Sim.scheduleAfter(Duration::nanoseconds(I), [] {});
    if (I % 2 == 1)
      Doomed.push_back(Id);
  }
  for (EventId Id : Doomed)
    EXPECT_TRUE(Sim.cancel(Id));
  // Cancelled slots linger as tombstones until their queue entries pop.
  EXPECT_EQ(Sim.pendingTombstones(), Doomed.size());
  Sim.run();
  // Every cancelled entry was popped and skipped; the vector was cleared
  // once the last live callback fired.
  EXPECT_EQ(Sim.tombstoneSkips(), Doomed.size());
  EXPECT_EQ(Sim.pendingTombstones(), 0u);
  EXPECT_EQ(Sim.eventsExecuted(), 4u);
}

TEST(SimulatorTest, CompactionRunsCountedUnderHeavyCancellation) {
  Simulator Sim;
  // Enough tombstones to cross the size > 1024 && Live * 2 < size
  // compaction threshold while cancelling.
  std::vector<EventId> Ids;
  for (int I = 0; I < 4000; ++I)
    Ids.push_back(Sim.scheduleAfter(Duration::nanoseconds(I), [] {}));
  for (size_t I = 0; I < Ids.size(); I += 4)
    for (size_t J = 0; J < 3 && I + J < Ids.size(); ++J)
      EXPECT_TRUE(Sim.cancel(Ids[I + J]));
  EXPECT_GE(Sim.compactionRuns(), 1u);
  Sim.run();
  EXPECT_EQ(Sim.eventsExecuted(), 1000u);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator Sim;
  Sim.scheduleAfter(Duration::nanoseconds(100), [] {});
  Sim.run();
  EXPECT_DEATH(Sim.scheduleAt(TimePoint(5), [] {}), "past");
}

TEST(SimulatorDeathTest, NegativeDelayAborts) {
  Simulator Sim;
  EXPECT_DEATH(Sim.scheduleAfter(Duration::nanoseconds(-1), [] {}),
               "negative");
}

} // namespace
