//===- tests/workload_test.cpp - Workload / driver tests -------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluidicl/Runtime.h"
#include "work/Driver.h"
#include "work/Workload.h"

#include <gtest/gtest.h>

using namespace fcl;
using namespace fcl::work;

namespace {

TEST(WorkloadTest, PaperSuiteHasSixBenchmarks) {
  auto Suite = paperSuite();
  ASSERT_EQ(Suite.size(), 6u);
  EXPECT_EQ(Suite[0].Name, "ATAX(8192)");
  EXPECT_EQ(Suite[1].Name, "BICG(4096)");
  EXPECT_EQ(Suite[2].Name, "CORR(2048)");
  EXPECT_EQ(Suite[3].Name, "GESUMMV(4096)");
  EXPECT_EQ(Suite[4].Name, "SYRK(1024)");
  EXPECT_EQ(Suite[5].Name, "SYR2K(1536)");
}

TEST(WorkloadTest, KernelCountsMatchTable2) {
  auto Suite = paperSuite();
  EXPECT_EQ(Suite[0].Calls.size(), 2u); // ATAX
  EXPECT_EQ(Suite[1].Calls.size(), 2u); // BICG
  EXPECT_EQ(Suite[2].Calls.size(), 4u); // CORR
  EXPECT_EQ(Suite[3].Calls.size(), 1u); // GESUMMV
  EXPECT_EQ(Suite[4].Calls.size(), 1u); // SYRK
  EXPECT_EQ(Suite[5].Calls.size(), 1u); // SYR2K
}

TEST(WorkloadTest, BufferArgumentsReferenceDeclaredBuffers) {
  for (const Workload &W : paperSuite()) {
    for (const KernelCall &Call : W.Calls) {
      for (const runtime::KArg &A : Call.Args) {
        if (A.IsBuffer) {
          EXPECT_LT(A.Buf, W.Buffers.size()) << W.Name;
        }
      }
    }
    for (size_t R : W.ResultBuffers)
      EXPECT_LT(R, W.Buffers.size()) << W.Name;
    EXPECT_FALSE(W.ResultBuffers.empty()) << W.Name;
  }
}

TEST(WorkloadTest, GroupCountsPositive) {
  for (const Workload &W : paperSuite()) {
    auto Counts = W.groupCounts();
    ASSERT_EQ(Counts.size(), W.Calls.size());
    for (uint64_t C : Counts)
      EXPECT_GT(C, 0u);
  }
}

TEST(WorkloadTest, InitHostDataDeterministic) {
  Workload W = testSuite()[0];
  auto A = initHostData(W);
  auto B = initHostData(W);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I], B[I]);
}

TEST(WorkloadTest, InitHostDataFillsPositiveFloats) {
  Workload W = testSuite()[3];
  auto Bufs = initHostData(W);
  for (const auto &B : Bufs) {
    const float *F = reinterpret_cast<const float *>(B.data());
    for (size_t I = 0; I < B.size() / 4; ++I) {
      EXPECT_GT(F[I], 0.0f);
      EXPECT_LE(F[I], 1.0f);
    }
  }
}

TEST(DriverTest, ComputeReferenceMatchesManualAtax) {
  Workload W = makeAtax(64, 64);
  auto Bufs = initHostData(W);
  auto Orig = Bufs;
  computeReference(W, Bufs);
  const float *A = reinterpret_cast<const float *>(Orig[0].data());
  const float *X = reinterpret_cast<const float *>(Orig[1].data());
  const float *Y = reinterpret_cast<const float *>(Bufs[3].data());
  for (int64_t J = 0; J < 64; ++J) {
    float Want = 0;
    for (int64_t I = 0; I < 64; ++I) {
      float Tmp = 0;
      for (int64_t K = 0; K < 64; ++K)
        Tmp += A[I * 64 + K] * X[K];
      Want += A[I * 64 + J] * Tmp;
    }
    EXPECT_NEAR(Y[J], Want, 1e-2) << J;
  }
}

TEST(DriverTest, RunResultTotalsPositiveAndOrdered) {
  Workload W = makeSyrk(256, 256);
  RunConfig C;
  Duration Cpu = timeUnder(RuntimeKind::CpuOnly, W, C);
  Duration Gpu = timeUnder(RuntimeKind::GpuOnly, W, C);
  EXPECT_GT(Cpu.nanos(), 0);
  EXPECT_GT(Gpu.nanos(), 0);
}

TEST(DriverTest, TimingDeterministicAcrossRuns) {
  Workload W = makeBicg(1024, 1024);
  RunConfig C;
  Duration A = timeUnder(RuntimeKind::FluidiCL, W, C);
  Duration B = timeUnder(RuntimeKind::FluidiCL, W, C);
  EXPECT_EQ(A.nanos(), B.nanos());
}

TEST(DriverTest, FunctionalAndTimingOnlyAgreeOnTime) {
  // Functional execution must not change simulated time.
  Workload W = testSuite()[4];
  RunConfig C;
  C.Mode = mcl::ExecMode::TimingOnly;
  Duration TOnly = timeUnder(RuntimeKind::FluidiCL, W, C);
  C.Mode = mcl::ExecMode::Functional;
  Duration Func = timeUnder(RuntimeKind::FluidiCL, W, C);
  EXPECT_EQ(TOnly.nanos(), Func.nanos());
}

TEST(DriverTest, ValidationDetectsMismatch) {
  // Sanity-check the validator itself: a workload whose result buffer is
  // never written by any kernel cannot match the reference (which leaves
  // it at its random initial content either way) - so instead corrupt the
  // comparison by validating under a runtime but with a *different*
  // workload's reference. Simpler: validate that MaxAbsError is reported.
  Workload W = testSuite()[1];
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx);
  RunResult Res = runWorkload(RT, W, true);
  EXPECT_TRUE(Res.Validated);
  EXPECT_TRUE(Res.Valid);
  EXPECT_LT(Res.MaxAbsError, 1e-5);
}

TEST(DriverTest, OracleBestFractionSensible) {
  RunConfig C;
  double Frac = -1;
  oracleStaticPartition(makeGesummv(4096), C, 10, &Frac);
  EXPECT_LT(Frac, 0.5); // CPU-friendly workload: mostly-CPU split wins.
  oracleStaticPartition(makeAtax(8192, 8192), C, 10, &Frac);
  EXPECT_GT(Frac, 0.5); // GPU-friendly workload.
}

} // namespace
