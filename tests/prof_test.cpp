//===- tests/prof_test.cpp - Wall-clock profiler tests --------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers fcl::prof: nested-scope exclusive-time accounting, counter
// aggregation, thread safety of concurrent scopes + snapshots (run under
// TSan in CI), the BenchReport schema, and - the load-bearing invariant -
// that enabling profiling leaves the simulated results byte-identical
// (both the serve report and the run report).
//
//===----------------------------------------------------------------------===//

#include "prof/BenchReport.h"
#include "prof/Profiler.h"
#include "serve/Engine.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

using namespace fcl;
using namespace fcl::prof;

namespace {

/// The profiler is process-global; every test starts from zeroed stats
/// and a disabled profiler, and leaves it disabled.
class ProfTest : public ::testing::Test {
protected:
  void SetUp() override {
    Profiler::instance().setEnabled(false);
    Profiler::instance().reset();
  }
  void TearDown() override {
    Profiler::instance().setEnabled(false);
    Profiler::instance().reset();
  }
};

const PhaseStats *findPhase(const Snapshot &S, const std::string &Path) {
  for (const PhaseStats &P : S.Phases)
    if (P.Path == Path)
      return &P;
  return nullptr;
}

/// Burns wall time without sleeping (robust on loaded machines).
void spinFor(int64_t Ns) {
  int64_t Start = wallNowNs();
  while (wallNowNs() - Start < Ns) {
  }
}

TEST_F(ProfTest, DisabledScopesCollectNothing) {
  {
    FCL_PROF_SCOPE("test.disabled_phase");
    spinFor(10'000);
  }
  Snapshot S = Profiler::instance().snapshot();
  EXPECT_EQ(findPhase(S, "test.disabled_phase"), nullptr);
}

TEST_F(ProfTest, ScopeRecordsCountAndTime) {
  Profiler::instance().setEnabled(true);
  for (int I = 0; I < 3; ++I) {
    FCL_PROF_SCOPE("test.basic");
    spinFor(100'000);
  }
  Profiler::instance().setEnabled(false);
  Snapshot S = Profiler::instance().snapshot();
  const PhaseStats *P = findPhase(S, "test.basic");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Count, 3u);
  EXPECT_GE(P->InclusiveNs, 300'000);
  // A leaf's exclusive time is its inclusive time.
  EXPECT_EQ(P->ExclusiveNs, P->InclusiveNs);
  EXPECT_EQ(P->Depth, 0);
  EXPECT_EQ(P->Name, "test.basic");
}

TEST_F(ProfTest, NestedScopesSplitExclusiveTime) {
  Profiler::instance().setEnabled(true);
  {
    FCL_PROF_SCOPE("test.outer");
    spinFor(2'000'000); // outer self time
    {
      FCL_PROF_SCOPE("test.inner");
      spinFor(2'000'000); // inner time, inclusive to outer
    }
  }
  Profiler::instance().setEnabled(false);
  Snapshot S = Profiler::instance().snapshot();
  const PhaseStats *Outer = findPhase(S, "test.outer");
  const PhaseStats *Inner = findPhase(S, "test.outer/test.inner");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->Depth, 1);
  // Exclusive = inclusive minus children, up to tick->ns conversion
  // rounding (inclusive and exclusive are converted independently).
  EXPECT_NEAR(static_cast<double>(Outer->ExclusiveNs),
              static_cast<double>(Outer->InclusiveNs - Inner->InclusiveNs),
              16.0);
  // Both self times cover their spins (to within ~1% tick->ns
  // calibration error over the short test window); the outer's self
  // excludes the inner's spin.
  EXPECT_GE(Inner->InclusiveNs, 1'900'000);
  EXPECT_GE(Outer->ExclusiveNs, 1'500'000);
  EXPECT_LE(Outer->ExclusiveNs, Outer->InclusiveNs - 1'900'000);
  // totalExclusiveNs never double-counts nesting (again up to per-phase
  // conversion rounding).
  EXPECT_NEAR(static_cast<double>(Outer->ExclusiveNs + Inner->ExclusiveNs),
              static_cast<double>(Outer->InclusiveNs), 32.0);
}

TEST_F(ProfTest, SameNameReenteredAggregatesByPath) {
  Profiler::instance().setEnabled(true);
  for (int I = 0; I < 5; ++I) {
    FCL_PROF_SCOPE("test.repeat");
    { FCL_PROF_SCOPE("test.child"); }
  }
  Profiler::instance().setEnabled(false);
  Snapshot S = Profiler::instance().snapshot();
  const PhaseStats *P = findPhase(S, "test.repeat");
  const PhaseStats *C = findPhase(S, "test.repeat/test.child");
  ASSERT_NE(P, nullptr);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(P->Count, 5u);
  EXPECT_EQ(C->Count, 5u);
}

TEST_F(ProfTest, CountersSumOnlyWhenEnabled) {
  static Counter C("test.counter");
  C.add(7); // disabled: dropped
  Profiler::instance().setEnabled(true);
  C.add(2);
  C.add(3);
  Profiler::instance().setEnabled(false);
  C.add(11); // disabled again: dropped
  Snapshot S = Profiler::instance().snapshot();
  ASSERT_TRUE(S.Counters.count("test.counter"));
  EXPECT_EQ(S.Counters.at("test.counter"), 5u);
}

TEST_F(ProfTest, ResetZeroesStatsButKeepsCollecting) {
  Profiler::instance().setEnabled(true);
  { FCL_PROF_SCOPE("test.reset_phase"); }
  Profiler::instance().reset();
  { FCL_PROF_SCOPE("test.reset_phase"); }
  Profiler::instance().setEnabled(false);
  Snapshot S = Profiler::instance().snapshot();
  const PhaseStats *P = findPhase(S, "test.reset_phase");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Count, 1u);
}

TEST_F(ProfTest, TopByExclusiveOrdersDescending) {
  Profiler::instance().setEnabled(true);
  {
    FCL_PROF_SCOPE("test.top_small");
    spinFor(200'000);
  }
  {
    FCL_PROF_SCOPE("test.top_big");
    spinFor(4'000'000);
  }
  Profiler::instance().setEnabled(false);
  Snapshot S = Profiler::instance().snapshot();
  std::vector<PhaseStats> Top = S.topByExclusive(1);
  ASSERT_EQ(Top.size(), 1u);
  EXPECT_EQ(Top[0].Path, "test.top_big");
  EXPECT_FALSE(S.renderText(/*TopN=*/2).empty());
}

// Exercised under TSan in CI: four threads hammer nested scopes while the
// main thread snapshots concurrently; totals must come out exact.
TEST_F(ProfTest, ThreadSafetyUnderConcurrentScopesAndSnapshots) {
  constexpr int Threads = 4;
  constexpr int Iters = 20'000;
  Profiler::instance().setEnabled(true);
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([] {
      static Counter C("test.mt_counter");
      for (int I = 0; I < Iters; ++I) {
        FCL_PROF_SCOPE("test.mt_outer");
        C.add();
        { FCL_PROF_SCOPE("test.mt_inner"); }
      }
    });
  // Concurrent snapshots while the workers run.
  for (int I = 0; I < 50; ++I)
    (void)Profiler::instance().snapshot();
  for (std::thread &W : Workers)
    W.join();
  Profiler::instance().setEnabled(false);
  Snapshot S = Profiler::instance().snapshot();
  const PhaseStats *Outer = findPhase(S, "test.mt_outer");
  const PhaseStats *Inner = findPhase(S, "test.mt_outer/test.mt_inner");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->Count, static_cast<uint64_t>(Threads) * Iters);
  EXPECT_EQ(Inner->Count, static_cast<uint64_t>(Threads) * Iters);
  EXPECT_EQ(S.Counters.at("test.mt_counter"),
            static_cast<uint64_t>(Threads) * Iters);
}

TEST_F(ProfTest, BenchReportJsonRoundTrip) {
  Profiler::instance().setEnabled(true);
  {
    FCL_PROF_SCOPE("test.bench_phase");
    spinFor(100'000);
  }
  Profiler::instance().setEnabled(false);

  BenchReport Rep;
  Rep.Name = "unit";
  Rep.Suite = "test";
  Rep.Meta["purpose"] = "round trip";
  Rep.Metrics["events_per_sec"] = 1234.5;
  Rep.Metrics["overhead_pct"] = 0.5;
  Rep.attachProfile(Profiler::instance().snapshot(), 4);
  Rep.PeakRss = peakRssBytes();
  EXPECT_GT(Rep.PeakRss, 0u);
  ASSERT_FALSE(Rep.Profile.empty());

  std::string Json = Rep.toJson();
  EXPECT_NE(Json.find("\"schema\": \"fcl-bench-report-v1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(Json.find("\"events_per_sec\""), std::string::npos);
  EXPECT_NE(Json.find("test.bench_phase"), std::string::npos);
  EXPECT_NE(Json.find("\"peak_rss_bytes\""), std::string::npos);

  std::string Path =
      testing::TempDir() + "/BENCH_unit_prof_test.json";
  ASSERT_TRUE(Rep.write(Path));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::fclose(F);
  std::remove(Path.c_str());
}

serve::ServeReport runServeOnce() {
  serve::EngineConfig Cfg;
  Cfg.P = serve::Policy::FluidicCorun;
  Cfg.Streams = 4;
  Cfg.Seed = 11;
  Cfg.Horizon = Duration::milliseconds(15);
  serve::Engine Engine(Cfg);
  return Engine.run();
}

// The determinism invariant from the ISSUE: profiling reads only the wall
// clock, so the simulated serve report must be byte-identical with
// profiling on or off.
TEST_F(ProfTest, ServeReportByteIdenticalWithProfilingOn) {
  std::string Off = runServeOnce().toJson();
  Profiler::instance().setEnabled(true);
  std::string On = runServeOnce().toJson();
  Profiler::instance().setEnabled(false);
  EXPECT_EQ(Off, On);
  // And the profiler actually saw the run.
  Snapshot S = Profiler::instance().snapshot();
  EXPECT_NE(findPhase(S, "sim.run"), nullptr);
}

// Same invariant for the single-run report path.
TEST_F(ProfTest, RunReportByteIdenticalWithProfilingOn) {
  work::Workload W = work::makeSyrk(128, 128);
  work::RunConfig C;
  std::string Off =
      work::reportUnder(work::RuntimeKind::FluidiCL, W, C).renderJson();
  Profiler::instance().setEnabled(true);
  std::string On =
      work::reportUnder(work::RuntimeKind::FluidiCL, W, C).renderJson();
  Profiler::instance().setEnabled(false);
  EXPECT_EQ(Off, On);
}

// Satellite 1: the sim event-queue health counters surface in reports.
TEST_F(ProfTest, RunReportCarriesSimQueueHealthStats) {
  work::Workload W = work::makeSyrk(128, 128);
  stats::RunReport Rep =
      work::reportUnder(work::RuntimeKind::FluidiCL, W, work::RunConfig());
  EXPECT_GT(Rep.Counters.counter("sim_events_executed"), 0u);
  std::string Json = Rep.renderJson();
  EXPECT_NE(Json.find("sim_events_executed"), std::string::npos);
  EXPECT_NE(Json.find("sim_pending_tombstones"), std::string::npos);
}

TEST_F(ProfTest, ServeReportCarriesSimQueueHealthStats) {
  serve::ServeReport Rep = runServeOnce();
  std::string Json = Rep.toJson();
  EXPECT_NE(Json.find("sim_events_executed"), std::string::npos);
  EXPECT_NE(Json.find("sim_tombstone_skips"), std::string::npos);
  EXPECT_NE(Json.find("sim_compaction_runs"), std::string::npos);
}

} // namespace
