//===- tests/check_test.cpp - fcl::check analyzer tests --------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests of the fluidic-safety analyzer: DiagSink policy/counter
/// plumbing, the AccessOracle against the deliberately misdeclared fixture
/// kernels (each must produce its distinct diagnostic), ProtocolChecker
/// invariants driven with hand-built good and bad event sequences, the
/// ShimLint host-API diagnostics, and a protocol-clean integration run.
///
//===----------------------------------------------------------------------===//

#include "check/AccessOracle.h"
#include "check/Checker.h"
#include "check/Diag.h"
#include "check/Fixtures.h"
#include "check/ProtocolChecker.h"
#include "fluidicl/OpenCLShim.h"
#include "fluidicl/Runtime.h"
#include "stats/Registry.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace fcl;
using namespace fcl::check;
using namespace fcl::fluidicl::shim;

namespace {

//===----------------------------------------------------------------------===//
// DiagSink
//===----------------------------------------------------------------------===//

TEST(DiagSinkTest, PolicyOffDropsEverything) {
  DiagSink Sink(Policy::Off);
  EXPECT_FALSE(Sink.enabled());
  Sink.report(Diag::make(DiagKind::WriteToReadOnlyArg, "k", "msg", 0));
  EXPECT_TRUE(Sink.diags().empty());
  EXPECT_EQ(Sink.errorCount(), 0u);
  EXPECT_FALSE(Sink.shouldFail());
}

TEST(DiagSinkTest, CountersAndSeverities) {
  stats::Registry Stats;
  DiagSink Sink(Policy::Warn);
  Sink.setStats(&Stats);
  Sink.report(Diag::make(DiagKind::WriteToReadOnlyArg, "k", "m", 0));
  Sink.report(Diag::make(DiagKind::BenignWriteOverlap, "k", "m", 1));
  Sink.report(Diag::make(DiagKind::UnsafeSplitDeclared, "k", "m"));
  EXPECT_EQ(Sink.errorCount(), 1u);
  EXPECT_EQ(Sink.warningCount(), 1u);
  EXPECT_EQ(Sink.diags().size(), 3u);
  EXPECT_EQ(Sink.count(DiagKind::WriteToReadOnlyArg), 1u);
  EXPECT_EQ(Stats.counter("check_diags"), 3u);
  EXPECT_EQ(Stats.counter("check_errors"), 1u);
  EXPECT_EQ(Stats.counter("check_warnings"), 1u);
  EXPECT_EQ(Stats.counter("check_access_write_to_in"), 1u);
  // Warn never fails; Fail does once an error was collected.
  EXPECT_FALSE(Sink.shouldFail());
  Sink.setPolicy(Policy::Fail);
  EXPECT_TRUE(Sink.shouldFail());
}

TEST(DiagSinkTest, ParsePolicy) {
  Policy P = Policy::Off;
  EXPECT_TRUE(parsePolicy("warn", P));
  EXPECT_EQ(P, Policy::Warn);
  EXPECT_TRUE(parsePolicy("fail", P));
  EXPECT_EQ(P, Policy::Fail);
  EXPECT_TRUE(parsePolicy("off", P));
  EXPECT_EQ(P, Policy::Off);
  EXPECT_TRUE(parsePolicy("", P));
  EXPECT_EQ(P, Policy::Warn);
  EXPECT_TRUE(parsePolicy("on", P));
  EXPECT_EQ(P, Policy::Warn);
  EXPECT_FALSE(parsePolicy("junk", P));
}

TEST(DiagSinkTest, EveryKindHasDistinctName) {
  std::set<std::string> Names;
  for (int K = 0; K < NumDiagKinds; ++K)
    Names.insert(diagKindName(static_cast<DiagKind>(K)));
  EXPECT_EQ(Names.size(), static_cast<size_t>(NumDiagKinds));
}

//===----------------------------------------------------------------------===//
// AccessOracle on the misdeclaration fixtures
//===----------------------------------------------------------------------===//

TEST(AccessOracleTest, EachFixtureProducesItsDistinctDiagnostic) {
  std::vector<FixtureCase> Cases = fixtureCases();
  ASSERT_GE(Cases.size(), 7u);
  for (const FixtureCase &Case : Cases) {
    DiagSink Sink(Policy::Warn);
    checkWorkload(Case.W, Sink, fixtureRegistry());
    EXPECT_GT(Sink.count(Case.Expected), 0u)
        << Case.W.Name << " did not produce "
        << diagKindName(Case.Expected) << "\n"
        << Sink.renderAll();
    // Distinctness: no fixture trips another fixture's signature kind
    // (beyond kinds that legitimately co-occur with its own).
    for (const FixtureCase &Other : Cases) {
      if (Other.Expected == Case.Expected)
        continue;
      if (Sink.count(Other.Expected) > 0 &&
          Other.Expected != DiagKind::CrossGroupWriteOverlap)
        ADD_FAILURE() << Case.W.Name << " unexpectedly produced "
                      << diagKindName(Other.Expected) << "\n"
                      << Sink.renderAll();
    }
  }
}

TEST(AccessOracleTest, CleanKernelProducesNoDiagnostics) {
  DiagSink Sink(Policy::Warn);
  work::Workload W;
  W.Name = "clean";
  W.Buffers = {{"x", 256}, {"y", 256}, {"z", 256}};
  W.Calls.push_back({"vec_add", kern::NDRange::of1D(64, 32),
                     {runtime::KArg::buffer(0), runtime::KArg::buffer(1),
                      runtime::KArg::buffer(2), runtime::KArg::i64(64)}});
  uint64_t Probed = checkWorkload(W, Sink, kern::Registry::builtin());
  EXPECT_EQ(Probed, 1u);
  EXPECT_TRUE(Sink.diags().empty()) << Sink.renderAll();
}

TEST(AccessOracleTest, BudgetSkipsWithInfoDiag) {
  DiagSink Sink(Policy::Warn);
  work::Workload W;
  W.Name = "skip";
  W.Buffers = {{"x", 256}, {"y", 256}, {"z", 256}};
  W.Calls.push_back({"vec_add", kern::NDRange::of1D(64, 32),
                     {runtime::KArg::buffer(0), runtime::KArg::buffer(1),
                      runtime::KArg::buffer(2), runtime::KArg::i64(64)}});
  uint64_t Probed =
      checkWorkload(W, Sink, kern::Registry::builtin(), /*BudgetBytes=*/16);
  EXPECT_EQ(Probed, 0u);
  EXPECT_EQ(Sink.count(DiagKind::CheckSkippedTooLarge), 1u);
  EXPECT_EQ(Sink.errorCount(), 0u);
}

TEST(AccessOracleTest, ReportObservationsMatchVecAdd) {
  DiagSink Sink(Policy::Warn);
  std::vector<std::byte> A(256), B(256), C(256);
  for (size_t I = 0; I < 256; ++I) {
    A[I] = std::byte(I & 0x7f);
    B[I] = std::byte((I * 3) & 0x7f);
    C[I] = std::byte(0xff);
  }
  const kern::KernelInfo &K = kern::Registry::builtin().get("vec_add");
  OracleReport Rep = verifyCall(
      K, kern::NDRange::of1D(64, 32),
      {OracleBinding::buffer(A), OracleBinding::buffer(B),
       OracleBinding::buffer(C), OracleBinding::scalarInt(64)},
      Sink);
  ASSERT_TRUE(Rep.Probed);
  EXPECT_FALSE(Rep.SplitHazard);
  EXPECT_EQ(Rep.Errors, 0u);
  ASSERT_EQ(Rep.Args.size(), 4u);
  EXPECT_EQ(Rep.Args[0].BytesWritten, 0u);
  EXPECT_EQ(Rep.Args[1].BytesWritten, 0u);
  EXPECT_GT(Rep.Args[2].BytesWritten, 0u);
  EXPECT_FALSE(Rep.Args[2].PriorContentsDependence);
}

//===----------------------------------------------------------------------===//
// ProtocolChecker driven directly
//===----------------------------------------------------------------------===//

struct ProtoFixture {
  DiagSink Sink{Policy::Warn};
  ProtocolChecker PC{Sink};

  /// Drives a full clean cooperative launch: 64 groups, CPU takes the top
  /// 16 in two subkernels, one out buffer, merge + scratch release.
  void cleanLaunch(uint64_t Id = 1) {
    PC.onLaunchStart(Id, "k", 64, 1, true);
    PC.onCpuSubkernel(Id, 56, 64);
    PC.onDataStaged(Id, 0, 56);
    PC.onStatusCommit(Id, 56);
    PC.onCpuSubkernel(Id, 48, 56);
    PC.onDataStaged(Id, 0, 48);
    PC.onStatusCommit(Id, 48);
    PC.onGpuFinished(Id, 50);
    PC.onMergeSet(Id, 48, false, true);
    PC.onMergeEnqueued(Id, 0);
    PC.onScratchReleased(Id, 2);
  }
};

TEST(ProtocolCheckerTest, CleanSequenceIsQuiet) {
  ProtoFixture F;
  F.cleanLaunch();
  F.PC.onRunFinish(0);
  EXPECT_TRUE(F.Sink.diags().empty()) << F.Sink.renderAll();
}

TEST(ProtocolCheckerTest, NonContiguousCpuRange) {
  ProtoFixture F;
  F.PC.onLaunchStart(1, "k", 64, 1, true);
  F.PC.onCpuSubkernel(1, 56, 64);
  F.PC.onCpuSubkernel(1, 40, 50); // Gap: should descend from 56.
  EXPECT_EQ(F.Sink.count(DiagKind::CpuRangeViolation), 1u);
}

TEST(ProtocolCheckerTest, BoundaryMustNotIncrease) {
  ProtoFixture F;
  F.PC.onLaunchStart(1, "k", 64, 1, true);
  F.PC.onCpuSubkernel(1, 56, 64);
  F.PC.onDataStaged(1, 0, 56);
  F.PC.onStatusCommit(1, 56);
  F.PC.onStatusCommit(1, 60); // Regressed upwards.
  EXPECT_EQ(F.Sink.count(DiagKind::BoundaryNotMonotone), 1u);
}

TEST(ProtocolCheckerTest, StatusBeforeDataDetected) {
  ProtoFixture F;
  F.PC.onLaunchStart(1, "k", 64, 1, true);
  F.PC.onCpuSubkernel(1, 56, 64);
  // Status committed although no data for the out slot was staged.
  F.PC.onStatusCommit(1, 56);
  EXPECT_EQ(F.Sink.count(DiagKind::StatusBeforeData), 1u);
}

TEST(ProtocolCheckerTest, MergeInvariants) {
  {
    ProtoFixture F; // Merge credits GPU with unexecuted groups.
    F.PC.onLaunchStart(1, "k", 64, 1, true);
    F.PC.onCpuSubkernel(1, 56, 64);
    F.PC.onDataStaged(1, 0, 56);
    F.PC.onStatusCommit(1, 56);
    F.PC.onGpuFinished(1, 40); // Below the boundary.
    F.PC.onMergeSet(1, 56, false, true);
    EXPECT_EQ(F.Sink.count(DiagKind::GpuCoverageGap), 1u);
  }
  {
    ProtoFixture F; // Double merge on one slot.
    F.cleanLaunch();
    F.PC.onMergeEnqueued(1, 0);
    EXPECT_EQ(F.Sink.count(DiagKind::DoubleMerge), 1u);
  }
  {
    ProtoFixture F; // Merge although the CPU contributed nothing.
    F.PC.onLaunchStart(1, "k", 64, 1, true);
    F.PC.onGpuFinished(1, 64);
    F.PC.onMergeSet(1, 64, false, false);
    F.PC.onMergeEnqueued(1, 0);
    EXPECT_EQ(F.Sink.count(DiagKind::UnexpectedMerge), 1u);
  }
  {
    ProtoFixture F; // Expected merge never enqueued.
    F.PC.onLaunchStart(1, "k", 64, 1, true);
    F.PC.onCpuSubkernel(1, 56, 64);
    F.PC.onDataStaged(1, 0, 56);
    F.PC.onStatusCommit(1, 56);
    F.PC.onGpuFinished(1, 60);
    F.PC.onMergeSet(1, 56, false, true);
    F.PC.onScratchReleased(1, 2);
    F.PC.onRunFinish(0);
    EXPECT_EQ(F.Sink.count(DiagKind::MergeMissing), 1u);
  }
}

TEST(ProtocolCheckerTest, ScratchAndVersionChecks) {
  {
    ProtoFixture F;
    F.PC.onLaunchStart(1, "k", 64, 1, true);
    F.PC.onScratchReleased(1, 1); // Cooperative launch frees 2 per out.
    EXPECT_EQ(F.Sink.count(DiagKind::ScratchLeak), 1u);
  }
  {
    ProtoFixture F;
    F.PC.onRunFinish(3); // Pool still holds buffers at finish.
    EXPECT_EQ(F.Sink.count(DiagKind::ScratchLeak), 1u);
  }
  {
    ProtoFixture F;
    F.PC.onVersionNote(0, 2, 1);
    F.PC.onVersionNote(0, 1, 1); // Expected version went backwards.
    EXPECT_EQ(F.Sink.count(DiagKind::VersionRegression), 1u);
  }
  {
    ProtoFixture F;
    F.PC.onVersionNote(0, 2, 3); // CPU claims a version from the future.
    EXPECT_EQ(F.Sink.count(DiagKind::VersionRegression), 1u);
  }
}

//===----------------------------------------------------------------------===//
// ShimLint
//===----------------------------------------------------------------------===//

struct ShimLintTest : ::testing::Test {
  mcl::Context Sim;
  fluidicl::Runtime RT;
  fcl_context Ctx;
  fcl_command_queue Queue;

  static fluidicl::Options checkedOpts() {
    fluidicl::Options O;
    O.Check = Policy::Warn;
    return O;
  }

  ShimLintTest()
      : Sim(hw::paperMachine(), mcl::ExecMode::Functional),
        RT(Sim, checkedOpts()), Ctx(fclCreateContext(RT)),
        Queue(fclCreateCommandQueue(Ctx)) {}
  ~ShimLintTest() override { fclReleaseContext(Ctx); }
};

TEST_F(ShimLintTest, UseAfterReleaseQueue) {
  EXPECT_EQ(fclReleaseCommandQueue(Queue), FCL_SUCCESS);
  float V = 0;
  fcl_int Err = FCL_SUCCESS;
  fcl_mem Buf = fclCreateBuffer(Ctx, FCL_MEM_READ_WRITE, 4, nullptr, &Err);
  ASSERT_EQ(Err, FCL_SUCCESS);
  EXPECT_EQ(fclEnqueueWriteBuffer(Queue, Buf, FCL_TRUE, 0, 4, &V),
            FCL_INVALID_COMMAND_QUEUE);
  EXPECT_EQ(RT.diagSink().count(DiagKind::UseAfterRelease), 1u);
  fclReleaseMemObject(Buf);
}

TEST_F(ShimLintTest, DoubleReleaseMem) {
  fcl_int Err = FCL_SUCCESS;
  fcl_mem Buf = fclCreateBuffer(Ctx, FCL_MEM_READ_WRITE, 4, nullptr, &Err);
  ASSERT_EQ(Err, FCL_SUCCESS);
  EXPECT_EQ(fclReleaseMemObject(Buf), FCL_SUCCESS);
  EXPECT_EQ(fclReleaseMemObject(Buf), FCL_INVALID_MEM_OBJECT);
  EXPECT_EQ(RT.diagSink().count(DiagKind::DoubleRelease), 1u);
}

TEST_F(ShimLintTest, LaunchWithReleasedMemArg) {
  fcl_int Err = FCL_SUCCESS;
  constexpr size_t N = 64;
  fcl_mem X = fclCreateBuffer(Ctx, FCL_MEM_READ_ONLY, N * 4, nullptr, &Err);
  fcl_mem Y = fclCreateBuffer(Ctx, FCL_MEM_READ_WRITE, N * 4, nullptr, &Err);
  fcl_kernel K = fclCreateKernel(Ctx, "saxpy", &Err);
  ASSERT_EQ(Err, FCL_SUCCESS);
  float Alpha = 2.0f;
  int64_t N64 = N;
  ASSERT_EQ(fclSetKernelArg(K, 0, sizeof(fcl_mem), &X), FCL_SUCCESS);
  ASSERT_EQ(fclSetKernelArg(K, 1, sizeof(fcl_mem), &Y), FCL_SUCCESS);
  ASSERT_EQ(fclSetKernelArg(K, 2, sizeof(float), &Alpha), FCL_SUCCESS);
  ASSERT_EQ(fclSetKernelArg(K, 3, sizeof(int64_t), &N64), FCL_SUCCESS);
  fclReleaseMemObject(Y); // Released between set-arg and enqueue.
  size_t Global = N, Local = 32;
  EXPECT_EQ(fclEnqueueNDRangeKernel(Queue, K, 1, nullptr, &Global, &Local),
            FCL_INVALID_MEM_OBJECT);
  EXPECT_EQ(RT.diagSink().count(DiagKind::UseAfterRelease), 1u);
}

TEST_F(ShimLintTest, UnsetArgsDiagnosed) {
  fcl_int Err = FCL_SUCCESS;
  fcl_kernel K = fclCreateKernel(Ctx, "vec_add", &Err);
  ASSERT_EQ(Err, FCL_SUCCESS);
  size_t Global = 64, Local = 32;
  EXPECT_EQ(fclEnqueueNDRangeKernel(Queue, K, 1, nullptr, &Global, &Local),
            FCL_INVALID_KERNEL_ARGS);
  EXPECT_EQ(RT.diagSink().count(DiagKind::UnsetKernelArgs), 1u);
}

TEST_F(ShimLintTest, NonBlockingReadWarned) {
  fcl_int Err = FCL_SUCCESS;
  fcl_mem Buf = fclCreateBuffer(Ctx, FCL_MEM_READ_WRITE, 16, nullptr, &Err);
  ASSERT_EQ(Err, FCL_SUCCESS);
  float Data[4] = {1, 2, 3, 4};
  ASSERT_EQ(fclEnqueueWriteBuffer(Queue, Buf, FCL_TRUE, 0, 16, Data),
            FCL_SUCCESS);
  float Out[4] = {};
  EXPECT_EQ(fclEnqueueReadBuffer(Queue, Buf, FCL_FALSE, 0, 16, Out),
            FCL_SUCCESS);
  EXPECT_EQ(RT.diagSink().count(DiagKind::NonBlockingReadAssumed), 1u);
  EXPECT_EQ(Out[2], 3.0f); // Still executed (blocking under the hood).
}

TEST_F(ShimLintTest, LeakedObjectsOnContextRelease) {
  fcl_int Err = FCL_SUCCESS;
  fclCreateBuffer(Ctx, FCL_MEM_READ_WRITE, 16, nullptr, &Err);
  fclCreateKernel(Ctx, "vec_add", &Err);
  fclReleaseContext(Ctx); // Queue + buffer + kernel still live.
  EXPECT_GE(RT.diagSink().count(DiagKind::LeakedObjects), 1u);
  // Re-arm the fixture teardown with a fresh context.
  Ctx = fclCreateContext(RT);
  Queue = fclCreateCommandQueue(Ctx);
}

TEST_F(ShimLintTest, PolicyOffStaysSilent) {
  mcl::Context Sim2(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime Quiet(Sim2, fluidicl::Options());
  fcl_context C2 = fclCreateContext(Quiet);
  fcl_command_queue Q2 = fclCreateCommandQueue(C2);
  fclReleaseCommandQueue(Q2);
  float V = 0;
  fcl_int Err = FCL_SUCCESS;
  fcl_mem Buf = fclCreateBuffer(C2, FCL_MEM_READ_WRITE, 4, nullptr, &Err);
  EXPECT_EQ(fclEnqueueWriteBuffer(Q2, Buf, FCL_TRUE, 0, 4, &V),
            FCL_INVALID_COMMAND_QUEUE); // Error code still returned...
  EXPECT_TRUE(Quiet.diagSink().diags().empty()); // ...but no diagnostics.
  fclReleaseContext(C2);
}

//===----------------------------------------------------------------------===//
// Integration: cooperative runs stay protocol-clean under Fail
//===----------------------------------------------------------------------===//

TEST(CheckIntegrationTest, CooperativeRunIsProtocolClean) {
  fluidicl::Options Opts;
  Opts.Check = Policy::Fail;
  for (const work::Workload &W :
       {work::makeSyrk(64, 64), work::makeAtax(96, 96)}) {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
    fluidicl::Runtime RT(Ctx, Opts);
    work::RunResult Res = work::runWorkload(RT, W, true);
    RT.finish();
    EXPECT_TRUE(Res.Valid);
    EXPECT_TRUE(RT.diagSink().diags().empty())
        << W.Name << ":\n" << RT.diagSink().renderAll();
    EXPECT_FALSE(RT.diagSink().shouldFail());
  }
}

TEST(CheckIntegrationTest, RegionTransfersStayProtocolClean) {
  fluidicl::Options Opts;
  Opts.Check = Policy::Fail;
  Opts.RegionTransfers = true;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx, Opts);
  work::RunResult Res = work::runWorkload(RT, work::makeGemm(64, 64, 64), true);
  RT.finish();
  EXPECT_TRUE(Res.Valid);
  EXPECT_TRUE(RT.diagSink().diags().empty()) << RT.diagSink().renderAll();
}

} // namespace
