//===- tests/check_kernels_test.cpp - Registry-wide safety sweep -----------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regression guarantee of satellite (a): every registered polybench
/// kernel's ArgAccess / UsesAtomics / RowContiguousOutput metadata agrees
/// with its observed behaviour. The sweep must stay clean — a kernel added
/// with wrong metadata (or without coverage) fails this suite, not a
/// production run.
///
//===----------------------------------------------------------------------===//

#include "check/Checker.h"
#include "check/Diag.h"
#include "kern/Registry.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace fcl;
using namespace fcl::check;

namespace {

/// One sweep shared by every test in this file (the probe is the
/// expensive part; the assertions are not).
const std::pair<DiagSink, std::vector<KernelVerdict>> &sweep() {
  static auto *Result = [] {
    auto *R = new std::pair<DiagSink, std::vector<KernelVerdict>>(
        std::piecewise_construct, std::forward_as_tuple(Policy::Fail),
        std::forward_as_tuple());
    R->second = checkAllKernels(R->first);
    return R;
  }();
  return *Result;
}

TEST(CheckKernelsTest, EveryRegisteredKernelIsCovered) {
  const auto &[Sink, Verdicts] = sweep();
  std::vector<std::string> Names = kern::Registry::builtin().names();
  ASSERT_EQ(Verdicts.size(), Names.size());
  for (const KernelVerdict &V : Verdicts)
    EXPECT_TRUE(V.Covered) << V.Kernel << " has no coverage workload";
  EXPECT_EQ(Sink.count(DiagKind::KernelNotCovered), 0u);
}

TEST(CheckKernelsTest, NoKernelMetadataIsMisdeclared) {
  const auto &[Sink, Verdicts] = sweep();
  for (const KernelVerdict &V : Verdicts)
    EXPECT_EQ(V.Errors, 0u) << V.Kernel << " -> " << V.classification();
  EXPECT_EQ(Sink.errorCount(), 0u) << Sink.renderAll();
  EXPECT_FALSE(Sink.shouldFail());
}

TEST(CheckKernelsTest, HistogramClassifiedUnsafeToSplit) {
  const auto &[Sink, Verdicts] = sweep();
  (void)Sink;
  bool Found = false;
  for (const KernelVerdict &V : Verdicts) {
    if (V.Kernel != "histogram_atomic")
      continue;
    Found = true;
    // The one intentionally split-unsafe kernel: collisions observed AND
    // UsesAtomics declared — the runtime's GPU-only fallback is justified
    // and the declaration is not over-conservative.
    EXPECT_TRUE(V.UnsafeToSplit);
    EXPECT_TRUE(V.DeclaredUnsafe);
    EXPECT_EQ(V.classification(), "unsafe-declared");
  }
  EXPECT_TRUE(Found);
}

TEST(CheckKernelsTest, OnlyHistogramIsSplitUnsafe) {
  const auto &[Sink, Verdicts] = sweep();
  (void)Sink;
  for (const KernelVerdict &V : Verdicts) {
    if (V.Kernel == "histogram_atomic")
      continue;
    EXPECT_FALSE(V.UnsafeToSplit) << V.Kernel;
    EXPECT_FALSE(V.DeclaredUnsafe) << V.Kernel;
    EXPECT_EQ(V.classification(), "fluidic-safe") << V.Kernel;
  }
}

TEST(CheckKernelsTest, SafetyReportRendersEveryKernel) {
  const auto &[Sink, Verdicts] = sweep();
  (void)Sink;
  std::string Report = renderSafetyReport(Verdicts);
  for (const KernelVerdict &V : Verdicts)
    EXPECT_NE(Report.find(V.Kernel), std::string::npos) << V.Kernel;
  EXPECT_NE(Report.find("misdeclared-unsafe: 0"), std::string::npos);
  EXPECT_NE(Report.find("not-covered: 0"), std::string::npos);
}

} // namespace
