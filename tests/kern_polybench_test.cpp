//===- tests/kern_polybench_test.cpp - Kernel body tests -------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Validates every registered kernel body against closed-form host math on
/// small inputs (the workload-level tests then only need to trust these).
///
//===----------------------------------------------------------------------===//

#include "kern/Kernel.h"
#include "kern/Registry.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace fcl;
using namespace fcl::kern;

namespace {

/// Runs \p Kernel functionally over the full \p Range.
void runKernel(const KernelInfo &Kernel, const NDRange &Range,
               const ArgsView &Args) {
  std::vector<std::byte> Scratch(Kernel.LocalBytes);
  Dim3 Groups = Range.numGroups();
  for (uint64_t Flat = 0; Flat < Range.totalGroups(); ++Flat) {
    if (!Scratch.empty())
      std::fill(Scratch.begin(), Scratch.end(), std::byte{0});
    executeWorkGroup(Kernel, Range, unflattenGroupId(Flat, Groups), Args, 0,
                     Range.itemsPerGroup(),
                     Scratch.empty() ? nullptr : Scratch.data());
  }
}

std::vector<float> randomVec(size_t N, uint64_t Seed) {
  Rng R(Seed);
  std::vector<float> V(N);
  for (float &X : V)
    X = static_cast<float>(R.nextInRange(0.1, 1.0));
  return V;
}

ArgValue bufArg(std::vector<float> &V) {
  return ArgValue::buffer(reinterpret_cast<std::byte *>(V.data()),
                          V.size() * sizeof(float));
}

TEST(RegistryTest, AllBuiltinsPresent) {
  Registry &R = Registry::builtin();
  for (const char *Name :
       {"atax_kernel1", "atax_kernel2", "bicg_kernel1", "bicg_kernel2",
        "corr_mean_kernel", "corr_std_kernel", "corr_center_kernel",
        "corr_corr_kernel", "corr_corr_kernel_cpuopt", "gesummv_kernel",
        "syrk_kernel", "syr2k_kernel", "vec_add", "saxpy", "vec_scale",
        "block_sum", "md_merge_kernel"})
    EXPECT_NE(R.find(Name), nullptr) << Name;
  EXPECT_EQ(R.find("no_such_kernel"), nullptr);
}

TEST(RegistryDeathTest, GetUnknownKernelAborts) {
  EXPECT_DEATH(Registry::builtin().get("bogus_kernel"), "unknown kernel");
}

TEST(RegistryTest, WrittenArgsComputed) {
  const KernelInfo &Syrk = Registry::builtin().get("syrk_kernel");
  EXPECT_EQ(Syrk.writtenArgs(), (std::vector<size_t>{1}));
  const KernelInfo &Atax = Registry::builtin().get("atax_kernel1");
  EXPECT_EQ(Atax.writtenArgs(), (std::vector<size_t>{2}));
}

TEST(RegistryTest, CorrVariantDeclared) {
  const KernelInfo &Corr = Registry::builtin().get("corr_corr_kernel");
  ASSERT_EQ(Corr.Variants.size(), 1u);
  EXPECT_EQ(Corr.Variants[0], "corr_corr_kernel_cpuopt");
}

// --- ATAX ---------------------------------------------------------------------

TEST(PolybenchKernelTest, AtaxMatchesClosedForm) {
  const int64_t NX = 64, NY = 64;
  auto A = randomVec(NX * NY, 1);
  auto X = randomVec(NY, 2);
  std::vector<float> Tmp(NX, 0), Y(NY, 0);

  Registry &R = Registry::builtin();
  ArgsView Args1(std::vector<ArgValue>{bufArg(A), bufArg(X), bufArg(Tmp),
                                       ArgValue::scalarInt(NX),
                                       ArgValue::scalarInt(NY)});
  runKernel(R.get("atax_kernel1"), NDRange::of1D(NX, 32), Args1);
  ArgsView Args2(std::vector<ArgValue>{bufArg(A), bufArg(Tmp), bufArg(Y),
                                       ArgValue::scalarInt(NX),
                                       ArgValue::scalarInt(NY)});
  runKernel(R.get("atax_kernel2"), NDRange::of1D(NY, 32), Args2);

  for (int64_t I = 0; I < NX; ++I) {
    float Want = 0;
    for (int64_t J = 0; J < NY; ++J)
      Want += A[I * NY + J] * X[J];
    EXPECT_FLOAT_EQ(Tmp[I], Want);
  }
  for (int64_t J = 0; J < NY; ++J) {
    float Want = 0;
    for (int64_t I = 0; I < NX; ++I)
      Want += A[I * NY + J] * Tmp[I];
    EXPECT_FLOAT_EQ(Y[J], Want);
  }
}

// --- BICG ---------------------------------------------------------------------

TEST(PolybenchKernelTest, BicgMatchesClosedForm) {
  const int64_t N = 64;
  auto A = randomVec(N * N, 3);
  auto P = randomVec(N, 4);
  auto RV = randomVec(N, 5);
  std::vector<float> Q(N, 0), S(N, 0);

  Registry &Reg = Registry::builtin();
  ArgsView Args1(std::vector<ArgValue>{bufArg(A), bufArg(P), bufArg(Q),
                                       ArgValue::scalarInt(N),
                                       ArgValue::scalarInt(N)});
  runKernel(Reg.get("bicg_kernel1"), NDRange::of1D(N, 32), Args1);
  ArgsView Args2(std::vector<ArgValue>{bufArg(A), bufArg(RV), bufArg(S),
                                       ArgValue::scalarInt(N),
                                       ArgValue::scalarInt(N)});
  runKernel(Reg.get("bicg_kernel2"), NDRange::of1D(N, 32), Args2);

  for (int64_t I = 0; I < N; ++I) {
    float Want = 0;
    for (int64_t J = 0; J < N; ++J)
      Want += A[I * N + J] * P[J];
    EXPECT_FLOAT_EQ(Q[I], Want);
  }
  for (int64_t J = 0; J < N; ++J) {
    float Want = 0;
    for (int64_t I = 0; I < N; ++I)
      Want += A[I * N + J] * RV[I];
    EXPECT_FLOAT_EQ(S[J], Want);
  }
}

// --- GESUMMV -------------------------------------------------------------------

TEST(PolybenchKernelTest, GesummvMatchesClosedForm) {
  const int64_t N = 64;
  auto A = randomVec(N * N, 6);
  auto B = randomVec(N * N, 7);
  auto X = randomVec(N, 8);
  std::vector<float> Y(N, 0);
  float Alpha = 1.5f, Beta = 1.2f;

  ArgsView Args(std::vector<ArgValue>{
      bufArg(A), bufArg(B), bufArg(X), bufArg(Y), ArgValue::scalarFp(Alpha),
      ArgValue::scalarFp(Beta), ArgValue::scalarInt(N)});
  runKernel(Registry::builtin().get("gesummv_kernel"), NDRange::of1D(N, 32),
            Args);

  for (int64_t I = 0; I < N; ++I) {
    float SA = 0, SB = 0;
    for (int64_t J = 0; J < N; ++J) {
      SA += A[I * N + J] * X[J];
      SB += B[I * N + J] * X[J];
    }
    EXPECT_FLOAT_EQ(Y[I], Alpha * SA + Beta * SB);
  }
}

// --- SYRK / SYR2K -----------------------------------------------------------------

TEST(PolybenchKernelTest, SyrkMatchesClosedForm) {
  const int64_t N = 32, M = 32;
  auto A = randomVec(N * M, 9);
  auto C = randomVec(N * N, 10);
  std::vector<float> COut = C;
  float Alpha = 1.3f, Beta = 0.7f;

  ArgsView Args(std::vector<ArgValue>{
      bufArg(A), bufArg(COut), ArgValue::scalarFp(Alpha),
      ArgValue::scalarFp(Beta), ArgValue::scalarInt(N),
      ArgValue::scalarInt(M)});
  runKernel(Registry::builtin().get("syrk_kernel"),
            NDRange::of2D(N, N, 32, 8), Args);

  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J) {
      float Sum = 0;
      for (int64_t L = 0; L < M; ++L)
        Sum += A[I * M + L] * A[J * M + L];
      EXPECT_FLOAT_EQ(COut[I * N + J], Beta * C[I * N + J] + Alpha * Sum);
    }
}

TEST(PolybenchKernelTest, Syr2kMatchesClosedForm) {
  const int64_t N = 32, M = 32;
  auto A = randomVec(N * M, 11);
  auto B = randomVec(N * M, 12);
  auto C = randomVec(N * N, 13);
  std::vector<float> COut = C;
  float Alpha = 1.1f, Beta = 0.6f;

  ArgsView Args(std::vector<ArgValue>{
      bufArg(A), bufArg(B), bufArg(COut), ArgValue::scalarFp(Alpha),
      ArgValue::scalarFp(Beta), ArgValue::scalarInt(N),
      ArgValue::scalarInt(M)});
  runKernel(Registry::builtin().get("syr2k_kernel"),
            NDRange::of2D(N, N, 32, 8), Args);

  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J) {
      float Sum = 0;
      for (int64_t L = 0; L < M; ++L)
        Sum += A[I * M + L] * B[J * M + L] + B[I * M + L] * A[J * M + L];
      EXPECT_FLOAT_EQ(COut[I * N + J], Beta * C[I * N + J] + Alpha * Sum);
    }
}

// --- CORR ---------------------------------------------------------------------

TEST(PolybenchKernelTest, CorrMeanStdCenterMatchClosedForm) {
  const int64_t N = 32, M = 32;
  auto Data = randomVec(N * M, 14);
  std::vector<float> Orig = Data;
  std::vector<float> Mean(M, 0), Std(M, 0);

  Registry &Reg = Registry::builtin();
  ArgsView MeanArgs(std::vector<ArgValue>{bufArg(Data), bufArg(Mean),
                                          ArgValue::scalarInt(N),
                                          ArgValue::scalarInt(M)});
  runKernel(Reg.get("corr_mean_kernel"), NDRange::of1D(M, 32), MeanArgs);
  ArgsView StdArgs(std::vector<ArgValue>{bufArg(Data), bufArg(Mean),
                                         bufArg(Std), ArgValue::scalarInt(N),
                                         ArgValue::scalarInt(M)});
  runKernel(Reg.get("corr_std_kernel"), NDRange::of1D(M, 32), StdArgs);
  ArgsView CenterArgs(std::vector<ArgValue>{bufArg(Data), bufArg(Mean),
                                            bufArg(Std),
                                            ArgValue::scalarInt(N),
                                            ArgValue::scalarInt(M)});
  runKernel(Reg.get("corr_center_kernel"), NDRange::of2D(M, N, 32, 8),
            CenterArgs);

  for (int64_t J = 0; J < M; ++J) {
    float WantMean = 0;
    for (int64_t I = 0; I < N; ++I)
      WantMean += Orig[I * M + J];
    WantMean /= static_cast<float>(N);
    EXPECT_FLOAT_EQ(Mean[J], WantMean);

    float Var = 0;
    for (int64_t I = 0; I < N; ++I) {
      float D = Orig[I * M + J] - WantMean;
      Var += D * D;
    }
    Var /= static_cast<float>(N);
    float WantStd = std::sqrt(Var) <= 0.1f ? 1.0f : std::sqrt(Var);
    EXPECT_FLOAT_EQ(Std[J], WantStd);

    for (int64_t I = 0; I < N; ++I)
      EXPECT_FLOAT_EQ(Data[I * M + J],
                      (Orig[I * M + J] - WantMean) /
                          (std::sqrt(static_cast<float>(N)) * WantStd));
  }
}

TEST(PolybenchKernelTest, CorrKernelSymmetricWithUnitDiagonal) {
  const int64_t N = 32, M = 32;
  auto Data = randomVec(N * M, 15);
  std::vector<float> Corr(M * M, -1);

  ArgsView Args(std::vector<ArgValue>{bufArg(Data), bufArg(Corr),
                                      ArgValue::scalarInt(N),
                                      ArgValue::scalarInt(M)});
  runKernel(Registry::builtin().get("corr_corr_kernel"),
            NDRange::of2D(M, M, 32, 8), Args);

  for (int64_t J = 0; J < M; ++J)
    EXPECT_FLOAT_EQ(Corr[J * M + J], 1.0f);
  for (int64_t J1 = 0; J1 < M; ++J1)
    for (int64_t J2 = J1 + 1; J2 < M; ++J2) {
      float Want = 0;
      for (int64_t I = 0; I < N; ++I)
        Want += Data[I * M + J1] * Data[I * M + J2];
      EXPECT_FLOAT_EQ(Corr[J1 * M + J2], Want);
      EXPECT_FLOAT_EQ(Corr[J2 * M + J1], Corr[J1 * M + J2]);
    }
}

TEST(PolybenchKernelTest, CorrVariantsProduceIdenticalOutput) {
  const int64_t N = 32, M = 32;
  auto Data = randomVec(N * M, 16);
  std::vector<float> CorrA(M * M, 0), CorrB(M * M, 0);

  Registry &Reg = Registry::builtin();
  ArgsView ArgsA(std::vector<ArgValue>{bufArg(Data), bufArg(CorrA),
                                       ArgValue::scalarInt(N),
                                       ArgValue::scalarInt(M)});
  runKernel(Reg.get("corr_corr_kernel"), NDRange::of2D(M, M, 32, 8), ArgsA);
  ArgsView ArgsB(std::vector<ArgValue>{bufArg(Data), bufArg(CorrB),
                                       ArgValue::scalarInt(N),
                                       ArgValue::scalarInt(M)});
  runKernel(Reg.get("corr_corr_kernel_cpuopt"), NDRange::of2D(M, M, 32, 8),
            ArgsB);
  EXPECT_EQ(CorrA, CorrB);
}

// --- Vector / barrier kernels ----------------------------------------------------

TEST(VectorKernelTest, VecAdd) {
  const int64_t N = 128;
  auto A = randomVec(N, 17);
  auto B = randomVec(N, 18);
  std::vector<float> C(N, 0);
  ArgsView Args(std::vector<ArgValue>{bufArg(A), bufArg(B), bufArg(C),
                                      ArgValue::scalarInt(N)});
  runKernel(Registry::builtin().get("vec_add"), NDRange::of1D(N, 32), Args);
  for (int64_t I = 0; I < N; ++I)
    EXPECT_FLOAT_EQ(C[I], A[I] + B[I]);
}

TEST(VectorKernelTest, Saxpy) {
  const int64_t N = 128;
  auto X = randomVec(N, 19);
  auto Y = randomVec(N, 20);
  std::vector<float> YOut = Y;
  ArgsView Args(std::vector<ArgValue>{bufArg(X), bufArg(YOut),
                                      ArgValue::scalarFp(2.5),
                                      ArgValue::scalarInt(N)});
  runKernel(Registry::builtin().get("saxpy"), NDRange::of1D(N, 32), Args);
  for (int64_t I = 0; I < N; ++I)
    EXPECT_FLOAT_EQ(YOut[I], 2.5f * X[I] + Y[I]);
}

TEST(VectorKernelTest, BlockSumUsesBarrierPhases) {
  const int64_t N = 256;
  const uint64_t Local = 64;
  auto X = randomVec(N, 21);
  std::vector<float> Partial(N / Local, 0);
  ArgsView Args(std::vector<ArgValue>{bufArg(X), bufArg(Partial),
                                      ArgValue::scalarInt(N)});
  runKernel(Registry::builtin().get("block_sum"), NDRange::of1D(N, Local),
            Args);
  for (uint64_t G = 0; G < Partial.size(); ++G) {
    float Want = 0;
    for (uint64_t I = 0; I < Local; ++I)
      Want += X[G * Local + I];
    EXPECT_FLOAT_EQ(Partial[G], Want);
  }
}

// --- Merge kernel (paper Figure 9) ---------------------------------------------

class MergeKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeKernelTest, CopiesOnlyDifferingElements) {
  int Granularity = GetParam();
  const uint64_t Bytes = 4096;
  Rng R(22);
  std::vector<std::byte> Orig(Bytes), Cpu(Bytes), Gpu(Bytes);
  for (uint64_t I = 0; I < Bytes; ++I) {
    Orig[I] = static_cast<std::byte>(R.next() & 0xFF);
    Gpu[I] = static_cast<std::byte>(R.next() & 0xFF); // GPU-computed data.
  }
  Cpu = Orig;
  // CPU computed a few scattered regions.
  std::vector<uint64_t> Changed;
  for (int C = 0; C < 32; ++C) {
    uint64_t At = R.nextBelow(Bytes / Granularity) *
                  static_cast<uint64_t>(Granularity);
    for (int B = 0; B < Granularity; ++B) {
      Cpu[At + static_cast<uint64_t>(B)] =
          static_cast<std::byte>(~static_cast<unsigned>(
              std::to_integer<unsigned>(Orig[At + static_cast<uint64_t>(B)])));
    }
    Changed.push_back(At);
  }
  std::vector<std::byte> GpuBefore = Gpu;

  const kern::KernelInfo &Merge =
      Registry::builtin().get("md_merge_kernel");
  uint64_t Items = (Bytes + MergeChunkBytes - 1) / MergeChunkBytes;
  uint64_t Global = (Items + 63) / 64 * 64;
  ArgsView Args(std::vector<ArgValue>{
      ArgValue::buffer(Cpu.data(), Bytes), ArgValue::buffer(Gpu.data(), Bytes),
      ArgValue::buffer(Orig.data(), Bytes),
      ArgValue::scalarInt(static_cast<int64_t>(Bytes)),
      ArgValue::scalarInt(Granularity)});
  runKernel(Merge, NDRange::of1D(Global, 64), Args);

  // Elements the CPU changed are copied; everything else keeps GPU data.
  for (uint64_t I = 0; I < Bytes; ++I) {
    bool InChanged = false;
    for (uint64_t At : Changed)
      if (I >= At && I < At + static_cast<uint64_t>(Granularity))
        InChanged = true;
    if (InChanged)
      EXPECT_EQ(Gpu[I], Cpu[I]) << "byte " << I;
    else
      EXPECT_EQ(Gpu[I], GpuBefore[I]) << "byte " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, MergeKernelTest,
                         ::testing::Values(1, 4, 8));

} // namespace
