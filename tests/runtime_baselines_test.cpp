//===- tests/runtime_baselines_test.cpp - Baseline runtime tests -----------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the non-FluidiCL runtimes: ManagedBuffer's validity state
/// machine, the single-device baselines, and the static-partition runtime
/// (functional correctness across split fractions, timing monotonicity).
///
//===----------------------------------------------------------------------===//

#include "runtime/ManagedBuffer.h"
#include "runtime/SingleDevice.h"
#include "runtime/ProfiledSplit.h"
#include "runtime/StaticPartition.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

using namespace fcl;
using namespace fcl::runtime;
using namespace fcl::work;

namespace {

// --- ManagedBuffer ---------------------------------------------------------------

TEST(ManagedBufferTest, StartsHostValid) {
  mcl::Context Ctx;
  ManagedBuffer B(Ctx, 256, "b");
  EXPECT_TRUE(B.hostValid());
  EXPECT_FALSE(B.validOn(Ctx.gpu()));
  EXPECT_EQ(B.anyValidDevice(), nullptr);
}

TEST(ManagedBufferTest, EnsureOnUploadsOnce) {
  mcl::Context Ctx;
  ManagedBuffer B(Ctx, 256, "b");
  auto Queue = Ctx.createQueue(Ctx.gpu());
  std::vector<uint8_t> Data(256, 7);
  B.writeFromHost(Data.data(), Data.size());
  mcl::EventPtr E = B.ensureOn(Ctx.gpu(), *Queue);
  ASSERT_NE(E, nullptr);
  EXPECT_TRUE(B.validOn(Ctx.gpu()));
  // Second call: already valid, no transfer.
  EXPECT_EQ(B.ensureOn(Ctx.gpu(), *Queue), nullptr);
  Queue->finish();
  EXPECT_EQ(std::to_integer<int>(B.on(Ctx.gpu()).data()[0]), 7);
}

TEST(ManagedBufferTest, HostWriteInvalidatesDevices) {
  mcl::Context Ctx;
  ManagedBuffer B(Ctx, 64, "b");
  auto Queue = Ctx.createQueue(Ctx.gpu());
  B.ensureOn(Ctx.gpu(), *Queue);
  Queue->finish();
  uint8_t Byte = 1;
  B.writeFromHost(&Byte, 1);
  EXPECT_FALSE(B.validOn(Ctx.gpu()));
}

TEST(ManagedBufferTest, DeviceExclusiveThenReadBack) {
  mcl::Context Ctx;
  ManagedBuffer B(Ctx, 64, "b");
  auto Queue = Ctx.createQueue(Ctx.gpu());
  B.ensureOn(Ctx.gpu(), *Queue);
  Queue->finish();
  // Simulate a kernel writing on the GPU.
  B.on(Ctx.gpu()).data()[0] = std::byte{42};
  B.markDeviceExclusive(Ctx.gpu());
  EXPECT_FALSE(B.hostValid());
  EXPECT_EQ(B.anyValidDevice(), &Ctx.gpu());
  B.ensureHost(*Queue);
  EXPECT_TRUE(B.hostValid());
  EXPECT_EQ(std::to_integer<int>(B.hostData()[0]), 42);
}

TEST(ManagedBufferDeathTest, EnsureHostWithoutValidCopyAborts) {
  mcl::Context Ctx;
  ManagedBuffer B(Ctx, 64, "b");
  auto CpuQueue = Ctx.createQueue(Ctx.cpu());
  B.markDeviceExclusive(Ctx.gpu());
  // The CPU queue's device has no valid copy.
  EXPECT_DEATH(B.ensureHost(*CpuQueue), "valid");
}

// --- Single-device runtimes --------------------------------------------------------

class SingleDeviceWorkloadTest
    : public ::testing::TestWithParam<std::tuple<size_t, mcl::DeviceKind>> {};

TEST_P(SingleDeviceWorkloadTest, FunctionalMatchesReference) {
  auto [Idx, Kind] = GetParam();
  Workload W = testSuite()[Idx];
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  SingleDeviceRuntime RT(Ctx, Kind);
  RunResult Res = runWorkload(RT, W, /*Validate=*/true);
  EXPECT_TRUE(Res.Valid) << W.Name << " on " << RT.name() << " err "
                         << Res.MaxAbsError;
}

std::string singleDeviceTestName(
    const ::testing::TestParamInfo<std::tuple<size_t, mcl::DeviceKind>>
        &Info) {
  static const char *Names[] = {"ATAX", "BICG",  "CORR",
                                "GESUMMV", "SYRK", "SYR2K"};
  return std::string(Names[std::get<0>(Info.param)]) +
         (std::get<1>(Info.param) == mcl::DeviceKind::Cpu ? "_Cpu" : "_Gpu");
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsBothDevices, SingleDeviceWorkloadTest,
    ::testing::Combine(::testing::Range<size_t>(0, 6),
                       ::testing::Values(mcl::DeviceKind::Cpu,
                                         mcl::DeviceKind::Gpu)),
    singleDeviceTestName);

TEST(SingleDeviceTest, KernelOnlyDurationPositiveAndDeviceDependent) {
  Workload W = makeBicg(1024, 1024);
  mcl::Context CtxC(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  SingleDeviceRuntime Cpu(CtxC, mcl::DeviceKind::Cpu);
  mcl::Context CtxG(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  SingleDeviceRuntime Gpu(CtxG, mcl::DeviceKind::Gpu);
  for (size_t B = 0; B < W.Buffers.size(); ++B) {
    Cpu.createBuffer(W.Buffers[B].Bytes, W.Buffers[B].Name);
    Gpu.createBuffer(W.Buffers[B].Bytes, W.Buffers[B].Name);
  }
  for (const KernelCall &Call : W.Calls) {
    Duration TC = Cpu.kernelOnlyDuration(Call.Kernel, Call.Range, Call.Args);
    Duration TG = Gpu.kernelOnlyDuration(Call.Kernel, Call.Range, Call.Args);
    EXPECT_GT(TC.nanos(), 0);
    EXPECT_GT(TG.nanos(), 0);
    EXPECT_NE(TC.nanos(), TG.nanos());
  }
}

// --- Static partition -----------------------------------------------------------

class StaticPartitionTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(StaticPartitionTest, FunctionalAtEverySplit) {
  auto [Idx, Pct] = GetParam();
  Workload W = testSuite()[Idx];
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  StaticPartitionRuntime RT(Ctx, Pct / 100.0);
  RunResult Res = runWorkload(RT, W, /*Validate=*/true);
  EXPECT_TRUE(Res.Valid) << W.Name << " at " << Pct << "% GPU, err "
                         << Res.MaxAbsError;
}

std::string staticPartitionTestName(
    const ::testing::TestParamInfo<std::tuple<size_t, int>> &Info) {
  static const char *Names[] = {"ATAX", "BICG",  "CORR",
                                "GESUMMV", "SYRK", "SYR2K"};
  return std::string(Names[std::get<0>(Info.param)]) + "_Gpu" +
         std::to_string(std::get<1>(Info.param));
}

INSTANTIATE_TEST_SUITE_P(
    SplitsAndWorkloads, StaticPartitionTest,
    ::testing::Combine(::testing::Range<size_t>(0, 6),
                       ::testing::Values(0, 30, 50, 70, 100)),
    staticPartitionTestName);

TEST(StaticPartitionTest, PureSplitsMatchSingleDeviceApproximately) {
  Workload W = makeSyrk(256, 256);
  RunConfig C;
  double Gpu100 = timeStaticPartition(W, 1.0, C).toSeconds();
  double GpuOnly = timeUnder(RuntimeKind::GpuOnly, W, C).toSeconds();
  // The pure split runs the same plan as the single-device baseline.
  EXPECT_NEAR(Gpu100, GpuOnly, GpuOnly * 0.02);
  double Cpu0 = timeStaticPartition(W, 0.0, C).toSeconds();
  double CpuOnly = timeUnder(RuntimeKind::CpuOnly, W, C).toSeconds();
  EXPECT_NEAR(Cpu0, CpuOnly, CpuOnly * 0.02);
}

TEST(StaticPartitionTest, InteriorSplitBeatsBothPureSplitsOnSyrk) {
  Workload W = makeSyrk(1024, 1024);
  RunConfig C;
  double S0 = timeStaticPartition(W, 0.0, C).toSeconds();
  double S60 = timeStaticPartition(W, 0.6, C).toSeconds();
  double S100 = timeStaticPartition(W, 1.0, C).toSeconds();
  EXPECT_LT(S60, S0);
  EXPECT_LT(S60, S100);
}

TEST(StaticPartitionTest, OracleReturnsMinimumOfSweep) {
  Workload W = makeSyrk(512, 512);
  RunConfig C;
  double BestFrac = -1;
  Duration Oracle = oracleStaticPartition(W, C, 20, &BestFrac);
  EXPECT_GE(BestFrac, 0.0);
  EXPECT_LE(BestFrac, 1.0);
  for (int Pct = 0; Pct <= 100; Pct += 20)
    EXPECT_LE(Oracle.nanos(),
              timeStaticPartition(W, Pct / 100.0, C).nanos());
}

// --- Qilin-style profiled splitter ---------------------------------------------

TEST(ProfiledSplitTest, ModelComputesRateProportionalFraction) {
  runtime::SplitModel M;
  EXPECT_FALSE(M.trained("k"));
  EXPECT_DOUBLE_EQ(M.gpuFraction("k"), 1.0); // Untrained -> GPU.
  M.record("k", mcl::DeviceKind::Cpu, Duration::milliseconds(30));
  M.record("k", mcl::DeviceKind::Gpu, Duration::milliseconds(10));
  ASSERT_TRUE(M.trained("k"));
  // GPU is 3x faster -> 75% of the work.
  EXPECT_NEAR(M.gpuFraction("k"), 0.75, 1e-9);
}

TEST(ProfiledSplitTest, TrainedFractionsMatchDeviceAffinity) {
  runtime::SplitModel M;
  trainSplitModel(makeBicg(4096, 4096), hw::paperMachine(), M);
  // Kernel 1 prefers the CPU (fraction < 0.5), kernel 2 the GPU.
  EXPECT_LT(M.gpuFraction("bicg_kernel1"), 0.55);
  EXPECT_GT(M.gpuFraction("bicg_kernel2"), 0.9);
}

TEST(ProfiledSplitTest, FunctionalMatchesReference) {
  Workload W = testSuite()[4]; // SYRK.
  runtime::SplitModel M;
  trainSplitModel(W, hw::paperMachine(), M);
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  runtime::ProfiledSplitRuntime RT(Ctx, M);
  RunResult Res = runWorkload(RT, W, true);
  EXPECT_TRUE(Res.Valid) << Res.MaxAbsError;
}

TEST(ProfiledSplitTest, BeatsSingleFixedSplitOnBicg) {
  // BICG's two kernels want opposite splits: per-kernel trained fractions
  // must beat any single fixed fraction.
  Workload W = makeBicg(4096, 4096);
  RunConfig C;
  double Qilin = timeProfiledSplit(W, W, C).toSeconds();
  double Oracle = oracleStaticPartition(W, C).toSeconds();
  EXPECT_LT(Qilin, Oracle * 1.001);
}

TEST(ProfiledSplitTest, FluidiclBeatsQilinWithoutTraining) {
  RunConfig C;
  for (const Workload &W : {makeSyrk(1024, 1024), makeBicg(4096, 4096)}) {
    double Qilin = timeProfiledSplit(W, W, C).toSeconds();
    double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    EXPECT_LT(Fcl, Qilin) << W.Name;
  }
}

TEST(StaticPartitionDeathTest, RejectsFractionOutOfRange) {
  mcl::Context Ctx;
  EXPECT_DEATH(StaticPartitionRuntime(Ctx, 1.5), "fraction");
}

} // namespace
