//===- tests/fluidicl_integration_test.cpp - End-to-end FluidiCL tests ----===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end functional tests: every workload of the scaled-down suite
/// runs under FluidiCL (in several optimization configurations) and must
/// produce exactly the single-device reference results; timing invariants
/// from the paper (never much worse than the best device; cooperative
/// kernels beat single devices where expected) are asserted on the
/// paper-scale inputs in timing-only mode.
///
//===----------------------------------------------------------------------===//

#include "fluidicl/Runtime.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

using namespace fcl;
using namespace fcl::work;

namespace {

class FluidiclWorkloadTest : public ::testing::TestWithParam<size_t> {};

const std::vector<Workload> &smallSuite() {
  static const std::vector<Workload> Suite = testSuite();
  return Suite;
}

TEST_P(FluidiclWorkloadTest, FunctionalMatchesReference) {
  const Workload &W = smallSuite()[GetParam()];
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx);
  RunResult Res = runWorkload(RT, W, /*Validate=*/true);
  ASSERT_TRUE(Res.Validated);
  EXPECT_TRUE(Res.Valid) << W.Name << " max error " << Res.MaxAbsError;
}

TEST_P(FluidiclWorkloadTest, FunctionalWithoutOptimizations) {
  const Workload &W = smallSuite()[GetParam()];
  fluidicl::Options Opts;
  Opts.AbortPolicy = hw::AbortPolicyKind::AtStart;
  Opts.LoopUnroll = false;
  Opts.CpuWorkGroupSplit = false;
  Opts.BufferPool = false;
  Opts.DataLocationTracking = false;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx, Opts);
  RunResult Res = runWorkload(RT, W, /*Validate=*/true);
  EXPECT_TRUE(Res.Valid) << W.Name << " max error " << Res.MaxAbsError;
}

TEST_P(FluidiclWorkloadTest, FunctionalWithOnlineProfiling) {
  const Workload &W = smallSuite()[GetParam()];
  fluidicl::Options Opts;
  Opts.OnlineProfiling = true;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx, Opts);
  RunResult Res = runWorkload(RT, W, /*Validate=*/true);
  EXPECT_TRUE(Res.Valid) << W.Name << " max error " << Res.MaxAbsError;
}

std::string workloadTestName(const ::testing::TestParamInfo<size_t> &Info) {
  static const char *Names[] = {"ATAX", "BICG", "CORR",
                                "GESUMMV", "SYRK", "SYR2K"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, FluidiclWorkloadTest,
                         ::testing::Range<size_t>(0, 6), workloadTestName);

TEST(FluidiclTimingTest, NeverMuchWorseThanBestDevice) {
  // Paper: "In all benchmarks, performance of our runtime comes to within
  // 3% of the best of the two devices." Allow a slightly wider margin.
  RunConfig C;
  for (const Workload &W : paperSuite()) {
    Duration Cpu = timeUnder(RuntimeKind::CpuOnly, W, C);
    Duration Gpu = timeUnder(RuntimeKind::GpuOnly, W, C);
    Duration Fcl = timeUnder(RuntimeKind::FluidiCL, W, C);
    double Best = std::min(Cpu.toSeconds(), Gpu.toSeconds());
    EXPECT_LE(Fcl.toSeconds(), Best * 1.08)
        << W.Name << ": fluidicl " << Fcl.toSeconds() << "s vs best "
        << Best << "s";
  }
}

TEST(FluidiclTimingTest, CooperativeKernelsBeatBothDevices) {
  // SYRK/SYR2K-style kernels have comparable device speeds; cooperative
  // execution must beat the best single device comfortably (paper Fig 13).
  RunConfig C;
  for (const Workload &W : {makeSyrk(1024, 1024), makeSyr2k(1536, 1536)}) {
    Duration Cpu = timeUnder(RuntimeKind::CpuOnly, W, C);
    Duration Gpu = timeUnder(RuntimeKind::GpuOnly, W, C);
    Duration Fcl = timeUnder(RuntimeKind::FluidiCL, W, C);
    double Best = std::min(Cpu.toSeconds(), Gpu.toSeconds());
    EXPECT_LT(Fcl.toSeconds(), Best * 0.9)
        << W.Name << ": fluidicl " << Fcl.toSeconds() << "s vs best "
        << Best << "s";
  }
}

} // namespace
