//===- tests/support_test.cpp - support/ unit tests ------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/SimTime.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace fcl;

namespace {

// --- SimTime ---------------------------------------------------------------

TEST(SimTimeTest, DurationConstructors) {
  EXPECT_EQ(Duration::zero().nanos(), 0);
  EXPECT_EQ(Duration::nanoseconds(7).nanos(), 7);
  EXPECT_EQ(Duration::microseconds(3).nanos(), 3000);
  EXPECT_EQ(Duration::milliseconds(2).nanos(), 2000000);
}

TEST(SimTimeTest, SecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::seconds(1e-9).nanos(), 1);
  EXPECT_EQ(Duration::seconds(1.4e-9).nanos(), 1);
  EXPECT_EQ(Duration::seconds(1.6e-9).nanos(), 2);
}

TEST(SimTimeTest, SecondsClampsNegativeToZero) {
  EXPECT_EQ(Duration::seconds(-5.0).nanos(), 0);
}

TEST(SimTimeTest, DurationArithmetic) {
  Duration A = Duration::microseconds(2);
  Duration B = Duration::microseconds(3);
  EXPECT_EQ((A + B).nanos(), 5000);
  EXPECT_EQ((B - A).nanos(), 1000);
  EXPECT_EQ((A * 4).nanos(), 8000);
  A += B;
  EXPECT_EQ(A.nanos(), 5000);
}

TEST(SimTimeTest, DurationComparison) {
  EXPECT_LT(Duration::nanoseconds(1), Duration::nanoseconds(2));
  EXPECT_EQ(Duration::nanoseconds(5), Duration::microseconds(0) +
                                          Duration::nanoseconds(5));
}

TEST(SimTimeTest, TimePointArithmetic) {
  TimePoint T0(1000);
  TimePoint T1 = T0 + Duration::nanoseconds(500);
  EXPECT_EQ(T1.nanos(), 1500);
  EXPECT_EQ((T1 - T0).nanos(), 500);
  EXPECT_LT(T0, T1);
}

TEST(SimTimeTest, UnitConversions) {
  Duration D = Duration::milliseconds(1500);
  EXPECT_DOUBLE_EQ(D.toSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(D.toMillis(), 1500.0);
  EXPECT_DOUBLE_EQ(D.toMicros(), 1.5e6);
}

// --- Format ------------------------------------------------------------------

TEST(FormatTest, BasicFormatting) {
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatString("%.2f", 3.14159), "3.14");
}

TEST(FormatTest, EmptyAndLong) {
  EXPECT_EQ(formatString("%s", ""), "");
  std::string Long(500, 'a');
  EXPECT_EQ(formatString("%s", Long.c_str()), Long);
}

// --- Rng -----------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(RngTest, NextInRangeRespectsBounds) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextInRange(2.5, 3.5);
    EXPECT_GE(V, 2.5);
    EXPECT_LT(V, 3.5);
  }
}

TEST(RngTest, NextBelowBounded) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

// --- Statistics -------------------------------------------------------------

TEST(StatisticsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0);
}

TEST(StatisticsTest, GeomeanBasics) {
  EXPECT_DOUBLE_EQ(geomean({4, 1}), 2.0);
  EXPECT_NEAR(geomean({1, 10, 100}), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(geomean({}), 0);
}

TEST(StatisticsTest, GeomeanOfIdenticalValues) {
  EXPECT_NEAR(geomean({3.7, 3.7, 3.7}), 3.7, 1e-12);
}

TEST(StatisticsTest, StddevBasics) {
  EXPECT_DOUBLE_EQ(stddev({5}), 0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
}

TEST(StatisticsTest, AccumulatorTracksMinMaxMean) {
  Accumulator A;
  EXPECT_EQ(A.count(), 0u);
  EXPECT_DOUBLE_EQ(A.mean(), 0);
  A.add(3);
  A.add(1);
  A.add(5);
  EXPECT_EQ(A.count(), 3u);
  EXPECT_DOUBLE_EQ(A.min(), 1);
  EXPECT_DOUBLE_EQ(A.max(), 5);
  EXPECT_DOUBLE_EQ(A.mean(), 3);
  EXPECT_DOUBLE_EQ(A.sum(), 9);
}

// --- Table --------------------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  Table T({"a", "bb"});
  T.addRow({"xxx", "y"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("a    bb"), std::string::npos);
  EXPECT_NE(Out.find("xxx  y"), std::string::npos);
  EXPECT_EQ(T.numRows(), 1u);
}

TEST(TableTest, HeaderOnlyRenders) {
  Table T({"only"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("only"), std::string::npos);
  EXPECT_NE(Out.find("----"), std::string::npos);
}

// --- Csv --------------------------------------------------------------------

TEST(CsvTest, RendersRows) {
  CsvWriter C({"a", "b"});
  C.addRow({"1", "2"});
  EXPECT_EQ(C.render(), "a,b\n1,2\n");
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter C({"x"});
  C.addRow({"has,comma"});
  C.addRow({"has\"quote"});
  std::string Out = C.render();
  EXPECT_NE(Out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(Out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(CsvTest, WriteFileRoundTrip) {
  CsvWriter C({"k", "v"});
  C.addRow({"alpha", "1"});
  std::string Path = ::testing::TempDir() + "/fcl_csv_test.csv";
  ASSERT_TRUE(C.writeFile(Path));
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), "k,v\nalpha,1\n");
  std::remove(Path.c_str());
}

TEST(CsvTest, WriteFileFailsOnBadPath) {
  CsvWriter C({"k"});
  EXPECT_FALSE(C.writeFile("/nonexistent-dir-xyz/file.csv"));
}

} // namespace
