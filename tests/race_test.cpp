//===- tests/race_test.cpp - fcl::race analyzer tests ----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the happens-before race analyzer: fork/drain ordering of the
/// vector-clock core, declared synchronization (sections, leases, guards)
/// on both hazardous and clean shapes, the hybrid lockset rule that keeps
/// inline-pumped nested events from tripping false positives, finding
/// deduplication, the check::DiagSink bridge, the seeded fixture sweep,
/// and the serve-engine stress gates: a high-concurrency mixed workload
/// must analyze clean AND produce byte-identical reports with the
/// analyzer on or off.
///
//===----------------------------------------------------------------------===//

#include "check/Diag.h"
#include "race/Bridge.h"
#include "race/Fixtures.h"
#include "race/Race.h"
#include "serve/Engine.h"
#include "serve/Metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace fcl;

namespace {

/// Arms the process-wide analyzer for one test and disarms it on exit so
/// tests cannot leak an enabled analyzer into each other.
struct Armed {
  Armed() {
    race::Analyzer::instance().reset();
    race::Analyzer::instance().setEnabled(true);
  }
  ~Armed() {
    race::Analyzer::instance().setEnabled(false);
    race::Analyzer::instance().reset();
  }
  race::Analyzer &operator*() { return race::Analyzer::instance(); }
  race::Analyzer *operator->() { return &race::Analyzer::instance(); }
};

std::vector<race::Finding> findingsOf(race::Analyzer &A) {
  return A.findings();
}

TEST(RaceCoreTest, ForkEdgeOrdersParentBeforeChild) {
  Armed A;
  A->sharedWrite("obj", "init");
  A->onSchedule(1);
  A->onEventBegin(1);
  A->sharedWrite("obj", "update"); // ordered through the fork edge
  A->onEventEnd();
  EXPECT_FALSE(A->hasFindings());
}

TEST(RaceCoreTest, SiblingEventsAreUnordered) {
  Armed A;
  A->onSchedule(1);
  A->onSchedule(2);
  A->onEventBegin(1);
  A->sharedWrite("obj", "a");
  A->onEventEnd();
  A->onEventBegin(2);
  A->sharedWrite("obj", "b"); // no edge between siblings
  A->onEventEnd();
  std::vector<race::Finding> F = findingsOf(*A);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Kind, race::FindingKind::UnorderedAccess);
  EXPECT_EQ(F[0].Object, "obj");
}

TEST(RaceCoreTest, ReadWriteConflictIsAlsoCaught) {
  Armed A;
  A->onSchedule(1);
  A->onSchedule(2);
  A->onEventBegin(1);
  A->sharedRead("obj", "peek");
  A->onEventEnd();
  A->onEventBegin(2);
  A->sharedWrite("obj", "clobber");
  A->onEventEnd();
  std::vector<race::Finding> F = findingsOf(*A);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Kind, race::FindingKind::UnorderedAccess);
}

TEST(RaceCoreTest, ConcurrentReadsAreNotAConflict) {
  Armed A;
  A->onSchedule(1);
  A->onSchedule(2);
  A->onEventBegin(1);
  A->sharedRead("obj", "peek");
  A->onEventEnd();
  A->onEventBegin(2);
  A->sharedRead("obj", "peek");
  A->onEventEnd();
  EXPECT_FALSE(A->hasFindings());
}

TEST(RaceCoreTest, DrainJoinOrdersHostAfterAllEvents) {
  Armed A;
  A->onSchedule(1);
  A->onSchedule(2);
  A->onEventBegin(1);
  A->sharedWrite("obj", "a");
  A->onEventEnd();
  A->onEventBegin(2);
  A->sharedWrite("other", "b");
  A->onEventEnd();
  A->onDrainExit(); // run loop returned: host joins both events
  A->sharedWrite("obj", "host-reads-results");
  A->sharedWrite("other", "host-reads-results");
  EXPECT_FALSE(A->hasFindings());
}

TEST(RaceCoreTest, SectionsOrderSiblingAccesses) {
  Armed A;
  A->onSchedule(1);
  A->onSchedule(2);
  A->onEventBegin(1);
  A->sectionEnter("m");
  A->sharedWrite("obj", "a");
  A->sectionExit("m");
  A->onEventEnd();
  A->onEventBegin(2);
  A->sectionEnter("m"); // joins event#1's release
  A->sharedWrite("obj", "b");
  A->sectionExit("m");
  A->onEventEnd();
  EXPECT_FALSE(A->hasFindings());
}

// The serve false-positive shape: an inline-pumped nested event runs and
// touches the object while the outer event still holds the section and
// has not published yet. On OS threads the mutex would block the nested
// task, so the hybrid lockset rule must exempt the pair.
TEST(RaceCoreTest, LocksetExemptsInlinePumpedOverlap) {
  Armed A;
  A->onSchedule(1);
  A->onSchedule(2);
  A->onEventBegin(1);
  A->sectionEnter("m");
  A->sharedWrite("obj", "outer");
  // Inline pump: event#2 begins nested inside event#1's section.
  A->onEventBegin(2);
  A->sectionEnter("m"); // nothing published yet
  A->sharedWrite("obj", "nested");
  A->sectionExit("m");
  A->onEventEnd();
  A->sharedWrite("obj", "outer-again");
  A->sectionExit("m");
  A->onEventEnd();
  EXPECT_FALSE(A->hasFindings());
}

TEST(RaceCoreTest, UnrelatedSectionDoesNotExempt) {
  Armed A;
  A->onSchedule(1);
  A->onSchedule(2);
  A->onEventBegin(1);
  A->sectionEnter("m1");
  A->sharedWrite("obj", "a");
  A->sectionExit("m1");
  A->onEventEnd();
  A->onEventBegin(2);
  A->sectionEnter("m2"); // different section: no ordering, no lockset
  A->sharedWrite("obj", "b");
  A->sectionExit("m2");
  A->onEventEnd();
  std::vector<race::Finding> F = findingsOf(*A);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Kind, race::FindingKind::UnorderedAccess);
}

TEST(RaceCoreTest, LeaseOverlapDetectedAndHandoffClean) {
  Armed A;
  A->leaseAcquire("dev", "job-a");
  A->leaseRelease("dev");
  A->leaseAcquire("dev", "job-b"); // ordered handoff: clean
  EXPECT_FALSE(A->hasFindings());
  A->leaseAcquire("dev", "job-c"); // still held by job-b: overlap
  std::vector<race::Finding> F = findingsOf(*A);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Kind, race::FindingKind::LeaseOverlap);
  EXPECT_EQ(F[0].Object, "dev");
}

TEST(RaceCoreTest, GuardReentryDetected) {
  Armed A;
  A->guardEnter("cb");
  A->guardEnter("cb"); // nested entry of a non-reentrant scope
  A->guardExit("cb");
  A->guardExit("cb");
  std::vector<race::Finding> F = findingsOf(*A);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Kind, race::FindingKind::ReentrantCallback);
}

TEST(RaceCoreTest, FindingsDeduplicateWithRepeatCount) {
  Armed A;
  A->onSchedule(1);
  A->onSchedule(2);
  A->onSchedule(3);
  A->onEventBegin(1);
  A->sharedWrite("obj", "a");
  A->onEventEnd();
  A->onEventBegin(2);
  A->sharedWrite("obj", "b"); // conflict #1 (vs event#1)
  A->onEventEnd();
  A->onEventBegin(3);
  A->sharedWrite("obj", "c"); // conflict #2 (vs event#2), same (kind, object)
  A->onEventEnd();
  std::vector<race::Finding> F = A->takeFindings();
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Repeats, 2u);
  EXPECT_FALSE(A->hasFindings()); // takeFindings drained the set
}

TEST(RaceBridgeTest, FindingsBecomeDiagsWithRepeatCarried) {
  race::Finding F;
  F.Kind = race::FindingKind::UnorderedAccess;
  F.Object = "serve.engine#0.ready";
  F.Message = "conflicting accesses";
  F.Repeats = 154;
  check::DiagSink Sink(check::Policy::Warn);
  EXPECT_EQ(race::reportFindings({F}, Sink), 1u);
  ASSERT_EQ(Sink.diags().size(), 1u);
  EXPECT_EQ(Sink.diags()[0].Kind, check::DiagKind::RaceUnorderedAccess);
  EXPECT_EQ(Sink.diags()[0].Kernel, "serve.engine#0.ready");
  EXPECT_EQ(Sink.diags()[0].Repeat, 154u);
  EXPECT_EQ(race::diagKindFor(race::FindingKind::ReentrantCallback),
            check::DiagKind::RaceReentrantCallback);
  EXPECT_EQ(race::diagKindFor(race::FindingKind::LeaseOverlap),
            check::DiagKind::RaceLeaseOverlap);
}

TEST(RaceFixturesTest, EverySeededFixtureBehavesAsDeclared) {
  ASSERT_GE(race::fixtureCases().size(), 6u);
  int Hazards = 0, Clean = 0;
  for (const race::FixtureCase &Case : race::fixtureCases())
    (Case.ExpectFinding ? Hazards : Clean) += 1;
  EXPECT_GE(Hazards, 3); // >=3 distinct seeded hazards
  EXPECT_GE(Clean, 3);   // >=3 clean counterparts
  EXPECT_TRUE(race::runFixtureSweep(/*Verbose=*/false));
}

// The analyzer's internal mutex is its only defense once simulators move
// onto OS threads; hammer it from several real threads so TSan can vet
// the locking (accesses are all by the host task, so no findings).
TEST(RaceThreadingTest, ConcurrentHooksAreMutexSafe) {
  Armed A;
  constexpr int Threads = 4, Ops = 1000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([T] {
      race::Analyzer &An = race::Analyzer::instance();
      std::string Obj = "obj#" + std::to_string(T);
      for (int I = 0; I < Ops; ++I) {
        race::Section S("m#" + std::to_string(T));
        An.sharedWrite(Obj, "w");
        An.sharedRead(Obj, "r");
      }
    });
  for (std::thread &Th : Pool)
    Th.join();
  EXPECT_FALSE(A->hasFindings());
  EXPECT_EQ(A->summary().AccessesChecked,
            static_cast<uint64_t>(Threads) * Ops * 2);
}

serve::EngineConfig stressConfig() {
  serve::EngineConfig Cfg;
  Cfg.P = serve::Policy::FluidicCorun;
  Cfg.Streams = 12;
  Cfg.Arrival.Kind = serve::ArrivalKind::Poisson;
  Cfg.Arrival.RatePerSec = 2000;
  Cfg.Horizon = Duration::milliseconds(30);
  Cfg.Seed = 11;
  return Cfg;
}

// Stress gate: a high-concurrency mixed workload drives the full async
// runtime surface (leases, ready queue, version tracker, buffer pool,
// stats, tracer) and must come back with zero race findings and zero
// protocol diagnostics.
TEST(RaceServeTest, HighConcurrencyStressAnalyzesClean) {
  serve::EngineConfig Cfg = stressConfig();
  Cfg.Races = check::Policy::Fail;
  Cfg.FclOpts.Check = check::Policy::Fail;
  serve::Engine E(Cfg);
  serve::ServeReport Rep = E.run();
  EXPECT_GT(Rep.Completed, 0u);
  EXPECT_TRUE(Rep.RacesEnabled);
  EXPECT_EQ(Rep.RaceFindings, 0u) << "race diags:\n"
                                  << (Rep.RaceDiags.empty()
                                          ? ""
                                          : Rep.RaceDiags.front());
  EXPECT_TRUE(Rep.CheckEnabled);
  EXPECT_EQ(Rep.CheckErrors, 0u);
  EXPECT_EQ(Rep.CheckWarnings, 0u);
}

// Observation-only gate: same seed, analyzers on vs off, byte-identical
// report JSON and CSV.
TEST(RaceServeTest, AnalyzerNeverPerturbsTheReport) {
  serve::ServeReport Plain = serve::Engine(stressConfig()).run();
  serve::EngineConfig Armed = stressConfig();
  Armed.Races = check::Policy::Fail;
  Armed.FclOpts.Check = check::Policy::Fail;
  serve::ServeReport Analyzed = serve::Engine(Armed).run();
  EXPECT_EQ(Plain.toJson(), Analyzed.toJson());
  EXPECT_EQ(Plain.toCsv(), Analyzed.toCsv());
}

} // namespace
