//===- tests/dag_test.cpp - Compound DAG job tests -------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for fcl::dag: dependence-graph construction from workloads (RAW,
/// WAW and WAR edges from registry argument metadata), the buffer residency
/// tracker, and the two-queue DAG executor - functional correctness under
/// both placements, transfer elision under residency-aware placement, and
/// the acceptance contract that residency beats the residency-blind
/// baseline on both PCIe bytes and latency.
///
//===----------------------------------------------------------------------===//

#include "dag/DagExec.h"
#include "dag/Graph.h"
#include "dag/Pipelines.h"
#include "dag/Residency.h"
#include "serve/Engine.h"
#include "work/Workload.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace fcl;
using namespace fcl::dag;

namespace {

Graph graphOf(const work::Workload &W) { return Graph::fromWorkload(W); }

/// Runs one DAG job to completion on a private simulated pair and returns
/// its stats; fails the test if the done callback does not fire exactly
/// once or validation fails.
DagStats runOne(const work::Workload &W, Placement P,
                mcl::ExecMode Mode = mcl::ExecMode::Functional) {
  mcl::Context Ctx(hw::paperMachine(), Mode);
  Graph G = graphOf(W);
  DagStats S;
  DagJobExec E(Ctx, W, G, P, /*Validate=*/Mode == mcl::ExecMode::Functional,
               &S, nullptr);
  int DoneCount = 0;
  E.start([&DoneCount] { ++DoneCount; });
  Ctx.simulator().run();
  EXPECT_EQ(DoneCount, 1);
  EXPECT_FALSE(E.validationFailed());
  return S;
}

TEST(DagGraphTest, BicgIsTwoIndependentNodes) {
  Graph G = graphOf(work::makeBicg(64, 64));
  ASSERT_EQ(G.size(), 2u);
  EXPECT_EQ(G.numEdges(), 0u);
  EXPECT_EQ(G.roots(), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(G.maxParallelism(), 2u);
}

TEST(DagGraphTest, TwoMmIsAChain) {
  Graph G = graphOf(work::make2mm(32));
  ASSERT_EQ(G.size(), 2u);
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_EQ(G.node(1).Deps, (std::vector<size_t>{0}));
  EXPECT_EQ(G.maxParallelism(), 1u);
  EXPECT_STREQ(G.shapeName(), "chain");
}

TEST(DagGraphTest, ThreeMmFansIn) {
  Graph G = graphOf(work::make3mm(32));
  ASSERT_EQ(G.size(), 3u);
  // E = A*B and F = C*D are independent; G = E*F joins them.
  EXPECT_TRUE(G.node(0).Deps.empty());
  EXPECT_TRUE(G.node(1).Deps.empty());
  EXPECT_EQ(G.node(2).Deps, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(G.maxParallelism(), 2u);
  EXPECT_STREQ(G.shapeName(), "fan-in");
}

TEST(DagGraphTest, DiamondShape) {
  Graph G = graphOf(makeDiamond(32));
  ASSERT_EQ(G.size(), 4u);
  EXPECT_EQ(G.numEdges(), 4u);
  EXPECT_EQ(G.roots(), (std::vector<size_t>{0}));
  EXPECT_EQ(G.node(1).Deps, (std::vector<size_t>{0}));
  EXPECT_EQ(G.node(2).Deps, (std::vector<size_t>{0}));
  EXPECT_EQ(G.node(3).Deps, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(G.node(0).Succs, (std::vector<size_t>{1, 2}));
  EXPECT_EQ(G.maxParallelism(), 2u);
  EXPECT_STREQ(G.shapeName(), "dag");
}

TEST(DagGraphTest, FanoutWidthIsMaxParallelism) {
  Graph G = graphOf(makeFanout(32, 3));
  ASSERT_EQ(G.size(), 4u);
  EXPECT_EQ(G.numEdges(), 3u);
  for (size_t I = 1; I < 4; ++I)
    EXPECT_EQ(G.node(I).Deps, (std::vector<size_t>{0}));
  EXPECT_EQ(G.maxParallelism(), 3u);
  EXPECT_STREQ(G.shapeName(), "fan-out");
}

TEST(DagGraphTest, CovarIsOrderedBySharedBuffers) {
  // mean -> reduce (WAR on data) -> covar (RAW on mean): a 3-stage chain
  // even though only some pairs share a RAW edge.
  Graph G = graphOf(work::makeCovar(96, 96));
  ASSERT_EQ(G.size(), 3u);
  EXPECT_EQ(G.maxParallelism(), 1u);
  EXPECT_STREQ(G.shapeName(), "chain");
}

TEST(DagGraphTest, ReadWriteSetsComeFromRegistry) {
  // Diamond node 0 is E = A*B with E also an InOut accumulator: reads
  // {A, B, E}, writes {E}. Buffer layout: A=0 B=1 C=2 D=3 E=4 F=5 G=6 H=7.
  Graph G = graphOf(makeDiamond(32));
  EXPECT_EQ(G.node(0).Reads, (std::vector<size_t>{0, 1, 4}));
  EXPECT_EQ(G.node(0).Writes, (std::vector<size_t>{4}));
  EXPECT_EQ(G.node(3).Writes, (std::vector<size_t>{7}));
  EXPECT_GT(G.node(0).Groups, 0u);
}

TEST(ResidencyTrackerTest, StartsHostResidentOnly) {
  ResidencyTracker R(3);
  for (size_t B = 0; B < 3; ++B) {
    EXPECT_TRUE(R.has(B, Loc::Host));
    EXPECT_FALSE(R.has(B, Loc::Gpu));
    EXPECT_FALSE(R.has(B, Loc::Cpu));
    EXPECT_EQ(R.owner(B), Loc::Host);
    EXPECT_EQ(R.version(B), 0u);
  }
}

TEST(ResidencyTrackerTest, WriteInvalidatesOtherCopies) {
  ResidencyTracker R(1);
  R.noteCopy(0, Loc::Gpu); // Upload: host and GPU both hold v0.
  EXPECT_TRUE(R.has(0, Loc::Host));
  EXPECT_TRUE(R.has(0, Loc::Gpu));
  R.noteWrite(0, Loc::Gpu); // GPU produces v1: host copy is stale.
  EXPECT_FALSE(R.has(0, Loc::Host));
  EXPECT_TRUE(R.has(0, Loc::Gpu));
  EXPECT_EQ(R.owner(0), Loc::Gpu);
  EXPECT_EQ(R.version(0), 1u);
  R.noteCopy(0, Loc::Cpu); // Cross-device copy spreads v1.
  EXPECT_TRUE(R.has(0, Loc::Cpu));
  EXPECT_EQ(R.version(0), 1u);
  // owner() prefers the host once it holds the current version again.
  R.noteCopy(0, Loc::Host);
  EXPECT_EQ(R.owner(0), Loc::Host);
}

TEST(DagPlacementTest, ParseAndNames) {
  Placement P;
  EXPECT_TRUE(parsePlacement("residency", P));
  EXPECT_EQ(P, Placement::Residency);
  EXPECT_TRUE(parsePlacement("blind", P));
  EXPECT_EQ(P, Placement::Blind);
  EXPECT_FALSE(parsePlacement("nosuch", P));
  EXPECT_STREQ(placementName(Placement::Residency), "residency");
  EXPECT_STREQ(placementName(Placement::Blind), "blind");
}

TEST(DagExecTest, DiamondValidatesUnderBothPlacements) {
  for (Placement P : {Placement::Residency, Placement::Blind}) {
    DagStats S = runOne(makeDiamond(32), P);
    EXPECT_EQ(S.Jobs, 1u);
    EXPECT_EQ(S.Nodes, 4u);
    EXPECT_EQ(S.GpuNodes + S.CpuNodes, S.Nodes);
  }
}

TEST(DagExecTest, PolybenchChainsValidate) {
  for (Placement P : {Placement::Residency, Placement::Blind}) {
    runOne(work::make2mm(32), P);
    runOne(work::make3mm(32), P);
    runOne(work::makeBicg(192, 192), P);
    runOne(work::makeCovar(96, 96), P);
    runOne(makeFanout(32, 3), P);
  }
}

TEST(DagExecTest, ResidencySkipsTransfersBlindNever) {
  DagStats R = runOne(work::make2mm(32), Placement::Residency);
  EXPECT_GT(R.TransfersSkipped, 0u);
  EXPECT_GT(R.BytesSaved, 0u);
  DagStats B = runOne(work::make2mm(32), Placement::Blind);
  EXPECT_EQ(B.TransfersSkipped, 0u);
  EXPECT_EQ(B.BytesSaved, 0u);
  // The blind baseline stages every node through the host, so it always
  // moves at least as many bytes and strictly more PCIe bytes.
  EXPECT_GT(B.PcieBytes, R.PcieBytes);
  EXPECT_GE(B.Transfers, R.Transfers);
}

TEST(DagExecTest, TimingOnlyModeCountsTheSameTransfers) {
  // Transfer accounting must not depend on functional execution: byte
  // ledgers are part of the deterministic report contract.
  DagStats F = runOne(makeDiamond(32), Placement::Residency);
  DagStats T =
      runOne(makeDiamond(32), Placement::Residency, mcl::ExecMode::TimingOnly);
  EXPECT_EQ(F.Transfers, T.Transfers);
  EXPECT_EQ(F.TransferBytes, T.TransferBytes);
  EXPECT_EQ(F.PcieBytes, T.PcieBytes);
  EXPECT_EQ(F.TransfersSkipped, T.TransfersSkipped);
}

TEST(DagExecTest, TracerGetsOneSlicePerNode) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  work::Workload W = makeDiamond(32);
  Graph G = graphOf(W);
  trace::Tracer T;
  DagJobExec E(Ctx, W, G, Placement::Residency, /*Validate=*/false, nullptr,
               &T);
  bool Done = false;
  E.start([&Done] { Done = true; });
  Ctx.simulator().run();
  ASSERT_TRUE(Done);
  EXPECT_EQ(T.laneEvents("Serve DAG").size(), 4u);
}

TEST(DagEngineTest, PipelineMixRunsDagJobsUnderEveryPolicy) {
  for (serve::Policy P :
       {serve::Policy::FifoExclusive, serve::Policy::DeviceAffine,
        serve::Policy::FluidicCorun}) {
    serve::EngineConfig Cfg;
    Cfg.P = P;
    Cfg.Mix = serve::MixKind::Pipeline;
    Cfg.Streams = 6;
    Cfg.Arrival.Kind = serve::ArrivalKind::Poisson;
    Cfg.Arrival.RatePerSec = 250;
    Cfg.Horizon = Duration::milliseconds(60);
    Cfg.Seed = 5;
    Cfg.Mode = mcl::ExecMode::Functional;
    Cfg.Validate = true;
    serve::Engine E(Cfg);
    serve::ServeReport Rep = E.run();
    EXPECT_GT(Rep.DagJobs, 0u);
    EXPECT_EQ(Rep.ValidationFailures, 0u);
    EXPECT_EQ(Rep.Completed,
              Rep.CoopJobs + Rep.GpuJobs + Rep.CpuJobs + Rep.DagJobs);
    EXPECT_EQ(Rep.DagPlacement, "residency");
    EXPECT_EQ(Rep.DagGpuNodes + Rep.DagCpuNodes, Rep.DagNodes);
  }
}

TEST(DagEngineTest, LoadedPipelineOverlapsBothDevices) {
  serve::EngineConfig Cfg;
  Cfg.P = serve::Policy::FluidicCorun;
  Cfg.Mix = serve::MixKind::Pipeline;
  Cfg.Streams = 8;
  Cfg.Arrival.Kind = serve::ArrivalKind::Poisson;
  Cfg.Arrival.RatePerSec = 300;
  Cfg.Horizon = Duration::milliseconds(100);
  Cfg.Seed = 7;
  serve::Engine E(Cfg);
  serve::ServeReport Rep = E.run();
  // Independent DAG branches must actually spread across the pair.
  EXPECT_GT(Rep.DagGpuNodes, 0u);
  EXPECT_GT(Rep.DagCpuNodes, 0u);
  EXPECT_GT(Rep.DagTransfersSkipped, 0u);
}

serve::ServeReport runPipeline(Placement P, uint64_t Seed) {
  serve::EngineConfig Cfg;
  Cfg.P = serve::Policy::FluidicCorun;
  Cfg.Mix = serve::MixKind::Pipeline;
  Cfg.DagPlace = P;
  Cfg.Streams = 8;
  Cfg.Arrival.Kind = serve::ArrivalKind::Poisson;
  Cfg.Arrival.RatePerSec = 300;
  Cfg.Horizon = Duration::milliseconds(150);
  Cfg.Seed = Seed;
  serve::Engine E(Cfg);
  return E.run();
}

TEST(DagEngineTest, ResidencyBeatsBlindOnPcieBytesAndP95) {
  serve::ServeReport R = runPipeline(Placement::Residency, 5);
  serve::ServeReport B = runPipeline(Placement::Blind, 5);
  EXPECT_LT(R.DagPcieBytes, B.DagPcieBytes);
  EXPECT_LT(R.E2e.P95, B.E2e.P95);
}

TEST(DagEngineTest, SameSeedPipelineReportsAreByteIdentical) {
  serve::ServeReport A = runPipeline(Placement::Residency, 9);
  serve::ServeReport B = runPipeline(Placement::Residency, 9);
  EXPECT_EQ(A.toJson(), B.toJson());
  serve::ServeReport C = runPipeline(Placement::Residency, 10);
  EXPECT_NE(A.toJson(), C.toJson());
}

TEST(DagDeathTest, GraphRejectsArgCountMismatch) {
  work::Workload W = makeDiamond(32);
  W.Calls[0].Args.pop_back();
  EXPECT_DEATH((void)Graph::fromWorkload(W), "argument");
}

} // namespace
