//===- tests/cluster_test.cpp - fcl::cluster unit tests -------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cluster/Cluster.h"

#include "race/Race.h"

#include <atomic>
#include <gtest/gtest.h>
#include <map>
#include <set>
#include <thread>

using namespace fcl;
using namespace fcl::cluster;

namespace {

ClusterConfig baseConfig(int Workers) {
  ClusterConfig Cfg;
  Cfg.Workers = Workers;
  Cfg.Place = Placement::LeastLoaded;
  Cfg.Steal = true;
  Cfg.Worker.Streams = 8;
  Cfg.Worker.Arrival = serve::ArrivalSpec{serve::ArrivalKind::Poisson, 300,
                                          Duration::milliseconds(5)};
  Cfg.Worker.Horizon = Duration::milliseconds(40);
  Cfg.Worker.Seed = 11;
  return Cfg;
}

//===----------------------------------------------------------------------===//
// EpochBarrier protocol
//===----------------------------------------------------------------------===//

TEST(EpochBarrierTest, LockstepEpochsAndShutdown) {
  const int N = 4;
  const uint64_t Epochs = 50;
  EpochBarrier B(N);
  std::atomic<uint64_t> Sum{0};
  std::vector<std::thread> Ts;
  for (int I = 0; I < N; ++I)
    Ts.emplace_back([&] {
      uint64_t Seen = 0;
      uint64_t E = 0;
      while (B.awaitEpoch(Seen, E)) {
        // Epochs must arrive in order, none skipped: the barrier parks us
        // before each release, so every worker sees every epoch.
        EXPECT_EQ(E, Seen + 1);
        Seen = E;
        Sum.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (uint64_t E = 1; E <= Epochs; ++E) {
    B.masterAwaitParked();
    B.releaseEpoch(E);
  }
  B.masterAwaitParked();
  B.stopAll();
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Sum.load(), Epochs * N);
}

//===----------------------------------------------------------------------===//
// Cluster runs
//===----------------------------------------------------------------------===//

TEST(ClusterTest, ConservesEveryJob) {
  Cluster C(baseConfig(3));
  ClusterReport R = C.run();
  EXPECT_GT(R.Submitted, 0u);
  EXPECT_EQ(R.Submitted, R.Completed + R.Rejected);
  EXPECT_EQ(R.Jobs.size(), R.Submitted);
  uint64_t PerWorkerCompleted = 0, PerWorkerAssigned = 0;
  for (const WorkerSummary &W : R.PerWorker) {
    PerWorkerCompleted += W.Completed;
    PerWorkerAssigned += W.Assigned;
  }
  EXPECT_EQ(PerWorkerCompleted, R.Completed);
  EXPECT_EQ(PerWorkerAssigned, R.Submitted);
  for (const ClusterJobRecord &J : R.Jobs) {
    EXPECT_TRUE(J.Done || J.Rejected);
    EXPECT_GE(J.FirstWorker, 0);
    EXPECT_LT(J.Worker, 3);
    if (J.Done) {
      EXPECT_GE(J.StartAt, J.ArrivalAt);
      EXPECT_GE(J.EndAt, J.StartAt);
    }
    // A job lands on a different worker than its first placement exactly
    // when the master stole it.
    EXPECT_EQ(J.FirstWorker != J.Worker, J.Stolen);
  }
}

TEST(ClusterTest, SameSeedSameBytesAcrossRuns) {
  for (int Workers : {1, 2, 4}) {
    std::string A = Cluster(baseConfig(Workers)).run().toJson();
    std::string B = Cluster(baseConfig(Workers)).run().toJson();
    EXPECT_EQ(A, B) << "workers=" << Workers;
    EXPECT_NE(A.find("\"fcl-cluster-report-v1\""), std::string::npos);
  }
}

TEST(ClusterTest, HashAffinePinsStreamsToWorkers) {
  ClusterConfig Cfg = baseConfig(4);
  Cfg.Place = Placement::HashAffine;
  Cfg.Steal = false;
  ClusterReport R = Cluster(Cfg).run();
  // Every job of a stream must go to one worker, and with 8 streams over
  // 4 workers at least two workers must be in use.
  std::map<int, int> StreamWorker;
  for (const ClusterJobRecord &J : R.Jobs) {
    auto It = StreamWorker.find(J.Stream);
    if (It == StreamWorker.end())
      StreamWorker[J.Stream] = J.FirstWorker;
    else
      EXPECT_EQ(It->second, J.FirstWorker) << "stream " << J.Stream;
  }
  std::set<int> Used;
  for (const auto &[S, W] : StreamWorker)
    Used.insert(W);
  EXPECT_GE(Used.size(), 2u);
  EXPECT_EQ(R.Stolen, 0u);
}

TEST(ClusterTest, LeastLoadedSpreadsAssignments) {
  ClusterConfig Cfg = baseConfig(4);
  Cfg.Place = Placement::LeastLoaded;
  ClusterReport R = Cluster(Cfg).run();
  for (const WorkerSummary &W : R.PerWorker)
    EXPECT_GT(W.Assigned, 0u) << "worker " << W.Index << " never used";
}

TEST(ClusterTest, StealingRebalancesSkewedPlacement) {
  // Hash placement over 4 workers with 16 streams leaves some pairs idle
  // while others queue deep; stealing must move jobs and the books must
  // still balance.
  ClusterConfig Cfg = baseConfig(4);
  Cfg.Place = Placement::HashAffine;
  Cfg.Worker.Streams = 16;
  Cfg.Worker.Arrival.RatePerSec = 600;
  ClusterReport R = Cluster(Cfg).run();
  EXPECT_GT(R.Steals, 0u);
  EXPECT_GT(R.RebalanceEpochs, 0u);
  EXPECT_EQ(R.Submitted, R.Completed + R.Rejected);
  uint64_t StolenJobs = 0, StolenIn = 0, StolenOut = 0;
  for (const ClusterJobRecord &J : R.Jobs)
    if (J.Stolen)
      ++StolenJobs;
  for (const WorkerSummary &W : R.PerWorker) {
    StolenIn += W.StolenIn;
    StolenOut += W.StolenOut;
  }
  EXPECT_EQ(StolenJobs, R.Steals);
  EXPECT_EQ(StolenIn, R.Steals);
  EXPECT_EQ(StolenOut, R.Steals);
}

TEST(ClusterTest, ScalesThroughputAcrossWorkers) {
  // The headline claim, in miniature: 4 pairs under least-loaded +
  // stealing sustain >= 3x the completed-jobs throughput of 1 pair on a
  // saturating mixed load.
  ClusterConfig Cfg = baseConfig(1);
  Cfg.Worker.Streams = 16;
  Cfg.Worker.Arrival.RatePerSec = 600;
  Cfg.Worker.Seed = 7;
  ClusterReport R1 = Cluster(Cfg).run();
  Cfg.Workers = 4;
  ClusterReport R4 = Cluster(Cfg).run();
  ASSERT_GT(R1.ThroughputJps, 0.0);
  EXPECT_GE(R4.ThroughputJps, 3.0 * R1.ThroughputJps);
  EXPECT_LE(R4.E2e.P95, R1.E2e.P95);
}

TEST(ClusterTest, TraceMergesWorkerLanes) {
  trace::Tracer T;
  ClusterConfig Cfg = baseConfig(2);
  Cfg.Worker.Tracer = &T;
  ClusterReport R = Cluster(Cfg).run();
  EXPECT_GT(R.Completed, 0u);
  EXPECT_GT(T.size(), 0u);
  bool SawW0 = false, SawW1 = false;
  for (const trace::TraceEvent &E : T.events()) {
    SawW0 = SawW0 || E.Lane.rfind("w0 ", 0) == 0;
    SawW1 = SawW1 || E.Lane.rfind("w1 ", 0) == 0;
  }
  EXPECT_TRUE(SawW0);
  EXPECT_TRUE(SawW1);
}

//===----------------------------------------------------------------------===//
// Race-analyzer integration over the threaded fabric
//===----------------------------------------------------------------------===//

TEST(RaceClusterTest, ThreadedFabricAnalyzesClean) {
  ClusterConfig Cfg = baseConfig(4);
  Cfg.Place = Placement::HashAffine; // Forces steals -> cross-pair edges.
  Cfg.Worker.Streams = 16;
  Cfg.Worker.Arrival.RatePerSec = 600;
  std::string Plain = Cluster(Cfg).run().toJson();
  Cfg.Worker.Races = check::Policy::Fail;
  ClusterReport Armed = Cluster(Cfg).run();
  EXPECT_EQ(Armed.RaceFindings, 0u)
      << (Armed.RaceDiags.empty() ? "" : Armed.RaceDiags.front());
  EXPECT_TRUE(Armed.RacesEnabled);
  // The analyzer observes; it must never perturb the simulated outcome.
  EXPECT_EQ(Plain, Armed.toJson());
  EXPECT_FALSE(race::Analyzer::enabled());
}

} // namespace
