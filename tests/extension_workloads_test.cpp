//===- tests/extension_workloads_test.cpp - MVT/GEMM/2MM extension tests ---===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the extension workloads beyond the paper's six benchmarks:
/// kernel bodies against closed-form math, functional correctness under
/// every runtime, and the expected device-affinity behaviour.
///
//===----------------------------------------------------------------------===//

#include "fluidicl/Runtime.h"
#include "kern/Registry.h"
#include "mcl/CommandQueue.h"
#include "runtime/SingleDevice.h"
#include "socl/SoclRuntime.h"
#include "support/Rng.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

using namespace fcl;
using namespace fcl::work;

namespace {

std::vector<float> randomVec(size_t N, uint64_t Seed) {
  Rng R(Seed);
  std::vector<float> V(N);
  for (float &X : V)
    X = static_cast<float>(R.nextInRange(0.1, 1.0));
  return V;
}

kern::ArgValue bufArg(std::vector<float> &V) {
  return kern::ArgValue::buffer(reinterpret_cast<std::byte *>(V.data()),
                                V.size() * sizeof(float));
}

void runKernel(const kern::KernelInfo &Kernel, const kern::NDRange &Range,
               const kern::ArgsView &Args) {
  kern::Dim3 Groups = Range.numGroups();
  for (uint64_t Flat = 0; Flat < Range.totalGroups(); ++Flat)
    kern::executeWorkGroup(Kernel, Range,
                           kern::unflattenGroupId(Flat, Groups), Args, 0,
                           Range.itemsPerGroup(), nullptr);
}

TEST(ExtensionKernelTest, MvtMatchesClosedForm) {
  const int64_t N = 64;
  auto A = randomVec(N * N, 31);
  auto Y1 = randomVec(N, 32);
  auto Y2 = randomVec(N, 33);
  auto X1 = randomVec(N, 34);
  auto X2 = randomVec(N, 35);
  std::vector<float> X1Out = X1, X2Out = X2;

  kern::Registry &Reg = kern::Registry::builtin();
  kern::ArgsView Args1(std::vector<kern::ArgValue>{
      bufArg(A), bufArg(Y1), bufArg(X1Out), kern::ArgValue::scalarInt(N)});
  runKernel(Reg.get("mvt_kernel1"), kern::NDRange::of1D(N, 32), Args1);
  kern::ArgsView Args2(std::vector<kern::ArgValue>{
      bufArg(A), bufArg(Y2), bufArg(X2Out), kern::ArgValue::scalarInt(N)});
  runKernel(Reg.get("mvt_kernel2"), kern::NDRange::of1D(N, 32), Args2);

  for (int64_t I = 0; I < N; ++I) {
    float W1 = X1[I], W2 = X2[I];
    for (int64_t J = 0; J < N; ++J) {
      W1 += A[I * N + J] * Y1[J];
      W2 += A[J * N + I] * Y2[J];
    }
    EXPECT_FLOAT_EQ(X1Out[I], W1);
    EXPECT_FLOAT_EQ(X2Out[I], W2);
  }
}

TEST(ExtensionKernelTest, GemmMatchesClosedForm) {
  const int64_t NI = 32, NJ = 32, NK = 32;
  auto A = randomVec(NI * NK, 36);
  auto B = randomVec(NK * NJ, 37);
  auto C = randomVec(NI * NJ, 38);
  std::vector<float> COut = C;
  float Alpha = 1.4f, Beta = 0.8f;

  kern::ArgsView Args(std::vector<kern::ArgValue>{
      bufArg(A), bufArg(B), bufArg(COut), kern::ArgValue::scalarFp(Alpha),
      kern::ArgValue::scalarFp(Beta), kern::ArgValue::scalarInt(NI),
      kern::ArgValue::scalarInt(NJ), kern::ArgValue::scalarInt(NK)});
  runKernel(kern::Registry::builtin().get("gemm_kernel"),
            kern::NDRange::of2D(NJ, NI, 32, 8), Args);

  for (int64_t I = 0; I < NI; ++I)
    for (int64_t J = 0; J < NJ; ++J) {
      float Sum = 0;
      for (int64_t L = 0; L < NK; ++L)
        Sum += A[I * NK + L] * B[L * NJ + J];
      EXPECT_FLOAT_EQ(COut[I * NJ + J], Beta * C[I * NJ + J] + Alpha * Sum);
    }
}

class ExtensionWorkloadTest : public ::testing::TestWithParam<size_t> {};

const std::vector<Workload> &smallExtensions() {
  static const std::vector<Workload> Suite = {
      makeMvt(192), makeGemm(96, 96, 96), make2mm(96), make3mm(96),
      makeCovar(128, 128)};
  return Suite;
}

TEST_P(ExtensionWorkloadTest, FluidiclFunctional) {
  const Workload &W = smallExtensions()[GetParam()];
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx);
  RunResult Res = runWorkload(RT, W, true);
  EXPECT_TRUE(Res.Valid) << W.Name << " err " << Res.MaxAbsError;
}

TEST_P(ExtensionWorkloadTest, SingleDeviceFunctional) {
  const Workload &W = smallExtensions()[GetParam()];
  for (mcl::DeviceKind Kind : {mcl::DeviceKind::Cpu, mcl::DeviceKind::Gpu}) {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
    runtime::SingleDeviceRuntime RT(Ctx, Kind);
    RunResult Res = runWorkload(RT, W, true);
    EXPECT_TRUE(Res.Valid) << W.Name << " on " << RT.name();
  }
}

TEST_P(ExtensionWorkloadTest, SoclFunctional) {
  const Workload &W = smallExtensions()[GetParam()];
  socl::PerfModel Model;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  socl::SoclRuntime RT(Ctx, socl::Policy::Eager, Model);
  RunResult Res = runWorkload(RT, W, true);
  EXPECT_TRUE(Res.Valid) << W.Name;
}

std::string extensionName(const ::testing::TestParamInfo<size_t> &Info) {
  static const char *Names[] = {"MVT", "GEMM", "TwoMM", "ThreeMM", "COVAR"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllExtensions, ExtensionWorkloadTest,
                         ::testing::Range<size_t>(0, 5), extensionName);

TEST(ExtensionBehaviourTest, MvtKernelsPreferDifferentDevices) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  fluidicl::Runtime RT(Ctx);
  runWorkload(RT, makeMvt(4096), false);
  auto Stats = RT.kernelStats();
  ASSERT_EQ(Stats.size(), 2u);
  double Cpu1 = static_cast<double>(Stats[0].CpuGroupsExecuted) /
                static_cast<double>(Stats[0].TotalGroups);
  double Cpu2 = static_cast<double>(Stats[1].CpuGroupsExecuted) /
                static_cast<double>(Stats[1].TotalGroups);
  EXPECT_GT(Cpu1, 0.5); // Row walk flows to the CPU.
  EXPECT_LT(Cpu2, 0.5); // Column walk flows to the GPU.
}

TEST(ExtensionBehaviourTest, FluidiclNeverMuchWorseThanBestOnExtensions) {
  RunConfig C;
  for (const Workload &W :
       {makeMvt(4096), makeGemm(1024, 1024, 1024), make2mm(1024)}) {
    double Cpu = timeUnder(RuntimeKind::CpuOnly, W, C).toSeconds();
    double Gpu = timeUnder(RuntimeKind::GpuOnly, W, C).toSeconds();
    double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    EXPECT_LE(Fcl, std::min(Cpu, Gpu) * 1.08) << W.Name;
  }
}

TEST(ExtensionBehaviourTest, TwoMmChainsThroughIntermediateBuffer) {
  // The second GEMM reads tmp, which the first GEMM wrote: the CPU side of
  // kernel 2 must wait for kernel 1's DH transfer (section 5.3 gate) and
  // results must still be exact.
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx);
  RunResult Res = runWorkload(RT, make2mm(96), true);
  EXPECT_TRUE(Res.Valid);
  auto Stats = RT.kernelStats();
  ASSERT_EQ(Stats.size(), 2u);
  EXPECT_GT(Stats[1].KernelId, Stats[0].KernelId);
}

TEST(ExtensionBehaviourTest, ExtendedSuiteContainsElevenWorkloads) {
  EXPECT_EQ(extendedSuite().size(), 11u);
}

TEST(ExtensionKernelTest, Jacobi2dMatchesClosedForm) {
  const int64_t N = 64;
  auto In = randomVec(N * N, 41);
  std::vector<float> Out(N * N, -1.0f);
  kern::ArgsView Args(std::vector<kern::ArgValue>{
      bufArg(In), bufArg(Out), kern::ArgValue::scalarInt(N)});
  runKernel(kern::Registry::builtin().get("jacobi2d_kernel"),
            kern::NDRange::of2D(N, N, 32, 8), Args);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J) {
      float Want;
      if (I == 0 || J == 0 || I == N - 1 || J == N - 1)
        Want = In[I * N + J];
      else
        Want = 0.25f * (In[(I - 1) * N + J] + In[(I + 1) * N + J] +
                        In[I * N + J - 1] + In[I * N + J + 1]);
      EXPECT_FLOAT_EQ(Out[I * N + J], Want) << I << "," << J;
    }
}

TEST(ExtensionBehaviourTest, JacobiChainBitExactUnderFluidicl) {
  // Ten chained stencil steps: FluidiCL must match the CPU-only device
  // exactly across the whole ping-pong chain.
  const int64_t N = 128;
  const int Iters = 10;
  auto Solve = [&](runtime::HeteroRuntime &RT) {
    uint64_t Bytes = static_cast<uint64_t>(N * N) * 4;
    auto Init = randomVec(static_cast<size_t>(N * N), 42);
    runtime::BufferId A = RT.createBuffer(Bytes, "a");
    runtime::BufferId B = RT.createBuffer(Bytes, "b");
    RT.writeBuffer(A, Init.data(), Bytes);
    RT.writeBuffer(B, Init.data(), Bytes);
    kern::NDRange Range = kern::NDRange::of2D(N, N, 32, 8);
    runtime::BufferId InB = A, OutB = B;
    for (int I = 0; I < Iters; ++I) {
      RT.launchKernel("jacobi2d_kernel", Range,
                      {runtime::KArg::buffer(InB),
                       runtime::KArg::buffer(OutB), runtime::KArg::i64(N)});
      std::swap(InB, OutB);
    }
    std::vector<float> Result(static_cast<size_t>(N * N));
    RT.readBuffer(InB, Result.data(), Bytes);
    RT.finish();
    return Result;
  };
  std::vector<float> Want, Got;
  {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
    runtime::SingleDeviceRuntime RT(Ctx, mcl::DeviceKind::Cpu);
    Want = Solve(RT);
  }
  {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
    fluidicl::Runtime RT(Ctx);
    Got = Solve(RT);
  }
  EXPECT_EQ(Got, Want);
}

TEST(ExtensionBehaviourTest, PhiMachineTransfersPricedAsPcie) {
  hw::Machine M = hw::machineWithPhi();
  ASSERT_TRUE(M.Cpu.BehindPcie);
  mcl::Context Ctx(M, mcl::ExecMode::TimingOnly);
  auto Queue = Ctx.createQueue(Ctx.cpu());
  auto Buf = Ctx.createBuffer(Ctx.cpu(), 1 << 20);
  TimePoint T0 = Ctx.now();
  Queue->enqueueWrite(*Buf, nullptr, 1 << 20);
  Queue->finish();
  EXPECT_EQ((Ctx.now() - T0).nanos(),
            M.Pcie.transferTime(1 << 20).nanos());
}

TEST(ExtensionBehaviourTest, FluidiclFunctionalOnPhiMachine) {
  mcl::Context Ctx(hw::machineWithPhi(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx);
  RunResult Res = runWorkload(RT, testSuite()[4], true);
  EXPECT_TRUE(Res.Valid);
}

} // namespace
