//===- tests/trace_test.cpp - Execution tracer tests -----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Tracer.h"

#include "fluidicl/Runtime.h"
#include "mcl/CommandQueue.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace fcl;
using namespace fcl::trace;

namespace {

TEST(TracerTest, RecordsSlices) {
  Tracer T;
  T.record("lane", "ev", TimePoint(100), TimePoint(300), "d");
  ASSERT_EQ(T.size(), 1u);
  EXPECT_EQ(T.events()[0].Lane, "lane");
  EXPECT_EQ(T.events()[0].Name, "ev");
  EXPECT_EQ(T.events()[0].duration().nanos(), 200);
}

TEST(TracerTest, LaneBusyAndFilter) {
  Tracer T;
  T.record("a", "x", TimePoint(0), TimePoint(10));
  T.record("b", "y", TimePoint(0), TimePoint(100));
  T.record("a", "z", TimePoint(20), TimePoint(25));
  EXPECT_EQ(T.laneBusy("a").nanos(), 15);
  EXPECT_EQ(T.laneBusy("b").nanos(), 100);
  EXPECT_EQ(T.laneBusy("missing").nanos(), 0);
  EXPECT_EQ(T.laneEvents("a").size(), 2u);
}

TEST(TracerTest, ClearEmpties) {
  Tracer T;
  T.record("a", "x", TimePoint(0), TimePoint(1));
  T.clear();
  EXPECT_EQ(T.size(), 0u);
}

TEST(TracerDeathTest, RejectsBackwardsSlice) {
  Tracer T;
  EXPECT_DEATH(T.record("a", "x", TimePoint(10), TimePoint(5)), "ends");
}

TEST(TracerTest, ChromeTraceContainsLanesAndEvents) {
  Tracer T;
  T.record("GPU", "kernel", TimePoint(1000), TimePoint(3000), "q=app");
  std::string Json = T.renderChromeTrace();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("thread_name"), std::string::npos);
  EXPECT_NE(Json.find("\"GPU\""), std::string::npos);
  EXPECT_NE(Json.find("\"kernel\""), std::string::npos);
  EXPECT_NE(Json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":2.000"), std::string::npos);
}

TEST(TracerTest, EscapesJsonSpecials) {
  Tracer T;
  T.record("la\"ne", "na\\me", TimePoint(0), TimePoint(1));
  std::string Json = T.renderChromeTrace();
  EXPECT_NE(Json.find("la\\\"ne"), std::string::npos);
  EXPECT_NE(Json.find("na\\\\me"), std::string::npos);
}

TEST(TracerTest, WriteFileRoundTrip) {
  Tracer T;
  T.record("a", "x", TimePoint(0), TimePoint(1));
  std::string Path = ::testing::TempDir() + "/fcl_trace_test.json";
  ASSERT_TRUE(T.writeChromeTrace(Path));
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), T.renderChromeTrace());
  std::remove(Path.c_str());
}

TEST(TracerIntegrationTest, QueueCommandsProduceSlices) {
  Tracer T;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Ctx.setTracer(&T);
  auto Queue = Ctx.createQueue(Ctx.gpu(), "q");
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 4096);
  Queue->enqueueWrite(*Buf, nullptr, 4096);
  Queue->enqueueRead(*Buf, nullptr, 4096);
  Queue->finish();
  EXPECT_EQ(T.laneEvents("PCIe H2D").size(), 1u);
  EXPECT_EQ(T.laneEvents("PCIe D2H").size(), 1u);
  // The slice durations match the PCIe model.
  EXPECT_EQ(T.laneEvents("PCIe H2D")[0].duration().nanos(),
            Ctx.machine().Pcie.transferTime(4096).nanos());
}

TEST(TracerIntegrationTest, FluidiclScheduleVisibleOnAllLanes) {
  Tracer T;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Ctx.setTracer(&T);
  fluidicl::Runtime RT(Ctx);
  work::runWorkload(RT, work::makeSyrk(1024, 1024), false);
  // GPU kernel + merge, CPU subkernels, data/status stream, DH readback.
  EXPECT_GE(T.laneEvents("SimGPU").size(), 2u);
  EXPECT_GE(T.laneEvents("SimCPU").size(), 3u);
  EXPECT_GE(T.laneEvents("PCIe H2D").size(), 3u);
  EXPECT_GE(T.laneEvents("PCIe D2H").size(), 1u);
  EXPECT_GE(T.laneEvents("SimGPU copy").size(), 1u); // Orig snapshot.
  // Subkernel slices carry the flat-range suffix.
  bool SawSubkernel = false;
  for (const TraceEvent &E : T.laneEvents("SimCPU"))
    if (E.Name.find('[') != std::string::npos)
      SawSubkernel = true;
  EXPECT_TRUE(SawSubkernel);
}

TEST(TracerIntegrationTest, DetachStopsRecording) {
  Tracer T;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Ctx.setTracer(&T);
  auto Queue = Ctx.createQueue(Ctx.gpu());
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 64);
  Queue->enqueueWrite(*Buf, nullptr, 64);
  Queue->finish();
  size_t Before = T.size();
  Ctx.setTracer(nullptr);
  Queue->enqueueWrite(*Buf, nullptr, 64);
  Queue->finish();
  EXPECT_EQ(T.size(), Before);
}

} // namespace
