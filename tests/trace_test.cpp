//===- tests/trace_test.cpp - Execution tracer tests -----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Tracer.h"

#include "fluidicl/Runtime.h"
#include "mcl/CommandQueue.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace fcl;
using namespace fcl::trace;

namespace {

TEST(TracerTest, RecordsSlices) {
  Tracer T;
  T.record("lane", "ev", TimePoint(100), TimePoint(300), "d");
  ASSERT_EQ(T.size(), 1u);
  EXPECT_EQ(T.events()[0].Lane, "lane");
  EXPECT_EQ(T.events()[0].Name, "ev");
  EXPECT_EQ(T.events()[0].duration().nanos(), 200);
}

TEST(TracerTest, LaneBusyAndFilter) {
  Tracer T;
  T.record("a", "x", TimePoint(0), TimePoint(10));
  T.record("b", "y", TimePoint(0), TimePoint(100));
  T.record("a", "z", TimePoint(20), TimePoint(25));
  EXPECT_EQ(T.laneBusy("a").nanos(), 15);
  EXPECT_EQ(T.laneBusy("b").nanos(), 100);
  EXPECT_EQ(T.laneBusy("missing").nanos(), 0);
  EXPECT_EQ(T.laneEvents("a").size(), 2u);
}

TEST(TracerTest, ClearEmpties) {
  Tracer T;
  T.record("a", "x", TimePoint(0), TimePoint(1));
  T.clear();
  EXPECT_EQ(T.size(), 0u);
}

TEST(TracerDeathTest, RejectsBackwardsSlice) {
  Tracer T;
  EXPECT_DEATH(T.record("a", "x", TimePoint(10), TimePoint(5)), "ends");
}

TEST(TracerTest, MergeFromEmptySourceIsANoOp) {
  Tracer Dst, Src;
  Dst.record("a", "x", TimePoint(0), TimePoint(1));
  Dst.mergeFrom(Src, "w0/");
  ASSERT_EQ(Dst.size(), 1u);
  EXPECT_EQ(Dst.events()[0].Lane, "a");
  EXPECT_TRUE(Dst.trackSamples("w0/t").empty());
}

TEST(TracerTest, MergeFromPrefixesLanesAndTracks) {
  Tracer Dst, Src;
  Src.record("GPU", "k", TimePoint(0), TimePoint(5), "d");
  Src.counter("load", TimePoint(2), 3.5);
  Dst.mergeFrom(Src, "w1/");
  ASSERT_EQ(Dst.laneEvents("w1/GPU").size(), 1u);
  EXPECT_EQ(Dst.laneEvents("w1/GPU")[0].Detail, "d");
  ASSERT_EQ(Dst.trackSamples("w1/load").size(), 1u);
  EXPECT_DOUBLE_EQ(Dst.trackSamples("w1/load")[0].Value, 3.5);
  // Merging again under the same prefix appends rather than replacing -
  // duplicate lane names stay one lane with more events.
  Dst.mergeFrom(Src, "w1/");
  EXPECT_EQ(Dst.laneEvents("w1/GPU").size(), 2u);
  EXPECT_EQ(Dst.trackSamples("w1/load").size(), 2u);
}

TEST(TracerDeathTest, MergeIntoSelfIsRejected) {
  Tracer T;
  T.record("a", "x", TimePoint(0), TimePoint(1));
  EXPECT_DEATH(T.mergeFrom(T, "w0/"), "itself");
}

TEST(TracerTest, ChromeTraceContainsLanesAndEvents) {
  Tracer T;
  T.record("GPU", "kernel", TimePoint(1000), TimePoint(3000), "q=app");
  std::string Json = T.renderChromeTrace();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("thread_name"), std::string::npos);
  EXPECT_NE(Json.find("\"GPU\""), std::string::npos);
  EXPECT_NE(Json.find("\"kernel\""), std::string::npos);
  EXPECT_NE(Json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":2.000"), std::string::npos);
}

TEST(TracerTest, EscapesJsonSpecials) {
  Tracer T;
  T.record("la\"ne", "na\\me", TimePoint(0), TimePoint(1));
  std::string Json = T.renderChromeTrace();
  EXPECT_NE(Json.find("la\\\"ne"), std::string::npos);
  EXPECT_NE(Json.find("na\\\\me"), std::string::npos);
}

TEST(TracerTest, EscapesControlCharsAndHostileNames) {
  Tracer T;
  // A kernel name with every class of hostile character: quote, backslash,
  // newline, tab, and an embedded control byte.
  T.record("lane\none", "ker\"nel\\\t\x01", TimePoint(0), TimePoint(1),
           "d=\"x\"");
  T.counter("cnt\"track", TimePoint(0), 1.0);
  std::string Json = T.renderChromeTrace();
  // No raw tab or control byte may survive into the output (newlines are
  // legitimate inter-event formatting, so check the escaped forms instead).
  EXPECT_EQ(Json.find('\t'), std::string::npos);
  EXPECT_EQ(Json.find('\x01'), std::string::npos);
  EXPECT_NE(Json.find("lane\\none"), std::string::npos);
  EXPECT_NE(Json.find("ker\\\"nel\\\\\\t\\u0001"), std::string::npos);
  EXPECT_NE(Json.find("cnt\\\"track"), std::string::npos);
}

TEST(TracerTest, CounterSamplesRecordedAndFiltered) {
  Tracer T;
  T.counter("chunk", TimePoint(0), 2.0);
  T.counter("transfers", TimePoint(50), 1.0);
  T.counter("chunk", TimePoint(100), 4.0);
  ASSERT_EQ(T.counterSamples().size(), 3u);
  auto Chunk = T.trackSamples("chunk");
  ASSERT_EQ(Chunk.size(), 2u);
  EXPECT_EQ(Chunk[0].Value, 2.0);
  EXPECT_EQ(Chunk[1].Value, 4.0);
  EXPECT_TRUE(T.trackSamples("missing").empty());
  T.clear();
  EXPECT_TRUE(T.counterSamples().empty());
}

TEST(TracerTest, ChromeTraceEmitsCounterEvents) {
  Tracer T;
  T.record("GPU", "kernel", TimePoint(0), TimePoint(1000));
  T.counter("Outstanding transfers", TimePoint(500), 3.0);
  std::string Json = T.renderChromeTrace();
  EXPECT_NE(Json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(Json.find("\"Outstanding transfers\""), std::string::npos);
  EXPECT_NE(Json.find("\"args\":{\"value\":3}"), std::string::npos);
}

TEST(TracerIntegrationTest, FluidiclRunEmitsCounterTracks) {
  Tracer T;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Ctx.setTracer(&T);
  fluidicl::Runtime RT(Ctx);
  work::runWorkload(RT, work::makeSyrk(1024, 1024), false);
  EXPECT_FALSE(T.trackSamples("SimGPU live work-groups").empty());
  EXPECT_FALSE(T.trackSamples("Outstanding transfers").empty());
  EXPECT_FALSE(T.trackSamples("CPU chunk work-groups").empty());
  // Transfer tracking must balance: the final sample returns to zero.
  EXPECT_EQ(T.trackSamples("Outstanding transfers").back().Value, 0.0);
}

TEST(TracerTest, WriteFileRoundTrip) {
  Tracer T;
  T.record("a", "x", TimePoint(0), TimePoint(1));
  std::string Path = ::testing::TempDir() + "/fcl_trace_test.json";
  ASSERT_TRUE(T.writeChromeTrace(Path));
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), T.renderChromeTrace());
  std::remove(Path.c_str());
}

TEST(TracerIntegrationTest, QueueCommandsProduceSlices) {
  Tracer T;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Ctx.setTracer(&T);
  auto Queue = Ctx.createQueue(Ctx.gpu(), "q");
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 4096);
  Queue->enqueueWrite(*Buf, nullptr, 4096);
  Queue->enqueueRead(*Buf, nullptr, 4096);
  Queue->finish();
  EXPECT_EQ(T.laneEvents("PCIe H2D").size(), 1u);
  EXPECT_EQ(T.laneEvents("PCIe D2H").size(), 1u);
  // The slice durations match the PCIe model.
  EXPECT_EQ(T.laneEvents("PCIe H2D")[0].duration().nanos(),
            Ctx.machine().Pcie.transferTime(4096).nanos());
}

TEST(TracerIntegrationTest, FluidiclScheduleVisibleOnAllLanes) {
  Tracer T;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Ctx.setTracer(&T);
  fluidicl::Runtime RT(Ctx);
  work::runWorkload(RT, work::makeSyrk(1024, 1024), false);
  // GPU kernel + merge, CPU subkernels, data/status stream, DH readback.
  EXPECT_GE(T.laneEvents("SimGPU").size(), 2u);
  EXPECT_GE(T.laneEvents("SimCPU").size(), 3u);
  EXPECT_GE(T.laneEvents("PCIe H2D").size(), 3u);
  EXPECT_GE(T.laneEvents("PCIe D2H").size(), 1u);
  EXPECT_GE(T.laneEvents("SimGPU copy").size(), 1u); // Orig snapshot.
  // Subkernel slices carry the flat-range suffix.
  bool SawSubkernel = false;
  for (const TraceEvent &E : T.laneEvents("SimCPU"))
    if (E.Name.find('[') != std::string::npos)
      SawSubkernel = true;
  EXPECT_TRUE(SawSubkernel);
}

TEST(TracerIntegrationTest, DetachStopsRecording) {
  Tracer T;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Ctx.setTracer(&T);
  auto Queue = Ctx.createQueue(Ctx.gpu());
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 64);
  Queue->enqueueWrite(*Buf, nullptr, 64);
  Queue->finish();
  size_t Before = T.size();
  Ctx.setTracer(nullptr);
  Queue->enqueueWrite(*Buf, nullptr, 64);
  Queue->finish();
  EXPECT_EQ(T.size(), Before);
}

} // namespace
