//===- tests/stats_test.cpp - Metrics subsystem tests ----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Covers the fcl::stats registry/report layer and the runtime
/// instrumentation: work-group accounting identities, the ablation toggles'
/// observable zeroes (UseCpu, BufferPool, DataLocationTracking), and the
/// JSON/CSV export surface.
///
//===----------------------------------------------------------------------===//

#include "stats/Registry.h"
#include "stats/Report.h"

#include "fluidicl/Runtime.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace fcl;
using namespace fcl::work;

namespace {

TEST(RegistryTest, CountersAccumulateAndAbsentReadsZero) {
  stats::Registry R;
  EXPECT_EQ(R.counter("never_written"), 0u);
  EXPECT_EQ(R.gauge("never_set"), 0.0);
  EXPECT_TRUE(R.empty());
  R.add("hits");
  R.add("hits", 4);
  EXPECT_EQ(R.counter("hits"), 5u);
  R.set("rate", 0.25);
  R.set("rate", 0.5);
  EXPECT_EQ(R.gauge("rate"), 0.5);
  EXPECT_FALSE(R.empty());
  R.clear();
  EXPECT_TRUE(R.empty());
}

TEST(RegistryTest, MergeAddsCountersOverwritesGauges) {
  stats::Registry A, B;
  A.add("shared", 2);
  A.set("g", 1.0);
  B.add("shared", 3);
  B.add("only_b", 7);
  B.set("g", 9.0);
  A.mergeFrom(B);
  EXPECT_EQ(A.counter("shared"), 5u);
  EXPECT_EQ(A.counter("only_b"), 7u);
  EXPECT_EQ(A.gauge("g"), 9.0);
}

stats::RunReport runFluidicl(const Workload &W, fluidicl::Options Opts) {
  RunConfig C;
  C.FclOpts = Opts;
  return reportUnder(RuntimeKind::FluidiCL, W, C);
}

// Acceptance identity of the PR: every work-group of every launch is
// completed by exactly one device, and the GPU either executes or aborts
// each of its groups.
TEST(StatsInstrumentationTest, WorkGroupAccountingCoversFullNDRange) {
  stats::RunReport Rep = runFluidicl(makeSyrk(1024, 1024), {});
  ASSERT_FALSE(Rep.Launches.empty());
  for (const stats::LaunchStats &L : Rep.Launches) {
    EXPECT_EQ(L.GpuGroupsCompleted + L.CpuGroupsCompleted, L.TotalGroups)
        << L.KernelName;
    EXPECT_EQ(L.GpuGroupsAborted + L.GpuGroupsExecuted, L.TotalGroups)
        << L.KernelName;
    EXPECT_LE(L.GpuGroupsWasted, L.GpuGroupsExecuted) << L.KernelName;
  }
  EXPECT_EQ(Rep.gpuWorkGroupsCompleted() + Rep.cpuWorkGroupsCompleted(),
            Rep.totalWorkGroups());
  // SYRK is the paper's cooperative showcase: the CPU finishes real work,
  // so the GPU aborts the covered tail.
  EXPECT_GT(Rep.cpuWorkGroupsCompleted(), 0u);
  EXPECT_GT(Rep.gpuWorkGroupsAborted(), 0u);
  // Each launch recorded its chunk trajectory.
  EXPECT_FALSE(Rep.Launches.front().ChunkTrajectory.empty());
}

TEST(StatsInstrumentationTest, UseCpuOffZeroesCpuSideCounters) {
  fluidicl::Options Opts;
  Opts.UseCpu = false;
  stats::RunReport Rep = runFluidicl(makeSyrk(1024, 1024), Opts);
  ASSERT_FALSE(Rep.Launches.empty());
  EXPECT_EQ(Rep.cpuWorkGroupsCompleted(), 0u);
  EXPECT_EQ(Rep.cpuWorkGroupsExecuted(), 0u);
  EXPECT_EQ(Rep.cpuWorkGroupsWasted(), 0u);
  EXPECT_EQ(Rep.gpuWorkGroupsCompleted(), Rep.totalWorkGroups());
  EXPECT_EQ(Rep.gpuWorkGroupsAborted(), 0u);
  for (const stats::LaunchStats &L : Rep.Launches) {
    EXPECT_EQ(L.CpuSubkernels, 0u);
    EXPECT_EQ(L.StatusBytesSent, 0u);
    EXPECT_EQ(L.MergeBytesDiffed, 0u);
  }
}

TEST(StatsInstrumentationTest, BufferPoolOffZeroesHits) {
  // BICG launches two kernels, so an enabled pool sees reuse.
  fluidicl::Options On;
  stats::RunReport WithPool = runFluidicl(makeBicg(1024, 1024), On);
  EXPECT_GT(WithPool.Counters.counter("bufferpool_hits"), 0u);
  EXPECT_GT(WithPool.Counters.gauge("bufferpool_hit_rate"), 0.0);

  fluidicl::Options Off;
  Off.BufferPool = false;
  stats::RunReport NoPool = runFluidicl(makeBicg(1024, 1024), Off);
  EXPECT_EQ(NoPool.Counters.counter("bufferpool_hits"), 0u);
  EXPECT_EQ(NoPool.Counters.gauge("bufferpool_hit_rate"), 0.0);
  // The disabled pool still creates every buffer it is asked for.
  EXPECT_GT(NoPool.Counters.counter("bufferpool_misses"), 0u);
}

TEST(StatsInstrumentationTest, DataLocationTrackingOffZeroesCpuReads) {
  fluidicl::Options Off;
  Off.DataLocationTracking = false;
  stats::RunReport Rep = runFluidicl(makeSyrk(1024, 1024), Off);
  EXPECT_EQ(Rep.Counters.counter("reads_from_cpu"), 0u);
  EXPECT_EQ(Rep.Counters.counter("reads_from_cpu_bytes"), 0u);
  EXPECT_GT(Rep.Counters.counter("reads_from_gpu"), 0u);
}

TEST(StatsInstrumentationTest, BaselineRuntimesReportPlacement) {
  Workload W = makeSyrk(1024, 1024);
  stats::RunReport Gpu = reportUnder(RuntimeKind::GpuOnly, W);
  EXPECT_EQ(Gpu.Counters.counter("gpu_workgroups_completed"),
            Gpu.Counters.counter("workgroups_total"));
  EXPECT_EQ(Gpu.Counters.counter("cpu_workgroups_completed"), 0u);

  stats::RunReport Socl = reportUnder(RuntimeKind::SoclEager, W);
  EXPECT_EQ(Socl.Counters.counter("gpu_workgroups_completed") +
                Socl.Counters.counter("cpu_workgroups_completed"),
            Socl.Counters.counter("workgroups_total"));
}

TEST(RunReportTest, JsonAndCsvExport) {
  trace::Tracer T;
  RunConfig C;
  stats::RunReport Rep =
      reportUnder(RuntimeKind::FluidiCL, makeSyrk(1024, 1024), C, &T);
  std::string Json = Rep.renderJson();
  EXPECT_NE(Json.find("\"schema\": \"fcl-run-report-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"total_workgroups\""), std::string::npos);
  EXPECT_NE(Json.find("\"chunk_trajectory\""), std::string::npos);
  EXPECT_NE(Json.find("\"device_utilization\""), std::string::npos);
  EXPECT_FALSE(Rep.Utilization.empty());

  CsvWriter Csv(stats::RunReport::csvHeader());
  Rep.appendCsvRows(Csv);
  std::string Rendered = Csv.render();
  // Header plus one row per launch.
  EXPECT_EQ(static_cast<size_t>(
                std::count(Rendered.begin(), Rendered.end(), '\n')),
            1 + Rep.Launches.size());

  std::string Path = ::testing::TempDir() + "/fcl_stats_test.json";
  ASSERT_TRUE(Rep.writeJson(Path));
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), Rep.renderJson());
  std::remove(Path.c_str());
}

TEST(RunReportTest, ReportSetWrapsMultipleRuns) {
  std::vector<stats::RunReport> Reports(2);
  Reports[0].WorkloadName = "a";
  Reports[1].WorkloadName = "b";
  std::string Path = ::testing::TempDir() + "/fcl_stats_set_test.json";
  ASSERT_TRUE(stats::writeReportsJson(Reports, Path));
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_NE(SS.str().find("fcl-run-report-set-v1"), std::string::npos);
  std::remove(Path.c_str());
}

} // namespace
