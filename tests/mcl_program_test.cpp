//===- tests/mcl_program_test.cpp - Program / kernel-object tests ----------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mcl/Program.h"

#include "mcl/CommandQueue.h"
#include "mcl/Context.h"

#include <gtest/gtest.h>

using namespace fcl;
using namespace fcl::mcl;

namespace {

TEST(ProgramTest, BuildsFromKernelNames) {
  Program P({"vec_add", "saxpy"});
  EXPECT_EQ(P.numKernels(), 2u);
  EXPECT_TRUE(P.hasKernel("vec_add"));
  EXPECT_TRUE(P.hasKernel("saxpy"));
  EXPECT_FALSE(P.hasKernel("syrk_kernel"));
}

TEST(ProgramTest, AllBuiltinsContainsEveryFamily) {
  Program P = Program::allBuiltins();
  for (const char *Name : {"atax_kernel1", "syrk_kernel", "md_merge_kernel",
                           "histogram_atomic", "gemm_kernel"})
    EXPECT_TRUE(P.hasKernel(Name)) << Name;
}

TEST(ProgramDeathTest, UnknownKernelAborts) {
  EXPECT_DEATH(Program({"not_a_kernel"}), "unknown kernel");
  Program P({"vec_add"});
  EXPECT_DEATH(P.kernel("saxpy"), "not in program");
}

TEST(KernelObjectTest, ArgCompletionTracking) {
  Program P({"saxpy"});
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  auto X = Ctx.createBuffer(Ctx.gpu(), 128);
  auto Y = Ctx.createBuffer(Ctx.gpu(), 128);
  KernelObject K(P, "saxpy");
  EXPECT_FALSE(K.argsComplete());
  K.setArgBuffer(0, X.get());
  K.setArgBuffer(1, Y.get());
  K.setArgFloat(2, 2.0);
  EXPECT_FALSE(K.argsComplete());
  K.setArgInt(3, 32);
  EXPECT_TRUE(K.argsComplete());
}

TEST(KernelObjectDeathTest, KindMismatchesRejected) {
  Program P({"saxpy"});
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  auto X = Ctx.createBuffer(Ctx.gpu(), 128);
  KernelObject K(P, "saxpy");
  EXPECT_DEATH(K.setArgInt(0, 5), "buffer argument");
  EXPECT_DEATH(K.setArgBuffer(2, X.get()), "scalar argument");
  EXPECT_DEATH(K.setArgBuffer(9, X.get()), "out of range");
}

TEST(KernelObjectDeathTest, IncompleteLaunchAborts) {
  Program P({"vec_add"});
  KernelObject K(P, "vec_add");
  EXPECT_DEATH(K.buildLaunch(kern::NDRange::of1D(64, 32)), "unset");
}

TEST(KernelObjectTest, EndToEndLaunchThroughQueue) {
  Program P({"vec_add"});
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  auto Queue = Ctx.createQueue(Ctx.gpu());
  const int64_t N = 128;
  auto A = Ctx.createBuffer(Ctx.gpu(), N * 4);
  auto B = Ctx.createBuffer(Ctx.gpu(), N * 4);
  auto C = Ctx.createBuffer(Ctx.gpu(), N * 4);
  std::vector<float> HA(N, 4.0f), HB(N, 5.0f), HC(N, 0.0f);
  Queue->enqueueWrite(*A, HA.data(), N * 4);
  Queue->enqueueWrite(*B, HB.data(), N * 4);

  KernelObject K(P, "vec_add");
  K.setArgBuffer(0, A.get());
  K.setArgBuffer(1, B.get());
  K.setArgBuffer(2, C.get());
  K.setArgInt(3, N);
  Queue->enqueueKernel(K.buildLaunch(kern::NDRange::of1D(N, 32)))->wait();
  Queue->enqueueRead(*C, HC.data(), N * 4, 0, /*Blocking=*/true);
  for (int64_t I = 0; I < N; ++I)
    EXPECT_FLOAT_EQ(HC[static_cast<size_t>(I)], 9.0f);
}

TEST(KernelObjectTest, ArgumentsRetainedAcrossLaunches) {
  Program P({"saxpy"});
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  auto Queue = Ctx.createQueue(Ctx.cpu());
  const int64_t N = 64;
  auto X = Ctx.createBuffer(Ctx.cpu(), N * 4);
  auto Y = Ctx.createBuffer(Ctx.cpu(), N * 4);
  std::vector<float> HX(N, 1.0f), HY(N, 0.0f);
  Queue->enqueueWrite(*X, HX.data(), N * 4);
  Queue->enqueueWrite(*Y, HY.data(), N * 4);

  KernelObject K(P, "saxpy");
  K.setArgBuffer(0, X.get());
  K.setArgBuffer(1, Y.get());
  K.setArgFloat(2, 3.0);
  K.setArgInt(3, N);
  // Launch twice with retained args: y = 3 + 3 = 6.
  Queue->enqueueKernel(K.buildLaunch(kern::NDRange::of1D(N, 32)));
  Queue->enqueueKernel(K.buildLaunch(kern::NDRange::of1D(N, 32)));
  Queue->enqueueRead(*Y, HY.data(), N * 4, 0, /*Blocking=*/true);
  for (float V : HY)
    EXPECT_FLOAT_EQ(V, 6.0f);
}

} // namespace
