//===- tests/opencl_shim_test.cpp - OpenCL C-API shim tests ----------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluidicl/OpenCLShim.h"

#include <gtest/gtest.h>

#include <vector>

using namespace fcl;
using namespace fcl::fluidicl::shim;

namespace {

class ShimTest : public ::testing::Test {
protected:
  ShimTest()
      : Sim(hw::paperMachine(), mcl::ExecMode::Functional), RT(Sim),
        Ctx(fclCreateContext(RT)), Queue(fclCreateCommandQueue(Ctx)) {}
  ~ShimTest() override { fclReleaseContext(Ctx); }

  mcl::Context Sim;
  fluidicl::Runtime RT;
  fcl_context Ctx;
  fcl_command_queue Queue;
};

TEST_F(ShimTest, BufferCreateWriteReadRoundTrip) {
  fcl_int Err = -1;
  fcl_mem Buf = fclCreateBuffer(Ctx, FCL_MEM_READ_WRITE, 256, nullptr, &Err);
  ASSERT_NE(Buf, nullptr);
  EXPECT_EQ(Err, FCL_SUCCESS);
  std::vector<uint8_t> Src(256);
  for (size_t I = 0; I < Src.size(); ++I)
    Src[I] = static_cast<uint8_t>(I);
  EXPECT_EQ(fclEnqueueWriteBuffer(Queue, Buf, FCL_TRUE, 0, 256, Src.data()),
            FCL_SUCCESS);
  std::vector<uint8_t> Dst(256, 0);
  EXPECT_EQ(fclEnqueueReadBuffer(Queue, Buf, FCL_TRUE, 0, 256, Dst.data()),
            FCL_SUCCESS);
  EXPECT_EQ(Src, Dst);
}

TEST_F(ShimTest, HostPtrInitializesBuffer) {
  std::vector<float> Init(64, 7.5f);
  fcl_int Err = -1;
  fcl_mem Buf = fclCreateBuffer(Ctx, FCL_MEM_READ_ONLY, 64 * 4, Init.data(),
                                &Err);
  ASSERT_NE(Buf, nullptr);
  std::vector<float> Out(64, 0);
  fclEnqueueReadBuffer(Queue, Buf, FCL_TRUE, 0, 64 * 4, Out.data());
  EXPECT_EQ(Out, Init);
}

TEST_F(ShimTest, InvalidBufferArgumentsRejected) {
  fcl_int Err = 0;
  EXPECT_EQ(fclCreateBuffer(Ctx, FCL_MEM_READ_WRITE, 0, nullptr, &Err),
            nullptr);
  EXPECT_EQ(Err, FCL_INVALID_VALUE);
  EXPECT_EQ(fclCreateBuffer(nullptr, FCL_MEM_READ_WRITE, 16, nullptr, &Err),
            nullptr);

  fcl_mem Buf = fclCreateBuffer(Ctx, FCL_MEM_READ_WRITE, 16, nullptr, &Err);
  uint8_t Byte = 0;
  EXPECT_EQ(fclEnqueueWriteBuffer(Queue, Buf, FCL_TRUE, 0, 32, &Byte),
            FCL_INVALID_VALUE);
  EXPECT_EQ(fclEnqueueReadBuffer(Queue, nullptr, FCL_TRUE, 0, 16, &Byte),
            FCL_INVALID_MEM_OBJECT);
}

TEST_F(ShimTest, UnknownKernelNameRejected) {
  fcl_int Err = 0;
  EXPECT_EQ(fclCreateKernel(Ctx, "definitely_not_a_kernel", &Err), nullptr);
  EXPECT_EQ(Err, FCL_INVALID_KERNEL_NAME);
}

TEST_F(ShimTest, SetArgValidation) {
  fcl_int Err = -1;
  fcl_kernel K = fclCreateKernel(Ctx, "saxpy", &Err);
  ASSERT_NE(K, nullptr);
  fcl_mem Buf = fclCreateBuffer(Ctx, FCL_MEM_READ_WRITE, 128, nullptr, &Err);

  // Wrong size for a buffer argument.
  uint32_t Small = 0;
  EXPECT_EQ(fclSetKernelArg(K, 0, sizeof(Small), &Small),
            FCL_INVALID_VALUE);
  // Out-of-range index.
  EXPECT_EQ(fclSetKernelArg(K, 9, sizeof(fcl_mem), &Buf),
            FCL_INVALID_VALUE);
  // Unsupported scalar width.
  uint8_t Tiny = 1;
  EXPECT_EQ(fclSetKernelArg(K, 2, 1, &Tiny), FCL_INVALID_VALUE);
  // Valid settings.
  EXPECT_EQ(fclSetKernelArg(K, 0, sizeof(fcl_mem), &Buf), FCL_SUCCESS);
  EXPECT_EQ(fclSetKernelArg(K, 1, sizeof(fcl_mem), &Buf), FCL_SUCCESS);
  float Alpha = 2.0f;
  EXPECT_EQ(fclSetKernelArg(K, 2, sizeof(Alpha), &Alpha), FCL_SUCCESS);
  int64_t N = 32;
  EXPECT_EQ(fclSetKernelArg(K, 3, sizeof(N), &N), FCL_SUCCESS);
}

TEST_F(ShimTest, LaunchRequiresAllArgsSet) {
  fcl_int Err = -1;
  fcl_kernel K = fclCreateKernel(Ctx, "vec_add", &Err);
  size_t Global[1] = {64};
  size_t Local[1] = {32};
  EXPECT_EQ(fclEnqueueNDRangeKernel(Queue, K, 1, nullptr, Global, Local),
            FCL_INVALID_KERNEL_ARGS);
}

TEST_F(ShimTest, LaunchValidatesDimensions) {
  fcl_int Err = -1;
  fcl_kernel K = fclCreateKernel(Ctx, "vec_add", &Err);
  size_t Global[1] = {64};
  size_t Local[1] = {32};
  EXPECT_EQ(fclEnqueueNDRangeKernel(Queue, K, 0, nullptr, Global, Local),
            FCL_INVALID_WORK_DIMENSION);
  EXPECT_EQ(fclEnqueueNDRangeKernel(Queue, K, 4, nullptr, Global, Local),
            FCL_INVALID_WORK_DIMENSION);
  size_t Offset[1] = {8};
  EXPECT_EQ(fclEnqueueNDRangeKernel(Queue, K, 1, Offset, Global, Local),
            FCL_INVALID_VALUE);
}

TEST_F(ShimTest, EndToEndSaxpyCooperative) {
  const int64_t N = 4096;
  std::vector<float> X(N, 3.0f), Y(N, 1.0f);
  fcl_int Err = -1;
  fcl_mem BufX = fclCreateBuffer(Ctx, FCL_MEM_READ_ONLY,
                                 static_cast<size_t>(N) * 4, X.data(), &Err);
  fcl_mem BufY = fclCreateBuffer(Ctx, FCL_MEM_READ_WRITE,
                                 static_cast<size_t>(N) * 4, Y.data(), &Err);
  fcl_kernel K = fclCreateKernel(Ctx, "saxpy", &Err);
  float Alpha = 2.0f;
  fclSetKernelArg(K, 0, sizeof(fcl_mem), &BufX);
  fclSetKernelArg(K, 1, sizeof(fcl_mem), &BufY);
  fclSetKernelArg(K, 2, sizeof(Alpha), &Alpha);
  fclSetKernelArg(K, 3, sizeof(int64_t), &N);
  size_t Global[1] = {static_cast<size_t>(N)};
  size_t Local[1] = {32};
  ASSERT_EQ(fclEnqueueNDRangeKernel(Queue, K, 1, nullptr, Global, Local),
            FCL_SUCCESS);
  ASSERT_EQ(fclEnqueueReadBuffer(Queue, BufY, FCL_TRUE, 0,
                                 static_cast<size_t>(N) * 4, Y.data()),
            FCL_SUCCESS);
  EXPECT_EQ(fclFinish(Queue), FCL_SUCCESS);
  for (int64_t I = 0; I < N; ++I)
    EXPECT_FLOAT_EQ(Y[static_cast<size_t>(I)], 7.0f);
}

TEST_F(ShimTest, TwoDimensionalLaunchViaShim) {
  const int64_t N = 64;
  std::vector<float> A(N * N, 0.5f), C(N * N, 1.0f);
  fcl_int Err = -1;
  fcl_mem BufA =
      fclCreateBuffer(Ctx, FCL_MEM_READ_ONLY,
                      static_cast<size_t>(N * N) * 4, A.data(), &Err);
  fcl_mem BufC =
      fclCreateBuffer(Ctx, FCL_MEM_READ_WRITE,
                      static_cast<size_t>(N * N) * 4, C.data(), &Err);
  fcl_kernel K = fclCreateKernel(Ctx, "syrk_kernel", &Err);
  float Alpha = 1.0f, Beta = 0.0f;
  fclSetKernelArg(K, 0, sizeof(fcl_mem), &BufA);
  fclSetKernelArg(K, 1, sizeof(fcl_mem), &BufC);
  fclSetKernelArg(K, 2, sizeof(Alpha), &Alpha);
  fclSetKernelArg(K, 3, sizeof(Beta), &Beta);
  fclSetKernelArg(K, 4, sizeof(int64_t), &N);
  fclSetKernelArg(K, 5, sizeof(int64_t), &N);
  size_t Global[2] = {static_cast<size_t>(N), static_cast<size_t>(N)};
  size_t Local[2] = {32, 8};
  ASSERT_EQ(fclEnqueueNDRangeKernel(Queue, K, 2, nullptr, Global, Local),
            FCL_SUCCESS);
  fclEnqueueReadBuffer(Queue, BufC, FCL_TRUE, 0,
                       static_cast<size_t>(N * N) * 4, C.data());
  // C = A A^T with all entries 0.5: every element = N * 0.25.
  for (float V : C)
    EXPECT_FLOAT_EQ(V, static_cast<float>(N) * 0.25f);
}

} // namespace
