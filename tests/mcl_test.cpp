//===- tests/mcl_test.cpp - MiniCL substrate tests -------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the OpenCL-style host API substrate: buffers, in-order command
/// queues, events, transfers (with PCIe/full-duplex timing), functional
/// kernel launches on both simulated devices, flat-range restricted
/// launches, CPU work-group splitting, and GPU abort-boundary behaviour.
///
//===----------------------------------------------------------------------===//

#include "kern/Registry.h"
#include "mcl/CommandQueue.h"
#include "mcl/Context.h"
#include "mcl/CpuEngine.h"
#include "mcl/GpuEngine.h"
#include "mcl/Platform.h"

#include <gtest/gtest.h>

#include <vector>

using namespace fcl;
using namespace fcl::mcl;

namespace {

LaunchDesc vecAddDesc(Buffer &A, Buffer &B, Buffer &C, int64_t N) {
  LaunchDesc Desc;
  Desc.Kernel = &kern::Registry::builtin().get("vec_add");
  Desc.Range = kern::NDRange::of1D(static_cast<uint64_t>(N), 32);
  Desc.Args = {LaunchArg::buffer(&A), LaunchArg::buffer(&B),
               LaunchArg::buffer(&C), LaunchArg::scalarInt(N)};
  return Desc;
}

TEST(PlatformTest, TwoVendorPlatforms) {
  Context Ctx;
  auto Platforms = discoverPlatforms(Ctx);
  ASSERT_EQ(Platforms.size(), 2u);
  EXPECT_EQ(Platforms[0].Dev->kind(), DeviceKind::Gpu);
  EXPECT_EQ(Platforms[1].Dev->kind(), DeviceKind::Cpu);
  EXPECT_NE(Platforms[0].VendorName, Platforms[1].VendorName);
}

TEST(ContextTest, DevicesExposed) {
  Context Ctx;
  EXPECT_EQ(Ctx.cpu().kind(), DeviceKind::Cpu);
  EXPECT_EQ(Ctx.gpu().kind(), DeviceKind::Gpu);
  EXPECT_EQ(Ctx.cpu().computeUnits(), Ctx.machine().Cpu.ComputeUnits);
  EXPECT_EQ(Ctx.gpu().computeUnits(), Ctx.machine().Gpu.NumSms);
}

TEST(ContextTest, BufferCreationChargesHostTime) {
  Context Ctx;
  TimePoint Before = Ctx.now();
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 1024);
  EXPECT_EQ((Ctx.now() - Before).nanos(),
            Ctx.machine().Host.bufferCreateTime(1024).nanos());
  EXPECT_TRUE(Buf->backed());
  EXPECT_EQ(Buf->size(), 1024u);
}

TEST(ContextTest, LargeBufferCreationCostsMore) {
  Context Ctx;
  Duration Small = Ctx.machine().Host.bufferCreateTime(1024);
  Duration Large = Ctx.machine().Host.bufferCreateTime(256 << 20);
  EXPECT_GT(Large.nanos(), Small.nanos());
  // The fixed part is shared; the delta is the page-mapping term.
  EXPECT_GE(Large.nanos() - Small.nanos(),
            static_cast<int64_t>((256 << 20) /
                                 Ctx.machine().Host.BufferCreateBandwidth *
                                 1e9) -
                1000);
}

TEST(ContextTest, TimingOnlyBuffersHaveNoStorage) {
  Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 1024);
  EXPECT_FALSE(Buf->backed());
  EXPECT_EQ(Buf->data(), nullptr);
}

TEST(QueueTest, WriteReadRoundTrip) {
  Context Ctx;
  auto Queue = Ctx.createQueue(Ctx.gpu());
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 256);
  std::vector<uint8_t> Src(256);
  for (size_t I = 0; I < Src.size(); ++I)
    Src[I] = static_cast<uint8_t>(I);
  Queue->enqueueWrite(*Buf, Src.data(), Src.size());
  std::vector<uint8_t> Dst(256, 0);
  Queue->enqueueRead(*Buf, Dst.data(), Dst.size(), 0, /*Blocking=*/true);
  EXPECT_EQ(Src, Dst);
}

TEST(QueueTest, OffsetWriteAndRead) {
  Context Ctx;
  auto Queue = Ctx.createQueue(Ctx.gpu());
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 64);
  uint32_t Value = 0xDEADBEEF;
  Queue->enqueueWrite(*Buf, &Value, sizeof(Value), 16);
  uint32_t Out = 0;
  Queue->enqueueRead(*Buf, &Out, sizeof(Out), 16, /*Blocking=*/true);
  EXPECT_EQ(Out, 0xDEADBEEFu);
}

TEST(QueueTest, WriteCapturesSourceAtEnqueue) {
  Context Ctx;
  auto Queue = Ctx.createQueue(Ctx.gpu());
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 4);
  uint32_t Value = 1;
  Queue->enqueueWrite(*Buf, &Value, sizeof(Value));
  Value = 2; // Mutate after enqueue; the captured copy must win.
  uint32_t Out = 0;
  Queue->enqueueRead(*Buf, &Out, sizeof(Out), 0, /*Blocking=*/true);
  EXPECT_EQ(Out, 1u);
}

TEST(QueueTest, CommandsExecuteInOrder) {
  Context Ctx;
  auto Queue = Ctx.createQueue(Ctx.gpu());
  std::vector<int> Order;
  Queue->enqueueCallback([&] { Order.push_back(1); });
  Queue->enqueueCallback([&] { Order.push_back(2); });
  Queue->enqueueCallback([&] { Order.push_back(3); });
  Queue->finish();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
}

// Regression test for callback re-entrancy: a callback running on one
// queue enqueues onto another stream's queue (and back onto its own) while
// both queues are mid-pump. The serving layer does exactly this - job
// completion callbacks dispatch the next job onto other queues - so the
// interleaving must neither drop nor reorder work, and enqueues onto a
// busy queue must park in Pending rather than recurse.
TEST(QueueTest, CallbackMayEnqueueOntoOtherQueuesMidPump) {
  Context Ctx;
  auto QGpu = Ctx.createQueue(Ctx.gpu(), "stream-a");
  auto QCpu = Ctx.createQueue(Ctx.cpu(), "stream-b");
  std::vector<std::string> Order;
  QGpu->enqueueCallback([&] {
    Order.push_back("a1");
    // Cross-queue enqueue while this queue is executing.
    QCpu->enqueueCallback([&] {
      Order.push_back("b1");
      // And from that stream back onto the first queue.
      QGpu->enqueueCallback([&] { Order.push_back("a3"); });
    });
    // Same-queue enqueue from inside the running callback must park in
    // Pending and run after this callback completes.
    QGpu->enqueueCallback([&] { Order.push_back("a2"); });
  });
  Ctx.simulator().run();
  EXPECT_TRUE(QGpu->idle());
  EXPECT_TRUE(QCpu->idle());
  EXPECT_EQ(Order,
            (std::vector<std::string>{"a1", "b1", "a2", "a3"}));
}

TEST(QueueTest, GpuWriteTimingMatchesPcieModel) {
  Context Ctx;
  auto Queue = Ctx.createQueue(Ctx.gpu());
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 1 << 20);
  TimePoint Before = Ctx.now();
  EventPtr Done = Queue->enqueueWrite(*Buf, nullptr, 1 << 20);
  Done->wait();
  Duration Took = Ctx.now() - Before;
  Duration Expect = Ctx.machine().Pcie.transferTime(1 << 20);
  EXPECT_EQ(Took.nanos(), Expect.nanos());
}

TEST(QueueTest, SameDirectionTransfersSerializeAcrossQueues) {
  Context Ctx;
  auto Q1 = Ctx.createQueue(Ctx.gpu());
  auto Q2 = Ctx.createQueue(Ctx.gpu());
  auto B1 = Ctx.createBuffer(Ctx.gpu(), 1 << 20);
  auto B2 = Ctx.createBuffer(Ctx.gpu(), 1 << 20);
  EventPtr E1 = Q1->enqueueWrite(*B1, nullptr, 1 << 20);
  EventPtr E2 = Q2->enqueueWrite(*B2, nullptr, 1 << 20);
  E1->wait();
  E2->wait();
  // The H2D channel is shared: the second write lands roughly one
  // bandwidth-term later than the first.
  Duration Gap = E2->completeTime() - E1->completeTime();
  double BwTerm = (1 << 20) / Ctx.machine().Pcie.Bandwidth * 1e9;
  EXPECT_NEAR(static_cast<double>(Gap.nanos()), BwTerm,
              static_cast<double>(Ctx.machine().Pcie.Latency.nanos()) + 10);
}

TEST(QueueTest, OppositeDirectionsOverlapFullDuplex) {
  Context Ctx;
  auto QW = Ctx.createQueue(Ctx.gpu());
  auto QR = Ctx.createQueue(Ctx.gpu());
  auto B1 = Ctx.createBuffer(Ctx.gpu(), 1 << 20);
  auto B2 = Ctx.createBuffer(Ctx.gpu(), 1 << 20);
  TimePoint Before = Ctx.now();
  EventPtr E1 = QW->enqueueWrite(*B1, nullptr, 1 << 20);
  EventPtr E2 = QR->enqueueRead(*B2, nullptr, 1 << 20);
  E1->wait();
  E2->wait();
  Duration Total = Ctx.now() - Before;
  Duration OneWay = Ctx.machine().Pcie.transferTime(1 << 20);
  // Full duplex: both transfers finish in about one transfer time.
  EXPECT_LT(Total.nanos(), OneWay.nanos() * 3 / 2);
}

TEST(EventTest, OnCompleteAfterCompletionRunsImmediately) {
  Context Ctx;
  auto Queue = Ctx.createQueue(Ctx.gpu());
  EventPtr Done = Queue->enqueueCallback([] {});
  Queue->finish();
  ASSERT_TRUE(Done->isComplete());
  bool Ran = false;
  Done->onComplete([&] { Ran = true; });
  EXPECT_TRUE(Ran);
}

TEST(EventTest, CompleteTimeRecorded) {
  Context Ctx;
  auto Queue = Ctx.createQueue(Ctx.gpu());
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 4096);
  EventPtr Done = Queue->enqueueWrite(*Buf, nullptr, 4096);
  Done->wait();
  EXPECT_EQ(Done->completeTime().nanos(), Ctx.now().nanos());
}

// --- Kernel launches ----------------------------------------------------------

class DeviceLaunchTest : public ::testing::TestWithParam<DeviceKind> {};

TEST_P(DeviceLaunchTest, VecAddFunctional) {
  Context Ctx;
  Device &Dev = GetParam() == DeviceKind::Cpu ? Ctx.cpu() : Ctx.gpu();
  auto Queue = Ctx.createQueue(Dev);
  const int64_t N = 256;
  auto A = Ctx.createBuffer(Dev, N * 4);
  auto B = Ctx.createBuffer(Dev, N * 4);
  auto C = Ctx.createBuffer(Dev, N * 4);
  std::vector<float> HA(N, 2.0f), HB(N, 3.0f), HC(N, 0.0f);
  Queue->enqueueWrite(*A, HA.data(), N * 4);
  Queue->enqueueWrite(*B, HB.data(), N * 4);
  EventPtr Done = Queue->enqueueKernel(vecAddDesc(*A, *B, *C, N));
  Done->wait();
  EXPECT_EQ(Done->payload(), N / 32u); // All groups executed.
  Queue->enqueueRead(*C, HC.data(), N * 4, 0, /*Blocking=*/true);
  for (int64_t I = 0; I < N; ++I)
    EXPECT_FLOAT_EQ(HC[I], 5.0f);
}

TEST_P(DeviceLaunchTest, FlatRangeRestrictionExecutesOnlySlice) {
  Context Ctx;
  Device &Dev = GetParam() == DeviceKind::Cpu ? Ctx.cpu() : Ctx.gpu();
  auto Queue = Ctx.createQueue(Dev);
  const int64_t N = 256; // 8 groups of 32.
  auto A = Ctx.createBuffer(Dev, N * 4);
  auto B = Ctx.createBuffer(Dev, N * 4);
  auto C = Ctx.createBuffer(Dev, N * 4);
  std::vector<float> HA(N, 1.0f), HB(N, 1.0f), HC(N, -1.0f);
  Queue->enqueueWrite(*A, HA.data(), N * 4);
  Queue->enqueueWrite(*B, HB.data(), N * 4);
  Queue->enqueueWrite(*C, HC.data(), N * 4);
  LaunchDesc Desc = vecAddDesc(*A, *B, *C, N);
  Desc.FlatBegin = 2;
  Desc.FlatEnd = 5;
  EventPtr Done = Queue->enqueueKernel(std::move(Desc));
  Done->wait();
  EXPECT_EQ(Done->payload(), 3u);
  Queue->enqueueRead(*C, HC.data(), N * 4, 0, /*Blocking=*/true);
  for (int64_t I = 0; I < N; ++I) {
    if (I >= 64 && I < 160)
      EXPECT_FLOAT_EQ(HC[I], 2.0f) << I;
    else
      EXPECT_FLOAT_EQ(HC[I], -1.0f) << I;
  }
}

INSTANTIATE_TEST_SUITE_P(BothDevices, DeviceLaunchTest,
                         ::testing::Values(DeviceKind::Cpu, DeviceKind::Gpu),
                         [](const ::testing::TestParamInfo<DeviceKind> &I) {
                           return I.param == DeviceKind::Cpu ? "Cpu" : "Gpu";
                         });

// --- CPU engine timing ---------------------------------------------------------

TEST(CpuEngineTest, LaunchDurationAmortizesOverhead) {
  Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
  auto &Cpu = static_cast<CpuEngine &>(Ctx.cpu());
  auto A = Ctx.createBuffer(Ctx.cpu(), 4096 * 4);
  auto B = Ctx.createBuffer(Ctx.cpu(), 4096 * 4);
  auto C = Ctx.createBuffer(Ctx.cpu(), 4096 * 4);
  LaunchDesc Desc = vecAddDesc(*A, *B, *C, 4096);

  Desc.FlatBegin = 0;
  Desc.FlatEnd = 8;
  double PerWg8 = Cpu.launchDuration(Desc).toSeconds() / 8;
  Desc.FlatEnd = 64;
  double PerWg64 = Cpu.launchDuration(Desc).toSeconds() / 64;
  // Larger subkernels amortize the launch overhead (the effect the
  // adaptive chunk heuristic exploits, paper section 5.1).
  EXPECT_LT(PerWg64, PerWg8);
}

TEST(CpuEngineTest, WorkGroupSplittingSpeedsUpSmallLaunches) {
  Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
  auto &Cpu = static_cast<CpuEngine &>(Ctx.cpu());
  const kern::KernelInfo &Syrk = kern::Registry::builtin().get("syrk_kernel");
  LaunchDesc Desc;
  Desc.Kernel = &Syrk;
  Desc.Range = kern::NDRange::of2D(256, 256, 32, 8);
  Desc.Args = {LaunchArg::buffer(nullptr), LaunchArg::buffer(nullptr),
               LaunchArg::scalarFp(1.0), LaunchArg::scalarFp(1.0),
               LaunchArg::scalarInt(256), LaunchArg::scalarInt(256)};
  // Bind real (timing-only) buffers for validity.
  auto A = Ctx.createBuffer(Ctx.cpu(), 256 * 256 * 4);
  auto C = Ctx.createBuffer(Ctx.cpu(), 256 * 256 * 4);
  Desc.Args[0] = LaunchArg::buffer(A.get());
  Desc.Args[1] = LaunchArg::buffer(C.get());
  Desc.FlatBegin = 0;
  Desc.FlatEnd = 2; // Fewer groups than the 8 compute units.

  Desc.SplitWorkGroups = false;
  Duration NoSplit = Cpu.launchDuration(Desc);
  Desc.SplitWorkGroups = true;
  Duration Split = Cpu.launchDuration(Desc);
  // Splitting each work-group across all units must be faster.
  EXPECT_LT(Split.nanos(), NoSplit.nanos());
}

// --- GPU abort behaviour ----------------------------------------------------------

TEST(GpuEngineTest, AbortBoundaryStopsRemainingGroups) {
  Context Ctx;
  auto Queue = Ctx.createQueue(Ctx.gpu());
  const int64_t N = 256 * 32;
  auto A = Ctx.createBuffer(Ctx.gpu(), N * 4);
  auto B = Ctx.createBuffer(Ctx.gpu(), N * 4);
  auto C = Ctx.createBuffer(Ctx.gpu(), N * 4);
  LaunchDesc Desc = vecAddDesc(*A, *B, *C, N); // 256 groups.
  Desc.Abort.Kind = hw::AbortPolicyKind::AtStart;
  // The "CPU" has completed everything from group 100 up, from the start.
  Desc.AbortBoundary = [] { return uint64_t(100); };
  EventPtr Done = Queue->enqueueKernel(std::move(Desc));
  Done->wait();
  EXPECT_EQ(Done->payload(), 100u);
}

TEST(GpuEngineTest, NoAbortWithoutPolicyEvenIfBoundarySet) {
  Context Ctx;
  auto Queue = Ctx.createQueue(Ctx.gpu());
  const int64_t N = 256 * 32;
  auto A = Ctx.createBuffer(Ctx.gpu(), N * 4);
  auto B = Ctx.createBuffer(Ctx.gpu(), N * 4);
  auto C = Ctx.createBuffer(Ctx.gpu(), N * 4);
  LaunchDesc Desc = vecAddDesc(*A, *B, *C, N);
  Desc.Abort.Kind = hw::AbortPolicyKind::None; // Unmodified kernel.
  Desc.AbortBoundary = [] { return uint64_t(0); };
  EventPtr Done = Queue->enqueueKernel(std::move(Desc));
  Done->wait();
  EXPECT_EQ(Done->payload(), 256u);
}

TEST(GpuEngineTest, BoundaryLoweredMidKernelShortensExecution) {
  Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
  auto Queue = Ctx.createQueue(Ctx.gpu());
  const kern::KernelInfo &Syrk = kern::Registry::builtin().get("syrk_kernel");
  auto A = Ctx.createBuffer(Ctx.gpu(), 1024 * 1024 * 4);
  auto C = Ctx.createBuffer(Ctx.gpu(), 1024 * 1024 * 4);
  auto MakeDesc = [&](std::function<uint64_t()> Boundary) {
    LaunchDesc Desc;
    Desc.Kernel = &Syrk;
    Desc.Range = kern::NDRange::of2D(1024, 1024, 32, 8); // 4096 groups.
    Desc.Args = {LaunchArg::buffer(A.get()), LaunchArg::buffer(C.get()),
                 LaunchArg::scalarFp(1.0), LaunchArg::scalarFp(1.0),
                 LaunchArg::scalarInt(1024), LaunchArg::scalarInt(1024)};
    Desc.Abort.Kind = hw::AbortPolicyKind::InLoop;
    Desc.AbortBoundary = std::move(Boundary);
    return Desc;
  };

  // Full run.
  TimePoint T0 = Ctx.now();
  EventPtr Full = Queue->enqueueKernel(
      MakeDesc([] { return uint64_t(1) << 40; }));
  Full->wait();
  Duration FullTime = Ctx.now() - T0;
  EXPECT_EQ(Full->payload(), 4096u);

  // The boundary drops to 2048 once simulated time passes one quarter of
  // the full run (as if CPU results arrived then).
  auto Boundary = std::make_shared<uint64_t>(1ull << 40);
  TimePoint Cut = Ctx.now() + Duration::nanoseconds(FullTime.nanos() / 4);
  Ctx.simulator().scheduleAt(Cut, [Boundary] { *Boundary = 2048; });
  TimePoint T1 = Ctx.now();
  EventPtr Cutoff =
      Queue->enqueueKernel(MakeDesc([Boundary] { return *Boundary; }));
  Cutoff->wait();
  Duration CutTime = Ctx.now() - T1;
  EXPECT_LT(Cutoff->payload(), 4096u);
  EXPECT_GE(Cutoff->payload(), 2048u);
  EXPECT_LT(CutTime.nanos(), FullTime.nanos() * 3 / 4);
}

TEST(GpuEngineTest, LaunchDurationMatchesExecutedTime) {
  Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
  auto &Gpu = static_cast<GpuEngine &>(Ctx.gpu());
  auto Queue = Ctx.createQueue(Ctx.gpu());
  auto A = Ctx.createBuffer(Ctx.gpu(), 4096 * 4);
  auto B = Ctx.createBuffer(Ctx.gpu(), 4096 * 4);
  auto C = Ctx.createBuffer(Ctx.gpu(), 4096 * 4);
  LaunchDesc Desc = vecAddDesc(*A, *B, *C, 4096);
  Duration Analytic = Gpu.launchDuration(Desc);
  TimePoint T0 = Ctx.now();
  Queue->enqueueKernel(Desc)->wait();
  EXPECT_EQ((Ctx.now() - T0).nanos(), Analytic.nanos());
}

// --- TimingOnly functional safety ---------------------------------------------

TEST(TimingOnlyTest, KernelLaunchesAndTransfersRunWithoutData) {
  Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
  auto Queue = Ctx.createQueue(Ctx.gpu());
  auto A = Ctx.createBuffer(Ctx.gpu(), 1024);
  auto B = Ctx.createBuffer(Ctx.gpu(), 1024);
  auto C = Ctx.createBuffer(Ctx.gpu(), 1024);
  Queue->enqueueWrite(*A, nullptr, 1024);
  Queue->enqueueCopy(*A, *B, 1024);
  EventPtr Done = Queue->enqueueKernel(vecAddDesc(*A, *B, *C, 256));
  Queue->enqueueRead(*C, nullptr, 1024);
  Queue->finish();
  EXPECT_TRUE(Done->isComplete());
  EXPECT_GT(Ctx.now().nanos(), 0);
}

TEST(QueueDeathTest, CrossDeviceBufferRejected) {
  Context Ctx;
  auto GpuQueue = Ctx.createQueue(Ctx.gpu());
  auto CpuBuf = Ctx.createBuffer(Ctx.cpu(), 64);
  EXPECT_DEATH(GpuQueue->enqueueWrite(*CpuBuf, nullptr, 64),
               "another device");
}

TEST(QueueDeathTest, OverrunningWriteRejected) {
  Context Ctx;
  auto Queue = Ctx.createQueue(Ctx.gpu());
  auto Buf = Ctx.createBuffer(Ctx.gpu(), 64);
  EXPECT_DEATH(Queue->enqueueWrite(*Buf, nullptr, 65), "overruns");
}

} // namespace
