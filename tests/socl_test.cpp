//===- tests/socl_test.cpp - SOCL comparison-runtime tests -----------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "socl/PerfModel.h"
#include "socl/SoclRuntime.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

using namespace fcl;
using namespace fcl::socl;
using namespace fcl::work;

namespace {

// --- PerfModel --------------------------------------------------------------

TEST(PerfModelTest, EmptyModelHasNoEstimates) {
  PerfModel M;
  EXPECT_FALSE(M.estimate("k", 100, mcl::DeviceKind::Cpu).has_value());
  EXPECT_FALSE(M.calibrated("k"));
  EXPECT_EQ(M.sampleCount(), 0u);
}

TEST(PerfModelTest, ExactSizeEstimateAverages) {
  PerfModel M;
  M.record("k", 100, mcl::DeviceKind::Cpu, Duration::microseconds(10));
  M.record("k", 100, mcl::DeviceKind::Cpu, Duration::microseconds(20));
  auto E = M.estimate("k", 100, mcl::DeviceKind::Cpu);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->nanos(), 15000);
  EXPECT_EQ(M.sampleCount(), 2u);
}

TEST(PerfModelTest, NearestSizeScalesLinearly) {
  PerfModel M;
  M.record("k", 100, mcl::DeviceKind::Gpu, Duration::microseconds(10));
  auto E = M.estimate("k", 200, mcl::DeviceKind::Gpu);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->nanos(), 20000);
}

TEST(PerfModelTest, NearestSizePrefersClosestHistory) {
  PerfModel M;
  M.record("k", 100, mcl::DeviceKind::Gpu, Duration::microseconds(10));
  M.record("k", 1000, mcl::DeviceKind::Gpu, Duration::microseconds(500));
  // 900 is closer to 1000: scale the 1000-item sample.
  auto E = M.estimate("k", 900, mcl::DeviceKind::Gpu);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->nanos(), 450000);
}

TEST(PerfModelTest, CalibratedNeedsBothDevices) {
  PerfModel M;
  M.record("k", 100, mcl::DeviceKind::Cpu, Duration::microseconds(10));
  EXPECT_FALSE(M.calibrated("k"));
  M.record("k", 50, mcl::DeviceKind::Gpu, Duration::microseconds(5));
  EXPECT_TRUE(M.calibrated("k"));
  EXPECT_FALSE(M.calibrated("other"));
}

TEST(PerfModelTest, DevicesKeptSeparate) {
  PerfModel M;
  M.record("k", 100, mcl::DeviceKind::Cpu, Duration::microseconds(100));
  M.record("k", 100, mcl::DeviceKind::Gpu, Duration::microseconds(1));
  EXPECT_EQ(M.estimate("k", 100, mcl::DeviceKind::Cpu)->nanos(), 100000);
  EXPECT_EQ(M.estimate("k", 100, mcl::DeviceKind::Gpu)->nanos(), 1000);
}

// --- SoclRuntime -----------------------------------------------------------------

class SoclWorkloadTest
    : public ::testing::TestWithParam<std::tuple<size_t, Policy>> {};

TEST_P(SoclWorkloadTest, FunctionalMatchesReference) {
  auto [Idx, P] = GetParam();
  Workload W = testSuite()[Idx];
  PerfModel Model;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  SoclRuntime RT(Ctx, P, Model);
  RunResult Res = runWorkload(RT, W, /*Validate=*/true);
  EXPECT_TRUE(Res.Valid) << W.Name << " under " << RT.name() << " err "
                         << Res.MaxAbsError;
}

std::string soclTestName(
    const ::testing::TestParamInfo<std::tuple<size_t, Policy>> &Info) {
  static const char *Names[] = {"ATAX", "BICG",  "CORR",
                                "GESUMMV", "SYRK", "SYR2K"};
  return std::string(Names[std::get<0>(Info.param)]) +
         (std::get<1>(Info.param) == Policy::Eager ? "_Eager" : "_Dmda");
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsBothPolicies, SoclWorkloadTest,
    ::testing::Combine(::testing::Range<size_t>(0, 6),
                       ::testing::Values(Policy::Eager, Policy::Dmda)),
    soclTestName);

TEST(SoclRuntimeTest, EagerAlternatesDevices) {
  Workload W = testSuite()[2]; // CORR: four kernels.
  PerfModel Model;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  SoclRuntime RT(Ctx, Policy::Eager, Model);
  runWorkload(RT, W, false);
  ASSERT_EQ(RT.placements().size(), 4u);
  EXPECT_EQ(RT.placements()[0], mcl::DeviceKind::Gpu);
  EXPECT_EQ(RT.placements()[1], mcl::DeviceKind::Cpu);
  EXPECT_EQ(RT.placements()[2], mcl::DeviceKind::Gpu);
  EXPECT_EQ(RT.placements()[3], mcl::DeviceKind::Cpu);
}

TEST(SoclRuntimeTest, TaskSeedShiftsAlternation) {
  Workload W = testSuite()[4]; // SYRK: one kernel.
  PerfModel Model;
  mcl::Context C1(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  SoclRuntime R1(C1, Policy::Eager, Model, false, /*TaskSeed=*/0);
  runWorkload(R1, W, false);
  mcl::Context C2(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  SoclRuntime R2(C2, Policy::Eager, Model, false, /*TaskSeed=*/1);
  runWorkload(R2, W, false);
  EXPECT_NE(R1.placements()[0], R2.placements()[0]);
}

TEST(SoclRuntimeTest, DmdaPicksPerKernelBestDeviceAfterCalibration) {
  // BICG: kernel 1 prefers the CPU, kernel 2 the GPU (paper Table 1).
  Workload W = makeBicg(4096, 4096);
  PerfModel Model;
  for (int I = 0; I < 10; ++I) {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
    SoclRuntime RT(Ctx, Policy::Dmda, Model, /*Calibrating=*/true,
                   /*TaskSeed=*/static_cast<uint64_t>(I));
    runWorkload(RT, W, false);
  }
  EXPECT_TRUE(Model.calibrated("bicg_kernel1"));
  EXPECT_TRUE(Model.calibrated("bicg_kernel2"));

  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  SoclRuntime RT(Ctx, Policy::Dmda, Model);
  runWorkload(RT, W, false);
  ASSERT_EQ(RT.placements().size(), 2u);
  EXPECT_EQ(RT.placements()[0], mcl::DeviceKind::Cpu);
  EXPECT_EQ(RT.placements()[1], mcl::DeviceKind::Gpu);
}

TEST(SoclRuntimeTest, DmdaBeatsEagerOnGpuFriendlyWorkload) {
  Workload W = makeAtax(8192, 8192);
  RunConfig C;
  double Eager = timeUnder(RuntimeKind::SoclEager, W, C).toSeconds();
  double Dmda = timeUnder(RuntimeKind::SoclDmda, W, C).toSeconds();
  EXPECT_LT(Dmda, Eager);
}

TEST(SoclRuntimeTest, DmdaTransferAwareness) {
  // A kernel chain whose data already lives on the GPU keeps running there
  // even when raw kernel speeds are close, because moving the data costs.
  PerfModel Model;
  // Make the devices look equally fast for the kernel itself.
  Model.record("saxpy", 4096, mcl::DeviceKind::Cpu,
               Duration::microseconds(100));
  Model.record("saxpy", 4096, mcl::DeviceKind::Gpu,
               Duration::microseconds(100));
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  SoclRuntime RT(Ctx, Policy::Dmda, Model, false, /*TaskSeed=*/1);
  runtime::BufferId X = RT.createBuffer(16 << 20, "x");
  runtime::BufferId Y = RT.createBuffer(16 << 20, "y");
  RT.writeBuffer(X, nullptr, 16 << 20);
  RT.writeBuffer(Y, nullptr, 16 << 20);
  std::vector<runtime::KArg> Args = {runtime::KArg::buffer(X),
                                     runtime::KArg::buffer(Y),
                                     runtime::KArg::f64(2.0),
                                     runtime::KArg::i64(4096)};
  kern::NDRange Range = kern::NDRange::of1D(4096, 32);
  RT.launchKernel("saxpy", Range, Args);
  mcl::DeviceKind First = RT.placements()[0];
  // Y (inout) now lives on that device; the next launch must stay put.
  RT.launchKernel("saxpy", Range, Args);
  EXPECT_EQ(RT.placements()[1], First);
}

} // namespace
