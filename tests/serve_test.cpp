//===- tests/serve_test.cpp - Serving-layer tests --------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for fcl::serve: load generation, admission/backpressure, the three
/// dispatch policies, latency accounting, determinism (same seed =>
/// byte-identical report JSON) and the headline acceptance gate - on a
/// mixed large/small workload FluidicCorun must beat FifoExclusive on both
/// p95 end-to-end latency and total makespan.
///
//===----------------------------------------------------------------------===//

#include "serve/Engine.h"
#include "serve/LoadGen.h"
#include "serve/Metrics.h"
#include "serve/Policy.h"
#include "trace/Tracer.h"

#include <gtest/gtest.h>

#include <string>

using namespace fcl;
using namespace fcl::serve;

namespace {

EngineConfig baseConfig(Policy P, uint64_t Seed = 7) {
  EngineConfig Cfg;
  Cfg.P = P;
  Cfg.Streams = 8;
  Cfg.Arrival.Kind = ArrivalKind::Poisson;
  Cfg.Arrival.RatePerSec = 400;
  Cfg.Horizon = Duration::milliseconds(100);
  Cfg.Seed = Seed;
  return Cfg;
}

ServeReport runServe(const EngineConfig &Cfg) {
  Engine E(Cfg);
  return E.run();
}

TEST(LoadGenTest, ParseArrivalSpecs) {
  ArrivalSpec A;
  std::string Err;
  EXPECT_TRUE(parseArrivalSpec("poisson:120", A, Err));
  EXPECT_EQ(A.Kind, ArrivalKind::Poisson);
  EXPECT_DOUBLE_EQ(A.RatePerSec, 120);
  EXPECT_TRUE(parseArrivalSpec("uniform:50.5", A, Err));
  EXPECT_EQ(A.Kind, ArrivalKind::Uniform);
  EXPECT_DOUBLE_EQ(A.RatePerSec, 50.5);
  EXPECT_TRUE(parseArrivalSpec("closed:2", A, Err));
  EXPECT_EQ(A.Kind, ArrivalKind::Closed);
  EXPECT_EQ(A.Think.nanos(), Duration::milliseconds(2).nanos());
  EXPECT_FALSE(parseArrivalSpec("poisson", A, Err));
  EXPECT_FALSE(parseArrivalSpec("poisson:-3", A, Err));
  EXPECT_FALSE(parseArrivalSpec("burst:9", A, Err));
}

TEST(LoadGenTest, TemplatesSpanBothClasses) {
  std::vector<JobTemplate> Mixed = jobTemplates(MixKind::Mixed);
  ASSERT_FALSE(Mixed.empty());
  bool AnySmall = false, AnyLarge = false;
  for (const JobTemplate &T : Mixed) {
    EXPECT_FALSE(T.W.Calls.empty());
    (T.MaxGroups >= 64 ? AnyLarge : AnySmall) = true;
  }
  EXPECT_TRUE(AnySmall);
  EXPECT_TRUE(AnyLarge);
  for (const JobTemplate &T : jobTemplates(MixKind::Small))
    EXPECT_LT(T.MaxGroups, 64u);
  for (const JobTemplate &T : jobTemplates(MixKind::Large))
    EXPECT_GE(T.MaxGroups, 64u);
}

TEST(LoadGenTest, StreamDrawsAreDeterministicPerSeed) {
  std::vector<JobTemplate> Templs = jobTemplates(MixKind::Mixed);
  StreamGen A(42, 3, Templs), B(42, 3, Templs), C(43, 3, Templs);
  ArrivalSpec Spec;
  Spec.RatePerSec = 200;
  bool AnyDiffer = false;
  for (int I = 0; I < 32; ++I) {
    Duration Da = A.interarrival(Spec), Db = B.interarrival(Spec);
    EXPECT_EQ(Da.nanos(), Db.nanos());
    AnyDiffer |= Da.nanos() != C.interarrival(Spec).nanos();
  }
  EXPECT_TRUE(AnyDiffer);
  // Different streams under the same seed get different sequences.
  StreamGen S0(42, 0, Templs), S1(42, 1, Templs);
  EXPECT_NE(StreamGen::mixSeed(42, 0), StreamGen::mixSeed(42, 1));
  bool StreamsDiffer = false;
  for (int I = 0; I < 32 && !StreamsDiffer; ++I)
    StreamsDiffer =
        S0.interarrival(Spec).nanos() != S1.interarrival(Spec).nanos();
  EXPECT_TRUE(StreamsDiffer);
}

TEST(LoadGenTest, PipelineMixCarriesDagTemplates) {
  std::vector<JobTemplate> Templs = jobTemplates(MixKind::Pipeline);
  ASSERT_FALSE(Templs.empty());
  bool AnyDag = false, AnyPlain = false;
  for (const JobTemplate &T : Templs) {
    if (T.Dag) {
      AnyDag = true;
      // The precomputed graph must describe exactly this template.
      EXPECT_EQ(T.Dag->size(), T.W.Calls.size());
      EXPECT_GE(T.Dag->size(), 2u);
    } else {
      AnyPlain = true;
    }
  }
  EXPECT_TRUE(AnyDag);
  EXPECT_TRUE(AnyPlain);
  // The non-pipeline mixes never carry graphs.
  for (const JobTemplate &T : jobTemplates(MixKind::Mixed))
    EXPECT_EQ(T.Dag, nullptr);
}

TEST(LoadGenDeathTest, PickTemplateWithNoTemplatesFailsLoud) {
  // nextBelow(0) would be modulo-by-zero UB; the generator must abort with
  // a diagnostic instead of returning garbage.
  std::vector<JobTemplate> Empty;
  StreamGen G(1, 0, Empty);
  EXPECT_DEATH((void)G.pickTemplate(), "no job templates");
}

TEST(MetricsTest, LatencySummaryNearestRank) {
  std::vector<double> Vals;
  for (int I = 100; I >= 1; --I)
    Vals.push_back(static_cast<double>(I));
  LatencySummary S = summarizeLatency(Vals);
  EXPECT_DOUBLE_EQ(S.P50, 50);
  EXPECT_DOUBLE_EQ(S.P95, 95);
  EXPECT_DOUBLE_EQ(S.P99, 99);
  EXPECT_DOUBLE_EQ(S.Max, 100);
  EXPECT_DOUBLE_EQ(S.Mean, 50.5);
}

TEST(ServeEngineTest, SameSeedSameConfigByteIdenticalJson) {
  for (Policy P :
       {Policy::FifoExclusive, Policy::DeviceAffine, Policy::FluidicCorun}) {
    ServeReport A = runServe(baseConfig(P));
    ServeReport B = runServe(baseConfig(P));
    EXPECT_EQ(A.toJson(), B.toJson()) << "policy " << policyName(P);
    EXPECT_EQ(A.toCsv(), B.toCsv()) << "policy " << policyName(P);
  }
}

TEST(ServeEngineTest, SeedChangesTheRun) {
  ServeReport A = runServe(baseConfig(Policy::FluidicCorun, 7));
  ServeReport B = runServe(baseConfig(Policy::FluidicCorun, 8));
  EXPECT_NE(A.toJson(), B.toJson());
}

// The headline acceptance gate: on the mixed large/small workload at a
// saturating arrival rate, cooperative head-of-line execution with CPU
// backfill must beat whole-pair FIFO on BOTH p95 end-to-end latency and
// total makespan.
TEST(ServeEngineTest, CorunBeatsFifoOnP95AndMakespan) {
  ServeReport Fifo = runServe(baseConfig(Policy::FifoExclusive));
  ServeReport Corun = runServe(baseConfig(Policy::FluidicCorun));
  ASSERT_GT(Fifo.Completed, 0u);
  ASSERT_GT(Corun.Completed, 0u);
  EXPECT_LT(Corun.E2e.P95, Fifo.E2e.P95);
  EXPECT_LT(Corun.MakespanMs, Fifo.MakespanMs);
  // It wins while also completing at least as many requests - the latency
  // and makespan edge is not bought by shedding load.
  EXPECT_GE(Corun.Completed, Fifo.Completed);
}

TEST(ServeEngineTest, CorunUsesBackfillAndChunkYields) {
  ServeReport R = runServe(baseConfig(Policy::FluidicCorun));
  EXPECT_GT(R.CoopJobs, 0u);
  EXPECT_GT(R.BackfillJobs, 0u);
  EXPECT_GT(R.ChunkYields, 0u);
  EXPECT_GT(R.CorunCpuMs, 0);
  EXPECT_EQ(R.Completed, R.CoopJobs + R.GpuJobs + R.CpuJobs);
}

TEST(ServeEngineTest, FifoRunsEverythingAsPairs) {
  ServeReport R = runServe(baseConfig(Policy::FifoExclusive));
  EXPECT_EQ(R.Completed, R.CoopJobs);
  EXPECT_EQ(R.GpuJobs, 0u);
  EXPECT_EQ(R.CpuJobs, 0u);
  for (const RequestRecord &Req : R.Requests) {
    if (!Req.Rejected) {
      EXPECT_EQ(Req.Placement, "pair");
    }
  }
}

TEST(ServeEngineTest, AffinePinsByClass) {
  ServeReport R = runServe(baseConfig(Policy::DeviceAffine));
  EXPECT_EQ(R.CoopJobs, 0u);
  EXPECT_GT(R.GpuJobs, 0u);
  EXPECT_GT(R.CpuJobs, 0u);
  for (const RequestRecord &Req : R.Requests) {
    if (Req.Rejected)
      continue;
    EXPECT_EQ(Req.Placement, Req.Large ? "gpu" : "cpu")
        << "request " << Req.Id << " (" << Req.Workload << ")";
  }
}

TEST(ServeEngineTest, BoundedQueueRejectsUnderOverload) {
  EngineConfig Cfg = baseConfig(Policy::FifoExclusive);
  Cfg.QueueDepth = 4;
  ServeReport R = runServe(Cfg);
  EXPECT_GT(R.Rejected, 0u);
  EXPECT_EQ(R.Submitted, R.Rejected + R.Completed);
  for (const RequestRecord &Req : R.Requests) {
    if (Req.Rejected) {
      EXPECT_EQ(Req.Placement, "rejected");
    }
  }
}

TEST(ServeEngineTest, ClosedLoopHonorsOneOutstandingPerStream) {
  EngineConfig Cfg = baseConfig(Policy::DeviceAffine);
  Cfg.Arrival.Kind = ArrivalKind::Closed;
  Cfg.Arrival.Think = Duration::milliseconds(1);
  Cfg.Streams = 4;
  ServeReport R = runServe(Cfg);
  EXPECT_GT(R.Completed, 0u);
  // One outstanding request per stream can never overflow a queue as deep
  // as the stream count.
  EXPECT_EQ(R.Rejected, 0u);
  // Latency decomposition must be internally consistent.
  for (const RequestRecord &Req : R.Requests) {
    if (Req.Rejected)
      continue;
    EXPECT_GE(Req.queueWaitMs(), 0);
    EXPECT_GT(Req.serviceMs(), 0);
    EXPECT_NEAR(Req.e2eMs(), Req.queueWaitMs() + Req.serviceMs(), 1e-9);
  }
}

TEST(ServeEngineTest, SloViolationsCounted) {
  EngineConfig Cfg = baseConfig(Policy::FifoExclusive);
  Cfg.SloMs = 0.001; // Impossible: every completed request violates.
  ServeReport R = runServe(Cfg);
  EXPECT_TRUE(R.SloChecked);
  EXPECT_EQ(R.SloViolations, R.Completed);
  Cfg.SloMs = 1e6; // Trivially satisfied.
  ServeReport Ok = runServe(Cfg);
  EXPECT_TRUE(Ok.SloChecked);
  EXPECT_EQ(Ok.SloViolations, 0u);
}

TEST(ServeEngineTest, FunctionalValidationPassesUnderAllPolicies) {
  for (Policy P :
       {Policy::FifoExclusive, Policy::DeviceAffine, Policy::FluidicCorun}) {
    EngineConfig Cfg = baseConfig(P, 3);
    Cfg.Mode = mcl::ExecMode::Functional;
    Cfg.Validate = true;
    Cfg.Streams = 4;
    Cfg.Arrival.RatePerSec = 200;
    Cfg.Horizon = Duration::milliseconds(50);
    ServeReport R = runServe(Cfg);
    EXPECT_GT(R.Completed, 0u) << "policy " << policyName(P);
    EXPECT_TRUE(R.Validated);
    EXPECT_EQ(R.ValidationFailures, 0u) << "policy " << policyName(P);
  }
}

TEST(ServeEngineTest, TracerGetsServeLanes) {
  trace::Tracer T;
  EngineConfig Cfg = baseConfig(Policy::FluidicCorun);
  Cfg.Horizon = Duration::milliseconds(30);
  Cfg.Tracer = &T;
  ServeReport R = runServe(Cfg);
  EXPECT_GT(R.Completed, 0u);
  EXPECT_GT(T.size(), 0u);
  EXPECT_FALSE(T.counterSamples().empty());
  std::string Json = T.renderChromeTrace();
  EXPECT_NE(Json.find("Serve GPU"), std::string::npos);
  EXPECT_NE(Json.find("Serve queue depth"), std::string::npos);
}

TEST(ServeEngineTest, ReportJsonCarriesSchemaAndConfigEcho) {
  ServeReport R = runServe(baseConfig(Policy::FluidicCorun));
  std::string Json = R.toJson();
  EXPECT_NE(Json.find("fcl-serve-report-v1"), std::string::npos);
  EXPECT_NE(Json.find("\"policy\": \"corun\""), std::string::npos);
  EXPECT_NE(Json.find("\"machine\": \"paper\""), std::string::npos);
  EXPECT_NE(Json.find("serve_completed"), std::string::npos);
}

} // namespace
