//===- tests/mcl_engine_timing_test.cpp - Device-engine timing tests -------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Detailed timing-behaviour tests of the simulated device engines: the
/// GPU wave scheduler (wave widths, in-loop checkpoint early termination,
/// analytic-vs-event agreement), the CPU engine's round structure, launch
/// restriction costs, and the moot-subkernel functional suppression hook.
///
//===----------------------------------------------------------------------===//

#include "kern/Registry.h"
#include "mcl/CommandQueue.h"
#include "mcl/Context.h"
#include "mcl/CpuEngine.h"
#include "mcl/GpuEngine.h"

#include <gtest/gtest.h>

using namespace fcl;
using namespace fcl::mcl;

namespace {

/// A compute-bound 2-D launch with Trip-long loops (SYRK-shaped).
LaunchDesc syrkDesc(Context &Ctx, Buffer &A, Buffer &C, int64_t N) {
  LaunchDesc Desc;
  Desc.Kernel = &kern::Registry::builtin().get("syrk_kernel");
  Desc.Range = kern::NDRange::of2D(static_cast<uint64_t>(N),
                                   static_cast<uint64_t>(N), 32, 8);
  Desc.Args = {LaunchArg::buffer(&A),  LaunchArg::buffer(&C),
               LaunchArg::scalarFp(1), LaunchArg::scalarFp(1),
               LaunchArg::scalarInt(N), LaunchArg::scalarInt(N)};
  (void)Ctx;
  return Desc;
}

TEST(GpuWaveTest, DurationProportionalToGroupsForFullWaves) {
  Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
  auto &Gpu = static_cast<GpuEngine &>(Ctx.gpu());
  auto A = Ctx.createBuffer(Ctx.gpu(), 1024 * 1024 * 4);
  auto C = Ctx.createBuffer(Ctx.gpu(), 1024 * 1024 * 4);
  LaunchDesc Desc = syrkDesc(Ctx, *A, *C, 1024); // 4096 groups.

  Desc.FlatEnd = 112; // Exactly one wave (14 SMs x 8 resident).
  double OneWave = Gpu.launchDuration(Desc).toSeconds();
  Desc.FlatEnd = 224; // Two waves.
  double TwoWaves = Gpu.launchDuration(Desc).toSeconds();
  double Overhead = Ctx.machine().Gpu.KernelLaunchOverhead.toSeconds();
  EXPECT_NEAR(TwoWaves - Overhead, 2 * (OneWave - Overhead),
              (OneWave - Overhead) * 0.01);
}

TEST(GpuWaveTest, PartialWaveCostsProportionallyLess) {
  Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
  auto &Gpu = static_cast<GpuEngine &>(Ctx.gpu());
  auto A = Ctx.createBuffer(Ctx.gpu(), 1024 * 1024 * 4);
  auto C = Ctx.createBuffer(Ctx.gpu(), 1024 * 1024 * 4);
  LaunchDesc Desc = syrkDesc(Ctx, *A, *C, 1024);
  Desc.FlatEnd = 56; // Half a wave.
  double Half = Gpu.launchDuration(Desc).toSeconds();
  Desc.FlatEnd = 112;
  double Full = Gpu.launchDuration(Desc).toSeconds();
  double Overhead = Ctx.machine().Gpu.KernelLaunchOverhead.toSeconds();
  EXPECT_NEAR(Half - Overhead, (Full - Overhead) / 2,
              (Full - Overhead) * 0.01);
}

TEST(GpuWaveTest, EventExecutionMatchesAnalyticDuration) {
  Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
  auto &Gpu = static_cast<GpuEngine &>(Ctx.gpu());
  auto Queue = Ctx.createQueue(Ctx.gpu());
  auto A = Ctx.createBuffer(Ctx.gpu(), 512 * 512 * 4);
  auto C = Ctx.createBuffer(Ctx.gpu(), 512 * 512 * 4);
  for (hw::AbortPolicyKind Kind :
       {hw::AbortPolicyKind::None, hw::AbortPolicyKind::AtStart,
        hw::AbortPolicyKind::InLoop}) {
    LaunchDesc Desc = syrkDesc(Ctx, *A, *C, 512);
    Desc.Abort.Kind = Kind;
    if (Kind != hw::AbortPolicyKind::None)
      Desc.AbortBoundary = [] { return ~uint64_t(0); }; // Never aborts.
    Duration Analytic = Gpu.launchDuration(Desc);
    TimePoint T0 = Ctx.now();
    Queue->enqueueKernel(Desc)->wait();
    Duration Actual = Ctx.now() - T0;
    // Checkpointed waves accumulate nanosecond rounding; allow 0.1%.
    EXPECT_NEAR(static_cast<double>(Actual.nanos()),
                static_cast<double>(Analytic.nanos()),
                static_cast<double>(Analytic.nanos()) * 0.001 + 64);
  }
}

TEST(GpuWaveTest, InLoopAbortTerminatesFasterThanAtStart) {
  // Boundary drops below the in-flight wave right after the kernel starts:
  // with in-loop checks the wave dies at the next checkpoint; with
  // at-start checks it runs to completion.
  auto RunWith = [](hw::AbortPolicyKind Kind) {
    Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
    auto Queue = Ctx.createQueue(Ctx.gpu());
    auto A = Ctx.createBuffer(Ctx.gpu(), 1024 * 1024 * 4);
    auto C = Ctx.createBuffer(Ctx.gpu(), 1024 * 1024 * 4);
    LaunchDesc Desc;
    Desc.Kernel = &kern::Registry::builtin().get("syrk_kernel");
    Desc.Range = kern::NDRange::of2D(1024, 1024, 32, 8);
    Desc.Args = {LaunchArg::buffer(A.get()),  LaunchArg::buffer(C.get()),
                 LaunchArg::scalarFp(1),      LaunchArg::scalarFp(1),
                 LaunchArg::scalarInt(1024),  LaunchArg::scalarInt(1024)};
    Desc.Abort.Kind = Kind;
    auto Boundary = std::make_shared<uint64_t>(~uint64_t(0));
    Desc.AbortBoundary = [Boundary] { return *Boundary; };
    // Drop the boundary to zero shortly after launch overhead.
    Ctx.simulator().scheduleAfter(
        Ctx.machine().Gpu.KernelLaunchOverhead + Duration::microseconds(20),
        [Boundary] { *Boundary = 0; });
    TimePoint T0 = Ctx.now();
    Queue->enqueueKernel(Desc)->wait();
    return (Ctx.now() - T0).toSeconds();
  };
  double AtStart = RunWith(hw::AbortPolicyKind::AtStart);
  double InLoop = RunWith(hw::AbortPolicyKind::InLoop);
  EXPECT_LT(InLoop, AtStart);
}

TEST(CpuEngineTest, RoundStructureQuantizesDuration) {
  Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
  auto &Cpu = static_cast<CpuEngine &>(Ctx.cpu());
  auto A = Ctx.createBuffer(Ctx.cpu(), 1024 * 1024 * 4);
  auto C = Ctx.createBuffer(Ctx.cpu(), 1024 * 1024 * 4);
  LaunchDesc Desc = syrkDesc(Ctx, *A, *C, 1024);
  // 8 compute units: 1..8 groups take one round, 9 groups take two.
  Desc.FlatEnd = 1;
  double One = Cpu.launchDuration(Desc).toSeconds();
  Desc.FlatEnd = 8;
  double Eight = Cpu.launchDuration(Desc).toSeconds();
  Desc.FlatEnd = 9;
  double Nine = Cpu.launchDuration(Desc).toSeconds();
  EXPECT_DOUBLE_EQ(One, Eight);
  EXPECT_GT(Nine, Eight * 1.5);
}

TEST(CpuEngineTest, SkipFunctionalSuppressesWritesOnly) {
  Context Ctx(hw::paperMachine(), ExecMode::Functional);
  auto Queue = Ctx.createQueue(Ctx.cpu());
  const int64_t N = 64;
  auto X = Ctx.createBuffer(Ctx.cpu(), N * 4);
  auto Y = Ctx.createBuffer(Ctx.cpu(), N * 4);
  std::vector<float> HX(N, 1.0f), HY(N, 0.0f);
  Queue->enqueueWrite(*X, HX.data(), N * 4);
  Queue->enqueueWrite(*Y, HY.data(), N * 4);

  LaunchDesc Desc;
  Desc.Kernel = &kern::Registry::builtin().get("saxpy");
  Desc.Range = kern::NDRange::of1D(N, 32);
  Desc.Args = {LaunchArg::buffer(X.get()), LaunchArg::buffer(Y.get()),
               LaunchArg::scalarFp(5.0), LaunchArg::scalarInt(N)};
  Desc.SkipFunctional = [] { return true; };

  Queue->finish(); // Drain the uploads so both launches start clean.
  Duration Skipped, Executed;
  {
    TimePoint T0 = Ctx.now();
    Queue->enqueueKernel(Desc)->wait();
    Skipped = Ctx.now() - T0;
  }
  // Y unchanged despite the launch consuming simulated time.
  std::vector<float> Out(N, -1.0f);
  Queue->enqueueRead(*Y, Out.data(), N * 4, 0, /*Blocking=*/true);
  for (float V : Out)
    EXPECT_FLOAT_EQ(V, 0.0f);

  Desc.SkipFunctional = nullptr;
  {
    TimePoint T0 = Ctx.now();
    Queue->enqueueKernel(Desc)->wait();
    Executed = Ctx.now() - T0;
  }
  Queue->enqueueRead(*Y, Out.data(), N * 4, 0, /*Blocking=*/true);
  for (float V : Out)
    EXPECT_FLOAT_EQ(V, 5.0f);
  // Timing is identical either way: suppression is purely functional.
  EXPECT_EQ(Skipped.nanos(), Executed.nanos());
}

TEST(CpuEngineTest, EmptyRangeCostsOnlyLaunchOverhead) {
  Context Ctx(hw::paperMachine(), ExecMode::TimingOnly);
  auto &Cpu = static_cast<CpuEngine &>(Ctx.cpu());
  auto A = Ctx.createBuffer(Ctx.cpu(), 64 * 64 * 4);
  auto C = Ctx.createBuffer(Ctx.cpu(), 64 * 64 * 4);
  LaunchDesc Desc = syrkDesc(Ctx, *A, *C, 64);
  Desc.FlatBegin = 2;
  Desc.FlatEnd = 2;
  EXPECT_EQ(Cpu.launchDuration(Desc).nanos(),
            Ctx.machine().Cpu.KernelLaunchOverhead.nanos());
}

} // namespace
