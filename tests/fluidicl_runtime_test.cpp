//===- tests/fluidicl_runtime_test.cpp - FluidiCL behaviour tests ----------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Behaviour-level tests of the cooperative runtime: work-distribution
/// invariants, the section 5.3 version gate across multi-kernel chains,
/// section 6.2 location-tracked reads, CPU-computes-everything races,
/// adaptation to external device load (the paper's "adapts to system load"
/// claim), and the paper's buffer-management ablations.
///
//===----------------------------------------------------------------------===//

#include "fluidicl/Runtime.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

using namespace fcl;
using namespace fcl::fluidicl;
using namespace fcl::work;

namespace {

KernelStats statsFor(const Runtime &RT, const std::string &Kernel) {
  for (const KernelStats &S : RT.kernelStats())
    if (S.KernelName == Kernel)
      return S;
  ADD_FAILURE() << "no stats for " << Kernel;
  return KernelStats();
}

TEST(FluidiclBehaviourTest, EveryWorkGroupExecutedAtLeastOnce) {
  for (const Workload &W : paperSuite()) {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
    Runtime RT(Ctx);
    runWorkload(RT, W, false);
    for (const KernelStats &S : RT.kernelStats()) {
      EXPECT_GE(S.CpuGroupsExecuted + S.GpuGroupsExecuted, S.TotalGroups)
          << W.Name << " kernel " << S.KernelName;
      EXPECT_LE(S.GpuGroupsExecuted, S.TotalGroups);
    }
  }
}

TEST(FluidiclBehaviourTest, CooperativeKernelsUseBothDevices) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Runtime RT(Ctx);
  runWorkload(RT, makeSyrk(1024, 1024), false);
  KernelStats S = statsFor(RT, "syrk_kernel");
  // Comparable device speeds: both sides contribute substantially.
  EXPECT_GT(S.CpuGroupsExecuted, S.TotalGroups / 5);
  EXPECT_GT(S.GpuGroupsExecuted, S.TotalGroups / 5);
  EXPECT_GT(S.CpuSubkernels, 1u);
}

TEST(FluidiclBehaviourTest, GpuDominatedKernelStillFlowsToGpu) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Runtime RT(Ctx);
  runWorkload(RT, makeAtax(8192, 8192), false);
  KernelStats K2 = statsFor(RT, "atax_kernel2");
  // Column-walk kernel: the GPU does the overwhelming share.
  EXPECT_GT(K2.GpuGroupsExecuted, K2.TotalGroups * 3 / 4);
}

TEST(FluidiclBehaviourTest, CpuRunsEverythingWhenGpuIsVerySlow) {
  hw::Machine M = hw::paperMachine();
  M.GpuLoadFactor = 200.0; // Crippled GPU (e.g. busy with graphics).
  mcl::Context Ctx(M, mcl::ExecMode::TimingOnly);
  Runtime RT(Ctx);
  runWorkload(RT, makeGesummv(1024), false);
  KernelStats S = statsFor(RT, "gesummv_kernel");
  EXPECT_TRUE(S.CpuRanEverything);
  EXPECT_EQ(S.CpuGroupsExecuted, S.TotalGroups);
}

TEST(FluidiclBehaviourTest, AdaptsToCpuLoad) {
  // The work distribution shifts toward the GPU when the CPU is loaded -
  // the dynamic adaptation the paper claims over static schemes.
  Workload W = makeSyrk(1024, 1024);
  uint64_t CpuShareUnloaded, CpuShareLoaded;
  {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
    Runtime RT(Ctx);
    runWorkload(RT, W, false);
    CpuShareUnloaded = statsFor(RT, "syrk_kernel").CpuGroupsExecuted;
  }
  {
    hw::Machine M = hw::paperMachine();
    M.CpuLoadFactor = 4.0;
    mcl::Context Ctx(M, mcl::ExecMode::TimingOnly);
    Runtime RT(Ctx);
    runWorkload(RT, W, false);
    CpuShareLoaded = statsFor(RT, "syrk_kernel").CpuGroupsExecuted;
  }
  // A 4x-loaded CPU should lose a large part of its share.
  EXPECT_LT(CpuShareLoaded, CpuShareUnloaded * 7 / 10);
}

TEST(FluidiclBehaviourTest, AdaptsToGpuLoad) {
  Workload W = makeSyrk(1024, 1024);
  uint64_t GpuShareUnloaded, GpuShareLoaded;
  {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
    Runtime RT(Ctx);
    runWorkload(RT, W, false);
    GpuShareUnloaded = statsFor(RT, "syrk_kernel").GpuGroupsExecuted;
  }
  {
    hw::Machine M = hw::paperMachine();
    M.GpuLoadFactor = 4.0;
    mcl::Context Ctx(M, mcl::ExecMode::TimingOnly);
    Runtime RT(Ctx);
    runWorkload(RT, W, false);
    GpuShareLoaded = statsFor(RT, "syrk_kernel").GpuGroupsExecuted;
  }
  EXPECT_LT(GpuShareLoaded, GpuShareUnloaded);
}

TEST(FluidiclBehaviourTest, LoadedCpuStillProducesCorrectResults) {
  hw::Machine M = hw::paperMachine();
  M.CpuLoadFactor = 7.0;
  mcl::Context Ctx(M, mcl::ExecMode::Functional);
  Runtime RT(Ctx);
  RunResult Res = runWorkload(RT, testSuite()[4], true);
  EXPECT_TRUE(Res.Valid);
}

TEST(FluidiclBehaviourTest, LoadedGpuStillProducesCorrectResults) {
  hw::Machine M = hw::paperMachine();
  M.GpuLoadFactor = 50.0;
  mcl::Context Ctx(M, mcl::ExecMode::Functional);
  Runtime RT(Ctx);
  RunResult Res = runWorkload(RT, testSuite()[3], true);
  EXPECT_TRUE(Res.Valid);
}

TEST(FluidiclBehaviourTest, UseCpuFalseDegeneratesToGpuOnly) {
  Options Opts;
  Opts.UseCpu = false;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  Runtime RT(Ctx, Opts);
  RunResult Res = runWorkload(RT, testSuite()[0], true);
  EXPECT_TRUE(Res.Valid);
  for (const KernelStats &S : RT.kernelStats()) {
    EXPECT_EQ(S.CpuGroupsExecuted, 0u);
    EXPECT_EQ(S.GpuGroupsExecuted, S.TotalGroups);
  }
}

TEST(FluidiclBehaviourTest, ChunkSizeRampRecorded) {
  Options Opts;
  Opts.InitialChunkPct = 2.0;
  Opts.StepPct = 2.0;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Runtime RT(Ctx, Opts);
  runWorkload(RT, makeSyrk(1024, 1024), false);
  KernelStats S = statsFor(RT, "syrk_kernel");
  EXPECT_GE(S.FinalChunkPct, 2.0);
}

TEST(FluidiclBehaviourTest, StepZeroKeepsInitialChunk) {
  Options Opts;
  Opts.InitialChunkPct = 2.0;
  Opts.StepPct = 0.0;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Runtime RT(Ctx, Opts);
  runWorkload(RT, makeSyrk(1024, 1024), false);
  EXPECT_DOUBLE_EQ(statsFor(RT, "syrk_kernel").FinalChunkPct, 2.0);
}

TEST(FluidiclBehaviourTest, LocationTrackingAvoidsPcieOnCpuResults) {
  // GESUMMV on a crippled GPU: the CPU computes everything; with location
  // tracking the result read must not touch PCIe (paper section 6.2).
  hw::Machine M = hw::paperMachine();
  M.GpuLoadFactor = 200.0;
  Workload W = makeGesummv(2048);

  auto TotalWith = [&](bool Tracking) {
    Options Opts;
    Opts.DataLocationTracking = Tracking;
    mcl::Context Ctx(M, mcl::ExecMode::TimingOnly);
    Runtime RT(Ctx, Opts);
    return runWorkload(RT, W, false).Total;
  };
  Duration With = TotalWith(true);
  Duration Without = TotalWith(false);
  // Without tracking, the read crosses PCIe behind the crawling GPU queue.
  EXPECT_LT(With.nanos(), Without.nanos());
}

TEST(FluidiclBehaviourTest, BufferPoolReducesTotalTimeOnMultiKernelApp) {
  Workload W = makeCorr(512, 512);
  auto TotalWith = [&](bool Pool) {
    Options Opts;
    Opts.BufferPool = Pool;
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
    Runtime RT(Ctx, Opts);
    return runWorkload(RT, W, false).Total;
  };
  EXPECT_LE(TotalWith(true).nanos(), TotalWith(false).nanos());
}

TEST(FluidiclBehaviourTest, MultiKernelChainKeepsVersionsCoherent) {
  // BICG's second kernel consumes nothing from the first, but ATAX's does
  // (tmp). Run ATAX functionally several times through one runtime to
  // exercise version reuse across launches.
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  Runtime RT(Ctx);
  for (int Round = 0; Round < 3; ++Round) {
    RunResult Res = runWorkload(RT, testSuite()[0], true);
    EXPECT_TRUE(Res.Valid) << "round " << Round;
  }
  // Kernel IDs must keep increasing across rounds.
  auto Stats = RT.kernelStats();
  ASSERT_EQ(Stats.size(), 6u);
  for (size_t I = 1; I < Stats.size(); ++I)
    EXPECT_GT(Stats[I].KernelId, Stats[I - 1].KernelId);
}

TEST(FluidiclBehaviourTest, KernelTimesRecordedPositive) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Runtime RT(Ctx);
  runWorkload(RT, makeBicg(1024, 1024), false);
  for (const KernelStats &S : RT.kernelStats()) {
    EXPECT_GT(S.KernelTime.nanos(), 0);
    EXPECT_FALSE(S.KernelName.empty());
    EXPECT_FALSE(S.CpuKernelUsed.empty());
  }
}

TEST(FluidiclBehaviourTest, OnlineProfilingPicksCpuVariantForCorr) {
  Options Opts;
  Opts.OnlineProfiling = true;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Runtime RT(Ctx, Opts);
  runWorkload(RT, makeCorr(2048, 2048), false);
  EXPECT_EQ(statsFor(RT, "corr_corr_kernel").CpuKernelUsed,
            "corr_corr_kernel_cpuopt");
}

TEST(FluidiclBehaviourTest, ProfilingDecisionPersistsAcrossLaunches) {
  Options Opts;
  Opts.OnlineProfiling = true;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Runtime RT(Ctx, Opts);
  runWorkload(RT, makeCorr(1024, 1024), false);
  runWorkload(RT, makeCorr(1024, 1024), false);
  // Second run starts with the decision already made.
  auto Stats = RT.kernelStats();
  EXPECT_EQ(Stats.back().CpuKernelUsed, "corr_corr_kernel_cpuopt");
}

TEST(FluidiclBehaviourTest, SmallNdrangeSingleGroupWorks) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  Runtime RT(Ctx);
  const int64_t N = 32; // One work-group.
  runtime::BufferId A = RT.createBuffer(N * 4, "a");
  runtime::BufferId B = RT.createBuffer(N * 4, "b");
  runtime::BufferId C = RT.createBuffer(N * 4, "c");
  std::vector<float> HA(N, 1.0f), HB(N, 2.0f), HC(N, 0.0f);
  RT.writeBuffer(A, HA.data(), N * 4);
  RT.writeBuffer(B, HB.data(), N * 4);
  RT.launchKernel("vec_add", kern::NDRange::of1D(N, 32),
                  {runtime::KArg::buffer(A), runtime::KArg::buffer(B),
                   runtime::KArg::buffer(C), runtime::KArg::i64(N)});
  RT.readBuffer(C, HC.data(), N * 4);
  RT.finish();
  for (int64_t I = 0; I < N; ++I)
    EXPECT_FLOAT_EQ(HC[I], 3.0f);
}

TEST(FluidiclBehaviourTest, RepeatedWriteLaunchReadCycles) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  Runtime RT(Ctx);
  const int64_t N = 256;
  runtime::BufferId X = RT.createBuffer(N * 4, "x");
  runtime::BufferId Y = RT.createBuffer(N * 4, "y");
  std::vector<float> HX(N, 1.0f), HY(N, 0.0f);
  RT.writeBuffer(X, HX.data(), N * 4);
  RT.writeBuffer(Y, HY.data(), N * 4);
  // y += 2x, five times; y should be 10 everywhere.
  for (int Round = 0; Round < 5; ++Round)
    RT.launchKernel("saxpy", kern::NDRange::of1D(N, 32),
                    {runtime::KArg::buffer(X), runtime::KArg::buffer(Y),
                     runtime::KArg::f64(2.0), runtime::KArg::i64(N)});
  RT.readBuffer(Y, HY.data(), N * 4);
  RT.finish();
  for (int64_t I = 0; I < N; ++I)
    EXPECT_FLOAT_EQ(HY[I], 10.0f);
}

TEST(FluidiclBehaviourTest, BarrierKernelRunsCooperatively) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  Runtime RT(Ctx);
  const int64_t N = 1024;
  const uint64_t Local = 64;
  runtime::BufferId X = RT.createBuffer(N * 4, "x");
  runtime::BufferId P = RT.createBuffer(N / Local * 4, "partial");
  std::vector<float> HX(N);
  for (int64_t I = 0; I < N; ++I)
    HX[static_cast<size_t>(I)] = static_cast<float>(I % 7);
  RT.writeBuffer(X, HX.data(), N * 4);
  RT.launchKernel("block_sum", kern::NDRange::of1D(N, Local),
                  {runtime::KArg::buffer(X), runtime::KArg::buffer(P),
                   runtime::KArg::i64(N)});
  std::vector<float> HP(N / Local, -1.0f);
  RT.readBuffer(P, HP.data(), HP.size() * 4);
  RT.finish();
  for (size_t G = 0; G < HP.size(); ++G) {
    float Want = 0;
    for (uint64_t I = 0; I < Local; ++I)
      Want += HX[G * Local + I];
    EXPECT_FLOAT_EQ(HP[G], Want);
  }
}

// --- Async API ------------------------------------------------------------

// Replays a workload through launchKernelAsync/readBufferAsync, chaining
// each step from the previous completion, and returns the total time from
// first buffer creation to last result read - the same interval
// runWorkload measures for the blocking API.
Duration runAsync(Runtime &RT, const Workload &W,
                  std::vector<std::vector<std::byte>> *Host,
                  std::vector<std::vector<std::byte>> *Results) {
  mcl::Context &Ctx = RT.context();
  TimePoint Start = Ctx.now();
  std::vector<runtime::BufferId> Ids;
  for (const BufferSpec &B : W.Buffers)
    Ids.push_back(RT.createBuffer(B.Bytes, B.Name));
  for (size_t I = 0; I < W.Buffers.size(); ++I)
    RT.writeBuffer(Ids[I], Host ? (*Host)[I].data() : nullptr,
                   W.Buffers[I].Bytes);
  if (Results)
    for (size_t RIdx : W.ResultBuffers)
      Results->emplace_back(W.Buffers[RIdx].Bytes);

  size_t NextCall = 0, NextRead = 0;
  bool Done = false;
  std::function<void()> Step = [&] {
    if (NextCall < W.Calls.size()) {
      const KernelCall &Call = W.Calls[NextCall++];
      std::vector<runtime::KArg> Args = Call.Args;
      for (runtime::KArg &A : Args)
        if (A.IsBuffer)
          A.Buf = Ids[A.Buf];
      RT.launchKernelAsync(Call.Kernel, Call.Range, Args, Step);
      return;
    }
    if (NextRead < W.ResultBuffers.size()) {
      size_t R = NextRead++;
      size_t RIdx = W.ResultBuffers[R];
      RT.readBufferAsync(Ids[RIdx],
                         Results ? (*Results)[R].data() : nullptr,
                         W.Buffers[RIdx].Bytes, Step);
      return;
    }
    Done = true;
  };
  Step();
  Ctx.simulator().runWhileNot([&] { return Done; });
  Duration Total = Ctx.now() - Start;
  RT.finish();
  return Total;
}

TEST(FluidiclAsyncTest, AsyncPathMatchesBlockingTimingsAndStats) {
  Workload W = makeBicg(2048, 2048); // Two-kernel chain with a version gate.
  Duration BlockingTotal;
  std::vector<KernelStats> BlockingStats;
  {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
    Runtime RT(Ctx);
    RunResult Res = runWorkload(RT, W, false);
    BlockingTotal = Res.Total;
    BlockingStats = RT.kernelStats();
  }
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Runtime RT(Ctx);
  Duration AsyncTotal = runAsync(RT, W, nullptr, nullptr);
  EXPECT_EQ(AsyncTotal.nanos(), BlockingTotal.nanos());
  std::vector<KernelStats> AsyncStats = RT.kernelStats();
  ASSERT_EQ(AsyncStats.size(), BlockingStats.size());
  for (size_t I = 0; I < AsyncStats.size(); ++I) {
    EXPECT_EQ(AsyncStats[I].KernelName, BlockingStats[I].KernelName);
    EXPECT_EQ(AsyncStats[I].TotalGroups, BlockingStats[I].TotalGroups);
    EXPECT_EQ(AsyncStats[I].CpuGroupsExecuted,
              BlockingStats[I].CpuGroupsExecuted);
    EXPECT_EQ(AsyncStats[I].GpuGroupsExecuted,
              BlockingStats[I].GpuGroupsExecuted);
    EXPECT_EQ(AsyncStats[I].CpuSubkernels, BlockingStats[I].CpuSubkernels);
  }
}

TEST(FluidiclAsyncTest, AsyncFunctionalResultsMatchReference) {
  Workload W = makeGesummv(512);
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  Runtime RT(Ctx);
  std::vector<std::vector<std::byte>> Host = initHostData(W);
  std::vector<std::vector<std::byte>> Results;
  runAsync(RT, W, &Host, &Results);
  computeReference(W, Host);
  ASSERT_EQ(Results.size(), W.ResultBuffers.size());
  for (size_t R = 0; R < Results.size(); ++R) {
    const auto *Got = reinterpret_cast<const float *>(Results[R].data());
    const auto *Want =
        reinterpret_cast<const float *>(Host[W.ResultBuffers[R]].data());
    for (uint64_t J = 0; J < Results[R].size() / sizeof(float); ++J)
      EXPECT_NEAR(Got[J], Want[J], 1e-5 + 1e-5 * std::fabs(Want[J]))
          << "result " << R << " element " << J;
  }
}

TEST(FluidiclAsyncTest, PassThroughChunkYieldChangesNothing) {
  // A chunk-yield hook that resumes immediately must reproduce the
  // unhooked run exactly - the hook sits on the subkernel launch path and
  // an immediate Resume() is a no-op by construction.
  Workload W = makeSyrk(1024, 1024);
  Duration PlainTotal;
  uint64_t PlainCpuGroups;
  {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
    Runtime RT(Ctx);
    PlainTotal = runAsync(RT, W, nullptr, nullptr);
    PlainCpuGroups = statsFor(RT, "syrk_kernel").CpuGroupsExecuted;
  }
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  Runtime RT(Ctx);
  uint64_t Yields = 0;
  RT.setChunkYield([&Yields](std::function<void()> Resume) {
    ++Yields;
    Resume();
  });
  Duration HookedTotal = runAsync(RT, W, nullptr, nullptr);
  EXPECT_EQ(HookedTotal.nanos(), PlainTotal.nanos());
  EXPECT_EQ(statsFor(RT, "syrk_kernel").CpuGroupsExecuted, PlainCpuGroups);
  EXPECT_GT(Yields, 0u);
}

} // namespace
