//===- tests/extensions_runtime_test.cpp - Runtime extension tests ---------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the runtime features beyond the paper's headline results: the
/// section 7 atomics fallback, the region-transfer extension, and the
/// ArgParser used by the fluidicl_sim tool.
///
//===----------------------------------------------------------------------===//

#include "fluidicl/Runtime.h"
#include "support/ArgParser.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

using namespace fcl;
using namespace fcl::work;

namespace {

// --- Atomics fallback (paper section 7) ----------------------------------------

TEST(AtomicsFallbackTest, AtomicKernelRunsGpuOnly) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx);
  const int64_t N = 4096, Bins = 16;
  runtime::BufferId X = RT.createBuffer(N * 4, "x");
  runtime::BufferId H = RT.createBuffer(Bins * 4, "hist");
  std::vector<float> HX(N), HH(Bins, 0.0f);
  for (int64_t I = 0; I < N; ++I)
    HX[static_cast<size_t>(I)] = static_cast<float>(I % 100) / 100.0f;
  RT.writeBuffer(X, HX.data(), N * 4);
  RT.writeBuffer(H, HH.data(), Bins * 4);
  RT.launchKernel("histogram_atomic", kern::NDRange::of1D(N, 32),
                  {runtime::KArg::buffer(X), runtime::KArg::buffer(H),
                   runtime::KArg::i64(N), runtime::KArg::i64(Bins)});
  RT.readBuffer(H, HH.data(), Bins * 4);
  RT.finish();

  fluidicl::KernelStats S = RT.kernelStats().front();
  EXPECT_TRUE(S.AtomicsFallback);
  EXPECT_EQ(S.CpuGroupsExecuted, 0u);
  EXPECT_EQ(S.GpuGroupsExecuted, S.TotalGroups);

  float Total = 0;
  for (float V : HH)
    Total += V;
  EXPECT_FLOAT_EQ(Total, static_cast<float>(N));
}

TEST(AtomicsFallbackTest, NonAtomicKernelsUnaffected) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  fluidicl::Runtime RT(Ctx);
  runWorkload(RT, makeSyrk(1024, 1024), false);
  EXPECT_FALSE(RT.kernelStats().front().AtomicsFallback);
  EXPECT_GT(RT.kernelStats().front().CpuGroupsExecuted, 0u);
}

// --- Region transfers --------------------------------------------------------------

class RegionTransfersTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RegionTransfersTest, FunctionalMatchesReference) {
  Workload W = testSuite()[GetParam()];
  fluidicl::Options Opts;
  Opts.RegionTransfers = true;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx, Opts);
  RunResult Res = runWorkload(RT, W, true);
  EXPECT_TRUE(Res.Valid) << W.Name << " err " << Res.MaxAbsError;
}

std::string regionTestName(const ::testing::TestParamInfo<size_t> &Info) {
  static const char *Names[] = {"ATAX", "BICG",  "CORR",
                                "GESUMMV", "SYRK", "SYR2K"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, RegionTransfersTest,
                         ::testing::Range<size_t>(0, 6), regionTestName);

TEST(RegionTransfersTest, ReducesHdTrafficOnSyrk) {
  Workload W = makeSyrk(1024, 1024);
  auto HdBytes = [&](bool Regions) {
    fluidicl::Options Opts;
    Opts.RegionTransfers = Regions;
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
    fluidicl::Runtime RT(Ctx, Opts);
    runWorkload(RT, W, false);
    return RT.kernelStats().front().HdBytesSent;
  };
  uint64_t Full = HdBytes(false);
  uint64_t Regions = HdBytes(true);
  EXPECT_GT(Full, 0u);
  // Band transfers move a small fraction of the whole-buffer stream.
  EXPECT_LT(Regions, Full / 4);
}

TEST(RegionTransfersTest, DoesNotHurtTotalTime) {
  Workload W = makeSyrk(1024, 1024);
  RunConfig C;
  double Full = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
  C.FclOpts.RegionTransfers = true;
  double Regions = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
  EXPECT_LE(Regions, Full * 1.02);
}

TEST(RegionTransfersTest, NonContiguousKernelFallsBackToWholeBuffer) {
  // corr_corr_kernel writes symmetric elements: not row-contiguous, so the
  // option must not change its traffic (and results stay correct, which
  // AllWorkloads/CORR above checks).
  Workload W = makeCorr(512, 512);
  auto HdBytes = [&](bool Regions) {
    fluidicl::Options Opts;
    Opts.RegionTransfers = Regions;
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
    fluidicl::Runtime RT(Ctx, Opts);
    runWorkload(RT, W, false);
    uint64_t CorrBytes = 0;
    for (const fluidicl::KernelStats &S : RT.kernelStats())
      if (S.KernelName == "corr_corr_kernel")
        CorrBytes = S.HdBytesSent;
    return CorrBytes;
  };
  EXPECT_EQ(HdBytes(true), HdBytes(false));
}

// --- ArgParser -----------------------------------------------------------------------

TEST(ArgParserTest, ParsesFlagsAndOptions) {
  ArgParser P("tool", "test");
  P.addFlag("verbose", "talk more");
  P.addOption("size", "problem size", "100");
  const char *Argv[] = {"--verbose", "--size=42"};
  ASSERT_TRUE(P.parse(2, Argv));
  EXPECT_TRUE(P.flag("verbose"));
  EXPECT_EQ(P.i64("size"), 42);
  EXPECT_TRUE(P.given("size"));
}

TEST(ArgParserTest, DefaultsApplyWhenAbsent) {
  ArgParser P("tool", "test");
  P.addFlag("verbose", "talk more");
  P.addOption("size", "problem size", "100");
  ASSERT_TRUE(P.parse(0, nullptr));
  EXPECT_FALSE(P.flag("verbose"));
  EXPECT_EQ(P.i64("size"), 100);
  EXPECT_FALSE(P.given("size"));
}

TEST(ArgParserTest, SpaceSeparatedValue) {
  ArgParser P("tool", "test");
  P.addOption("name", "a name", "");
  const char *Argv[] = {"--name", "fluidicl"};
  ASSERT_TRUE(P.parse(2, Argv));
  EXPECT_EQ(P.str("name"), "fluidicl");
}

TEST(ArgParserTest, FloatValues) {
  ArgParser P("tool", "test");
  P.addOption("load", "load factor", "1.0");
  const char *Argv[] = {"--load=2.5"};
  ASSERT_TRUE(P.parse(1, Argv));
  EXPECT_DOUBLE_EQ(P.f64("load"), 2.5);
}

TEST(ArgParserTest, PositionalArguments) {
  ArgParser P("tool", "test");
  const char *Argv[] = {"alpha", "beta"};
  ASSERT_TRUE(P.parse(2, Argv));
  EXPECT_EQ(P.positional(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(ArgParserTest, UnknownOptionFails) {
  ArgParser P("tool", "test");
  const char *Argv[] = {"--bogus"};
  EXPECT_FALSE(P.parse(1, Argv));
  EXPECT_NE(P.error().find("bogus"), std::string::npos);
}

TEST(ArgParserTest, MissingValueFails) {
  ArgParser P("tool", "test");
  P.addOption("size", "problem size", "0");
  const char *Argv[] = {"--size"};
  EXPECT_FALSE(P.parse(1, Argv));
}

TEST(ArgParserTest, FlagWithValueFails) {
  ArgParser P("tool", "test");
  P.addFlag("verbose", "talk more");
  const char *Argv[] = {"--verbose=yes"};
  EXPECT_FALSE(P.parse(1, Argv));
}

TEST(ArgParserTest, HelpRequested) {
  ArgParser P("tool", "test");
  P.addFlag("x", "an x");
  const char *Argv[] = {"--help"};
  ASSERT_TRUE(P.parse(1, Argv));
  EXPECT_TRUE(P.helpRequested());
  std::string Help = P.helpText();
  EXPECT_NE(Help.find("--x"), std::string::npos);
  EXPECT_NE(Help.find("an x"), std::string::npos);
}

} // namespace
