//===- tests/fluidicl_unit_test.cpp - FluidiCL component tests -------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the FluidiCL runtime's components: the adaptive chunk
/// controller (section 5.1), buffer version tracking (section 5.3), the
/// GPU buffer pool (section 6.1), and online profiling (section 6.6).
///
//===----------------------------------------------------------------------===//

#include "fluidicl/BufferPool.h"
#include "fluidicl/ChunkController.h"
#include "fluidicl/OnlineProfiler.h"
#include "fluidicl/VersionTracker.h"
#include "kern/Registry.h"
#include "mcl/Context.h"

#include <gtest/gtest.h>

using namespace fcl;
using namespace fcl::fluidicl;

namespace {

// --- ChunkController -----------------------------------------------------------

TEST(ChunkControllerTest, InitialChunkIsPercentage) {
  ChunkController C(1000, 8, 2.0, 2.0);
  EXPECT_EQ(C.nextChunk(1000), 20u);
}

TEST(ChunkControllerTest, FloorsAtComputeUnits) {
  // 2% of 100 groups = 2 < 8 units: floor to the unit count (section 5.1).
  ChunkController C(100, 8, 2.0, 2.0);
  EXPECT_EQ(C.nextChunk(100), 8u);
}

TEST(ChunkControllerTest, NeverExceedsRemaining) {
  ChunkController C(1000, 8, 50.0, 2.0);
  EXPECT_EQ(C.nextChunk(100), 100u);
  EXPECT_EQ(C.nextChunk(3), 3u);
  EXPECT_EQ(C.nextChunk(0), 0u);
}

TEST(ChunkControllerTest, GrowsWhileTimePerGroupImproves) {
  ChunkController C(1000, 8, 2.0, 2.0);
  EXPECT_DOUBLE_EQ(C.currentPct(), 2.0);
  C.reportSubkernel(20, Duration::microseconds(2000)); // 100 us/wg.
  EXPECT_DOUBLE_EQ(C.currentPct(), 4.0);
  C.reportSubkernel(40, Duration::microseconds(3200)); // 80 us/wg: better.
  EXPECT_DOUBLE_EQ(C.currentPct(), 6.0);
  EXPECT_TRUE(C.stillGrowing());
}

TEST(ChunkControllerTest, StopsGrowingWhenTimePerGroupWorsens) {
  ChunkController C(1000, 8, 2.0, 2.0);
  C.reportSubkernel(20, Duration::microseconds(2000)); // 100 us/wg.
  C.reportSubkernel(40, Duration::microseconds(4800)); // 120 us/wg: worse.
  EXPECT_FALSE(C.stillGrowing());
  double Held = C.currentPct();
  C.reportSubkernel(40, Duration::microseconds(10)); // Improvement ignored.
  EXPECT_DOUBLE_EQ(C.currentPct(), Held);
}

TEST(ChunkControllerTest, ZeroStepKeepsChunkFixed) {
  ChunkController C(1000, 8, 2.0, 0.0);
  EXPECT_FALSE(C.stillGrowing());
  C.reportSubkernel(20, Duration::microseconds(100));
  C.reportSubkernel(20, Duration::microseconds(50));
  EXPECT_DOUBLE_EQ(C.currentPct(), 2.0);
}

TEST(ChunkControllerTest, PercentCapsAtHundred) {
  ChunkController C(100, 1, 90.0, 50.0);
  C.reportSubkernel(90, Duration::microseconds(100));
  EXPECT_LE(C.currentPct(), 100.0);
}

TEST(ChunkControllerTest, TailClampBeatsComputeUnitFloor) {
  // The compute-unit floor never manufactures work: when fewer groups
  // remain than compute units, the tail chunk is exactly what is left.
  ChunkController C(1000, 8, 2.0, 2.0);
  EXPECT_EQ(C.nextChunk(7), 7u);
  EXPECT_EQ(C.nextChunk(1), 1u);
}

TEST(ChunkControllerTest, DescendingWalkConsumesExactlyTotal) {
  // Walk a whole partition down to zero the way KernelExec does, growing
  // the chunk after every subkernel; the chunks must sum to the total with
  // the final chunk clamped to the remainder, never overshooting.
  ChunkController C(1000, 8, 3.0, 5.0);
  uint64_t Remaining = 1000, Consumed = 0;
  int Subkernels = 0;
  while (Remaining > 0) {
    uint64_t Chunk = C.nextChunk(Remaining);
    ASSERT_GT(Chunk, 0u);
    ASSERT_LE(Chunk, Remaining);
    // Report ever-improving times so the chunk keeps growing; the clamp
    // must hold even while the target percentage still rises.
    C.reportSubkernel(Chunk, Duration::nanoseconds(static_cast<int64_t>(
                                 Chunk * (1000 - 10 * Subkernels))));
    Consumed += Chunk;
    Remaining -= Chunk;
    ++Subkernels;
  }
  EXPECT_EQ(Consumed, 1000u);
  EXPECT_GT(Subkernels, 1);
  EXPECT_EQ(C.nextChunk(0), 0u);
}

TEST(ChunkControllerTest, ZeroStepNeverGrowsOrCountsSteps) {
  // StepPct = 0 is the fixed-chunk configuration (--step=0): improving
  // reports must neither change the percentage nor count growth steps.
  ChunkController C(1000, 8, 5.0, 0.0);
  EXPECT_FALSE(C.stillGrowing());
  for (int I = 1; I <= 4; ++I) {
    C.reportSubkernel(50, Duration::microseconds(1000 / I));
    EXPECT_DOUBLE_EQ(C.currentPct(), 5.0);
    EXPECT_EQ(C.nextChunk(1000), 50u);
  }
  EXPECT_EQ(C.growthSteps(), 0u);
}

TEST(ChunkControllerTest, GrowthStepsCountedUntilSettled) {
  ChunkController C(1000, 8, 2.0, 2.0);
  EXPECT_EQ(C.growthSteps(), 0u);
  C.reportSubkernel(20, Duration::microseconds(2000)); // 100 us/wg.
  C.reportSubkernel(40, Duration::microseconds(3200)); // 80 us/wg: grows.
  EXPECT_EQ(C.growthSteps(), 2u);
  C.reportSubkernel(60, Duration::microseconds(9000)); // 150 us/wg: stop.
  EXPECT_EQ(C.growthSteps(), 2u);
  EXPECT_FALSE(C.stillGrowing());
}

TEST(ChunkControllerDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(ChunkController(0, 8, 2, 2), "empty");
  EXPECT_DEATH(ChunkController(10, 0, 2, 2), "units");
  EXPECT_DEATH(ChunkController(10, 8, 0, 2), "percent");
}

// --- VersionTracker -------------------------------------------------------------

TEST(VersionTrackerTest, FreshBufferIsCurrent) {
  VersionTracker V;
  uint32_t B = V.addBuffer();
  EXPECT_TRUE(V.cpuCurrent(B));
}

TEST(VersionTrackerTest, KernelWriteMakesCpuStale) {
  VersionTracker V;
  uint32_t B = V.addBuffer();
  V.noteKernelWillWrite(B, 1);
  EXPECT_FALSE(V.cpuCurrent(B));
  EXPECT_EQ(V.expectedVersion(B), 1u);
  V.noteCpuReceived(B, 1);
  EXPECT_TRUE(V.cpuCurrent(B));
}

TEST(VersionTrackerTest, HostWriteRefreshesBothSides) {
  VersionTracker V;
  uint32_t B = V.addBuffer();
  V.noteKernelWillWrite(B, 1);
  V.noteHostWrite(B, 1);
  EXPECT_TRUE(V.cpuCurrent(B));
}

TEST(VersionTrackerTest, StaleArrivalsDiscarded) {
  VersionTracker V;
  uint32_t B = V.addBuffer();
  V.noteKernelWillWrite(B, 1);
  V.noteKernelWillWrite(B, 2);
  V.noteCpuReceived(B, 2);
  EXPECT_TRUE(V.cpuCurrent(B));
  // A late version-1 message must not regress the received version
  // (section 5.3: stale data is discarded).
  V.noteCpuReceived(B, 1);
  EXPECT_EQ(V.cpuVersion(B), 2u);
  EXPECT_TRUE(V.cpuCurrent(B));
}

TEST(VersionTrackerTest, CpuCurrentAllChecksEveryBuffer) {
  VersionTracker V;
  uint32_t A = V.addBuffer();
  uint32_t B = V.addBuffer();
  V.noteKernelWillWrite(B, 1);
  EXPECT_FALSE(V.cpuCurrentAll({A, B}));
  V.noteCpuReceived(B, 1);
  EXPECT_TRUE(V.cpuCurrentAll({A, B}));
}

TEST(VersionTrackerDeathTest, KernelIdsMustIncrease) {
  VersionTracker V;
  uint32_t B = V.addBuffer();
  V.noteKernelWillWrite(B, 5);
  EXPECT_DEATH(V.noteKernelWillWrite(B, 5), "increase");
}

// --- BufferPool -------------------------------------------------------------------

TEST(BufferPoolTest, ReusesReleasedBuffers) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  BufferPool Pool(Ctx, Ctx.gpu(), /*Enabled=*/true);
  mcl::Buffer *B1 = Pool.acquire(1024);
  EXPECT_EQ(Pool.misses(), 1u);
  Pool.release(B1);
  mcl::Buffer *B2 = Pool.acquire(512); // Fits in the released 1024.
  EXPECT_EQ(B2, B1);
  EXPECT_EQ(Pool.hits(), 1u);
}

TEST(BufferPoolTest, PicksSmallestFittingBuffer) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  BufferPool Pool(Ctx, Ctx.gpu(), true);
  mcl::Buffer *Big = Pool.acquire(4096);
  mcl::Buffer *Small = Pool.acquire(1024);
  Pool.release(Big);
  Pool.release(Small);
  mcl::Buffer *Got = Pool.acquire(1000);
  EXPECT_EQ(Got, Small);
}

TEST(BufferPoolTest, TooSmallFreeBuffersNotReused) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  BufferPool Pool(Ctx, Ctx.gpu(), true);
  mcl::Buffer *Small = Pool.acquire(256);
  Pool.release(Small);
  mcl::Buffer *Big = Pool.acquire(8192);
  EXPECT_NE(Big, Small);
  EXPECT_EQ(Big->size(), 8192u);
  EXPECT_EQ(Pool.misses(), 2u);
}

TEST(BufferPoolTest, ReclaimFreesIdleBuffers) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  BufferPool Pool(Ctx, Ctx.gpu(), true);
  Pool.release(Pool.acquire(1024));
  EXPECT_EQ(Pool.freeCount(), 1u);
  for (int I = 0; I < 10; ++I)
    Pool.endKernelReclaim(/*MaxIdleKernels=*/4);
  EXPECT_EQ(Pool.freeCount(), 0u);
}

TEST(BufferPoolTest, RecentlyUsedSurviveReclaim) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  BufferPool Pool(Ctx, Ctx.gpu(), true);
  Pool.release(Pool.acquire(1024));
  Pool.endKernelReclaim(4);
  EXPECT_EQ(Pool.freeCount(), 1u);
}

TEST(BufferPoolTest, DisabledPoolAlwaysAllocatesFresh) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  BufferPool Pool(Ctx, Ctx.gpu(), /*Enabled=*/false);
  mcl::Buffer *B1 = Pool.acquire(1024);
  Pool.release(B1);
  Pool.acquire(1024);
  EXPECT_EQ(Pool.hits(), 0u);
  EXPECT_EQ(Pool.misses(), 2u);
  EXPECT_EQ(Pool.freeCount(), 0u);
}

TEST(BufferPoolDeathTest, ReleasingForeignBufferAborts) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  BufferPool Pool(Ctx, Ctx.gpu(), true);
  auto Foreign = Ctx.createBuffer(Ctx.gpu(), 64);
  EXPECT_DEATH(Pool.release(Foreign.get()), "does not own");
}

// --- OnlineProfiler --------------------------------------------------------------

TEST(OnlineProfilerTest, SingleVersionDecidedImmediately) {
  OnlineProfiler P;
  const kern::KernelInfo &K = kern::Registry::builtin().get("syrk_kernel");
  EXPECT_EQ(P.pickCpuKernel(K), &K);
  EXPECT_TRUE(P.decided(K));
}

TEST(OnlineProfilerTest, CyclesThroughVariantsThenPicksFastest) {
  OnlineProfiler P;
  const kern::KernelInfo &Base =
      kern::Registry::builtin().get("corr_corr_kernel");
  const kern::KernelInfo &Opt =
      kern::Registry::builtin().get("corr_corr_kernel_cpuopt");

  const kern::KernelInfo *First = P.pickCpuKernel(Base);
  EXPECT_EQ(First, &Base);
  P.reportSubkernel(Base, *First, 8, Duration::milliseconds(80));
  EXPECT_FALSE(P.decided(Base));

  const kern::KernelInfo *Second = P.pickCpuKernel(Base);
  EXPECT_EQ(Second, &Opt);
  P.reportSubkernel(Base, *Second, 8, Duration::milliseconds(10));
  ASSERT_TRUE(P.decided(Base));
  EXPECT_EQ(P.pickCpuKernel(Base), &Opt);
  EXPECT_EQ(P.chosenName(Base), "corr_corr_kernel_cpuopt");
}

TEST(OnlineProfilerTest, BaselineWinsWhenVariantSlower) {
  OnlineProfiler P;
  const kern::KernelInfo &Base =
      kern::Registry::builtin().get("corr_corr_kernel");
  P.reportSubkernel(Base, *P.pickCpuKernel(Base), 8,
                    Duration::milliseconds(5));
  P.reportSubkernel(Base, *P.pickCpuKernel(Base), 8,
                    Duration::milliseconds(50));
  ASSERT_TRUE(P.decided(Base));
  EXPECT_EQ(P.chosenName(Base), "corr_corr_kernel");
}

TEST(OnlineProfilerTest, DecisionStableAcrossFurtherReports) {
  OnlineProfiler P;
  const kern::KernelInfo &Base =
      kern::Registry::builtin().get("corr_corr_kernel");
  P.reportSubkernel(Base, *P.pickCpuKernel(Base), 8,
                    Duration::milliseconds(80));
  const kern::KernelInfo *Winner = P.pickCpuKernel(Base);
  P.reportSubkernel(Base, *Winner, 8, Duration::milliseconds(10));
  ASSERT_TRUE(P.decided(Base));
  // Later (e.g. anomalous) measurements no longer flip the decision.
  P.reportSubkernel(Base, *P.pickCpuKernel(Base), 8,
                    Duration::milliseconds(9999));
  EXPECT_EQ(P.chosenName(Base), "corr_corr_kernel_cpuopt");
}

TEST(OnlineProfilerTest, ZeroGroupReportIgnored) {
  OnlineProfiler P;
  const kern::KernelInfo &Base =
      kern::Registry::builtin().get("corr_corr_kernel");
  P.reportSubkernel(Base, *P.pickCpuKernel(Base), 0, Duration::zero());
  EXPECT_FALSE(P.decided(Base));
}

} // namespace
