//===- tests/hw_cost_test.cpp - hw/ machine + cost-model tests -------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/CostModel.h"
#include "hw/Machine.h"

#include <gtest/gtest.h>

using namespace fcl;
using namespace fcl::hw;

namespace {

WorkItemCost computeBoundCost() {
  WorkItemCost C;
  C.Flops = 1000;
  C.BytesRead = 4;
  C.BytesWritten = 4;
  C.LoopTripCount = 500;
  C.NoUnrollPenalty = 1.5;
  return C;
}

WorkItemCost memoryBoundCost() {
  WorkItemCost C;
  C.Flops = 2;
  C.BytesRead = 4096;
  C.BytesWritten = 4;
  C.GpuCoalescing = 0.5;
  return C;
}

// --- Machine descriptors ------------------------------------------------------

TEST(MachineTest, PaperGpuPeakFlops) {
  Machine M = paperMachine();
  // 14 SMs x 32 lanes x 2 flops x 1.15 GHz ~ 1.03 TFLOP/s (Tesla C2070).
  EXPECT_NEAR(M.Gpu.peakFlops(), 1.03e12, 0.01e12);
  EXPECT_EQ(M.Gpu.waveWidth(), 14 * 8);
}

TEST(MachineTest, PcieTransferTimeHasLatencyAndBandwidth) {
  PcieModel P;
  Duration Small = P.transferTime(1);
  EXPECT_GE(Small.nanos(), P.Latency.nanos());
  Duration OneMb = P.transferTime(1 << 20);
  Duration TwoMb = P.transferTime(2 << 20);
  // Second megabyte costs bandwidth only (latency amortized).
  EXPECT_NEAR(static_cast<double>((TwoMb - OneMb).nanos()),
              (1 << 20) / P.Bandwidth * 1e9, 1.0);
}

TEST(MachineTest, MemcpyTimeScalesLinearly) {
  HostModel H;
  EXPECT_EQ(H.memcpyTime(0).nanos(), 0);
  EXPECT_NEAR(static_cast<double>(H.memcpyTime(1 << 30).nanos()),
              (1 << 30) / H.MemcpyBandwidth * 1e9, 2.0);
}

// --- Abort-check accounting ---------------------------------------------------

TEST(CostModelTest, AbortChecksPerItemByPolicy) {
  WorkItemCost C = computeBoundCost();
  AbortConfig None;
  EXPECT_EQ(abortChecksPerItem(C, None), 0);

  AbortConfig AtStart;
  AtStart.Kind = AbortPolicyKind::AtStart;
  EXPECT_EQ(abortChecksPerItem(C, AtStart), 1);

  AbortConfig InLoop;
  InLoop.Kind = AbortPolicyKind::InLoop;
  InLoop.Unroll = true;
  InLoop.UnrollFactor = 8;
  EXPECT_DOUBLE_EQ(abortChecksPerItem(C, InLoop), 1 + 500.0 / 8);

  InLoop.Unroll = false;
  EXPECT_DOUBLE_EQ(abortChecksPerItem(C, InLoop), 1 + 500.0);
}

TEST(CostModelTest, EffectiveFlopsOrderingAcrossPolicies) {
  GpuModel Gpu;
  WorkItemCost C = computeBoundCost();
  AbortConfig None;
  AbortConfig AtStart;
  AtStart.Kind = AbortPolicyKind::AtStart;
  AbortConfig InLoopUnrolled;
  InLoopUnrolled.Kind = AbortPolicyKind::InLoop;
  InLoopUnrolled.Unroll = true;
  AbortConfig InLoopNoUnroll = InLoopUnrolled;
  InLoopNoUnroll.Unroll = false;

  double FNone = gpuEffectiveFlopsPerItem(Gpu, C, None);
  double FStart = gpuEffectiveFlopsPerItem(Gpu, C, AtStart);
  double FLoop = gpuEffectiveFlopsPerItem(Gpu, C, InLoopUnrolled);
  double FNoUnroll = gpuEffectiveFlopsPerItem(Gpu, C, InLoopNoUnroll);

  EXPECT_LT(FNone, FStart);
  EXPECT_LT(FStart, FLoop);
  EXPECT_LT(FLoop, FNoUnroll);
  // Losing unrolling costs at least the NoUnrollPenalty factor.
  EXPECT_GE(FNoUnroll, FNone * C.NoUnrollPenalty);
}

TEST(CostModelTest, ModifiedKernelBonusOnlyForFullTransform) {
  Machine M = paperMachine();
  WorkItemCost C = computeBoundCost();
  C.GpuModifiedKernelBonus = 1.5;
  AbortConfig AtStart;
  AtStart.Kind = AbortPolicyKind::AtStart;
  AbortConfig Full;
  Full.Kind = AbortPolicyKind::InLoop;
  Full.Unroll = true;

  Duration TStart = gpuWaveTime(M, C, AtStart, 10000);
  Duration TFull = gpuWaveTime(M, C, Full, 10000);
  // Despite extra checks, the transformed kernel is faster thanks to the
  // cache bonus (the paper's SYRK observation).
  EXPECT_LT(TFull, TStart);
}

// --- GPU wave timing ------------------------------------------------------------

TEST(CostModelTest, GpuWaveTimeZeroItems) {
  Machine M = paperMachine();
  EXPECT_EQ(gpuWaveTime(M, computeBoundCost(), AbortConfig(), 0).nanos(), 0);
}

TEST(CostModelTest, GpuWaveTimeScalesWithItems) {
  Machine M = paperMachine();
  WorkItemCost C = computeBoundCost();
  Duration T1 = gpuWaveTime(M, C, AbortConfig(), 1000);
  Duration T2 = gpuWaveTime(M, C, AbortConfig(), 2000);
  EXPECT_NEAR(static_cast<double>(T2.nanos()),
              2.0 * static_cast<double>(T1.nanos()), 2.0);
}

TEST(CostModelTest, MemoryBoundKernelIgnoresAbortOverhead) {
  Machine M = paperMachine();
  WorkItemCost C = memoryBoundCost();
  AbortConfig InLoop;
  InLoop.Kind = AbortPolicyKind::InLoop;
  Duration TNone = gpuWaveTime(M, C, AbortConfig(), 10000);
  Duration TLoop = gpuWaveTime(M, C, InLoop, 10000);
  // max(compute, memory): the added compute hides under the memory time.
  EXPECT_EQ(TNone.nanos(), TLoop.nanos());
}

TEST(CostModelTest, CoalescingControlsMemoryBoundTime) {
  Machine M = paperMachine();
  WorkItemCost C = memoryBoundCost();
  C.GpuCoalescing = 1.0;
  Duration Fast = gpuWaveTime(M, C, AbortConfig(), 10000);
  C.GpuCoalescing = 0.25;
  Duration Slow = gpuWaveTime(M, C, AbortConfig(), 10000);
  EXPECT_NEAR(static_cast<double>(Slow.nanos()),
              4.0 * static_cast<double>(Fast.nanos()), 4.0);
}

TEST(CostModelTest, GpuLoadFactorSlowsGpu) {
  Machine M = paperMachine();
  Duration Base = gpuWaveTime(M, computeBoundCost(), AbortConfig(), 10000);
  M.GpuLoadFactor = 2.0;
  Duration Loaded = gpuWaveTime(M, computeBoundCost(), AbortConfig(), 10000);
  EXPECT_NEAR(static_cast<double>(Loaded.nanos()),
              2.0 * static_cast<double>(Base.nanos()), 2.0);
}

TEST(CostModelTest, WaveCheckpointsByPolicy) {
  WorkItemCost C = computeBoundCost(); // 500 trips.
  AbortConfig None;
  EXPECT_EQ(gpuWaveCheckpoints(C, None), 1);
  AbortConfig AtStart;
  AtStart.Kind = AbortPolicyKind::AtStart;
  EXPECT_EQ(gpuWaveCheckpoints(C, AtStart), 1);
  AbortConfig InLoop;
  InLoop.Kind = AbortPolicyKind::InLoop;
  InLoop.Unroll = true;
  InLoop.UnrollFactor = 8;
  // 500/8 ~ 62 checks, capped at 32 checkpoints.
  EXPECT_EQ(gpuWaveCheckpoints(C, InLoop), 32);
  C.LoopTripCount = 40;
  EXPECT_EQ(gpuWaveCheckpoints(C, InLoop), 5);
}

// --- CPU timing -------------------------------------------------------------------

TEST(CostModelTest, CpuWorkGroupTimeZeroItems) {
  Machine M = paperMachine();
  EXPECT_EQ(cpuWorkGroupTime(M, computeBoundCost(), 0).nanos(), 0);
}

TEST(CostModelTest, CpuComputeBoundMatchesRate) {
  Machine M = paperMachine();
  WorkItemCost C = computeBoundCost();
  C.CpuFlopEfficiency = 1.0;
  Duration T = cpuWorkGroupTime(M, C, 64);
  double ExpectSeconds =
      64 * C.Flops / (M.Cpu.ClockGhz * 1e9 * M.Cpu.FlopsPerUnitPerCycle);
  EXPECT_NEAR(T.toSeconds(), ExpectSeconds, 1e-9);
}

TEST(CostModelTest, CpuMemoryBoundUsesSharedBandwidth) {
  Machine M = paperMachine();
  WorkItemCost C = memoryBoundCost();
  C.CpuMemEfficiency = 1.0;
  Duration T = cpuWorkGroupTime(M, C, 64);
  double Share = M.Cpu.MemBandwidth / M.Cpu.ComputeUnits;
  double ExpectSeconds = 64 * (C.BytesRead + C.BytesWritten) / Share;
  EXPECT_NEAR(T.toSeconds(), ExpectSeconds, 1e-9);
}

TEST(CostModelTest, CpuLoadFactorSlowsCpu) {
  Machine M = paperMachine();
  Duration Base = cpuWorkGroupTime(M, computeBoundCost(), 64);
  M.CpuLoadFactor = 3.0;
  Duration Loaded = cpuWorkGroupTime(M, computeBoundCost(), 64);
  EXPECT_NEAR(static_cast<double>(Loaded.nanos()),
              3.0 * static_cast<double>(Base.nanos()), 3.0);
}

// --- Merge timing -------------------------------------------------------------------

TEST(CostModelTest, MergeTimeIncludesLaunchAndTraffic) {
  Machine M = paperMachine();
  Duration T = gpuMergeTime(M, 1 << 20);
  EXPECT_GT(T, M.Gpu.KernelLaunchOverhead);
  double Traffic = 3.0 * (1 << 20) / M.Gpu.MemBandwidth;
  EXPECT_NEAR(T.toSeconds() - M.Gpu.KernelLaunchOverhead.toSeconds(),
              Traffic, 1e-9);
}

} // namespace
