//===- tests/robustness_test.cpp - API misuse and edge-case tests ----------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Programmatic-error handling (the library aborts with a diagnostic at
/// the point of failure, per the coding standards) and degenerate-but-
/// legal inputs across all runtimes.
///
//===----------------------------------------------------------------------===//

#include "fluidicl/Runtime.h"
#include "runtime/SingleDevice.h"
#include "runtime/StaticPartition.h"
#include "socl/SoclRuntime.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace fcl;
using namespace fcl::work;

namespace {

// --- API misuse aborts with diagnostics ----------------------------------------

TEST(RobustnessDeathTest, UnknownKernelNameAborts) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  fluidicl::Runtime RT(Ctx);
  EXPECT_DEATH(RT.launchKernel("no_such_kernel",
                               kern::NDRange::of1D(32, 32), {}),
               "unknown kernel");
}

TEST(RobustnessDeathTest, ArgumentArityMismatchAborts) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  fluidicl::Runtime RT(Ctx);
  EXPECT_DEATH(
      RT.launchKernel("vec_add", kern::NDRange::of1D(32, 32), {}),
      "arity");
}

TEST(RobustnessDeathTest, InvalidBufferIdAborts) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  fluidicl::Runtime RT(Ctx);
  EXPECT_DEATH(RT.writeBuffer(42, nullptr, 16), "invalid buffer");
}

TEST(RobustnessDeathTest, OversizedWriteAborts) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  fluidicl::Runtime RT(Ctx);
  runtime::BufferId B = RT.createBuffer(64, "b");
  EXPECT_DEATH(RT.writeBuffer(B, nullptr, 128), "overruns");
}

TEST(RobustnessDeathTest, ZeroSizedBufferAborts) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  fluidicl::Runtime RT(Ctx);
  EXPECT_DEATH(RT.createBuffer(0, "zero"), "zero");
}

// --- Degenerate but legal inputs ------------------------------------------------

/// Runs a one-group vec_add under every runtime kind.
void runTinyEverywhere(mcl::ExecMode Mode) {
  const int64_t N = 32;
  std::vector<float> HA(N, 1.0f), HB(N, 2.0f), HC(N, 0.0f);
  auto Drive = [&](runtime::HeteroRuntime &RT) {
    runtime::BufferId A = RT.createBuffer(N * 4, "a");
    runtime::BufferId B = RT.createBuffer(N * 4, "b");
    runtime::BufferId C = RT.createBuffer(N * 4, "c");
    RT.writeBuffer(A, HA.data(), N * 4);
    RT.writeBuffer(B, HB.data(), N * 4);
    RT.launchKernel("vec_add", kern::NDRange::of1D(N, 32),
                    {runtime::KArg::buffer(A), runtime::KArg::buffer(B),
                     runtime::KArg::buffer(C), runtime::KArg::i64(N)});
    RT.readBuffer(C, HC.data(), N * 4);
    RT.finish();
    if (Mode == mcl::ExecMode::Functional) {
      for (int64_t I = 0; I < N; ++I)
        EXPECT_FLOAT_EQ(HC[static_cast<size_t>(I)], 3.0f);
    }
  };
  {
    mcl::Context Ctx(hw::paperMachine(), Mode);
    runtime::SingleDeviceRuntime RT(Ctx, mcl::DeviceKind::Cpu);
    Drive(RT);
  }
  {
    mcl::Context Ctx(hw::paperMachine(), Mode);
    runtime::StaticPartitionRuntime RT(Ctx, 0.5);
    Drive(RT);
  }
  {
    mcl::Context Ctx(hw::paperMachine(), Mode);
    fluidicl::Runtime RT(Ctx);
    Drive(RT);
  }
  {
    socl::PerfModel Model;
    mcl::Context Ctx(hw::paperMachine(), Mode);
    socl::SoclRuntime RT(Ctx, socl::Policy::Eager, Model);
    Drive(RT);
  }
}

TEST(RobustnessTest, SingleWorkGroupEveryRuntimeFunctional) {
  runTinyEverywhere(mcl::ExecMode::Functional);
}

TEST(RobustnessTest, SingleWorkGroupEveryRuntimeTimingOnly) {
  runTinyEverywhere(mcl::ExecMode::TimingOnly);
}

TEST(RobustnessTest, ReadBeforeAnyKernelReturnsWrittenData) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx);
  runtime::BufferId B = RT.createBuffer(64, "b");
  std::vector<uint8_t> Src(64);
  for (size_t I = 0; I < Src.size(); ++I)
    Src[I] = static_cast<uint8_t>(I * 3);
  RT.writeBuffer(B, Src.data(), 64);
  std::vector<uint8_t> Dst(64, 0);
  RT.readBuffer(B, Dst.data(), 64);
  EXPECT_EQ(Src, Dst);
}

TEST(RobustnessTest, BackToBackWritesLastOneWins) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx);
  runtime::BufferId B = RT.createBuffer(16, "b");
  uint32_t V1[4] = {1, 1, 1, 1}, V2[4] = {2, 2, 2, 2}, Out[4] = {0};
  RT.writeBuffer(B, V1, 16);
  RT.writeBuffer(B, V2, 16);
  RT.readBuffer(B, Out, 16);
  for (uint32_t V : Out)
    EXPECT_EQ(V, 2u);
}

TEST(RobustnessTest, ManyBuffersManyKernels) {
  // 16 buffers, 32 kernels round-robining over them; just must not wedge
  // and must stay coherent.
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx);
  const int64_t N = 64;
  std::vector<runtime::BufferId> Bufs;
  std::vector<float> Ones(N, 1.0f);
  for (int I = 0; I < 16; ++I) {
    Bufs.push_back(RT.createBuffer(N * 4, "b" + std::to_string(I)));
    RT.writeBuffer(Bufs.back(), Ones.data(), N * 4);
  }
  for (int I = 0; I < 32; ++I) {
    runtime::BufferId X = Bufs[static_cast<size_t>(I % 16)];
    runtime::BufferId Y = Bufs[static_cast<size_t>((I + 1) % 16)];
    RT.launchKernel("saxpy", kern::NDRange::of1D(N, 32),
                    {runtime::KArg::buffer(X), runtime::KArg::buffer(Y),
                     runtime::KArg::f64(0.5), runtime::KArg::i64(N)});
  }
  RT.finish();
  // Spot check: every buffer still holds finite, positive values.
  std::vector<float> Out(N);
  for (runtime::BufferId B : Bufs) {
    RT.readBuffer(B, Out.data(), N * 4);
    for (float V : Out) {
      EXPECT_TRUE(std::isfinite(V));
      EXPECT_GT(V, 0.0f);
    }
  }
}

TEST(RobustnessTest, RuntimeReusableAfterFinish) {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx);
  for (int Round = 0; Round < 3; ++Round) {
    RunResult Res = runWorkload(RT, testSuite()[4], true);
    EXPECT_TRUE(Res.Valid) << Round;
    RT.finish();
  }
}

} // namespace
