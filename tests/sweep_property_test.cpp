//===- tests/sweep_property_test.cpp - Parameterized property sweeps -------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Property-style TEST_P sweeps over configuration spaces: the chunk
/// controller across (total, units, init, step) combinations, FluidiCL
/// functional correctness across work-group sizes and machine models, and
/// restricted GPU launches across flat ranges.
///
//===----------------------------------------------------------------------===//

#include "fluidicl/ChunkController.h"
#include "fluidicl/Runtime.h"
#include "kern/Registry.h"
#include "mcl/CommandQueue.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace fcl;
using namespace fcl::work;

namespace {

// --- ChunkController invariants over its whole parameter space ------------------

class ChunkSweepTest
    : public ::testing::TestWithParam<
          std::tuple<uint64_t /*Total*/, int /*Units*/, double /*Init*/,
                     double /*Step*/>> {};

TEST_P(ChunkSweepTest, DrainsRangeWithValidChunks) {
  auto [Total, Units, Init, Step] = GetParam();
  fluidicl::ChunkController C(Total, Units, Init, Step);
  uint64_t Remaining = Total;
  int Guard = 0;
  // Simulate a subkernel stream with noisy-but-improving times.
  uint64_t Tick = 100;
  while (Remaining > 0) {
    uint64_t Chunk = C.nextChunk(Remaining);
    ASSERT_GT(Chunk, 0u);
    ASSERT_LE(Chunk, Remaining);
    // The floor: never below min(units, remaining).
    ASSERT_GE(Chunk, std::min<uint64_t>(Remaining,
                                        static_cast<uint64_t>(Units)));
    Remaining -= Chunk;
    C.reportSubkernel(Chunk, Duration::microseconds(
                                 static_cast<int64_t>(Chunk * Tick)));
    if (Tick > 10)
      Tick -= 5; // Time per group keeps improving -> chunk may grow.
    ASSERT_LT(++Guard, 10000) << "controller failed to drain";
  }
  EXPECT_EQ(C.nextChunk(0), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Space, ChunkSweepTest,
    ::testing::Combine(::testing::Values<uint64_t>(8, 100, 4096, 16384),
                       ::testing::Values(1, 8, 60),
                       ::testing::Values(2.0, 10.0, 75.0),
                       ::testing::Values(0.0, 2.0, 50.0)));

// --- FluidiCL functional across work-group shapes --------------------------------

class WgShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WgShapeTest, SyrkFunctionalAcrossLocalSizes) {
  auto [LX, LY] = GetParam();
  const int64_t N = 128;
  Workload W;
  W.Name = "SYRK-shape";
  W.Buffers = {{"A", static_cast<uint64_t>(N * N) * 4},
               {"C", static_cast<uint64_t>(N * N) * 4}};
  W.Calls = {{"syrk_kernel",
              kern::NDRange::of2D(static_cast<uint64_t>(N),
                                  static_cast<uint64_t>(N),
                                  static_cast<uint64_t>(LX),
                                  static_cast<uint64_t>(LY)),
              {runtime::KArg::buffer(0), runtime::KArg::buffer(1),
               runtime::KArg::f64(1.3), runtime::KArg::f64(0.7),
               runtime::KArg::i64(N), runtime::KArg::i64(N)}}};
  W.ResultBuffers = {1};
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  fluidicl::Runtime RT(Ctx);
  RunResult Res = runWorkload(RT, W, true);
  EXPECT_TRUE(Res.Valid) << LX << "x" << LY << " err " << Res.MaxAbsError;
}

std::string wgShapeName(
    const ::testing::TestParamInfo<std::tuple<int, int>> &Info) {
  return "L" + std::to_string(std::get<0>(Info.param)) + "x" +
         std::to_string(std::get<1>(Info.param));
}

INSTANTIATE_TEST_SUITE_P(Shapes, WgShapeTest,
                         ::testing::Values(std::make_tuple(32, 8),
                                           std::make_tuple(16, 16),
                                           std::make_tuple(8, 8),
                                           std::make_tuple(64, 2),
                                           std::make_tuple(128, 1)),
                         wgShapeName);

// --- FluidiCL functional across machine models ------------------------------------

class MachineSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(MachineSweepTest, SuiteFunctionalOnEveryMachine) {
  hw::Machine Machines[] = {hw::paperMachine(), hw::laptopMachine(),
                            hw::machineWithPhi()};
  hw::Machine M = Machines[GetParam()];
  for (const Workload &W : testSuite()) {
    mcl::Context Ctx(M, mcl::ExecMode::Functional);
    fluidicl::Runtime RT(Ctx);
    RunResult Res = runWorkload(RT, W, true);
    EXPECT_TRUE(Res.Valid) << W.Name << " machine " << GetParam();
  }
}

std::string machineName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"Workstation", "Laptop", "Phi"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(Machines, MachineSweepTest, ::testing::Range(0, 3),
                         machineName);

// --- Restricted GPU launches across flat ranges --------------------------------------

class FlatRangeSweepTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(FlatRangeSweepTest, GpuExecutesExactlyTheRequestedGroups) {
  auto [Begin, End] = GetParam();
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::Functional);
  auto Queue = Ctx.createQueue(Ctx.gpu());
  const int64_t N = 1024; // 32 groups of 32.
  auto X = Ctx.createBuffer(Ctx.gpu(), N * 4);
  auto Y = Ctx.createBuffer(Ctx.gpu(), N * 4);
  std::vector<float> HX(N, 1.0f), HY(N, 0.0f);
  Queue->enqueueWrite(*X, HX.data(), N * 4);
  Queue->enqueueWrite(*Y, HY.data(), N * 4);
  mcl::LaunchDesc Desc;
  Desc.Kernel = &kern::Registry::builtin().get("vec_scale");
  Desc.Range = kern::NDRange::of1D(N, 32);
  Desc.Args = {mcl::LaunchArg::buffer(X.get()),
               mcl::LaunchArg::buffer(Y.get()),
               mcl::LaunchArg::scalarFp(5.0), mcl::LaunchArg::scalarInt(N)};
  Desc.FlatBegin = Begin;
  Desc.FlatEnd = End;
  mcl::EventPtr Done = Queue->enqueueKernel(std::move(Desc));
  Done->wait();
  EXPECT_EQ(Done->payload(), End - Begin);
  Queue->enqueueRead(*Y, HY.data(), N * 4, 0, /*Blocking=*/true);
  for (int64_t I = 0; I < N; ++I) {
    uint64_t Group = static_cast<uint64_t>(I) / 32;
    float Want = (Group >= Begin && Group < End) ? 5.0f : 0.0f;
    EXPECT_FLOAT_EQ(HY[static_cast<size_t>(I)], Want) << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, FlatRangeSweepTest,
    ::testing::Values(std::make_tuple<uint64_t, uint64_t>(0, 32),
                      std::make_tuple<uint64_t, uint64_t>(0, 1),
                      std::make_tuple<uint64_t, uint64_t>(31, 32),
                      std::make_tuple<uint64_t, uint64_t>(7, 23),
                      std::make_tuple<uint64_t, uint64_t>(16, 17)));

} // namespace
