//===- tests/paper_shapes_test.cpp - Paper-figure shape regressions --------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Locks in the qualitative shape of every paper table/figure so future
/// changes to the runtime or the cost model cannot silently break the
/// reproduction. Each test restates one claim from EXPERIMENTS.md as an
/// assertion; the bench harnesses print the same quantities for humans.
///
//===----------------------------------------------------------------------===//

#include "fluidicl/Runtime.h"
#include "support/Statistics.h"
#include "work/Driver.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace fcl;
using namespace fcl::work;

namespace {

double bestSplitPct(const Workload &W) {
  RunConfig C;
  double BestFrac = 0;
  oracleStaticPartition(W, C, 10, &BestFrac);
  return BestFrac * 100;
}

// --- Figure 2/3: split sweeps ------------------------------------------------

TEST(PaperShapeTest, Fig2AtaxBestOnGpuAloneSyrkInterior) {
  EXPECT_EQ(bestSplitPct(makeAtax(8192, 8192)), 100);
  double Syrk = bestSplitPct(makeSyrk(1024, 1024));
  EXPECT_GE(Syrk, 40);
  EXPECT_LE(Syrk, 80);
}

TEST(PaperShapeTest, Fig3SyrkOptimumShiftsTowardCpuWithSize) {
  double Small = bestSplitPct(makeSyrk(1024, 1024));
  double Large = bestSplitPct(makeSyrk(2048, 2048));
  EXPECT_GT(Small, Large); // ~60% -> ~40% GPU in the paper.
  EXPECT_NEAR(Small, 60, 15);
  EXPECT_NEAR(Large, 40, 15);
}

// --- Table 1: BICG per-kernel affinity ----------------------------------------

TEST(PaperShapeTest, Table1BicgKernelsPreferDifferentDevices) {
  Workload W = makeBicg(4096, 4096);
  RunConfig C;
  // Compare per-kernel preference through FluidiCL's observed flow.
  mcl::Context Ctx(C.M, C.Mode);
  fluidicl::Runtime RT(Ctx);
  runWorkload(RT, W, false);
  auto Stats = RT.kernelStats();
  ASSERT_EQ(Stats.size(), 2u);
  double Cpu1 = static_cast<double>(Stats[0].CpuGroupsExecuted) /
                static_cast<double>(Stats[0].TotalGroups);
  double Cpu2 = static_cast<double>(Stats[1].CpuGroupsExecuted) /
                static_cast<double>(Stats[1].TotalGroups);
  EXPECT_GT(Cpu1, 0.4); // Row-walk kernel flows CPU-ward.
  EXPECT_LT(Cpu2, 0.3); // Column-walk kernel flows GPU-ward.
}

// --- Figure 13: overall -------------------------------------------------------

struct OverallRow {
  std::string Name;
  double Cpu, Gpu, Fcl, Best;
};

const std::vector<OverallRow> &overall() {
  static const std::vector<OverallRow> Rows = [] {
    std::vector<OverallRow> Out;
    RunConfig C;
    for (const Workload &W : paperSuite()) {
      OverallRow R;
      R.Name = W.Name;
      R.Cpu = timeUnder(RuntimeKind::CpuOnly, W, C).toSeconds();
      R.Gpu = timeUnder(RuntimeKind::GpuOnly, W, C).toSeconds();
      R.Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
      R.Best = std::min(R.Cpu, R.Gpu);
      Out.push_back(R);
    }
    return Out;
  }();
  return Rows;
}

TEST(PaperShapeTest, Fig13WithinThreePercentOfBestEverywhere) {
  for (const OverallRow &R : overall())
    EXPECT_LE(R.Fcl, R.Best * 1.03) << R.Name;
}

TEST(PaperShapeTest, Fig13BeatsBestOnCooperativeBenchmarks) {
  for (const OverallRow &R : overall()) {
    if (R.Name.rfind("SYRK", 0) == 0 || R.Name.rfind("SYR2K", 0) == 0 ||
        R.Name.rfind("BICG", 0) == 0) {
      EXPECT_LT(R.Fcl, R.Best * 0.85) << R.Name;
    }
  }
}

TEST(PaperShapeTest, Fig13DeviceAffinitiesMatchPaper) {
  for (const OverallRow &R : overall()) {
    if (R.Name.rfind("GESUMMV", 0) == 0)
      EXPECT_LT(R.Cpu, R.Gpu) << R.Name; // CPU-best benchmark.
    else
      EXPECT_LT(R.Gpu, R.Cpu) << R.Name; // All others GPU-best.
  }
}

TEST(PaperShapeTest, Fig13GeomeansInPaperBallpark) {
  std::vector<double> VsGpu, VsCpu, VsBest;
  for (const OverallRow &R : overall()) {
    VsGpu.push_back(R.Gpu / R.Fcl);
    VsCpu.push_back(R.Cpu / R.Fcl);
    VsBest.push_back(R.Best / R.Fcl);
  }
  // Paper: 1.64x / 1.88x / 1.24x. Allow generous-but-meaningful bands.
  EXPECT_GT(geomean(VsGpu), 1.25);
  EXPECT_GT(geomean(VsCpu), 1.5);
  EXPECT_GT(geomean(VsBest), 1.15);
  EXPECT_LT(geomean(VsBest), 1.6);
}

TEST(PaperShapeTest, Fig13FluidiclBeatsOracleOnSyrkFamily) {
  RunConfig C;
  for (const Workload &W : {makeSyrk(1024, 1024), makeSyr2k(1536, 1536)}) {
    double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    double Oracle = oracleStaticPartition(W, C).toSeconds();
    EXPECT_LT(Fcl, Oracle) << W.Name;
  }
}

// --- Figure 14: SYRK input sweep -----------------------------------------------

TEST(PaperShapeTest, Fig14FluidiclBestAtEverySyrkSize) {
  RunConfig C;
  for (int64_t N : {512, 1024, 2048, 3072}) {
    Workload W = makeSyrk(N, N);
    double Cpu = timeUnder(RuntimeKind::CpuOnly, W, C).toSeconds();
    double Gpu = timeUnder(RuntimeKind::GpuOnly, W, C).toSeconds();
    double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    EXPECT_LT(Fcl, std::min(Cpu, Gpu)) << N;
  }
}

// --- Figure 15: optimization ablation -------------------------------------------

TEST(PaperShapeTest, Fig15NoUnrollSlowsComputeBoundBenchmarks) {
  for (const Workload &W :
       {makeCorr(2048, 2048), makeSyrk(1024, 1024), makeSyr2k(1536, 1536)}) {
    RunConfig C;
    double AllOpt = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    C.FclOpts.LoopUnroll = false;
    double NoUnroll = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    EXPECT_GT(NoUnroll, AllOpt * 1.3) << W.Name;
  }
}

TEST(PaperShapeTest, Fig15InLoopAbortsHelpSyrkFamily) {
  for (const Workload &W : {makeSyrk(1024, 1024), makeSyr2k(1536, 1536),
                            makeBicg(4096, 4096)}) {
    RunConfig C;
    double AllOpt = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    C.FclOpts.AbortPolicy = hw::AbortPolicyKind::AtStart;
    double AtStart = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    EXPECT_GT(AtStart, AllOpt * 1.05) << W.Name;
  }
}

// --- Table 3: online profiling ---------------------------------------------------

TEST(PaperShapeTest, Table3ProfilingSpeedsUpCorrSubstantially) {
  Workload W = makeCorr(2048, 2048);
  RunConfig C;
  double Base = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
  C.FclOpts.OnlineProfiling = true;
  double Pro = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
  // Paper: 1.9x; require at least 1.5x.
  EXPECT_GT(Base / Pro, 1.5);
}

// --- Figure 16: SOCL ---------------------------------------------------------------

TEST(PaperShapeTest, Fig16FluidiclBeatsEagerEverywhere) {
  RunConfig C;
  for (const Workload &W : paperSuite()) {
    double Eager = timeUnder(RuntimeKind::SoclEager, W, C).toSeconds();
    double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    EXPECT_LT(Fcl, Eager * 1.001) << W.Name;
  }
}

TEST(PaperShapeTest, Fig16FluidiclBeatsDmdaGeomeanWithoutCalibration) {
  RunConfig C;
  std::vector<double> VsDmda;
  for (const Workload &W : paperSuite()) {
    double Dmda = timeUnder(RuntimeKind::SoclDmda, W, C).toSeconds();
    double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    VsDmda.push_back(Dmda / Fcl);
  }
  EXPECT_GT(geomean(VsDmda), 1.1); // Paper: 1.26x.
}

// --- Figures 17/18: chunk sensitivity -------------------------------------------

TEST(PaperShapeTest, Fig17LargeChunksHurtCooperativeBenchmarks) {
  for (const Workload &W : {makeSyrk(1024, 1024), makeSyr2k(1536, 1536)}) {
    RunConfig C;
    double At2 = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    C.FclOpts.InitialChunkPct = 75;
    double At75 = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    EXPECT_GT(At75, At2 * 1.15) << W.Name;
  }
}

TEST(PaperShapeTest, Fig17DefaultWithinTenPercentOfBestChunk) {
  for (const Workload &W : paperSuite()) {
    RunConfig C;
    double At2 = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    double Best = At2;
    for (double Pct : {5.0, 10.0, 25.0, 50.0, 75.0}) {
      C.FclOpts.InitialChunkPct = Pct;
      Best = std::min(Best,
                      timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds());
    }
    EXPECT_LE(At2, Best * 1.10) << W.Name;
  }
}

TEST(PaperShapeTest, Fig18DefaultStepWithinTenPercentOfBest) {
  for (const Workload &W : paperSuite()) {
    RunConfig C;
    C.FclOpts.StepPct = 2;
    double At2 = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    double Best = At2;
    for (double Pct : {0.0, 5.0, 10.0, 25.0}) {
      C.FclOpts.StepPct = Pct;
      Best = std::min(Best,
                      timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds());
    }
    EXPECT_LE(At2, Best * 1.10) << W.Name;
  }
}

} // namespace
