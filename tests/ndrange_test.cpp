//===- tests/ndrange_test.cpp - NDRange / flattened-ID tests ---------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit and property-style tests for the flattened work-group numbering
/// (paper Figure 5) and the subkernel offset calculation (section 5.2 /
/// Figure 10).
///
//===----------------------------------------------------------------------===//

#include "kern/NDRange.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace fcl;
using namespace fcl::kern;

namespace {

TEST(NDRangeTest, OneDimensional) {
  NDRange R = NDRange::of1D(256, 32);
  EXPECT_EQ(R.dims(), 1);
  EXPECT_EQ(R.totalItems(), 256u);
  EXPECT_EQ(R.itemsPerGroup(), 32u);
  EXPECT_EQ(R.totalGroups(), 8u);
  EXPECT_EQ(R.numGroups().X, 8u);
  EXPECT_EQ(R.numGroups().Y, 1u);
}

TEST(NDRangeTest, TwoDimensional) {
  NDRange R = NDRange::of2D(64, 32, 16, 8);
  EXPECT_EQ(R.dims(), 2);
  EXPECT_EQ(R.totalGroups(), 4u * 4u);
  EXPECT_EQ(R.itemsPerGroup(), 128u);
}

TEST(NDRangeTest, ThreeDimensional) {
  NDRange R = NDRange::of3D(16, 16, 8, 4, 4, 2);
  EXPECT_EQ(R.dims(), 3);
  EXPECT_EQ(R.totalGroups(), 4u * 4u * 4u);
}

TEST(NDRangeDeathTest, RejectsNonDividingLocalSize) {
  EXPECT_DEATH(NDRange::of1D(100, 32), "divide");
  EXPECT_DEATH(NDRange::of2D(64, 30, 16, 8), "divide");
}

TEST(NDRangeDeathTest, RejectsZeroExtents) {
  EXPECT_DEATH(NDRange::of1D(0, 1), "positive");
}

// --- Flattened IDs (paper Figure 5) -----------------------------------------

TEST(FlattenTest, MatchesPaperFigure5) {
  // Figure 5: 5x5 grid of work-groups, (row, col) = (Y, X); flattened ID is
  // row * 5 + col (X fastest).
  Dim3 Groups{5, 5, 1};
  EXPECT_EQ(flattenGroupId(Dim3{0, 0, 0}, Groups), 0u);
  EXPECT_EQ(flattenGroupId(Dim3{4, 0, 0}, Groups), 4u);
  EXPECT_EQ(flattenGroupId(Dim3{0, 1, 0}, Groups), 5u);
  EXPECT_EQ(flattenGroupId(Dim3{2, 3, 0}, Groups), 17u);
  EXPECT_EQ(flattenGroupId(Dim3{4, 4, 0}, Groups), 24u);
}

TEST(FlattenTest, UnflattenInvertsKnownValues) {
  Dim3 Groups{5, 5, 1};
  Dim3 Id = unflattenGroupId(17, Groups);
  EXPECT_EQ(Id.X, 2u);
  EXPECT_EQ(Id.Y, 3u);
  EXPECT_EQ(Id.Z, 0u);
}

class FlattenRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FlattenRoundTripTest, RoundTripsEveryGroup) {
  auto [NX, NY, NZ] = GetParam();
  Dim3 Groups{static_cast<uint64_t>(NX), static_cast<uint64_t>(NY),
              static_cast<uint64_t>(NZ)};
  for (uint64_t Flat = 0; Flat < Groups.product(); ++Flat) {
    Dim3 Id = unflattenGroupId(Flat, Groups);
    EXPECT_EQ(flattenGroupId(Id, Groups), Flat);
  }
}

TEST_P(FlattenRoundTripTest, FlattenIsMonotoneInX) {
  auto [NX, NY, NZ] = GetParam();
  Dim3 Groups{static_cast<uint64_t>(NX), static_cast<uint64_t>(NY),
              static_cast<uint64_t>(NZ)};
  for (uint64_t X = 1; X < Groups.X; ++X)
    EXPECT_EQ(flattenGroupId(Dim3{X, 0, 0}, Groups),
              flattenGroupId(Dim3{X - 1, 0, 0}, Groups) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FlattenRoundTripTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(7, 1, 1),
                      std::make_tuple(5, 5, 1), std::make_tuple(3, 4, 5),
                      std::make_tuple(16, 2, 1), std::make_tuple(2, 2, 8)));

// --- Slice computation (paper section 5.2) ------------------------------------

TEST(SliceTest, OneDimensionalSliceIsExact) {
  NDRange R = NDRange::of1D(320, 32); // 10 groups.
  SliceLaunch S = computeSlice(R, 3, 7);
  EXPECT_EQ(S.GroupOffset.X, 3u);
  EXPECT_EQ(S.GroupCount.X, 4u);
  EXPECT_EQ(S.activeGroups(), 4u);
  EXPECT_EQ(S.launchedGroups(), 4u);
}

TEST(SliceTest, TwoDimensionalCoversWholeRows) {
  NDRange R = NDRange::of2D(160, 80, 32, 8); // 5 x 10 groups.
  // Flat range [7, 12): rows 1 and 2 (row length 5).
  SliceLaunch S = computeSlice(R, 7, 12);
  EXPECT_EQ(S.GroupOffset.X, 0u);
  EXPECT_EQ(S.GroupOffset.Y, 1u);
  EXPECT_EQ(S.GroupCount.X, 5u);
  EXPECT_EQ(S.GroupCount.Y, 2u);
  EXPECT_EQ(S.activeGroups(), 5u);
  EXPECT_GE(S.launchedGroups(), S.activeGroups());
}

TEST(SliceTest, LaunchedBoxContainsEveryActiveGroup) {
  NDRange R = NDRange::of2D(160, 80, 32, 8);
  Dim3 Groups = R.numGroups();
  Rng Rand(42);
  for (int Trial = 0; Trial < 200; ++Trial) {
    uint64_t Total = R.totalGroups();
    uint64_t Lo = Rand.nextBelow(Total);
    uint64_t Hi = Lo + 1 + Rand.nextBelow(Total - Lo);
    SliceLaunch S = computeSlice(R, Lo, Hi);
    EXPECT_EQ(S.StartFlat, Lo);
    EXPECT_EQ(S.EndFlat, Hi);
    for (uint64_t Flat = Lo; Flat < Hi; ++Flat) {
      Dim3 Id = unflattenGroupId(Flat, Groups);
      EXPECT_GE(Id.X, S.GroupOffset.X);
      EXPECT_LT(Id.X, S.GroupOffset.X + S.GroupCount.X);
      EXPECT_GE(Id.Y, S.GroupOffset.Y);
      EXPECT_LT(Id.Y, S.GroupOffset.Y + S.GroupCount.Y);
      EXPECT_GE(Id.Z, S.GroupOffset.Z);
      EXPECT_LT(Id.Z, S.GroupOffset.Z + S.GroupCount.Z);
    }
  }
}

TEST(SliceTest, ThreeDimensionalSinglePlane) {
  NDRange R = NDRange::of3D(8, 8, 8, 4, 4, 2); // 2 x 2 x 4 groups.
  // Groups per plane = 4; flat [4, 6) sits in plane 1.
  SliceLaunch S = computeSlice(R, 4, 6);
  EXPECT_EQ(S.GroupOffset.Z, 1u);
  EXPECT_EQ(S.GroupCount.Z, 1u);
}

TEST(SliceTest, ThreeDimensionalCrossPlane) {
  NDRange R = NDRange::of3D(8, 8, 8, 4, 4, 2);
  // Flat [3, 9) spans planes 0..2.
  SliceLaunch S = computeSlice(R, 3, 9);
  EXPECT_EQ(S.GroupOffset.Z, 0u);
  EXPECT_GE(S.GroupCount.Z, 3u);
  EXPECT_EQ(S.activeGroups(), 6u);
}

TEST(SliceTest, FullRangeSlice) {
  NDRange R = NDRange::of2D(64, 64, 32, 8);
  SliceLaunch S = computeSlice(R, 0, R.totalGroups());
  EXPECT_EQ(S.activeGroups(), R.totalGroups());
  EXPECT_EQ(S.launchedGroups(), R.totalGroups());
}

TEST(SliceDeathTest, RejectsBadRanges) {
  NDRange R = NDRange::of1D(320, 32);
  EXPECT_DEATH(computeSlice(R, 5, 5), "empty");
  EXPECT_DEATH(computeSlice(R, 0, 11), "exceeds");
}

} // namespace
