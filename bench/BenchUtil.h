//===- bench/BenchUtil.h - Shared bench-harness helpers ---------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure/per-table bench harnesses: number
/// formatting, normalized-time helpers, and CSV emission next to the
/// human-readable tables.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_BENCH_BENCHUTIL_H
#define FCL_BENCH_BENCHUTIL_H

#include "stats/Report.h"
#include "support/Csv.h"
#include "support/Format.h"
#include "support/SimTime.h"

#include <cstdio>
#include <string>
#include <vector>

namespace fcl {
namespace bench {

inline std::string fmtSeconds(Duration D) {
  return formatString("%.4f", D.toSeconds());
}

inline std::string fmtNorm(double V) { return formatString("%.3f", V); }

inline void writeCsv(const CsvWriter &Csv, const std::string &Path) {
  if (Csv.writeFile(Path))
    std::printf("(series written to %s)\n", Path.c_str());
  else
    std::printf("(warning: could not write %s)\n", Path.c_str());
}

/// Writes a figure's run reports as a stats sidecar ("<stem>.stats.json")
/// next to its CSV, so scripts/plot_results.py can draw device-split bars.
inline void writeStatsSidecar(const std::vector<stats::RunReport> &Reports,
                              const std::string &Stem) {
  std::string Path = Stem + ".stats.json";
  if (stats::writeReportsJson(Reports, Path))
    std::printf("(stats sidecar written to %s, %zu runs)\n", Path.c_str(),
                Reports.size());
  else
    std::printf("(warning: could not write %s)\n", Path.c_str());
}

inline void printHeader(const char *Id, const char *Title) {
  std::printf("==============================================================\n"
              "%s - %s\n"
              "==============================================================\n",
              Id, Title);
}

} // namespace bench
} // namespace fcl

#endif // FCL_BENCH_BENCHUTIL_H
