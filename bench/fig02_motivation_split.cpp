//===- bench/fig02_motivation_split.cpp - Paper Figure 2 -------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 2: normalized execution time of ATAX and SYRK as the percentage
/// of work statically allocated to the GPU varies from 0 to 100. The paper
/// uses this to show that the best split differs per application: ATAX is
/// fastest on the GPU alone while SYRK peaks at an interior split.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Table.h"
#include "work/Driver.h"

#include <algorithm>
#include <vector>

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Figure 2", "normalized time vs GPU work allocation "
                                 "(ATAX, SYRK)");

  RunConfig C;
  std::vector<Workload> Loads = {makeAtax(8192, 8192), makeSyrk(1024, 1024)};

  Table T({"GPU work %", "ATAX", "SYRK"});
  CsvWriter Csv({"gpu_pct", "atax_norm", "syrk_norm"});

  std::vector<std::vector<double>> Series(Loads.size());
  for (size_t L = 0; L < Loads.size(); ++L) {
    for (int Pct = 0; Pct <= 100; Pct += 10)
      Series[L].push_back(
          timeStaticPartition(Loads[L], Pct / 100.0, C).toSeconds());
  }
  std::vector<double> Best(Loads.size());
  for (size_t L = 0; L < Loads.size(); ++L)
    Best[L] = *std::min_element(Series[L].begin(), Series[L].end());

  for (int I = 0; I <= 10; ++I) {
    double A = Series[0][static_cast<size_t>(I)] / Best[0];
    double S = Series[1][static_cast<size_t>(I)] / Best[1];
    T.addRow({formatString("%d", I * 10), bench::fmtNorm(A),
              bench::fmtNorm(S)});
    Csv.addRow({formatString("%d", I * 10), bench::fmtNorm(A),
                bench::fmtNorm(S)});
  }
  T.print();

  size_t AtaxBest = static_cast<size_t>(
      std::min_element(Series[0].begin(), Series[0].end()) -
      Series[0].begin());
  size_t SyrkBest = static_cast<size_t>(
      std::min_element(Series[1].begin(), Series[1].end()) -
      Series[1].begin());
  std::printf("\nBest split: ATAX %zu%% GPU, SYRK %zu%% GPU\n"
              "Paper shape: ATAX fastest on GPU alone (100%%); SYRK fastest "
              "at an interior split (~60%%).\n",
              AtaxBest * 10, SyrkBest * 10);
  bench::writeCsv(Csv, "fig02_motivation_split.csv");
  return 0;
}
