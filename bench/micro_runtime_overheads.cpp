//===- bench/micro_runtime_overheads.cpp - Runtime microbenchmarks --------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks for the runtime substrate itself (an extension beyond
/// the paper's tables): discrete-event throughput, queue command overhead,
/// flattened-ID math, slice computation, the functional merge kernel, and
/// a full cooperative kernel execution. Measured through fcl::prof's
/// wall clock (best-of-N over fixed iteration batches) and emitted as a
/// BENCH_micro_overheads.json host-performance report, gated like the
/// fluidicl_bench scenarios by scripts/bench_check.py.
///
///   micro_runtime_overheads [--repeat=3] [--out=BENCH_micro_overheads.json]
///
//===----------------------------------------------------------------------===//

#include "fluidicl/Runtime.h"
#include "kern/NDRange.h"
#include "kern/Registry.h"
#include "mcl/CommandQueue.h"
#include "prof/BenchReport.h"
#include "prof/Profiler.h"
#include "sim/Simulator.h"
#include "support/ArgParser.h"
#include "work/Driver.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

using namespace fcl;

namespace {

/// Keeps the optimizer from discarding a computed value.
template <typename T> inline void doNotOptimize(T const &Value) {
  asm volatile("" : : "r,m"(Value) : "memory");
}

struct Micro {
  const char *Name;     // metric prefix, e.g. "sim_event_dispatch"
  uint64_t ItemsPerRun; // items processed by one Fn() call
  int Runs;             // Fn() calls per repeat (averaged)
  std::function<void()> Fn;
};

void benchSimulatorEventDispatch(std::vector<Micro> &Out) {
  Out.push_back({"sim_event_dispatch", 1024, 64, [] {
                   FCL_PROF_SCOPE("micro.sim_event_dispatch");
                   sim::Simulator Sim;
                   for (int I = 0; I < 1024; ++I)
                     Sim.scheduleAfter(Duration::nanoseconds(I), [] {});
                   Sim.run();
                 }});
}

void benchFlattenUnflatten(std::vector<Micro> &Out) {
  kern::Dim3 Groups{64, 32, 4};
  uint64_t Total = Groups.product();
  Out.push_back({"flatten_unflatten", Total, 16, [Groups, Total] {
                   FCL_PROF_SCOPE("micro.flatten_unflatten");
                   uint64_t Sum = 0;
                   for (uint64_t Flat = 0; Flat < Total; ++Flat) {
                     kern::Dim3 Id = kern::unflattenGroupId(Flat, Groups);
                     Sum += kern::flattenGroupId(Id, Groups);
                   }
                   doNotOptimize(Sum);
                 }});
}

void benchSliceComputation(std::vector<Micro> &Out) {
  kern::NDRange Range = kern::NDRange::of2D(2048, 2048, 32, 8);
  uint64_t Total = Range.totalGroups();
  uint64_t Slices = 0;
  for (uint64_t Lo = 0; Lo + 128 < Total; Lo += 997)
    ++Slices;
  Out.push_back({"slice_computation", Slices, 32, [Range, Total] {
                   FCL_PROF_SCOPE("micro.slice_computation");
                   for (uint64_t Lo = 0; Lo + 128 < Total; Lo += 997)
                     doNotOptimize(kern::computeSlice(Range, Lo, Lo + 128));
                 }});
}

void benchQueueWriteCommands(std::vector<Micro> &Out) {
  Out.push_back({"queue_write_commands", 256, 16, [] {
                   FCL_PROF_SCOPE("micro.queue_write_commands");
                   mcl::Context Ctx(hw::paperMachine(),
                                    mcl::ExecMode::TimingOnly);
                   auto Queue = Ctx.createQueue(Ctx.gpu());
                   auto Buf = Ctx.createBuffer(Ctx.gpu(), 4096);
                   for (int I = 0; I < 256; ++I)
                     Queue->enqueueWrite(*Buf, nullptr, 4096);
                   Queue->finish();
                 }});
}

void benchFunctionalMergeKernel(std::vector<Micro> &Out) {
  const uint64_t Bytes = 1 << 20;
  auto Cpu = std::make_shared<std::vector<std::byte>>(Bytes, std::byte{1});
  auto Gpu = std::make_shared<std::vector<std::byte>>(Bytes, std::byte{0});
  auto Orig = std::make_shared<std::vector<std::byte>>(Bytes, std::byte{0});
  uint64_t Items = Bytes / kern::MergeChunkBytes;
  kern::NDRange Range = kern::NDRange::of1D(Items, 64);
  Out.push_back(
      {"functional_merge_kernel", Bytes, 8, [=] {
         FCL_PROF_SCOPE("micro.functional_merge_kernel");
         const kern::KernelInfo &Merge =
             kern::Registry::builtin().get("md_merge_kernel");
         kern::ArgsView Args(std::vector<kern::ArgValue>{
             kern::ArgValue::buffer(Cpu->data(), Bytes),
             kern::ArgValue::buffer(Gpu->data(), Bytes),
             kern::ArgValue::buffer(Orig->data(), Bytes),
             kern::ArgValue::scalarInt(static_cast<int64_t>(Bytes)),
             kern::ArgValue::scalarInt(4)});
         kern::Dim3 Groups = Range.numGroups();
         for (uint64_t Flat = 0; Flat < Range.totalGroups(); ++Flat)
           kern::executeWorkGroup(Merge, Range,
                                  kern::unflattenGroupId(Flat, Groups), Args,
                                  0, Range.itemsPerGroup(), nullptr);
       }});
}

void benchCooperativeKernel(std::vector<Micro> &Out) {
  auto W = std::make_shared<work::Workload>(work::makeSyrk(512, 512));
  Out.push_back({"cooperative_kernel_timing_only", 1, 2, [W] {
                   FCL_PROF_SCOPE("micro.cooperative_kernel");
                   work::RunConfig C;
                   doNotOptimize(
                       work::timeUnder(work::RuntimeKind::FluidiCL, *W, C));
                 }});
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("micro_runtime_overheads",
                 "runtime-substrate microbenchmarks (BENCH_micro_overheads"
                 ".json)");
  Args.addOption("repeat", "best-of-N repeats per benchmark", "3");
  Args.addOption("out", "output report path",
                 "BENCH_micro_overheads.json");
  if (!Args.parse(Argc - 1, Argv + 1)) {
    std::fprintf(stderr, "error: %s\n%s", Args.error().c_str(),
                 Args.helpText().c_str());
    return 1;
  }
  if (Args.helpRequested()) {
    std::printf("%s", Args.helpText().c_str());
    return 0;
  }
  int Repeat = std::max<int>(1, static_cast<int>(Args.i64("repeat")));

  std::vector<Micro> Micros;
  benchSimulatorEventDispatch(Micros);
  benchFlattenUnflatten(Micros);
  benchSliceComputation(Micros);
  benchQueueWriteCommands(Micros);
  benchFunctionalMergeKernel(Micros);
  benchCooperativeKernel(Micros);

  prof::BenchReport Rep;
  Rep.Name = "micro_overheads";
  Rep.Suite = "micro";
  Rep.Meta["repeat"] = std::to_string(Repeat);

  // Profile every batch (the per-micro FCL_PROF_SCOPEs feed the report's
  // profile section); the scope cost is identical across batches, so
  // best-of-N comparisons between runs stay apples-to-apples.
  prof::Profiler &Prof = prof::Profiler::instance();
  Prof.reset();
  Prof.setEnabled(true);

  std::printf("%-32s %8s %14s %14s\n", "benchmark", "runs", "ns/op",
              "items/s");
  for (const Micro &M : Micros) {
    double BestNs = std::numeric_limits<double>::infinity();
    for (int R = 0; R < Repeat; ++R) {
      int64_t Start = prof::wallNowNs();
      for (int I = 0; I < M.Runs; ++I)
        M.Fn();
      double Ns = static_cast<double>(prof::wallNowNs() - Start) /
                  static_cast<double>(M.Runs);
      BestNs = std::min(BestNs, Ns);
    }
    double NsPerOp = BestNs / static_cast<double>(M.ItemsPerRun);
    double ItemsPerSec =
        NsPerOp > 0 ? 1e9 / NsPerOp : 0.0;
    Rep.Metrics[std::string(M.Name) + "_ns_per_op"] = NsPerOp;
    Rep.Metrics[std::string(M.Name) + "_items_per_sec"] = ItemsPerSec;
    std::printf("%-32s %8d %14.1f %14.0f\n", M.Name, M.Runs * Repeat,
                NsPerOp, ItemsPerSec);
  }

  Prof.setEnabled(false);
  Rep.attachProfile(Prof.snapshot(), /*N=*/16);
  Rep.PeakRss = prof::peakRssBytes();

  std::string Out = Args.str("out");
  if (!Rep.write(Out)) {
    std::fprintf(stderr, "error: cannot write %s\n", Out.c_str());
    return 1;
  }
  std::printf("report written to %s\n", Out.c_str());
  return 0;
}
