//===- bench/micro_runtime_overheads.cpp - Runtime microbenchmarks --------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks for the runtime substrate itself (an
/// extension beyond the paper's tables): discrete-event throughput, queue
/// command overhead, flattened-ID math, slice computation, the functional
/// merge kernel, and a full cooperative kernel execution.
///
//===----------------------------------------------------------------------===//

#include "fluidicl/Runtime.h"
#include "kern/NDRange.h"
#include "kern/Registry.h"
#include "mcl/CommandQueue.h"
#include "sim/Simulator.h"
#include "work/Driver.h"

#include <benchmark/benchmark.h>

using namespace fcl;

static void BM_SimulatorEventDispatch(benchmark::State &State) {
  for (auto _ : State) {
    sim::Simulator Sim;
    for (int I = 0; I < 1024; ++I)
      Sim.scheduleAfter(Duration::nanoseconds(I), [] {});
    Sim.run();
  }
  State.SetItemsProcessed(State.iterations() * 1024);
}
BENCHMARK(BM_SimulatorEventDispatch);

static void BM_FlattenUnflattenRoundTrip(benchmark::State &State) {
  kern::Dim3 Groups{64, 32, 4};
  uint64_t Total = Groups.product();
  uint64_t Sum = 0;
  for (auto _ : State) {
    for (uint64_t Flat = 0; Flat < Total; ++Flat) {
      kern::Dim3 Id = kern::unflattenGroupId(Flat, Groups);
      Sum += kern::flattenGroupId(Id, Groups);
    }
  }
  benchmark::DoNotOptimize(Sum);
  State.SetItemsProcessed(State.iterations() * Total);
}
BENCHMARK(BM_FlattenUnflattenRoundTrip);

static void BM_SliceComputation(benchmark::State &State) {
  kern::NDRange Range = kern::NDRange::of2D(2048, 2048, 32, 8);
  uint64_t Total = Range.totalGroups();
  for (auto _ : State) {
    for (uint64_t Lo = 0; Lo + 128 < Total; Lo += 997)
      benchmark::DoNotOptimize(kern::computeSlice(Range, Lo, Lo + 128));
  }
}
BENCHMARK(BM_SliceComputation);

static void BM_QueueWriteCommands(benchmark::State &State) {
  for (auto _ : State) {
    mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
    auto Queue = Ctx.createQueue(Ctx.gpu());
    auto Buf = Ctx.createBuffer(Ctx.gpu(), 4096);
    for (int I = 0; I < 256; ++I)
      Queue->enqueueWrite(*Buf, nullptr, 4096);
    Queue->finish();
  }
  State.SetItemsProcessed(State.iterations() * 256);
}
BENCHMARK(BM_QueueWriteCommands);

static void BM_FunctionalMergeKernel(benchmark::State &State) {
  const uint64_t Bytes = 1 << 20;
  std::vector<std::byte> Cpu(Bytes, std::byte{1});
  std::vector<std::byte> Gpu(Bytes, std::byte{0});
  std::vector<std::byte> Orig(Bytes, std::byte{0});
  const kern::KernelInfo &Merge =
      kern::Registry::builtin().get("md_merge_kernel");
  uint64_t Items = Bytes / kern::MergeChunkBytes;
  kern::NDRange Range = kern::NDRange::of1D(Items, 64);
  kern::ArgsView Args(std::vector<kern::ArgValue>{
      kern::ArgValue::buffer(Cpu.data(), Bytes),
      kern::ArgValue::buffer(Gpu.data(), Bytes),
      kern::ArgValue::buffer(Orig.data(), Bytes),
      kern::ArgValue::scalarInt(static_cast<int64_t>(Bytes)),
      kern::ArgValue::scalarInt(4)});
  for (auto _ : State) {
    kern::Dim3 Groups = Range.numGroups();
    for (uint64_t Flat = 0; Flat < Range.totalGroups(); ++Flat)
      kern::executeWorkGroup(Merge, Range,
                             kern::unflattenGroupId(Flat, Groups), Args, 0,
                             Range.itemsPerGroup(), nullptr);
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations() * Bytes));
}
BENCHMARK(BM_FunctionalMergeKernel);

static void BM_CooperativeKernelTimingOnly(benchmark::State &State) {
  work::Workload W = work::makeSyrk(512, 512);
  for (auto _ : State) {
    work::RunConfig C;
    benchmark::DoNotOptimize(
        work::timeUnder(work::RuntimeKind::FluidiCL, W, C));
  }
}
BENCHMARK(BM_CooperativeKernelTimingOnly);

BENCHMARK_MAIN();
