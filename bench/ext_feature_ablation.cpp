//===- bench/ext_feature_ablation.cpp - Section-6 feature ablation --------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Extension ablation: the paper's Figure 15 isolates the abort/unroll
/// optimizations; this harness isolates the *other* section-6 machinery -
/// the GPU buffer pool (6.1), data-location tracking (6.2), and CPU
/// work-group splitting (6.3) - by disabling each one individually and
/// reporting the slowdown relative to the fully optimized runtime.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "work/Driver.h"

#include <functional>

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Extension", "buffer pool / location tracking / "
                                  "work-group splitting ablation "
                                  "(normalized to all-on)");

  struct Case {
    const char *Name;
    std::function<void(fluidicl::Options &)> Mutate;
  };
  const Case Cases[] = {
      {"NoPool", [](fluidicl::Options &O) { O.BufferPool = false; }},
      {"NoLocation",
       [](fluidicl::Options &O) { O.DataLocationTracking = false; }},
      {"NoSplit",
       [](fluidicl::Options &O) { O.CpuWorkGroupSplit = false; }},
  };

  Table T({"Benchmark", "NoPool", "NoLocation", "NoSplit", "AllOn (s)"});
  CsvWriter Csv(
      {"benchmark", "nopool_s", "nolocation_s", "nosplit_s", "allon_s"});

  // A many-small-kernels stress application (40 chained SAXPYs over 8 MB
  // vectors): per-kernel overheads dominate here, which is exactly what
  // the pool and location tracking exist for.
  Workload Stress;
  Stress.Name = "SAXPYx40(2M)";
  Stress.Summary = "40 chained saxpy kernels";
  const int64_t StressN = 2 * 1024 * 1024;
  Stress.Buffers = {{"x", StressN * 4}, {"y", StressN * 4}};
  for (int I = 0; I < 40; ++I)
    Stress.Calls.push_back(
        {"saxpy", kern::NDRange::of1D(static_cast<uint64_t>(StressN), 32),
         {runtime::KArg::buffer(0), runtime::KArg::buffer(1),
          runtime::KArg::f64(0.999), runtime::KArg::i64(StressN)}});
  Stress.ResultBuffers = {1};

  std::vector<Workload> Loads = paperSuite();
  Loads.push_back(Stress);

  std::vector<double> Geo[3];
  for (const Workload &W : Loads) {
    RunConfig C;
    double AllOn = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    std::vector<std::string> Row = {W.Name};
    std::vector<std::string> CsvRow = {W.Name};
    for (int I = 0; I < 3; ++I) {
      RunConfig Ablated;
      Cases[I].Mutate(Ablated.FclOpts);
      double Time = timeUnder(RuntimeKind::FluidiCL, W, Ablated).toSeconds();
      Row.push_back(bench::fmtNorm(Time / AllOn));
      CsvRow.push_back(formatString("%.6f", Time));
      Geo[I].push_back(Time / AllOn);
    }
    Row.push_back(formatString("%.4f", AllOn));
    CsvRow.push_back(formatString("%.6f", AllOn));
    T.addRow(Row);
    Csv.addRow(CsvRow);
  }
  T.print();
  std::printf("\nGeomean slowdowns: no buffer pool %.3fx, no location "
              "tracking %.3fx, no work-group splitting %.3fx.\n"
              "The pool matters on multi-kernel apps (CORR recreates the "
              "orig/cpu-data buffers per kernel), location tracking on "
              "CPU-final results, splitting on sub-unit tails.\n",
              geomean(Geo[0]), geomean(Geo[1]), geomean(Geo[2]));
  bench::writeCsv(Csv, "ext_feature_ablation.csv");
  return 0;
}
