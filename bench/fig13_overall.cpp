//===- bench/fig13_overall.cpp - Paper Figure 13 (overall results) --------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The headline figure ("Overall performance of FluidiCL", printed as
/// Figure 3 in the results section): total running time of every benchmark
/// under CPU-only, GPU-only, FluidiCL and OracleSP, normalized to the
/// better single device, plus the geomean speedups the abstract quotes
/// (1.64x over the GPU, 1.88x over the CPU, within 3% of the best device,
/// best case 1.4x over the better device).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "work/Driver.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Figure 13", "overall performance (normalized to best "
                                  "single device; lower is better)");

  RunConfig C;
  Table T({"Benchmark", "CPU", "GPU", "FluidiCL", "OracleSP", "best split"});
  CsvWriter Csv({"benchmark", "cpu_s", "gpu_s", "fluidicl_s", "oraclesp_s"});

  std::vector<double> VsGpu, VsCpu, VsBest;
  std::vector<stats::RunReport> Reports;
  for (const Workload &W : paperSuite()) {
    double Cpu = timeUnder(RuntimeKind::CpuOnly, W, C).toSeconds();
    double Gpu = timeUnder(RuntimeKind::GpuOnly, W, C).toSeconds();
    Reports.push_back(reportUnder(RuntimeKind::FluidiCL, W, C));
    double Fcl = Reports.back().Wall.toSeconds();
    double Frac = 0;
    double Osp = oracleStaticPartition(W, C, 10, &Frac).toSeconds();
    double Best = std::min(Cpu, Gpu);
    T.addRow({W.Name, bench::fmtNorm(Cpu / Best), bench::fmtNorm(Gpu / Best),
              bench::fmtNorm(Fcl / Best), bench::fmtNorm(Osp / Best),
              formatString("%.0f%% GPU", Frac * 100)});
    Csv.addRow({W.Name, formatString("%.6f", Cpu),
                formatString("%.6f", Gpu), formatString("%.6f", Fcl),
                formatString("%.6f", Osp)});
    VsGpu.push_back(Gpu / Fcl);
    VsCpu.push_back(Cpu / Fcl);
    VsBest.push_back(Best / Fcl);
  }
  T.print();

  std::printf("\nGeomean FluidiCL speedup: %.2fx over GPU-only (paper: "
              "1.64x), %.2fx over CPU-only (paper: 1.88x),\n"
              "%.2fx over the better device (paper: 1.24x, never more than "
              "3%% behind it).\n",
              geomean(VsGpu), geomean(VsCpu), geomean(VsBest));
  bench::writeCsv(Csv, "fig13_overall.csv");
  bench::writeStatsSidecar(Reports, "fig13_overall");
  return 0;
}
