//===- bench/fig14_syrk_inputs.cpp - Paper Figure 14 (SYRK input sweep) ---===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// "Performance of SYRK on different inputs": FluidiCL adapts across input
/// sizes without retuning, beating both single devices at every size
/// (paper: geomean 1.4x over the better device across the sweep).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "work/Driver.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Figure 14", "SYRK across input sizes (normalized to "
                                  "best single device)");

  RunConfig C;
  Table T({"Input", "CPU", "GPU", "FluidiCL"});
  CsvWriter Csv({"n", "cpu_s", "gpu_s", "fluidicl_s"});

  std::vector<double> VsBest;
  for (int64_t N : {512, 1024, 1536, 2048, 2560, 3072}) {
    Workload W = makeSyrk(N, N);
    double Cpu = timeUnder(RuntimeKind::CpuOnly, W, C).toSeconds();
    double Gpu = timeUnder(RuntimeKind::GpuOnly, W, C).toSeconds();
    double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    double Best = std::min(Cpu, Gpu);
    T.addRow({formatString("(%lld,%lld)", static_cast<long long>(N),
                           static_cast<long long>(N)),
              bench::fmtNorm(Cpu / Best), bench::fmtNorm(Gpu / Best),
              bench::fmtNorm(Fcl / Best)});
    Csv.addRow({formatString("%lld", static_cast<long long>(N)),
                formatString("%.6f", Cpu), formatString("%.6f", Gpu),
                formatString("%.6f", Fcl)});
    VsBest.push_back(Best / Fcl);
  }
  T.print();
  std::printf("\nGeomean FluidiCL speedup over the better device across the "
              "sweep: %.2fx (paper: 1.4x).\n",
              geomean(VsBest));
  bench::writeCsv(Csv, "fig14_syrk_inputs.csv");
  return 0;
}
