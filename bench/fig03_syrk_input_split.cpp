//===- bench/fig03_syrk_input_split.cpp - Paper Figure 3 -------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 3: SYRK's best static split moves with the input size - the
/// smaller input prefers more GPU work (~60/40) while the larger input
/// prefers more CPU work (~40/60) - so even a hand-tuned static partition
/// cannot be right for every input.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Table.h"
#include "work/Driver.h"

#include <algorithm>
#include <vector>

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Figure 3", "SYRK best split vs input size");

  RunConfig C;
  std::vector<Workload> Loads = {makeSyrk(1024, 1024), makeSyrk(2048, 2048)};
  const char *Names[] = {"SYRK(small)", "SYRK(large)"};

  Table T({"GPU work %", "SYRK(small)", "SYRK(large)"});
  CsvWriter Csv({"gpu_pct", "syrk_small_norm", "syrk_large_norm"});

  std::vector<std::vector<double>> Series(Loads.size());
  for (size_t L = 0; L < Loads.size(); ++L)
    for (int Pct = 0; Pct <= 100; Pct += 10)
      Series[L].push_back(
          timeStaticPartition(Loads[L], Pct / 100.0, C).toSeconds());

  std::vector<double> Best(Loads.size());
  for (size_t L = 0; L < Loads.size(); ++L)
    Best[L] = *std::min_element(Series[L].begin(), Series[L].end());

  for (int I = 0; I <= 10; ++I) {
    T.addRow({formatString("%d", I * 10),
              bench::fmtNorm(Series[0][static_cast<size_t>(I)] / Best[0]),
              bench::fmtNorm(Series[1][static_cast<size_t>(I)] / Best[1])});
    Csv.addRow({formatString("%d", I * 10),
                bench::fmtNorm(Series[0][static_cast<size_t>(I)] / Best[0]),
                bench::fmtNorm(Series[1][static_cast<size_t>(I)] / Best[1])});
  }
  T.print();

  for (size_t L = 0; L < Loads.size(); ++L) {
    size_t BestIdx = static_cast<size_t>(
        std::min_element(Series[L].begin(), Series[L].end()) -
        Series[L].begin());
    std::printf("%s best split: %zu%% GPU\n", Names[L], BestIdx * 10);
  }
  std::printf("Paper shape: ~60%% GPU for the small input, ~40%% GPU for "
              "the large input.\n");
  bench::writeCsv(Csv, "fig03_syrk_input_split.csv");
  return 0;
}
