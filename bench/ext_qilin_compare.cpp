//===- bench/ext_qilin_compare.cpp - Profiling-based splitter comparison --===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Extension comparison against the *other* class of related work the
/// paper positions itself against: Qilin-style adaptive mapping, which
/// needs a training run and then statically splits each kernel at the
/// trained rate-proportional fraction. Three scenarios:
///
///   1. trained on the exact input           - the scheme's best case;
///   2. trained on a different input size    - SYRK's optimum moves with
///      size (paper Figure 3), so the stale model mis-splits;
///   3. trained unloaded, run with a loaded CPU - the model cannot see
///      load, FluidiCL re-races every status message.
///
/// FluidiCL needs no training at all in any scenario.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "work/Driver.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Extension", "FluidiCL vs Qilin-style trained "
                                  "splitter");

  // Scenario 1: trained on the exact input.
  {
    Table T({"Benchmark", "ProfiledSplit (s)", "FluidiCL (s)",
             "FluidiCL speedup"});
    std::vector<double> Speedups;
    RunConfig C;
    for (const Workload &W : paperSuite()) {
      double Qilin = timeProfiledSplit(W, W, C).toSeconds();
      double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
      T.addRow({W.Name, formatString("%.4f", Qilin),
                formatString("%.4f", Fcl),
                formatString("%.2fx", Qilin / Fcl)});
      Speedups.push_back(Qilin / Fcl);
    }
    std::printf("-- trained on the exact input (Qilin's best case):\n");
    T.print();
    std::printf("geomean FluidiCL speedup: %.2fx (without any training "
                "run)\n\n",
                geomean(Speedups));
  }

  // Scenario 2: stale training input (SYRK small <-> large).
  {
    RunConfig C;
    Workload Small = makeSyrk(1024, 1024);
    Workload Large = makeSyrk(2048, 2048);
    double Matched = timeProfiledSplit(Large, Large, C).toSeconds();
    double Stale = timeProfiledSplit(Large, Small, C).toSeconds();
    double Fcl = timeUnder(RuntimeKind::FluidiCL, Large, C).toSeconds();
    std::printf("-- SYRK(2048) with a model trained on SYRK(1024):\n"
                "   ProfiledSplit matched-input %.4fs, stale-input %.4fs "
                "(%.0f%% worse), FluidiCL %.4fs.\n\n",
                Matched, Stale, (Stale / Matched - 1) * 100, Fcl);
  }

  // Scenario 3: external CPU load the training never saw.
  {
    RunConfig C;
    Workload W = makeSyrk(1024, 1024);
    RunConfig Loaded = C;
    Loaded.M.CpuLoadFactor = 4.0;
    // Train on the unloaded machine, run on the loaded one.
    runtime::SplitModel Model;
    trainSplitModel(W, C.M, Model);
    mcl::Context Ctx(Loaded.M, Loaded.Mode);
    runtime::ProfiledSplitRuntime RT(Ctx, Model);
    double Qilin = runWorkload(RT, W, false).Total.toSeconds();
    double Fcl = timeUnder(RuntimeKind::FluidiCL, W, Loaded).toSeconds();
    std::printf("-- SYRK(1024) with the CPU 4x loaded (training saw an "
                "idle machine):\n   ProfiledSplit %.4fs, FluidiCL %.4fs "
                "(%.2fx faster).\n",
                Qilin, Fcl, Qilin / Fcl);
  }
  return 0;
}
