//===- bench/table2_benchmarks.cpp - Paper Table 2 -------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Table 2: the benchmark inventory - input sizes, kernel counts, and
/// work-group counts per kernel for the six Polybench applications (sizes
/// reconstructed from the OCR-damaged paper text; see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Table.h"
#include "work/Workload.h"

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Table 2", "benchmarks used in this work");

  Table T({"Benchmark", "Buffers (MB)", "Kernels", "Work-groups"});
  CsvWriter Csv({"benchmark", "buffer_mb", "kernels", "workgroups"});

  for (const Workload &W : paperSuite()) {
    uint64_t Bytes = 0;
    for (const BufferSpec &B : W.Buffers)
      Bytes += B.Bytes;
    std::string Groups;
    for (uint64_t G : W.groupCounts()) {
      if (!Groups.empty())
        Groups += ", ";
      Groups += formatString("%llu", static_cast<unsigned long long>(G));
    }
    T.addRow({W.Name, formatString("%.1f", Bytes / 1048576.0),
              formatString("%zu", W.Calls.size()), Groups});
    Csv.addRow({W.Name, formatString("%.1f", Bytes / 1048576.0),
                formatString("%zu", W.Calls.size()), Groups});
  }
  T.print();
  bench::writeCsv(Csv, "table2_benchmarks.csv");
  return 0;
}
