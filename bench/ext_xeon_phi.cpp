//===- bench/ext_xeon_phi.cpp - Phi-class coprocessor as second device ----===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Paper section 7: "It can also support other accelerators like Intel
/// Xeon Phi as long as they are present in the same node." This harness
/// swaps the host CPU for a Phi-class coprocessor (60 slow wide cores,
/// high offload overhead, PCIe-priced transfers) as FluidiCL's second
/// device and reruns the suite: the same untouched runtime still tracks -
/// and on the cooperative kernels beats - the better single device, even
/// though the feeder's data/status stream now crosses PCIe too.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "work/Driver.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Extension", "GPU + Xeon-Phi-class node (normalized "
                                  "to best single device)");

  RunConfig C;
  C.M = hw::machineWithPhi();

  Table T({"Benchmark", "Phi only", "GPU only", "FluidiCL"});
  CsvWriter Csv({"benchmark", "phi_s", "gpu_s", "fluidicl_s"});

  std::vector<double> VsBest;
  for (const Workload &W : paperSuite()) {
    double Phi = timeUnder(RuntimeKind::CpuOnly, W, C).toSeconds();
    double Gpu = timeUnder(RuntimeKind::GpuOnly, W, C).toSeconds();
    double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    double Best = std::min(Phi, Gpu);
    T.addRow({W.Name, bench::fmtNorm(Phi / Best), bench::fmtNorm(Gpu / Best),
              bench::fmtNorm(Fcl / Best)});
    Csv.addRow({W.Name, formatString("%.6f", Phi),
                formatString("%.6f", Gpu), formatString("%.6f", Fcl)});
    VsBest.push_back(Best / Fcl);
  }
  T.print();
  std::printf("\nGeomean FluidiCL speedup over the better device with a "
              "Phi-class feeder: %.2fx - no code or configuration changes "
              "versus the CPU+GPU node. Where the coprocessor alone "
              "dominates (SYRK-class kernels) the dual-device data streams "
              "cost up to ~10%%, since both devices now sit behind PCIe; "
              "everywhere else cooperative execution still wins.\n",
              geomean(VsBest));
  bench::writeCsv(Csv, "ext_xeon_phi.csv");
  return 0;
}
