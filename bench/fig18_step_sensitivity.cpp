//===- bench/fig18_step_sensitivity.cpp - Paper Figure 18 -----------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// "Sensitivity to step size": FluidiCL with the chunk growth step varied
/// (initial chunk fixed at 2%), normalized to the paper's 2% default. A 0%
/// step means every CPU subkernel keeps the initial 2% allocation. Paper
/// shape: the default is within ~10% of the best at every step size, with
/// the worst degradation around 30%.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Table.h"
#include "work/Driver.h"

#include <vector>

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Figure 18", "chunk step-size sensitivity "
                                  "(normalized to 2%)");

  const std::vector<double> Steps = {0, 2, 5, 10, 25, 50, 90};
  std::vector<std::string> Header = {"Benchmark"};
  std::vector<std::string> CsvHeader = {"benchmark"};
  for (double Pct : Steps) {
    Header.push_back(formatString("%.0f%%", Pct));
    CsvHeader.push_back(formatString("step_%.0f", Pct));
  }
  Table T(Header);
  CsvWriter Csv(CsvHeader);

  for (const Workload &W : paperSuite()) {
    std::vector<std::string> Row = {W.Name}, CsvRow = {W.Name};
    double Base = 0;
    for (double Pct : Steps) {
      RunConfig C;
      C.FclOpts.StepPct = Pct;
      double Time = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
      if (Pct == 2)
        Base = Time;
      CsvRow.push_back(formatString("%.6f", Time));
      Row.push_back(formatString("%.6f", Time));
    }
    // Normalize after the 2% column is known.
    for (size_t I = 1; I < Row.size(); ++I)
      Row[I] = bench::fmtNorm(std::stod(Row[I]) / Base);
    T.addRow(Row);
    Csv.addRow(CsvRow);
  }
  T.print();
  std::printf("\nPaper shape: the 2%% step stays within ~10%% of the best "
              "step size on every benchmark.\n");
  bench::writeCsv(Csv, "fig18_step_sensitivity.csv");
  return 0;
}
