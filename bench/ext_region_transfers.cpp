//===- bench/ext_region_transfers.cpp - Region-transfer extension ---------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Extension ablation (not in the paper): FluidiCL streams *whole* out
/// buffers to the GPU after every CPU subkernel. For kernels whose flat
/// work-group ranges write row-contiguous output bands, the RegionTransfers
/// option sends only each subkernel's band. This harness measures the hd
/// traffic and total-time effect across the suite - quantifying one of the
/// paper's implicit costs and an obvious future-work optimization.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "fluidicl/Runtime.h"
#include "support/Table.h"
#include "work/Driver.h"

using namespace fcl;
using namespace fcl::work;

namespace {

struct Measure {
  double Seconds = 0;
  uint64_t HdBytes = 0;
};

Measure run(const Workload &W, bool Regions) {
  fluidicl::Options Opts;
  Opts.RegionTransfers = Regions;
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  fluidicl::Runtime RT(Ctx, Opts);
  Measure M;
  M.Seconds = runWorkload(RT, W, false).Total.toSeconds();
  for (const fluidicl::KernelStats &S : RT.kernelStats())
    M.HdBytes += S.HdBytesSent;
  return M;
}

} // namespace

int main() {
  bench::printHeader("Extension", "region transfers vs whole-buffer hd "
                                  "streaming (paper default = whole)");

  Table T({"Benchmark", "hd MB (whole)", "hd MB (regions)", "traffic",
           "time (whole)", "time (regions)", "speedup"});
  CsvWriter Csv({"benchmark", "hd_bytes_whole", "hd_bytes_regions",
                 "time_whole_s", "time_regions_s"});

  std::vector<Workload> Loads = extendedSuite();
  for (const Workload &W : Loads) {
    Measure Whole = run(W, false);
    Measure Regions = run(W, true);
    double TrafficRatio =
        Whole.HdBytes
            ? static_cast<double>(Regions.HdBytes) /
                  static_cast<double>(Whole.HdBytes)
            : 1.0;
    T.addRow({W.Name, formatString("%.1f", Whole.HdBytes / 1048576.0),
              formatString("%.1f", Regions.HdBytes / 1048576.0),
              formatString("%.0f%%", TrafficRatio * 100.0),
              formatString("%.4f", Whole.Seconds),
              formatString("%.4f", Regions.Seconds),
              formatString("%.2fx", Whole.Seconds / Regions.Seconds)});
    Csv.addRow({W.Name,
                formatString("%llu",
                             static_cast<unsigned long long>(Whole.HdBytes)),
                formatString(
                    "%llu", static_cast<unsigned long long>(Regions.HdBytes)),
                formatString("%.6f", Whole.Seconds),
                formatString("%.6f", Regions.Seconds)});
  }
  T.print();
  std::printf("\nRow-contiguous kernels (SYRK/SYR2K/GEMM/...) ship a small "
              "fraction of the paper's whole-buffer traffic; kernels with "
              "scattered writes (CORR's correlation kernel) fall back to "
              "whole-buffer streaming automatically.\n");
  bench::writeCsv(Csv, "ext_region_transfers.csv");
  return 0;
}
