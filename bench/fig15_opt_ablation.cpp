//===- bench/fig15_opt_ablation.cpp - Paper Figure 15 (optimizations) -----===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// "Effect of work-group abort inside loops and loop unrolling": three
/// FluidiCL configurations per benchmark, normalized to the fully
/// optimized run -
///   NoAbortUnroll: abort checks only at work-group start (section 6.4 off)
///   NoUnroll:      in-loop checks but no manual unrolling (section 6.5 off)
///   AllOpt:        both optimizations on (the Figure 13 configuration).
/// Paper shape: NoAbortUnroll loses on benchmarks where early termination
/// matters (CORR, SYRK, SYR2K); NoUnroll is slower than AllOpt on five of
/// six benchmarks because the un-unrolled abort checks throttle the GPU.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "work/Driver.h"

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Figure 15", "abort-in-loops / loop-unrolling ablation "
                                  "(normalized to AllOpt)");

  Table T({"Benchmark", "NoAbortUnroll", "NoUnroll", "AllOpt"});
  CsvWriter Csv({"benchmark", "noabortunroll", "nounroll", "allopt"});

  std::vector<double> NoAbortNorm, NoUnrollNorm;
  for (const Workload &W : paperSuite()) {
    RunConfig C;
    C.FclOpts.AbortPolicy = hw::AbortPolicyKind::AtStart;
    double NoAbort = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();

    C.FclOpts.AbortPolicy = hw::AbortPolicyKind::InLoop;
    C.FclOpts.LoopUnroll = false;
    double NoUnroll = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();

    C.FclOpts.LoopUnroll = true;
    double AllOpt = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();

    T.addRow({W.Name, bench::fmtNorm(NoAbort / AllOpt),
              bench::fmtNorm(NoUnroll / AllOpt), bench::fmtNorm(1.0)});
    Csv.addRow({W.Name, formatString("%.6f", NoAbort),
                formatString("%.6f", NoUnroll),
                formatString("%.6f", AllOpt)});
    NoAbortNorm.push_back(NoAbort / AllOpt);
    NoUnrollNorm.push_back(NoUnroll / AllOpt);
  }
  T.print();
  std::printf("\nGeomean slowdown without in-loop aborts: %.3fx; without "
              "unrolling: %.3fx (AllOpt = 1).\n",
              geomean(NoAbortNorm), geomean(NoUnrollNorm));
  bench::writeCsv(Csv, "fig15_opt_ablation.csv");
  return 0;
}
