//===- bench/fig17_chunk_sensitivity.cpp - Paper Figure 17 ----------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// "Sensitivity to initial chunk size": FluidiCL with the initial CPU
/// chunk varied (step fixed at 2%), normalized to the paper's 2% default.
/// Paper shape: large initial chunks hurt cooperative benchmarks (BICG,
/// SYRK, SYR2K) because CPU results reach the GPU too infrequently, while
/// CPU-bound GESUMMV prefers larger chunks (fewer subkernel launches); the
/// 2% default stays within a few percent of the best everywhere.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Table.h"
#include "work/Driver.h"

#include <vector>

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Figure 17", "initial chunk-size sensitivity "
                                  "(normalized to 2%)");

  const std::vector<double> Chunks = {2, 5, 10, 15, 25, 50, 75};
  std::vector<std::string> Header = {"Benchmark"};
  std::vector<std::string> CsvHeader = {"benchmark"};
  for (double Pct : Chunks) {
    Header.push_back(formatString("%.0f%%", Pct));
    CsvHeader.push_back(formatString("chunk_%.0f", Pct));
  }
  Table T(Header);
  CsvWriter Csv(CsvHeader);

  for (const Workload &W : paperSuite()) {
    std::vector<std::string> Row = {W.Name}, CsvRow = {W.Name};
    double Base = 0;
    for (double Pct : Chunks) {
      RunConfig C;
      C.FclOpts.InitialChunkPct = Pct;
      double Time = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
      if (Pct == Chunks.front())
        Base = Time;
      Row.push_back(bench::fmtNorm(Time / Base));
      CsvRow.push_back(formatString("%.6f", Time));
    }
    T.addRow(Row);
    Csv.addRow(CsvRow);
  }
  T.print();
  std::printf("\nPaper shape: >2%% initial chunks degrade BICG/SYRK/SYR2K; "
              "GESUMMV prefers larger chunks; 2%% is within a few percent "
              "of the best everywhere.\n");
  bench::writeCsv(Csv, "fig17_chunk_sensitivity.csv");
  return 0;
}
