//===- bench/ext_portability.cpp - Cross-machine portability --------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Extension experiment for the paper's portability claim ("FluidiCL ...
/// is completely portable across different machines" - no training or
/// profiling ties it to one device pair). The identical, untuned FluidiCL
/// configuration runs the suite on two very different simulated nodes -
/// the paper's workstation (discrete Tesla-class GPU over PCIe) and a
/// laptop-class node (slow integrated GPU, weak CPU, on-die link) - and
/// must track the best single device on both, even though *which* device
/// is best changes between machines.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "work/Driver.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Extension", "portability: identical FluidiCL config "
                                  "on two machines (normalized to best "
                                  "device per machine)");

  struct MachineCase {
    const char *Name;
    hw::Machine M;
  };
  const MachineCase Machines[] = {
      {"workstation (paper)", hw::paperMachine()},
      {"laptop (iGPU)", hw::laptopMachine()},
  };

  Table T({"Benchmark", "ws best dev", "ws FluidiCL", "laptop best dev",
           "laptop FluidiCL"});
  CsvWriter Csv({"benchmark", "machine", "cpu_s", "gpu_s", "fluidicl_s"});

  std::vector<double> VsBest[2];
  std::vector<std::vector<std::string>> Rows;
  for (const Workload &W : paperSuite()) {
    std::vector<std::string> Row = {W.Name};
    for (int MI = 0; MI < 2; ++MI) {
      RunConfig C;
      C.M = Machines[MI].M;
      double Cpu = timeUnder(RuntimeKind::CpuOnly, W, C).toSeconds();
      double Gpu = timeUnder(RuntimeKind::GpuOnly, W, C).toSeconds();
      double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
      double Best = std::min(Cpu, Gpu);
      Row.push_back(Cpu < Gpu ? "CPU" : "GPU");
      Row.push_back(bench::fmtNorm(Fcl / Best));
      VsBest[MI].push_back(Best / Fcl);
      Csv.addRow({W.Name, Machines[MI].Name, formatString("%.6f", Cpu),
                  formatString("%.6f", Gpu), formatString("%.6f", Fcl)});
    }
    T.addRow(Row);
  }
  T.print();
  std::printf("\nGeomean FluidiCL speedup over the better device: %.2fx on "
              "the workstation, %.2fx on the laptop - same binary, same "
              "2%%/2%% configuration, zero retuning.\n",
              geomean(VsBest[0]), geomean(VsBest[1]));
  bench::writeCsv(Csv, "ext_portability.csv");
  return 0;
}
