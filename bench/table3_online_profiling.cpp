//===- bench/table3_online_profiling.cpp - Paper Table 3 -------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Table 3: CORR given a choice of kernels. A hand-optimized CPU variant of
/// the correlation kernel (loops interchanged for cache locality) is
/// registered next to the baseline; FluidiCL's online profiling (section
/// 6.6) measures both on early subkernels and picks the winner, making the
/// whole application ~1.9x faster than FluidiCL with the baseline kernel.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "fluidicl/Runtime.h"
#include "support/Table.h"
#include "work/Driver.h"

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Table 3", "CORR with a choice of kernels (total "
                                "running time, s)");

  Workload W = makeCorr(2048, 2048);
  RunConfig C;

  double Gpu = timeUnder(RuntimeKind::GpuOnly, W, C).toSeconds();
  double Cpu = timeUnder(RuntimeKind::CpuOnly, W, C).toSeconds();
  double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();

  std::string Chosen;
  double FclPro = 0;
  {
    C.FclOpts.OnlineProfiling = true;
    mcl::Context Ctx(C.M, C.Mode);
    fluidicl::Runtime RT(Ctx, C.FclOpts);
    FclPro = runWorkload(RT, W, false).Total.toSeconds();
    for (const fluidicl::KernelStats &S : RT.kernelStats())
      if (S.KernelName == "corr_corr_kernel")
        Chosen = S.CpuKernelUsed;
  }

  Table T({"Configuration", "Time (s)"});
  T.addRow({"GPU only", formatString("%.4f", Gpu)});
  T.addRow({"CPU only", formatString("%.4f", Cpu)});
  T.addRow({"FluidiCL", formatString("%.4f", Fcl)});
  T.addRow({"FluidiCL + online profiling (FCL+Pro)",
            formatString("%.4f", FclPro)});
  T.print();

  CsvWriter Csv({"config", "time_s"});
  Csv.addRow({"gpu", formatString("%.6f", Gpu)});
  Csv.addRow({"cpu", formatString("%.6f", Cpu)});
  Csv.addRow({"fluidicl", formatString("%.6f", Fcl)});
  Csv.addRow({"fcl_pro", formatString("%.6f", FclPro)});

  std::printf("\nOnline profiling chose '%s' for the CPU side.\n"
              "FCL+Pro is %.2fx faster than FluidiCL with the baseline "
              "kernel (paper: 1.9x).\n",
              Chosen.c_str(), Fcl / FclPro);
  bench::writeCsv(Csv, "table3_online_profiling.csv");
  return 0;
}
