//===- bench/fig16_socl_compare.cpp - Paper Figure 16 (SOCL) --------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// "Comparison with SOCL": FluidiCL against the StarPU/SOCL-style task
/// scheduler with the default eager policy and with the calibrated dmda
/// policy (10 calibration runs first, as the paper requires). Paper shape:
/// FluidiCL beats eager everywhere (geomean 2.67x, SYRK >4x), beats dmda
/// on most benchmarks (geomean 1.26x, SYRK >2.4x) and comes within ~9% of
/// dmda on ATAX and CORR - all WITHOUT any calibration.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "work/Driver.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Figure 16", "comparison with SOCL (normalized to best "
                                  "single device)");

  RunConfig C;
  Table T({"Benchmark", "CPU", "GPU", "SOCLDefault", "SOCLdmda", "FluidiCL"});
  CsvWriter Csv(
      {"benchmark", "cpu_s", "gpu_s", "socl_eager_s", "socl_dmda_s",
       "fluidicl_s"});

  std::vector<double> VsEager, VsDmda;
  for (const Workload &W : paperSuite()) {
    double Cpu = timeUnder(RuntimeKind::CpuOnly, W, C).toSeconds();
    double Gpu = timeUnder(RuntimeKind::GpuOnly, W, C).toSeconds();
    double Eager = timeUnder(RuntimeKind::SoclEager, W, C).toSeconds();
    double Dmda = timeUnder(RuntimeKind::SoclDmda, W, C).toSeconds();
    double Fcl = timeUnder(RuntimeKind::FluidiCL, W, C).toSeconds();
    double Best = std::min(Cpu, Gpu);
    T.addRow({W.Name, bench::fmtNorm(Cpu / Best), bench::fmtNorm(Gpu / Best),
              bench::fmtNorm(Eager / Best), bench::fmtNorm(Dmda / Best),
              bench::fmtNorm(Fcl / Best)});
    Csv.addRow({W.Name, formatString("%.6f", Cpu),
                formatString("%.6f", Gpu), formatString("%.6f", Eager),
                formatString("%.6f", Dmda), formatString("%.6f", Fcl)});
    VsEager.push_back(Eager / Fcl);
    VsDmda.push_back(Dmda / Fcl);
  }
  T.print();
  std::printf("\nGeomean FluidiCL speedup: %.2fx over SOCL-eager (paper: "
              "2.67x), %.2fx over calibrated SOCL-dmda (paper: 1.26x) - "
              "with no calibration or profiling step.\n",
              geomean(VsEager), geomean(VsDmda));
  bench::writeCsv(Csv, "fig16_socl_compare.csv");
  return 0;
}
