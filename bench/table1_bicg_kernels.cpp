//===- bench/table1_bicg_kernels.cpp - Paper Table 1 -----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Table 1: per-kernel running times of BICG on each device. The two
/// kernels prefer *different* devices (kernel 1 the CPU, kernel 2 the
/// GPU), motivating cooperative execution with automatic data management.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "runtime/SingleDevice.h"
#include "support/Table.h"
#include "work/Driver.h"

using namespace fcl;
using namespace fcl::work;

int main() {
  bench::printHeader("Table 1", "BICG kernel running times per device (s)");

  Workload W = makeBicg(4096, 4096);
  RunConfig C;

  Table T({"Kernel", "CPU only", "GPU only", "faster device"});
  CsvWriter Csv({"kernel", "cpu_s", "gpu_s"});

  for (const KernelCall &Call : W.Calls) {
    Duration Times[2];
    for (int D = 0; D < 2; ++D) {
      mcl::Context Ctx(C.M, C.Mode);
      runtime::SingleDeviceRuntime RT(
          Ctx, D == 0 ? mcl::DeviceKind::Cpu : mcl::DeviceKind::Gpu);
      // Recreate the workload's buffers in declaration order so the
      // workload-local indices line up with runtime ids.
      for (size_t B = 0; B < W.Buffers.size(); ++B)
        RT.createBuffer(W.Buffers[B].Bytes, W.Buffers[B].Name);
      Times[D] = RT.kernelOnlyDuration(Call.Kernel, Call.Range, Call.Args);
    }
    T.addRow({Call.Kernel, bench::fmtSeconds(Times[0]),
              bench::fmtSeconds(Times[1]),
              Times[0] < Times[1] ? "CPU" : "GPU"});
    Csv.addRow({Call.Kernel, bench::fmtSeconds(Times[0]),
                bench::fmtSeconds(Times[1])});
  }
  T.print();
  std::printf("\nPaper shape: BICGKernel1 faster on the CPU, BICGKernel2 "
              "faster on the GPU.\n");
  bench::writeCsv(Csv, "table1_bicg_kernels.csv");
  return 0;
}
