#!/usr/bin/env bash
# Runs every paper table/figure harness plus the extension benches, then
# the post-seed tool suite (checker sweeps, serving, cluster, bench
# smoke), collecting stdout, report JSON and the CSV series under
# results/.
#
# Usage: scripts/run_all_experiments.sh [build-dir] [results-dir]
set -euo pipefail
BUILD=${1:-build}
RESULTS=${2:-results}
BUILD_ABS=$(cd "$BUILD" && pwd)
mkdir -p "$RESULTS"
cd "$RESULTS"

# Paper + extension harnesses. The build dir also holds CMake scaffolding
# (CMakeFiles/, Makefile, ...), so only run actual executables.
for b in "$BUILD_ABS"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  if [ "$name" = "micro_runtime_overheads" ]; then
    "$b" --repeat=1 --out=BENCH_micro_overheads.json | tee "$name.txt"
  else
    "$b" | tee "$name.txt"
  fi
  echo
done

# Post-seed tools, so one sweep leaves every subsystem's report here too.
echo "== fluidicl_check: safety + race sweeps =="
"$BUILD_ABS"/tools/fluidicl_check | tee fluidicl_check.txt
"$BUILD_ABS"/tools/fluidicl_check --race-fixtures \
  | tee fluidicl_check_race_fixtures.txt
echo

echo "== fluidicl_serve: one run per policy =="
for policy in fifo affine corun; do
  "$BUILD_ABS"/tools/fluidicl_serve --streams=8 --policy="$policy" \
    --arrival=poisson:200 --duration=0.1 --seed=1 \
    --stats-json="serve_$policy.json" | tee "serve_$policy.txt"
  echo
done

echo "== fluidicl_cluster: 4-pair scale-out run =="
"$BUILD_ABS"/tools/fluidicl_cluster --workers=4 --placement=least \
  --steal=on --streams=16 --arrival=poisson:600 --duration=0.1 --seed=7 \
  --stats-json=cluster_w4.json --jobs-csv=cluster_w4.csv | tee cluster_w4.txt
echo

echo "== fluidicl_bench: smoke suite =="
"$BUILD_ABS"/tools/fluidicl_bench --suite=smoke --out-dir=. \
  | tee bench_smoke.txt
echo

echo "all experiment outputs and CSVs are in $RESULTS/"
echo "optional: python3 ../scripts/plot_results.py ."
