#!/usr/bin/env bash
# Runs every paper table/figure harness plus the extension benches,
# collecting stdout and the CSV series under results/.
#
# Usage: scripts/run_all_experiments.sh [build-dir] [results-dir]
set -euo pipefail
BUILD=${1:-build}
RESULTS=${2:-results}
mkdir -p "$RESULTS"
cd "$RESULTS"
for b in "../$BUILD"/bench/*; do
  name=$(basename "$b")
  if [ "$name" = "micro_runtime_overheads" ]; then
    "$b" --benchmark_min_time=0.1 | tee "$name.txt"
  else
    "$b" | tee "$name.txt"
  fi
  echo
done
echo "all experiment outputs and CSVs are in $RESULTS/"
echo "optional: python3 ../scripts/plot_results.py ."
