// Seeded det_lint fixture: unseeded libc randomness in a load generator.
// Same-seed serve runs must replay byte-identically, so every random
// draw has to come from the seeded fcl RNGs.
#include <cstdlib>
#include <random>

unsigned arrivalJitterBad() {
  return rand() % 100; // det-lint-expect: rand
}

unsigned seedFromHardwareBad() {
  std::random_device Dev; // det-lint-expect: rand
  return Dev();
}
