// Seeded det_lint fixture: a map keyed by pointer values. std::map keeps
// the keys sorted -- but sorted by ADDRESS, which the allocator hands
// out differently every run, so walking the map to build a report is
// nondeterministic even though the container itself is ordered. Key by
// a stable id (name, sequence number) instead.
#include <cstdio>
#include <map>

struct Stream {
  int Id;
};

void emitPerStreamBad() {
  std::map<Stream *, int> Depth; // det-lint-expect: pointer-key-map
  for (const auto &KV : Depth)
    std::printf("stream %d depth %d\n", KV.first->Id, KV.second);
}
