// Seeded det_lint fixture: an unordered container whose iteration order
// feeds a serialized report. Hash iteration order is implementation-
// defined (and salted in some standard libraries), so the emitted JSON
// would differ across builds; the codebase uses std::map for every
// walked structure.
#include <cstdio>
#include <string>
#include <unordered_map>

void emitCountersBad() {
  std::unordered_map<std::string, int> C; // det-lint-expect: unordered-container
  C["a"] = 1;
  for (const auto &KV : C)
    std::printf("%s=%d\n", KV.first.c_str(), KV.second);
}
