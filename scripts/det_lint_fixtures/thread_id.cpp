// Seeded det_lint fixture: thread identity leaking into report output.
// Thread ids differ run to run and scheduler to scheduler; once the
// simulators move onto OS threads, keying or labelling anything
// serialized by them breaks replay.
#include <sstream>
#include <thread>

std::string taskLabelBad() {
  std::ostringstream Os;
  Os << std::this_thread::get_id(); // det-lint-expect: thread-id
  return Os.str();
}
