// Seeded det_lint fixture: simulated code reading the real clock. The
// simulator's virtual time must come from the event loop, never from the
// host's chrono clocks; this is the classic way a "deterministic" report
// grows wall-clock jitter.
#include <chrono>

double simulatedNowBad() {
  auto T = std::chrono::steady_clock::now(); // det-lint-expect: wall-clock
  return std::chrono::duration<double>(T.time_since_epoch()).count();
}

// The suppression syntax must silence an intentional use (a host-side
// profiler is allowed to read real time). No expect marker here: the
// self-test fails on any unexpected finding, so this line also proves
// suppressions work.
double hostProfileNowOk() {
  // det-lint: allow(wall-clock) host-side profiling, never simulated time
  auto T = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T.time_since_epoch()).count();
}
