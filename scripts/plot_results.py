#!/usr/bin/env python3
"""Plot the CSV series the bench harnesses emit.

Usage:
    for b in build/bench/*; do (cd results && "../../$b"); done
    python3 scripts/plot_results.py results/

Reads every known fig*.csv in the given directory (default: cwd) and
writes a PNG next to each. Also reads every *.stats.json run-report
sidecar (schema fcl-run-report-v1 / -set-v1, written by the bench
harnesses and fluidicl_sim --stats-json) and draws a device-split
stacked-bar plot of completed work-groups per device. Requires
matplotlib; exits with a clear message when it is unavailable (the
repository itself has no Python dependencies).
"""

import csv
import glob
import json
import os
import sys


def warn(msg):
    print(f"plot_results.py: warning: {msg}", file=sys.stderr)


def load(path):
    """Returns (header, body), or (None, None) for an empty or
    header-only CSV (e.g. a harness that was interrupted mid-run)."""
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if len(rows) < 2:
        return None, None
    return rows[0], rows[1:]


def plot_series(plt, path, xlabel, ylabel, title, xcol=0):
    header, body = load(path)
    if header is None:
        warn(f"skipping {path}: empty or header-only CSV")
        return 0
    xs = [row[xcol] for row in body]
    numeric_x = all(v.replace(".", "", 1).lstrip("-").isdigit() for v in xs)
    xvals = [float(v) for v in xs] if numeric_x else range(len(xs))
    fig, ax = plt.subplots(figsize=(7, 4))
    for col in range(len(header)):
        if col == xcol:
            continue
        ys = [float(row[col]) for row in body]
        ax.plot(xvals, ys, marker="o", label=header[col])
    if not numeric_x:
        ax.set_xticks(list(xvals))
        ax.set_xticklabels(xs, rotation=30, ha="right")
    ax.set_xlabel(xlabel)
    ax.set_ylabel(ylabel)
    ax.set_title(title)
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    out = os.path.splitext(path)[0] + ".png"
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")
    return 1


def plot_grouped_bars(plt, path, ylabel, title, normalize_to=None):
    header, body = load(path)
    if header is None:
        warn(f"skipping {path}: empty or header-only CSV")
        return 0
    benchmarks = [row[0] for row in body]
    series = header[1:]
    fig, ax = plt.subplots(figsize=(9, 4))
    width = 0.8 / len(series)
    for idx, name in enumerate(series):
        vals = [float(row[idx + 1]) for row in body]
        if normalize_to is not None:
            base = [float(row[normalize_to + 1]) for row in body]
            vals = [v / b if b else 0 for v, b in zip(vals, base)]
        xs = [i + idx * width for i in range(len(benchmarks))]
        ax.bar(xs, vals, width=width, label=name)
    ax.set_xticks([i + 0.4 - width / 2 for i in range(len(benchmarks))])
    ax.set_xticklabels(benchmarks, rotation=20, ha="right", fontsize=8)
    ax.set_ylabel(ylabel)
    ax.set_title(title)
    ax.legend(fontsize=8)
    ax.grid(True, axis="y", alpha=0.3)
    out = os.path.splitext(path)[0] + ".png"
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")
    return 1


KNOWN = {
    "fig02_motivation_split.csv": (
        "series", "GPU work %", "normalized time",
        "Fig. 2: static split sweep"),
    "fig03_syrk_input_split.csv": (
        "series", "GPU work %", "normalized time",
        "Fig. 3: SYRK split vs input size"),
    "fig13_overall.csv": (
        "bars", "seconds", "Fig. 13: overall performance"),
    "fig14_syrk_inputs.csv": (
        "series", "matrix size N", "seconds", "Fig. 14: SYRK input sweep"),
    "fig15_opt_ablation.csv": (
        "bars", "seconds", "Fig. 15: abort/unroll ablation"),
    "fig16_socl_compare.csv": (
        "bars", "seconds", "Fig. 16: SOCL comparison"),
    "fig17_chunk_sensitivity.csv": (
        "bars", "seconds", "Fig. 17: initial chunk sensitivity"),
    "fig18_step_sensitivity.csv": (
        "bars", "seconds", "Fig. 18: step-size sensitivity"),
    "ext_region_transfers.csv": (
        "bars", "value", "Extension: region transfers"),
    "ext_portability.csv": (
        "bars", "seconds", "Extension: portability"),
    "ext_feature_ablation.csv": (
        "bars", "seconds", "Extension: feature ablation"),
}


def load_reports(path):
    """Yields run-report dicts from a stats-JSON sidecar (bare report or
    fcl-run-report-set-v1 wrapper)."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") == "fcl-run-report-set-v1":
        return data.get("runs", [])
    return [data]


def plot_device_split(plt, directory):
    """Stacked bars of completed work-groups per device, one bar per run,
    across every *.stats.json sidecar in the directory."""
    labels, gpu_pct, cpu_pct, aborted_pct = [], [], [], []
    for path in sorted(glob.glob(os.path.join(directory, "*.stats.json"))):
        for rep in load_reports(path):
            total = rep.get("total_workgroups", 0)
            if not total:
                continue
            labels.append(rep.get("workload", "?"))
            gpu_pct.append(100.0 * rep.get("gpu_workgroups_completed", 0)
                           / total)
            cpu_pct.append(100.0 * rep.get("cpu_workgroups_completed", 0)
                           / total)
            aborted_pct.append(100.0 * rep.get("gpu_workgroups_aborted", 0)
                               / total)
    if not labels:
        return 0
    fig, ax = plt.subplots(figsize=(9, 4))
    xs = range(len(labels))
    ax.bar(xs, gpu_pct, label="GPU completed", color="#4472c4")
    ax.bar(xs, cpu_pct, bottom=gpu_pct, label="CPU completed",
           color="#ed7d31")
    ax.plot(xs, aborted_pct, "kv", markersize=5,
            label="GPU aborted (% of total)")
    ax.set_xticks(list(xs))
    ax.set_xticklabels(labels, rotation=20, ha="right", fontsize=8)
    ax.set_ylabel("% of work-groups")
    ax.set_ylim(0, 105)
    ax.set_title("Achieved device split (from run-report sidecars)")
    ax.legend(fontsize=8)
    ax.grid(True, axis="y", alpha=0.3)
    out = os.path.join(directory, "device_split.png")
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")
    return 1


def main():
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("plot_results.py needs matplotlib (pip install matplotlib)")

    directory = sys.argv[1] if len(sys.argv) > 1 else "."
    found = 0
    for name, spec in KNOWN.items():
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            warn(f"skipping {name}: not found in {directory} "
                 "(its bench harness did not run?)")
            continue
        if spec[0] == "series":
            found += plot_series(plt, path, spec[1], spec[2], spec[3])
        else:
            found += plot_grouped_bars(plt, path, spec[1], spec[2])
    found += plot_device_split(plt, directory)
    if not found:
        sys.exit(f"no known CSV or *.stats.json files found in {directory}; "
                 "run the bench binaries there first")


if __name__ == "__main__":
    main()
