#!/usr/bin/env python3
"""Static determinism lint for the FluidiCL reproduction.

The whole repo is built around one promise: same seed, same bytes. Every
report, trace and stats file must be reproducible, which means the code
that computes them must never read ambient nondeterminism. This lint
scans the C++ sources for the hazard patterns that have historically
broken that promise in simulators:

  wall-clock       reading real time (chrono clocks, gettimeofday,
                   clock_gettime, std::time) inside simulated/serving
                   code -- simulated time must come from the event loop
  rand             C/libc randomness (rand, srand, std::random_device)
                   instead of the seeded fcl RNGs
  thread-id        thread identity (std::this_thread::get_id,
                   pthread_self, gettid) leaking into logic or output
  unordered-container
                   std::unordered_{map,set,multimap,multiset} anywhere:
                   iteration order is implementation-defined and feeds
                   straight into reports; this codebase uses std::map
  pointer-key-map  pointer-valued map keys -- iteration order then
                   depends on the allocator, so any serialized walk of
                   the map is nondeterministic across runs

Intentional uses are suppressed inline on the same or preceding line:

    // det-lint: allow(wall-clock) host-side profiler, never simulated time

Usage:
    det_lint.py [--root DIR]          lint src/ and tools/ (exit 1 on findings)
    det_lint.py --self-test [--root DIR]
                                      prove every rule fires on its seeded
                                      fixture in scripts/det_lint_fixtures/
    det_lint.py --list-rules          print the rule catalogue

Fixture files declare what they seed with

    // det-lint-expect: <rule>

on the hazard line; --self-test fails if any expected finding is missed
or any unexpected finding appears.
"""

import argparse
import os
import re
import sys

RULES = [
    (
        "wall-clock",
        re.compile(
            r"chrono::\w+_clock::now"
            r"|\bgettimeofday\s*\("
            r"|\bclock_gettime\s*\("
            r"|\bstd::time\s*\("
        ),
        "reads real time; simulated/serving code must use the event loop's "
        "virtual clock",
    ),
    (
        "rand",
        re.compile(
            r"\brand\s*\(\s*\)"
            r"|\bsrand\s*\("
            r"|\bstd::random_device\b"
        ),
        "unseeded randomness; use the seeded fcl RNGs so runs replay",
    ),
    (
        "thread-id",
        re.compile(
            r"this_thread::get_id"
            r"|\bpthread_self\s*\("
            r"|\bgettid\s*\("
        ),
        "thread identity is nondeterministic across runs and schedulers",
    ),
    (
        "unordered-container",
        re.compile(r"\bstd::unordered_(?:multi)?(?:map|set)\b"),
        "iteration order is implementation-defined; use std::map/std::set "
        "so serialized walks are stable",
    ),
    (
        "pointer-key-map",
        re.compile(
            r"\b(?:std::)?(?:unordered_)?(?:multi)?map<\s*"
            r"(?:const\s+)?[\w:]+\s*\*"
        ),
        "pointer keys order by allocator addresses; key by a stable id "
        "instead",
    ),
]
RULE_NAMES = {name for name, _, _ in RULES}

ALLOW_RE = re.compile(r"det-lint:\s*allow\(([\w,\- ]+)\)")
EXPECT_RE = re.compile(r"det-lint-expect:\s*([\w\-]+)")

SOURCE_EXTS = (".cpp", ".h", ".hpp", ".cc")


def strip_comments(line, in_block):
    """Remove comment text from one line (tracking /* */ across lines) so
    rules never fire on prose. Returns (code_text, still_in_block)."""
    out = []
    i = 0
    while i < len(line):
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
        elif line.startswith("//", i):
            break
        elif line.startswith("/*", i):
            in_block = True
            i += 2
        else:
            out.append(line[i])
            i += 1
    return "".join(out), in_block


def lint_file(path):
    """Returns (findings, expects): findings as (line_no, rule, code_line),
    expects as (line_no, rule) from det-lint-expect markers."""
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"det_lint: cannot read {path}: {e}", file=sys.stderr)
        return [], []

    findings, expects = [], []
    allowed_prev = set()  # allows declared on the preceding line
    in_block = False
    for no, raw in enumerate(lines, start=1):
        allows = set(allowed_prev)
        allowed_prev = set()
        m = ALLOW_RE.search(raw)
        if m:
            names = {n.strip() for n in m.group(1).split(",")}
            allows |= names
            allowed_prev |= names  # also covers the next line
        m = EXPECT_RE.search(raw)
        if m:
            expects.append((no, m.group(1)))

        code, in_block = strip_comments(raw, in_block)
        if not code.strip():
            continue
        for rule, rx, _why in RULES:
            if rx.search(code) and rule not in allows:
                findings.append((no, rule, raw.strip()))
    return findings, expects


def iter_sources(roots):
    for root in roots:
        for dirpath, _dirs, files in os.walk(root):
            for name in sorted(files):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


def run_lint(repo_root):
    roots = [os.path.join(repo_root, d) for d in ("src", "tools")]
    roots = [r for r in roots if os.path.isdir(r)]
    if not roots:
        print(f"det_lint: no src/ or tools/ under {repo_root}",
              file=sys.stderr)
        return 2
    why = {name: w for name, _rx, w in RULES}
    total = 0
    scanned = 0
    for path in iter_sources(roots):
        scanned += 1
        findings, _ = lint_file(path)
        for no, rule, text in findings:
            rel = os.path.relpath(path, repo_root)
            print(f"{rel}:{no}: [{rule}] {text}")
            print(f"    {why[rule]}")
            print(f"    suppress with: // det-lint: allow({rule}) <reason>")
            total += 1
    print(f"det_lint: {scanned} file(s) scanned, {total} finding(s)")
    return 1 if total else 0


def run_self_test(repo_root):
    fixtures = os.path.join(repo_root, "scripts", "det_lint_fixtures")
    if not os.path.isdir(fixtures):
        print(f"det_lint: fixture dir missing: {fixtures}", file=sys.stderr)
        return 2
    failures = 0
    cases = 0
    for path in iter_sources([fixtures]):
        findings, expects = lint_file(path)
        rel = os.path.relpath(path, repo_root)
        if not expects:
            print(f"{rel}: fixture has no det-lint-expect marker")
            failures += 1
            continue
        got = {(no, rule) for no, rule, _ in findings}
        for no, rule in expects:
            cases += 1
            if rule not in RULE_NAMES:
                print(f"{rel}:{no}: expects unknown rule '{rule}'")
                failures += 1
            elif (no, rule) in got:
                print(f"{rel}:{no}: [{rule}] caught")
            else:
                print(f"{rel}:{no}: [{rule}] MISSED")
                failures += 1
        expected = set(expects)
        for no, rule, text in findings:
            if (no, rule) not in expected:
                print(f"{rel}:{no}: unexpected [{rule}] finding: {text}")
                failures += 1
    print(f"det_lint self-test: {cases} expectation(s), "
          f"{failures} failure(s)")
    return 1 if failures or cases == 0 else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule fires on its seeded fixture")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    args = ap.parse_args()

    if args.list_rules:
        for name, rx, why in RULES:
            print(f"{name}: {why}")
        return 0

    repo_root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return run_self_test(repo_root)
    return run_lint(repo_root)


if __name__ == "__main__":
    sys.exit(main())
