#!/usr/bin/env python3
"""Trend gate for the fluidicl_bench host-performance reports.

Validates BENCH_*.json files (schema "fcl-bench-report-v1") and diffs
their metrics against the checked-in baselines under bench/baselines/,
failing on regressions beyond a threshold. Used two ways:

  # CI / local trend gate (Release build, quiet machine):
  scripts/bench_check.py --dir bench-out

  # Schema-only validation (safe under parallel ctest, where wall-clock
  # numbers are meaningless):
  scripts/bench_check.py --dir bench-out --schema-only

  # Refresh the baselines after an intentional perf change:
  scripts/bench_check.py --dir bench-out --update

Metric direction is inferred from its name: "*_per_sec" / "*_rps" are
higher-better; "*_sec", "*_ms", "*_ns_per_op" and "overhead_pct" are
lower-better; anything else is informational (compared for presence
only). "overhead_pct" is additionally gated at an absolute ceiling
(profiler overhead must stay below 5 points, per docs/OBSERVABILITY.md).
A baseline may carry a "gate" object overriding the relative threshold
per metric, e.g. {"gate": {"sim_events_per_sec": 0.40}}.
"""

import argparse
import glob
import json
import os
import sys

SCHEMA = "fcl-bench-report-v1"
DEFAULT_THRESHOLD = 0.25  # 25% relative regression
OVERHEAD_PCT_CEILING = 5.0  # absolute points, ISSUE acceptance gate

HIGHER_BETTER_SUFFIXES = ("_per_sec", "_rps")
LOWER_BETTER_SUFFIXES = ("_sec", "_ms", "_ns_per_op")
LOWER_BETTER_NAMES = ("overhead_pct",)


def direction(metric):
    """Returns 'higher', 'lower' or None (informational)."""
    if metric in LOWER_BETTER_NAMES:
        return "lower"
    for s in HIGHER_BETTER_SUFFIXES:
        if metric.endswith(s):
            return "higher"
    for s in LOWER_BETTER_SUFFIXES:
        if metric.endswith(s):
            return "lower"
    return None


def validate(path, doc):
    errs = []
    if doc.get("schema") != SCHEMA:
        errs.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key, typ in (("name", str), ("suite", str), ("meta", dict),
                     ("metrics", dict), ("peak_rss_bytes", (int, float)),
                     ("profile", list), ("counters", dict)):
        if key not in doc:
            errs.append(f"missing key {key!r}")
        elif not isinstance(doc[key], typ):
            errs.append(f"key {key!r} has type {type(doc[key]).__name__}")
    for m, v in doc.get("metrics", {}).items():
        if not isinstance(v, (int, float)):
            errs.append(f"metric {m!r} is not a number")
    for p in doc.get("profile", []):
        for key in ("path", "count", "inclusive_ms", "exclusive_ms"):
            if key not in p:
                errs.append(f"profile entry missing {key!r}")
                break
    base = os.path.basename(path)
    expect = f"BENCH_{doc.get('name', '?')}.json"
    if base != expect:
        errs.append(f"file name {base!r} does not match name (want {expect!r})")
    return errs


def compare(name, current, baseline, threshold):
    """Yields (metric, message) regression tuples."""
    gates = baseline.get("gate", {})
    for metric, base in sorted(baseline.get("metrics", {}).items()):
        if metric not in current.get("metrics", {}):
            yield metric, "present in baseline but missing from report"
            continue
        cur = current["metrics"][metric]
        if metric == "overhead_pct":
            ceiling = gates.get(metric, OVERHEAD_PCT_CEILING)
            if cur > ceiling:
                yield metric, (f"profiler overhead {cur:.2f}% exceeds the "
                               f"{ceiling:.2f}% ceiling")
            continue
        d = direction(metric)
        if d is None or base == 0:
            continue
        t = gates.get(metric, threshold)
        rel = (cur - base) / abs(base)
        if d == "higher" and rel < -t:
            yield metric, (f"dropped {-rel * 100:.1f}% "
                           f"({base:g} -> {cur:g}, limit {t * 100:.0f}%)")
        elif d == "lower" and rel > t:
            yield metric, (f"grew {rel * 100:.1f}% "
                           f"({base:g} -> {cur:g}, limit {t * 100:.0f}%)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--dir", default=".",
                    help="directory holding BENCH_*.json reports")
    ap.add_argument("--baselines", default=None,
                    help="baseline directory (default: bench/baselines/ "
                         "next to this script)")
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    help="relative regression threshold (default 0.25)")
    ap.add_argument("--schema-only", action="store_true",
                    help="validate schemas, skip the baseline comparison")
    ap.add_argument("--update", action="store_true",
                    help="overwrite the baselines with the current reports "
                         "(preserving any per-metric gate overrides)")
    args = ap.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    basedir = args.baselines or os.path.join(root, "bench", "baselines")

    reports = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    if not reports:
        print(f"bench_check: no BENCH_*.json under {args.dir}",
              file=sys.stderr)
        return 2

    failed = False
    for path in reports:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {path}: unreadable ({e})", file=sys.stderr)
            failed = True
            continue
        errs = validate(path, doc)
        if errs:
            failed = True
            for e in errs:
                print(f"FAIL {path}: {e}", file=sys.stderr)
            continue
        print(f"ok   {path}: schema valid "
              f"({len(doc['metrics'])} metrics, "
              f"{len(doc['profile'])} profile phases)")

        base_path = os.path.join(basedir, os.path.basename(path))
        if args.update:
            gate = {}
            if os.path.exists(base_path):
                try:
                    with open(base_path) as f:
                        gate = json.load(f).get("gate", {})
                except (OSError, json.JSONDecodeError):
                    pass  # unreadable old baseline: rewrite without a gate
            if gate:
                doc["gate"] = gate
            os.makedirs(basedir, exist_ok=True)
            with open(base_path, "w") as f:
                json.dump(doc, f, indent=1, sort_keys=True)
                f.write("\n")
            print(f"     baseline updated: {base_path}")
            continue
        if args.schema_only:
            continue
        if not os.path.exists(base_path):
            print(f"FAIL {path}: missing baseline {base_path} "
                  f"-- run with --update to create it", file=sys.stderr)
            failed = True
            continue
        try:
            with open(base_path) as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {path}: unreadable baseline {base_path} ({e}) "
                  f"-- run with --update to recreate it", file=sys.stderr)
            failed = True
            continue
        regressions = list(compare(doc["name"], doc, baseline,
                                   args.threshold))
        for metric, msg in regressions:
            print(f"FAIL {path}: {metric} {msg}", file=sys.stderr)
            failed = True
        if not regressions:
            print(f"     within {args.threshold * 100:.0f}% of baseline")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
