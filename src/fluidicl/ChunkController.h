//===- fluidicl/ChunkController.h - Adaptive chunk sizing -------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive CPU-subkernel chunk-size heuristic of paper section 5.1:
/// start at InitialChunkPct of the total work-groups, grow by StepPct as
/// long as the measured average time per work-group keeps decreasing
/// (launch overhead amortizes and the CPU OpenCL runtime reaches full
/// occupancy), stop growing when it stops improving, and never launch
/// fewer work-groups than there are compute units.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_FLUIDICL_CHUNKCONTROLLER_H
#define FCL_FLUIDICL_CHUNKCONTROLLER_H

#include "support/SimTime.h"

#include <cstdint>

namespace fcl {
namespace fluidicl {

/// Decides how many work-groups each CPU subkernel receives.
class ChunkController {
public:
  ChunkController(uint64_t TotalGroups, int ComputeUnits, double InitialPct,
                  double StepPct);

  /// Work-groups for the next subkernel, given \p Remaining unassigned
  /// work-groups. Returns at least min(Remaining, ComputeUnits) and at
  /// most Remaining; 0 only when Remaining is 0.
  uint64_t nextChunk(uint64_t Remaining) const;

  /// Feeds back the measured duration of a completed subkernel; grows the
  /// chunk while the average time per work-group keeps improving.
  void reportSubkernel(uint64_t Groups, Duration Took);

  double currentPct() const { return CurrentPct; }
  bool stillGrowing() const { return Growing; }
  /// Times reportSubkernel actually grew the chunk before settling.
  uint64_t growthSteps() const { return GrowthSteps; }

private:
  uint64_t TotalGroups;
  int ComputeUnits;
  double StepPct;
  double CurrentPct;
  bool Growing;
  uint64_t GrowthSteps = 0;
  double BestAvgNanosPerWg = -1; // <0 until the first report.
};

} // namespace fluidicl
} // namespace fcl

#endif // FCL_FLUIDICL_CHUNKCONTROLLER_H
