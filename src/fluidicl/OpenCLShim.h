//===- fluidicl/OpenCLShim.h - OpenCL-style C API shim ----------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's porting story (section 5): "Each API in the OpenCL program
/// is replaced with the corresponding FluidiCL API, with no change in
/// arguments. This is done for each application with the help of a simple
/// find-and-replace script." This header provides that API surface for the
/// reproduction: fcl* functions mirroring the OpenCL host calls FluidiCL
/// supports (buffer create/read/write, kernel create/set-arg/launch,
/// finish), with cl_* style handle and error-code semantics, implemented
/// on top of fluidicl::Runtime.
///
/// A port therefore looks like:
///   clCreateBuffer(ctx, flags, size, 0, &err) -> fclCreateBuffer(...)
///   clSetKernelArg(k, 0, sizeof(cl_mem), &buf) -> fclSetKernelArg(...)
///   clEnqueueNDRangeKernel(q, k, dim, 0, gws, lws, 0, 0, 0)
///       -> fclEnqueueNDRangeKernel(...)
///
/// ShimLint: modeled on the OpenCL validation layers, every entry point
/// also diagnoses host-API misuse — use-after-release, double release,
/// launches with unset kernel arguments, non-blocking reads whose result
/// the shim's blocking semantics would hide — through the owning runtime's
/// check::DiagSink (armed by fluidicl::Options::Check). Released objects
/// are quarantined rather than freed until the context goes away, so
/// use-after-release is detected instead of crashing.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_FLUIDICL_OPENCLSHIM_H
#define FCL_FLUIDICL_OPENCLSHIM_H

#include "fluidicl/Runtime.h"

#include <cstddef>
#include <cstdint>
#include <memory>

namespace fcl {
namespace fluidicl {
namespace shim {

// OpenCL-style scalar typedefs.
using fcl_int = int32_t;
using fcl_uint = uint32_t;
using fcl_mem_flags = uint64_t;
using fcl_bool = uint32_t;

// Error codes (the OpenCL values for the common cases).
inline constexpr fcl_int FCL_SUCCESS = 0;
inline constexpr fcl_int FCL_INVALID_VALUE = -30;
inline constexpr fcl_int FCL_INVALID_COMMAND_QUEUE = -36;
inline constexpr fcl_int FCL_INVALID_MEM_OBJECT = -38;
inline constexpr fcl_int FCL_INVALID_KERNEL_NAME = -46;
inline constexpr fcl_int FCL_INVALID_KERNEL = -48;
inline constexpr fcl_int FCL_INVALID_KERNEL_ARGS = -52;
inline constexpr fcl_int FCL_INVALID_WORK_DIMENSION = -53;

inline constexpr fcl_bool FCL_TRUE = 1;
inline constexpr fcl_bool FCL_FALSE = 0;

// Memory flags (accepted and ignored; FluidiCL manages both devices).
inline constexpr fcl_mem_flags FCL_MEM_READ_WRITE = 1 << 0;
inline constexpr fcl_mem_flags FCL_MEM_READ_ONLY = 1 << 2;
inline constexpr fcl_mem_flags FCL_MEM_WRITE_ONLY = 1 << 1;

/// Opaque handles, as in the OpenCL C API.
struct FclContextRec;
struct FclMemRec;
struct FclKernelRec;
struct FclQueueRec;
using fcl_context = FclContextRec *;
using fcl_mem = FclMemRec *;
using fcl_kernel = FclKernelRec *;
/// FluidiCL owns a single in-order conceptual queue per context; the
/// command-queue handle exists for signature compatibility, but is a
/// distinct object so the lint layer can diagnose enqueues on released
/// queues.
using fcl_command_queue = FclQueueRec *;

/// Creates a FluidiCL "context" bound to \p RT (which the caller owns and
/// must keep alive). The analogue of clCreateContext + clBuildProgram:
/// kernels come from the built-in registry, as compiled programs do from
/// vendor compilers.
fcl_context fclCreateContext(Runtime &RT);

/// Releases the context and every object created from it.
void fclReleaseContext(fcl_context Ctx);

/// clCreateCommandQueue analogue (FluidiCL's own hd, dh and device queues
/// are internal, paper section 5.4; every shim queue maps to the same
/// conceptual in-order queue).
fcl_command_queue fclCreateCommandQueue(fcl_context Ctx);

/// clReleaseCommandQueue analogue. The record is quarantined (not freed)
/// so later enqueues are diagnosed as use-after-release.
fcl_int fclReleaseCommandQueue(fcl_command_queue Queue);

/// clReleaseMemObject analogue (quarantines the record; the underlying
/// runtime buffer lives until the runtime is destroyed).
fcl_int fclReleaseMemObject(fcl_mem Buf);

/// clReleaseKernel analogue (quarantines the record).
fcl_int fclReleaseKernel(fcl_kernel Kernel);

/// clCreateBuffer analogue.
fcl_mem fclCreateBuffer(fcl_context Ctx, fcl_mem_flags Flags, size_t Size,
                        void *HostPtr, fcl_int *Err);

/// clEnqueueWriteBuffer analogue (always treated as blocking, like the
/// paper's supported subset).
fcl_int fclEnqueueWriteBuffer(fcl_command_queue Queue, fcl_mem Buf,
                              fcl_bool Blocking, size_t Offset, size_t Size,
                              const void *Ptr);

/// clEnqueueReadBuffer analogue. Always executed blocking; requesting a
/// non-blocking read is linted (NonBlockingReadAssumed), because a real
/// OpenCL host must not touch \p Ptr before the read's event completes.
fcl_int fclEnqueueReadBuffer(fcl_command_queue Queue, fcl_mem Buf,
                             fcl_bool Blocking, size_t Offset, size_t Size,
                             void *Ptr);

/// clCreateKernel analogue: looks \p Name up in the kernel registry.
fcl_kernel fclCreateKernel(fcl_context Ctx, const char *Name, fcl_int *Err);

/// clSetKernelArg analogue. Buffer arguments are passed as
/// (sizeof(fcl_mem), &mem); scalars by value with their size (4 -> int or
/// float chosen by the kernel's declared argument kind, 8 -> int64/double).
fcl_int fclSetKernelArg(fcl_kernel Kernel, fcl_uint Index, size_t Size,
                        const void *Value);

/// clEnqueueNDRangeKernel analogue (blocking, like the paper's
/// implementation; only null global offsets are supported).
fcl_int fclEnqueueNDRangeKernel(fcl_command_queue Queue, fcl_kernel Kernel,
                                fcl_uint WorkDim,
                                const size_t *GlobalWorkOffset,
                                const size_t *GlobalWorkSize,
                                const size_t *LocalWorkSize);

/// clFinish analogue.
fcl_int fclFinish(fcl_command_queue Queue);

} // namespace shim
} // namespace fluidicl
} // namespace fcl

#endif // FCL_FLUIDICL_OPENCLSHIM_H
