//===- fluidicl/Options.h - FluidiCL configuration --------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tunables and optimization toggles of the FluidiCL runtime. The defaults
/// are the paper's configuration for the headline results (Figure 13: all
/// optimizations on except online profiling). Each toggle exists so the
/// ablation experiments (Figures 15, 17, 18 and Table 3) can reproduce the
/// paper's sensitivity studies.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_FLUIDICL_OPTIONS_H
#define FCL_FLUIDICL_OPTIONS_H

#include "check/Diag.h"
#include "hw/CostModel.h"

namespace fcl {
namespace fluidicl {

/// FluidiCL runtime configuration.
struct Options {
  /// Initial CPU subkernel chunk, percent of total work-groups (section
  /// 5.1; the paper uses 2%).
  double InitialChunkPct = 2.0;
  /// Chunk growth step, percent of total work-groups (paper: 2%); 0 keeps
  /// the chunk fixed (Figure 18's step-0 configuration).
  double StepPct = 2.0;
  /// Where GPU kernels check the CPU status word: AtStart reproduces the
  /// NoAbortUnroll ablation, InLoop is the full section 6.4 optimization.
  hw::AbortPolicyKind AbortPolicy = hw::AbortPolicyKind::InLoop;
  /// Manual loop unrolling after in-loop abort checks (section 6.5);
  /// disabling reproduces the NoUnroll ablation.
  bool LoopUnroll = true;
  /// CPU work-group splitting when a subkernel has fewer work-groups than
  /// compute units (section 6.3).
  bool CpuWorkGroupSplit = true;
  /// Reuse pooled GPU buffers for the orig/cpu-data copies (section 6.1).
  bool BufferPool = true;
  /// Serve clEnqueueReadBuffer from the CPU when its copy is current
  /// (section 6.2).
  bool DataLocationTracking = true;
  /// Online profiling across kernel variants (section 6.6). Off by default,
  /// matching the paper's Figure 13 configuration.
  bool OnlineProfiling = false;
  /// Master switch for cooperative execution; false degenerates to
  /// GPU-only through the FluidiCL code path (diagnostics only).
  bool UseCpu = true;
  /// Extension beyond the paper: for kernels whose flat work-group ranges
  /// write row-contiguous output bands (KernelInfo::RowContiguousOutput),
  /// stage and transfer only each subkernel's band instead of the whole
  /// out buffer. Off by default (the paper transfers whole buffers).
  bool RegionTransfers = false;
  /// fcl::check integration: Off disables all checking; Warn/Fail arm the
  /// DiagSink, ProtocolChecker and ShimLint (Fail additionally makes tools
  /// exit non-zero on error diagnostics).
  check::Policy Check = check::Policy::Off;
};

} // namespace fluidicl
} // namespace fcl

#endif // FCL_FLUIDICL_OPTIONS_H
