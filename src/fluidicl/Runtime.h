//===- fluidicl/Runtime.h - The FluidiCL runtime ----------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FluidiCL runtime (the paper's contribution): takes the single-device
/// OpenCL program (the HeteroRuntime API) and executes every kernel
/// cooperatively on the CPU and the GPU.
///
/// Per paper section 4/5:
///  * createBuffer/writeBuffer fan out to both devices (section 4.1).
///  * Each kernel launch enqueues the full NDRange on the GPU (work-groups
///    ascending from 0) and a stream of CPU subkernels working down from
///    the highest flattened work-group ID (section 4.2).
///  * After each subkernel, the CPU's out/inout data and then an execution-
///    status message travel to the GPU on the in-order "hd" queue, so a
///    work-group only counts as CPU-complete when its data has arrived.
///  * GPU work-groups abort when covered by the CPU status (sections 4.2,
///    6.4, 6.5); when the GPU kernel exits, per-buffer diff/merge kernels
///    combine the CPU and GPU results on the GPU (section 4.3).
///  * A device-to-host stage returns merged out buffers to the CPU
///    asynchronously (sections 4.4, 5.6), tracked by buffer versions
///    (section 5.3) and data-location information (section 6.2).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_FLUIDICL_RUNTIME_H
#define FCL_FLUIDICL_RUNTIME_H

#include "check/Diag.h"
#include "check/ProtocolChecker.h"
#include "fluidicl/BufferPool.h"
#include "fluidicl/OnlineProfiler.h"
#include "fluidicl/Options.h"
#include "fluidicl/VersionTracker.h"
#include "mcl/CommandQueue.h"
#include "runtime/HeteroRuntime.h"
#include "stats/LaunchStats.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fcl {
namespace fluidicl {

class KernelExec;

/// Summary of one cooperative kernel execution (for experiments/tests).
/// Lives in the stats subsystem now; the alias keeps the historical
/// fluidicl::KernelStats spelling working.
using KernelStats = stats::LaunchStats;

/// The FluidiCL runtime.
class Runtime final : public runtime::HeteroRuntime {
public:
  explicit Runtime(mcl::Context &Ctx, Options Opts = Options());
  ~Runtime() override;

  std::string name() const override { return "FluidiCL"; }
  runtime::BufferId createBuffer(uint64_t Size,
                                 std::string DebugName) override;
  void writeBuffer(runtime::BufferId Id, const void *Src,
                   uint64_t Bytes) override;
  void readBuffer(runtime::BufferId Id, void *Dst, uint64_t Bytes) override;
  void launchKernel(const std::string &KernelName, const kern::NDRange &Range,
                    const std::vector<runtime::KArg> &Args) override;
  void finish() override;

  /// Non-blocking launch for re-entrant callers (the serve layer, which
  /// drives several runtimes from inside simulator events and must not
  /// nest blocking drains per stream). \p OnDone fires once when the
  /// launch is application-complete. launchKernel remains the blocking
  /// single-application API and is unchanged in behaviour.
  void launchKernelAsync(const std::string &KernelName,
                         const kern::NDRange &Range,
                         const std::vector<runtime::KArg> &Args,
                         std::function<void()> OnDone);

  /// Non-blocking read: \p OnDone fires once the data is in \p Dst. Routes
  /// exactly like readBuffer (CPU copy when current, GPU otherwise).
  void readBufferAsync(runtime::BufferId Id, void *Dst, uint64_t Bytes,
                       std::function<void()> OnDone);

  /// Hook invoked at every CPU chunk boundary instead of immediately
  /// launching the next subkernel; the hook owns the passed Resume closure
  /// and calls it (now or later) to continue this runtime's CPU side. The
  /// serve layer uses this to backfill foreign short jobs onto the CPU
  /// between subkernel chunks. Null (the default) preserves the
  /// single-application behaviour bit for bit.
  void setChunkYield(
      std::function<void(std::function<void()> Resume)> Hook) {
    ChunkYield = std::move(Hook);
  }

  const Options &options() const { return Opts; }

  /// Diagnostic sink of the check subsystem (Options::Check controls
  /// whether it collects anything). The OpenCL shim's lint layer and the
  /// ProtocolChecker both report here.
  check::DiagSink &diagSink() { return Diags; }
  const check::DiagSink &diagSink() const { return Diags; }

  /// Protocol invariant checker; null when Options::Check is Off.
  check::ProtocolChecker *protocolChecker() { return Checker.get(); }

  /// Per-kernel execution summaries, in launch order. Call finish() first
  /// for final numbers.
  std::vector<KernelStats> kernelStats() const;

  /// Adds the launch records, buffer-pool / version-tracker / read-routing
  /// counters, and derived gauges on top of the base registry.
  void collectStats(stats::RunReport &Report) const override;

private:
  friend class KernelExec;

  /// One application buffer, duplicated on both devices (section 4.1).
  struct DualBuffer {
    uint64_t Size = 0;
    std::string Name;
    std::unique_ptr<mcl::Buffer> CpuBuf;
    std::unique_ptr<mcl::Buffer> GpuBuf;
    /// Last command that lands data in CpuBuf (host write or DH read);
    /// readBuffer waits on it instead of draining whole queues, so a
    /// trailing CPU subkernel never delays the application's result read.
    mcl::EventPtr CpuLanding;
  };

  DualBuffer &buf(runtime::BufferId Id);

  /// Runs \p Fn once the CPU copy of every (buffer, version) pair has
  /// received at least that version, retrying as pending device-to-host
  /// transfers land (section 5.3 gate). Versions are captured before the
  /// launching kernel bumps its out buffers, so a kernel's own writes do
  /// not gate its own CPU subkernels.
  void whenCpuVersions(std::vector<std::pair<uint32_t, uint64_t>> Needs,
                       std::function<void()> Fn);

  /// Registers an outstanding DH transfer event.
  void trackDh(mcl::EventPtr E);

  /// Reports buffer \p Id's (expected, cpu) versions to the protocol
  /// checker after any VersionTracker mutation.
  void noteVersion(uint32_t Id);

  Options Opts;
  check::DiagSink Diags;
  std::unique_ptr<check::ProtocolChecker> Checker;
  std::unique_ptr<mcl::CommandQueue> GpuAppQueue; // Kernels, merges, writes.
  std::unique_ptr<mcl::CommandQueue> CpuQueue;    // CPU subkernels, writes.
  std::unique_ptr<mcl::CommandQueue> HdQueue;     // CPU data + status to GPU.
  std::unique_ptr<mcl::CommandQueue> DhQueue;     // Merged results to host.
  std::unique_ptr<mcl::Buffer> StatusBuf;         // GPU status word.
  std::vector<std::unique_ptr<DualBuffer>> Buffers;
  VersionTracker Versions;
  BufferPool Pool;
  OnlineProfiler Profiler;
  uint64_t NextKernelId = 0;
  std::vector<mcl::EventPtr> PendingDh;
  std::vector<std::shared_ptr<KernelExec>> Execs;
  std::function<void(std::function<void()>)> ChunkYield;
  /// fcl::race critical-section name covering this runtime's host-side
  /// state (buffers, version tracker, pool, exec list). Every API entry
  /// point and async completion callback runs inside it, declaring "one
  /// lock per runtime" as the threading plan the analyzer checks against.
  std::string RaceSec;
};

} // namespace fluidicl
} // namespace fcl

#endif // FCL_FLUIDICL_RUNTIME_H
