//===- fluidicl/VersionTracker.h - Buffer version tracking ------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Buffer version tracking of paper section 5.3: every kernel execution
/// gets a kernel ID; out/inout buffers written by kernel K have *expected*
/// version K, and the CPU-side copy records the *received* version as data
/// arrives (device-to-host transfers, or the CPU executing the whole
/// NDRange). CPU subkernels may only start once every input buffer's
/// received version matches its expected version; the GPU always holds the
/// most recent version and proceeds immediately. Stale (older-version)
/// arrivals are discarded. Section 6.2's data-location tracking lives here
/// too.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_FLUIDICL_VERSIONTRACKER_H
#define FCL_FLUIDICL_VERSIONTRACKER_H

#include <cstdint>
#include <string>
#include <vector>

namespace fcl {
namespace fluidicl {

/// Per-buffer version and location bookkeeping.
class VersionTracker {
public:
  /// Shadow-object name for the fcl::race analyzer; every mutation/query
  /// is checked for happens-before ordering under that name. Empty (the
  /// default) disables shadowing.
  void setRaceObject(std::string Name) { RaceObj = std::move(Name); }

  /// Registers a new buffer; returns its index (== registration order).
  uint32_t addBuffer();

  /// Host program wrote the buffer: both device copies become current once
  /// the (fan-out) writes land; versions advance to \p KernelId.
  void noteHostWrite(uint32_t Buf, uint64_t KernelId);

  /// Kernel \p KernelId is about to write \p Buf: expected version becomes
  /// \p KernelId (the CPU copy is stale until data arrives).
  void noteKernelWillWrite(uint32_t Buf, uint64_t KernelId);

  /// Data of version \p KernelId arrived at the CPU (DH transfer landed or
  /// the CPU executed the entire NDRange). Older versions than the current
  /// received version are discarded.
  void noteCpuReceived(uint32_t Buf, uint64_t KernelId);

  /// True when the CPU copy matches the expected (most recent) version.
  bool cpuCurrent(uint32_t Buf) const;

  /// True when every buffer in \p Bufs is CPU-current (the section 5.3
  /// gate for launching CPU subkernels).
  bool cpuCurrentAll(const std::vector<uint32_t> &Bufs) const;

  uint64_t expectedVersion(uint32_t Buf) const;
  uint64_t cpuVersion(uint32_t Buf) const;

  /// noteCpuReceived calls that advanced a CPU version.
  uint64_t receivesApplied() const { return ReceivesApplied; }
  /// noteCpuReceived calls discarded as stale (late messages, section 5.3).
  uint64_t staleDrops() const { return StaleDrops; }

private:
  struct State {
    uint64_t Expected = 0;
    uint64_t CpuReceived = 0;
  };

  void raceWrite(const char *What) const;
  void raceRead(const char *What) const;

  std::vector<State> States;
  uint64_t ReceivesApplied = 0;
  uint64_t StaleDrops = 0;
  std::string RaceObj;
};

} // namespace fluidicl
} // namespace fcl

#endif // FCL_FLUIDICL_VERSIONTRACKER_H
