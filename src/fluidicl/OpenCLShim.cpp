//===- fluidicl/OpenCLShim.cpp - OpenCL-style C API shim -------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluidicl/OpenCLShim.h"

#include "check/Diag.h"
#include "kern/Registry.h"
#include "support/Error.h"

#include <cstring>
#include <string>
#include <vector>

using namespace fcl;
using namespace fcl::fluidicl;
using namespace fcl::fluidicl::shim;

namespace fcl {
namespace fluidicl {
namespace shim {

struct FclMemRec {
  FclContextRec *Ctx = nullptr;
  runtime::BufferId Id = 0;
  uint64_t Size = 0;
  bool Released = false;
};

struct FclKernelRec {
  FclContextRec *Ctx = nullptr;
  const kern::KernelInfo *Info = nullptr;
  std::vector<runtime::KArg> Args;
  std::vector<bool> ArgSet;
  /// Buffer records bound per argument slot (null for scalars), so the
  /// lint layer can detect a mem object released between clSetKernelArg
  /// and clEnqueueNDRangeKernel.
  std::vector<FclMemRec *> BoundMems;
  bool Released = false;
};

struct FclQueueRec {
  FclContextRec *Ctx = nullptr;
  bool Released = false;
};

struct FclContextRec {
  Runtime *RT = nullptr;
  std::vector<std::unique_ptr<FclMemRec>> Mems;
  std::vector<std::unique_ptr<FclKernelRec>> Kernels;
  std::vector<std::unique_ptr<FclQueueRec>> Queues;
};

} // namespace shim
} // namespace fluidicl
} // namespace fcl

namespace {

// ShimLint helpers: report host-API misuse through the runtime's diagnostic
// sink. All of them are no-ops when Options::Check is Off (the sink drops
// diagnostics), so unarmed programs see the classic shim behavior.

void lint(FclContextRec *Ctx, check::DiagKind Kind, const std::string &Where,
          const std::string &Message, int ArgIndex = -1) {
  if (!Ctx || !Ctx->RT)
    return;
  check::DiagSink &Sink = Ctx->RT->diagSink();
  if (!Sink.enabled())
    return;
  Sink.report(check::Diag::make(Kind, Where, Message, ArgIndex));
}

/// Lints and rejects use of a released queue. Returns false when invalid.
bool checkQueue(fcl_command_queue Queue, const char *Api) {
  if (!Queue)
    return false;
  if (Queue->Released) {
    lint(Queue->Ctx, check::DiagKind::UseAfterRelease, Api,
         "command queue used after fclReleaseCommandQueue");
    return false;
  }
  return true;
}

/// Lints and rejects use of a released mem object. Returns false when
/// invalid.
bool checkMem(fcl_mem Buf, const char *Api) {
  if (!Buf)
    return false;
  if (Buf->Released) {
    lint(Buf->Ctx, check::DiagKind::UseAfterRelease, Api,
         "mem object used after fclReleaseMemObject");
    return false;
  }
  return true;
}

/// Lints and rejects use of a released kernel. Returns false when invalid.
bool checkKernel(fcl_kernel Kernel, const char *Api) {
  if (!Kernel)
    return false;
  if (Kernel->Released) {
    lint(Kernel->Ctx, check::DiagKind::UseAfterRelease, Api,
         "kernel used after fclReleaseKernel");
    return false;
  }
  return true;
}

} // namespace

fcl_context fcl::fluidicl::shim::fclCreateContext(Runtime &RT) {
  auto *Ctx = new FclContextRec();
  Ctx->RT = &RT;
  return Ctx;
}

void fcl::fluidicl::shim::fclReleaseContext(fcl_context Ctx) {
  if (!Ctx)
    return;
  // clReleaseContext on a context with live child objects leaks them in a
  // real OpenCL program (the context holds a reference until every child
  // is released).
  size_t LiveMems = 0, LiveKernels = 0, LiveQueues = 0;
  for (const auto &M : Ctx->Mems)
    LiveMems += M->Released ? 0 : 1;
  for (const auto &K : Ctx->Kernels)
    LiveKernels += K->Released ? 0 : 1;
  for (const auto &Q : Ctx->Queues)
    LiveQueues += Q->Released ? 0 : 1;
  if (LiveMems + LiveKernels + LiveQueues > 0)
    lint(Ctx, check::DiagKind::LeakedObjects, "fclReleaseContext",
         "context released with " + std::to_string(LiveMems) + " mem, " +
             std::to_string(LiveKernels) + " kernel, " +
             std::to_string(LiveQueues) + " queue object(s) still alive");
  delete Ctx;
}

fcl_command_queue fcl::fluidicl::shim::fclCreateCommandQueue(fcl_context Ctx) {
  if (!Ctx)
    return nullptr;
  auto Queue = std::make_unique<FclQueueRec>();
  Queue->Ctx = Ctx;
  Ctx->Queues.push_back(std::move(Queue));
  return Ctx->Queues.back().get();
}

fcl_int fcl::fluidicl::shim::fclReleaseCommandQueue(fcl_command_queue Queue) {
  if (!Queue)
    return FCL_INVALID_COMMAND_QUEUE;
  if (Queue->Released) {
    lint(Queue->Ctx, check::DiagKind::DoubleRelease, "fclReleaseCommandQueue",
         "command queue released twice");
    return FCL_INVALID_COMMAND_QUEUE;
  }
  Queue->Released = true;
  return FCL_SUCCESS;
}

fcl_int fcl::fluidicl::shim::fclReleaseMemObject(fcl_mem Buf) {
  if (!Buf)
    return FCL_INVALID_MEM_OBJECT;
  if (Buf->Released) {
    lint(Buf->Ctx, check::DiagKind::DoubleRelease, "fclReleaseMemObject",
         "mem object released twice");
    return FCL_INVALID_MEM_OBJECT;
  }
  Buf->Released = true;
  return FCL_SUCCESS;
}

fcl_int fcl::fluidicl::shim::fclReleaseKernel(fcl_kernel Kernel) {
  if (!Kernel)
    return FCL_INVALID_KERNEL;
  if (Kernel->Released) {
    lint(Kernel->Ctx, check::DiagKind::DoubleRelease, "fclReleaseKernel",
         "kernel released twice");
    return FCL_INVALID_KERNEL;
  }
  Kernel->Released = true;
  return FCL_SUCCESS;
}

fcl_mem fcl::fluidicl::shim::fclCreateBuffer(fcl_context Ctx,
                                             fcl_mem_flags /*Flags*/,
                                             size_t Size, void *HostPtr,
                                             fcl_int *Err) {
  if (!Ctx || Size == 0) {
    if (Err)
      *Err = FCL_INVALID_VALUE;
    return nullptr;
  }
  auto Mem = std::make_unique<FclMemRec>();
  Mem->Ctx = Ctx;
  Mem->Size = Size;
  Mem->Id = Ctx->RT->createBuffer(Size, "fclbuf");
  if (HostPtr) // CL_MEM_COPY_HOST_PTR-style initialization.
    Ctx->RT->writeBuffer(Mem->Id, HostPtr, Size);
  if (Err)
    *Err = FCL_SUCCESS;
  Ctx->Mems.push_back(std::move(Mem));
  return Ctx->Mems.back().get();
}

fcl_int fcl::fluidicl::shim::fclEnqueueWriteBuffer(fcl_command_queue Queue,
                                                   fcl_mem Buf,
                                                   fcl_bool /*Blocking*/,
                                                   size_t Offset, size_t Size,
                                                   const void *Ptr) {
  if (!Buf)
    return FCL_INVALID_MEM_OBJECT;
  if (!checkQueue(Queue, "fclEnqueueWriteBuffer"))
    return FCL_INVALID_COMMAND_QUEUE;
  if (!checkMem(Buf, "fclEnqueueWriteBuffer"))
    return FCL_INVALID_MEM_OBJECT;
  // The paper's subset writes whole buffers from offset 0.
  if (Offset != 0 || Offset + Size > Buf->Size)
    return FCL_INVALID_VALUE;
  Queue->Ctx->RT->writeBuffer(Buf->Id, Ptr, Size);
  return FCL_SUCCESS;
}

fcl_int fcl::fluidicl::shim::fclEnqueueReadBuffer(fcl_command_queue Queue,
                                                  fcl_mem Buf,
                                                  fcl_bool Blocking,
                                                  size_t Offset, size_t Size,
                                                  void *Ptr) {
  if (!Buf)
    return FCL_INVALID_MEM_OBJECT;
  if (!checkQueue(Queue, "fclEnqueueReadBuffer"))
    return FCL_INVALID_COMMAND_QUEUE;
  if (!checkMem(Buf, "fclEnqueueReadBuffer"))
    return FCL_INVALID_MEM_OBJECT;
  if (Offset != 0 || Offset + Size > Buf->Size)
    return FCL_INVALID_VALUE;
  if (Blocking == FCL_FALSE)
    lint(Queue->Ctx, check::DiagKind::NonBlockingReadAssumed,
         "fclEnqueueReadBuffer",
         "non-blocking read executed as blocking; the host must not touch "
         "the destination before the read event completes");
  Queue->Ctx->RT->readBuffer(Buf->Id, Ptr, Size);
  return FCL_SUCCESS;
}

fcl_kernel fcl::fluidicl::shim::fclCreateKernel(fcl_context Ctx,
                                                const char *Name,
                                                fcl_int *Err) {
  if (!Ctx || !Name) {
    if (Err)
      *Err = FCL_INVALID_VALUE;
    return nullptr;
  }
  const kern::KernelInfo *Info = kern::Registry::builtin().find(Name);
  if (!Info) {
    if (Err)
      *Err = FCL_INVALID_KERNEL_NAME;
    return nullptr;
  }
  auto Kernel = std::make_unique<FclKernelRec>();
  Kernel->Ctx = Ctx;
  Kernel->Info = Info;
  Kernel->Args.resize(Info->Args.size());
  Kernel->ArgSet.assign(Info->Args.size(), false);
  Kernel->BoundMems.assign(Info->Args.size(), nullptr);
  if (Err)
    *Err = FCL_SUCCESS;
  Ctx->Kernels.push_back(std::move(Kernel));
  return Ctx->Kernels.back().get();
}

fcl_int fcl::fluidicl::shim::fclSetKernelArg(fcl_kernel Kernel,
                                             fcl_uint Index, size_t Size,
                                             const void *Value) {
  if (!Kernel || !Value)
    return FCL_INVALID_VALUE;
  if (!checkKernel(Kernel, "fclSetKernelArg"))
    return FCL_INVALID_KERNEL;
  if (Index >= Kernel->Info->Args.size())
    return FCL_INVALID_VALUE;
  kern::ArgAccess Access = Kernel->Info->Args[Index];
  runtime::KArg Arg;
  FclMemRec *Bound = nullptr;
  if (Access == kern::ArgAccess::Scalar) {
    // As in OpenCL, scalars arrive as raw bytes; FluidiCL kernels read the
    // integer or floating interpretation per their declared signature, so
    // both are populated.
    if (Size == 4) {
      int32_t I;
      float F;
      std::memcpy(&I, Value, 4);
      std::memcpy(&F, Value, 4);
      Arg.IntValue = I;
      Arg.FpValue = static_cast<double>(F);
    } else if (Size == 8) {
      int64_t I;
      double D;
      std::memcpy(&I, Value, 8);
      std::memcpy(&D, Value, 8);
      Arg.IntValue = I;
      Arg.FpValue = D;
    } else {
      return FCL_INVALID_VALUE;
    }
  } else {
    if (Size != sizeof(fcl_mem))
      return FCL_INVALID_VALUE;
    fcl_mem Mem;
    std::memcpy(&Mem, Value, sizeof(fcl_mem));
    if (!Mem || Mem->Ctx != Kernel->Ctx)
      return FCL_INVALID_MEM_OBJECT;
    if (!checkMem(Mem, "fclSetKernelArg"))
      return FCL_INVALID_MEM_OBJECT;
    Arg = runtime::KArg::buffer(Mem->Id);
    Bound = Mem;
  }
  Kernel->Args[Index] = Arg;
  Kernel->ArgSet[Index] = true;
  Kernel->BoundMems[Index] = Bound;
  return FCL_SUCCESS;
}

fcl_int fcl::fluidicl::shim::fclEnqueueNDRangeKernel(
    fcl_command_queue Queue, fcl_kernel Kernel, fcl_uint WorkDim,
    const size_t *GlobalWorkOffset, const size_t *GlobalWorkSize,
    const size_t *LocalWorkSize) {
  if (!Queue || !Kernel)
    return FCL_INVALID_VALUE;
  if (!checkQueue(Queue, "fclEnqueueNDRangeKernel"))
    return FCL_INVALID_COMMAND_QUEUE;
  if (!checkKernel(Kernel, "fclEnqueueNDRangeKernel"))
    return FCL_INVALID_KERNEL;
  if (WorkDim < 1 || WorkDim > 3)
    return FCL_INVALID_WORK_DIMENSION;
  if (GlobalWorkOffset != nullptr)
    return FCL_INVALID_VALUE; // Paper subset: no global offsets.
  if (!GlobalWorkSize || !LocalWorkSize)
    return FCL_INVALID_VALUE;
  for (size_t I = 0; I < Kernel->ArgSet.size(); ++I)
    if (!Kernel->ArgSet[I]) {
      lint(Kernel->Ctx, check::DiagKind::UnsetKernelArgs,
           Kernel->Info->Name,
           "launch with argument " + std::to_string(I) + " never set",
           static_cast<int>(I));
      return FCL_INVALID_KERNEL_ARGS;
    }
  for (size_t I = 0; I < Kernel->BoundMems.size(); ++I)
    if (Kernel->BoundMems[I] && Kernel->BoundMems[I]->Released) {
      lint(Kernel->Ctx, check::DiagKind::UseAfterRelease,
           Kernel->Info->Name,
           "launch with argument " + std::to_string(I) +
               " bound to a released mem object",
           static_cast<int>(I));
      return FCL_INVALID_MEM_OBJECT;
    }

  kern::NDRange Range;
  if (WorkDim == 1)
    Range = kern::NDRange::of1D(GlobalWorkSize[0], LocalWorkSize[0]);
  else if (WorkDim == 2)
    Range = kern::NDRange::of2D(GlobalWorkSize[0], GlobalWorkSize[1],
                                LocalWorkSize[0], LocalWorkSize[1]);
  else
    Range = kern::NDRange::of3D(GlobalWorkSize[0], GlobalWorkSize[1],
                                GlobalWorkSize[2], LocalWorkSize[0],
                                LocalWorkSize[1], LocalWorkSize[2]);
  Queue->Ctx->RT->launchKernel(Kernel->Info->Name, Range, Kernel->Args);
  return FCL_SUCCESS;
}

fcl_int fcl::fluidicl::shim::fclFinish(fcl_command_queue Queue) {
  if (!Queue)
    return FCL_INVALID_VALUE;
  if (!checkQueue(Queue, "fclFinish"))
    return FCL_INVALID_COMMAND_QUEUE;
  Queue->Ctx->RT->finish();
  return FCL_SUCCESS;
}
