//===- fluidicl/OpenCLShim.cpp - OpenCL-style C API shim -------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluidicl/OpenCLShim.h"

#include "kern/Registry.h"
#include "support/Error.h"

#include <cstring>
#include <vector>

using namespace fcl;
using namespace fcl::fluidicl;
using namespace fcl::fluidicl::shim;

namespace fcl {
namespace fluidicl {
namespace shim {

struct FclMemRec {
  FclContextRec *Ctx = nullptr;
  runtime::BufferId Id = 0;
  uint64_t Size = 0;
};

struct FclKernelRec {
  FclContextRec *Ctx = nullptr;
  const kern::KernelInfo *Info = nullptr;
  std::vector<runtime::KArg> Args;
  std::vector<bool> ArgSet;
};

struct FclContextRec {
  Runtime *RT = nullptr;
  std::vector<std::unique_ptr<FclMemRec>> Mems;
  std::vector<std::unique_ptr<FclKernelRec>> Kernels;
};

} // namespace shim
} // namespace fluidicl
} // namespace fcl

fcl_context fcl::fluidicl::shim::fclCreateContext(Runtime &RT) {
  auto *Ctx = new FclContextRec();
  Ctx->RT = &RT;
  return Ctx;
}

void fcl::fluidicl::shim::fclReleaseContext(fcl_context Ctx) { delete Ctx; }

fcl_command_queue fcl::fluidicl::shim::fclCreateCommandQueue(fcl_context Ctx) {
  return Ctx;
}

fcl_mem fcl::fluidicl::shim::fclCreateBuffer(fcl_context Ctx,
                                             fcl_mem_flags /*Flags*/,
                                             size_t Size, void *HostPtr,
                                             fcl_int *Err) {
  if (!Ctx || Size == 0) {
    if (Err)
      *Err = FCL_INVALID_VALUE;
    return nullptr;
  }
  auto Mem = std::make_unique<FclMemRec>();
  Mem->Ctx = Ctx;
  Mem->Size = Size;
  Mem->Id = Ctx->RT->createBuffer(Size, "fclbuf");
  if (HostPtr) // CL_MEM_COPY_HOST_PTR-style initialization.
    Ctx->RT->writeBuffer(Mem->Id, HostPtr, Size);
  if (Err)
    *Err = FCL_SUCCESS;
  Ctx->Mems.push_back(std::move(Mem));
  return Ctx->Mems.back().get();
}

fcl_int fcl::fluidicl::shim::fclEnqueueWriteBuffer(fcl_command_queue Queue,
                                                   fcl_mem Buf,
                                                   fcl_bool /*Blocking*/,
                                                   size_t Offset, size_t Size,
                                                   const void *Ptr) {
  if (!Queue || !Buf)
    return FCL_INVALID_MEM_OBJECT;
  // The paper's subset writes whole buffers from offset 0.
  if (Offset != 0 || Offset + Size > Buf->Size)
    return FCL_INVALID_VALUE;
  Queue->RT->writeBuffer(Buf->Id, Ptr, Size);
  return FCL_SUCCESS;
}

fcl_int fcl::fluidicl::shim::fclEnqueueReadBuffer(fcl_command_queue Queue,
                                                  fcl_mem Buf,
                                                  fcl_bool /*Blocking*/,
                                                  size_t Offset, size_t Size,
                                                  void *Ptr) {
  if (!Queue || !Buf)
    return FCL_INVALID_MEM_OBJECT;
  if (Offset != 0 || Offset + Size > Buf->Size)
    return FCL_INVALID_VALUE;
  Queue->RT->readBuffer(Buf->Id, Ptr, Size);
  return FCL_SUCCESS;
}

fcl_kernel fcl::fluidicl::shim::fclCreateKernel(fcl_context Ctx,
                                                const char *Name,
                                                fcl_int *Err) {
  if (!Ctx || !Name) {
    if (Err)
      *Err = FCL_INVALID_VALUE;
    return nullptr;
  }
  const kern::KernelInfo *Info = kern::Registry::builtin().find(Name);
  if (!Info) {
    if (Err)
      *Err = FCL_INVALID_KERNEL_NAME;
    return nullptr;
  }
  auto Kernel = std::make_unique<FclKernelRec>();
  Kernel->Ctx = Ctx;
  Kernel->Info = Info;
  Kernel->Args.resize(Info->Args.size());
  Kernel->ArgSet.assign(Info->Args.size(), false);
  if (Err)
    *Err = FCL_SUCCESS;
  Ctx->Kernels.push_back(std::move(Kernel));
  return Ctx->Kernels.back().get();
}

fcl_int fcl::fluidicl::shim::fclSetKernelArg(fcl_kernel Kernel,
                                             fcl_uint Index, size_t Size,
                                             const void *Value) {
  if (!Kernel || !Value)
    return FCL_INVALID_VALUE;
  if (Index >= Kernel->Info->Args.size())
    return FCL_INVALID_VALUE;
  kern::ArgAccess Access = Kernel->Info->Args[Index];
  runtime::KArg Arg;
  if (Access == kern::ArgAccess::Scalar) {
    // As in OpenCL, scalars arrive as raw bytes; FluidiCL kernels read the
    // integer or floating interpretation per their declared signature, so
    // both are populated.
    if (Size == 4) {
      int32_t I;
      float F;
      std::memcpy(&I, Value, 4);
      std::memcpy(&F, Value, 4);
      Arg.IntValue = I;
      Arg.FpValue = static_cast<double>(F);
    } else if (Size == 8) {
      int64_t I;
      double D;
      std::memcpy(&I, Value, 8);
      std::memcpy(&D, Value, 8);
      Arg.IntValue = I;
      Arg.FpValue = D;
    } else {
      return FCL_INVALID_VALUE;
    }
  } else {
    if (Size != sizeof(fcl_mem))
      return FCL_INVALID_VALUE;
    fcl_mem Mem;
    std::memcpy(&Mem, Value, sizeof(fcl_mem));
    if (!Mem || Mem->Ctx != Kernel->Ctx)
      return FCL_INVALID_MEM_OBJECT;
    Arg = runtime::KArg::buffer(Mem->Id);
  }
  Kernel->Args[Index] = Arg;
  Kernel->ArgSet[Index] = true;
  return FCL_SUCCESS;
}

fcl_int fcl::fluidicl::shim::fclEnqueueNDRangeKernel(
    fcl_command_queue Queue, fcl_kernel Kernel, fcl_uint WorkDim,
    const size_t *GlobalWorkOffset, const size_t *GlobalWorkSize,
    const size_t *LocalWorkSize) {
  if (!Queue || !Kernel)
    return FCL_INVALID_VALUE;
  if (WorkDim < 1 || WorkDim > 3)
    return FCL_INVALID_WORK_DIMENSION;
  if (GlobalWorkOffset != nullptr)
    return FCL_INVALID_VALUE; // Paper subset: no global offsets.
  if (!GlobalWorkSize || !LocalWorkSize)
    return FCL_INVALID_VALUE;
  for (size_t I = 0; I < Kernel->ArgSet.size(); ++I)
    if (!Kernel->ArgSet[I])
      return FCL_INVALID_KERNEL_ARGS;

  kern::NDRange Range;
  if (WorkDim == 1)
    Range = kern::NDRange::of1D(GlobalWorkSize[0], LocalWorkSize[0]);
  else if (WorkDim == 2)
    Range = kern::NDRange::of2D(GlobalWorkSize[0], GlobalWorkSize[1],
                                LocalWorkSize[0], LocalWorkSize[1]);
  else
    Range = kern::NDRange::of3D(GlobalWorkSize[0], GlobalWorkSize[1],
                                GlobalWorkSize[2], LocalWorkSize[0],
                                LocalWorkSize[1], LocalWorkSize[2]);
  Queue->RT->launchKernel(Kernel->Info->Name, Range, Kernel->Args);
  return FCL_SUCCESS;
}

fcl_int fcl::fluidicl::shim::fclFinish(fcl_command_queue Queue) {
  if (!Queue)
    return FCL_INVALID_VALUE;
  Queue->RT->finish();
  return FCL_SUCCESS;
}
