//===- fluidicl/OnlineProfiler.cpp - Kernel-variant selection -------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluidicl/OnlineProfiler.h"

#include "kern/Registry.h"
#include "support/Error.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::fluidicl;

OnlineProfiler::Profile &
OnlineProfiler::profileFor(const kern::KernelInfo &Base) {
  auto It = Profiles.find(Base.Name);
  if (It != Profiles.end())
    return It->second;

  Profile P;
  P.Candidates.push_back(&Base);
  for (const std::string &Name : Base.Variants) {
    const kern::KernelInfo &Variant = kern::Registry::builtin().get(Name);
    // Section 6.6 restriction: variants must be functionally identical
    // with the same arguments.
    FCL_CHECK(Variant.Args == Base.Args,
              "kernel variant has mismatched arguments");
    P.Candidates.push_back(&Variant);
  }
  P.AvgNanosPerWg.assign(P.Candidates.size(), -1.0);
  if (P.Candidates.size() == 1)
    P.Winner = &Base; // Nothing to profile.
  return Profiles.emplace(Base.Name, std::move(P)).first->second;
}

const kern::KernelInfo *
OnlineProfiler::pickCpuKernel(const kern::KernelInfo &Base) {
  Profile &P = profileFor(Base);
  if (P.Winner)
    return P.Winner;
  for (size_t I = 0; I < P.Candidates.size(); ++I)
    if (P.AvgNanosPerWg[I] < 0)
      return P.Candidates[I];
  FCL_UNREACHABLE("all variants measured but no winner fixed");
}

void OnlineProfiler::reportSubkernel(const kern::KernelInfo &Base,
                                     const kern::KernelInfo &Used,
                                     uint64_t Groups, Duration Took) {
  if (Groups == 0)
    return;
  Profile &P = profileFor(Base);
  if (P.Winner)
    return;
  for (size_t I = 0; I < P.Candidates.size(); ++I) {
    if (P.Candidates[I] != &Used)
      continue;
    if (P.AvgNanosPerWg[I] < 0)
      P.AvgNanosPerWg[I] = static_cast<double>(Took.nanos()) /
                           static_cast<double>(Groups);
    break;
  }
  // Decide once every candidate has a measurement.
  if (std::any_of(P.AvgNanosPerWg.begin(), P.AvgNanosPerWg.end(),
                  [](double V) { return V < 0; }))
    return;
  size_t Best = 0;
  for (size_t I = 1; I < P.AvgNanosPerWg.size(); ++I)
    if (P.AvgNanosPerWg[I] < P.AvgNanosPerWg[Best])
      Best = I;
  P.Winner = P.Candidates[Best];
}

bool OnlineProfiler::decided(const kern::KernelInfo &Base) const {
  auto It = Profiles.find(Base.Name);
  return It != Profiles.end() && It->second.Winner != nullptr;
}

std::string OnlineProfiler::chosenName(const kern::KernelInfo &Base) const {
  auto It = Profiles.find(Base.Name);
  if (It == Profiles.end() || !It->second.Winner)
    return Base.Name;
  return It->second.Winner->Name;
}
