//===- fluidicl/VersionTracker.cpp - Buffer version tracking --------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluidicl/VersionTracker.h"

#include "race/Race.h"
#include "support/Error.h"

using namespace fcl;
using namespace fcl::fluidicl;

void VersionTracker::raceWrite(const char *What) const {
  if (!RaceObj.empty() && race::Analyzer::enabled())
    race::Analyzer::instance().sharedWrite(RaceObj, What);
}

void VersionTracker::raceRead(const char *What) const {
  if (!RaceObj.empty() && race::Analyzer::enabled())
    race::Analyzer::instance().sharedRead(RaceObj, What);
}

uint32_t VersionTracker::addBuffer() {
  raceWrite("addBuffer");
  States.push_back(State());
  return static_cast<uint32_t>(States.size() - 1);
}

void VersionTracker::noteHostWrite(uint32_t Buf, uint64_t KernelId) {
  raceWrite("noteHostWrite");
  FCL_CHECK(Buf < States.size(), "unknown buffer");
  States[Buf].Expected = KernelId;
  States[Buf].CpuReceived = KernelId;
}

void VersionTracker::noteKernelWillWrite(uint32_t Buf, uint64_t KernelId) {
  raceWrite("noteKernelWillWrite");
  FCL_CHECK(Buf < States.size(), "unknown buffer");
  FCL_CHECK(KernelId > States[Buf].Expected, "kernel IDs must increase");
  States[Buf].Expected = KernelId;
}

void VersionTracker::noteCpuReceived(uint32_t Buf, uint64_t KernelId) {
  raceWrite("noteCpuReceived");
  FCL_CHECK(Buf < States.size(), "unknown buffer");
  // Discard stale arrivals (section 5.3: late messages are ignored).
  if (KernelId > States[Buf].CpuReceived) {
    States[Buf].CpuReceived = KernelId;
    ++ReceivesApplied;
  } else {
    ++StaleDrops;
  }
}

bool VersionTracker::cpuCurrent(uint32_t Buf) const {
  raceRead("cpuCurrent");
  FCL_CHECK(Buf < States.size(), "unknown buffer");
  return States[Buf].CpuReceived >= States[Buf].Expected;
}

bool VersionTracker::cpuCurrentAll(const std::vector<uint32_t> &Bufs) const {
  for (uint32_t B : Bufs)
    if (!cpuCurrent(B))
      return false;
  return true;
}

uint64_t VersionTracker::expectedVersion(uint32_t Buf) const {
  raceRead("expectedVersion");
  FCL_CHECK(Buf < States.size(), "unknown buffer");
  return States[Buf].Expected;
}

uint64_t VersionTracker::cpuVersion(uint32_t Buf) const {
  raceRead("cpuVersion");
  FCL_CHECK(Buf < States.size(), "unknown buffer");
  return States[Buf].CpuReceived;
}
