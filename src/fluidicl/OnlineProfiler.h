//===- fluidicl/OnlineProfiler.h - Kernel-variant selection -----*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online profiling over functionally-identical kernel variants (paper
/// section 6.6): when the user (or an optimizing compiler) supplies
/// device-specific versions of a kernel, FluidiCL runs each version for a
/// small CPU allocation, measures time per work-group, and uses the best
/// one for the remaining subkernels. The decision is remembered per kernel
/// name for subsequent launches.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_FLUIDICL_ONLINEPROFILER_H
#define FCL_FLUIDICL_ONLINEPROFILER_H

#include "kern/Kernel.h"
#include "support/SimTime.h"

#include <map>
#include <string>
#include <vector>

namespace fcl {
namespace fluidicl {

/// Chooses among CPU kernel variants by measuring early subkernels.
class OnlineProfiler {
public:
  /// The CPU variant to use for the next subkernel of \p Base. While
  /// undecided, cycles through the candidates so each gets one
  /// measurement; afterwards always returns the winner.
  const kern::KernelInfo *pickCpuKernel(const kern::KernelInfo &Base);

  /// Feeds back a measured subkernel (\p Used must be a value previously
  /// returned by pickCpuKernel for \p Base).
  void reportSubkernel(const kern::KernelInfo &Base,
                       const kern::KernelInfo &Used, uint64_t Groups,
                       Duration Took);

  /// True once the winner for \p Base has been fixed.
  bool decided(const kern::KernelInfo &Base) const;

  /// Name of the chosen variant (or the base kernel) once decided.
  std::string chosenName(const kern::KernelInfo &Base) const;

private:
  struct Profile {
    std::vector<const kern::KernelInfo *> Candidates;
    std::vector<double> AvgNanosPerWg; // <0 while unmeasured.
    const kern::KernelInfo *Winner = nullptr;
  };

  Profile &profileFor(const kern::KernelInfo &Base);

  std::map<std::string, Profile> Profiles;
};

} // namespace fluidicl
} // namespace fcl

#endif // FCL_FLUIDICL_ONLINEPROFILER_H
