//===- fluidicl/BufferPool.h - Pooled GPU scratch buffers -------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FluidiCL needs two extra GPU buffers per written buffer per kernel (the
/// "original data" snapshot and the incoming-CPU-data buffer). Creating and
/// destroying them every kernel is expensive, so section 6.1 keeps a pool:
/// acquire returns the smallest free pooled buffer that fits (or creates
/// one), release returns it, and end-of-kernel reclamation frees buffers
/// that have not been used for a while.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_FLUIDICL_BUFFERPOOL_H
#define FCL_FLUIDICL_BUFFERPOOL_H

#include "mcl/Buffer.h"
#include "mcl/Context.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fcl {
namespace fluidicl {

/// Size-indexed pool of reusable GPU buffers.
class BufferPool {
public:
  /// \p Enabled false degenerates to create-on-acquire / destroy-on-release
  /// (the no-pooling ablation).
  BufferPool(mcl::Context &Ctx, mcl::Device &Dev, bool Enabled);

  /// Shadow-object name for the fcl::race analyzer (empty disables).
  void setRaceObject(std::string Name) { RaceObj = std::move(Name); }

  /// Returns a buffer with size() >= \p Size. May create a new one
  /// (charging the driver's buffer-creation overhead).
  mcl::Buffer *acquire(uint64_t Size);

  /// Returns \p Buf to the pool (or destroys it when pooling is disabled).
  void release(mcl::Buffer *Buf);

  /// End-of-kernel reclamation: frees pooled buffers not used within the
  /// last \p MaxIdleKernels kernels and advances the kernel epoch.
  void endKernelReclaim(uint64_t MaxIdleKernels = 8);

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  /// Total bytes of buffers the pool had to create (each miss's size).
  uint64_t bytesCreated() const { return BytesCreated; }
  size_t freeCount() const { return Free.size(); }
  /// Buffers handed out by acquire() and not yet released (0 after a clean
  /// run; the ProtocolChecker flags anything else as a scratch leak).
  size_t inUseCount() const { return InUse.size(); }

private:
  struct Entry {
    std::unique_ptr<mcl::Buffer> Buf;
    uint64_t LastUsedEpoch = 0;
  };

  void raceWrite(const char *What) const;

  mcl::Context &Ctx;
  mcl::Device &Dev;
  std::string RaceObj;
  bool Enabled;
  uint64_t Epoch = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t BytesCreated = 0;
  std::vector<Entry> Free;
  std::vector<std::unique_ptr<mcl::Buffer>> InUse;
};

} // namespace fluidicl
} // namespace fcl

#endif // FCL_FLUIDICL_BUFFERPOOL_H
