//===- fluidicl/BufferPool.cpp - Pooled GPU scratch buffers ---------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluidicl/BufferPool.h"

#include "race/Race.h"
#include "support/Error.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::fluidicl;

void BufferPool::raceWrite(const char *What) const {
  if (!RaceObj.empty() && race::Analyzer::enabled())
    race::Analyzer::instance().sharedWrite(RaceObj, What);
}

BufferPool::BufferPool(mcl::Context &Ctx, mcl::Device &Dev, bool Enabled)
    : Ctx(Ctx), Dev(Dev), Enabled(Enabled) {}

mcl::Buffer *BufferPool::acquire(uint64_t Size) {
  raceWrite("acquire");
  FCL_CHECK(Size > 0, "zero-sized pool request");
  if (Enabled) {
    // Smallest free buffer that fits.
    size_t BestIdx = Free.size();
    for (size_t I = 0; I < Free.size(); ++I) {
      if (Free[I].Buf->size() < Size)
        continue;
      if (BestIdx == Free.size() ||
          Free[I].Buf->size() < Free[BestIdx].Buf->size())
        BestIdx = I;
    }
    if (BestIdx != Free.size()) {
      ++Hits;
      InUse.push_back(std::move(Free[BestIdx].Buf));
      Free.erase(Free.begin() + static_cast<ptrdiff_t>(BestIdx));
      return InUse.back().get();
    }
  }
  ++Misses;
  BytesCreated += Size;
  InUse.push_back(Ctx.createBuffer(Dev, Size, "fcl-pool"));
  return InUse.back().get();
}

void BufferPool::release(mcl::Buffer *Buf) {
  raceWrite("release");
  auto It = std::find_if(InUse.begin(), InUse.end(),
                         [Buf](const std::unique_ptr<mcl::Buffer> &P) {
                           return P.get() == Buf;
                         });
  FCL_CHECK(It != InUse.end(), "releasing a buffer the pool does not own");
  if (Enabled) {
    Entry E;
    E.Buf = std::move(*It);
    E.LastUsedEpoch = Epoch;
    Free.push_back(std::move(E));
  }
  InUse.erase(It);
}

void BufferPool::endKernelReclaim(uint64_t MaxIdleKernels) {
  raceWrite("endKernelReclaim");
  ++Epoch;
  if (!Enabled)
    return;
  std::erase_if(Free, [this, MaxIdleKernels](const Entry &E) {
    return Epoch - E.LastUsedEpoch > MaxIdleKernels;
  });
}
