//===- fluidicl/Runtime.cpp - The FluidiCL runtime -------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluidicl/Runtime.h"

#include "fluidicl/KernelExec.h"
#include "kern/Registry.h"
#include "race/Race.h"
#include "support/Error.h"
#include "support/Log.h"
#include "trace/Tracer.h"

#include <cstring>

using namespace fcl;
using namespace fcl::fluidicl;

Runtime::Runtime(mcl::Context &Ctx, Options Opts)
    : HeteroRuntime(Ctx), Opts(Opts), Diags(Opts.Check),
      GpuAppQueue(Ctx.createQueue(Ctx.gpu(), "fcl-gpu-app")),
      CpuQueue(Ctx.createQueue(Ctx.cpu(), "fcl-cpu")),
      HdQueue(Ctx.createQueue(Ctx.gpu(), "fcl-hd")),
      DhQueue(Ctx.createQueue(Ctx.gpu(), "fcl-dh")),
      StatusBuf(Ctx.createBuffer(Ctx.gpu(), 64, "fcl-status")),
      Pool(Ctx, Ctx.gpu(), Opts.BufferPool) {
  // The threading plan for multi-simulator work is one lock per runtime:
  // every API entry point and completion callback declares this section,
  // and the race analyzer checks all shared-state accesses stay inside it.
  static uint64_t NextRaceId = 0;
  RaceSec = "fcl.rt#" + std::to_string(NextRaceId++);
  Versions.setRaceObject(RaceSec + ".versions");
  Pool.setRaceObject(RaceSec + ".pool");
  Diags.setStats(&Stats);
  // Violations show up as zero-duration slices on a "Check" lane (race
  // findings on a "Race" lane) so they line up with the launch timeline
  // in the trace viewer.
  Diags.setObserver([this](const check::Diag &D) {
    if (trace::Tracer *T = this->Ctx.tracer()) {
      const char *Name = check::diagKindName(D.Kind);
      const char *Lane =
          std::strncmp(Name, "race_", 5) == 0 ? "Race" : "Check";
      T->record(Lane, Name, this->Ctx.now(), this->Ctx.now(), D.str());
    }
  });
  if (Diags.enabled())
    Checker = std::make_unique<check::ProtocolChecker>(Diags);
}

Runtime::~Runtime() { finish(); }

Runtime::DualBuffer &Runtime::buf(runtime::BufferId Id) {
  FCL_CHECK(Id < Buffers.size(), "invalid buffer id");
  return *Buffers[Id];
}

runtime::BufferId Runtime::createBuffer(uint64_t Size,
                                        std::string DebugName) {
  race::Section RaceS(RaceSec);
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  auto B = std::make_unique<DualBuffer>();
  B->Size = Size;
  B->Name = DebugName;
  // Section 4.1: buffers are created for both the CPU and the GPU.
  B->CpuBuf = Ctx.createBuffer(Ctx.cpu(), Size, DebugName + ".cpu");
  B->GpuBuf = Ctx.createBuffer(Ctx.gpu(), Size, DebugName + ".gpu");
  Buffers.push_back(std::move(B));
  uint32_t VIdx = Versions.addBuffer();
  FCL_CHECK(VIdx == Buffers.size() - 1, "version index out of sync");
  return static_cast<runtime::BufferId>(VIdx);
}

void Runtime::writeBuffer(runtime::BufferId Id, const void *Src,
                          uint64_t Bytes) {
  race::Section RaceS(RaceSec);
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  DualBuffer &B = buf(Id);
  FCL_CHECK(Bytes <= B.Size, "write overruns buffer");
  // Section 4.1: one clEnqueueWriteBuffer becomes two, one per device.
  GpuAppQueue->enqueueWrite(*B.GpuBuf, Src, Bytes);
  B.CpuLanding = CpuQueue->enqueueWrite(*B.CpuBuf, Src, Bytes);
  Versions.noteHostWrite(Id, NextKernelId);
  noteVersion(Id);
}

void Runtime::readBuffer(runtime::BufferId Id, void *Dst, uint64_t Bytes) {
  race::Section RaceS(RaceSec);
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  DualBuffer &B = buf(Id);
  FCL_CHECK(Bytes <= B.Size, "read overruns buffer");
  // Section 6.2: serve the read from the CPU when its copy is current -
  // either the DH stage already brought the data back or the CPU executed
  // all work-groups.
  if (Opts.DataLocationTracking && Versions.cpuCurrent(Id)) {
    // Wait only for the command that lands this buffer's CPU data (host
    // write or DH transfer) - never for unrelated trailing subkernels.
    if (B.CpuLanding && !B.CpuLanding->isComplete())
      B.CpuLanding->wait();
    Stats.add("reads_from_cpu");
    Stats.add("reads_from_cpu_bytes", Bytes);
    Ctx.hostAdvance(Ctx.machine().Host.memcpyTime(Bytes));
    if (Dst && B.CpuBuf->backed())
      std::memcpy(Dst, B.CpuBuf->data(), Bytes);
    return;
  }
  // Otherwise read from the GPU, which always holds the most recent
  // version once the app-queue merges drain (in-order queue).
  Stats.add("reads_from_gpu");
  Stats.add("reads_from_gpu_bytes", Bytes);
  GpuAppQueue->enqueueRead(*B.GpuBuf, Dst, Bytes, 0, /*Blocking=*/true);
}

void Runtime::launchKernel(const std::string &KernelName,
                           const kern::NDRange &Range,
                           const std::vector<runtime::KArg> &Args) {
  race::Section RaceS(RaceSec);
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  const kern::KernelInfo &Kernel = kern::Registry::builtin().get(KernelName);
  FCL_CHECK(Kernel.Args.size() == Args.size(), "argument arity mismatch");
  auto Exec = std::make_shared<KernelExec>(*this, Kernel, Range, Args);
  Execs.push_back(Exec);
  Exec->run();
}

void Runtime::launchKernelAsync(const std::string &KernelName,
                                const kern::NDRange &Range,
                                const std::vector<runtime::KArg> &Args,
                                std::function<void()> OnDone) {
  race::Section RaceS(RaceSec);
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  const kern::KernelInfo &Kernel = kern::Registry::builtin().get(KernelName);
  FCL_CHECK(Kernel.Args.size() == Args.size(), "argument arity mismatch");
  auto Exec = std::make_shared<KernelExec>(*this, Kernel, Range, Args);
  Execs.push_back(Exec);
  Exec->start(std::move(OnDone));
}

void Runtime::readBufferAsync(runtime::BufferId Id, void *Dst, uint64_t Bytes,
                              std::function<void()> OnDone) {
  race::Section RaceS(RaceSec);
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  DualBuffer &B = buf(Id);
  FCL_CHECK(Bytes <= B.Size, "read overruns buffer");
  if (Opts.DataLocationTracking && Versions.cpuCurrent(Id)) {
    // Same routing as readBuffer, but the landing-event wait becomes a
    // completion subscription instead of a simulator drain.
    auto Fin = [this, &B, Dst, Bytes, OnDone = std::move(OnDone)] {
      Stats.add("reads_from_cpu");
      Stats.add("reads_from_cpu_bytes", Bytes);
      Ctx.hostAdvance(Ctx.machine().Host.memcpyTime(Bytes));
      if (Dst && B.CpuBuf->backed())
        std::memcpy(Dst, B.CpuBuf->data(), Bytes);
      OnDone();
    };
    if (B.CpuLanding && !B.CpuLanding->isComplete())
      B.CpuLanding->onComplete(std::move(Fin));
    else
      Fin();
    return;
  }
  Stats.add("reads_from_gpu");
  Stats.add("reads_from_gpu_bytes", Bytes);
  mcl::EventPtr Done =
      GpuAppQueue->enqueueRead(*B.GpuBuf, Dst, Bytes, 0, /*Blocking=*/false);
  Done->onComplete(std::move(OnDone));
}

void Runtime::finish() {
  race::Section RaceS(RaceSec);
  // Drain until every queue is idle and every DH transfer has landed.
  // Queues can feed each other (subkernel completion enqueues hd writes),
  // so iterate to a fixed point.
  for (int Round = 0; Round < 64; ++Round) {
    GpuAppQueue->finish();
    CpuQueue->finish();
    HdQueue->finish();
    DhQueue->finish();
    bool DhPending = false;
    for (const mcl::EventPtr &E : PendingDh)
      if (!E->isComplete())
        DhPending = true;
    if (!DhPending && GpuAppQueue->idle() && CpuQueue->idle() &&
        HdQueue->idle() && DhQueue->idle())
      break;
  }
  std::erase_if(PendingDh,
                [](const mcl::EventPtr &E) { return E->isComplete(); });
  FCL_CHECK(PendingDh.empty(), "DH transfers failed to drain");
  if (Checker)
    Checker->onRunFinish(Pool.inUseCount());
}

std::vector<KernelStats> Runtime::kernelStats() const {
  std::vector<KernelStats> Out;
  Out.reserve(Execs.size());
  for (const auto &E : Execs)
    Out.push_back(E->stats());
  return Out;
}

void Runtime::collectStats(stats::RunReport &Report) const {
  // Subsystem counters are snapshotted here rather than accumulated inline
  // so ablations (pooling off, tracking off) naturally export zeros.
  Stats.add("bufferpool_hits", Pool.hits() - Stats.counter("bufferpool_hits"));
  Stats.add("bufferpool_misses",
            Pool.misses() - Stats.counter("bufferpool_misses"));
  Stats.add("bufferpool_bytes_created",
            Pool.bytesCreated() - Stats.counter("bufferpool_bytes_created"));
  uint64_t Lookups = Pool.hits() + Pool.misses();
  Stats.set("bufferpool_hit_rate",
            Lookups ? static_cast<double>(Pool.hits()) /
                          static_cast<double>(Lookups)
                    : 0.0);
  Stats.add("version_receives_applied",
            Versions.receivesApplied() -
                Stats.counter("version_receives_applied"));
  Stats.add("version_stale_drops",
            Versions.staleDrops() - Stats.counter("version_stale_drops"));
  HeteroRuntime::collectStats(Report);
  for (const auto &E : Execs)
    Report.Launches.push_back(E->stats());
}

void Runtime::whenCpuVersions(
    std::vector<std::pair<uint32_t, uint64_t>> Needs,
    std::function<void()> Fn) {
  race::Section RaceS(RaceSec);
  bool Satisfied = true;
  for (const auto &[Buf, Ver] : Needs)
    if (Versions.cpuVersion(Buf) < Ver)
      Satisfied = false;
  if (Satisfied) {
    Fn();
    return;
  }
  // Retry when the next outstanding DH transfer lands. Subscribing to one
  // pending event at a time is enough: every noteCpuReceived happens in a
  // DH completion (or makes the condition true synchronously).
  for (const mcl::EventPtr &E : PendingDh) {
    if (E->isComplete())
      continue;
    E->onComplete(
        [this, Needs = std::move(Needs), Fn = std::move(Fn)]() mutable {
          whenCpuVersions(std::move(Needs), std::move(Fn));
        });
    return;
  }
  FCL_FATAL("CPU copy is stale but no DH transfer is outstanding");
}

void Runtime::noteVersion(uint32_t Id) {
  if (Checker)
    Checker->onVersionNote(Id, Versions.expectedVersion(Id),
                           Versions.cpuVersion(Id));
}

void Runtime::trackDh(mcl::EventPtr E) {
  race::Section RaceS(RaceSec);
  std::erase_if(PendingDh,
                [](const mcl::EventPtr &P) { return P->isComplete(); });
  PendingDh.push_back(std::move(E));
}
