//===- fluidicl/ChunkController.cpp - Adaptive chunk sizing ---------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluidicl/ChunkController.h"

#include "support/Error.h"

#include <algorithm>
#include <cmath>

using namespace fcl;
using namespace fcl::fluidicl;

ChunkController::ChunkController(uint64_t TotalGroups, int ComputeUnits,
                                 double InitialPct, double StepPct)
    : TotalGroups(TotalGroups), ComputeUnits(ComputeUnits), StepPct(StepPct),
      CurrentPct(InitialPct), Growing(StepPct > 0) {
  FCL_CHECK(TotalGroups > 0, "empty NDRange");
  FCL_CHECK(ComputeUnits > 0, "no compute units");
  FCL_CHECK(InitialPct > 0 && InitialPct <= 100, "chunk percent out of range");
}

uint64_t ChunkController::nextChunk(uint64_t Remaining) const {
  if (Remaining == 0)
    return 0;
  uint64_t Chunk = static_cast<uint64_t>(
      std::llround(CurrentPct / 100.0 * static_cast<double>(TotalGroups)));
  // Keep every compute unit busy (section 5.1): never launch fewer
  // work-groups than units (work-group splitting handles the final
  // sub-unit tail separately).
  Chunk = std::max<uint64_t>(Chunk, static_cast<uint64_t>(ComputeUnits));
  return std::min(Chunk, Remaining);
}

void ChunkController::reportSubkernel(uint64_t Groups, Duration Took) {
  if (Groups == 0)
    return;
  double Avg =
      static_cast<double>(Took.nanos()) / static_cast<double>(Groups);
  if (BestAvgNanosPerWg < 0) {
    BestAvgNanosPerWg = Avg;
    if (Growing) {
      CurrentPct = std::min(100.0, CurrentPct + StepPct);
      ++GrowthSteps;
    }
    return;
  }
  if (!Growing)
    return;
  if (Avg < BestAvgNanosPerWg) {
    BestAvgNanosPerWg = Avg;
    CurrentPct = std::min(100.0, CurrentPct + StepPct);
    ++GrowthSteps;
    return;
  }
  // Time per work-group stopped improving: hold the chunk size here.
  Growing = false;
}
