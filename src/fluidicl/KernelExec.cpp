//===- fluidicl/KernelExec.cpp - One cooperative kernel execution ---------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fluidicl/KernelExec.h"

#include "kern/Registry.h"
#include "prof/Profiler.h"
#include "race/Race.h"
#include "support/Error.h"
#include "support/Log.h"

#include <algorithm>
#include <cstring>
#include <vector>

using namespace fcl;
using namespace fcl::fluidicl;

KernelExec::KernelExec(Runtime &RT, const kern::KernelInfo &Kernel,
                       const kern::NDRange &Range,
                       const std::vector<runtime::KArg> &Args)
    : RT(RT), Kernel(Kernel), Range(Range), Args(Args),
      KernelId(++RT.NextKernelId), TotalGroups(Range.totalGroups()),
      ItemsPerGroup(Range.itemsPerGroup()),
      GpuVisibleBoundary(std::make_shared<uint64_t>(Range.totalGroups())),
      CpuLow(Range.totalGroups()),
      Chunks(Range.totalGroups(), RT.Ctx.machine().Cpu.ComputeUnits,
             RT.Opts.InitialChunkPct, RT.Opts.StepPct) {
  Stats.KernelName = Kernel.Name;
  Stats.CpuKernelUsed = Kernel.Name;
  Stats.KernelId = KernelId;
  Stats.TotalGroups = TotalGroups;
  YieldGuardName = RT.RaceSec + ".yield#" + std::to_string(KernelId);
}

mcl::LaunchDesc KernelExec::buildDesc(const kern::KernelInfo &K,
                                      mcl::Device &Dev, bool ForGpu) const {
  mcl::LaunchDesc Desc;
  Desc.Kernel = &K;
  Desc.Range = Range;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I].IsBuffer) {
      Runtime::DualBuffer &B = RT.buf(Args[I].Buf);
      Desc.Args.push_back(mcl::LaunchArg::buffer(
          ForGpu ? B.GpuBuf.get() : B.CpuBuf.get()));
    } else {
      mcl::LaunchArg A;
      A.IntValue = Args[I].IntValue;
      A.FpValue = Args[I].FpValue;
      Desc.Args.push_back(A);
    }
  }
  (void)Dev;
  return Desc;
}

void KernelExec::run() {
  start(nullptr);
  // Block the application until the kernel is complete (paper section 7:
  // kernel execution calls are blocking).
  RT.Ctx.simulator().runWhileNot([this] { return AppComplete; });
  FCL_CHECK(AppComplete, "kernel execution stalled");
}

void KernelExec::start(std::function<void()> Done) {
  FCL_PROF_SCOPE("fcl.launch_setup");
  OnDone = std::move(Done);
  StartedAt = RT.Ctx.now();

  // Classify arguments: which buffers does this kernel write (they need
  // orig/cpu-data scratch and merging), and which must be current on the
  // CPU before subkernels may start (section 5.3). The required versions
  // are captured *before* this kernel bumps its out buffers.
  std::vector<std::pair<uint32_t, uint64_t>> Gate;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (!Args[I].IsBuffer)
      continue;
    uint32_t Id = Args[I].Buf;
    kern::ArgAccess Access = Kernel.Args[I];
    if (Access == kern::ArgAccess::In || Access == kern::ArgAccess::InOut)
      Gate.emplace_back(Id, RT.Versions.expectedVersion(Id));
    if (kern::isWrittenAccess(Access)) {
      OutBinding O;
      O.BufId = Id;
      O.B = &RT.buf(Id);
      Outs.push_back(O);
    }
  }

  for (OutBinding &O : Outs) {
    RT.Versions.noteKernelWillWrite(O.BufId, KernelId);
    RT.noteVersion(O.BufId);
  }

  // Kernels with atomic primitives cannot be split across devices (paper
  // section 7): fall back to GPU-only execution for this launch.
  CooperativeAllowed = RT.Opts.UseCpu && !Kernel.UsesAtomics;
  Stats.AtomicsFallback = RT.Opts.UseCpu && Kernel.UsesAtomics;
  if (check::ProtocolChecker *PC = RT.protocolChecker())
    PC->onLaunchStart(KernelId, Kernel.Name, TotalGroups, Outs.size(),
                      CooperativeAllowed);

  // Region-transfer extension: only when the kernel's output bands are
  // row-contiguous and every out buffer divides evenly into bands.
  UseRegionTransfers =
      RT.Opts.RegionTransfers && Kernel.RowContiguousOutput;
  if (UseRegionTransfers) {
    uint64_t RowLen = Range.dims() == 1 ? 1 : Range.numGroups().X;
    uint64_t NumRows = TotalGroups / RowLen;
    for (const OutBinding &O : Outs)
      if (NumRows == 0 || O.B->Size % NumRows != 0)
        UseRegionTransfers = false; // Fall back to whole-buffer transfers.
  }

  // Acquire the per-kernel GPU scratch (section 4.1 "additional buffers",
  // pooled per section 6.1) and snapshot the unmodified data for the merge
  // (section 4.3). The snapshot copy is ordered before the kernel on the
  // in-order application queue.
  if (CooperativeAllowed) {
    for (OutBinding &O : Outs) {
      O.Orig = RT.Pool.acquire(O.B->Size);
      O.CpuData = RT.Pool.acquire(O.B->Size);
      RT.GpuAppQueue->enqueueCopy(*O.B->GpuBuf, *O.Orig, O.B->Size);
      // With region transfers only the touched bands arrive from the CPU;
      // seed the rest of CpuData with the pre-image so the merge diff sees
      // "unchanged" everywhere else.
      if (UseRegionTransfers)
        RT.GpuAppQueue->enqueueCopy(*O.B->GpuBuf, *O.CpuData, O.B->Size);
    }
  }

  launchGpuKernel();

  if (CooperativeAllowed && TotalGroups > 0) {
    auto Self = shared_from_this();
    RT.whenCpuVersions(std::move(Gate), [Self] {
      Self->CpuActive = true;
      // Routed through maybeContinueCpu so a chunk-yield hook (the serve
      // layer's backfill gate) also governs the first chunk.
      Self->maybeContinueCpu();
    });
  }
}

// --- GPU side --------------------------------------------------------------

void KernelExec::launchGpuKernel() {
  FCL_PROF_SCOPE("fcl.gpu_launch");
  mcl::LaunchDesc Desc = buildDesc(Kernel, RT.Ctx.gpu(), /*ForGpu=*/true);
  if (CooperativeAllowed) {
    Desc.Abort.Kind = RT.Opts.AbortPolicy;
    Desc.Abort.Unroll = RT.Opts.LoopUnroll;
    std::shared_ptr<uint64_t> Boundary = GpuVisibleBoundary;
    Desc.AbortBoundary = [Boundary] { return *Boundary; };
    GpuCounters = std::make_shared<mcl::LaunchCounters>();
    Desc.Counters = GpuCounters;
  }
  mcl::EventPtr Done = RT.GpuAppQueue->enqueueKernel(std::move(Desc));
  auto Self = shared_from_this();
  Done->onComplete(
      [Self, Done] { Self->gpuFinished(Done->payload()); });
}

void KernelExec::gpuFinished(uint64_t ExecutedGroups) {
  race::Section RaceS(RT.RaceSec);
  GpuDone = true;
  if (check::ProtocolChecker *PC = RT.protocolChecker())
    PC->onGpuFinished(KernelId, ExecutedGroups);
  Stats.GpuGroupsExecuted = ExecutedGroups;
  // Everything the GPU did not execute it aborted after observing CPU
  // completion (only possible in cooperative launches; 0 otherwise).
  Stats.GpuGroupsAborted = TotalGroups - ExecutedGroups;
  Stats.GpuGroupsWasted = GpuCounters ? GpuCounters->GroupsWasted : 0;
  FCL_LOG_DEBUG("fcl kernel %llu (%s): gpu executed %llu/%llu groups",
                static_cast<unsigned long long>(KernelId),
                Kernel.Name.c_str(),
                static_cast<unsigned long long>(ExecutedGroups),
                static_cast<unsigned long long>(TotalGroups));
  enqueueMerges();
}

void KernelExec::enqueueMerges() {
  FCL_PROF_SCOPE("fcl.merge");
  MergePhaseStarted = true;
  // Final-result accounting, fixed at the moment the merge set is chosen:
  // the GPU-visible boundary says which work-groups' final data the CPU
  // provided (its data has arrived). When the CPU ran the entire NDRange
  // it owns every group regardless of what the GPU managed to commit.
  if (CpuRanAll) {
    Stats.GpuGroupsCompleted = 0;
    Stats.CpuGroupsCompleted = TotalGroups;
  } else {
    uint64_t Boundary = CooperativeAllowed ? *GpuVisibleBoundary : TotalGroups;
    Stats.GpuGroupsCompleted = Boundary;
    Stats.CpuGroupsCompleted = TotalGroups - Boundary;
    // CPU work completed whose data had not reached the GPU in time:
    // executed, then thrown away.
    Stats.CpuGroupsWasted += Boundary - CpuLow;
  }
  bool AnyCpuData = *GpuVisibleBoundary < TotalGroups;
  if (check::ProtocolChecker *PC = RT.protocolChecker())
    PC->onMergeSet(KernelId,
                   CooperativeAllowed ? *GpuVisibleBoundary : TotalGroups,
                   CpuRanAll, AnyCpuData && !Outs.empty());
  if (!AnyCpuData || Outs.empty() || !CooperativeAllowed) {
    mergesDone();
    return;
  }
  FCL_LOG_DEBUG("fcl kernel %llu: merging %zu buffers (boundary %llu)",
                static_cast<unsigned long long>(KernelId), Outs.size(),
                static_cast<unsigned long long>(*GpuVisibleBoundary));
  const kern::KernelInfo &Merge =
      kern::Registry::builtin().get("md_merge_kernel");
  MergesPending = static_cast<int>(Outs.size());
  // Byte model: each merge kernel scans the whole buffer against the
  // original-data snapshot; the CPU-won share of it is what the diff
  // actually replaces with CPU data (an estimate - exact counts would need
  // functional execution).
  double CpuShare = TotalGroups ? static_cast<double>(Stats.CpuGroupsCompleted)
                                      / static_cast<double>(TotalGroups)
                                : 0.0;
  for (const OutBinding &O : Outs) {
    Stats.MergeBytesDiffed += O.B->Size;
    Stats.MergeBytesCopied +=
        static_cast<uint64_t>(CpuShare * static_cast<double>(O.B->Size));
  }
  auto Self = shared_from_this();
  for (size_t Slot = 0; Slot < Outs.size(); ++Slot) {
    OutBinding &O = Outs[Slot];
    if (check::ProtocolChecker *PC = RT.protocolChecker())
      PC->onMergeEnqueued(KernelId, Slot);
    uint64_t Items =
        (O.B->Size + kern::MergeChunkBytes - 1) / kern::MergeChunkBytes;
    uint64_t Local = 64;
    uint64_t Global = (Items + Local - 1) / Local * Local;
    mcl::LaunchDesc Desc;
    Desc.Kernel = &Merge;
    Desc.Range = kern::NDRange::of1D(Global, Local);
    Desc.Args = {
        mcl::LaunchArg::buffer(O.CpuData),
        mcl::LaunchArg::buffer(O.B->GpuBuf.get()),
        mcl::LaunchArg::buffer(O.Orig),
        mcl::LaunchArg::scalarInt(static_cast<int64_t>(O.B->Size)),
        mcl::LaunchArg::scalarInt(4), // Base-type granularity (float).
    };
    mcl::EventPtr Done = RT.GpuAppQueue->enqueueKernel(std::move(Desc));
    Done->onComplete([Self] {
      race::Section RaceS(Self->RT.RaceSec);
      if (--Self->MergesPending == 0)
        Self->mergesDone();
    });
  }
}

void KernelExec::mergesDone() {
  // The GPU now holds the merged, most recent data (or computed everything
  // itself). Bring the results back to the CPU asynchronously and finish
  // the application-visible call.
  startDhStage();
  releaseScratch();
  appComplete();
}

// --- CPU side ----------------------------------------------------------------

void KernelExec::launchNextSubkernel() {
  FCL_PROF_SCOPE("fcl.chunk_launch");
  if (GpuDone || CpuLow == 0)
    return;
  uint64_t Chunk = Chunks.nextChunk(CpuLow);
  FCL_CHECK(Chunk > 0 && Chunk <= CpuLow, "bad chunk");
  const kern::KernelInfo *Used = &Kernel;
  if (RT.Opts.OnlineProfiling) {
    Used = RT.Profiler.pickCpuKernel(Kernel);
    // Section 6.6: measure each variant on a *small* allocation first so
    // a slow variant does not tie the CPU up for a whole regular chunk.
    if (!RT.Profiler.decided(Kernel)) {
      uint64_t Probe = std::max<uint64_t>(
          static_cast<uint64_t>(RT.Ctx.machine().Cpu.ComputeUnits),
          TotalGroups / 256);
      Chunk = std::min({Chunk, Probe, CpuLow});
    }
  }
  Stats.CpuKernelUsed = Used->Name;

  uint64_t Begin = CpuLow - Chunk;
  uint64_t End = CpuLow;
  mcl::LaunchDesc Desc = buildDesc(*Used, RT.Ctx.cpu(), /*ForGpu=*/false);
  Desc.FlatBegin = Begin;
  Desc.FlatEnd = End;
  Desc.SplitWorkGroups = RT.Opts.CpuWorkGroupSplit;
  // A subkernel finishing after the GPU kernel exited is moot: its results
  // are neither transferred nor merged, and the DH stage re-establishes
  // the CPU copy - suppress its writes so it cannot clobber newer data.
  auto SelfForSkip = shared_from_this();
  Desc.SkipFunctional = [SelfForSkip] {
    return SelfForSkip->GpuDone || SelfForSkip->MergePhaseStarted;
  };
  TimePoint T0 = RT.Ctx.now();
  mcl::EventPtr Done = RT.CpuQueue->enqueueKernel(std::move(Desc));
  auto Self = shared_from_this();
  Done->onComplete([Self, Begin, End, Used, T0] {
    Self->subkernelDone(Begin, End, Used, T0);
  });
}

uint64_t KernelExec::regionBytes(const OutBinding &Out, uint64_t Begin,
                                 uint64_t End, uint64_t &Offset) const {
  if (!UseRegionTransfers) {
    Offset = 0;
    return Out.B->Size;
  }
  uint64_t RowLen = Range.dims() == 1 ? 1 : Range.numGroups().X;
  uint64_t NumRows = TotalGroups / RowLen;
  uint64_t BytesPerRow = Out.B->Size / NumRows;
  uint64_t FirstRow = Begin / RowLen;
  uint64_t LastRow = (End - 1) / RowLen;
  Offset = FirstRow * BytesPerRow;
  return (LastRow - FirstRow + 1) * BytesPerRow;
}

void KernelExec::subkernelDone(uint64_t Begin, uint64_t End,
                               const kern::KernelInfo *Used,
                               TimePoint StartedAtTime) {
  race::Section RaceS(RT.RaceSec);
  Duration Took = RT.Ctx.now() - StartedAtTime;
  if (check::ProtocolChecker *PC = RT.protocolChecker())
    PC->onCpuSubkernel(KernelId, Begin, End);
  uint64_t Groups = End - Begin;
  ++Stats.CpuSubkernels;
  Stats.CpuGroupsExecuted += Groups;
  Chunks.reportSubkernel(Groups, Took);
  stats::ChunkPoint Point;
  Point.At = RT.Ctx.now();
  Point.Groups = Groups;
  Point.PctAfter = Chunks.currentPct();
  Point.Took = Took;
  Stats.ChunkTrajectory.push_back(Point);
  if (trace::Tracer *T = RT.Ctx.tracer())
    T->counter("CPU chunk work-groups", RT.Ctx.now(),
               static_cast<double>(Groups));
  if (RT.Opts.OnlineProfiling)
    RT.Profiler.reportSubkernel(Kernel, *Used, Groups, Took);
  CpuLow = Begin;

  // The CPU scheduler exits once the GPU kernel has exited (paper section
  // 4.2): the remaining and in-flight CPU results are not needed. A
  // subkernel landing after the merge set was fixed is pure waste.
  if (GpuDone || MergePhaseStarted) {
    if (MergePhaseStarted && !CpuRanAll)
      Stats.CpuGroupsWasted += Groups;
    return;
  }

  if (CpuLow == 0) {
    // The CPU computed the entire NDRange first: the final data is deemed
    // available on the CPU (section 4.2); the GPU results are ignored. The
    // data+status stream still runs so the GPU becomes current for
    // subsequent kernels via its merge.
    CpuRanAll = true;
    for (OutBinding &O : Outs) {
      RT.Versions.noteCpuReceived(O.BufId, KernelId);
      RT.noteVersion(O.BufId);
    }
  }

  // Section 5.5: copy the out buffers on the host first, so subsequent
  // subkernels may proceed while the data is in flight. With region
  // transfers only the subkernel's output bands are staged.
  uint64_t StagingBytes = 0;
  for (OutBinding &O : Outs) {
    uint64_t Offset = 0;
    StagingBytes += regionBytes(O, Begin, End, Offset);
  }
  uint64_t Boundary = CpuLow;
  auto Self = shared_from_this();
  RT.Ctx.simulator().scheduleAfter(
      RT.Ctx.machine().Host.memcpyTime(StagingBytes),
      [Self, Boundary, Begin, End] {
        Self->sendCpuDataAndStatus(Boundary, Begin, End);
      });

  if (CpuRanAll)
    appComplete();
}

void KernelExec::sendCpuDataAndStatus(uint64_t Boundary, uint64_t Begin,
                                      uint64_t End) {
  FCL_PROF_SCOPE("fcl.hd_send");
  race::Section RaceS(RT.RaceSec);
  // If the GPU finished in the meantime the scratch buffers may be on
  // their way back to the pool; sending would be pointless anyway (the
  // GPU computed those work-groups itself).
  if (MergePhaseStarted)
    return;
  HdDrained = false;
  FCL_LOG_DEBUG("fcl kernel %llu: sending cpu data, boundary %llu",
                static_cast<unsigned long long>(KernelId),
                static_cast<unsigned long long>(Boundary));
  for (size_t Slot = 0; Slot < Outs.size(); ++Slot) {
    OutBinding &O = Outs[Slot];
    // Captures the CPU buffer contents now (the staging copy), then
    // streams them to the GPU-side cpu-data buffer on the in-order hd
    // queue. Region transfers send only this subkernel's output band.
    uint64_t Offset = 0;
    uint64_t Bytes = regionBytes(O, Begin, End, Offset);
    const std::byte *Src =
        O.B->CpuBuf->backed() ? O.B->CpuBuf->data() + Offset : nullptr;
    RT.HdQueue->enqueueWrite(*O.CpuData, Src, Bytes, Offset);
    Stats.HdBytesSent += Bytes;
    if (check::ProtocolChecker *PC = RT.protocolChecker()) {
      // Whole-buffer sends cover every CPU-computed group [Boundary,
      // total); region sends cover the band rounded down to row starts.
      uint64_t CoveredFrom = Boundary;
      if (UseRegionTransfers) {
        uint64_t RowLen = Range.dims() == 1 ? 1 : Range.numGroups().X;
        CoveredFrom = Begin / RowLen * RowLen;
      }
      PC->onDataStaged(KernelId, Slot, CoveredFrom);
    }
  }
  // The status message follows the data on the same in-order queue, so the
  // GPU observes the new boundary only after the data has arrived
  // (section 4.2 - this is what folds transfer time into "complete").
  mcl::EventPtr StatusDone =
      RT.HdQueue->enqueueWrite(*RT.StatusBuf, nullptr, 8);
  Stats.StatusBytesSent += 8;
  std::shared_ptr<uint64_t> BoundaryWord = GpuVisibleBoundary;
  auto Self = shared_from_this();
  StatusDone->onComplete([Self, BoundaryWord, Boundary, StatusDone] {
    race::Section RaceS(Self->RT.RaceSec);
    if (check::ProtocolChecker *PC = Self->RT.protocolChecker())
      PC->onStatusCommit(Self->KernelId, Boundary);
    if (Boundary < *BoundaryWord)
      *BoundaryWord = Boundary;
    if (Self->LastHdEvent == StatusDone) {
      Self->HdDrained = true;
      if (Self->MergePhaseStarted)
        Self->releaseScratch();
    }
  });
  LastHdEvent = StatusDone;

  maybeContinueCpu();
}

void KernelExec::maybeContinueCpu() {
  if (GpuDone || MergePhaseStarted || CpuLow == 0)
    return;
  // Chunk boundaries are the natural yield points of the cooperative
  // protocol: between subkernels the CPU holds no partial state. A
  // registered chunk-yield hook (the serve layer's backfill gate) may
  // delay the resume to slot foreign work onto the CPU; the guard re-runs
  // at resume time because the GPU may have finished in the interim.
  if (RT.ChunkYield) {
    auto Self = shared_from_this();
    // The hook invocation is a declared non-reentrant scope: a hook that
    // pumps the simulator deep enough to reach this exec's next chunk
    // boundary would re-enter itself (unbounded recursion on OS threads).
    race::GuardScope YieldGuard(YieldGuardName);
    RT.ChunkYield([Self] {
      race::Section RaceS(Self->RT.RaceSec);
      if (!Self->GpuDone && !Self->MergePhaseStarted && Self->CpuLow > 0)
        Self->launchNextSubkernel();
    });
    return;
  }
  launchNextSubkernel();
}

// --- Completion ----------------------------------------------------------------

void KernelExec::startDhStage() {
  FCL_PROF_SCOPE("fcl.dh_read");
  if (CpuRanAll || Outs.empty()) {
    // Section 6.2/4.4: when the CPU executed everything the transfer is
    // unnecessary and skipped; location tracking already points at the CPU.
    return;
  }
  // Section 5.6: the device-to-host stage returns every out/inout buffer
  // to the CPU. The transfer lands in a staging area and is *applied
  // through the in-order CPU queue*, for two reasons: (a) stale messages
  // must be discarded by version check (section 5.3) - a host write or a
  // later CPU-completed kernel may have superseded the data in flight; and
  // (b) every mutation of the CPU copy (host-write fan-outs, subkernel
  // results, DH arrivals) must observe a single total order, which the
  // CPU queue provides.
  auto Self = shared_from_this();
  for (OutBinding &O : Outs) {
    std::shared_ptr<std::vector<std::byte>> Staging;
    if (O.B->CpuBuf->backed())
      Staging = std::make_shared<std::vector<std::byte>>(O.B->Size);
    mcl::EventPtr ReadDone = RT.DhQueue->enqueueRead(
        *O.B->GpuBuf, Staging ? Staging->data() : nullptr, O.B->Size);
    Stats.DhBytesReceived += O.B->Size;
    auto Applied = std::make_shared<mcl::Event>(RT.Ctx);
    O.B->CpuLanding = Applied;
    RT.trackDh(Applied);
    uint32_t BufId = O.BufId;
    Runtime::DualBuffer *B = O.B;
    ReadDone->onComplete([Self, BufId, B, Staging, Applied] {
      Self->RT.CpuQueue->enqueueCallback([Self, BufId, B, Staging, Applied] {
        race::Section RaceS(Self->RT.RaceSec);
        if (Self->RT.Versions.cpuVersion(BufId) >= Self->KernelId) {
          FCL_LOG_DEBUG("fcl kernel %llu: DH for buffer %u stale, discarded",
                        static_cast<unsigned long long>(Self->KernelId),
                        BufId);
        } else {
          FCL_LOG_DEBUG("fcl kernel %llu: DH applied to buffer %u",
                        static_cast<unsigned long long>(Self->KernelId),
                        BufId);
          if (Staging && B->CpuBuf->backed())
            std::memcpy(B->CpuBuf->data(), Staging->data(), B->Size);
          Self->RT.Versions.noteCpuReceived(BufId, Self->KernelId);
          Self->RT.noteVersion(BufId);
        }
        Applied->fire();
      });
    });
  }
}

void KernelExec::releaseScratch() {
  if (ScratchReleased || !HdDrained || !MergePhaseStarted)
    return;
  ScratchReleased = true;
  size_t Released = 0;
  for (OutBinding &O : Outs) {
    if (O.Orig) {
      RT.Pool.release(O.Orig);
      ++Released;
    }
    if (O.CpuData) {
      RT.Pool.release(O.CpuData);
      ++Released;
    }
    O.Orig = nullptr;
    O.CpuData = nullptr;
  }
  if (check::ProtocolChecker *PC = RT.protocolChecker())
    PC->onScratchReleased(KernelId, Released);
  RT.Pool.endKernelReclaim();
}

void KernelExec::appComplete() {
  if (AppComplete)
    return;
  AppComplete = true;
  Stats.KernelTime = RT.Ctx.now() - StartedAt;
  Stats.FinalChunkPct = Chunks.currentPct();
  Stats.ChunkGrowthSteps = Chunks.growthSteps();
  Stats.CpuRanEverything = CpuRanAll;
  if (OnDone) {
    // Move out first: the callback may re-enter the runtime and launch the
    // stream's next kernel.
    std::function<void()> Fn = std::move(OnDone);
    OnDone = nullptr;
    Fn();
  }
}
