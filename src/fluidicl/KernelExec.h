//===- fluidicl/KernelExec.h - One cooperative kernel execution -*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event-driven orchestration of one cooperative kernel execution (paper
/// Figure 6): GPU full-range launch, CPU subkernel scheduler, hd data +
/// status stream, GPU-side diff/merge, and the asynchronous device-to-host
/// stage. The "CPU scheduler thread" and "DH thread" of the paper's
/// pthreads implementation are realized as completion-callback state
/// machines on the simulated clock.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_FLUIDICL_KERNELEXEC_H
#define FCL_FLUIDICL_KERNELEXEC_H

#include "fluidicl/ChunkController.h"
#include "fluidicl/Runtime.h"

#include <functional>
#include <memory>

namespace fcl {
namespace fluidicl {

/// State machine for one kernel launch. Created and driven by
/// Runtime::launchKernel; kept alive by its own callbacks.
class KernelExec : public std::enable_shared_from_this<KernelExec> {
public:
  KernelExec(Runtime &RT, const kern::KernelInfo &Kernel,
             const kern::NDRange &Range,
             const std::vector<runtime::KArg> &Args);

  /// Starts the cooperative execution and blocks (runs the simulator)
  /// until the kernel is application-complete: either the merge finished
  /// on the GPU, or the CPU computed the entire NDRange first.
  void run();

  /// Non-blocking variant for re-entrant callers (the serve layer): starts
  /// the execution and returns; \p OnDone fires once when the kernel is
  /// application-complete. run() is start(nullptr) plus a simulator drain.
  void start(std::function<void()> OnDone);

  const KernelStats &stats() const { return Stats; }

private:
  struct OutBinding {
    uint32_t BufId = 0;
    Runtime::DualBuffer *B = nullptr;
    mcl::Buffer *Orig = nullptr;    // Snapshot of pre-kernel GPU data.
    mcl::Buffer *CpuData = nullptr; // Landing area for CPU results.
  };

  // --- GPU side -----------------------------------------------------------
  void launchGpuKernel();
  void gpuFinished(uint64_t ExecutedGroups);
  void enqueueMerges();
  void mergesDone();

  // --- CPU side (the "CPU scheduler thread") -------------------------------
  void startCpuScheduler();
  void launchNextSubkernel();
  void subkernelDone(uint64_t Begin, uint64_t End,
                     const kern::KernelInfo *Used, TimePoint StartedAt);
  void sendCpuDataAndStatus(uint64_t Boundary, uint64_t Begin, uint64_t End);
  void maybeContinueCpu();

  /// Bytes of \p Out touched by flat work-groups [Begin, End) when region
  /// transfers apply; fills \p Offset with the band start. Whole buffer
  /// otherwise.
  uint64_t regionBytes(const OutBinding &Out, uint64_t Begin, uint64_t End,
                       uint64_t &Offset) const;

  // --- Completion -----------------------------------------------------------
  void startDhStage();
  void releaseScratch();
  void appComplete();

  mcl::LaunchDesc buildDesc(const kern::KernelInfo &K, mcl::Device &Dev,
                            bool ForGpu) const;

  Runtime &RT;
  const kern::KernelInfo &Kernel;
  kern::NDRange Range;
  std::vector<runtime::KArg> Args;
  uint64_t KernelId;
  uint64_t TotalGroups;
  uint64_t ItemsPerGroup;
  TimePoint StartedAt;

  std::vector<OutBinding> Outs;
  std::vector<uint32_t> CpuGateBufIds; // Buffers the CPU must have current.
  bool CooperativeAllowed = false;     // UseCpu and no atomics (section 7).
  bool UseRegionTransfers = false;     // Extension: band transfers.

  // Shared dynamic state between the two sides.
  std::shared_ptr<uint64_t> GpuVisibleBoundary;
  uint64_t CpuLow;       // Lowest flat ID assigned to the CPU so far.
  bool CpuActive = false;
  bool CpuRanAll = false;
  bool GpuDone = false;
  bool MergePhaseStarted = false;
  int MergesPending = 0;
  bool ScratchReleased = false;
  bool HdDrained = true;
  bool AppComplete = false;

  ChunkController Chunks;
  mcl::EventPtr LastHdEvent;
  /// Shared with the GPU engine via LaunchDesc::Counters; reports
  /// mid-wave aborted (wasted) work-groups.
  std::shared_ptr<mcl::LaunchCounters> GpuCounters;
  KernelStats Stats;
  std::function<void()> OnDone; // Fired once by appComplete (may be null).
  /// fcl::race non-reentrant-scope name wrapping the chunk-yield hook
  /// invocation: a hook that pumps its way back into its own yield point
  /// is flagged as a reentrant callback.
  std::string YieldGuardName;
};

} // namespace fluidicl
} // namespace fcl

#endif // FCL_FLUIDICL_KERNELEXEC_H
