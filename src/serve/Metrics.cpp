//===- serve/Metrics.cpp - Request-level serving metrics ------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Metrics.h"

#include "support/Format.h"
#include "support/Statistics.h"

using namespace fcl;
using namespace fcl::serve;

LatencySummary fcl::serve::summarizeLatency(
    const std::vector<double> &ValuesMs) {
  LatencySummary S;
  if (ValuesMs.empty())
    return S;
  S.P50 = percentile(ValuesMs, 50);
  S.P95 = percentile(ValuesMs, 95);
  S.P99 = percentile(ValuesMs, 99);
  S.Mean = mean(ValuesMs);
  S.Max = percentile(ValuesMs, 100);
  return S;
}

namespace {

// All floats go through one fixed format so identical runs serialize to
// identical bytes.
std::string num(double V) { return formatString("%.6f", V); }

std::string latencyJson(const LatencySummary &S) {
  return formatString(
      "{\"p50\": %s, \"p95\": %s, \"p99\": %s, \"mean\": %s, \"max\": %s}",
      num(S.P50).c_str(), num(S.P95).c_str(), num(S.P99).c_str(),
      num(S.Mean).c_str(), num(S.Max).c_str());
}

} // namespace

std::string ServeReport::toJson() const {
  std::string J;
  J += "{\n";
  J += "  \"schema\": \"fcl-serve-report-v1\",\n";
  J += formatString("  \"policy\": \"%s\",\n", jsonEscape(PolicyName).c_str());
  J += formatString("  \"arrival\": \"%s\",\n",
                    jsonEscape(ArrivalDesc).c_str());
  J += formatString("  \"mix\": \"%s\",\n", jsonEscape(Mix).c_str());
  J += formatString("  \"machine\": \"%s\",\n", jsonEscape(Machine).c_str());
  J += formatString("  \"seed\": %llu,\n",
                    static_cast<unsigned long long>(Seed));
  J += formatString("  \"streams\": %d,\n", Streams);
  J += formatString("  \"queue_depth\": %d,\n", QueueDepth);
  J += formatString("  \"large_threshold_groups\": %llu,\n",
                    static_cast<unsigned long long>(LargeThreshold));
  J += formatString("  \"horizon_ms\": %s,\n", num(HorizonMs).c_str());
  J += formatString("  \"submitted\": %llu,\n",
                    static_cast<unsigned long long>(Submitted));
  J += formatString("  \"rejected\": %llu,\n",
                    static_cast<unsigned long long>(Rejected));
  J += formatString("  \"completed\": %llu,\n",
                    static_cast<unsigned long long>(Completed));
  J += "  \"latency_ms\": {\n";
  J += formatString("    \"queue_wait\": %s,\n",
                    latencyJson(QueueWait).c_str());
  J += formatString("    \"service\": %s,\n", latencyJson(Service).c_str());
  J += formatString("    \"e2e\": %s\n", latencyJson(E2e).c_str());
  J += "  },\n";
  J += "  \"per_class\": {\n";
  J += formatString("    \"small\": {\"completed\": %llu, \"e2e\": %s},\n",
                    static_cast<unsigned long long>(SmallCompleted),
                    latencyJson(SmallE2e).c_str());
  J += formatString("    \"large\": {\"completed\": %llu, \"e2e\": %s}\n",
                    static_cast<unsigned long long>(LargeCompleted),
                    latencyJson(LargeE2e).c_str());
  J += "  },\n";
  J += formatString("  \"makespan_ms\": %s,\n", num(MakespanMs).c_str());
  J += formatString("  \"throughput_rps\": %s,\n",
                    num(ThroughputRps).c_str());
  J += "  \"occupancy\": {\n";
  J += formatString("    \"gpu_busy_ms\": %s,\n", num(GpuBusyMs).c_str());
  J += formatString("    \"cpu_busy_ms\": %s,\n", num(CpuBusyMs).c_str());
  J += formatString("    \"corun_cpu_ms\": %s,\n", num(CorunCpuMs).c_str());
  J += formatString("    \"gpu_util\": %s,\n", num(GpuUtil).c_str());
  J += formatString("    \"cpu_util\": %s\n", num(CpuUtil).c_str());
  J += "  },\n";
  J += "  \"placement\": {\n";
  J += formatString("    \"coop_jobs\": %llu,\n",
                    static_cast<unsigned long long>(CoopJobs));
  J += formatString("    \"gpu_jobs\": %llu,\n",
                    static_cast<unsigned long long>(GpuJobs));
  J += formatString("    \"cpu_jobs\": %llu,\n",
                    static_cast<unsigned long long>(CpuJobs));
  J += formatString("    \"backfill_jobs\": %llu,\n",
                    static_cast<unsigned long long>(BackfillJobs));
  J += formatString("    \"chunk_yields\": %llu\n",
                    static_cast<unsigned long long>(ChunkYields));
  J += "  },\n";
  J += "  \"slo\": {\n";
  J += formatString("    \"checked\": %s,\n", SloChecked ? "true" : "false");
  J += formatString("    \"slo_ms\": %s,\n", num(SloMs).c_str());
  J += formatString("    \"violations\": %llu\n",
                    static_cast<unsigned long long>(SloViolations));
  J += "  },\n";
  J += "  \"validation\": {\n";
  J += formatString("    \"validated\": %s,\n", Validated ? "true" : "false");
  J += formatString("    \"failures\": %llu\n",
                    static_cast<unsigned long long>(ValidationFailures));
  J += "  },\n";
  // Compound-job accounting only when DAG jobs ran: plain mixes keep their
  // pre-dag bytes.
  if (DagJobs) {
    J += "  \"dag\": {\n";
    J += formatString("    \"placement\": \"%s\",\n",
                      jsonEscape(DagPlacement).c_str());
    J += formatString("    \"jobs\": %llu,\n",
                      static_cast<unsigned long long>(DagJobs));
    J += formatString("    \"nodes\": %llu,\n",
                      static_cast<unsigned long long>(DagNodes));
    J += formatString("    \"gpu_nodes\": %llu,\n",
                      static_cast<unsigned long long>(DagGpuNodes));
    J += formatString("    \"cpu_nodes\": %llu,\n",
                      static_cast<unsigned long long>(DagCpuNodes));
    J += formatString("    \"transfers\": %llu,\n",
                      static_cast<unsigned long long>(DagTransfers));
    J += formatString("    \"transfer_bytes\": %llu,\n",
                      static_cast<unsigned long long>(DagTransferBytes));
    J += formatString("    \"pcie_bytes\": %llu,\n",
                      static_cast<unsigned long long>(DagPcieBytes));
    J += formatString("    \"transfers_skipped\": %llu,\n",
                      static_cast<unsigned long long>(DagTransfersSkipped));
    J += formatString("    \"bytes_saved\": %llu\n",
                      static_cast<unsigned long long>(DagBytesSaved));
    J += "  },\n";
  }
  // Analysis verdicts appear only when something was found: a clean
  // --check/--races run must serialize to the same bytes as a plain run.
  if (!CheckDiags.empty()) {
    J += "  \"check\": {\n";
    J += formatString("    \"errors\": %llu,\n",
                      static_cast<unsigned long long>(CheckErrors));
    J += formatString("    \"warnings\": %llu,\n",
                      static_cast<unsigned long long>(CheckWarnings));
    J += "    \"diags\": [";
    for (size_t I = 0; I < CheckDiags.size(); ++I)
      J += formatString("%s\n      \"%s\"", I ? "," : "",
                        jsonEscape(CheckDiags[I]).c_str());
    J += "\n    ]\n";
    J += "  },\n";
  }
  if (!RaceDiags.empty()) {
    J += "  \"races\": {\n";
    J += formatString("    \"findings\": %llu,\n",
                      static_cast<unsigned long long>(RaceFindings));
    J += "    \"diags\": [";
    for (size_t I = 0; I < RaceDiags.size(); ++I)
      J += formatString("%s\n      \"%s\"", I ? "," : "",
                        jsonEscape(RaceDiags[I]).c_str());
    J += "\n    ]\n";
    J += "  },\n";
  }
  // The fcl::stats mirror: std::map iteration gives lexicographic, i.e.
  // deterministic, key order.
  J += "  \"stats\": {\n";
  J += "    \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Stats.counters()) {
    J += formatString("%s\n      \"%s\": %llu", First ? "" : ",",
                      jsonEscape(Name).c_str(),
                      static_cast<unsigned long long>(Value));
    First = false;
  }
  J += First ? "},\n" : "\n    },\n";
  J += "    \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : Stats.gauges()) {
    J += formatString("%s\n      \"%s\": %s", First ? "" : ",",
                      jsonEscape(Name).c_str(), num(Value).c_str());
    First = false;
  }
  J += First ? "}\n" : "\n    }\n";
  J += "  }\n";
  J += "}\n";
  return J;
}

std::string ServeReport::toText() const {
  std::string T;
  T += formatString("serve: policy=%s arrival=%s mix=%s machine=%s seed=%llu "
                    "streams=%d\n",
                    PolicyName.c_str(), ArrivalDesc.c_str(), Mix.c_str(),
                    Machine.c_str(), static_cast<unsigned long long>(Seed),
                    Streams);
  T += formatString(
      "requests: submitted=%llu rejected=%llu completed=%llu\n",
      static_cast<unsigned long long>(Submitted),
      static_cast<unsigned long long>(Rejected),
      static_cast<unsigned long long>(Completed));
  T += formatString("makespan %.3f ms, throughput %.1f req/s\n", MakespanMs,
                    ThroughputRps);
  auto Row = [](const char *Name, const LatencySummary &S) {
    return formatString(
        "  %-11s p50 %9.3f  p95 %9.3f  p99 %9.3f  mean %9.3f  max %9.3f\n",
        Name, S.P50, S.P95, S.P99, S.Mean, S.Max);
  };
  T += "latency (ms):\n";
  T += Row("queue-wait", QueueWait);
  T += Row("service", Service);
  T += Row("e2e", E2e);
  if (SmallCompleted)
    T += Row("e2e/small", SmallE2e);
  if (LargeCompleted)
    T += Row("e2e/large", LargeE2e);
  T += formatString("occupancy: gpu %.1f%% cpu %.1f%% (corun-cpu %.3f ms)\n",
                    GpuUtil * 100, CpuUtil * 100, CorunCpuMs);
  T += formatString(
      "placement: coop=%llu gpu=%llu cpu=%llu backfill=%llu yields=%llu\n",
      static_cast<unsigned long long>(CoopJobs),
      static_cast<unsigned long long>(GpuJobs),
      static_cast<unsigned long long>(CpuJobs),
      static_cast<unsigned long long>(BackfillJobs),
      static_cast<unsigned long long>(ChunkYields));
  if (DagJobs) {
    T += formatString(
        "dag (%s): jobs=%llu nodes=%llu (gpu %llu / cpu %llu)\n",
        DagPlacement.c_str(), static_cast<unsigned long long>(DagJobs),
        static_cast<unsigned long long>(DagNodes),
        static_cast<unsigned long long>(DagGpuNodes),
        static_cast<unsigned long long>(DagCpuNodes));
    T += formatString(
        "dag transfers: %llu (%llu bytes, %llu pcie), skipped %llu "
        "(%llu bytes saved)\n",
        static_cast<unsigned long long>(DagTransfers),
        static_cast<unsigned long long>(DagTransferBytes),
        static_cast<unsigned long long>(DagPcieBytes),
        static_cast<unsigned long long>(DagTransfersSkipped),
        static_cast<unsigned long long>(DagBytesSaved));
  }
  if (SloChecked)
    T += formatString("slo: %.3f ms -> %llu violation(s)\n", SloMs,
                      static_cast<unsigned long long>(SloViolations));
  if (Validated)
    T += formatString("validation: %llu failure(s)\n",
                      static_cast<unsigned long long>(ValidationFailures));
  if (CheckEnabled) {
    T += formatString("check: %llu error(s), %llu warning(s)\n",
                      static_cast<unsigned long long>(CheckErrors),
                      static_cast<unsigned long long>(CheckWarnings));
    for (const std::string &D : CheckDiags)
      T += "  " + D + "\n";
  }
  if (RacesEnabled) {
    T += formatString("races: %llu finding(s)\n",
                      static_cast<unsigned long long>(RaceFindings));
    for (const std::string &D : RaceDiags)
      T += "  " + D + "\n";
  }
  return T;
}

std::string ServeReport::toCsv() const {
  std::string C = "id,stream,workload,max_groups,class,state,placement,"
                  "arrival_ms,queue_wait_ms,service_ms,e2e_ms\n";
  for (const RequestRecord &R : Requests) {
    if (R.Rejected) {
      C += formatString("%llu,%d,%s,%llu,%s,rejected,,%.6f,,,\n",
                        static_cast<unsigned long long>(R.Id), R.Stream,
                        R.Workload.c_str(),
                        static_cast<unsigned long long>(R.MaxGroups),
                        R.Large ? "large" : "small",
                        (R.ArrivalAt - TimePoint()).toMillis());
      continue;
    }
    C += formatString("%llu,%d,%s,%llu,%s,done,%s,%.6f,%.6f,%.6f,%.6f\n",
                      static_cast<unsigned long long>(R.Id), R.Stream,
                      R.Workload.c_str(),
                      static_cast<unsigned long long>(R.MaxGroups),
                      R.Large ? "large" : "small", R.Placement.c_str(),
                      (R.ArrivalAt - TimePoint()).toMillis(),
                      R.queueWaitMs(), R.serviceMs(), R.e2eMs());
  }
  return C;
}
