//===- serve/Engine.h - Multi-tenant serving engine -------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving engine: admits N concurrent client streams of kernel-launch
/// jobs, queues them through a bounded admission queue (arrivals beyond
/// the depth limit are rejected - backpressure), and dispatches them over
/// the simulated CPU+GPU pair under a pluggable Policy.
///
/// Devices are granted as job-level leases: at most one job computes on a
/// device at a time (the devices themselves model no cross-queue kernel
/// contention, so the engine is the arbiter). Under FluidicCorun the
/// cooperative head job leases the GPU while its CPU side yields between
/// subkernel chunks through fluidicl::Runtime's chunk-yield hook; the
/// engine slots whole short jobs into those yield windows ("backfill") and
/// resumes the cooperative CPU side when they finish.
///
/// Everything runs as completion callbacks on the deterministic simulator:
/// same seed, same configuration => byte-identical report JSON.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SERVE_ENGINE_H
#define FCL_SERVE_ENGINE_H

#include "dag/Residency.h"
#include "fluidicl/Options.h"
#include "hw/Machine.h"
#include "mcl/Context.h"
#include "serve/JobExec.h"
#include "serve/LoadGen.h"
#include "serve/Metrics.h"
#include "serve/Policy.h"
#include "trace/Tracer.h"

#include <deque>
#include <functional>
#include <memory>
#include <vector>

namespace fcl {
namespace serve {

struct EngineConfig {
  hw::Machine M = hw::paperMachine();
  std::string MachineName = "paper";
  mcl::ExecMode Mode = mcl::ExecMode::TimingOnly;
  Policy P = Policy::FifoExclusive;
  /// Concurrent client streams.
  int Streams = 8;
  ArrivalSpec Arrival;
  /// Admission window: no arrivals are issued after this point; admitted
  /// jobs run to completion.
  Duration Horizon = Duration::milliseconds(250);
  uint64_t Seed = 1;
  /// Bounded admission queue depth; arrivals beyond it are rejected.
  int QueueDepth = 64;
  /// Jobs with >= this many work-groups (max over their launches) are
  /// "large" for DeviceAffine pinning and FluidicCorun backfill class.
  uint64_t LargeThreshold = 64;
  MixKind Mix = MixKind::Mixed;
  /// How compound (DAG) jobs place their nodes on the pair: residency-
  /// scored (transfer-skipping) or the residency-blind independent-jobs
  /// baseline. Only DAG-bearing mixes (pipeline) are affected.
  dag::Placement DagPlace = dag::Placement::Residency;
  fluidicl::Options FclOpts;
  /// fcl::race integration: Warn/Fail enable the happens-before analyzer
  /// around the run and collect its findings into the report (Fail makes
  /// the tool exit non-zero when any finding was recorded). The analyzer
  /// never perturbs simulated time, so same-seed reports are byte-identical
  /// with it on or off.
  check::Policy Races = check::Policy::Off;
  /// Validate results against the host reference (functional mode only).
  bool Validate = false;
  /// End-to-end SLO in milliseconds; 0 disables the check.
  double SloMs = 0;
  /// Optional tracer: serve lanes + queue-depth counter track.
  trace::Tracer *Tracer = nullptr;
  /// Embedded (cluster) mode: the engine admits only jobs injected by a
  /// cluster master (injectJob), which also drives the simulator clock in
  /// epoch quanta (advanceTo) and collects results via the outcome hook.
  /// run() must not be called; the master calls finishExternal() instead.
  bool External = false;
};

/// What the cluster master needs to re-inject a stolen queued job into
/// another worker's engine.
struct StolenJob {
  uint64_t ClusterId = 0;
  int TemplateIdx = 0;
  int Stream = 0;
};

/// Completion/rejection record handed to the cluster master's outcome
/// hook. Fired on the worker's thread inside the engine's would-be lock;
/// the hook must only touch that worker's own outbox.
struct JobOutcome {
  uint64_t ClusterId = 0;
  bool Rejected = false;
  TimePoint ArrivalAt;
  TimePoint StartAt;
  TimePoint EndAt;
  const char *Placement = "";
  bool Large = false;
};

/// One engine instance runs one complete serve experiment.
class Engine {
public:
  explicit Engine(EngineConfig Cfg);
  ~Engine();

  /// Generates the load, runs the simulation to completion and returns
  /// the aggregate report. Self-driving mode only (not External).
  ServeReport run();

  // --- Embedded (cluster) operation: External mode only ------------------
  //
  // The master owns all engine state between epochs (workers parked at
  // the fabric barrier) and each worker owns its engine while its epoch
  // quantum runs; these calls are made from whichever side currently
  // holds ownership, never concurrently.

  /// Installs the completion/rejection hook. Call once, before any
  /// injectJob.
  void setOutcomeFn(std::function<void(const JobOutcome &)> Fn);
  /// Admits a cluster job: schedules its arrival at \p At on this
  /// engine's simulator. \p TemplateIdx indexes jobTemplates(Cfg.Mix).
  void injectJob(uint64_t ClusterId, int TemplateIdx, int Stream,
                 TimePoint At);
  /// Removes the newest still-queued request for migration to another
  /// worker. Returns false when the queue is empty.
  bool stealQueued(StolenJob &Out);
  /// Pumps this engine's simulator up to \p Deadline (the epoch quantum).
  /// Called on the worker's own thread.
  void advanceTo(TimePoint Deadline);
  /// Queued (admitted, not yet started) requests.
  size_t readyDepth() const { return Ready.size(); }
  /// Distinct requests currently holding a device.
  int runningJobs() const;
  /// Queued jobs stolen away from this engine so far.
  uint64_t stolenOut() const { return StolenOutN; }
  /// True when nothing is queued, running, or pending on the simulator.
  bool quiescent() const;
  TimePoint now() const;
  const std::vector<JobTemplate> &templates() const { return Templates; }
  /// The engine's would-be-lock section name (fcl::race): the master
  /// enters it around barrier-time mutations of this engine's state.
  const std::string &raceSectionName() const { return RaceSec; }
  /// Cluster-mode teardown: drains check diagnostics and builds this
  /// worker's report (race findings are collected once, by the cluster).
  ServeReport finishExternal();

private:
  struct Req {
    uint64_t Id = 0;
    int Stream = 0;
    const JobTemplate *T = nullptr;
    TimePoint ArrivalAt;
    TimePoint StartAt;
    TimePoint EndAt;
    bool Large = false;
    bool Rejected = false;
    bool Done = false;
    const char *Placement = "";
    std::unique_ptr<JobExec> Exec;
    /// Cluster (External) bookkeeping.
    uint64_t ClusterId = 0;
    int TemplateIdx = -1;
    /// Migrated away by stealQueued: excluded from local latency and
    /// completion accounting (the thief worker reports it).
    bool Stolen = false;
  };

  Req *newRequest(int Stream);
  void scheduleOpenLoopArrivals();
  void scheduleClosedLoopNext(int Stream, Duration Delay);
  void onArrival(Req *R);
  void dispatch();
  void startCoop(Req *R);
  /// Starts a compound job: takes both device leases and hands the DAG to
  /// dag::DagJobExec.
  void startDag(Req *R);
  /// True when the next queued request is a compound (DAG) job.
  bool headIsDag() const;
  void startSingle(Req *R, bool OnGpu, bool Backfill);
  void jobDone(Req *R);
  /// fluidicl chunk-yield hook of the active cooperative job (corun only).
  void onChunkBoundary(std::function<void()> Resume);
  void drainResumes();
  void setCorunCpuBusy(bool Busy);
  /// Removes and returns the first queued request with the given class;
  /// null when none matches.
  Req *takeFirst(bool WantLarge);
  Req *popHead();
  void sampleQueueDepth();
  /// Drains per-job runtime check diagnostics and (unless the cluster
  /// collects them centrally) fcl::race findings into the aggregate
  /// members below (called after the simulator is idle, before executors
  /// are torn down).
  void collectAnalysis(bool IncludeRaces);
  void emitOutcome(Req *R);
  ServeReport finalize();

  EngineConfig Cfg;
  std::vector<JobTemplate> Templates;
  std::unique_ptr<mcl::Context> Ctx;
  std::vector<StreamGen> Gens;
  std::vector<std::unique_ptr<Req>> Requests;
  std::deque<Req *> Ready;

  // Device leases. A cooperative FifoExclusive job holds both.
  Req *GpuJob = nullptr;
  Req *CpuJob = nullptr;
  TimePoint GpuLeaseStart;
  TimePoint CpuLeaseStart;
  int64_t GpuBusyNs = 0;
  int64_t CpuBusyNs = 0;

  // Cooperative-CPU activity tracking (FluidicCorun): true while the
  // corun job's CPU side is between resume and the next chunk boundary.
  bool CorunCpuBusy = false;
  TimePoint CorunCpuStart;
  int64_t CorunCpuNs = 0;
  /// Deferred resumes of the cooperative CPU side, invoked when the
  /// backfill job occupying the CPU completes. Stale resumes (their
  /// kernel's GPU side finished meanwhile) no-op via their own guards.
  std::vector<std::function<void()>> PendingResumes;

  uint64_t NextId = 0;
  uint64_t Submitted = 0;
  uint64_t RejectedN = 0;
  uint64_t CompletedN = 0;
  uint64_t CoopN = 0;
  uint64_t GpuSingleN = 0;
  uint64_t CpuSingleN = 0;
  uint64_t BackfillN = 0;
  uint64_t DagN = 0;
  dag::DagStats DagTotals;
  uint64_t ChunkYields = 0;
  uint64_t ValidationFailuresN = 0;
  uint64_t StolenOutN = 0;
  TimePoint LastEnd;
  std::function<void(const JobOutcome &)> Outcome;

  /// fcl::race instrumentation names: the would-be engine lock (the
  /// threading plan is one mutex per engine around all queue/lease state)
  /// plus the two device leases and the admission-queue shadow object.
  /// Instance-numbered like fluidicl::Runtime's section.
  std::string RaceSec;
  std::string GpuLeaseName;
  std::string CpuLeaseName;
  std::string ReadyObj;

  // Aggregated fcl::check / fcl::race outcome (collectAnalysis()).
  uint64_t CheckErrorsN = 0;
  uint64_t CheckWarningsN = 0;
  std::vector<std::string> CheckDiagLines;
  uint64_t RaceFindingsN = 0;
  std::vector<std::string> RaceDiagLines;
};

} // namespace serve
} // namespace fcl

#endif // FCL_SERVE_ENGINE_H
