//===- serve/Policy.h - Multi-tenant scheduling policies --------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable dispatch policies of the serving layer. FluidiCL (CGO
/// 2014) gives one application the whole CPU+GPU pair; once many client
/// streams contend for the same two devices the scheduler becomes the
/// dominant design problem (EngineCL, Soldado et al.). Three policies span
/// the design space:
///
///  * FifoExclusive - the implicit status quo: the head-of-line job gets
///    the whole device pair (cooperative execution), everyone else waits.
///  * DeviceAffine  - small jobs are pinned to the CPU and large jobs to
///    the GPU (size threshold in work-groups), so one long job cannot
///    block the other device; no job ever spans both devices.
///  * FluidicCorun  - the head-of-line job runs cooperatively across the
///    pair, and short jobs backfill the CPU in the yield windows between
///    the cooperative run's CPU subkernel chunks.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SERVE_POLICY_H
#define FCL_SERVE_POLICY_H

#include <string>

namespace fcl {
namespace serve {

enum class Policy {
  FifoExclusive,
  DeviceAffine,
  FluidicCorun,
};

/// Parses a --policy spelling ("fifo", "affine", "corun"); returns false
/// for unknown names.
inline bool parsePolicy(const std::string &Name, Policy &Out) {
  if (Name == "fifo" || Name == "fifo-exclusive") {
    Out = Policy::FifoExclusive;
    return true;
  }
  if (Name == "affine" || Name == "device-affine") {
    Out = Policy::DeviceAffine;
    return true;
  }
  if (Name == "corun" || Name == "fluidic-corun") {
    Out = Policy::FluidicCorun;
    return true;
  }
  return false;
}

inline const char *policyName(Policy P) {
  switch (P) {
  case Policy::FifoExclusive:
    return "fifo";
  case Policy::DeviceAffine:
    return "affine";
  case Policy::FluidicCorun:
    return "corun";
  }
  return "?";
}

} // namespace serve
} // namespace fcl

#endif // FCL_SERVE_POLICY_H
