//===- serve/Engine.cpp - Multi-tenant serving engine ---------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Engine.h"

#include "dag/DagExec.h"
#include "prof/Profiler.h"
#include "race/Bridge.h"
#include "race/Race.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <string_view>

using namespace fcl;
using namespace fcl::serve;

Engine::Engine(EngineConfig C) : Cfg(std::move(C)) {
  FCL_CHECK(Cfg.Streams > 0, "need at least one stream");
  FCL_CHECK(Cfg.QueueDepth > 0, "queue depth must be positive");
  Templates = jobTemplates(Cfg.Mix);
  Ctx = std::make_unique<mcl::Context>(Cfg.M, Cfg.Mode);
  Ctx->setTracer(Cfg.Tracer);
  if (!Cfg.External) {
    Gens.reserve(Cfg.Streams);
    for (int S = 0; S < Cfg.Streams; ++S)
      Gens.emplace_back(Cfg.Seed, S, Templates);
  }
  // The threading plan for the engine is one mutex around all queue and
  // lease state: every externally-entered callback declares this section
  // and the race analyzer checks that the shared structures stay inside.
  static uint64_t NextRaceId = 0;
  RaceSec = "serve.engine#" + std::to_string(NextRaceId++);
  GpuLeaseName = RaceSec + ".gpu";
  CpuLeaseName = RaceSec + ".cpu";
  ReadyObj = RaceSec + ".ready";
}

Engine::~Engine() = default;

Engine::Req *Engine::newRequest(int Stream) {
  auto R = std::make_unique<Req>();
  R->Id = NextId++;
  R->Stream = Stream;
  R->T = &Gens[Stream].pickTemplate();
  R->Large = R->T->MaxGroups >= Cfg.LargeThreshold;
  Req *Raw = R.get();
  Requests.push_back(std::move(R));
  return Raw;
}

void Engine::scheduleOpenLoopArrivals() {
  // All arrivals are a pure function of (seed, stream): pre-drawn here and
  // scheduled up front, in stream-major order. Equal timestamps fire in
  // schedule order, so the whole run is deterministic.
  sim::Simulator &Sim = Ctx->simulator();
  for (int S = 0; S < Cfg.Streams; ++S) {
    StreamGen &G = Gens[S];
    Duration At = Cfg.Arrival.Kind == ArrivalKind::Uniform
                      ? G.initialPhase(Cfg.Arrival)
                      : G.interarrival(Cfg.Arrival);
    while (At <= Cfg.Horizon) {
      Req *R = newRequest(S);
      Sim.scheduleAt(TimePoint() + At, [this, R] { onArrival(R); });
      At += G.interarrival(Cfg.Arrival);
    }
  }
}

void Engine::scheduleClosedLoopNext(int Stream, Duration Delay) {
  TimePoint At = Ctx->now() + Delay;
  if (At - TimePoint() > Cfg.Horizon)
    return; // The stream's session ends inside the admission window.
  Req *R = newRequest(Stream);
  Ctx->simulator().scheduleAt(At, [this, R] { onArrival(R); });
}

void Engine::sampleQueueDepth() {
  if (Cfg.Tracer)
    Cfg.Tracer->counter("Serve queue depth", Ctx->now(),
                        static_cast<double>(Ready.size()));
}

void Engine::onArrival(Req *R) {
  FCL_PROF_SCOPE("serve.admission");
  race::Section RaceS(RaceSec);
  R->ArrivalAt = Ctx->now();
  ++Submitted;
  if (Ready.size() >= static_cast<size_t>(Cfg.QueueDepth)) {
    // Backpressure: the admission queue is full, shed the request.
    R->Rejected = true;
    R->Placement = "rejected";
    ++RejectedN;
    if (Cfg.Tracer)
      Cfg.Tracer->record("Serve admission", "reject", Ctx->now(), Ctx->now(),
                         formatString("req %llu stream %d (%s)",
                                      static_cast<unsigned long long>(R->Id),
                                      R->Stream, R->T->W.Name.c_str()));
    if (Cfg.Arrival.Kind == ArrivalKind::Closed && !Cfg.External)
      scheduleClosedLoopNext(R->Stream, Gens[R->Stream].think(Cfg.Arrival));
    emitOutcome(R);
    return;
  }
  if (race::Analyzer::enabled())
    race::Analyzer::instance().sharedWrite(ReadyObj, "push");
  Ready.push_back(R);
  sampleQueueDepth();
  dispatch();
}

Engine::Req *Engine::popHead() {
  if (Ready.empty())
    return nullptr;
  if (race::Analyzer::enabled())
    race::Analyzer::instance().sharedWrite(ReadyObj, "popHead");
  Req *R = Ready.front();
  Ready.pop_front();
  sampleQueueDepth();
  return R;
}

Engine::Req *Engine::takeFirst(bool WantLarge) {
  for (auto It = Ready.begin(); It != Ready.end(); ++It) {
    // Compound jobs need both devices at once; they only ever start from
    // the queue head (startDag), never as single-device picks.
    if ((*It)->T->Dag)
      continue;
    if ((*It)->Large == WantLarge) {
      if (race::Analyzer::enabled())
        race::Analyzer::instance().sharedWrite(ReadyObj, "takeFirst");
      Req *R = *It;
      Ready.erase(It);
      sampleQueueDepth();
      return R;
    }
  }
  return nullptr;
}

bool Engine::headIsDag() const {
  return !Ready.empty() && Ready.front()->T->Dag != nullptr;
}

void Engine::dispatch() {
  FCL_PROF_SCOPE("serve.dispatch");
  race::Section RaceS(RaceSec);
  switch (Cfg.P) {
  case Policy::FifoExclusive:
    // Status quo: the head-of-line job gets the whole pair, strictly FIFO.
    if (!GpuJob && !CpuJob)
      if (Req *R = popHead())
        R->T->Dag ? startDag(R) : startCoop(R);
    break;
  case Policy::DeviceAffine:
    // A compound head job claims the whole pair when it is free; the DAG
    // executor does its own per-node placement, so affinity classes do not
    // apply to it.
    if (!GpuJob && !CpuJob && headIsDag())
      startDag(popHead());
    // Strict pinning: large jobs queue for the GPU, small jobs for the
    // CPU; neither class can use the other device even when it idles.
    if (!GpuJob)
      if (Req *R = takeFirst(/*WantLarge=*/true))
        startSingle(R, /*OnGpu=*/true, /*Backfill=*/false);
    if (!CpuJob)
      if (Req *R = takeFirst(/*WantLarge=*/false))
        startSingle(R, /*OnGpu=*/false, /*Backfill=*/false);
    break;
  case Policy::FluidicCorun:
    // A compound head job waits for the whole pair (CPU backfill below
    // keeps running meanwhile); otherwise the head job runs cooperatively
    // on the pair and whole small jobs backfill the CPU while its CPU side
    // is idle.
    if (!GpuJob && !CpuJob && headIsDag())
      startDag(popHead());
    if (!GpuJob && !headIsDag())
      if (Req *R = popHead())
        startCoop(R);
    if (!CpuJob && !CorunCpuBusy)
      if (Req *R = takeFirst(/*WantLarge=*/false))
        startSingle(R, /*OnGpu=*/false, /*Backfill=*/true);
    break;
  }
}

void Engine::startDag(Req *R) {
  R->StartAt = Ctx->now();
  R->Placement = "dag";
  ++DagN;
  // A compound job owns both devices for its duration; leases are taken
  // before start() because job setup advances the simulated clock.
  GpuJob = R;
  CpuJob = R;
  GpuLeaseStart = Ctx->now();
  CpuLeaseStart = Ctx->now();
  if (race::Analyzer::enabled()) {
    race::Analyzer::instance().leaseAcquire(
        GpuLeaseName,
        formatString("req %llu", static_cast<unsigned long long>(R->Id)));
    race::Analyzer::instance().leaseAcquire(
        CpuLeaseName,
        formatString("req %llu", static_cast<unsigned long long>(R->Id)));
  }
  R->Exec = std::make_unique<dag::DagJobExec>(*Ctx, R->T->W, *R->T->Dag,
                                              Cfg.DagPlace, Cfg.Validate,
                                              &DagTotals, Cfg.Tracer);
  R->Exec->start([this, R] { jobDone(R); });
}

void Engine::startCoop(Req *R) {
  R->StartAt = Ctx->now();
  R->Placement = Cfg.P == Policy::FifoExclusive ? "pair" : "corun";
  ++CoopN;
  // Leases are taken before start(): job setup advances the simulated
  // clock (API overheads), which can re-enter dispatch via completions.
  GpuJob = R;
  GpuLeaseStart = Ctx->now();
  if (race::Analyzer::enabled())
    race::Analyzer::instance().leaseAcquire(
        GpuLeaseName,
        formatString("req %llu", static_cast<unsigned long long>(R->Id)));
  if (Cfg.P == Policy::FifoExclusive) {
    CpuJob = R;
    CpuLeaseStart = Ctx->now();
    if (race::Analyzer::enabled())
      race::Analyzer::instance().leaseAcquire(
          CpuLeaseName,
          formatString("req %llu", static_cast<unsigned long long>(R->Id)));
  }
  auto Exec = std::make_unique<CoopJobExec>(*Ctx, R->T->W, Cfg.FclOpts,
                                            Cfg.Validate);
  if (Cfg.P == Policy::FluidicCorun)
    Exec->runtime().setChunkYield([this](std::function<void()> Resume) {
      onChunkBoundary(std::move(Resume));
    });
  R->Exec = std::move(Exec);
  R->Exec->start([this, R] { jobDone(R); });
}

void Engine::startSingle(Req *R, bool OnGpu, bool Backfill) {
  R->StartAt = Ctx->now();
  R->Placement = Backfill ? "cpu-backfill" : (OnGpu ? "gpu" : "cpu");
  if (OnGpu) {
    ++GpuSingleN;
    GpuJob = R;
    GpuLeaseStart = Ctx->now();
  } else {
    ++CpuSingleN;
    if (Backfill)
      ++BackfillN;
    CpuJob = R;
    CpuLeaseStart = Ctx->now();
  }
  if (race::Analyzer::enabled())
    race::Analyzer::instance().leaseAcquire(
        OnGpu ? GpuLeaseName : CpuLeaseName,
        formatString("req %llu", static_cast<unsigned long long>(R->Id)));
  R->Exec = std::make_unique<SingleJobExec>(
      *Ctx, OnGpu ? Ctx->gpu() : Ctx->cpu(), R->T->W, Cfg.Validate);
  R->Exec->start([this, R] { jobDone(R); });
}

void Engine::setCorunCpuBusy(bool Busy) {
  if (Busy == CorunCpuBusy)
    return;
  if (Busy) {
    CorunCpuStart = Ctx->now();
  } else {
    CorunCpuNs += (Ctx->now() - CorunCpuStart).nanos();
  }
  CorunCpuBusy = Busy;
}

void Engine::onChunkBoundary(std::function<void()> Resume) {
  FCL_PROF_SCOPE("serve.chunk_yield");
  race::Section RaceS(RaceSec);
  ++ChunkYields;
  // The cooperative CPU side is now idle: between subkernel chunks it
  // holds no partial state, so the CPU can be lent out whole.
  setCorunCpuBusy(false);
  if (CpuJob) {
    // A backfill job occupies the CPU; park the resume until it finishes.
    PendingResumes.push_back(std::move(Resume));
    return;
  }
  if (Req *S = takeFirst(/*WantLarge=*/false)) {
    PendingResumes.push_back(std::move(Resume));
    startSingle(S, /*OnGpu=*/false, /*Backfill=*/true);
    return;
  }
  // Nothing to backfill: continue the cooperative CPU side immediately.
  setCorunCpuBusy(true);
  Resume();
}

void Engine::drainResumes() {
  race::Section RaceS(RaceSec);
  if (PendingResumes.empty())
    return;
  std::vector<std::function<void()>> Rs = std::move(PendingResumes);
  PendingResumes.clear();
  // The cooperative CPU side gets priority over further backfill so a
  // stream of short jobs cannot starve the head job's CPU share; the next
  // chunk boundary re-opens the backfill window.
  setCorunCpuBusy(true);
  for (std::function<void()> &Fn : Rs)
    Fn();
}

void Engine::jobDone(Req *R) {
  FCL_PROF_SCOPE("serve.callback");
  race::Section RaceS(RaceSec);
  R->EndAt = Ctx->now();
  R->Done = true;
  ++CompletedN;
  if (R->Exec->validationFailed())
    ++ValidationFailuresN;
  if (R->EndAt > LastEnd)
    LastEnd = R->EndAt;

  if (Cfg.Tracer) {
    std::string Detail =
        formatString("stream %d, %s, %llu groups, %s", R->Stream,
                     R->Large ? "large" : "small",
                     static_cast<unsigned long long>(R->T->MaxGroups),
                     R->Placement);
    std::string Name = formatString(
        "%s #%llu", R->T->W.Name.c_str(),
        static_cast<unsigned long long>(R->Id));
    bool OnGpu = GpuJob == R;
    bool OnCpu = CpuJob == R || std::string_view(R->Placement) == "cpu" ||
                 std::string_view(R->Placement) == "cpu-backfill";
    if (OnGpu)
      Cfg.Tracer->record("Serve GPU", Name, R->StartAt, R->EndAt, Detail);
    if (OnCpu)
      Cfg.Tracer->record("Serve CPU", Name, R->StartAt, R->EndAt, Detail);
  }

  bool WasCoop = GpuJob == R && (Cfg.P != Policy::DeviceAffine);
  bool WasBackfill = std::string_view(R->Placement) == "cpu-backfill";
  if (GpuJob == R) {
    GpuBusyNs += (Ctx->now() - GpuLeaseStart).nanos();
    GpuJob = nullptr;
    if (race::Analyzer::enabled())
      race::Analyzer::instance().leaseRelease(GpuLeaseName);
  }
  if (CpuJob == R) {
    CpuBusyNs += (Ctx->now() - CpuLeaseStart).nanos();
    CpuJob = nullptr;
    if (race::Analyzer::enabled())
      race::Analyzer::instance().leaseRelease(CpuLeaseName);
  }
  if (WasCoop && Cfg.P == Policy::FluidicCorun) {
    // The cooperative job is gone: close its CPU span and drop any resumes
    // still parked for it (they would no-op anyway).
    setCorunCpuBusy(false);
    PendingResumes.clear();
  }

  if (Cfg.Arrival.Kind == ArrivalKind::Closed && !Cfg.External)
    scheduleClosedLoopNext(R->Stream, Gens[R->Stream].think(Cfg.Arrival));

  emitOutcome(R);
  if (WasBackfill)
    drainResumes();
  dispatch();
}

void Engine::emitOutcome(Req *R) {
  if (!Outcome)
    return;
  JobOutcome O;
  O.ClusterId = R->ClusterId;
  O.Rejected = R->Rejected;
  O.ArrivalAt = R->ArrivalAt;
  O.StartAt = R->StartAt;
  O.EndAt = R->EndAt;
  O.Placement = R->Placement;
  O.Large = R->Large;
  Outcome(O);
}

void Engine::setOutcomeFn(std::function<void(const JobOutcome &)> Fn) {
  FCL_CHECK(Cfg.External, "outcome hook is for embedded engines");
  Outcome = std::move(Fn);
}

void Engine::injectJob(uint64_t ClusterId, int TemplateIdx, int Stream,
                       TimePoint At) {
  FCL_CHECK(Cfg.External, "injectJob is for embedded engines");
  FCL_CHECK(TemplateIdx >= 0 &&
                static_cast<size_t>(TemplateIdx) < Templates.size(),
            "job template index out of range");
  auto Owned = std::make_unique<Req>();
  Req *R = Owned.get();
  R->Id = NextId++;
  R->ClusterId = ClusterId;
  R->TemplateIdx = TemplateIdx;
  R->Stream = Stream;
  R->T = &Templates[TemplateIdx];
  R->Large = R->T->MaxGroups >= Cfg.LargeThreshold;
  Requests.push_back(std::move(Owned));
  Ctx->simulator().scheduleAt(At, [this, R] { onArrival(R); });
}

bool Engine::stealQueued(StolenJob &Out) {
  FCL_CHECK(Cfg.External, "stealQueued is for embedded engines");
  if (Ready.empty())
    return false;
  // The master holds this engine's would-be lock (the fabric barrier is
  // the real mutual exclusion; the section declares it to the analyzer).
  race::Section RaceS(RaceSec);
  if (race::Analyzer::enabled())
    race::Analyzer::instance().sharedWrite(ReadyObj, "steal");
  // Take the newest arrival: the head of the queue is next to start
  // locally, so migrating the tail preserves FIFO fairness.
  Req *R = Ready.back();
  Ready.pop_back();
  sampleQueueDepth();
  R->Stolen = true;
  R->Placement = "stolen";
  ++StolenOutN;
  Out.ClusterId = R->ClusterId;
  Out.TemplateIdx = R->TemplateIdx;
  Out.Stream = R->Stream;
  return true;
}

void Engine::advanceTo(TimePoint Deadline) {
  Ctx->simulator().runUntil(Deadline);
}

int Engine::runningJobs() const {
  int N = 0;
  if (GpuJob)
    ++N;
  if (CpuJob && CpuJob != GpuJob)
    ++N;
  return N;
}

bool Engine::quiescent() const {
  return Ready.empty() && !GpuJob && !CpuJob &&
         !Ctx->simulator().hasPending();
}

TimePoint Engine::now() const { return Ctx->now(); }

ServeReport Engine::finishExternal() {
  FCL_CHECK(Cfg.External, "finishExternal is for embedded engines");
  collectAnalysis(/*IncludeRaces=*/false);
  ServeReport Report = finalize();
  for (auto &R : Requests)
    R->Exec.reset();
  return Report;
}

ServeReport Engine::run() {
  FCL_CHECK(!Cfg.External,
            "embedded engines are driven by the cluster master");
  if (Cfg.Races != check::Policy::Off) {
    race::Analyzer &A = race::Analyzer::instance();
    A.reset();
    A.setEnabled(true);
  }
  if (Cfg.Arrival.Kind == ArrivalKind::Closed) {
    for (int S = 0; S < Cfg.Streams; ++S)
      scheduleClosedLoopNext(S, Gens[S].initialPhase(Cfg.Arrival));
  } else {
    scheduleOpenLoopArrivals();
  }
  // Drain everything: arrivals, jobs, trailing cooperative transfers.
  Ctx->simulator().run();
  collectAnalysis(/*IncludeRaces=*/true);
  ServeReport Report = finalize();
  // Tear down executors only now, at top level: cooperative runtimes
  // FCL_CHECK their queues idle on destruction.
  for (auto &R : Requests)
    R->Exec.reset();
  return Report;
}

void Engine::collectAnalysis(bool IncludeRaces) {
  if (Cfg.FclOpts.Check != check::Policy::Off) {
    for (auto &R : Requests) {
      fluidicl::Runtime *RT = R->Exec ? R->Exec->fclRuntime() : nullptr;
      if (!RT)
        continue;
      // Fires the run-finish invariants (scratch leaks, pool accounting)
      // while the sink is still collectable; the destructor's finish() is
      // then a no-op drain.
      RT->finish();
      const check::DiagSink &S = RT->diagSink();
      CheckErrorsN += S.errorCount();
      CheckWarningsN += S.warningCount();
      for (const check::Diag &D : S.diags())
        CheckDiagLines.push_back(D.str());
    }
  }
  if (IncludeRaces && Cfg.Races != check::Policy::Off) {
    race::Analyzer &A = race::Analyzer::instance();
    A.setEnabled(false);
    check::DiagSink Sink(check::Policy::Warn);
    race::reportFindings(A.takeFindings(), Sink);
    RaceFindingsN = Sink.diags().size();
    for (const check::Diag &D : Sink.diags())
      RaceDiagLines.push_back(D.str());
  }
}

ServeReport Engine::finalize() {
  ServeReport Rep;
  Rep.PolicyName = policyName(Cfg.P);
  Rep.ArrivalDesc = Cfg.Arrival.str();
  Rep.Mix = mixName(Cfg.Mix);
  Rep.Machine = Cfg.MachineName;
  Rep.Seed = Cfg.Seed;
  Rep.Streams = Cfg.Streams;
  Rep.QueueDepth = Cfg.QueueDepth;
  Rep.LargeThreshold = Cfg.LargeThreshold;
  Rep.HorizonMs = Cfg.Horizon.toMillis();
  Rep.Submitted = Submitted;
  Rep.Rejected = RejectedN;
  Rep.Completed = CompletedN;

  std::vector<double> QueueMs, ServiceMs, E2eMs, SmallMs, LargeMs;
  for (const auto &R : Requests) {
    RequestRecord Rec;
    Rec.Id = R->Id;
    Rec.Stream = R->Stream;
    Rec.Workload = R->T->W.Name;
    Rec.MaxGroups = R->T->MaxGroups;
    Rec.Large = R->Large;
    Rec.Rejected = R->Rejected;
    Rec.Placement = R->Placement;
    Rec.ArrivalAt = R->ArrivalAt;
    Rec.StartAt = R->StartAt;
    Rec.EndAt = R->EndAt;
    Rep.Requests.push_back(Rec);
    if (R->Rejected)
      continue;
    if (R->Stolen)
      continue; // Migrated to another worker; the thief accounts for it.
    FCL_CHECK(R->Done, "admitted request never completed");
    QueueMs.push_back(Rec.queueWaitMs());
    ServiceMs.push_back(Rec.serviceMs());
    E2eMs.push_back(Rec.e2eMs());
    (R->Large ? LargeMs : SmallMs).push_back(Rec.e2eMs());
    if (Cfg.SloMs > 0 && Rec.e2eMs() > Cfg.SloMs)
      ++Rep.SloViolations;
  }
  Rep.QueueWait = summarizeLatency(QueueMs);
  Rep.Service = summarizeLatency(ServiceMs);
  Rep.E2e = summarizeLatency(E2eMs);
  Rep.SmallE2e = summarizeLatency(SmallMs);
  Rep.LargeE2e = summarizeLatency(LargeMs);
  Rep.SmallCompleted = SmallMs.size();
  Rep.LargeCompleted = LargeMs.size();

  Rep.MakespanMs = (LastEnd - TimePoint()).toMillis();
  Rep.ThroughputRps = Rep.MakespanMs > 0
                          ? static_cast<double>(CompletedN) /
                                (Rep.MakespanMs / 1e3)
                          : 0.0;
  Rep.GpuBusyMs = static_cast<double>(GpuBusyNs) * 1e-6;
  Rep.CorunCpuMs = static_cast<double>(CorunCpuNs) * 1e-6;
  Rep.CpuBusyMs = static_cast<double>(CpuBusyNs) * 1e-6 + Rep.CorunCpuMs;
  Rep.GpuUtil = Rep.MakespanMs > 0 ? Rep.GpuBusyMs / Rep.MakespanMs : 0.0;
  Rep.CpuUtil = Rep.MakespanMs > 0 ? Rep.CpuBusyMs / Rep.MakespanMs : 0.0;
  Rep.CoopJobs = CoopN;
  Rep.GpuJobs = GpuSingleN;
  Rep.CpuJobs = CpuSingleN;
  Rep.BackfillJobs = BackfillN;
  Rep.ChunkYields = ChunkYields;
  if (DagN) {
    Rep.DagPlacement = dag::placementName(Cfg.DagPlace);
    Rep.DagJobs = DagN;
    Rep.DagNodes = DagTotals.Nodes;
    Rep.DagGpuNodes = DagTotals.GpuNodes;
    Rep.DagCpuNodes = DagTotals.CpuNodes;
    Rep.DagTransfers = DagTotals.Transfers;
    Rep.DagTransferBytes = DagTotals.TransferBytes;
    Rep.DagPcieBytes = DagTotals.PcieBytes;
    Rep.DagTransfersSkipped = DagTotals.TransfersSkipped;
    Rep.DagBytesSaved = DagTotals.BytesSaved;
  }
  Rep.SloChecked = Cfg.SloMs > 0;
  Rep.SloMs = Cfg.SloMs;
  Rep.Validated = Cfg.Validate && Cfg.Mode == mcl::ExecMode::Functional;
  Rep.ValidationFailures = ValidationFailuresN;
  Rep.CheckEnabled = Cfg.FclOpts.Check != check::Policy::Off;
  Rep.CheckErrors = CheckErrorsN;
  Rep.CheckWarnings = CheckWarningsN;
  Rep.CheckDiags = CheckDiagLines;
  Rep.RacesEnabled = Cfg.Races != check::Policy::Off;
  Rep.RaceFindings = RaceFindingsN;
  Rep.RaceDiags = RaceDiagLines;

  // Mirror into the fcl::stats registry (the observability view; the
  // tool's --stats-json embeds it verbatim).
  stats::Registry &St = Rep.Stats;
  St.add("serve_submitted", Submitted);
  St.add("serve_rejected", RejectedN);
  St.add("serve_completed", CompletedN);
  St.add("serve_jobs_coop", CoopN);
  St.add("serve_jobs_gpu_single", GpuSingleN);
  St.add("serve_jobs_cpu_single", CpuSingleN);
  St.add("serve_jobs_backfill", BackfillN);
  St.add("serve_chunk_yields", ChunkYields);
  St.add("serve_slo_violations", Rep.SloViolations);
  St.add("serve_validation_failures", ValidationFailuresN);
  // DAG counters only when compound jobs ran: plain mixes keep their
  // pre-dag report bytes.
  if (DagN) {
    St.add("serve_dag_jobs", DagN);
    St.add("serve_dag_nodes", DagTotals.Nodes);
    St.add("serve_dag_nodes_gpu", DagTotals.GpuNodes);
    St.add("serve_dag_nodes_cpu", DagTotals.CpuNodes);
    St.add("serve_dag_transfers", DagTotals.Transfers);
    St.add("serve_dag_transfer_bytes", DagTotals.TransferBytes);
    St.add("serve_dag_pcie_bytes", DagTotals.PcieBytes);
    St.add("serve_dag_transfers_skipped", DagTotals.TransfersSkipped);
    St.add("serve_dag_bytes_saved", DagTotals.BytesSaved);
  }
  // Analysis counters only when something was found: a clean analyzed run
  // must keep the exact bytes of an unanalyzed one.
  if (CheckErrorsN || CheckWarningsN) {
    St.add("serve_check_errors", CheckErrorsN);
    St.add("serve_check_warnings", CheckWarningsN);
  }
  if (RaceFindingsN)
    St.add("serve_race_findings", RaceFindingsN);
  St.set("serve_e2e_p50_ms", Rep.E2e.P50);
  St.set("serve_e2e_p95_ms", Rep.E2e.P95);
  St.set("serve_e2e_p99_ms", Rep.E2e.P99);
  St.set("serve_queue_wait_p95_ms", Rep.QueueWait.P95);
  St.set("serve_service_p95_ms", Rep.Service.P95);
  St.set("serve_makespan_ms", Rep.MakespanMs);
  St.set("serve_throughput_rps", Rep.ThroughputRps);
  St.set("serve_gpu_util", Rep.GpuUtil);
  St.set("serve_cpu_util", Rep.CpuUtil);
  // Event-queue health of the shared simulator (satellite of the profiler
  // work: tombstone pressure is invisible in latency numbers until it
  // degrades, so surface it in every serve report).
  sim::Simulator &Sim = Ctx->simulator();
  St.add("sim_events_executed", Sim.eventsExecuted());
  St.add("sim_tombstone_skips", Sim.tombstoneSkips());
  St.add("sim_compaction_runs", Sim.compactionRuns());
  St.set("sim_pending_tombstones", static_cast<double>(Sim.pendingTombstones()));
  return Rep;
}
