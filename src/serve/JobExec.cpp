//===- serve/JobExec.cpp - Asynchronous per-job executors -----------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/JobExec.h"

#include "kern/Registry.h"
#include "support/Error.h"
#include "work/Driver.h"

#include <cmath>

using namespace fcl;
using namespace fcl::serve;

bool fcl::serve::validateResults(
    const work::Workload &W, std::vector<std::vector<std::byte>> &Host,
    const std::vector<std::vector<std::byte>> &Results) {
  work::computeReference(W, Host);
  for (size_t R = 0; R < W.ResultBuffers.size(); ++R) {
    const auto *Got = reinterpret_cast<const float *>(Results[R].data());
    const auto *Want =
        reinterpret_cast<const float *>(Host[W.ResultBuffers[R]].data());
    uint64_t Count = Results[R].size() / sizeof(float);
    for (uint64_t J = 0; J < Count; ++J) {
      double Err = std::fabs(static_cast<double>(Got[J]) - Want[J]);
      double Tol = 1e-5 + 1e-5 * std::fabs(Want[J]);
      if (Err > Tol)
        return false;
    }
  }
  return true;
}

// --- CoopJobExec -----------------------------------------------------------

CoopJobExec::CoopJobExec(mcl::Context &Ctx, const work::Workload &W,
                         const fluidicl::Options &Opts, bool Validate)
    : Ctx(Ctx), W(W), Validate(Validate),
      RT(std::make_unique<fluidicl::Runtime>(Ctx, Opts)) {}

void CoopJobExec::start(DoneFn Done) {
  OnDone = std::move(Done);
  bool Functional = Ctx.functional();
  if (Functional)
    Host = work::initHostData(W);
  for (size_t I = 0; I < W.Buffers.size(); ++I)
    Ids.push_back(RT->createBuffer(W.Buffers[I].Bytes, W.Buffers[I].Name));
  for (size_t I = 0; I < W.Buffers.size(); ++I)
    RT->writeBuffer(Ids[I], Functional ? Host[I].data() : nullptr,
                    W.Buffers[I].Bytes);
  Results.resize(W.ResultBuffers.size());
  if (Functional)
    for (size_t R = 0; R < W.ResultBuffers.size(); ++R)
      Results[R].resize(W.Buffers[W.ResultBuffers[R]].Bytes);
  launchNext();
}

void CoopJobExec::launchNext() {
  if (NextCall == W.Calls.size()) {
    readNext();
    return;
  }
  const work::KernelCall &Call = W.Calls[NextCall++];
  // Kernel launches stay blocking from the client's perspective (paper
  // section 7), so the next call is issued only from this one's
  // completion.
  std::vector<runtime::KArg> Args = Call.Args;
  for (runtime::KArg &A : Args)
    if (A.IsBuffer)
      A.Buf = Ids[A.Buf];
  RT->launchKernelAsync(Call.Kernel, Call.Range, Args,
                        [this] { launchNext(); });
}

void CoopJobExec::readNext() {
  if (NextRead == W.ResultBuffers.size()) {
    finishJob();
    return;
  }
  size_t Slot = NextRead++;
  size_t BufIdx = W.ResultBuffers[Slot];
  RT->readBufferAsync(Ids[BufIdx],
                      Ctx.functional() ? Results[Slot].data() : nullptr,
                      W.Buffers[BufIdx].Bytes, [this] { readNext(); });
}

void CoopJobExec::finishJob() {
  if (Validate && Ctx.functional())
    ValidationFailed = !validateResults(W, Host, Results);
  FCL_CHECK(OnDone, "job finished twice");
  DoneFn Fn = std::move(OnDone);
  OnDone = nullptr;
  Fn();
}

// --- SingleJobExec ---------------------------------------------------------

SingleJobExec::SingleJobExec(mcl::Context &Ctx, mcl::Device &Dev,
                             const work::Workload &W, bool Validate)
    : Ctx(Ctx), Dev(Dev), W(W), Validate(Validate) {}

void SingleJobExec::start(DoneFn Done) {
  OnDone = std::move(Done);
  bool Functional = Ctx.functional();
  if (Functional)
    Host = work::initHostData(W);
  Q = Ctx.createQueue(Dev, "serve-single");
  Duration Api = Ctx.machine().Host.ApiCallOverhead;
  for (const work::BufferSpec &Spec : W.Buffers) {
    Ctx.hostAdvance(Api);
    Bufs.push_back(Ctx.createBuffer(Dev, Spec.Bytes, Spec.Name));
  }
  for (size_t I = 0; I < W.Buffers.size(); ++I) {
    Ctx.hostAdvance(Api);
    Q->enqueueWrite(*Bufs[I], Functional ? Host[I].data() : nullptr,
                    W.Buffers[I].Bytes);
  }
  for (const work::KernelCall &Call : W.Calls) {
    Ctx.hostAdvance(Api);
    mcl::LaunchDesc Desc;
    Desc.Kernel = &kern::Registry::builtin().get(Call.Kernel);
    Desc.Range = Call.Range;
    for (const runtime::KArg &A : Call.Args) {
      if (A.IsBuffer) {
        Desc.Args.push_back(mcl::LaunchArg::buffer(Bufs[A.Buf].get()));
      } else {
        mcl::LaunchArg L;
        L.IntValue = A.IntValue;
        L.FpValue = A.FpValue;
        Desc.Args.push_back(L);
      }
    }
    Q->enqueueKernel(std::move(Desc));
  }
  Results.resize(W.ResultBuffers.size());
  for (size_t R = 0; R < W.ResultBuffers.size(); ++R) {
    size_t BufIdx = W.ResultBuffers[R];
    if (Functional)
      Results[R].resize(W.Buffers[BufIdx].Bytes);
    Ctx.hostAdvance(Api);
    Q->enqueueRead(*Bufs[BufIdx], Functional ? Results[R].data() : nullptr,
                   W.Buffers[BufIdx].Bytes);
  }
  // In-order queue: a trailing callback fires after every write, kernel
  // and read above has completed.
  mcl::EventPtr Tail = Q->enqueueCallback([] {});
  Tail->onComplete([this] { finishJob(); });
}

void SingleJobExec::finishJob() {
  if (Validate && Ctx.functional())
    ValidationFailed = !validateResults(W, Host, Results);
  FCL_CHECK(OnDone, "job finished twice");
  DoneFn Fn = std::move(OnDone);
  OnDone = nullptr;
  Fn();
}
