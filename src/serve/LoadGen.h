//===- serve/LoadGen.h - Synthetic multi-stream load generation -*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded synthetic load for the serving layer: a set of job templates
/// (small and large Polybench applications from work::Workload) and the
/// arrival processes that submit them. Every draw comes from a per-stream
/// fcl::Rng, so the generated load is a pure function of (seed, stream) -
/// this is what makes whole serve runs byte-reproducible.
///
/// Arrival models:
///  * open-loop Poisson  - exponential interarrivals at a given rate; the
///    stream does not wait for responses (models independent clients).
///  * open-loop uniform  - fixed interarrivals at a given rate, with a
///    random initial phase so streams do not arrive in lockstep.
///  * closed-loop        - each stream has one job outstanding and thinks
///    (exponentially distributed) between response and next request.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SERVE_LOADGEN_H
#define FCL_SERVE_LOADGEN_H

#include "dag/Graph.h"
#include "support/Error.h"
#include "support/Rng.h"
#include "support/SimTime.h"
#include "work/Workload.h"

#include <memory>
#include <string>
#include <vector>

namespace fcl {
namespace serve {

enum class ArrivalKind { Poisson, Uniform, Closed };

struct ArrivalSpec {
  ArrivalKind Kind = ArrivalKind::Poisson;
  /// Per-stream request rate (open-loop kinds), requests/second.
  double RatePerSec = 50;
  /// Mean think time between response and next request (closed loop).
  Duration Think = Duration::milliseconds(5);

  std::string str() const;
};

/// Parses "poisson:<rps>", "uniform:<rps>" or "closed:<think-ms>"; returns
/// false (and fills \p Err) for malformed specs.
bool parseArrivalSpec(const std::string &Spec, ArrivalSpec &Out,
                      std::string &Err);

/// Which job sizes a run draws from. Pipeline adds compound multi-kernel
/// DAG jobs (BICG, chained GEMMs, COVAR, synthetic diamond/fan-out) to a
/// base of single-kernel jobs.
enum class MixKind { Mixed, Small, Large, Pipeline };

bool parseMix(const std::string &Name, MixKind &Out);
const char *mixName(MixKind M);

/// One admissible job type: a workload template plus its size metric.
struct JobTemplate {
  work::Workload W;
  /// max over the workload's launches of the flattened work-group count;
  /// policies compare this against their small/large threshold.
  uint64_t MaxGroups = 0;
  /// Non-null for compound jobs: the precomputed kernel dependence graph,
  /// executed by dag::DagJobExec over both devices at once. Shared because
  /// every job instantiated from the template uses the same graph.
  std::shared_ptr<const dag::Graph> Dag;
};

/// The fixed template table for \p Mix. Small templates are a few hundred
/// work-items (latency-sensitive lookups); large ones are matrix kernels
/// with hundreds of work-groups (batch analytics). Deterministic: no RNG.
std::vector<JobTemplate> jobTemplates(MixKind Mix);

/// Per-stream deterministic generator: template choices and timing draws.
class StreamGen {
public:
  StreamGen(uint64_t Seed, int Stream, const std::vector<JobTemplate> &Templs)
      : R(mixSeed(Seed, Stream)), Templates(&Templs) {}

  /// Next job template for this stream (uniform over the table).
  const JobTemplate &pickTemplate() {
    // nextBelow(0) would be a modulo-by-zero; fail loud instead of UB.
    FCL_CHECK(!Templates->empty(),
              "stream has no job templates to draw from");
    return (*Templates)[R.nextBelow(Templates->size())];
  }

  /// Next open-loop interarrival / closed-loop think draw.
  Duration interarrival(const ArrivalSpec &A);
  Duration think(const ArrivalSpec &A);
  /// Initial phase offset so streams do not start in lockstep.
  Duration initialPhase(const ArrivalSpec &A);

  static uint64_t mixSeed(uint64_t Seed, int Stream);

private:
  Rng R;
  const std::vector<JobTemplate> *Templates;
};

} // namespace serve
} // namespace fcl

#endif // FCL_SERVE_LOADGEN_H
