//===- serve/JobExec.h - Asynchronous per-job executors ---------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one admitted job (a work::Workload) to completion without ever
/// blocking the simulator: the serve engine drives many jobs concurrently
/// from inside simulator events, so every executor is a completion-callback
/// chain, not a drain loop.
///
///  * CoopJobExec   - the job owns a private fluidicl::Runtime (its own
///    command queues, buffers, version tracker and stats over the shared
///    simulated devices) and executes cooperatively across the CPU+GPU
///    pair via the runtime's async API.
///  * SingleJobExec - the job owns one in-order command queue on a single
///    device; writes, kernels and reads are enqueued back-to-back and the
///    last read's completion finishes the job.
///
/// In functional execution mode both executors can validate their results
/// against the host reference, proving that concurrent streams do not
/// corrupt each other's data.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SERVE_JOBEXEC_H
#define FCL_SERVE_JOBEXEC_H

#include "fluidicl/Options.h"
#include "fluidicl/Runtime.h"
#include "mcl/CommandQueue.h"
#include "mcl/Context.h"
#include "work/Workload.h"

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace fcl {
namespace serve {

/// Base of the two executor shapes. Lifetime: the engine keeps every
/// executor alive until the whole run is torn down, so trailing cooperative
/// work (DH transfers after the client already has its results) can drain
/// on the shared clock without dangling queues.
class JobExec {
public:
  using DoneFn = std::function<void()>;

  virtual ~JobExec() = default;

  /// Starts the job; \p OnDone fires exactly once, when the client has its
  /// results (trailing cooperative drain may continue afterwards, matching
  /// how the paper measures total running time).
  virtual void start(DoneFn OnDone) = 0;

  /// True when functional validation ran and the results were wrong.
  bool validationFailed() const { return ValidationFailed; }

  /// The job's FluidiCL runtime when it has one (cooperative executors
  /// only); the engine drains its check diagnostics into the serve report
  /// before tear-down. Null for single-device executors.
  virtual fluidicl::Runtime *fclRuntime() { return nullptr; }

protected:
  bool ValidationFailed = false;
};

/// Cooperative CPU+GPU execution through a private FluidiCL runtime.
class CoopJobExec final : public JobExec {
public:
  CoopJobExec(mcl::Context &Ctx, const work::Workload &W,
              const fluidicl::Options &Opts, bool Validate);

  void start(DoneFn OnDone) override;

  /// The job's private runtime (the engine installs its chunk-yield hook
  /// here before start()).
  fluidicl::Runtime &runtime() { return *RT; }

  fluidicl::Runtime *fclRuntime() override { return RT.get(); }

private:
  void launchNext();
  void readNext();
  void finishJob();

  mcl::Context &Ctx;
  const work::Workload &W;
  bool Validate;
  std::unique_ptr<fluidicl::Runtime> RT;
  std::vector<runtime::BufferId> Ids;
  std::vector<std::vector<std::byte>> Host;    // Functional mode only.
  std::vector<std::vector<std::byte>> Results; // Functional mode only.
  size_t NextCall = 0;
  size_t NextRead = 0;
  DoneFn OnDone;
};

/// Whole job on one device through a private in-order queue.
class SingleJobExec final : public JobExec {
public:
  SingleJobExec(mcl::Context &Ctx, mcl::Device &Dev, const work::Workload &W,
                bool Validate);

  void start(DoneFn OnDone) override;

private:
  void finishJob();

  mcl::Context &Ctx;
  mcl::Device &Dev;
  const work::Workload &W;
  bool Validate;
  std::unique_ptr<mcl::CommandQueue> Q;
  std::vector<std::unique_ptr<mcl::Buffer>> Bufs;
  std::vector<std::vector<std::byte>> Host;
  std::vector<std::vector<std::byte>> Results;
  DoneFn OnDone;
};

/// Validates \p Results (one vector per W.ResultBuffers entry) against the
/// host reference; returns true when every float matches within tolerance.
/// Shared by both executors and only meaningful in functional mode.
bool validateResults(const work::Workload &W,
                     std::vector<std::vector<std::byte>> &Host,
                     const std::vector<std::vector<std::byte>> &Results);

} // namespace serve
} // namespace fcl

#endif // FCL_SERVE_JOBEXEC_H
