//===- serve/Metrics.h - Request-level serving metrics ----------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-request latency accounting and the aggregate serve report. Latency
/// decomposes as
///
///   queue wait = start  - arrival   (admission queue residency)
///   service    = end    - start     (devices working on the job)
///   end-to-end = end    - arrival   (what the client sees; SLOs bind here)
///
/// with p50/p95/p99 computed by nearest rank. The report serializes to a
/// deterministic JSON document ("fcl-serve-report-v1"): map-ordered keys
/// and fixed %.6f float formatting, so identical runs produce identical
/// bytes - the determinism gates in CI diff two same-seed runs directly.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SERVE_METRICS_H
#define FCL_SERVE_METRICS_H

#include "stats/Registry.h"
#include "support/SimTime.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fcl {
namespace serve {

/// Latency distribution summary in milliseconds.
struct LatencySummary {
  double P50 = 0;
  double P95 = 0;
  double P99 = 0;
  double Mean = 0;
  double Max = 0;
};

/// Summarizes \p ValuesMs (not required to be sorted).
LatencySummary summarizeLatency(const std::vector<double> &ValuesMs);

/// Final state of one request, as recorded by the engine.
struct RequestRecord {
  uint64_t Id = 0;
  int Stream = 0;
  std::string Workload;
  uint64_t MaxGroups = 0;
  bool Large = false;
  bool Rejected = false;
  /// Where the job ran: "pair", "corun", "gpu", "cpu", "cpu-backfill".
  std::string Placement;
  TimePoint ArrivalAt;
  TimePoint StartAt;
  TimePoint EndAt;

  double queueWaitMs() const { return (StartAt - ArrivalAt).toMillis(); }
  double serviceMs() const { return (EndAt - StartAt).toMillis(); }
  double e2eMs() const { return (EndAt - ArrivalAt).toMillis(); }
};

/// Aggregate outcome of one serve run.
struct ServeReport {
  // Configuration echo (what produced these numbers).
  std::string PolicyName;
  std::string ArrivalDesc;
  std::string Mix;
  std::string Machine;
  uint64_t Seed = 0;
  int Streams = 0;
  int QueueDepth = 0;
  uint64_t LargeThreshold = 0;
  double HorizonMs = 0;

  // Request counts.
  uint64_t Submitted = 0;
  uint64_t Rejected = 0;
  uint64_t Completed = 0;

  // Latency summaries over completed requests.
  LatencySummary QueueWait;
  LatencySummary Service;
  LatencySummary E2e;
  LatencySummary SmallE2e; // Completed small-class requests only.
  LatencySummary LargeE2e; // Completed large-class requests only.
  uint64_t SmallCompleted = 0;
  uint64_t LargeCompleted = 0;

  // Whole-run aggregates.
  double MakespanMs = 0;      // Last response time (first arrival is ~0).
  double ThroughputRps = 0;   // Completed / makespan.
  double GpuBusyMs = 0;       // Device lease occupancy.
  double CpuBusyMs = 0;       // Lease + cooperative-CPU busy time.
  double CorunCpuMs = 0;      // Cooperative-CPU share of CpuBusyMs.
  double GpuUtil = 0;
  double CpuUtil = 0;
  uint64_t CoopJobs = 0;      // Jobs run cooperatively across the pair.
  uint64_t GpuJobs = 0;       // Single-device GPU jobs.
  uint64_t CpuJobs = 0;       // Single-device CPU jobs (incl. backfills).
  uint64_t BackfillJobs = 0;  // CPU jobs slotted into corun yield windows.
  uint64_t ChunkYields = 0;   // Cooperative chunk boundaries observed.

  // SLO verdict (when an SLO was given).
  bool SloChecked = false;
  double SloMs = 0;
  uint64_t SloViolations = 0; // Completed requests with e2e > SloMs.

  // Functional-mode validation.
  bool Validated = false;
  uint64_t ValidationFailures = 0;

  // Compound (DAG) job accounting, mirrored from dag::DagStats so this
  // header does not depend on the dag layer. The JSON emits the "dag"
  // object only when DAG jobs ran: plain mixes serialize to the exact
  // bytes they did before the dag subsystem existed.
  std::string DagPlacement;   // "residency" or "blind"; empty when unused.
  uint64_t DagJobs = 0;
  uint64_t DagNodes = 0;
  uint64_t DagGpuNodes = 0;
  uint64_t DagCpuNodes = 0;
  uint64_t DagTransfers = 0;
  uint64_t DagTransferBytes = 0;
  uint64_t DagPcieBytes = 0;
  uint64_t DagTransfersSkipped = 0;
  uint64_t DagBytesSaved = 0;

  // fcl::check / fcl::race outcome (serve --check / --races). The JSON
  // emits the "check"/"races" objects only when diagnostics exist, so a
  // clean analyzed run serializes to the exact bytes of an unanalyzed one
  // (the determinism gates rely on this).
  bool CheckEnabled = false;
  uint64_t CheckErrors = 0;
  uint64_t CheckWarnings = 0;
  std::vector<std::string> CheckDiags; // Rendered, deterministic order.
  bool RacesEnabled = false;
  uint64_t RaceFindings = 0;
  std::vector<std::string> RaceDiags; // Rendered, deterministic order.

  /// Counter/gauge mirror of the numbers above (the fcl::stats view).
  stats::Registry Stats;

  /// Every request in submission order (rejected ones included).
  std::vector<RequestRecord> Requests;

  /// Deterministic JSON document (schema "fcl-serve-report-v1").
  std::string toJson() const;

  /// Human-readable report for the tool's stdout.
  std::string toText() const;

  /// Per-request CSV (header + one row per request).
  std::string toCsv() const;
};

} // namespace serve
} // namespace fcl

#endif // FCL_SERVE_METRICS_H
