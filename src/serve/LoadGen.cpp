//===- serve/LoadGen.cpp - Synthetic multi-stream load generation ---------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/LoadGen.h"

#include "dag/Pipelines.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <cmath>

using namespace fcl;
using namespace fcl::serve;

std::string ArrivalSpec::str() const {
  switch (Kind) {
  case ArrivalKind::Poisson:
    return formatString("poisson:%g", RatePerSec);
  case ArrivalKind::Uniform:
    return formatString("uniform:%g", RatePerSec);
  case ArrivalKind::Closed:
    return formatString("closed:%g", Think.toMillis());
  }
  return "?";
}

bool fcl::serve::parseArrivalSpec(const std::string &Spec, ArrivalSpec &Out,
                                  std::string &Err) {
  size_t Colon = Spec.find(':');
  std::string Kind = Spec.substr(0, Colon);
  double Value = 0;
  if (Colon != std::string::npos) {
    try {
      Value = std::stod(Spec.substr(Colon + 1));
    } catch (...) {
      Err = "malformed arrival value in '" + Spec + "'";
      return false;
    }
  }
  if (Value <= 0) {
    Err = "arrival spec '" + Spec + "' needs a positive value";
    return false;
  }
  if (Kind == "poisson") {
    Out.Kind = ArrivalKind::Poisson;
    Out.RatePerSec = Value;
    return true;
  }
  if (Kind == "uniform") {
    Out.Kind = ArrivalKind::Uniform;
    Out.RatePerSec = Value;
    return true;
  }
  if (Kind == "closed") {
    Out.Kind = ArrivalKind::Closed;
    Out.Think = Duration::seconds(Value / 1e3);
    return true;
  }
  Err = "unknown arrival kind '" + Kind + "' (poisson|uniform|closed)";
  return false;
}

bool fcl::serve::parseMix(const std::string &Name, MixKind &Out) {
  if (Name == "mixed") {
    Out = MixKind::Mixed;
    return true;
  }
  if (Name == "small") {
    Out = MixKind::Small;
    return true;
  }
  if (Name == "large") {
    Out = MixKind::Large;
    return true;
  }
  if (Name == "pipeline") {
    Out = MixKind::Pipeline;
    return true;
  }
  return false;
}

const char *fcl::serve::mixName(MixKind M) {
  switch (M) {
  case MixKind::Mixed:
    return "mixed";
  case MixKind::Small:
    return "small";
  case MixKind::Large:
    return "large";
  case MixKind::Pipeline:
    return "pipeline";
  }
  return "?";
}

std::vector<JobTemplate> fcl::serve::jobTemplates(MixKind Mix) {
  auto Entry = [](work::Workload W) {
    JobTemplate T;
    uint64_t Max = 0;
    for (uint64_t G : W.groupCounts())
      Max = std::max(Max, G);
    T.MaxGroups = Max;
    T.W = std::move(W);
    return T;
  };
  // Small: latency-sensitive lookups of a few work-groups. Large: matrix
  // kernels with hundreds of work-groups that profit from cooperative
  // CPU+GPU execution.
  std::vector<JobTemplate> Small = {
      Entry(work::makeGesummv(256)),
      Entry(work::makeAtax(256, 256)),
      Entry(work::makeMvt(256)),
      Entry(work::makeBicg(256, 256)),
  };
  std::vector<JobTemplate> Large = {
      Entry(work::makeSyrk(256, 256)),
      Entry(work::makeSyr2k(192, 192)),
      Entry(work::makeGemm(256, 256, 256)),
  };
  // Compound jobs: the workload's launches become a dependence graph the
  // DAG executor runs across both devices at once.
  auto DagEntry = [&Entry](work::Workload W) {
    JobTemplate T = Entry(std::move(W));
    T.Dag = std::make_shared<const dag::Graph>(dag::Graph::fromWorkload(T.W));
    return T;
  };
  std::vector<JobTemplate> Out;
  switch (Mix) {
  case MixKind::Small:
    return Small;
  case MixKind::Large:
    return Large;
  case MixKind::Mixed:
    // Duplicated small entries weight the uniform template draw roughly
    // 70/30 towards small jobs (a heavy-tailed production mix).
    for (int Rep = 0; Rep < 2; ++Rep)
      for (const JobTemplate &T : Small)
        Out.push_back(T);
    for (const JobTemplate &T : Large)
      Out.push_back(T);
    return Out;
  case MixKind::Pipeline:
    // Multi-kernel DAG shapes (fan-out, chains, fan-in, diamond) plus two
    // plain single-kernel templates so the cooperative and single-device
    // paths keep running in the same load.
    Out = {
        DagEntry(work::makeBicg(192, 192)),   // Two independent kernels.
        DagEntry(work::make2mm(64)),          // Chain.
        DagEntry(work::make3mm(64)),          // Fan-in.
        DagEntry(work::makeCovar(96, 96)),    // Chain with InOut centering.
        DagEntry(dag::makeDiamond(64)),       // Fan-out then fan-in.
        DagEntry(dag::makeFanout(64, 3)),     // One producer, 3 branches.
        Entry(work::makeGesummv(256)),
        Entry(work::makeAtax(256, 256)),
    };
    return Out;
  }
  FCL_FATAL("unknown mix");
}

uint64_t StreamGen::mixSeed(uint64_t Seed, int Stream) {
  // splitmix-style mix so per-stream sequences are unrelated even for
  // adjacent seeds / stream indices.
  uint64_t Z = Seed + 0x9E3779B97F4A7C15ull *
                          (static_cast<uint64_t>(Stream) + 1);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

Duration StreamGen::interarrival(const ArrivalSpec &A) {
  switch (A.Kind) {
  case ArrivalKind::Poisson: {
    // Exponential via inverse transform; 1 - U avoids log(0).
    double U = R.nextDouble();
    return Duration::seconds(-std::log(1.0 - U) / A.RatePerSec);
  }
  case ArrivalKind::Uniform:
    return Duration::seconds(1.0 / A.RatePerSec);
  case ArrivalKind::Closed:
    return think(A);
  }
  FCL_FATAL("unknown arrival kind");
}

Duration StreamGen::think(const ArrivalSpec &A) {
  double U = R.nextDouble();
  return Duration::seconds(-std::log(1.0 - U) * A.Think.toSeconds());
}

Duration StreamGen::initialPhase(const ArrivalSpec &A) {
  double Window = A.Kind == ArrivalKind::Closed
                      ? A.Think.toSeconds()
                      : 1.0 / A.RatePerSec;
  return Duration::seconds(R.nextDouble() * Window);
}
