//===- prof/Profiler.cpp - Wall-clock host profiler -----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "prof/Profiler.h"

#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define FCL_PROF_HAVE_TSC 1
#endif

using namespace fcl;
using namespace fcl::prof;

int64_t fcl::prof::wallNowNs() {
  // det-lint: allow(wall-clock) host-side profiler; feeds prof output only
  auto Now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Now.time_since_epoch())
      .count();
}

int64_t detail::tickNow() {
#ifdef FCL_PROF_HAVE_TSC
  return static_cast<int64_t>(__rdtsc());
#else
  return wallNowNs();
#endif
}

namespace {

/// Reads a (tick, wall-ns) pair with the tick taken on both sides of the
/// wall read; the tightest bracket out of a few tries pins the pair to
/// the same instant even if the thread is preempted mid-read.
void sampleTickWall(int64_t &Tick, int64_t &Ns) {
  int64_t BestWidth = INT64_MAX;
  for (int I = 0; I < 8; ++I) {
    int64_t T0 = detail::tickNow();
    int64_t W = wallNowNs();
    int64_t T1 = detail::tickNow();
    if (T1 - T0 < BestWidth) {
      BestWidth = T1 - T0;
      Tick = T0 + (T1 - T0) / 2;
      Ns = W;
    }
  }
}

} // namespace

Profiler::Profiler() { sampleTickWall(CalTick0, CalNs0); }

Profiler &Profiler::instance() {
  static Profiler P;
  return P;
}

double Profiler::nsPerTick() const {
#ifdef FCL_PROF_HAVE_TSC
  // Calibrate against the monotonic clock over the whole window since
  // construction; modern x86 TSCs are constant-rate, and the long window
  // swamps any residual skew in the bracketed anchor samples.
  int64_t Tick1 = 0, Ns1 = 0;
  sampleTickWall(Tick1, Ns1);
  int64_t Ticks = Tick1 - CalTick0;
  int64_t Ns = Ns1 - CalNs0;
  if (Ticks <= 0 || Ns <= 0)
    return 1.0;
  return static_cast<double>(Ns) / static_cast<double>(Ticks);
#else
  return 1.0;
#endif
}

detail::ThreadState &Profiler::threadState() {
  // The shared_ptr keeps the state alive in the profiler's registry after
  // the thread exits, so snapshot() after a join still sees its numbers.
  thread_local std::shared_ptr<detail::ThreadState> TS = [this] {
    auto S = std::make_shared<detail::ThreadState>();
    std::lock_guard<std::mutex> Lock(ThreadsLock);
    Threads.push_back(S);
    return S;
  }();
  return *TS;
}

std::atomic<uint64_t> *Profiler::registerCounter(const char *Name) {
  std::lock_guard<std::mutex> Lock(CountersLock);
  NamedCounters.emplace_back(Name, std::make_unique<std::atomic<uint64_t>>(0));
  return NamedCounters.back().second.get();
}

namespace {

struct MergedNode {
  uint64_t Count = 0;
  int64_t InclusiveTicks = 0;
  int64_t ChildInclusiveTicks = 0;
  int Depth = 0;
  std::string Name;
};

void mergeTree(const detail::PhaseNode &N, const std::string &Path, int Depth,
               std::map<std::string, MergedNode> &Out) {
  for (const auto &ChildPtr : N.Children) {
    const detail::PhaseNode &C = *ChildPtr;
    std::string ChildPath =
        Path.empty() ? std::string(C.Name) : Path + "/" + C.Name;
    MergedNode &M = Out[ChildPath];
    uint64_t Count = C.Count.load(std::memory_order_relaxed);
    int64_t Incl = C.InclusiveTicks.load(std::memory_order_relaxed);
    M.Count += Count;
    M.InclusiveTicks += Incl;
    M.Depth = Depth;
    M.Name = C.Name;
    if (!Path.empty())
      Out[Path].ChildInclusiveTicks += Incl;
    mergeTree(C, ChildPath, Depth + 1, Out);
  }
}

} // namespace

Snapshot Profiler::snapshot() const {
  Snapshot S;
  std::map<std::string, MergedNode> Merged;
  {
    std::lock_guard<std::mutex> Lock(ThreadsLock);
    for (const auto &TS : Threads) {
      // The structure lock orders this walk against child creation on the
      // owner thread; stat loads are relaxed atomics.
      std::lock_guard<std::mutex> StructLock(TS->StructureLock);
      mergeTree(TS->Root, std::string(), 0, Merged);
    }
  }
  double NsPerTick = nsPerTick();
  auto ToNs = [NsPerTick](int64_t Ticks) {
    return static_cast<int64_t>(static_cast<double>(Ticks) * NsPerTick);
  };
  for (auto &[Path, M] : Merged) {
    PhaseStats P;
    P.Path = Path;
    P.Name = M.Name;
    P.Depth = M.Depth;
    P.Count = M.Count;
    P.InclusiveNs = ToNs(M.InclusiveTicks);
    P.ExclusiveNs = std::max<int64_t>(
        0, ToNs(M.InclusiveTicks - M.ChildInclusiveTicks));
    S.Phases.push_back(std::move(P));
  }
  {
    std::lock_guard<std::mutex> Lock(CountersLock);
    for (const auto &[Name, Cell] : NamedCounters)
      if (uint64_t V = Cell->load(std::memory_order_relaxed))
        S.Counters[Name] += V;
  }
  return S;
}

namespace {

void resetTree(detail::PhaseNode &N) {
  N.Count.store(0, std::memory_order_relaxed);
  N.InclusiveTicks.store(0, std::memory_order_relaxed);
  for (auto &C : N.Children)
    resetTree(*C);
}

} // namespace

void Profiler::reset() {
  {
    std::lock_guard<std::mutex> Lock(ThreadsLock);
    for (const auto &TS : Threads) {
      std::lock_guard<std::mutex> StructLock(TS->StructureLock);
      resetTree(TS->Root);
    }
  }
  std::lock_guard<std::mutex> Lock(CountersLock);
  for (auto &[Name, Cell] : NamedCounters)
    Cell->store(0, std::memory_order_relaxed);
}

ScopedPhase::ScopedPhase(const char *Name) {
  Profiler &P = Profiler::instance();
  if (!P.enabled())
    return;
  TS = &P.threadState();
  detail::PhaseNode *Cur = TS->Cur;
  // Fast path: find the child by site-pointer identity, falling back to a
  // string compare so the same name from two translation units merges.
  detail::PhaseNode *Child = nullptr;
  for (const auto &C : Cur->Children) {
    if (C->Name == Name || std::strcmp(C->Name, Name) == 0) {
      Child = C.get();
      break;
    }
  }
  if (!Child) {
    // Shape mutation: exclude a concurrent snapshot walk.
    std::lock_guard<std::mutex> Lock(TS->StructureLock);
    auto New = std::make_unique<detail::PhaseNode>();
    New->Name = Name;
    New->Parent = Cur;
    Child = New.get();
    Cur->Children.push_back(std::move(New));
  }
  TS->Cur = Child;
  Node = Child;
  StartTicks = detail::tickNow();
}

ScopedPhase::~ScopedPhase() {
  if (!Node)
    return;
  int64_t Dur = detail::tickNow() - StartTicks;
  Node->Count.fetch_add(1, std::memory_order_relaxed);
  Node->InclusiveTicks.fetch_add(Dur, std::memory_order_relaxed);
  TS->Cur = Node->Parent;
}

Counter::Counter(const char *Name)
    : Cell(Profiler::instance().registerCounter(Name)) {}

std::vector<PhaseStats> Snapshot::topByExclusive(size_t N) const {
  std::vector<PhaseStats> Out = Phases;
  std::sort(Out.begin(), Out.end(),
            [](const PhaseStats &A, const PhaseStats &B) {
              if (A.ExclusiveNs != B.ExclusiveNs)
                return A.ExclusiveNs > B.ExclusiveNs;
              return A.Path < B.Path;
            });
  if (Out.size() > N)
    Out.resize(N);
  return Out;
}

int64_t Snapshot::totalExclusiveNs() const {
  int64_t Total = 0;
  for (const PhaseStats &P : Phases)
    Total += P.ExclusiveNs;
  return Total;
}

std::string Snapshot::renderText(size_t TopN) const {
  std::string Out;
  if (Phases.empty() && Counters.empty())
    return "profile: no samples collected\n";
  Out += formatString("%-48s %10s %12s %12s\n", "phase", "count", "incl-ms",
                      "self-ms");
  for (const PhaseStats &P : Phases) {
    std::string Indented(static_cast<size_t>(P.Depth) * 2, ' ');
    Indented += P.Name;
    Out += formatString("%-48s %10llu %12.3f %12.3f\n", Indented.c_str(),
                        static_cast<unsigned long long>(P.Count),
                        P.inclusiveMs(), P.exclusiveMs());
  }
  if (TopN) {
    Out += formatString("top %zu by self time:\n", TopN);
    for (const PhaseStats &P : topByExclusive(TopN))
      Out += formatString("  %-46s %12.3f ms  x%llu\n", P.Path.c_str(),
                          P.exclusiveMs(),
                          static_cast<unsigned long long>(P.Count));
  }
  if (!Counters.empty()) {
    Out += "counters:\n";
    for (const auto &[Name, V] : Counters)
      Out += formatString("  %-46s %12llu\n", Name.c_str(),
                          static_cast<unsigned long long>(V));
  }
  return Out;
}
