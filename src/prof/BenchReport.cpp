//===- prof/BenchReport.cpp - Host benchmark reports ----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "prof/BenchReport.h"

#include "support/Format.h"

#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace fcl;
using namespace fcl::prof;

uint64_t fcl::prof::peakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(Usage.ru_maxrss); // Bytes on macOS.
#else
  return static_cast<uint64_t>(Usage.ru_maxrss) * 1024; // KiB on Linux.
#endif
#else
  return 0;
#endif
}

void BenchReport::attachProfile(const Snapshot &S, size_t N) {
  Profile = S.topByExclusive(N);
  Counters = S.Counters;
}

std::string BenchReport::toJson() const {
  std::string Out = "{\n";
  Out += "  \"schema\": \"fcl-bench-report-v1\",\n";
  Out += formatString("  \"name\": \"%s\",\n", jsonEscape(Name).c_str());
  Out += formatString("  \"suite\": \"%s\",\n", jsonEscape(Suite).c_str());
  Out += "  \"meta\": {";
  bool First = true;
  for (const auto &[K, V] : Meta) {
    Out += formatString("%s\n    \"%s\": \"%s\"", First ? "" : ",",
                        jsonEscape(K).c_str(), jsonEscape(V).c_str());
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"metrics\": {";
  First = true;
  for (const auto &[K, V] : Metrics) {
    Out += formatString("%s\n    \"%s\": %.9g", First ? "" : ",",
                        jsonEscape(K).c_str(), V);
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += formatString("  \"peak_rss_bytes\": %llu,\n",
                      static_cast<unsigned long long>(PeakRss));
  Out += "  \"profile\": [";
  First = true;
  for (const PhaseStats &P : Profile) {
    Out += formatString(
        "%s\n    {\"path\": \"%s\", \"count\": %llu, "
        "\"inclusive_ms\": %.6f, \"exclusive_ms\": %.6f}",
        First ? "" : ",", jsonEscape(P.Path).c_str(),
        static_cast<unsigned long long>(P.Count), P.inclusiveMs(),
        P.exclusiveMs());
    First = false;
  }
  Out += First ? "],\n" : "\n  ],\n";
  Out += "  \"counters\": {";
  First = true;
  for (const auto &[K, V] : Counters) {
    Out += formatString("%s\n    \"%s\": %llu", First ? "" : ",",
                        jsonEscape(K).c_str(),
                        static_cast<unsigned long long>(V));
    First = false;
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}

bool BenchReport::write(const std::string &Path) const {
  std::ofstream F(Path, std::ios::binary);
  if (!F)
    return false;
  F << toJson();
  return static_cast<bool>(F);
}
