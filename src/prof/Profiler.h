//===- prof/Profiler.h - Wall-clock host profiler ---------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead wall-clock profiler for the host-side hot paths: scoped
/// RAII phase timers with hierarchical inclusive/exclusive (self) time,
/// plus named churn counters (allocations, event-queue traffic). Strictly
/// observational: it reads the host's monotonic clock and never touches
/// simulated time, so enabling it cannot perturb sim-time determinism -
/// same-seed runs produce byte-identical reports with profiling on or off.
///
/// Usage:
///
///   void Engine::dispatch() {
///     FCL_PROF_SCOPE("serve.dispatch");     // RAII; ~no-op when disabled
///     ...
///   }
///   static fcl::prof::Counter C("sim.events_scheduled");
///   C.add();                                 // relaxed atomic when enabled
///
/// Phases nest by dynamic scope: a "fcl.chunk_launch" entered while
/// "sim.run" is open aggregates under the path "sim.run/fcl.chunk_launch",
/// so the snapshot is a tree of where wall time actually went. Exclusive
/// (self) time is inclusive time minus the inclusive time of all children.
///
/// The profiler is process-global and disabled by default; the disabled
/// fast path is one relaxed atomic load. When enabled, a scope costs two
/// monotonic clock reads plus two relaxed atomic adds on a per-thread
/// tree node - cheap enough to leave in per-chunk and per-request paths
/// (the `fluidicl_bench` harness gates measured overhead at < 5%).
///
/// Thread safety: each thread owns its phase tree (no cross-thread
/// contention on the hot path); snapshot() merges all threads' trees by
/// path under per-thread structure locks, so it is safe to call from any
/// thread, including concurrently with scope activity elsewhere.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_PROF_PROFILER_H
#define FCL_PROF_PROFILER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fcl {
namespace prof {

/// Host monotonic clock, in nanoseconds. Never simulated time.
int64_t wallNowNs();

namespace detail {
/// Raw timestamp for scope timing: TSC ticks on x86-64 (a register read,
/// ~4x cheaper than clock_gettime), monotonic-clock nanoseconds elsewhere.
/// Converted to nanoseconds at snapshot time against a wall-clock
/// calibration window, so scopes pay the cheap read and snapshots pay the
/// arithmetic.
int64_t tickNow();
} // namespace detail

/// One aggregated phase in a snapshot.
struct PhaseStats {
  /// Slash-joined dynamic path, e.g. "sim.run/fcl.chunk_launch".
  std::string Path;
  /// Leaf name (the FCL_PROF_SCOPE argument).
  std::string Name;
  /// Nesting depth (top-level phases are 0).
  int Depth = 0;
  uint64_t Count = 0;
  int64_t InclusiveNs = 0;
  /// Inclusive minus the inclusive time of all child phases (>= 0).
  int64_t ExclusiveNs = 0;

  double inclusiveMs() const { return static_cast<double>(InclusiveNs) * 1e-6; }
  double exclusiveMs() const { return static_cast<double>(ExclusiveNs) * 1e-6; }
};

/// A merged, point-in-time view of everything the profiler collected.
struct Snapshot {
  /// All phases merged across threads, sorted by Path (i.e. tree order).
  std::vector<PhaseStats> Phases;
  /// All churn counters merged across threads, by name.
  std::map<std::string, uint64_t> Counters;

  /// The N phases with the largest exclusive time, descending (ties by
  /// path so the order is reproducible).
  std::vector<PhaseStats> topByExclusive(size_t N) const;

  /// Sum of exclusive time over all phases (== total time under any
  /// profiled scope, without double-counting nesting).
  int64_t totalExclusiveNs() const;

  /// Human-readable tree + counters; \p TopN != 0 appends a top-N
  /// self-time table.
  std::string renderText(size_t TopN = 0) const;
};

namespace detail {

/// One node of a thread's phase tree. Stats are relaxed atomics so the
/// owner thread updates them without locking while snapshot() reads them.
struct PhaseNode {
  const char *Name = nullptr;
  PhaseNode *Parent = nullptr;
  std::vector<std::unique_ptr<PhaseNode>> Children;
  std::atomic<uint64_t> Count{0};
  /// In tickNow() units; converted to ns when snapshotted.
  std::atomic<int64_t> InclusiveTicks{0};
};

/// Per-thread profiler state: the phase tree, the current position in it,
/// and this thread's counter cells. StructureLock guards tree/counter
/// *shape* mutations (child creation) against concurrent snapshots; the
/// owner thread reads the shape without locking (it is the only writer).
struct ThreadState {
  std::mutex StructureLock;
  PhaseNode Root;
  PhaseNode *Cur = &Root;
};

} // namespace detail

/// The process-global profiler.
class Profiler {
public:
  static Profiler &instance();

  /// Turns collection on or off. Scopes opened while disabled record
  /// nothing even if the profiler is enabled before they close.
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Merges every thread's tree and counters into one deterministic view.
  Snapshot snapshot() const;

  /// Zeroes all collected stats (tree shape is kept so open scopes stay
  /// valid; call between measurement phases, not mid-scope, for exact
  /// numbers).
  void reset();

  // Internal: the calling thread's state (created on first use).
  detail::ThreadState &threadState();

  // Internal: registers a named counter cell (one per Counter object;
  // same-name cells are summed in the snapshot). The cell outlives every
  // caller - registration is permanent for the process lifetime.
  std::atomic<uint64_t> *registerCounter(const char *Name);

private:
  Profiler();

  /// Nanoseconds per tickNow() unit, measured over the window from
  /// construction to the snapshot (1.0 on non-TSC hosts).
  double nsPerTick() const;

  std::atomic<bool> Enabled{false};
  int64_t CalTick0 = 0;
  int64_t CalNs0 = 0;
  mutable std::mutex ThreadsLock;
  std::vector<std::shared_ptr<detail::ThreadState>> Threads;
  mutable std::mutex CountersLock;
  std::vector<std::pair<std::string, std::unique_ptr<std::atomic<uint64_t>>>>
      NamedCounters;
};

/// RAII phase timer. Near-free when the profiler is disabled.
class ScopedPhase {
public:
  explicit ScopedPhase(const char *Name);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;

private:
  detail::PhaseNode *Node = nullptr; // null when inactive
  detail::ThreadState *TS = nullptr;
  int64_t StartTicks = 0;
};

/// A named churn counter. Construct once (static local / namespace scope)
/// and add() from the hot path; disabled adds are one relaxed load.
class Counter {
public:
  explicit Counter(const char *Name);

  void add(uint64_t Delta = 1) {
    if (Profiler::instance().enabled())
      Cell->fetch_add(Delta, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> *Cell;
};

} // namespace prof
} // namespace fcl

#define FCL_PROF_CONCAT_IMPL(A, B) A##B
#define FCL_PROF_CONCAT(A, B) FCL_PROF_CONCAT_IMPL(A, B)
/// Opens a profiler phase for the rest of the enclosing scope.
#define FCL_PROF_SCOPE(NAME)                                                 \
  ::fcl::prof::ScopedPhase FCL_PROF_CONCAT(FclProfScope, __LINE__)(NAME)

#endif // FCL_PROF_PROFILER_H
