//===- prof/BenchReport.h - Host benchmark reports --------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schema-versioned host-performance report every benchmark harness
/// emits: `BENCH_<name>.json` (schema "fcl-bench-report-v1") holding
/// wall-clock metrics (events/sec, wall-sec per sim-sec, requests/sec,
/// ns per op), peak RSS, the profiler's top-N self-time phases and churn
/// counters. `scripts/bench_check.py` diffs these files against the
/// checked-in baselines under bench/baselines/ and fails CI on
/// regressions (see docs/OBSERVABILITY.md, "Host performance").
///
//===----------------------------------------------------------------------===//

#ifndef FCL_PROF_BENCHREPORT_H
#define FCL_PROF_BENCHREPORT_H

#include "prof/Profiler.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fcl {
namespace prof {

/// Peak resident set size of this process, in bytes (0 if unavailable).
uint64_t peakRssBytes();

/// One benchmark scenario's results, serializable as BENCH_<name>.json.
struct BenchReport {
  /// Scenario name; the file is conventionally BENCH_<Name>.json.
  std::string Name;
  /// Which suite produced it ("ci", "full", "smoke", "micro").
  std::string Suite;
  /// Free-form string facts about the run (machine, mode, sizes, repeat
  /// count) echoed into "meta".
  std::map<std::string, std::string> Meta;
  /// The gated numbers. Naming conventions bench_check.py understands:
  /// "*_per_sec" / "*_rps" are higher-better; "*_sec", "*_ms",
  /// "*_ns_per_op" and "overhead_pct" are lower-better.
  std::map<std::string, double> Metrics;
  /// Profiler phases recorded while the scenario ran with profiling on.
  std::vector<PhaseStats> Profile;
  /// Profiler churn counters from the same run.
  std::map<std::string, uint64_t> Counters;
  uint64_t PeakRss = 0;

  /// Copies the top \p N self-time phases and all counters out of \p S.
  void attachProfile(const Snapshot &S, size_t N);

  /// Renders the "fcl-bench-report-v1" JSON document (sorted keys, fixed
  /// formatting).
  std::string toJson() const;

  /// Writes toJson() to \p Path; false if the file cannot be written.
  bool write(const std::string &Path) const;
};

} // namespace prof
} // namespace fcl

#endif // FCL_PROF_BENCHREPORT_H
