//===- stats/Report.h - Structured run reports ------------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run-level aggregation of per-launch stats plus runtime counters/gauges,
/// exported as JSON (schema "fcl-run-report-v1", see docs/OBSERVABILITY.md)
/// and CSV (one row per kernel launch). Per-device busy/idle utilization is
/// derived from an attached trace::Tracer's lanes, so the numbers line up
/// with the Chrome-trace timeline of the same run.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_STATS_REPORT_H
#define FCL_STATS_REPORT_H

#include "stats/LaunchStats.h"
#include "stats/Registry.h"
#include "support/Csv.h"

#include <string>
#include <vector>

namespace fcl {

namespace trace {
class Tracer;
}

namespace stats {

/// Busy share of one trace lane over the run.
struct LaneUtilization {
  std::string Lane;
  Duration Busy;
  /// Busy time over wall time, in [0, 1] (can exceed 1 only if a lane
  /// overlaps itself, which in-order queues never do).
  double Utilization = 0;
};

/// Everything one application run produced, ready for export.
class RunReport {
public:
  std::string RuntimeName;
  std::string WorkloadName;
  /// Application-observed total running time.
  Duration Wall;
  /// Per-kernel-launch records, in launch order (FluidiCL fills these;
  /// baseline runtimes report counters only).
  std::vector<LaunchStats> Launches;
  /// Runtime counters and gauges (buffer-pool hit rate, read routing,
  /// per-device task placement, ...).
  Registry Counters;
  /// Per-lane busy/idle breakdown (see addUtilizationFromTracer).
  std::vector<LaneUtilization> Utilization;

  // --- Aggregates over Launches -------------------------------------------
  uint64_t totalWorkGroups() const;
  uint64_t gpuWorkGroupsCompleted() const;
  uint64_t cpuWorkGroupsCompleted() const;
  uint64_t gpuWorkGroupsExecuted() const;
  uint64_t cpuWorkGroupsExecuted() const;
  uint64_t gpuWorkGroupsAborted() const;
  uint64_t gpuWorkGroupsWasted() const;
  uint64_t cpuWorkGroupsWasted() const;

  /// Computes per-lane utilization from \p T's slices against \p WallTime
  /// (replaces any previous utilization data).
  void addUtilizationFromTracer(const trace::Tracer &T, Duration WallTime);

  /// Renders the report as a JSON object (schema "fcl-run-report-v1").
  std::string renderJson() const;

  /// Appends one CSV row per launch to \p Csv (header from csvHeader()).
  void appendCsvRows(CsvWriter &Csv) const;

  /// Header matching appendCsvRows.
  static std::vector<std::string> csvHeader();

  /// Writes renderJson() to \p Path; false if the file cannot be written.
  bool writeJson(const std::string &Path) const;

  /// Prints a human-readable summary to stdout (the --stats output).
  void printSummary() const;
};

/// Writes \p Reports to \p Path: a bare report object for a single run, or
/// {"schema":"fcl-run-report-set-v1","runs":[...]} for several.
bool writeReportsJson(const std::vector<RunReport> &Reports,
                      const std::string &Path);

} // namespace stats
} // namespace fcl

#endif // FCL_STATS_REPORT_H
