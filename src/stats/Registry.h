//===- stats/Registry.h - Counter and gauge registry ------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name-indexed counters (monotonic uint64) and gauges (last-value double)
/// for runtime introspection. Every runtime owns one Registry; the run
/// report serializes it. Names are free-form snake_case strings; reading a
/// name that was never written returns 0, so ablation tests can assert that
/// a disabled feature left its counters untouched.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_STATS_REGISTRY_H
#define FCL_STATS_REGISTRY_H

#include <cstdint>
#include <map>
#include <string>

namespace fcl {
namespace stats {

/// Holds named counters and gauges. Iteration order is lexicographic, so
/// every export is deterministic.
class Registry {
public:
  Registry();

  /// Adds \p Delta to counter \p Name (creating it at 0).
  void add(const std::string &Name, uint64_t Delta = 1);

  /// Sets gauge \p Name to \p Value (creating it).
  void set(const std::string &Name, double Value);

  /// Counter value; 0 when the counter was never bumped.
  uint64_t counter(const std::string &Name) const;

  /// Gauge value; 0.0 when the gauge was never set.
  double gauge(const std::string &Name) const;

  /// Adds every counter of \p Other into this registry and overwrites
  /// gauges with \p Other's values.
  void mergeFrom(const Registry &Other);

  const std::map<std::string, uint64_t> &counters() const { return Counters; }
  const std::map<std::string, double> &gauges() const { return Gauges; }

  bool empty() const { return Counters.empty() && Gauges.empty(); }
  void clear();

private:
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  /// fcl::race critical-section name: counter/gauge mutations from
  /// different logical tasks are declared mutex-protected per registry.
  std::string RaceSec;
};

} // namespace stats
} // namespace fcl

#endif // FCL_STATS_REGISTRY_H
