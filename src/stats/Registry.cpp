//===- stats/Registry.cpp - Counter and gauge registry --------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/Registry.h"

using namespace fcl;
using namespace fcl::stats;

void Registry::add(const std::string &Name, uint64_t Delta) {
  Counters[Name] += Delta;
}

void Registry::set(const std::string &Name, double Value) {
  Gauges[Name] = Value;
}

uint64_t Registry::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

double Registry::gauge(const std::string &Name) const {
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0.0 : It->second;
}

void Registry::mergeFrom(const Registry &Other) {
  for (const auto &[Name, Value] : Other.Counters)
    Counters[Name] += Value;
  for (const auto &[Name, Value] : Other.Gauges)
    Gauges[Name] = Value;
}

void Registry::clear() {
  Counters.clear();
  Gauges.clear();
}
