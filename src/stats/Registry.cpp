//===- stats/Registry.cpp - Counter and gauge registry --------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/Registry.h"

#include "race/Race.h"

#include <atomic>

using namespace fcl;
using namespace fcl::stats;

Registry::Registry() {
  static std::atomic<uint64_t> NextRaceId{0};
  RaceSec = "stats.registry#" +
            std::to_string(NextRaceId.fetch_add(1, std::memory_order_relaxed));
}

void Registry::add(const std::string &Name, uint64_t Delta) {
  race::Section RaceS(RaceSec);
  Counters[Name] += Delta;
}

void Registry::set(const std::string &Name, double Value) {
  race::Section RaceS(RaceSec);
  Gauges[Name] = Value;
}

uint64_t Registry::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

double Registry::gauge(const std::string &Name) const {
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0.0 : It->second;
}

void Registry::mergeFrom(const Registry &Other) {
  race::Section RaceS(RaceSec);
  for (const auto &[Name, Value] : Other.Counters)
    Counters[Name] += Value;
  for (const auto &[Name, Value] : Other.Gauges)
    Gauges[Name] = Value;
}

void Registry::clear() {
  Counters.clear();
  Gauges.clear();
}
