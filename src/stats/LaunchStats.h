//===- stats/LaunchStats.h - Per-kernel-launch metrics ----------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-launch record of a cooperative kernel execution: how the
/// NDRange's work-groups were divided between the devices, how much work
/// the abort mechanism saved or wasted, how the CPU chunk size evolved, and
/// how many bytes crossed the simulated PCIe link on each stream. This is
/// the quantity the paper's result discussion (Figs. 13-18) reasons in;
/// fluidicl::Runtime fills one per launchKernel call and the run report
/// aggregates them.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_STATS_LAUNCHSTATS_H
#define FCL_STATS_LAUNCHSTATS_H

#include "support/SimTime.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fcl {
namespace stats {

/// One point of the CPU chunk-size trajectory: a completed CPU subkernel.
struct ChunkPoint {
  /// Simulated time the subkernel completed.
  TimePoint At;
  /// Work-groups the subkernel executed.
  uint64_t Groups = 0;
  /// Chunk percentage the controller will use next (after feedback).
  double PctAfter = 0;
  /// Measured subkernel duration.
  Duration Took;
};

/// Summary of one cooperative kernel execution.
struct LaunchStats {
  std::string KernelName;
  std::string CpuKernelUsed;
  uint64_t KernelId = 0;
  uint64_t TotalGroups = 0;

  // --- Raw executed work (may overlap near the meeting point) -------------
  /// Work-groups the CPU scheduler completed (may overlap the GPU's near
  /// the meeting point).
  uint64_t CpuGroupsExecuted = 0;
  /// Work-groups the GPU actually executed (aborted ones excluded).
  uint64_t GpuGroupsExecuted = 0;

  // --- Final-result accounting (disjoint; sums to TotalGroups) ------------
  /// Work-groups whose final data the application got from the GPU.
  uint64_t GpuGroupsCompleted = 0;
  /// Work-groups whose final data came from the CPU (merge or CPU-ran-all).
  uint64_t CpuGroupsCompleted = 0;

  // --- Abort accounting ----------------------------------------------------
  /// GPU work-groups that aborted after observing CPU completion (never
  /// committed; includes work-groups that aborted at their first status
  /// check). TotalGroups == GpuGroupsExecuted + GpuGroupsAborted for
  /// cooperative launches.
  uint64_t GpuGroupsAborted = 0;
  /// Subset of GpuGroupsAborted that had already started executing when the
  /// status word covered them (cycles burned, then discarded).
  uint64_t GpuGroupsWasted = 0;
  /// CPU work-groups executed whose results the GPU never consumed (the
  /// subkernel finished after the GPU kernel exited, or its data was still
  /// in flight at merge time).
  uint64_t CpuGroupsWasted = 0;

  uint64_t CpuSubkernels = 0;
  double FinalChunkPct = 0;
  /// Times the chunk controller grew the chunk before settling.
  uint64_t ChunkGrowthSteps = 0;
  bool CpuRanEverything = false;
  /// Kernel used atomics, so the CPU side was skipped (paper section 7).
  bool AtomicsFallback = false;

  // --- Byte accounting -----------------------------------------------------
  /// Bytes of CPU-computed data streamed to the GPU on the hd queue
  /// (excluding status words); the RegionTransfers extension shrinks this.
  uint64_t HdBytesSent = 0;
  /// Status words streamed behind the data on the hd queue.
  uint64_t StatusBytesSent = 0;
  /// Bytes the asynchronous device-to-host stage brought back.
  uint64_t DhBytesReceived = 0;
  /// Bytes the GPU-side merge kernels scanned (diffed against the
  /// original-data snapshot).
  uint64_t MergeBytesDiffed = 0;
  /// Estimated bytes the merges actually replaced with CPU data (the
  /// CPU-won share of each scanned buffer).
  uint64_t MergeBytesCopied = 0;

  /// Application-observed duration of the blocking kernel call.
  Duration KernelTime;

  /// Chunk-size trajectory, one point per completed CPU subkernel.
  std::vector<ChunkPoint> ChunkTrajectory;
};

} // namespace stats
} // namespace fcl

#endif // FCL_STATS_LAUNCHSTATS_H
