//===- stats/Report.cpp - Structured run reports --------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "stats/Report.h"

#include "prof/Profiler.h"
#include "support/Format.h"
#include "trace/Tracer.h"

#include <cstdio>

using namespace fcl;
using namespace fcl::stats;

namespace {

uint64_t sumOver(const std::vector<LaunchStats> &Launches,
                 uint64_t LaunchStats::*Field) {
  uint64_t Sum = 0;
  for (const LaunchStats &L : Launches)
    Sum += L.*Field;
  return Sum;
}

std::string u64(uint64_t V) {
  return formatString("%llu", static_cast<unsigned long long>(V));
}

} // namespace

uint64_t RunReport::totalWorkGroups() const {
  return sumOver(Launches, &LaunchStats::TotalGroups);
}
uint64_t RunReport::gpuWorkGroupsCompleted() const {
  return sumOver(Launches, &LaunchStats::GpuGroupsCompleted);
}
uint64_t RunReport::cpuWorkGroupsCompleted() const {
  return sumOver(Launches, &LaunchStats::CpuGroupsCompleted);
}
uint64_t RunReport::gpuWorkGroupsExecuted() const {
  return sumOver(Launches, &LaunchStats::GpuGroupsExecuted);
}
uint64_t RunReport::cpuWorkGroupsExecuted() const {
  return sumOver(Launches, &LaunchStats::CpuGroupsExecuted);
}
uint64_t RunReport::gpuWorkGroupsAborted() const {
  return sumOver(Launches, &LaunchStats::GpuGroupsAborted);
}
uint64_t RunReport::gpuWorkGroupsWasted() const {
  return sumOver(Launches, &LaunchStats::GpuGroupsWasted);
}
uint64_t RunReport::cpuWorkGroupsWasted() const {
  return sumOver(Launches, &LaunchStats::CpuGroupsWasted);
}

void RunReport::addUtilizationFromTracer(const trace::Tracer &T,
                                         Duration WallTime) {
  Utilization.clear();
  // Lanes in first-appearance order, matching the trace's tid assignment.
  std::vector<std::string> Lanes;
  for (const trace::TraceEvent &E : T.events()) {
    bool Seen = false;
    for (const std::string &L : Lanes)
      if (L == E.Lane)
        Seen = true;
    if (!Seen)
      Lanes.push_back(E.Lane);
  }
  for (const std::string &Lane : Lanes) {
    LaneUtilization U;
    U.Lane = Lane;
    U.Busy = T.laneBusy(Lane);
    U.Utilization = WallTime.nanos() > 0
                        ? static_cast<double>(U.Busy.nanos()) /
                              static_cast<double>(WallTime.nanos())
                        : 0.0;
    Utilization.push_back(std::move(U));
  }
}

std::string RunReport::renderJson() const {
  FCL_PROF_SCOPE("stats.render_json");
  std::string Out = "{\n";
  Out += "  \"schema\": \"fcl-run-report-v1\",\n";
  Out += formatString("  \"runtime\": \"%s\",\n",
                      jsonEscape(RuntimeName).c_str());
  Out += formatString("  \"workload\": \"%s\",\n",
                      jsonEscape(WorkloadName).c_str());
  Out += formatString("  \"wall_seconds\": %.9f,\n", Wall.toSeconds());
  Out += "  \"total_workgroups\": " + u64(totalWorkGroups()) + ",\n";
  Out += "  \"gpu_workgroups_completed\": " + u64(gpuWorkGroupsCompleted()) +
         ",\n";
  Out += "  \"cpu_workgroups_completed\": " + u64(cpuWorkGroupsCompleted()) +
         ",\n";
  Out += "  \"gpu_workgroups_executed\": " + u64(gpuWorkGroupsExecuted()) +
         ",\n";
  Out += "  \"cpu_workgroups_executed\": " + u64(cpuWorkGroupsExecuted()) +
         ",\n";
  Out += "  \"gpu_workgroups_aborted\": " + u64(gpuWorkGroupsAborted()) +
         ",\n";
  Out += "  \"gpu_workgroups_wasted\": " + u64(gpuWorkGroupsWasted()) + ",\n";
  Out += "  \"cpu_workgroups_wasted\": " + u64(cpuWorkGroupsWasted()) + ",\n";

  Out += "  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters.counters()) {
    Out += formatString("%s\n    \"%s\": %s", First ? "" : ",",
                        jsonEscape(Name).c_str(), u64(Value).c_str());
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : Counters.gauges()) {
    Out += formatString("%s\n    \"%s\": %.9g", First ? "" : ",",
                        jsonEscape(Name).c_str(), Value);
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"device_utilization\": [";
  First = true;
  for (const LaneUtilization &U : Utilization) {
    Out += formatString("%s\n    {\"lane\": \"%s\", \"busy_seconds\": %.9f, "
                        "\"utilization\": %.6f}",
                        First ? "" : ",", jsonEscape(U.Lane).c_str(),
                        U.Busy.toSeconds(), U.Utilization);
    First = false;
  }
  Out += First ? "],\n" : "\n  ],\n";

  Out += "  \"launches\": [";
  First = true;
  for (const LaunchStats &L : Launches) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    {\n";
    Out += formatString("      \"kernel\": \"%s\",\n",
                        jsonEscape(L.KernelName).c_str());
    Out += formatString("      \"cpu_kernel_used\": \"%s\",\n",
                        jsonEscape(L.CpuKernelUsed).c_str());
    Out += "      \"kernel_id\": " + u64(L.KernelId) + ",\n";
    Out += "      \"total_workgroups\": " + u64(L.TotalGroups) + ",\n";
    Out += "      \"gpu_workgroups_completed\": " + u64(L.GpuGroupsCompleted) +
           ",\n";
    Out += "      \"cpu_workgroups_completed\": " + u64(L.CpuGroupsCompleted) +
           ",\n";
    Out += "      \"gpu_workgroups_executed\": " + u64(L.GpuGroupsExecuted) +
           ",\n";
    Out += "      \"cpu_workgroups_executed\": " + u64(L.CpuGroupsExecuted) +
           ",\n";
    Out += "      \"gpu_workgroups_aborted\": " + u64(L.GpuGroupsAborted) +
           ",\n";
    Out += "      \"gpu_workgroups_wasted\": " + u64(L.GpuGroupsWasted) +
           ",\n";
    Out += "      \"cpu_workgroups_wasted\": " + u64(L.CpuGroupsWasted) +
           ",\n";
    Out += "      \"cpu_subkernels\": " + u64(L.CpuSubkernels) + ",\n";
    Out += formatString("      \"final_chunk_pct\": %.6f,\n",
                        L.FinalChunkPct);
    Out += "      \"chunk_growth_steps\": " + u64(L.ChunkGrowthSteps) + ",\n";
    Out += formatString("      \"cpu_ran_everything\": %s,\n",
                        L.CpuRanEverything ? "true" : "false");
    Out += formatString("      \"atomics_fallback\": %s,\n",
                        L.AtomicsFallback ? "true" : "false");
    Out += "      \"hd_bytes_sent\": " + u64(L.HdBytesSent) + ",\n";
    Out += "      \"status_bytes_sent\": " + u64(L.StatusBytesSent) + ",\n";
    Out += "      \"dh_bytes_received\": " + u64(L.DhBytesReceived) + ",\n";
    Out += "      \"merge_bytes_diffed\": " + u64(L.MergeBytesDiffed) + ",\n";
    Out += "      \"merge_bytes_copied\": " + u64(L.MergeBytesCopied) + ",\n";
    Out += formatString("      \"kernel_seconds\": %.9f,\n",
                        L.KernelTime.toSeconds());
    Out += "      \"chunk_trajectory\": [";
    bool FirstPoint = true;
    for (const ChunkPoint &P : L.ChunkTrajectory) {
      Out += formatString(
          "%s\n        {\"t_us\": %.3f, \"workgroups\": %s, "
          "\"pct_after\": %.4f, \"subkernel_us\": %.3f}",
          FirstPoint ? "" : ",",
          static_cast<double>(P.At.nanos()) / 1000.0, u64(P.Groups).c_str(),
          P.PctAfter, static_cast<double>(P.Took.nanos()) / 1000.0);
      FirstPoint = false;
    }
    Out += FirstPoint ? "]\n" : "\n      ]\n";
    Out += "    }";
  }
  Out += First ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

std::vector<std::string> RunReport::csvHeader() {
  return {"runtime",
          "workload",
          "kernel",
          "kernel_id",
          "total_workgroups",
          "gpu_workgroups_completed",
          "cpu_workgroups_completed",
          "gpu_workgroups_executed",
          "cpu_workgroups_executed",
          "gpu_workgroups_aborted",
          "gpu_workgroups_wasted",
          "cpu_workgroups_wasted",
          "cpu_subkernels",
          "final_chunk_pct",
          "hd_bytes_sent",
          "status_bytes_sent",
          "dh_bytes_received",
          "merge_bytes_diffed",
          "merge_bytes_copied",
          "kernel_seconds"};
}

void RunReport::appendCsvRows(CsvWriter &Csv) const {
  for (const LaunchStats &L : Launches)
    Csv.addRow({RuntimeName, WorkloadName, L.KernelName, u64(L.KernelId),
                u64(L.TotalGroups), u64(L.GpuGroupsCompleted),
                u64(L.CpuGroupsCompleted), u64(L.GpuGroupsExecuted),
                u64(L.CpuGroupsExecuted), u64(L.GpuGroupsAborted),
                u64(L.GpuGroupsWasted), u64(L.CpuGroupsWasted),
                u64(L.CpuSubkernels), formatString("%.4f", L.FinalChunkPct),
                u64(L.HdBytesSent), u64(L.StatusBytesSent),
                u64(L.DhBytesReceived), u64(L.MergeBytesDiffed),
                u64(L.MergeBytesCopied),
                formatString("%.9f", L.KernelTime.toSeconds())});
}

bool RunReport::writeJson(const std::string &Path) const {
  FCL_PROF_SCOPE("stats.write_json");
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Text = renderJson();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}

void RunReport::printSummary() const {
  std::printf("  stats: %s on %s, wall %.6f s\n", RuntimeName.c_str(),
              WorkloadName.c_str(), Wall.toSeconds());
  if (!Launches.empty()) {
    uint64_t Total = totalWorkGroups();
    auto Pct = [Total](uint64_t V) {
      return Total ? 100.0 * static_cast<double>(V) /
                         static_cast<double>(Total)
                   : 0.0;
    };
    std::printf("    work-groups: %llu total; completed gpu %llu (%.1f%%) / "
                "cpu %llu (%.1f%%); gpu aborted %llu (wasted %llu), cpu "
                "wasted %llu\n",
                static_cast<unsigned long long>(Total),
                static_cast<unsigned long long>(gpuWorkGroupsCompleted()),
                Pct(gpuWorkGroupsCompleted()),
                static_cast<unsigned long long>(cpuWorkGroupsCompleted()),
                Pct(cpuWorkGroupsCompleted()),
                static_cast<unsigned long long>(gpuWorkGroupsAborted()),
                static_cast<unsigned long long>(gpuWorkGroupsWasted()),
                static_cast<unsigned long long>(cpuWorkGroupsWasted()));
  }
  for (const auto &[Name, Value] : Counters.counters())
    std::printf("    %-32s %llu\n", Name.c_str(),
                static_cast<unsigned long long>(Value));
  for (const auto &[Name, Value] : Counters.gauges())
    std::printf("    %-32s %.4f\n", Name.c_str(), Value);
  for (const LaneUtilization &U : Utilization)
    std::printf("    util %-22s busy %.6f s (%5.1f%%)\n", U.Lane.c_str(),
                U.Busy.toSeconds(), 100.0 * U.Utilization);
}

bool fcl::stats::writeReportsJson(const std::vector<RunReport> &Reports,
                                  const std::string &Path) {
  std::string Text;
  if (Reports.size() == 1) {
    Text = Reports.front().renderJson();
  } else {
    Text = "{\n  \"schema\": \"fcl-run-report-set-v1\",\n  \"runs\": [\n";
    for (size_t I = 0; I < Reports.size(); ++I) {
      Text += Reports[I].renderJson();
      // Strip the trailing newline before the separator for tidy output.
      if (!Text.empty() && Text.back() == '\n')
        Text.pop_back();
      Text += I + 1 < Reports.size() ? ",\n" : "\n";
    }
    Text += "  ]\n}\n";
  }
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}
