//===- work/Driver.h - Experiment driver ------------------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a Workload under any runtime on a fresh simulated machine and
/// reports the total running time (including all data transfers, as the
/// paper measures; platform initialization is excluded). Also provides the
/// comparison helpers every bench harness uses: CPU-only/GPU-only
/// baselines, static-partition sweeps (OracleSP), FluidiCL with arbitrary
/// options, and calibrated SOCL runs.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_WORK_DRIVER_H
#define FCL_WORK_DRIVER_H

#include "fluidicl/Options.h"
#include "runtime/ProfiledSplit.h"
#include "hw/Machine.h"
#include "mcl/Context.h"
#include "stats/Report.h"
#include "work/Workload.h"

#include <cstddef>
#include <string>
#include <vector>

namespace fcl {
namespace work {

/// Outcome of one application run.
struct RunResult {
  std::string RuntimeName;
  /// Total running time: buffer setup + transfers + kernels + readback.
  Duration Total;
  /// Whether functional validation was performed and its outcome.
  bool Validated = false;
  bool Valid = false;
  double MaxAbsError = 0;
};

/// Deterministic pseudo-random host data for every buffer of \p W.
std::vector<std::vector<std::byte>> initHostData(const Workload &W);

/// Executes \p W's kernel sequence directly on \p HostBufs (the reference
/// a correct runtime must match bit-for-bit up to float associativity -
/// our kernels are executed with identical operation order everywhere, so
/// the match is exact).
void computeReference(const Workload &W,
                      std::vector<std::vector<std::byte>> &HostBufs);

/// Runs \p W under \p RT; validates read-back results against the host
/// reference when \p Validate and the context is functional.
RunResult runWorkload(runtime::HeteroRuntime &RT, const Workload &W,
                      bool Validate);

/// Which runtime to construct for a timed run.
enum class RuntimeKind {
  CpuOnly,
  GpuOnly,
  FluidiCL,
  SoclEager,
  SoclDmda,
};

/// Configuration for timed comparison runs.
struct RunConfig {
  hw::Machine M = hw::paperMachine();
  mcl::ExecMode Mode = mcl::ExecMode::TimingOnly;
  fluidicl::Options FclOpts;
  /// Calibration runs before the measured SOCL-dmda run (the paper uses
  /// at least 10).
  int DmdaCalibrationRuns = 10;
};

/// Total running time of \p W under runtime \p K on a fresh machine.
Duration timeUnder(RuntimeKind K, const Workload &W,
                   const RunConfig &C = RunConfig());

/// Packs everything a finished run produced into a RunReport: the
/// runtime's counters and per-launch records, the workload name, the
/// measured wall time, and per-lane utilization when a tracer observed
/// the run.
stats::RunReport collectRunReport(const runtime::HeteroRuntime &RT,
                                  const Workload &W, Duration Wall,
                                  const trace::Tracer *T = nullptr);

/// Like timeUnder, but returns the full run report. When \p T is non-null
/// it is attached to the fresh context for the run's whole lifetime, so
/// the report gains per-lane utilization and the tracer gains the run's
/// slices and counter tracks.
stats::RunReport reportUnder(RuntimeKind K, const Workload &W,
                             const RunConfig &C = RunConfig(),
                             trace::Tracer *T = nullptr);

/// Total running time under a manual static partition at \p GpuFraction.
Duration timeStaticPartition(const Workload &W, double GpuFraction,
                             const RunConfig &C = RunConfig());

/// Best static partition over fractions 0, Step, 2*Step, ..., 100 percent
/// (the OracleSP bar). Reports the winning fraction via \p BestFraction.
Duration oracleStaticPartition(const Workload &W,
                               const RunConfig &C = RunConfig(),
                               int StepPct = 10,
                               double *BestFraction = nullptr);

/// Qilin-style training pass: measures each of \p W's kernels on both
/// devices of a fresh machine and records the rates into \p Model.
void trainSplitModel(const Workload &W, const hw::Machine &M,
                     runtime::SplitModel &Model);

/// Total running time of \p W under the Qilin-style profiled splitter
/// (training on \p TrainW, which may differ from W to expose the scheme's
/// input-sensitivity).
Duration timeProfiledSplit(const Workload &W, const Workload &TrainW,
                           const RunConfig &C = RunConfig());

} // namespace work
} // namespace fcl

#endif // FCL_WORK_DRIVER_H
