//===- work/Polybench.cpp - The six paper benchmarks -----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "work/Workload.h"

#include "kern/polybench/PolybenchKernels.h"
#include "support/Format.h"

using namespace fcl;
using namespace fcl::work;
using namespace fcl::kern::poly;
using runtime::KArg;

Workload fcl::work::makeAtax(int64_t NX, int64_t NY) {
  Workload W;
  W.Name = formatString("ATAX(%lld)", static_cast<long long>(NX));
  W.Summary = "y = A^T (A x); kernel 1 row walk, kernel 2 column walk";
  uint64_t F = sizeof(float);
  W.Buffers = {
      {"A", static_cast<uint64_t>(NX * NY) * F},
      {"x", static_cast<uint64_t>(NY) * F},
      {"tmp", static_cast<uint64_t>(NX) * F},
      {"y", static_cast<uint64_t>(NY) * F},
  };
  W.Calls = {
      {"atax_kernel1", kern::NDRange::of1D(static_cast<uint64_t>(NX), WgSize1D),
       {KArg::buffer(0), KArg::buffer(1), KArg::buffer(2), KArg::i64(NX),
        KArg::i64(NY)}},
      {"atax_kernel2", kern::NDRange::of1D(static_cast<uint64_t>(NY), WgSize1D),
       {KArg::buffer(0), KArg::buffer(2), KArg::buffer(3), KArg::i64(NX),
        KArg::i64(NY)}},
  };
  W.ResultBuffers = {3};
  return W;
}

Workload fcl::work::makeBicg(int64_t NX, int64_t NY) {
  Workload W;
  W.Name = formatString("BICG(%lld)", static_cast<long long>(NX));
  W.Summary = "q = A p and s = A^T r; the kernels prefer different devices";
  uint64_t F = sizeof(float);
  W.Buffers = {
      {"A", static_cast<uint64_t>(NX * NY) * F},
      {"p", static_cast<uint64_t>(NY) * F},
      {"q", static_cast<uint64_t>(NX) * F},
      {"r", static_cast<uint64_t>(NX) * F},
      {"s", static_cast<uint64_t>(NY) * F},
  };
  W.Calls = {
      {"bicg_kernel1", kern::NDRange::of1D(static_cast<uint64_t>(NX), WgSize1D),
       {KArg::buffer(0), KArg::buffer(1), KArg::buffer(2), KArg::i64(NX),
        KArg::i64(NY)}},
      {"bicg_kernel2", kern::NDRange::of1D(static_cast<uint64_t>(NY), WgSize1D),
       {KArg::buffer(0), KArg::buffer(3), KArg::buffer(4), KArg::i64(NX),
        KArg::i64(NY)}},
  };
  W.ResultBuffers = {2, 4};
  return W;
}

Workload fcl::work::makeCorr(int64_t N, int64_t M) {
  Workload W;
  W.Name = formatString("CORR(%lld)", static_cast<long long>(N));
  W.Summary = "correlation matrix: mean, std, center, pairwise dot kernels";
  uint64_t F = sizeof(float);
  W.Buffers = {
      {"data", static_cast<uint64_t>(N * M) * F},
      {"mean", static_cast<uint64_t>(M) * F},
      {"std", static_cast<uint64_t>(M) * F},
      {"corr", static_cast<uint64_t>(M * M) * F},
  };
  W.Calls = {
      {"corr_mean_kernel",
       kern::NDRange::of1D(static_cast<uint64_t>(M), WgSize1D),
       {KArg::buffer(0), KArg::buffer(1), KArg::i64(N), KArg::i64(M)}},
      {"corr_std_kernel",
       kern::NDRange::of1D(static_cast<uint64_t>(M), WgSize1D),
       {KArg::buffer(0), KArg::buffer(1), KArg::buffer(2), KArg::i64(N),
        KArg::i64(M)}},
      {"corr_center_kernel",
       kern::NDRange::of2D(static_cast<uint64_t>(M), static_cast<uint64_t>(N),
                           WgSizeX2D, WgSizeY2D),
       {KArg::buffer(0), KArg::buffer(1), KArg::buffer(2), KArg::i64(N),
        KArg::i64(M)}},
      {"corr_corr_kernel",
       kern::NDRange::of2D(static_cast<uint64_t>(M), static_cast<uint64_t>(M),
                           WgSizeX2D, WgSizeY2D),
       {KArg::buffer(0), KArg::buffer(3), KArg::i64(N), KArg::i64(M)}},
  };
  W.ResultBuffers = {3};
  return W;
}

Workload fcl::work::makeGesummv(int64_t N) {
  Workload W;
  W.Name = formatString("GESUMMV(%lld)", static_cast<long long>(N));
  W.Summary = "y = alpha A x + beta B x; CPU-friendly single kernel";
  uint64_t F = sizeof(float);
  W.Buffers = {
      {"A", static_cast<uint64_t>(N * N) * F},
      {"B", static_cast<uint64_t>(N * N) * F},
      {"x", static_cast<uint64_t>(N) * F},
      {"y", static_cast<uint64_t>(N) * F},
  };
  W.Calls = {
      {"gesummv_kernel",
       kern::NDRange::of1D(static_cast<uint64_t>(N), WgSize1D),
       {KArg::buffer(0), KArg::buffer(1), KArg::buffer(2), KArg::buffer(3),
        KArg::f64(1.5), KArg::f64(1.2), KArg::i64(N)}},
  };
  W.ResultBuffers = {3};
  return W;
}

Workload fcl::work::makeSyrk(int64_t N, int64_t M) {
  Workload W;
  W.Name = formatString("SYRK(%lld)", static_cast<long long>(N));
  W.Summary = "C = alpha A A^T + beta C; comparable CPU/GPU speed";
  uint64_t F = sizeof(float);
  W.Buffers = {
      {"A", static_cast<uint64_t>(N * M) * F},
      {"C", static_cast<uint64_t>(N * N) * F},
  };
  W.Calls = {
      {"syrk_kernel",
       kern::NDRange::of2D(static_cast<uint64_t>(N), static_cast<uint64_t>(N),
                           WgSizeX2D, WgSizeY2D),
       {KArg::buffer(0), KArg::buffer(1), KArg::f64(1.3), KArg::f64(0.7),
        KArg::i64(N), KArg::i64(M)}},
  };
  W.ResultBuffers = {1};
  return W;
}

Workload fcl::work::makeSyr2k(int64_t N, int64_t M) {
  Workload W;
  W.Name = formatString("SYR2K(%lld)", static_cast<long long>(N));
  W.Summary = "C = alpha(A B^T + B A^T) + beta C";
  uint64_t F = sizeof(float);
  W.Buffers = {
      {"A", static_cast<uint64_t>(N * M) * F},
      {"B", static_cast<uint64_t>(N * M) * F},
      {"C", static_cast<uint64_t>(N * N) * F},
  };
  W.Calls = {
      {"syr2k_kernel",
       kern::NDRange::of2D(static_cast<uint64_t>(N), static_cast<uint64_t>(N),
                           WgSizeX2D, WgSizeY2D),
       {KArg::buffer(0), KArg::buffer(1), KArg::buffer(2), KArg::f64(1.1),
        KArg::f64(0.6), KArg::i64(N), KArg::i64(M)}},
  };
  W.ResultBuffers = {2};
  return W;
}

std::vector<Workload> fcl::work::paperSuite() {
  // Input sizes reconstructed from (OCR-damaged) Table 2; see DESIGN.md.
  return {
      makeAtax(8192, 8192), makeBicg(4096, 4096),   makeCorr(2048, 2048),
      makeGesummv(4096),    makeSyrk(1024, 1024),   makeSyr2k(1536, 1536),
  };
}

std::vector<Workload> fcl::work::testSuite() {
  return {
      makeAtax(256, 256), makeBicg(192, 192), makeCorr(128, 128),
      makeGesummv(192),   makeSyrk(128, 128), makeSyr2k(96, 96),
  };
}

Workload fcl::work::makeMvt(int64_t N) {
  Workload W;
  W.Name = formatString("MVT(%lld)", static_cast<long long>(N));
  W.Summary = "x1 += A y1 and x2 += A^T y2; opposite access patterns";
  uint64_t F = sizeof(float);
  W.Buffers = {
      {"A", static_cast<uint64_t>(N * N) * F},
      {"y1", static_cast<uint64_t>(N) * F},
      {"x1", static_cast<uint64_t>(N) * F},
      {"y2", static_cast<uint64_t>(N) * F},
      {"x2", static_cast<uint64_t>(N) * F},
  };
  W.Calls = {
      {"mvt_kernel1", kern::NDRange::of1D(static_cast<uint64_t>(N), WgSize1D),
       {KArg::buffer(0), KArg::buffer(1), KArg::buffer(2), KArg::i64(N)}},
      {"mvt_kernel2", kern::NDRange::of1D(static_cast<uint64_t>(N), WgSize1D),
       {KArg::buffer(0), KArg::buffer(3), KArg::buffer(4), KArg::i64(N)}},
  };
  W.ResultBuffers = {2, 4};
  return W;
}

Workload fcl::work::makeGemm(int64_t NI, int64_t NJ, int64_t NK) {
  Workload W;
  W.Name = formatString("GEMM(%lld)", static_cast<long long>(NI));
  W.Summary = "C = alpha A B + beta C";
  uint64_t F = sizeof(float);
  W.Buffers = {
      {"A", static_cast<uint64_t>(NI * NK) * F},
      {"B", static_cast<uint64_t>(NK * NJ) * F},
      {"C", static_cast<uint64_t>(NI * NJ) * F},
  };
  W.Calls = {
      {"gemm_kernel",
       kern::NDRange::of2D(static_cast<uint64_t>(NJ),
                           static_cast<uint64_t>(NI), WgSizeX2D, WgSizeY2D),
       {KArg::buffer(0), KArg::buffer(1), KArg::buffer(2), KArg::f64(1.4),
        KArg::f64(0.8), KArg::i64(NI), KArg::i64(NJ), KArg::i64(NK)}},
  };
  W.ResultBuffers = {2};
  return W;
}

Workload fcl::work::make2mm(int64_t N) {
  Workload W;
  W.Name = formatString("2MM(%lld)", static_cast<long long>(N));
  W.Summary = "tmp = A B; D = tmp C (two chained GEMMs)";
  uint64_t F = sizeof(float);
  uint64_t NN = static_cast<uint64_t>(N * N) * F;
  W.Buffers = {
      {"A", NN}, {"B", NN}, {"tmp", NN}, {"C", NN}, {"D", NN},
  };
  // beta = 0 for the first product so tmp's initial content is irrelevant.
  W.Calls = {
      {"gemm_kernel",
       kern::NDRange::of2D(static_cast<uint64_t>(N), static_cast<uint64_t>(N),
                           WgSizeX2D, WgSizeY2D),
       {KArg::buffer(0), KArg::buffer(1), KArg::buffer(2), KArg::f64(1.0),
        KArg::f64(0.0), KArg::i64(N), KArg::i64(N), KArg::i64(N)}},
      {"gemm_kernel",
       kern::NDRange::of2D(static_cast<uint64_t>(N), static_cast<uint64_t>(N),
                           WgSizeX2D, WgSizeY2D),
       {KArg::buffer(2), KArg::buffer(3), KArg::buffer(4), KArg::f64(1.0),
        KArg::f64(0.0), KArg::i64(N), KArg::i64(N), KArg::i64(N)}},
  };
  W.ResultBuffers = {4};
  return W;
}

Workload fcl::work::make3mm(int64_t N) {
  Workload W;
  W.Name = formatString("3MM(%lld)", static_cast<long long>(N));
  W.Summary = "E = A B; F = C D; G = E F (three chained GEMMs)";
  uint64_t NN = static_cast<uint64_t>(N * N) * sizeof(float);
  W.Buffers = {{"A", NN}, {"B", NN}, {"C", NN}, {"D", NN},
               {"E", NN}, {"F", NN}, {"G", NN}};
  kern::NDRange Range = kern::NDRange::of2D(
      static_cast<uint64_t>(N), static_cast<uint64_t>(N), WgSizeX2D,
      WgSizeY2D);
  auto Product = [&](uint32_t L, uint32_t Rhs, uint32_t Out) {
    return KernelCall{"gemm_kernel", Range,
                      {KArg::buffer(L), KArg::buffer(Rhs), KArg::buffer(Out),
                       KArg::f64(1.0), KArg::f64(0.0), KArg::i64(N),
                       KArg::i64(N), KArg::i64(N)}};
  };
  W.Calls = {Product(0, 1, 4), Product(2, 3, 5), Product(4, 5, 6)};
  W.ResultBuffers = {6};
  return W;
}

Workload fcl::work::makeCovar(int64_t N, int64_t M) {
  Workload W;
  W.Name = formatString("COVAR(%lld)", static_cast<long long>(N));
  W.Summary = "covariance matrix: mean, center, pairwise-product kernels";
  uint64_t F = sizeof(float);
  W.Buffers = {
      {"data", static_cast<uint64_t>(N * M) * F},
      {"mean", static_cast<uint64_t>(M) * F},
      {"cov", static_cast<uint64_t>(M * M) * F},
  };
  W.Calls = {
      {"covar_mean_kernel",
       kern::NDRange::of1D(static_cast<uint64_t>(M), WgSize1D),
       {KArg::buffer(0), KArg::buffer(1), KArg::i64(N), KArg::i64(M)}},
      {"covar_center_kernel",
       kern::NDRange::of2D(static_cast<uint64_t>(M), static_cast<uint64_t>(N),
                           WgSizeX2D, WgSizeY2D),
       {KArg::buffer(0), KArg::buffer(1), KArg::i64(N), KArg::i64(M)}},
      {"covar_cov_kernel",
       kern::NDRange::of2D(static_cast<uint64_t>(M), static_cast<uint64_t>(M),
                           WgSizeX2D, WgSizeY2D),
       {KArg::buffer(0), KArg::buffer(2), KArg::i64(N), KArg::i64(M)}},
  };
  W.ResultBuffers = {2};
  return W;
}

std::vector<Workload> fcl::work::extendedSuite() {
  std::vector<Workload> Suite = paperSuite();
  Suite.push_back(makeMvt(4096));
  Suite.push_back(makeGemm(1024, 1024, 1024));
  Suite.push_back(make2mm(1024));
  Suite.push_back(make3mm(1024));
  Suite.push_back(makeCovar(2048, 2048));
  return Suite;
}
