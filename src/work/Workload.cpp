//===- work/Workload.cpp - Benchmark workload definitions ------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "work/Workload.h"

using namespace fcl;
using namespace fcl::work;

std::vector<uint64_t> Workload::groupCounts() const {
  std::vector<uint64_t> Counts;
  Counts.reserve(Calls.size());
  for (const KernelCall &C : Calls)
    Counts.push_back(C.Range.totalGroups());
  return Counts;
}
