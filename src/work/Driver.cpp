//===- work/Driver.cpp - Experiment driver ----------------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "work/Driver.h"

#include "fluidicl/Runtime.h"
#include "kern/Registry.h"
#include "runtime/SingleDevice.h"
#include "runtime/ProfiledSplit.h"
#include "runtime/StaticPartition.h"
#include "socl/SoclRuntime.h"
#include "support/Error.h"
#include "support/Rng.h"

#include <cmath>
#include <cstring>

using namespace fcl;
using namespace fcl::work;

std::vector<std::vector<std::byte>> fcl::work::initHostData(const Workload &W) {
  std::vector<std::vector<std::byte>> Bufs;
  Bufs.reserve(W.Buffers.size());
  for (size_t I = 0; I < W.Buffers.size(); ++I) {
    const BufferSpec &Spec = W.Buffers[I];
    std::vector<std::byte> Data(Spec.Bytes);
    Rng R(0xC0FFEE ^ (static_cast<uint64_t>(I) * 0x9E3779B9u));
    auto *F = reinterpret_cast<float *>(Data.data());
    for (uint64_t J = 0; J < Spec.Bytes / sizeof(float); ++J)
      F[J] = static_cast<float>(R.nextInRange(0.05, 1.0));
    Bufs.push_back(std::move(Data));
  }
  return Bufs;
}

void fcl::work::computeReference(const Workload &W,
                                 std::vector<std::vector<std::byte>> &HostBufs) {
  FCL_CHECK(HostBufs.size() == W.Buffers.size(), "buffer count mismatch");
  for (const KernelCall &Call : W.Calls) {
    const kern::KernelInfo &Kernel =
        kern::Registry::builtin().get(Call.Kernel);
    std::vector<kern::ArgValue> Values;
    for (const runtime::KArg &A : Call.Args) {
      if (A.IsBuffer) {
        std::vector<std::byte> &B = HostBufs[A.Buf];
        Values.push_back(kern::ArgValue::buffer(B.data(), B.size()));
      } else {
        kern::ArgValue V;
        V.IntValue = A.IntValue;
        V.FpValue = A.FpValue;
        Values.push_back(V);
      }
    }
    kern::ArgsView Args(std::move(Values));
    std::vector<std::byte> Scratch(Kernel.LocalBytes);
    kern::Dim3 Groups = Call.Range.numGroups();
    uint64_t Items = Call.Range.itemsPerGroup();
    for (uint64_t Flat = 0; Flat < Call.Range.totalGroups(); ++Flat) {
      if (!Scratch.empty())
        std::fill(Scratch.begin(), Scratch.end(), std::byte{0});
      kern::executeWorkGroup(Kernel, Call.Range,
                             kern::unflattenGroupId(Flat, Groups), Args, 0,
                             Items, Scratch.empty() ? nullptr : Scratch.data());
    }
  }
}

RunResult fcl::work::runWorkload(runtime::HeteroRuntime &RT, const Workload &W,
                                 bool Validate) {
  mcl::Context &Ctx = RT.context();
  bool Functional = Ctx.functional();

  std::vector<std::vector<std::byte>> Host;
  if (Functional)
    Host = initHostData(W);

  TimePoint Start = RT.now();

  std::vector<runtime::BufferId> Ids;
  for (size_t I = 0; I < W.Buffers.size(); ++I)
    Ids.push_back(RT.createBuffer(W.Buffers[I].Bytes, W.Buffers[I].Name));
  for (size_t I = 0; I < W.Buffers.size(); ++I)
    RT.writeBuffer(Ids[I], Functional ? Host[I].data() : nullptr,
                   W.Buffers[I].Bytes);

  for (const KernelCall &Call : W.Calls) {
    // Remap workload-local buffer indices to runtime buffer ids.
    std::vector<runtime::KArg> Args = Call.Args;
    for (runtime::KArg &A : Args)
      if (A.IsBuffer)
        A.Buf = Ids[A.Buf];
    RT.launchKernel(Call.Kernel, Call.Range, Args);
  }

  std::vector<std::vector<std::byte>> Results;
  for (size_t RIdx : W.ResultBuffers) {
    std::vector<std::byte> Out;
    if (Functional)
      Out.resize(W.Buffers[RIdx].Bytes);
    RT.readBuffer(Ids[RIdx], Functional ? Out.data() : nullptr,
                  W.Buffers[RIdx].Bytes);
    Results.push_back(std::move(Out));
  }

  // Total running time ends when the application has its results (as the
  // paper measures); draining trailing cooperative work (e.g. a CPU
  // subkernel whose results the GPU already produced) happens afterwards.
  RunResult Res;
  Res.RuntimeName = RT.name();
  Res.Total = RT.now() - Start;
  RT.finish();

  if (Validate && Functional) {
    computeReference(W, Host);
    Res.Validated = true;
    Res.Valid = true;
    for (size_t R = 0; R < W.ResultBuffers.size(); ++R) {
      const auto *Got = reinterpret_cast<const float *>(Results[R].data());
      const auto *Want =
          reinterpret_cast<const float *>(Host[W.ResultBuffers[R]].data());
      uint64_t Count = Results[R].size() / sizeof(float);
      for (uint64_t J = 0; J < Count; ++J) {
        double Err = std::fabs(static_cast<double>(Got[J]) - Want[J]);
        if (Err > Res.MaxAbsError)
          Res.MaxAbsError = Err;
        // Identical operation order on every path: results must agree to
        // tiny float noise (merge copies bytes verbatim).
        double Tol = 1e-5 + 1e-5 * std::fabs(Want[J]);
        if (Err > Tol)
          Res.Valid = false;
      }
    }
  }
  return Res;
}

Duration fcl::work::timeUnder(RuntimeKind K, const Workload &W,
                              const RunConfig &C) {
  switch (K) {
  case RuntimeKind::CpuOnly: {
    mcl::Context Ctx(C.M, C.Mode);
    runtime::SingleDeviceRuntime RT(Ctx, mcl::DeviceKind::Cpu);
    return runWorkload(RT, W, false).Total;
  }
  case RuntimeKind::GpuOnly: {
    mcl::Context Ctx(C.M, C.Mode);
    runtime::SingleDeviceRuntime RT(Ctx, mcl::DeviceKind::Gpu);
    return runWorkload(RT, W, false).Total;
  }
  case RuntimeKind::FluidiCL: {
    mcl::Context Ctx(C.M, C.Mode);
    fluidicl::Runtime RT(Ctx, C.FclOpts);
    return runWorkload(RT, W, false).Total;
  }
  case RuntimeKind::SoclEager: {
    socl::PerfModel Model;
    mcl::Context Ctx(C.M, C.Mode);
    socl::SoclRuntime RT(Ctx, socl::Policy::Eager, Model);
    return runWorkload(RT, W, false).Total;
  }
  case RuntimeKind::SoclDmda: {
    socl::PerfModel Model;
    for (int I = 0; I < C.DmdaCalibrationRuns; ++I) {
      mcl::Context Ctx(C.M, C.Mode);
      socl::SoclRuntime RT(Ctx, socl::Policy::Dmda, Model,
                           /*Calibrating=*/true,
                           /*TaskSeed=*/static_cast<uint64_t>(I));
      runWorkload(RT, W, false);
    }
    mcl::Context Ctx(C.M, C.Mode);
    socl::SoclRuntime RT(Ctx, socl::Policy::Dmda, Model);
    return runWorkload(RT, W, false).Total;
  }
  }
  FCL_UNREACHABLE("covered switch");
}

stats::RunReport
fcl::work::collectRunReport(const runtime::HeteroRuntime &RT,
                            const Workload &W, Duration Wall,
                            const trace::Tracer *T) {
  stats::RunReport Rep;
  Rep.WorkloadName = W.Name;
  Rep.Wall = Wall;
  RT.collectStats(Rep);
  // Event-queue health of the runtime's simulator (see ISSUE: exported so
  // run reports show tombstone pressure and compaction churn).
  sim::Simulator &Sim = RT.context().simulator();
  Rep.Counters.add("sim_events_executed", Sim.eventsExecuted());
  Rep.Counters.add("sim_tombstone_skips", Sim.tombstoneSkips());
  Rep.Counters.add("sim_compaction_runs", Sim.compactionRuns());
  Rep.Counters.set("sim_pending_tombstones",
                static_cast<double>(Sim.pendingTombstones()));
  if (T)
    Rep.addUtilizationFromTracer(*T, Wall);
  return Rep;
}

namespace {

stats::RunReport runReported(runtime::HeteroRuntime &RT, const Workload &W,
                             trace::Tracer *T) {
  if (T)
    RT.context().setTracer(T);
  RunResult Res = runWorkload(RT, W, false);
  return collectRunReport(RT, W, Res.Total, T);
}

} // namespace

stats::RunReport fcl::work::reportUnder(RuntimeKind K, const Workload &W,
                                        const RunConfig &C,
                                        trace::Tracer *T) {
  switch (K) {
  case RuntimeKind::CpuOnly: {
    mcl::Context Ctx(C.M, C.Mode);
    runtime::SingleDeviceRuntime RT(Ctx, mcl::DeviceKind::Cpu);
    return runReported(RT, W, T);
  }
  case RuntimeKind::GpuOnly: {
    mcl::Context Ctx(C.M, C.Mode);
    runtime::SingleDeviceRuntime RT(Ctx, mcl::DeviceKind::Gpu);
    return runReported(RT, W, T);
  }
  case RuntimeKind::FluidiCL: {
    mcl::Context Ctx(C.M, C.Mode);
    fluidicl::Runtime RT(Ctx, C.FclOpts);
    return runReported(RT, W, T);
  }
  case RuntimeKind::SoclEager: {
    socl::PerfModel Model;
    mcl::Context Ctx(C.M, C.Mode);
    socl::SoclRuntime RT(Ctx, socl::Policy::Eager, Model);
    return runReported(RT, W, T);
  }
  case RuntimeKind::SoclDmda: {
    socl::PerfModel Model;
    for (int I = 0; I < C.DmdaCalibrationRuns; ++I) {
      mcl::Context Ctx(C.M, C.Mode);
      socl::SoclRuntime RT(Ctx, socl::Policy::Dmda, Model,
                           /*Calibrating=*/true,
                           /*TaskSeed=*/static_cast<uint64_t>(I));
      runWorkload(RT, W, false);
    }
    mcl::Context Ctx(C.M, C.Mode);
    socl::SoclRuntime RT(Ctx, socl::Policy::Dmda, Model);
    return runReported(RT, W, T);
  }
  }
  FCL_UNREACHABLE("covered switch");
}

Duration fcl::work::timeStaticPartition(const Workload &W, double GpuFraction,
                                        const RunConfig &C) {
  mcl::Context Ctx(C.M, C.Mode);
  runtime::StaticPartitionRuntime RT(Ctx, GpuFraction);
  return runWorkload(RT, W, false).Total;
}

Duration fcl::work::oracleStaticPartition(const Workload &W,
                                          const RunConfig &C, int StepPct,
                                          double *BestFraction) {
  FCL_CHECK(StepPct > 0 && StepPct <= 100, "bad oracle step");
  Duration Best = Duration::nanoseconds(INT64_MAX);
  double BestFrac = 0;
  for (int Pct = 0; Pct <= 100; Pct += StepPct) {
    Duration T = timeStaticPartition(W, Pct / 100.0, C);
    if (T < Best) {
      Best = T;
      BestFrac = Pct / 100.0;
    }
  }
  if (BestFraction)
    *BestFraction = BestFrac;
  return Best;
}

void fcl::work::trainSplitModel(const Workload &W, const hw::Machine &M,
                                runtime::SplitModel &Model) {
  for (int D = 0; D < 2; ++D) {
    mcl::DeviceKind Kind =
        D == 0 ? mcl::DeviceKind::Cpu : mcl::DeviceKind::Gpu;
    mcl::Context Ctx(M, mcl::ExecMode::TimingOnly);
    runtime::SingleDeviceRuntime RT(Ctx, Kind);
    for (size_t B = 0; B < W.Buffers.size(); ++B)
      RT.createBuffer(W.Buffers[B].Bytes, W.Buffers[B].Name);
    for (const KernelCall &Call : W.Calls)
      Model.record(Call.Kernel, Kind,
                   RT.kernelOnlyDuration(Call.Kernel, Call.Range, Call.Args));
  }
}

Duration fcl::work::timeProfiledSplit(const Workload &W,
                                      const Workload &TrainW,
                                      const RunConfig &C) {
  runtime::SplitModel Model;
  trainSplitModel(TrainW, C.M, Model);
  mcl::Context Ctx(C.M, C.Mode);
  runtime::ProfiledSplitRuntime RT(Ctx, Model);
  return runWorkload(RT, W, false).Total;
}
