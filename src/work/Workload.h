//===- work/Workload.h - Benchmark workload definitions ---------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarative descriptions of the paper's six Polybench benchmarks
/// (Table 2): the buffers an application creates, the kernel launches it
/// performs, and the buffers it reads back. A workload is interpreted
/// against any HeteroRuntime by work/Driver.h, so the same application
/// code runs under CPU-only, GPU-only, static partitioning, FluidiCL and
/// SOCL.
///
/// All buffers hold floats initialized with deterministic pseudo-random
/// values; reference outputs are produced by executing the same kernel
/// sequence directly on the host (the kernels themselves are validated
/// against closed-form math in tests/kern_polybench_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_WORK_WORKLOAD_H
#define FCL_WORK_WORKLOAD_H

#include "kern/NDRange.h"
#include "runtime/HeteroRuntime.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fcl {
namespace work {

/// One buffer the application creates.
struct BufferSpec {
  std::string Name;
  uint64_t Bytes = 0;
};

/// One kernel launch in application order.
struct KernelCall {
  std::string Kernel;
  kern::NDRange Range;
  /// Buffer KArgs refer to indices into Workload::Buffers.
  std::vector<runtime::KArg> Args;
};

/// A complete benchmark application.
struct Workload {
  std::string Name;
  std::string Summary;
  std::vector<BufferSpec> Buffers;
  std::vector<KernelCall> Calls;
  /// Indices of buffers the application reads back at the end.
  std::vector<size_t> ResultBuffers;

  /// Total work-groups per call (Table 2's "Work-groups" column).
  std::vector<uint64_t> groupCounts() const;
};

// Parameterized constructors for the paper's suite.
Workload makeAtax(int64_t NX, int64_t NY);
Workload makeBicg(int64_t NX, int64_t NY);
Workload makeCorr(int64_t N, int64_t M);
Workload makeGesummv(int64_t N);
Workload makeSyrk(int64_t N, int64_t M);
Workload makeSyr2k(int64_t N, int64_t M);

// Extension workloads beyond the paper's six (see README):
/// MVT: two matrix-vector products with opposite access patterns.
Workload makeMvt(int64_t N);
/// GEMM: C = alpha A B + beta C.
Workload makeGemm(int64_t NI, int64_t NJ, int64_t NK);
/// 2MM: two chained GEMMs through an intermediate buffer.
Workload make2mm(int64_t N);
/// 3MM: three GEMMs, two independent then one combining their results.
Workload make3mm(int64_t N);
/// COVAR: covariance matrix (mean, center, pairwise-product kernels).
Workload makeCovar(int64_t N, int64_t M);

/// The paper-scale suite (Table 2 input sizes as reconstructed in
/// DESIGN.md).
std::vector<Workload> paperSuite();

/// Scaled-down versions of all six benchmarks for functional testing.
std::vector<Workload> testSuite();

/// The paper suite plus the extension workloads (MVT, GEMM, 2MM).
std::vector<Workload> extendedSuite();

} // namespace work
} // namespace fcl

#endif // FCL_WORK_WORKLOAD_H
