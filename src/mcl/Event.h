//===- mcl/Event.h - Completion events --------------------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analogue of cl_event: a completion token for an enqueued command.
/// Completion callbacks registered on an event fire at the simulated
/// completion timestamp; FluidiCL's event-driven host "threads" (the CPU
/// scheduler and the device-to-host stage) are built out of these.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_MCL_EVENT_H
#define FCL_MCL_EVENT_H

#include "support/SimTime.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace fcl {
namespace mcl {

class Context;

/// Completion token for one enqueued command.
class Event {
public:
  explicit Event(Context &Ctx) : Ctx(Ctx) {}

  bool isComplete() const { return Complete; }
  /// Simulated completion timestamp; only valid once complete.
  TimePoint completeTime() const { return CompleteAt; }
  /// Command-specific payload: for kernel launches, the number of
  /// work-groups the device actually executed (aborted ones excluded).
  uint64_t payload() const { return Payload; }

  /// Registers \p Fn to run at completion; runs immediately if already
  /// complete.
  void onComplete(std::function<void()> Fn);

  /// Blocks (runs the simulator) until this event completes.
  void wait();

  /// Marks the event complete at the current simulated time. Called by the
  /// owning queue/device exactly once.
  void fire(uint64_t PayloadValue = 0);

private:
  Context &Ctx;
  bool Complete = false;
  TimePoint CompleteAt;
  uint64_t Payload = 0;
  std::vector<std::function<void()>> Callbacks;
};

using EventPtr = std::shared_ptr<Event>;

} // namespace mcl
} // namespace fcl

#endif // FCL_MCL_EVENT_H
