//===- mcl/Buffer.cpp - Device memory objects ------------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mcl/Buffer.h"

#include "support/Error.h"

using namespace fcl;
using namespace fcl::mcl;

Buffer::Buffer(Device &Dev, uint64_t Size, bool Backed, std::string DebugName)
    : Dev(Dev), Size(Size), DebugName(std::move(DebugName)) {
  FCL_CHECK(Size > 0, "zero-sized buffer");
  if (Backed)
    Storage.assign(Size, std::byte{0});
}
