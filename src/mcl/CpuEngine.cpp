//===- mcl/CpuEngine.cpp - Simulated CPU OpenCL device ---------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mcl/CpuEngine.h"

#include "hw/CostModel.h"
#include "mcl/Context.h"
#include "support/Error.h"

#include <algorithm>
#include <vector>

using namespace fcl;
using namespace fcl::mcl;

CpuEngine::CpuEngine(Context &Ctx) : Device(Ctx, DeviceKind::Cpu, "SimCPU") {}

int CpuEngine::computeUnits() const {
  return Ctx.machine().Cpu.ComputeUnits;
}

TimePoint CpuEngine::scheduleTransfer(TransferDir Dir, uint64_t Bytes) {
  // The host-CPU device shares physical memory with the host (the OpenCL
  // runtime still copies, at memcpy speed); a Xeon-Phi-class coprocessor
  // configured as the second device sits behind its own PCIe link
  // instead. Directions contend like two streams either way.
  int Idx = Dir == TransferDir::HostToDevice ? 0 : 1;
  TimePoint Start = std::max(ChannelFree[Idx], Ctx.now());
  Duration Cost = Ctx.machine().Cpu.BehindPcie
                      ? Ctx.machine().Pcie.transferTime(Bytes)
                      : Ctx.machine().Host.memcpyTime(Bytes);
  TimePoint End = Start + Cost;
  ChannelFree[Idx] = End;
  return End;
}

Duration CpuEngine::copyDuration(uint64_t Bytes) const {
  return Ctx.machine().Host.memcpyTime(Bytes);
}

Duration CpuEngine::launchDuration(const LaunchDesc &Desc) const {
  const hw::Machine &M = Ctx.machine();
  uint64_t Begin = Desc.clampedBegin();
  uint64_t End = Desc.clampedEnd();
  FCL_CHECK(Begin <= End, "inverted launch range");
  uint64_t Groups = End - Begin;
  if (Groups == 0)
    return M.Cpu.KernelLaunchOverhead;

  kern::CostQuery Query;
  Query.Range = Desc.Range;
  for (const LaunchArg &A : Desc.Args) {
    kern::ArgValue V;
    V.IntValue = A.IntValue;
    V.FpValue = A.FpValue;
    Query.Scalars.push_back(V);
  }
  hw::WorkItemCost Cost = Desc.Kernel->Cost(Query);
  uint64_t Items = Desc.Range.itemsPerGroup();
  int Units = M.Cpu.ComputeUnits;

  if (Desc.SplitWorkGroups && Groups < static_cast<uint64_t>(Units)) {
    // Section 6.3: each work-group is split into Units pieces executed in
    // parallel; barriers become joins (the slowest slice gates the group).
    uint64_t SliceItems = (Items + Units - 1) / Units;
    Duration SliceTime = hw::cpuWorkGroupTime(M, Cost, SliceItems);
    Duration GroupTime = SliceTime + M.Cpu.WgDispatchOverhead;
    return M.Cpu.KernelLaunchOverhead + GroupTime * static_cast<int64_t>(Groups);
  }

  // One work-group per compute unit, executed in rounds.
  Duration WgTime =
      hw::cpuWorkGroupTime(M, Cost, Items) + M.Cpu.WgDispatchOverhead;
  uint64_t Rounds = (Groups + Units - 1) / Units;
  return M.Cpu.KernelLaunchOverhead + WgTime * static_cast<int64_t>(Rounds);
}

void CpuEngine::executeLaunch(const LaunchDesc &Desc,
                              std::function<void(uint64_t)> Complete) {
  Duration D = launchDuration(Desc);
  uint64_t Begin = Desc.clampedBegin();
  uint64_t End = Desc.clampedEnd();
  uint64_t Groups = End > Begin ? End - Begin : 0;

  // Capture what functional execution needs by value; buffers outlive the
  // launch by API contract.
  LaunchDesc DescCopy = Desc;
  Ctx.simulator().scheduleAfter(D, [this, DescCopy = std::move(DescCopy),
                                    Complete = std::move(Complete), Begin,
                                    End, Groups] {
    bool Skip = DescCopy.SkipFunctional && DescCopy.SkipFunctional();
    if (Ctx.functional() && Groups > 0 && !Skip) {
      kern::ArgsView Args = resolveArgs(*this, DescCopy);
      const kern::KernelInfo &Kernel = *DescCopy.Kernel;
      std::vector<std::byte> Scratch(Kernel.LocalBytes);
      kern::Dim3 NumGroups = DescCopy.Range.numGroups();
      uint64_t ItemsPerGroup = DescCopy.Range.itemsPerGroup();
      for (uint64_t Flat = Begin; Flat < End; ++Flat) {
        if (!Scratch.empty())
          std::fill(Scratch.begin(), Scratch.end(), std::byte{0});
        kern::executeWorkGroup(Kernel, DescCopy.Range,
                               kern::unflattenGroupId(Flat, NumGroups), Args,
                               0, ItemsPerGroup,
                               Scratch.empty() ? nullptr : Scratch.data());
      }
    }
    Complete(Groups);
  });
}
