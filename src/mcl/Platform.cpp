//===- mcl/Platform.cpp - Vendor platform discovery ------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mcl/Platform.h"

#include "mcl/Context.h"

using namespace fcl;
using namespace fcl::mcl;

std::vector<Platform> fcl::mcl::discoverPlatforms(Context &Ctx) {
  return {
      Platform{"SimNV OpenCL", &Ctx.gpu()},
      Platform{"SimAMD APP", &Ctx.cpu()},
  };
}
