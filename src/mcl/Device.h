//===- mcl/Device.h - Simulated compute devices -----------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract simulated device: executes kernel launches in virtual time
/// and models the transfer path between host memory and its own memory
/// (PCIe for the discrete GPU, cache-coherent memcpy for the CPU device).
/// Concrete engines: CpuEngine (mcl/CpuEngine.h) and GpuEngine
/// (mcl/GpuEngine.h).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_MCL_DEVICE_H
#define FCL_MCL_DEVICE_H

#include "mcl/Launch.h"
#include "support/SimTime.h"

#include <cstdint>
#include <functional>
#include <string>

namespace fcl {
namespace mcl {

class Context;

enum class DeviceKind {
  Cpu,
  Gpu,
};

/// Transfer direction relative to the device.
enum class TransferDir {
  HostToDevice,
  DeviceToHost,
};

/// A simulated OpenCL device.
class Device {
public:
  virtual ~Device();

  DeviceKind kind() const { return Kind; }
  const std::string &name() const { return DeviceName; }
  Context &context() const { return Ctx; }

  /// Number of parallel compute units (cores for the CPU, SMs for the GPU).
  virtual int computeUnits() const = 0;

  /// Reserves the transfer channel for \p Bytes starting no earlier than
  /// now, returning the simulated completion time. Transfers in the same
  /// direction serialize on the channel; opposite directions are
  /// independent (full duplex).
  virtual TimePoint scheduleTransfer(TransferDir Dir, uint64_t Bytes) = 0;

  /// Duration of an on-device buffer-to-buffer copy of \p Bytes.
  virtual Duration copyDuration(uint64_t Bytes) const = 0;

  /// Begins executing \p Desc at the current simulated time; calls
  /// \p Complete(ExecutedGroups) at the simulated completion time.
  /// Functional execution of surviving work-groups happens at their
  /// simulated completion.
  virtual void executeLaunch(const LaunchDesc &Desc,
                             std::function<void(uint64_t)> Complete) = 0;

protected:
  Device(Context &Ctx, DeviceKind Kind, std::string Name);

  Context &Ctx;

private:
  DeviceKind Kind;
  std::string DeviceName;
};

/// Resolves launch arguments into the kernel-facing ArgsView (buffer data
/// pointers + scalars) and verifies buffers belong to \p Dev.
kern::ArgsView resolveArgs(const Device &Dev, const LaunchDesc &Desc);

} // namespace mcl
} // namespace fcl

#endif // FCL_MCL_DEVICE_H
