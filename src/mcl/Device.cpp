//===- mcl/Device.cpp - Simulated compute devices --------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mcl/Device.h"

#include "mcl/Buffer.h"
#include "support/Error.h"

using namespace fcl;
using namespace fcl::mcl;

Device::Device(Context &Ctx, DeviceKind Kind, std::string Name)
    : Ctx(Ctx), Kind(Kind), DeviceName(std::move(Name)) {}

Device::~Device() = default;

kern::ArgsView fcl::mcl::resolveArgs(const Device &Dev,
                                     const LaunchDesc &Desc) {
  const kern::KernelInfo &Kernel = *Desc.Kernel;
  FCL_CHECK(Kernel.Args.size() == Desc.Args.size(),
            "argument arity mismatch");
  std::vector<kern::ArgValue> Values;
  Values.reserve(Desc.Args.size());
  for (size_t I = 0; I < Desc.Args.size(); ++I) {
    const LaunchArg &A = Desc.Args[I];
    if (Kernel.Args[I] == kern::ArgAccess::Scalar) {
      FCL_CHECK(A.Buf == nullptr, "buffer bound to scalar argument");
      kern::ArgValue V;
      V.IntValue = A.IntValue;
      V.FpValue = A.FpValue;
      Values.push_back(V);
      continue;
    }
    FCL_CHECK(A.Buf != nullptr, "missing buffer argument");
    FCL_CHECK(&A.Buf->device() == &Dev, "buffer belongs to another device");
    Values.push_back(kern::ArgValue::buffer(A.Buf->data(), A.Buf->size()));
  }
  return kern::ArgsView(std::move(Values));
}
