//===- mcl/CommandQueue.cpp - In-order command queues ----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mcl/CommandQueue.h"

#include "mcl/Buffer.h"
#include "mcl/Context.h"
#include "mcl/Device.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/Log.h"
#include "trace/Tracer.h"

#include <cstring>
#include <utility>
#include <vector>

using namespace fcl;
using namespace fcl::mcl;

namespace {

enum class CommandKind {
  Write,
  Read,
  Copy,
  Launch,
  Callback,
};

} // namespace

struct CommandQueue::Command {
  CommandKind Kind;
  EventPtr Done;
  TimePoint StartedAt; // For tracing (includes channel-wait time).
  // Write/Read/Copy.
  Buffer *Src = nullptr;
  Buffer *Dst = nullptr;
  void *HostDst = nullptr;
  std::vector<std::byte> HostSrcCopy; // Captured write payload.
  uint64_t Bytes = 0;
  uint64_t Offset = 0;
  // Launch.
  LaunchDesc Launch;
  // Callback.
  std::function<void()> Fn;
};

CommandQueue::CommandQueue(Context &Ctx, Device &Dev, std::string DebugName)
    : Ctx(Ctx), Dev(Dev), DebugName(std::move(DebugName)) {}

CommandQueue::~CommandQueue() {
  // Commands hold only non-owning references; destroying a queue with
  // pending commands is a bug in the caller.
  FCL_CHECK(idle(), "command queue destroyed while commands pending");
}

EventPtr CommandQueue::enqueue(Command Cmd) {
  Cmd.Done = std::make_shared<Event>(Ctx);
  EventPtr Done = Cmd.Done;
  if (Busy) {
    Pending.push_back(std::move(Cmd));
    return Done;
  }
  Busy = true;
  startCommand(std::move(Cmd));
  return Done;
}

void CommandQueue::pump() {
  if (Pending.empty()) {
    Busy = false;
    return;
  }
  Command Next = std::move(Pending.front());
  Pending.pop_front();
  startCommand(std::move(Next));
}

void CommandQueue::traceCommand(const Command &Cmd) const {
  trace::Tracer *T = Ctx.tracer();
  if (!T)
    return;
  bool IsGpu = Dev.kind() == DeviceKind::Gpu;
  std::string Lane, Name;
  switch (Cmd.Kind) {
  case CommandKind::Write:
    Lane = IsGpu ? "PCIe H2D" : "HostCopy H2D";
    Name = formatString("write %s (%llu B)",
                        Cmd.Dst ? Cmd.Dst->debugName().c_str() : "?",
                        static_cast<unsigned long long>(Cmd.Bytes));
    break;
  case CommandKind::Read:
    Lane = IsGpu ? "PCIe D2H" : "HostCopy D2H";
    Name = formatString("read %s (%llu B)",
                        Cmd.Src ? Cmd.Src->debugName().c_str() : "?",
                        static_cast<unsigned long long>(Cmd.Bytes));
    break;
  case CommandKind::Copy:
    Lane = Dev.name() + " copy";
    Name = formatString("copy %s -> %s",
                        Cmd.Src ? Cmd.Src->debugName().c_str() : "?",
                        Cmd.Dst ? Cmd.Dst->debugName().c_str() : "?");
    break;
  case CommandKind::Launch: {
    Lane = Dev.name();
    uint64_t Begin = Cmd.Launch.clampedBegin();
    uint64_t End = Cmd.Launch.clampedEnd();
    Name = Cmd.Launch.Kernel->Name;
    if (Begin != 0 || End != Cmd.Launch.Range.totalGroups())
      Name += formatString(" [%llu,%llu)",
                           static_cast<unsigned long long>(Begin),
                           static_cast<unsigned long long>(End));
    break;
  }
  case CommandKind::Callback:
    return; // Zero-duration bookkeeping; not worth a slice.
  }
  T->record(std::move(Lane), std::move(Name), Cmd.StartedAt, Ctx.now(),
            "queue=" + DebugName);
}

void CommandQueue::startCommand(Command &&Cmd) {
  sim::Simulator &Sim = Ctx.simulator();
  Cmd.StartedAt = Ctx.now();
  switch (Cmd.Kind) {
  case CommandKind::Write: {
    TimePoint End =
        Dev.scheduleTransfer(TransferDir::HostToDevice, Cmd.Bytes);
    Ctx.noteTransferStart();
    // Move the command into the completion event so the captured payload
    // stays alive until the simulated DMA lands.
    auto CmdPtr = std::make_shared<Command>(std::move(Cmd));
    Sim.scheduleAt(End, [this, CmdPtr] {
      FCL_LOG_DEBUG("queue %s: write %s lands at t=%lld",
                    DebugName.c_str(), CmdPtr->Dst->debugName().c_str(),
                    (long long)Ctx.now().nanos());
      if (CmdPtr->Dst->backed() && !CmdPtr->HostSrcCopy.empty()) {
        FCL_CHECK(CmdPtr->Offset + CmdPtr->Bytes <= CmdPtr->Dst->size(),
                  "write overruns buffer");
        std::memcpy(CmdPtr->Dst->data() + CmdPtr->Offset,
                    CmdPtr->HostSrcCopy.data(), CmdPtr->Bytes);
      }
      Ctx.noteTransferEnd();
      traceCommand(*CmdPtr);
      CmdPtr->Done->fire();
      pump();
    });
    return;
  }
  case CommandKind::Read: {
    TimePoint End =
        Dev.scheduleTransfer(TransferDir::DeviceToHost, Cmd.Bytes);
    Ctx.noteTransferStart();
    auto CmdPtr = std::make_shared<Command>(std::move(Cmd));
    Sim.scheduleAt(End, [this, CmdPtr] {
      FCL_LOG_DEBUG("queue %s: read %s lands at t=%lld",
                    DebugName.c_str(), CmdPtr->Src->debugName().c_str(),
                    (long long)Ctx.now().nanos());
      if (CmdPtr->Src->backed() && CmdPtr->HostDst) {
        FCL_CHECK(CmdPtr->Offset + CmdPtr->Bytes <= CmdPtr->Src->size(),
                  "read overruns buffer");
        std::memcpy(CmdPtr->HostDst, CmdPtr->Src->data() + CmdPtr->Offset,
                    CmdPtr->Bytes);
      }
      Ctx.noteTransferEnd();
      traceCommand(*CmdPtr);
      CmdPtr->Done->fire();
      pump();
    });
    return;
  }
  case CommandKind::Copy: {
    Duration D = Dev.copyDuration(Cmd.Bytes);
    auto CmdPtr = std::make_shared<Command>(std::move(Cmd));
    Sim.scheduleAfter(D, [this, CmdPtr] {
      if (CmdPtr->Src->backed() && CmdPtr->Dst->backed()) {
        FCL_CHECK(CmdPtr->Bytes <= CmdPtr->Src->size() &&
                      CmdPtr->Bytes <= CmdPtr->Dst->size(),
                  "copy overruns buffer");
        std::memcpy(CmdPtr->Dst->data(), CmdPtr->Src->data(), CmdPtr->Bytes);
      }
      traceCommand(*CmdPtr);
      CmdPtr->Done->fire();
      pump();
    });
    return;
  }
  case CommandKind::Launch: {
    auto CmdPtr = std::make_shared<Command>(std::move(Cmd));
    Dev.executeLaunch(CmdPtr->Launch, [this, CmdPtr](uint64_t Executed) {
      traceCommand(*CmdPtr);
      CmdPtr->Done->fire(Executed);
      pump();
    });
    return;
  }
  case CommandKind::Callback: {
    // Runs as its own simulator event so completion callbacks observe a
    // consistent queue state.
    auto CmdPtr = std::make_shared<Command>(std::move(Cmd));
    Sim.scheduleAfter(Duration::zero(), [this, CmdPtr] {
      if (CmdPtr->Fn)
        CmdPtr->Fn();
      CmdPtr->Done->fire();
      pump();
    });
    return;
  }
  }
  FCL_UNREACHABLE("covered switch");
}

EventPtr CommandQueue::enqueueWrite(Buffer &Dst, const void *Src,
                                    uint64_t Bytes, uint64_t Offset) {
  FCL_CHECK(&Dst.device() == &Dev, "buffer belongs to another device");
  FCL_CHECK(Offset + Bytes <= Dst.size(), "write overruns buffer");
  Command Cmd;
  Cmd.Kind = CommandKind::Write;
  Cmd.Dst = &Dst;
  Cmd.Bytes = Bytes;
  Cmd.Offset = Offset;
  if (Ctx.functional() && Src) {
    const std::byte *P = static_cast<const std::byte *>(Src);
    Cmd.HostSrcCopy.assign(P, P + Bytes);
  }
  return enqueue(std::move(Cmd));
}

EventPtr CommandQueue::enqueueRead(Buffer &Src, void *Dst, uint64_t Bytes,
                                   uint64_t Offset, bool Blocking) {
  FCL_CHECK(&Src.device() == &Dev, "buffer belongs to another device");
  FCL_CHECK(Offset + Bytes <= Src.size(), "read overruns buffer");
  Command Cmd;
  Cmd.Kind = CommandKind::Read;
  Cmd.Src = &Src;
  Cmd.HostDst = Dst;
  Cmd.Bytes = Bytes;
  Cmd.Offset = Offset;
  EventPtr Done = enqueue(std::move(Cmd));
  if (Blocking)
    Done->wait();
  return Done;
}

EventPtr CommandQueue::enqueueCopy(Buffer &Src, Buffer &Dst, uint64_t Bytes) {
  FCL_CHECK(&Src.device() == &Dev && &Dst.device() == &Dev,
            "copy requires both buffers on this device");
  FCL_CHECK(Bytes <= Src.size() && Bytes <= Dst.size(),
            "copy overruns buffer");
  Command Cmd;
  Cmd.Kind = CommandKind::Copy;
  Cmd.Src = &Src;
  Cmd.Dst = &Dst;
  Cmd.Bytes = Bytes;
  return enqueue(std::move(Cmd));
}

EventPtr CommandQueue::enqueueKernel(LaunchDesc Desc) {
  FCL_CHECK(Desc.Kernel != nullptr, "launch without kernel");
  FCL_CHECK(Desc.Kernel->Args.size() == Desc.Args.size(),
            "launch argument arity mismatch");
  Command Cmd;
  Cmd.Kind = CommandKind::Launch;
  Cmd.Launch = std::move(Desc);
  return enqueue(std::move(Cmd));
}

EventPtr CommandQueue::enqueueCallback(std::function<void()> Fn) {
  Command Cmd;
  Cmd.Kind = CommandKind::Callback;
  Cmd.Fn = std::move(Fn);
  return enqueue(std::move(Cmd));
}

void CommandQueue::finish() {
  Ctx.simulator().runWhileNot([this] { return idle(); });
}
