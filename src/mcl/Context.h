//===- mcl/Context.h - MiniCL context ---------------------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniCL context owns the simulator, the machine description, and the
/// two devices (CPU + discrete GPU), and creates buffers and command
/// queues. It is the analogue of a cl_context spanning both vendor
/// platforms (which is what FluidiCL builds on top of, paper Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_MCL_CONTEXT_H
#define FCL_MCL_CONTEXT_H

#include "hw/Machine.h"
#include "mcl/Buffer.h"
#include "mcl/Device.h"
#include "sim/Simulator.h"
#include "trace/Tracer.h"

#include <memory>
#include <string>

namespace fcl {
namespace mcl {

class CommandQueue;

/// Whether kernels compute real results or only consume simulated time.
enum class ExecMode {
  Functional,
  TimingOnly,
};

/// Owns the simulated machine: clock, devices, buffers, queues.
class Context {
public:
  explicit Context(const hw::Machine &M = hw::paperMachine(),
                   ExecMode Mode = ExecMode::Functional);
  ~Context();

  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  sim::Simulator &simulator() { return Sim; }
  const hw::Machine &machine() const { return M; }
  ExecMode execMode() const { return Mode; }
  bool functional() const { return Mode == ExecMode::Functional; }

  Device &cpu() { return *Cpu; }
  Device &gpu() { return *Gpu; }

  /// Current simulated time.
  TimePoint now() const { return Sim.now(); }

  /// Advances the simulated clock by \p D, running any events that fall in
  /// the window (models host-side work such as API-call overheads).
  void hostAdvance(Duration D);

  /// Creates a device buffer, charging the host-side creation overhead.
  std::unique_ptr<Buffer> createBuffer(Device &Dev, uint64_t Size,
                                       std::string DebugName = "buf");

  /// Creates an in-order command queue for \p Dev.
  std::unique_ptr<CommandQueue> createQueue(Device &Dev,
                                            std::string DebugName = "queue");

  /// Attaches an execution tracer (nullptr detaches). Every queue command
  /// records a slice on its resource's lane while a tracer is attached.
  void setTracer(trace::Tracer *T) { ActiveTracer = T; }
  trace::Tracer *tracer() const { return ActiveTracer; }

  /// Write/Read commands in flight right now, across all queues. Command
  /// queues keep this current; the attached tracer gets an "Outstanding
  /// transfers" counter sample on every change.
  int outstandingTransfers() const { return OutstandingTransfers; }
  void noteTransferStart() {
    ++OutstandingTransfers;
    sampleOutstandingTransfers();
  }
  void noteTransferEnd() {
    --OutstandingTransfers;
    sampleOutstandingTransfers();
  }

private:
  void sampleOutstandingTransfers() {
    if (ActiveTracer)
      ActiveTracer->counter("Outstanding transfers", now(),
                            static_cast<double>(OutstandingTransfers));
  }

  hw::Machine M;
  ExecMode Mode;
  sim::Simulator Sim;
  std::unique_ptr<Device> Cpu;
  std::unique_ptr<Device> Gpu;
  trace::Tracer *ActiveTracer = nullptr;
  int OutstandingTransfers = 0;
};

} // namespace mcl
} // namespace fcl

#endif // FCL_MCL_CONTEXT_H
