//===- mcl/CpuEngine.h - Simulated CPU OpenCL device ------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated multicore CPU device, modelled after the AMD APP CPU
/// OpenCL runtime the paper uses: each work-group executes as a single
/// thread (work-items in a loop) on one compute unit, each kernel launch
/// pays a fixed enqueue/dispatch overhead, and - with SplitWorkGroups set -
/// a work-group can be split across all compute units with barriers turned
/// into phase joins (paper section 6.3).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_MCL_CPUENGINE_H
#define FCL_MCL_CPUENGINE_H

#include "mcl/Device.h"

namespace fcl {
namespace mcl {

/// Simulated CPU device.
class CpuEngine final : public Device {
public:
  explicit CpuEngine(Context &Ctx);

  int computeUnits() const override;
  TimePoint scheduleTransfer(TransferDir Dir, uint64_t Bytes) override;
  Duration copyDuration(uint64_t Bytes) const override;
  void executeLaunch(const LaunchDesc &Desc,
                     std::function<void(uint64_t)> Complete) override;

  /// Computed duration of a launch (exposed for tests and for the SOCL
  /// dmda performance model's ground truth).
  Duration launchDuration(const LaunchDesc &Desc) const;

private:
  TimePoint ChannelFree[2];
};

} // namespace mcl
} // namespace fcl

#endif // FCL_MCL_CPUENGINE_H
