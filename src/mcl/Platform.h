//===- mcl/Platform.h - Vendor platform discovery ---------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analogue of clGetPlatformIDs/clGetDeviceIDs: each simulated device
/// is exposed through its own "vendor" platform (paper Figure 1 - FluidiCL
/// sets up the CPU platform and the GPU platform side by side and drives
/// both vendor runtimes).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_MCL_PLATFORM_H
#define FCL_MCL_PLATFORM_H

#include <string>
#include <vector>

namespace fcl {
namespace mcl {

class Context;
class Device;

/// One vendor platform exposing one device.
struct Platform {
  std::string VendorName;
  Device *Dev = nullptr;
};

/// Enumerates the platforms of \p Ctx (GPU vendor first, matching the
/// typical ICD ordering the paper's setup used).
std::vector<Platform> discoverPlatforms(Context &Ctx);

} // namespace mcl
} // namespace fcl

#endif // FCL_MCL_PLATFORM_H
