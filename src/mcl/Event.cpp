//===- mcl/Event.cpp - Completion events -----------------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mcl/Event.h"

#include "mcl/Context.h"
#include "support/Error.h"

using namespace fcl;
using namespace fcl::mcl;

void Event::onComplete(std::function<void()> Fn) {
  FCL_CHECK(Fn != nullptr, "null completion callback");
  if (Complete) {
    Fn();
    return;
  }
  Callbacks.push_back(std::move(Fn));
}

void Event::wait() {
  Ctx.simulator().runWhileNot([this] { return Complete; });
  FCL_CHECK(Complete, "event cannot complete: simulation queue drained");
}

void Event::fire(uint64_t PayloadValue) {
  FCL_CHECK(!Complete, "event fired twice");
  Complete = true;
  CompleteAt = Ctx.simulator().now();
  Payload = PayloadValue;
  // Callbacks may register further callbacks/commands; run on a moved copy.
  std::vector<std::function<void()>> Fns = std::move(Callbacks);
  Callbacks.clear();
  for (auto &Fn : Fns)
    Fn();
}
