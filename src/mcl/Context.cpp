//===- mcl/Context.cpp - MiniCL context ------------------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mcl/Context.h"

#include "mcl/CommandQueue.h"
#include "mcl/CpuEngine.h"
#include "mcl/GpuEngine.h"

using namespace fcl;
using namespace fcl::mcl;

Context::Context(const hw::Machine &M, ExecMode Mode)
    : M(M), Mode(Mode), Cpu(std::make_unique<CpuEngine>(*this)),
      Gpu(std::make_unique<GpuEngine>(*this)) {}

Context::~Context() = default;

void Context::hostAdvance(Duration D) { Sim.runUntil(Sim.now() + D); }

std::unique_ptr<Buffer> Context::createBuffer(Device &Dev, uint64_t Size,
                                              std::string DebugName) {
  hostAdvance(M.Host.bufferCreateTime(Size));
  return std::make_unique<Buffer>(Dev, Size, functional(),
                                  std::move(DebugName));
}

std::unique_ptr<CommandQueue> Context::createQueue(Device &Dev,
                                                   std::string DebugName) {
  return std::make_unique<CommandQueue>(*this, Dev, std::move(DebugName));
}
