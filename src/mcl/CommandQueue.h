//===- mcl/CommandQueue.h - In-order command queues -------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analogue of an in-order cl_command_queue: commands (buffer writes
/// and reads, device-to-device copies, kernel launches, host callbacks)
/// start in enqueue order, each after its predecessor completes. FluidiCL
/// relies on this in-order property: the CPU execution-status message is
/// enqueued *after* the computed data on the hd queue, so the GPU only
/// observes a work-group as CPU-complete once the data is already with it
/// (paper section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_MCL_COMMANDQUEUE_H
#define FCL_MCL_COMMANDQUEUE_H

#include "mcl/Event.h"
#include "mcl/Launch.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

namespace fcl {
namespace mcl {

class Buffer;
class Context;
class Device;

/// In-order command queue bound to one device.
class CommandQueue {
public:
  CommandQueue(Context &Ctx, Device &Dev, std::string DebugName);
  ~CommandQueue();

  Device &device() const { return Dev; }
  const std::string &debugName() const { return DebugName; }

  /// Copies \p Bytes from host memory \p Src into \p Dst at \p Offset.
  /// In Functional mode the bytes are captured at enqueue time (so callers
  /// may reuse the source immediately, like a completed clEnqueueWriteBuffer
  /// with an internal staging copy).
  EventPtr enqueueWrite(Buffer &Dst, const void *Src, uint64_t Bytes,
                        uint64_t Offset = 0);

  /// Reads \p Bytes from \p Src at \p Offset into host memory \p Dst at the
  /// simulated completion time. If \p Blocking, runs the simulator until
  /// the read completes before returning.
  EventPtr enqueueRead(Buffer &Src, void *Dst, uint64_t Bytes,
                       uint64_t Offset = 0, bool Blocking = false);

  /// On-device copy (used for FluidiCL's "original data" snapshots).
  EventPtr enqueueCopy(Buffer &Src, Buffer &Dst, uint64_t Bytes);

  /// NDRange kernel launch.
  EventPtr enqueueKernel(LaunchDesc Desc);

  /// Host callback that runs, in order, when it reaches the queue head
  /// (zero simulated duration).
  EventPtr enqueueCallback(std::function<void()> Fn);

  /// Runs the simulator until every command enqueued so far has completed.
  void finish();

  /// True when no command is executing or pending.
  bool idle() const { return !Busy && Pending.empty(); }

private:
  struct Command;

  void pump();
  void traceCommand(const Command &Cmd) const;
  void startCommand(Command &&Cmd);
  EventPtr enqueue(Command Cmd);

  Context &Ctx;
  Device &Dev;
  std::string DebugName;
  bool Busy = false;
  std::deque<Command> Pending;
};

} // namespace mcl
} // namespace fcl

#endif // FCL_MCL_COMMANDQUEUE_H
