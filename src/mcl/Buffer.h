//===- mcl/Buffer.h - Device memory objects ---------------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Buffer is a device-resident memory object (the analogue of cl_mem).
/// Devices in this reproduction have *discrete* address spaces, as in the
/// paper's CPU+discrete-GPU setup: a buffer belongs to exactly one device
/// and moves only through explicit queue transfers.
///
/// In Functional execution mode a buffer owns real backing storage and
/// kernels compute real results; in TimingOnly mode only the size is
/// tracked and data-less commands are timed (used for large parameter
/// sweeps in the bench harnesses).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_MCL_BUFFER_H
#define FCL_MCL_BUFFER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fcl {
namespace mcl {

class Device;

/// Device memory object.
class Buffer {
public:
  /// Created through Context::createBuffer; \p Backed selects Functional
  /// (true) vs TimingOnly (false) storage.
  Buffer(Device &Dev, uint64_t Size, bool Backed, std::string DebugName);

  Device &device() const { return Dev; }
  uint64_t size() const { return Size; }
  const std::string &debugName() const { return DebugName; }

  /// Backing storage, or nullptr in TimingOnly mode.
  std::byte *data() { return Storage.empty() ? nullptr : Storage.data(); }
  const std::byte *data() const {
    return Storage.empty() ? nullptr : Storage.data();
  }
  bool backed() const { return !Storage.empty(); }

private:
  Device &Dev;
  uint64_t Size;
  std::string DebugName;
  std::vector<std::byte> Storage;
};

} // namespace mcl
} // namespace fcl

#endif // FCL_MCL_BUFFER_H
