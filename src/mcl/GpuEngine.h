//===- mcl/GpuEngine.h - Simulated discrete GPU device ----------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated discrete GPU: work-groups execute in waves of
/// (SMs x resident groups) in ascending flattened-ID order, transfers cross
/// a full-duplex PCIe link, and FluidiCL-transformed kernels check the CPU
/// completion status - at work-group start, and (with the section 6.4
/// optimization) at in-loop checkpoints that let in-flight waves terminate
/// early when the CPU has already finished the tail of the NDRange.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_MCL_GPUENGINE_H
#define FCL_MCL_GPUENGINE_H

#include "mcl/Device.h"

namespace fcl {
namespace mcl {

/// Simulated discrete GPU device.
class GpuEngine final : public Device {
public:
  explicit GpuEngine(Context &Ctx);

  int computeUnits() const override;
  TimePoint scheduleTransfer(TransferDir Dir, uint64_t Bytes) override;
  Duration copyDuration(uint64_t Bytes) const override;
  void executeLaunch(const LaunchDesc &Desc,
                     std::function<void(uint64_t)> Complete) override;

  /// Analytic duration of a launch assuming no aborts occur (exposed for
  /// tests and the SOCL dmda performance model's ground truth).
  Duration launchDuration(const LaunchDesc &Desc) const;

private:
  struct Run;

  TimePoint ChannelFree[2];
};

} // namespace mcl
} // namespace fcl

#endif // FCL_MCL_GPUENGINE_H
