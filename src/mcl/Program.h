//===- mcl/Program.h - Programs and stateful kernel objects -----*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clCreateProgram/clBuildProgram/clCreateKernel/clSetKernelArg layer
/// of MiniCL. "Building" a program selects kernels from the registered
/// kernel set (the registry stands in for the vendor compiler, which is
/// how clBuildProgram turns source into kernels); a KernelObject then
/// carries stateful, index-set arguments and lowers to a LaunchDesc for
/// CommandQueue::enqueueKernel.
///
/// FluidiCL's own fcl* shim (fluidicl/OpenCLShim.h) offers the same
/// stateful style at the cooperative-runtime level; this layer provides it
/// for single-device MiniCL programs.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_MCL_PROGRAM_H
#define FCL_MCL_PROGRAM_H

#include "mcl/Launch.h"

#include <string>
#include <vector>

namespace fcl {
namespace mcl {

class Buffer;

/// A built program: a set of kernels available for kernel-object creation.
class Program {
public:
  /// Builds a program containing \p KernelNames. Aborts on unknown names
  /// (the analogue of a compile error from clBuildProgram).
  explicit Program(const std::vector<std::string> &KernelNames);

  /// Builds a program containing every registered kernel.
  static Program allBuiltins();

  bool hasKernel(const std::string &Name) const;
  const kern::KernelInfo &kernel(const std::string &Name) const;
  size_t numKernels() const { return Kernels.size(); }

private:
  std::vector<const kern::KernelInfo *> Kernels;
};

/// A stateful kernel object (clCreateKernel + clSetKernelArg): arguments
/// are set by index and retained across launches.
class KernelObject {
public:
  KernelObject(const Program &Prog, const std::string &Name);

  const kern::KernelInfo &info() const { return *Info; }

  /// Binds a buffer argument.
  void setArgBuffer(size_t Index, Buffer *Buf);
  /// Binds an integer scalar argument.
  void setArgInt(size_t Index, int64_t Value);
  /// Binds a floating-point scalar argument.
  void setArgFloat(size_t Index, double Value);

  /// True once every argument has been set.
  bool argsComplete() const;

  /// Lowers to a launch descriptor over \p Range (all arguments must be
  /// set; scalar/buffer kinds must match the kernel's declaration).
  LaunchDesc buildLaunch(const kern::NDRange &Range) const;

private:
  const kern::KernelInfo *Info;
  std::vector<LaunchArg> Args;
  std::vector<bool> Set;
};

} // namespace mcl
} // namespace fcl

#endif // FCL_MCL_PROGRAM_H
