//===- mcl/GpuEngine.cpp - Simulated discrete GPU device -------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mcl/GpuEngine.h"

#include "hw/CostModel.h"
#include "mcl/Context.h"
#include "support/Error.h"
#include "support/Log.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

using namespace fcl;
using namespace fcl::mcl;

GpuEngine::GpuEngine(Context &Ctx) : Device(Ctx, DeviceKind::Gpu, "SimGPU") {}

int GpuEngine::computeUnits() const { return Ctx.machine().Gpu.NumSms; }

TimePoint GpuEngine::scheduleTransfer(TransferDir Dir, uint64_t Bytes) {
  int Idx = Dir == TransferDir::HostToDevice ? 0 : 1;
  TimePoint Start = std::max(ChannelFree[Idx], Ctx.now());
  TimePoint End = Start + Ctx.machine().Pcie.transferTime(Bytes);
  ChannelFree[Idx] = End;
  return End;
}

Duration GpuEngine::copyDuration(uint64_t Bytes) const {
  // Device-to-device copy: read + write device memory.
  double Seconds = 2.0 * static_cast<double>(Bytes) /
                   Ctx.machine().Gpu.MemBandwidth *
                   Ctx.machine().GpuLoadFactor;
  return Duration::microseconds(4) + Duration::seconds(Seconds);
}

static hw::WorkItemCost launchCost(const LaunchDesc &Desc) {
  kern::CostQuery Query;
  Query.Range = Desc.Range;
  for (const LaunchArg &A : Desc.Args) {
    kern::ArgValue V;
    V.IntValue = A.IntValue;
    V.FpValue = A.FpValue;
    Query.Scalars.push_back(V);
  }
  return Desc.Kernel->Cost(Query);
}

Duration GpuEngine::launchDuration(const LaunchDesc &Desc) const {
  const hw::Machine &M = Ctx.machine();
  uint64_t Begin = Desc.clampedBegin();
  uint64_t End = Desc.clampedEnd();
  uint64_t Groups = End > Begin ? End - Begin : 0;
  if (Groups == 0)
    return M.Gpu.KernelLaunchOverhead;
  hw::WorkItemCost Cost = launchCost(Desc);
  uint64_t Items = Desc.Range.itemsPerGroup();
  uint64_t Wave = static_cast<uint64_t>(M.Gpu.waveWidth());
  uint64_t FullWaves = Groups / Wave;
  uint64_t Tail = Groups % Wave;
  Duration D = M.Gpu.KernelLaunchOverhead;
  if (FullWaves > 0)
    D += hw::gpuWaveTime(M, Cost, Desc.Abort, Wave * Items) *
         static_cast<int64_t>(FullWaves);
  if (Tail > 0)
    D += hw::gpuWaveTime(M, Cost, Desc.Abort, Tail * Items);
  return D;
}

/// Event-driven execution state of one GPU kernel launch. Waves of
/// work-groups run back to back; each wave is divided into checkpoint
/// segments (1 segment unless in-loop aborts are enabled); at each segment
/// boundary the CPU-completion boundary is re-read and covered work-groups
/// abort, shortening the remainder of the wave.
struct GpuEngine::Run : std::enable_shared_from_this<GpuEngine::Run> {
  GpuEngine *Eng = nullptr;
  LaunchDesc Desc;
  std::function<void(uint64_t)> Complete;
  hw::WorkItemCost Cost;
  uint64_t ItemsPerWg = 0;
  uint64_t RangeEnd = 0;
  uint64_t NextWg = 0;
  uint64_t Executed = 0;

  // In-flight wave state.
  uint64_t WaveBegin = 0;
  uint64_t WaveEnd = 0;
  uint64_t Live = 0; // Work-groups still executing in the wave.
  int Checkpoint = 0;
  int NumCheckpoints = 1;

  /// Smallest flat ID the GPU must still execute up to (exclusive): the
  /// NDRange end, lowered by the CPU-completion boundary when one is wired.
  uint64_t currentLimit() const {
    uint64_t Limit = RangeEnd;
    if (Desc.AbortBoundary && Desc.Abort.Kind != hw::AbortPolicyKind::None) {
      uint64_t B = Desc.AbortBoundary();
      Limit = std::min(Limit, B);
    }
    return std::max(Limit, Desc.clampedBegin());
  }

  /// Occupancy counter track: live work-groups on the device right now.
  void sampleLive(uint64_t Value) const {
    if (trace::Tracer *T = Eng->Ctx.tracer())
      T->counter(Eng->name() + " live work-groups", Eng->Ctx.now(),
                 static_cast<double>(Value));
  }

  void start() {
    auto Self = shared_from_this();
    Eng->Ctx.simulator().scheduleAfter(
        Eng->Ctx.machine().Gpu.KernelLaunchOverhead,
        [Self] { Self->beginWave(); });
  }

  void beginWave() {
    uint64_t Limit = currentLimit();
    if (NextWg >= Limit) {
      finish();
      return;
    }
    uint64_t Wave = static_cast<uint64_t>(Eng->Ctx.machine().Gpu.waveWidth());
    WaveBegin = NextWg;
    WaveEnd = std::min(Limit, WaveBegin + Wave);
    NextWg = WaveEnd;
    Live = WaveEnd - WaveBegin;
    NumCheckpoints = hw::gpuWaveCheckpoints(Cost, Desc.Abort);
    Checkpoint = 0;
    sampleLive(Live);
    scheduleSegment();
  }

  /// Schedules the next checkpoint segment of the in-flight wave: the time
  /// remaining for Live work-groups, split evenly over the remaining
  /// checkpoints.
  void scheduleSegment() {
    Duration WaveRemaining = hw::gpuWaveTime(Eng->Ctx.machine(), Cost,
                                             Desc.Abort, Live * ItemsPerWg);
    int SegmentsLeft = NumCheckpoints - Checkpoint;
    Duration Segment =
        Duration::nanoseconds((WaveRemaining.nanos() *
                               (NumCheckpoints - Checkpoint) /
                               NumCheckpoints) /
                              SegmentsLeft);
    auto Self = shared_from_this();
    Eng->Ctx.simulator().scheduleAfter(Segment,
                                       [Self] { Self->atCheckpoint(); });
  }

  void atCheckpoint() {
    ++Checkpoint;
    // Re-read the status word; in-flight work-groups now covered by the
    // CPU abort at their next in-loop check (section 6.4).
    if (Desc.Abort.Kind == hw::AbortPolicyKind::InLoop) {
      uint64_t Limit = currentLimit();
      uint64_t NewLive =
          Limit >= WaveEnd
              ? WaveEnd - WaveBegin
              : (Limit > WaveBegin ? Limit - WaveBegin : 0);
      if (NewLive < Live) {
        if (Desc.Counters)
          Desc.Counters->GroupsWasted += Live - NewLive;
        Live = NewLive;
        sampleLive(Live);
      }
    }
    if (Checkpoint >= NumCheckpoints || Live == 0) {
      commitWave();
      return;
    }
    scheduleSegment();
  }

  void commitWave() {
    // Surviving work-groups [WaveBegin, WaveBegin + Live) completed;
    // aborted ones left no observable writes (their data comes from the
    // CPU and the merge step).
    if (Live > 0 && Eng->Ctx.functional()) {
      FCL_LOG_DEBUG("gpu commit %s wave [%llu,%llu) at t=%lld",
                    Desc.Kernel->Name.c_str(),
                    (unsigned long long)WaveBegin,
                    (unsigned long long)(WaveBegin + Live),
                    (long long)Eng->Ctx.now().nanos());
      kern::ArgsView Args = resolveArgs(*Eng, Desc);
      const kern::KernelInfo &Kernel = *Desc.Kernel;
      std::vector<std::byte> Scratch(Kernel.LocalBytes);
      kern::Dim3 NumGroups = Desc.Range.numGroups();
      for (uint64_t Flat = WaveBegin; Flat < WaveBegin + Live; ++Flat) {
        if (!Scratch.empty())
          std::fill(Scratch.begin(), Scratch.end(), std::byte{0});
        kern::executeWorkGroup(Kernel, Desc.Range,
                               kern::unflattenGroupId(Flat, NumGroups), Args,
                               0, ItemsPerWg,
                               Scratch.empty() ? nullptr : Scratch.data());
      }
    }
    Executed += Live;
    beginWave();
  }

  void finish() {
    sampleLive(0);
    auto Done = std::move(Complete);
    Done(Executed);
  }
};

void GpuEngine::executeLaunch(const LaunchDesc &Desc,
                              std::function<void(uint64_t)> Complete) {
  auto R = std::make_shared<Run>();
  R->Eng = this;
  R->Desc = Desc;
  R->Complete = std::move(Complete);
  R->Cost = launchCost(Desc);
  R->ItemsPerWg = Desc.Range.itemsPerGroup();
  R->RangeEnd = Desc.clampedEnd();
  R->NextWg = Desc.clampedBegin();
  R->start();
}
