//===- mcl/Launch.h - Kernel launch descriptors -----------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The descriptor of one NDRange kernel launch, including the extensions
/// FluidiCL's transformed kernels need: a flat work-group range restriction
/// (CPU subkernels, paper section 5.2), the GPU abort configuration and the
/// status query the abort checks read (sections 4.2/6.4), and CPU
/// work-group splitting (section 6.3).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_MCL_LAUNCH_H
#define FCL_MCL_LAUNCH_H

#include "hw/CostModel.h"
#include "kern/Kernel.h"
#include "kern/NDRange.h"

#include <functional>
#include <limits>
#include <memory>
#include <vector>

namespace fcl {
namespace mcl {

class Buffer;

/// Live accounting the executing engine updates while a launch runs. A
/// runtime that wants visibility into mid-flight behaviour (wasted aborted
/// work) shares one of these via LaunchDesc::Counters; the engine never
/// reads it, only adds.
struct LaunchCounters {
  /// Work-groups an in-loop abort check killed after they had already
  /// started executing in a wave: cycles burned, results discarded.
  uint64_t GroupsWasted = 0;
};

/// One bound kernel argument at the API boundary: a Buffer or a scalar.
struct LaunchArg {
  Buffer *Buf = nullptr; // Null for scalars.
  int64_t IntValue = 0;
  double FpValue = 0;

  static LaunchArg buffer(Buffer *B) {
    LaunchArg A;
    A.Buf = B;
    return A;
  }
  static LaunchArg scalarInt(int64_t I) {
    LaunchArg A;
    A.IntValue = I;
    A.FpValue = static_cast<double>(I);
    return A;
  }
  static LaunchArg scalarFp(double D) {
    LaunchArg A;
    A.FpValue = D;
    A.IntValue = static_cast<int64_t>(D);
    return A;
  }
};

/// Full description of one kernel launch command.
struct LaunchDesc {
  const kern::KernelInfo *Kernel = nullptr;
  kern::NDRange Range;
  std::vector<LaunchArg> Args;

  /// Only flat work-groups in [FlatBegin, FlatEnd) execute; others skip
  /// (the CPU subkernel range check / GPU tail). Defaults to the whole
  /// NDRange.
  uint64_t FlatBegin = 0;
  uint64_t FlatEnd = std::numeric_limits<uint64_t>::max();

  /// GPU abort-check configuration (None for unmodified kernels).
  hw::AbortConfig Abort;

  /// When set, returns the smallest flat work-group ID B such that every
  /// work-group >= B has been completed by the CPU *and its data has
  /// arrived at this device*; abort checks compare against it. The GPU
  /// stops launching (and, with in-loop checks, aborts in-flight)
  /// work-groups >= B.
  std::function<uint64_t()> AbortBoundary;

  /// CPU work-group splitting (section 6.3): when the range holds fewer
  /// work-groups than compute units, split each work-group across all
  /// units (barriers become phase joins, local memory becomes global).
  bool SplitWorkGroups = false;

  /// Optional shared accounting the engine updates as the launch runs.
  std::shared_ptr<LaunchCounters> Counters;

  /// Queried at the launch's completion: when it returns true the launch's
  /// functional writes are suppressed (timing is unaffected). FluidiCL uses
  /// this for trailing CPU subkernels whose results are discarded - the
  /// merged GPU data re-establishes the authoritative copy, so the moot
  /// subkernel must not leave observable writes behind it.
  std::function<bool()> SkipFunctional;

  /// Clamped execution range for \p Range.
  uint64_t clampedBegin() const { return FlatBegin; }
  uint64_t clampedEnd() const {
    uint64_t Total = Range.totalGroups();
    return FlatEnd < Total ? FlatEnd : Total;
  }
};

} // namespace mcl
} // namespace fcl

#endif // FCL_MCL_LAUNCH_H
