//===- mcl/Program.cpp - Programs and stateful kernel objects --------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mcl/Program.h"

#include "kern/Registry.h"
#include "mcl/Buffer.h"
#include "support/Error.h"
#include "support/Format.h"

using namespace fcl;
using namespace fcl::mcl;

Program::Program(const std::vector<std::string> &KernelNames) {
  for (const std::string &Name : KernelNames)
    Kernels.push_back(&kern::Registry::builtin().get(Name));
}

Program Program::allBuiltins() {
  // The registry has no iteration API by design (lookup-only, like a
  // compiled binary); enumerate the known families here.
  return Program({
      "atax_kernel1", "atax_kernel2", "bicg_kernel1", "bicg_kernel2",
      "corr_mean_kernel", "corr_std_kernel", "corr_center_kernel",
      "corr_corr_kernel", "corr_corr_kernel_cpuopt", "gesummv_kernel",
      "syrk_kernel", "syr2k_kernel", "mvt_kernel1", "mvt_kernel2",
      "gemm_kernel", "jacobi2d_kernel", "covar_mean_kernel",
      "covar_center_kernel", "covar_cov_kernel", "vec_add", "saxpy", "vec_scale", "histogram_atomic",
      "block_sum", "md_merge_kernel",
  });
}

bool Program::hasKernel(const std::string &Name) const {
  for (const kern::KernelInfo *K : Kernels)
    if (K->Name == Name)
      return true;
  return false;
}

const kern::KernelInfo &Program::kernel(const std::string &Name) const {
  for (const kern::KernelInfo *K : Kernels)
    if (K->Name == Name)
      return *K;
  fatalError(__FILE__, __LINE__,
             formatString("kernel '%s' not in program", Name.c_str()).c_str());
}

KernelObject::KernelObject(const Program &Prog, const std::string &Name)
    : Info(&Prog.kernel(Name)), Args(Info->Args.size()),
      Set(Info->Args.size(), false) {}

void KernelObject::setArgBuffer(size_t Index, Buffer *Buf) {
  FCL_CHECK(Index < Args.size(), "argument index out of range");
  FCL_CHECK(Info->Args[Index] != kern::ArgAccess::Scalar,
            "buffer bound to scalar argument");
  FCL_CHECK(Buf != nullptr, "null buffer argument");
  Args[Index] = LaunchArg::buffer(Buf);
  Set[Index] = true;
}

void KernelObject::setArgInt(size_t Index, int64_t Value) {
  FCL_CHECK(Index < Args.size(), "argument index out of range");
  FCL_CHECK(Info->Args[Index] == kern::ArgAccess::Scalar,
            "scalar bound to buffer argument");
  Args[Index] = LaunchArg::scalarInt(Value);
  Set[Index] = true;
}

void KernelObject::setArgFloat(size_t Index, double Value) {
  FCL_CHECK(Index < Args.size(), "argument index out of range");
  FCL_CHECK(Info->Args[Index] == kern::ArgAccess::Scalar,
            "scalar bound to buffer argument");
  Args[Index] = LaunchArg::scalarFp(Value);
  Set[Index] = true;
}

bool KernelObject::argsComplete() const {
  for (bool B : Set)
    if (!B)
      return false;
  return true;
}

LaunchDesc KernelObject::buildLaunch(const kern::NDRange &Range) const {
  FCL_CHECK(argsComplete(), "kernel launched with unset arguments");
  LaunchDesc Desc;
  Desc.Kernel = Info;
  Desc.Range = Range;
  Desc.Args = Args;
  return Desc;
}
