//===- socl/SoclRuntime.h - StarPU/SOCL-style task scheduler ----*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison system of paper section 9.4: SOCL, the OpenCL frontend of
/// StarPU. Each kernel launch becomes one *task* placed entirely on a
/// single device; the runtime manages data movement between host and
/// devices automatically. Two scheduling policies are reproduced:
///
///  * eager - the StarPU default: a shared ready queue drained greedily by
///    idle workers, blind to device speed and transfer cost. With the
///    blocking single-task-at-a-time pattern of these benchmarks it
///    degenerates to round-robin placement, paying transfer ping-pong.
///  * dmda ("deque model data aware") - requires prior calibration runs to
///    build a per-kernel performance model; then places each task on the
///    device minimizing estimated transfer + execution time.
///
/// Unlike FluidiCL, neither policy can split a single kernel across
/// devices, which is why FluidiCL wins on SYRK-style kernels.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SOCL_SOCLRUNTIME_H
#define FCL_SOCL_SOCLRUNTIME_H

#include "runtime/HeteroRuntime.h"
#include "runtime/ManagedBuffer.h"
#include "socl/PerfModel.h"

#include <memory>
#include <vector>

namespace fcl {
namespace socl {

/// Scheduling policy.
enum class Policy {
  Eager,
  Dmda,
};

/// SOCL-like heterogeneous task runtime.
class SoclRuntime final : public runtime::HeteroRuntime {
public:
  /// \p Model is the (externally owned) performance-model store; dmda
  /// reads estimates from it, and *all* runs record into it - run the
  /// application with forced alternation (calibration) first to populate
  /// it, as the paper does with at least 10 calibration runs.
  /// \p TaskSeed offsets the eager/calibration alternation so repeated
  /// calibration runs of single-kernel applications sample both devices.
  SoclRuntime(mcl::Context &Ctx, Policy P, PerfModel &Model,
              bool Calibrating = false, uint64_t TaskSeed = 0);
  ~SoclRuntime() override;

  std::string name() const override;
  runtime::BufferId createBuffer(uint64_t Size,
                                 std::string DebugName) override;
  void writeBuffer(runtime::BufferId Id, const void *Src,
                   uint64_t Bytes) override;
  void readBuffer(runtime::BufferId Id, void *Dst, uint64_t Bytes) override;
  void launchKernel(const std::string &KernelName, const kern::NDRange &Range,
                    const std::vector<runtime::KArg> &Args) override;
  void finish() override;

  /// Device chosen for each task so far (for tests).
  const std::vector<mcl::DeviceKind> &placements() const {
    return Placements;
  }

private:
  runtime::ManagedBuffer &buf(runtime::BufferId Id);
  mcl::Device &chooseDevice(const std::string &KernelName,
                            const kern::NDRange &Range,
                            const std::vector<runtime::KArg> &Args);
  mcl::CommandQueue &queueFor(mcl::Device &Dev);
  Duration pendingTransferCost(mcl::Device &Dev,
                               const std::vector<runtime::KArg> &Args);

  Policy P;
  PerfModel &Model;
  bool Calibrating;
  uint64_t TaskCounter = 0;
  std::unique_ptr<mcl::CommandQueue> GpuQueue;
  std::unique_ptr<mcl::CommandQueue> CpuQueue;
  std::vector<std::unique_ptr<runtime::ManagedBuffer>> Buffers;
  std::vector<mcl::DeviceKind> Placements;
};

} // namespace socl
} // namespace fcl

#endif // FCL_SOCL_SOCLRUNTIME_H
