//===- socl/PerfModel.cpp - Calibrated per-kernel performance model -------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "socl/PerfModel.h"

#include <cmath>
#include <cstdlib>

using namespace fcl;
using namespace fcl::socl;

void PerfModel::record(const std::string &Kernel, uint64_t Items,
                       mcl::DeviceKind Kind, Duration Took) {
  Avg &A = History[Key{Kernel, Items, static_cast<int>(Kind)}];
  A.SumNanos += static_cast<double>(Took.nanos());
  ++A.Count;
  ++Samples;
}

std::optional<Duration> PerfModel::estimate(const std::string &Kernel,
                                            uint64_t Items,
                                            mcl::DeviceKind Kind) const {
  auto Exact = History.find(Key{Kernel, Items, static_cast<int>(Kind)});
  if (Exact != History.end())
    return Duration::nanoseconds(static_cast<int64_t>(
        Exact->second.SumNanos / static_cast<double>(Exact->second.Count)));

  // Nearest size for this kernel/device, scaled linearly in item count
  // (the regression-based models StarPU builds from multiple input sizes).
  const Avg *Best = nullptr;
  uint64_t BestItems = 0;
  for (const auto &[K, A] : History) {
    if (K.Kernel != Kernel || K.Kind != static_cast<int>(Kind))
      continue;
    if (!Best || std::llabs(static_cast<long long>(K.Items) -
                            static_cast<long long>(Items)) <
                     std::llabs(static_cast<long long>(BestItems) -
                                static_cast<long long>(Items))) {
      Best = &A;
      BestItems = K.Items;
    }
  }
  if (!Best)
    return std::nullopt;
  double AvgNanos = Best->SumNanos / static_cast<double>(Best->Count);
  double Scaled = AvgNanos * static_cast<double>(Items) /
                  static_cast<double>(BestItems ? BestItems : 1);
  return Duration::nanoseconds(static_cast<int64_t>(Scaled));
}

bool PerfModel::calibrated(const std::string &Kernel) const {
  bool HasCpu = false, HasGpu = false;
  for (const auto &[K, A] : History) {
    (void)A;
    if (K.Kernel != Kernel)
      continue;
    if (K.Kind == static_cast<int>(mcl::DeviceKind::Cpu))
      HasCpu = true;
    else
      HasGpu = true;
  }
  return HasCpu && HasGpu;
}
