//===- socl/SoclRuntime.cpp - StarPU/SOCL-style task scheduler ------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "socl/SoclRuntime.h"

#include "kern/Registry.h"
#include "support/Error.h"
#include "support/Log.h"

#include <cstring>

using namespace fcl;
using namespace fcl::socl;

SoclRuntime::SoclRuntime(mcl::Context &Ctx, Policy P, PerfModel &Model,
                         bool Calibrating, uint64_t TaskSeed)
    : HeteroRuntime(Ctx), P(P), Model(Model), Calibrating(Calibrating),
      TaskCounter(TaskSeed),
      GpuQueue(Ctx.createQueue(Ctx.gpu(), "socl-gpu")),
      CpuQueue(Ctx.createQueue(Ctx.cpu(), "socl-cpu")) {}

SoclRuntime::~SoclRuntime() { finish(); }

std::string SoclRuntime::name() const {
  return P == Policy::Eager ? "SOCL-eager" : "SOCL-dmda";
}

runtime::ManagedBuffer &SoclRuntime::buf(runtime::BufferId Id) {
  FCL_CHECK(Id < Buffers.size(), "invalid buffer id");
  return *Buffers[Id];
}

runtime::BufferId SoclRuntime::createBuffer(uint64_t Size,
                                            std::string DebugName) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  Buffers.push_back(std::make_unique<runtime::ManagedBuffer>(
      Ctx, Size, std::move(DebugName)));
  return static_cast<runtime::BufferId>(Buffers.size() - 1);
}

void SoclRuntime::writeBuffer(runtime::BufferId Id, const void *Src,
                              uint64_t Bytes) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  buf(Id).writeFromHost(Src, Bytes);
}

void SoclRuntime::readBuffer(runtime::BufferId Id, void *Dst,
                             uint64_t Bytes) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  runtime::ManagedBuffer &B = buf(Id);
  FCL_CHECK(Bytes <= B.size(), "read overruns buffer");
  if (!B.hostValid()) {
    mcl::Device *Src = B.anyValidDevice(&Ctx.gpu());
    FCL_CHECK(Src != nullptr, "buffer has no valid copy anywhere");
    B.ensureHost(queueFor(*Src));
  }
  if (Dst && B.hostData())
    std::memcpy(Dst, B.hostData(), Bytes);
}

mcl::CommandQueue &SoclRuntime::queueFor(mcl::Device &Dev) {
  return Dev.kind() == mcl::DeviceKind::Gpu ? *GpuQueue : *CpuQueue;
}

Duration
SoclRuntime::pendingTransferCost(mcl::Device &Dev,
                                 const std::vector<runtime::KArg> &Args) {
  // dmda's data-aware part: bytes that would have to move to run on Dev.
  uint64_t Bytes = 0;
  for (const runtime::KArg &A : Args) {
    if (!A.IsBuffer)
      continue;
    runtime::ManagedBuffer &B = buf(A.Buf);
    if (!B.validOn(Dev))
      Bytes += B.size();
  }
  if (Bytes == 0)
    return Duration::zero();
  if (Dev.kind() == mcl::DeviceKind::Gpu)
    return Ctx.machine().Pcie.transferTime(Bytes);
  return Ctx.machine().Host.memcpyTime(Bytes);
}

mcl::Device &SoclRuntime::chooseDevice(const std::string &KernelName,
                                       const kern::NDRange &Range,
                                       const std::vector<runtime::KArg> &Args) {
  if (P == Policy::Eager || Calibrating || !Model.calibrated(KernelName)) {
    // Eager: idle workers drain a shared queue; with one ready task at a
    // time this is effectively alternation between the workers, blind to
    // speed and locality (GPU workers poll fastest, so they grab first).
    // Calibration runs use the same alternation so both devices
    // accumulate history.
    return (TaskCounter % 2 == 0) ? Ctx.gpu() : Ctx.cpu();
  }
  // dmda: minimize estimated transfer + execution time.
  uint64_t Items = Range.totalItems();
  Duration CpuCost =
      pendingTransferCost(Ctx.cpu(), Args) +
      Model.estimate(KernelName, Items, mcl::DeviceKind::Cpu).value();
  Duration GpuCost =
      pendingTransferCost(Ctx.gpu(), Args) +
      Model.estimate(KernelName, Items, mcl::DeviceKind::Gpu).value();
  return CpuCost < GpuCost ? Ctx.cpu() : Ctx.gpu();
}

void SoclRuntime::launchKernel(const std::string &KernelName,
                               const kern::NDRange &Range,
                               const std::vector<runtime::KArg> &Args) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  const kern::KernelInfo &Kernel = kern::Registry::builtin().get(KernelName);
  FCL_CHECK(Kernel.Args.size() == Args.size(), "argument arity mismatch");

  mcl::Device &Dev = chooseDevice(KernelName, Range, Args);
  ++TaskCounter;
  Placements.push_back(Dev.kind());
  bool OnGpu = Dev.kind() == mcl::DeviceKind::Gpu;
  Stats.add("kernel_launches");
  Stats.add("workgroups_total", Range.totalGroups());
  Stats.add(OnGpu ? "tasks_gpu" : "tasks_cpu");
  Stats.add(OnGpu ? "gpu_workgroups_completed" : "cpu_workgroups_completed",
            Range.totalGroups());
  mcl::CommandQueue &Queue = queueFor(Dev);

  // Automatic data management: fetch stale inputs to the chosen device.
  for (const runtime::KArg &A : Args) {
    if (!A.IsBuffer)
      continue;
    runtime::ManagedBuffer &B = buf(A.Buf);
    if (B.validOn(Dev))
      continue;
    if (!B.hostValid()) {
      mcl::Device *Src = B.anyValidDevice();
      FCL_CHECK(Src != nullptr, "buffer has no valid copy anywhere");
      B.ensureHost(queueFor(*Src));
    }
    B.ensureOn(Dev, Queue);
  }

  mcl::LaunchDesc Desc;
  Desc.Kernel = &Kernel;
  Desc.Range = Range;
  for (const runtime::KArg &A : Args) {
    if (A.IsBuffer) {
      Desc.Args.push_back(mcl::LaunchArg::buffer(&buf(A.Buf).on(Dev)));
    } else {
      mcl::LaunchArg L;
      L.IntValue = A.IntValue;
      L.FpValue = A.FpValue;
      Desc.Args.push_back(L);
    }
  }

  // Measure the kernel alone (transfers excluded) for the history model,
  // bracketing it with an in-order queue callback.
  auto KernelStart = std::make_shared<TimePoint>();
  Queue.enqueueCallback([this, KernelStart] { *KernelStart = Ctx.now(); });
  mcl::EventPtr Done = Queue.enqueueKernel(std::move(Desc));
  Done->wait();
  Model.record(KernelName, Range.totalItems(), Dev.kind(),
               Done->completeTime() - *KernelStart);

  for (size_t I = 0; I < Args.size(); ++I)
    if (Args[I].IsBuffer && kern::isWrittenAccess(Kernel.Args[I]))
      buf(Args[I].Buf).markDeviceExclusive(Dev);
}

void SoclRuntime::finish() {
  GpuQueue->finish();
  CpuQueue->finish();
}
