//===- socl/PerfModel.h - Calibrated per-kernel performance model *- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The history-based performance model behind the StarPU/SOCL "dmda"
/// scheduler the paper compares against (section 9.4): per (kernel, input
/// size, device) average execution times collected during explicit
/// calibration runs, queried later to place each task on the device with
/// the earliest estimated completion. This is exactly the
/// profiling/calibration burden FluidiCL avoids.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SOCL_PERFMODEL_H
#define FCL_SOCL_PERFMODEL_H

#include "mcl/Device.h"
#include "support/SimTime.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace fcl {
namespace socl {

/// History-based execution-time model, keyed by kernel name, total
/// work-items, and device kind.
class PerfModel {
public:
  /// Records one measured execution.
  void record(const std::string &Kernel, uint64_t Items,
              mcl::DeviceKind Kind, Duration Took);

  /// Estimated execution time. Exact-size history is preferred; otherwise
  /// the nearest recorded size is scaled linearly in the item count.
  /// Empty when no history exists for this kernel/device.
  std::optional<Duration> estimate(const std::string &Kernel, uint64_t Items,
                                   mcl::DeviceKind Kind) const;

  /// True when \p Kernel has history on both devices for some size.
  bool calibrated(const std::string &Kernel) const;

  /// Number of recorded samples (all keys).
  uint64_t sampleCount() const { return Samples; }

private:
  struct Key {
    std::string Kernel;
    uint64_t Items;
    int Kind;
    auto operator<=>(const Key &) const = default;
  };
  struct Avg {
    double SumNanos = 0;
    uint64_t Count = 0;
  };

  std::map<Key, Avg> History;
  uint64_t Samples = 0;
};

} // namespace socl
} // namespace fcl

#endif // FCL_SOCL_PERFMODEL_H
