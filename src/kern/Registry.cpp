//===- kern/Registry.cpp - Kernel registry --------------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "kern/Registry.h"

#include "support/Error.h"
#include "support/Format.h"

using namespace fcl;
using namespace fcl::kern;

void Registry::add(KernelInfo Info) {
  FCL_CHECK(!Info.Name.empty(), "kernel must have a name");
  FCL_CHECK(Info.Fn != nullptr, "kernel must have a body");
  FCL_CHECK(Info.Cost != nullptr, "kernel must have a cost descriptor");
  auto [It, Inserted] = Kernels.emplace(Info.Name, std::move(Info));
  (void)It;
  FCL_CHECK(Inserted, "duplicate kernel registration");
}

const KernelInfo *Registry::find(const std::string &Name) const {
  auto It = Kernels.find(Name);
  return It == Kernels.end() ? nullptr : &It->second;
}

const KernelInfo &Registry::get(const std::string &Name) const {
  const KernelInfo *Info = find(Name);
  if (!Info)
    fatalError(__FILE__, __LINE__,
               formatString("unknown kernel '%s'", Name.c_str()).c_str());
  return *Info;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> Out;
  Out.reserve(Kernels.size());
  for (const auto &[Name, Info] : Kernels) {
    (void)Info;
    Out.push_back(Name);
  }
  return Out;
}

Registry &Registry::builtin() {
  static Registry *R = [] {
    auto *Reg = new Registry();
    registerAtaxKernels(*Reg);
    registerBicgKernels(*Reg);
    registerCorrKernels(*Reg);
    registerGesummvKernels(*Reg);
    registerSyrkKernels(*Reg);
    registerSyr2kKernels(*Reg);
    registerMvtKernels(*Reg);
    registerGemmKernels(*Reg);
    registerJacobiKernels(*Reg);
    registerCovarKernels(*Reg);
    registerVectorKernels(*Reg);
    registerMergeKernel(*Reg);
    return Reg;
  }();
  return *R;
}
