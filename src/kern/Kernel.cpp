//===- kern/Kernel.cpp - Kernel execution helpers --------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "kern/Kernel.h"

#include <vector>

using namespace fcl;
using namespace fcl::kern;

namespace fcl {
namespace kern {

/// Functionally executes every work-item of the work-group \p GroupId of
/// \p Kernel (all barrier phases in order), restricted to local items
/// [LocalBegin, LocalEnd) of the flattened local index space. The
/// restriction implements CPU work-group splitting (paper section 6.3);
/// pass 0 and itemsPerGroup() for a whole work-group.
void executeWorkGroup(const KernelInfo &Kernel, const NDRange &Range,
                      const Dim3 &GroupId, const ArgsView &Args,
                      uint64_t LocalBegin, uint64_t LocalEnd,
                      std::byte *LocalScratch) {
  Dim3 Local = Range.localSize();
  Dim3 Groups = Range.numGroups();
  ItemCtx Ctx;
  Ctx.GroupId = GroupId;
  Ctx.LocalSize = Local;
  Ctx.NumGroups = Groups;
  Ctx.Local = LocalScratch;
  for (int Phase = 0; Phase < Kernel.NumPhases; ++Phase) {
    Ctx.Phase = Phase;
    for (uint64_t Flat = LocalBegin; Flat < LocalEnd; ++Flat) {
      Ctx.LocalId.X = Flat % Local.X;
      uint64_t Rest = Flat / Local.X;
      Ctx.LocalId.Y = Rest % Local.Y;
      Ctx.LocalId.Z = Rest / Local.Y;
      Ctx.GlobalId.X = GroupId.X * Local.X + Ctx.LocalId.X;
      Ctx.GlobalId.Y = GroupId.Y * Local.Y + Ctx.LocalId.Y;
      Ctx.GlobalId.Z = GroupId.Z * Local.Z + Ctx.LocalId.Z;
      Kernel.Fn(Ctx, Args);
    }
  }
}

} // namespace kern
} // namespace fcl
