//===- kern/Merge.cpp - FluidiCL data-merge kernel -------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The md_merge_kernel of paper Figure 9: compares CPU-computed data
/// against a copy of the unmodified buffer and copies differing elements
/// into the GPU buffer. The paper performs the diff/merge at the
/// granularity of the buffer's base type; we expose the granularity as a
/// scalar argument (4 for float buffers) and each work-item processes one
/// MergeChunkBytes-sized chunk so functional execution stays fast for large
/// buffers.
///
//===----------------------------------------------------------------------===//

#include "kern/Registry.h"

#include <algorithm>
#include <cstring>

using namespace fcl;
using namespace fcl::kern;

namespace fcl {
namespace kern {

/// Bytes of buffer processed by one merge work-item.
const uint64_t MergeChunkBytes = 256;

} // namespace kern
} // namespace fcl

void fcl::kern::registerMergeKernel(Registry &R) {
  // Args: 0=cpu_buf(In) 1=gpu_buf(InOut) 2=orig(In) 3=number_bytes
  //       4=granularity (base type size in bytes).
  KernelInfo K;
  K.Name = "md_merge_kernel";
  K.Args = {ArgAccess::In, ArgAccess::InOut, ArgAccess::In, ArgAccess::Scalar,
            ArgAccess::Scalar};
  K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
    const std::byte *CpuBuf = Args[0].Data;
    std::byte *GpuBuf = Args[1].Data;
    const std::byte *Orig = Args[2].Data;
    uint64_t NumBytes = static_cast<uint64_t>(Args.i64(3));
    uint64_t Gran = static_cast<uint64_t>(Args.i64(4));
    uint64_t Begin = Ctx.GlobalId.X * MergeChunkBytes;
    if (Begin >= NumBytes)
      return;
    uint64_t End = std::min(NumBytes, Begin + MergeChunkBytes);
    for (uint64_t I = Begin; I < End; I += Gran) {
      uint64_t Width = std::min(Gran, NumBytes - I);
      if (std::memcmp(CpuBuf + I, Orig + I, Width) != 0)
        std::memcpy(GpuBuf + I, CpuBuf + I, Width);
    }
  };
  K.Cost = [](const CostQuery &) {
    hw::WorkItemCost C;
    C.Flops = MergeChunkBytes / 4.0;
    C.BytesRead = 2 * MergeChunkBytes;  // cpu_buf + orig.
    C.BytesWritten = MergeChunkBytes;   // Worst case: everything differs.
    C.GpuCoalescing = 1.0;
    C.GpuEfficiency = 0.8;
    C.CpuFlopEfficiency = 1.0;
    C.CpuMemEfficiency = 0.8;
    C.LoopTripCount = 1;
    return C;
  };
  R.add(std::move(K));
}
