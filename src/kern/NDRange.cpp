//===- kern/NDRange.cpp - NDRange and flattened work-group IDs -----------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "kern/NDRange.h"

#include "support/Error.h"

#include <cassert>

using namespace fcl;
using namespace fcl::kern;

NDRange NDRange::of1D(uint64_t Global, uint64_t Local) {
  FCL_CHECK(Global > 0 && Local > 0, "NDRange extents must be positive");
  FCL_CHECK(Global % Local == 0, "local size must divide global size");
  NDRange R;
  R.Global = Dim3{Global, 1, 1};
  R.Local = Dim3{Local, 1, 1};
  R.Dims = 1;
  return R;
}

NDRange NDRange::of2D(uint64_t GlobalX, uint64_t GlobalY, uint64_t LocalX,
                      uint64_t LocalY) {
  FCL_CHECK(GlobalX > 0 && GlobalY > 0 && LocalX > 0 && LocalY > 0,
            "NDRange extents must be positive");
  FCL_CHECK(GlobalX % LocalX == 0 && GlobalY % LocalY == 0,
            "local size must divide global size");
  NDRange R;
  R.Global = Dim3{GlobalX, GlobalY, 1};
  R.Local = Dim3{LocalX, LocalY, 1};
  R.Dims = 2;
  return R;
}

NDRange NDRange::of3D(uint64_t GlobalX, uint64_t GlobalY, uint64_t GlobalZ,
                      uint64_t LocalX, uint64_t LocalY, uint64_t LocalZ) {
  FCL_CHECK(GlobalX > 0 && GlobalY > 0 && GlobalZ > 0 && LocalX > 0 &&
                LocalY > 0 && LocalZ > 0,
            "NDRange extents must be positive");
  FCL_CHECK(GlobalX % LocalX == 0 && GlobalY % LocalY == 0 &&
                GlobalZ % LocalZ == 0,
            "local size must divide global size");
  NDRange R;
  R.Global = Dim3{GlobalX, GlobalY, GlobalZ};
  R.Local = Dim3{LocalX, LocalY, LocalZ};
  R.Dims = 3;
  return R;
}

Dim3 NDRange::numGroups() const {
  return Dim3{Global.X / Local.X, Global.Y / Local.Y, Global.Z / Local.Z};
}

uint64_t fcl::kern::flattenGroupId(const Dim3 &GroupId, const Dim3 &NumGroups) {
  assert(GroupId.X < NumGroups.X && GroupId.Y < NumGroups.Y &&
         GroupId.Z < NumGroups.Z && "group id out of range");
  return (GroupId.Z * NumGroups.Y + GroupId.Y) * NumGroups.X + GroupId.X;
}

Dim3 fcl::kern::unflattenGroupId(uint64_t Flat, const Dim3 &NumGroups) {
  assert(Flat < NumGroups.product() && "flat group id out of range");
  Dim3 Id;
  Id.X = Flat % NumGroups.X;
  uint64_t Rest = Flat / NumGroups.X;
  Id.Y = Rest % NumGroups.Y;
  Id.Z = Rest / NumGroups.Y;
  return Id;
}

SliceLaunch fcl::kern::computeSlice(const NDRange &Range, uint64_t StartFlat,
                                    uint64_t EndFlat) {
  Dim3 Groups = Range.numGroups();
  FCL_CHECK(StartFlat < EndFlat, "empty slice");
  FCL_CHECK(EndFlat <= Groups.product(), "slice exceeds NDRange");

  SliceLaunch Slice;
  Slice.StartFlat = StartFlat;
  Slice.EndFlat = EndFlat;

  if (Range.dims() == 1) {
    Slice.GroupOffset = Dim3{StartFlat, 0, 0};
    Slice.GroupCount = Dim3{EndFlat - StartFlat, 1, 1};
    return Slice;
  }

  // For N-D ranges, launch whole X-rows (2-D) or XY-planes' rows (3-D)
  // covering the interval; work-groups outside [StartFlat, EndFlat) skip
  // execution on the device (paper Figure 10).
  uint64_t RowLen = Groups.X;
  uint64_t FirstRow = StartFlat / RowLen;
  uint64_t LastRow = (EndFlat - 1) / RowLen; // Row index of last active WG.
  if (Range.dims() == 2) {
    Slice.GroupOffset = Dim3{0, FirstRow, 0};
    Slice.GroupCount = Dim3{RowLen, LastRow - FirstRow + 1, 1};
    return Slice;
  }

  // 3-D: rows are indexed by (Z * NumY + Y); convert the covered row span
  // back to whole planes when it crosses a plane boundary.
  uint64_t RowsPerPlane = Groups.Y;
  uint64_t FirstPlane = FirstRow / RowsPerPlane;
  uint64_t LastPlane = LastRow / RowsPerPlane;
  if (FirstPlane == LastPlane) {
    Slice.GroupOffset = Dim3{0, FirstRow % RowsPerPlane, FirstPlane};
    Slice.GroupCount =
        Dim3{RowLen, LastRow - FirstRow + 1, 1};
    return Slice;
  }
  Slice.GroupOffset = Dim3{0, 0, FirstPlane};
  Slice.GroupCount = Dim3{RowLen, RowsPerPlane, LastPlane - FirstPlane + 1};
  return Slice;
}
