//===- kern/Registry.h - Kernel registry ------------------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name -> KernelInfo registry. Stands in for OpenCL program compilation:
/// mcl::Program::build looks kernels up here, the way clBuildProgram
/// produces kernels from source in a real OpenCL stack.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_KERN_REGISTRY_H
#define FCL_KERN_REGISTRY_H

#include "kern/Kernel.h"

#include <map>
#include <string>
#include <vector>

namespace fcl {
namespace kern {

/// Holds registered kernels by name.
class Registry {
public:
  /// Registers \p Info; the name must be unused.
  void add(KernelInfo Info);

  /// Looks a kernel up; returns nullptr if absent.
  const KernelInfo *find(const std::string &Name) const;

  /// Looks a kernel up; aborts if absent.
  const KernelInfo &get(const std::string &Name) const;

  size_t size() const { return Kernels.size(); }

  /// Names of every registered kernel, lexicographically sorted.
  std::vector<std::string> names() const;

  /// The process-wide registry preloaded with every built-in kernel
  /// (Polybench suite, merge kernel, vector demo kernels). Lazily
  /// initialized on first use; no static constructors.
  static Registry &builtin();

private:
  std::map<std::string, KernelInfo> Kernels;
};

// Registration hooks, one per kernel family (called by Registry::builtin).
void registerAtaxKernels(Registry &R);
void registerBicgKernels(Registry &R);
void registerCorrKernels(Registry &R);
void registerGesummvKernels(Registry &R);
void registerSyrkKernels(Registry &R);
void registerSyr2kKernels(Registry &R);
void registerMvtKernels(Registry &R);
void registerGemmKernels(Registry &R);
void registerJacobiKernels(Registry &R);
void registerCovarKernels(Registry &R);
void registerVectorKernels(Registry &R);
void registerMergeKernel(Registry &R);

/// Bytes of buffer processed by one md_merge_kernel work-item (the merge
/// NDRange covers ceil(bytes / MergeChunkBytes) items).
extern const uint64_t MergeChunkBytes;

} // namespace kern
} // namespace fcl

#endif // FCL_KERN_REGISTRY_H
