//===- kern/polybench/Mvt.cpp - MVT (x1 += A y1, x2 += A^T y2) ------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// MVT from Polybench - an *extension* beyond the paper's six benchmarks
/// (the paper argues FluidiCL "would encourage more programs to be ported
/// to OpenCL"): two independent matrix-vector products with opposite
/// access patterns, so like BICG the kernels prefer different devices.
///
//===----------------------------------------------------------------------===//

#include "kern/polybench/PolybenchKernels.h"

using namespace fcl;
using namespace fcl::kern;
using namespace fcl::kern::poly;

void fcl::kern::registerMvtKernels(Registry &R) {
  // Kernel 1: x1[i] += sum_j A[i][j] * y1[j] (row walk).
  // Args: 0=A(In) 1=y1(In) 2=x1(InOut) 3=N.
  {
    KernelInfo K;
    K.Name = "mvt_kernel1";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::In, ArgAccess::InOut,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      const float *Y1 = Args.bufferAs<float>(1);
      float *X1 = Args.bufferAs<float>(2);
      int64_t N = Args.i64(3);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I >= N)
        return;
      float Sum = X1[I];
      for (int64_t J = 0; J < N; ++J)
        Sum += A[I * N + J] * Y1[J];
      X1[I] = Sum;
    };
    K.Cost = [](const CostQuery &Q) {
      double N = static_cast<double>(Q.Scalars[3].IntValue);
      return dotCost(N, 4 * N, /*GpuCoal=*/0.07, /*GpuEff=*/0.5,
                     /*CpuFlopEff=*/0.8, /*CpuMemEff=*/0.45);
    };
    R.add(std::move(K));
  }

  // Kernel 2: x2[i] += sum_j A[j][i] * y2[j] (column walk).
  // Args: 0=A(In) 1=y2(In) 2=x2(InOut) 3=N.
  {
    KernelInfo K;
    K.Name = "mvt_kernel2";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::In, ArgAccess::InOut,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      const float *Y2 = Args.bufferAs<float>(1);
      float *X2 = Args.bufferAs<float>(2);
      int64_t N = Args.i64(3);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I >= N)
        return;
      float Sum = X2[I];
      for (int64_t J = 0; J < N; ++J)
        Sum += A[J * N + I] * Y2[J];
      X2[I] = Sum;
    };
    K.Cost = [](const CostQuery &Q) {
      double N = static_cast<double>(Q.Scalars[3].IntValue);
      return dotCost(N, 4 * N, /*GpuCoal=*/0.9, /*GpuEff=*/0.5,
                     /*CpuFlopEff=*/0.6, /*CpuMemEff=*/0.1);
    };
    R.add(std::move(K));
  }
}
