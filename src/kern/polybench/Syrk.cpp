//===- kern/polybench/Syrk.cpp - SYRK (C = a A A^T + b C) ----------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// SYRK from Polybench: one compute-bound rank-k update kernel with one
/// work-item per C element. This is the paper's showcase of synergistic
/// execution: CPU and GPU speeds are comparable, so FluidiCL's fine-grained
/// split beats either device by ~1.4x, and the best static split shifts
/// with the input size (paper Figure 3) because the naive GPU kernel loses
/// cache efficiency as rows outgrow on-chip storage.
///
//===----------------------------------------------------------------------===//

#include "kern/polybench/PolybenchKernels.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::kern;
using namespace fcl::kern::poly;

namespace {

/// GPU ALU efficiency of the naive SYRK-style kernel: degrades once row
/// working sets exceed the (C2070-sized) L2; this is what moves the optimal
/// CPU/GPU split from ~60/40 at N=1024 to ~40/60 at N=2048 (Figure 3).
double syrkGpuEfficiency(double N) {
  return 0.035 * std::min(1.0, 1024.0 / N);
}

} // namespace

void fcl::kern::registerSyrkKernels(Registry &R) {
  // C[i][j] = beta*C[i][j] + alpha * sum_k A[i][k]*A[j][k].
  // Args: 0=A(In) 1=C(InOut) 2=alpha 3=beta 4=N 5=M.
  KernelInfo K;
  K.Name = "syrk_kernel";
  K.RowContiguousOutput = true;
  K.Args = {ArgAccess::In,     ArgAccess::InOut,  ArgAccess::Scalar,
            ArgAccess::Scalar, ArgAccess::Scalar, ArgAccess::Scalar};
  K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
    const float *A = Args.bufferAs<float>(0);
    float *C = Args.bufferAs<float>(1);
    float Alpha = static_cast<float>(Args.f64(2));
    float Beta = static_cast<float>(Args.f64(3));
    int64_t N = Args.i64(4), M = Args.i64(5);
    int64_t J = static_cast<int64_t>(Ctx.GlobalId.X);
    int64_t I = static_cast<int64_t>(Ctx.GlobalId.Y);
    if (I >= N || J >= N)
      return;
    float Sum = 0;
    for (int64_t L = 0; L < M; ++L)
      Sum += A[I * M + L] * A[J * M + L];
    C[I * N + J] = Beta * C[I * N + J] + Alpha * Sum;
  };
  K.Cost = [](const CostQuery &Q) {
    double N = static_cast<double>(Q.Scalars[4].IntValue);
    double M = static_cast<double>(Q.Scalars[5].IntValue);
    hw::WorkItemCost C;
    C.Flops = 2 * M + 2;
    // Rows are reused across the work-group; effective off-chip traffic per
    // item is small on both devices.
    C.BytesRead = 32;
    C.BytesWritten = 4;
    C.GpuCoalescing = 0.9;
    C.GpuEfficiency = syrkGpuEfficiency(N);
    C.CpuFlopEfficiency = 1.9; // Compiler vectorizes the unit-stride dot.
    C.CpuMemEfficiency = 0.9;
    C.LoopTripCount = M;
    C.NoUnrollPenalty = 1.7; // Short multiply-add body suffers most.
    // The FluidiCL-transformed kernel happens to cache better on the GPU
    // (observed in the paper for SYRK, section 9.1).
    C.GpuModifiedKernelBonus = 1.3;
    return C;
  };
  R.add(std::move(K));
}
