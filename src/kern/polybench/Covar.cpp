//===- kern/polybench/Covar.cpp - COVAR (covariance matrix) ---------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// COVAR from Polybench - an extension workload. Structurally CORR's
/// sibling: a column-mean kernel, a mean-subtraction kernel, and a
/// dominant pairwise-product kernel over the centered data (no
/// normalization step). Gives the suite a second multi-kernel,
/// GPU-leaning application with a different kernel count.
///
//===----------------------------------------------------------------------===//

#include "kern/polybench/PolybenchKernels.h"

using namespace fcl;
using namespace fcl::kern;
using namespace fcl::kern::poly;

void fcl::kern::registerCovarKernels(Registry &R) {
  // Kernel 1: mean[j] = sum_i data[i][j] / N.
  // Args: 0=data(In) 1=mean(Out) 2=N 3=M.
  {
    KernelInfo K;
    K.Name = "covar_mean_kernel";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *Data = Args.bufferAs<float>(0);
      float *Mean = Args.bufferAs<float>(1);
      int64_t N = Args.i64(2), M = Args.i64(3);
      int64_t J = static_cast<int64_t>(Ctx.GlobalId.X);
      if (J >= M)
        return;
      float Sum = 0;
      for (int64_t I = 0; I < N; ++I)
        Sum += Data[I * M + J];
      Mean[J] = Sum / static_cast<float>(N);
    };
    K.Cost = [](const CostQuery &Q) {
      double N = static_cast<double>(Q.Scalars[2].IntValue);
      return dotCost(N, 4 * N, /*GpuCoal=*/0.9, /*GpuEff=*/0.5,
                     /*CpuFlopEff=*/0.6, /*CpuMemEff=*/0.1);
    };
    R.add(std::move(K));
  }

  // Kernel 2: data[i][j] -= mean[j].
  // Args: 0=data(InOut) 1=mean(In) 2=N 3=M.
  {
    KernelInfo K;
    K.Name = "covar_center_kernel";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::InOut, ArgAccess::In, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      float *Data = Args.bufferAs<float>(0);
      const float *Mean = Args.bufferAs<float>(1);
      int64_t N = Args.i64(2), M = Args.i64(3);
      int64_t J = static_cast<int64_t>(Ctx.GlobalId.X);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.Y);
      if (I >= N || J >= M)
        return;
      Data[I * M + J] -= Mean[J];
    };
    K.Cost = [](const CostQuery &) {
      hw::WorkItemCost C;
      C.Flops = 1;
      C.BytesRead = 4;
      C.BytesWritten = 4;
      C.GpuCoalescing = 0.9;
      C.GpuEfficiency = 0.4;
      C.CpuFlopEfficiency = 0.8;
      C.CpuMemEfficiency = 0.6;
      return C;
    };
    R.add(std::move(K));
  }

  // Kernel 3 (dominant): cov[j1][j2] = sum_i data[i][j1]*data[i][j2]/(N-1),
  // symmetric, one item per (j1 <= j2) pair (the j2 < j1 items bail out).
  // Args: 0=data(In) 1=cov(Out) 2=N 3=M.
  {
    KernelInfo K;
    K.Name = "covar_cov_kernel";
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *Data = Args.bufferAs<float>(0);
      float *Cov = Args.bufferAs<float>(1);
      int64_t N = Args.i64(2), M = Args.i64(3);
      int64_t J2 = static_cast<int64_t>(Ctx.GlobalId.X);
      int64_t J1 = static_cast<int64_t>(Ctx.GlobalId.Y);
      if (J1 >= M || J2 >= M || J2 < J1)
        return;
      float Sum = 0;
      for (int64_t I = 0; I < N; ++I)
        Sum += Data[I * M + J1] * Data[I * M + J2];
      Sum /= static_cast<float>(N - 1);
      Cov[J1 * M + J2] = Sum;
      Cov[J2 * M + J1] = Sum;
    };
    K.Cost = [](const CostQuery &Q) {
      double N = static_cast<double>(Q.Scalars[2].IntValue);
      hw::WorkItemCost C;
      C.Flops = N;
      C.BytesRead = 24;
      C.BytesWritten = 4;
      C.GpuCoalescing = 0.9;
      C.GpuEfficiency = 0.03; // Divergent triangular space, like CORR.
      C.CpuFlopEfficiency = 0.2;
      C.CpuMemEfficiency = 0.3;
      C.LoopTripCount = N;
      C.NoUnrollPenalty = 1.5;
      return C;
    };
    R.add(std::move(K));
  }
}
