//===- kern/polybench/Bicg.cpp - BICG kernels (q = A p, s = A^T r) -------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// BICG from Polybench: the paper's Table 1 example of an application whose
/// two kernels each run faster on a *different* device - kernel 1 (row walk)
/// prefers the CPU, kernel 2 (column walk) prefers the GPU - so cooperative
/// execution with automatic data management beats any single device.
///
//===----------------------------------------------------------------------===//

#include "kern/polybench/PolybenchKernels.h"

using namespace fcl;
using namespace fcl::kern;
using namespace fcl::kern::poly;

void fcl::kern::registerBicgKernels(Registry &R) {
  // Kernel 1: q[i] = sum_j A[i][j] * p[j].
  // Args: 0=A(In) 1=p(In) 2=q(Out) 3=NX 4=NY.
  {
    KernelInfo K;
    K.Name = "bicg_kernel1";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      const float *P = Args.bufferAs<float>(1);
      float *Q = Args.bufferAs<float>(2);
      int64_t NX = Args.i64(3), NY = Args.i64(4);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I >= NX)
        return;
      float Sum = 0;
      for (int64_t J = 0; J < NY; ++J)
        Sum += A[I * NY + J] * P[J];
      Q[I] = Sum;
    };
    K.Cost = [](const CostQuery &Q) {
      double NY = static_cast<double>(Q.Scalars[4].IntValue);
      // Row walk with very poor coalescing on the GPU: the CPU wins this
      // kernel (paper Table 1, BICGKernel1).
      return dotCost(NY, 4 * NY, /*GpuCoal=*/0.05, /*GpuEff=*/0.5,
                     /*CpuFlopEff=*/0.8, /*CpuMemEff=*/0.5);
    };
    R.add(std::move(K));
  }

  // Kernel 2: s[j] = sum_i A[i][j] * r[i].
  // Args: 0=A(In) 1=r(In) 2=s(Out) 3=NX 4=NY.
  {
    KernelInfo K;
    K.Name = "bicg_kernel2";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      const float *RVec = Args.bufferAs<float>(1);
      float *S = Args.bufferAs<float>(2);
      int64_t NX = Args.i64(3), NY = Args.i64(4);
      int64_t J = static_cast<int64_t>(Ctx.GlobalId.X);
      if (J >= NY)
        return;
      float Sum = 0;
      for (int64_t I = 0; I < NX; ++I)
        Sum += A[I * NY + J] * RVec[I];
      S[J] = Sum;
    };
    K.Cost = [](const CostQuery &Q) {
      double NX = static_cast<double>(Q.Scalars[3].IntValue);
      // Column walk: the GPU wins this kernel (paper Table 1, BICGKernel2).
      return dotCost(NX, 4 * NX, /*GpuCoal=*/0.9, /*GpuEff=*/0.5,
                     /*CpuFlopEff=*/0.6, /*CpuMemEff=*/0.18);
    };
    R.add(std::move(K));
  }
}
