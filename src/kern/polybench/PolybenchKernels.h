//===- kern/polybench/PolybenchKernels.h - Shared kernel helpers -*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the Polybench kernel implementations. Each kernel is
/// the straightforward data-parallel form of the Polybench/GPU OpenCL code
/// (one work-item per output element, row-major float matrices), with a
/// cost descriptor calibrated to reproduce the CPU/GPU affinity the paper
/// reports for the corresponding benchmark:
///
///  * Row-walking dot products (ATAX k1, BICG k1, GESUMMV) are cache
///    friendly on the CPU but poorly coalesced on the GPU.
///  * Column-walking dot products (ATAX k2, BICG k2, CORR mean/std) are
///    perfectly coalesced on the GPU but cache hostile on the CPU.
///  * O(N) register-blocked dots over cached rows (SYRK, SYR2K, CORR corr)
///    are compute bound on both devices; the naive GPU kernel loses cache
///    efficiency as rows outgrow the L2, which moves the optimal CPU/GPU
///    split with input size (paper Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_KERN_POLYBENCH_POLYBENCHKERNELS_H
#define FCL_KERN_POLYBENCH_POLYBENCHKERNELS_H

#include "kern/Kernel.h"
#include "kern/Registry.h"

namespace fcl {
namespace kern {
namespace poly {

/// Work-group sizes used by all Polybench launches in this reproduction.
inline constexpr uint64_t WgSize1D = 32;
inline constexpr uint64_t WgSizeX2D = 32;
inline constexpr uint64_t WgSizeY2D = 8;

/// Builds a cost descriptor for a dot-product kernel whose work-item loops
/// \p Trip times reading \p BytesPerItem of effective off-chip traffic.
hw::WorkItemCost dotCost(double Trip, double BytesPerItem, double GpuCoal,
                         double GpuEff, double CpuFlopEff, double CpuMemEff);

} // namespace poly
} // namespace kern
} // namespace fcl

#endif // FCL_KERN_POLYBENCH_POLYBENCHKERNELS_H
