//===- kern/polybench/Jacobi.cpp - 2-D Jacobi stencil kernel --------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A 2-D Jacobi relaxation step (out = average of the four neighbours,
/// boundary rows/columns copied through) - the building block of the
/// iterative-solver example. Stencils are the classic "many medium-sized
/// kernels in a loop" pattern the paper's intro motivates: every iteration
/// is one kernel, buffers ping-pong, and coherent data must follow the
/// work across devices each time.
///
//===----------------------------------------------------------------------===//

#include "kern/polybench/PolybenchKernels.h"

using namespace fcl;
using namespace fcl::kern;
using namespace fcl::kern::poly;

void fcl::kern::registerJacobiKernels(Registry &R) {
  // out[i][j] = 0.25*(in[i-1][j] + in[i+1][j] + in[i][j-1] + in[i][j+1])
  // for interior points; boundary points copy through.
  // Args: 0=in(In) 1=out(Out) 2=N.
  KernelInfo K;
  K.Name = "jacobi2d_kernel";
  K.RowContiguousOutput = true;
  K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar};
  K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
    const float *In = Args.bufferAs<float>(0);
    float *Out = Args.bufferAs<float>(1);
    int64_t N = Args.i64(2);
    int64_t J = static_cast<int64_t>(Ctx.GlobalId.X);
    int64_t I = static_cast<int64_t>(Ctx.GlobalId.Y);
    if (I >= N || J >= N)
      return;
    if (I == 0 || J == 0 || I == N - 1 || J == N - 1) {
      Out[I * N + J] = In[I * N + J];
      return;
    }
    Out[I * N + J] = 0.25f * (In[(I - 1) * N + J] + In[(I + 1) * N + J] +
                              In[I * N + J - 1] + In[I * N + J + 1]);
  };
  K.Cost = [](const CostQuery &) {
    hw::WorkItemCost C;
    C.Flops = 4;
    // Vertical neighbours stream from memory; horizontal ones hit cache.
    C.BytesRead = 12;
    C.BytesWritten = 4;
    C.GpuCoalescing = 0.85;
    C.GpuEfficiency = 0.5;
    C.CpuFlopEfficiency = 1.0;
    C.CpuMemEfficiency = 0.55;
    C.LoopTripCount = 1;
    return C;
  };
  R.add(std::move(K));
}
