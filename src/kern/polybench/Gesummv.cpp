//===- kern/polybench/Gesummv.cpp - GESUMMV (y = aAx + bBx) --------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// GESUMMV from Polybench: a single scalar-vector-matrix kernel that runs
/// best on the CPU alone in the paper's evaluation (the GPU loses to the
/// host-to-device transfer of the two matrices); FluidiCL matches the CPU.
///
//===----------------------------------------------------------------------===//

#include "kern/polybench/PolybenchKernels.h"

using namespace fcl;
using namespace fcl::kern;
using namespace fcl::kern::poly;

void fcl::kern::registerGesummvKernels(Registry &R) {
  // y[i] = alpha * sum_j A[i][j]x[j] + beta * sum_j B[i][j]x[j].
  // Args: 0=A(In) 1=B(In) 2=x(In) 3=y(Out) 4=alpha 5=beta 6=N.
  KernelInfo K;
  K.Name = "gesummv_kernel";
  K.RowContiguousOutput = true;
  K.Args = {ArgAccess::In,     ArgAccess::In,     ArgAccess::In,
            ArgAccess::Out,    ArgAccess::Scalar, ArgAccess::Scalar,
            ArgAccess::Scalar};
  K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
    const float *A = Args.bufferAs<float>(0);
    const float *B = Args.bufferAs<float>(1);
    const float *X = Args.bufferAs<float>(2);
    float *Y = Args.bufferAs<float>(3);
    float Alpha = static_cast<float>(Args.f64(4));
    float Beta = static_cast<float>(Args.f64(5));
    int64_t N = Args.i64(6);
    int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
    if (I >= N)
      return;
    float SumA = 0, SumB = 0;
    for (int64_t J = 0; J < N; ++J) {
      SumA += A[I * N + J] * X[J];
      SumB += B[I * N + J] * X[J];
    }
    Y[I] = Alpha * SumA + Beta * SumB;
  };
  K.Cost = [](const CostQuery &Q) {
    double N = static_cast<double>(Q.Scalars[6].IntValue);
    // Two row walks per item; double traffic and double flops.
    hw::WorkItemCost C = dotCost(2 * N, 8 * N, /*GpuCoal=*/0.025,
                                 /*GpuEff=*/0.5, /*CpuFlopEff=*/0.9,
                                 /*CpuMemEff=*/0.5);
    return C;
  };
  R.add(std::move(K));
}
