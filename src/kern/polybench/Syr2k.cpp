//===- kern/polybench/Syr2k.cpp - SYR2K (C = aAB^T + aBA^T + bC) ---------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// SYR2K from Polybench: the second rank-2k update benchmark in the paper's
/// suite (Table 2 lists it with a different input size than SYRK). Like
/// SYRK it is compute bound with comparable CPU/GPU speeds, so cooperative
/// execution wins over the best single device.
///
//===----------------------------------------------------------------------===//

#include "kern/polybench/PolybenchKernels.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::kern;
using namespace fcl::kern::poly;

void fcl::kern::registerSyr2kKernels(Registry &R) {
  // C[i][j] = beta*C[i][j] + alpha * sum_k (A[i][k]B[j][k] + B[i][k]A[j][k]).
  // Args: 0=A(In) 1=B(In) 2=C(InOut) 3=alpha 4=beta 5=N 6=M.
  KernelInfo K;
  K.Name = "syr2k_kernel";
  K.RowContiguousOutput = true;
  K.Args = {ArgAccess::In,     ArgAccess::In,     ArgAccess::InOut,
            ArgAccess::Scalar, ArgAccess::Scalar, ArgAccess::Scalar,
            ArgAccess::Scalar};
  K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
    const float *A = Args.bufferAs<float>(0);
    const float *B = Args.bufferAs<float>(1);
    float *C = Args.bufferAs<float>(2);
    float Alpha = static_cast<float>(Args.f64(3));
    float Beta = static_cast<float>(Args.f64(4));
    int64_t N = Args.i64(5), M = Args.i64(6);
    int64_t J = static_cast<int64_t>(Ctx.GlobalId.X);
    int64_t I = static_cast<int64_t>(Ctx.GlobalId.Y);
    if (I >= N || J >= N)
      return;
    float Sum = 0;
    for (int64_t L = 0; L < M; ++L)
      Sum += A[I * M + L] * B[J * M + L] + B[I * M + L] * A[J * M + L];
    C[I * N + J] = Beta * C[I * N + J] + Alpha * Sum;
  };
  K.Cost = [](const CostQuery &Q) {
    double N = static_cast<double>(Q.Scalars[5].IntValue);
    double M = static_cast<double>(Q.Scalars[6].IntValue);
    hw::WorkItemCost C;
    C.Flops = 4 * M + 2;
    C.BytesRead = 64;
    C.BytesWritten = 4;
    C.GpuCoalescing = 0.9;
    // Twice the register pressure of SYRK lowers occupancy a little on top
    // of the same cache-capacity effect.
    C.GpuEfficiency = 0.032 * std::min(1.0, 1024.0 / N);
    C.CpuFlopEfficiency = 1.1;
    C.CpuMemEfficiency = 0.9;
    C.LoopTripCount = M;
    C.NoUnrollPenalty = 1.6;
    C.GpuModifiedKernelBonus = 1.25;
    return C;
  };
  R.add(std::move(K));
}
