//===- kern/polybench/Gemm.cpp - GEMM and 2MM kernels ----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// GEMM (C = alpha A B + beta C) from Polybench - an extension beyond the
/// paper's six benchmarks. One work-item per C element with a K-long
/// inner product; B is accessed column-wise per item but adjacent items
/// read adjacent B elements, so the GPU coalesces well while the CPU pays
/// for B's stride. 2MM chains two of these through an intermediate buffer,
/// exercising FluidiCL's inter-kernel version tracking.
///
//===----------------------------------------------------------------------===//

#include "kern/polybench/PolybenchKernels.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::kern;
using namespace fcl::kern::poly;

void fcl::kern::registerGemmKernels(Registry &R) {
  // C[i][j] = beta*C[i][j] + alpha * sum_k A[i][k]*B[k][j].
  // Args: 0=A(In) 1=B(In) 2=C(InOut) 3=alpha 4=beta 5=NI 6=NJ 7=NK.
  KernelInfo K;
  K.Name = "gemm_kernel";
  K.RowContiguousOutput = true;
  K.Args = {ArgAccess::In,     ArgAccess::In,     ArgAccess::InOut,
            ArgAccess::Scalar, ArgAccess::Scalar, ArgAccess::Scalar,
            ArgAccess::Scalar, ArgAccess::Scalar};
  K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
    const float *A = Args.bufferAs<float>(0);
    const float *B = Args.bufferAs<float>(1);
    float *C = Args.bufferAs<float>(2);
    float Alpha = static_cast<float>(Args.f64(3));
    float Beta = static_cast<float>(Args.f64(4));
    int64_t NI = Args.i64(5), NJ = Args.i64(6), NK = Args.i64(7);
    int64_t J = static_cast<int64_t>(Ctx.GlobalId.X);
    int64_t I = static_cast<int64_t>(Ctx.GlobalId.Y);
    if (I >= NI || J >= NJ)
      return;
    float Sum = 0;
    for (int64_t L = 0; L < NK; ++L)
      Sum += A[I * NK + L] * B[L * NJ + J];
    C[I * NJ + J] = Beta * C[I * NJ + J] + Alpha * Sum;
  };
  K.Cost = [](const CostQuery &Q) {
    double NK = static_cast<double>(Q.Scalars[7].IntValue);
    hw::WorkItemCost C;
    C.Flops = 2 * NK + 2;
    C.BytesRead = 48; // A row cached; B streamed column-of-the-tile.
    C.BytesWritten = 4;
    C.GpuCoalescing = 0.9;
    // Regular access keeps the naive GPU kernel a bit more efficient than
    // SYRK's, with the same cache-capacity falloff at large K.
    C.GpuEfficiency = 0.05 * std::min(1.0, 1024.0 / NK);
    C.CpuFlopEfficiency = 1.0; // B's stride defeats CPU vectorization.
    C.CpuMemEfficiency = 0.5;
    C.LoopTripCount = NK;
    C.NoUnrollPenalty = 1.6;
    C.GpuModifiedKernelBonus = 1.1;
    return C;
  };
  R.add(std::move(K));
}
