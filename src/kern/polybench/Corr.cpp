//===- kern/polybench/Corr.cpp - CORR (correlation matrix) ---------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// CORR from Polybench: four kernels (column means, column standard
/// deviations, centering, and the pairwise correlation matrix). The
/// correlation kernel dominates and prefers the GPU with the baseline
/// (GPU-oriented) code. The paper's section 6.6 / Table 3 experiment gives
/// FluidiCL a hand-optimized CPU variant of that kernel (loops interchanged
/// for cache locality) and shows online profiling picking it automatically;
/// we register "corr_corr_kernel_cpuopt" as that variant - functionally
/// identical, different cost profile.
///
//===----------------------------------------------------------------------===//

#include "kern/polybench/PolybenchKernels.h"

#include <cmath>

using namespace fcl;
using namespace fcl::kern;
using namespace fcl::kern::poly;

namespace {

/// Shared body of the correlation kernel (both variants compute exactly
/// this). One work-item per (J1, J2) pair; J2 < J1 pairs are skipped (the
/// symmetric element is written by the J2 <= J1 item).
void corrBody(const ItemCtx &Ctx, const ArgsView &Args) {
  const float *Data = Args.bufferAs<float>(0);
  float *Corr = Args.bufferAs<float>(1);
  int64_t N = Args.i64(2), M = Args.i64(3);
  int64_t J2 = static_cast<int64_t>(Ctx.GlobalId.X);
  int64_t J1 = static_cast<int64_t>(Ctx.GlobalId.Y);
  if (J1 >= M || J2 >= M || J2 < J1)
    return;
  if (J1 == J2) {
    Corr[J1 * M + J1] = 1.0f;
    return;
  }
  float Sum = 0;
  for (int64_t I = 0; I < N; ++I)
    Sum += Data[I * M + J1] * Data[I * M + J2];
  Corr[J1 * M + J2] = Sum;
  Corr[J2 * M + J1] = Sum;
}

} // namespace

void fcl::kern::registerCorrKernels(Registry &R) {
  // Kernel 1: mean[j] = sum_i data[i][j] / N.
  // Args: 0=data(In) 1=mean(Out) 2=N 3=M.
  {
    KernelInfo K;
    K.Name = "corr_mean_kernel";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *Data = Args.bufferAs<float>(0);
      float *Mean = Args.bufferAs<float>(1);
      int64_t N = Args.i64(2), M = Args.i64(3);
      int64_t J = static_cast<int64_t>(Ctx.GlobalId.X);
      if (J >= M)
        return;
      float Sum = 0;
      for (int64_t I = 0; I < N; ++I)
        Sum += Data[I * M + J];
      Mean[J] = Sum / static_cast<float>(N);
    };
    K.Cost = [](const CostQuery &Q) {
      double N = static_cast<double>(Q.Scalars[2].IntValue);
      return dotCost(N, 4 * N, /*GpuCoal=*/0.9, /*GpuEff=*/0.5,
                     /*CpuFlopEff=*/0.6, /*CpuMemEff=*/0.1);
    };
    R.add(std::move(K));
  }

  // Kernel 2: std[j] = sqrt(sum_i (data[i][j]-mean[j])^2 / N), flushed to 1
  // when tiny (Polybench convention so centering never divides by ~0).
  // Args: 0=data(In) 1=mean(In) 2=std(Out) 3=N 4=M.
  {
    KernelInfo K;
    K.Name = "corr_std_kernel";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *Data = Args.bufferAs<float>(0);
      const float *Mean = Args.bufferAs<float>(1);
      float *Std = Args.bufferAs<float>(2);
      int64_t N = Args.i64(3), M = Args.i64(4);
      int64_t J = static_cast<int64_t>(Ctx.GlobalId.X);
      if (J >= M)
        return;
      float Sum = 0;
      for (int64_t I = 0; I < N; ++I) {
        float D = Data[I * M + J] - Mean[J];
        Sum += D * D;
      }
      float Var = Sum / static_cast<float>(N);
      float S = std::sqrt(Var);
      Std[J] = S <= 0.1f ? 1.0f : S;
    };
    K.Cost = [](const CostQuery &Q) {
      double N = static_cast<double>(Q.Scalars[3].IntValue);
      return dotCost(N, 4 * N, /*GpuCoal=*/0.9, /*GpuEff=*/0.5,
                     /*CpuFlopEff=*/0.6, /*CpuMemEff=*/0.1);
    };
    R.add(std::move(K));
  }

  // Kernel 3: data[i][j] = (data[i][j] - mean[j]) / (sqrt(N)*std[j]).
  // Args: 0=data(InOut) 1=mean(In) 2=std(In) 3=N 4=M.
  {
    KernelInfo K;
    K.Name = "corr_center_kernel";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::InOut, ArgAccess::In, ArgAccess::In,
              ArgAccess::Scalar, ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      float *Data = Args.bufferAs<float>(0);
      const float *Mean = Args.bufferAs<float>(1);
      const float *Std = Args.bufferAs<float>(2);
      int64_t N = Args.i64(3), M = Args.i64(4);
      int64_t J = static_cast<int64_t>(Ctx.GlobalId.X);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.Y);
      if (I >= N || J >= M)
        return;
      Data[I * M + J] =
          (Data[I * M + J] - Mean[J]) /
          (std::sqrt(static_cast<float>(N)) * Std[J]);
    };
    K.Cost = [](const CostQuery &) {
      hw::WorkItemCost C;
      C.Flops = 3;
      C.BytesRead = 4;
      C.BytesWritten = 4;
      C.GpuCoalescing = 0.9;
      C.GpuEfficiency = 0.4;
      C.CpuFlopEfficiency = 0.8;
      C.CpuMemEfficiency = 0.6;
      C.LoopTripCount = 1;
      return C;
    };
    R.add(std::move(K));
  }

  // Kernel 4 (dominant): corr[j1][j2] = dot of centered columns j1, j2.
  // Args: 0=data(In) 1=corr(Out) 2=N 3=M.
  {
    KernelInfo K;
    K.Name = "corr_corr_kernel";
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = corrBody;
    K.Cost = [](const CostQuery &Q) {
      double N = static_cast<double>(Q.Scalars[2].IntValue);
      hw::WorkItemCost C;
      // Half of the (J1, J2) items bail out early: ~N flops on average.
      C.Flops = N;
      C.BytesRead = 24;
      C.BytesWritten = 4;
      C.GpuCoalescing = 0.9;
      C.GpuEfficiency = 0.03; // Divergent triangular iteration space.
      // Baseline (GPU-oriented) code walks columns: scalar + cache hostile
      // on the CPU.
      C.CpuFlopEfficiency = 0.2;
      C.CpuMemEfficiency = 0.3;
      C.LoopTripCount = N;
      C.NoUnrollPenalty = 1.5;
      return C;
    };
    K.Variants = {"corr_corr_kernel_cpuopt"};
    R.add(std::move(K));
  }

  // Hand-optimized CPU variant of kernel 4 (loops interchanged for cache
  // locality, as in the paper's Table 3 experiment). Same output.
  {
    KernelInfo K;
    K.Name = "corr_corr_kernel_cpuopt";
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = corrBody;
    K.Cost = [](const CostQuery &Q) {
      double N = static_cast<double>(Q.Scalars[2].IntValue);
      hw::WorkItemCost C;
      C.Flops = N;
      C.BytesRead = 24;
      C.BytesWritten = 4;
      // Interchanged loops hurt the GPU (uncoalesced) but vectorize and
      // cache beautifully on the CPU.
      C.GpuCoalescing = 0.15;
      C.GpuEfficiency = 0.01;
      C.CpuFlopEfficiency = 3.0;
      C.CpuMemEfficiency = 0.9;
      C.LoopTripCount = N;
      C.NoUnrollPenalty = 1.2;
      return C;
    };
    R.add(std::move(K));
  }
}
