//===- kern/polybench/Vector.cpp - Demo/test vector kernels ---------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Small vector kernels used by the quickstart example and the unit tests:
/// vector add, SAXPY, scale, and a barrier-using block-sum reduction that
/// exercises local memory + the barrier-phase machinery (and therefore the
/// CPU work-group-splitting barrier replacement of paper section 6.3).
///
//===----------------------------------------------------------------------===//

#include "kern/polybench/PolybenchKernels.h"

using namespace fcl;
using namespace fcl::kern;

namespace {

hw::WorkItemCost streamCost(double Flops, double Bytes) {
  hw::WorkItemCost C;
  C.Flops = Flops;
  C.BytesRead = Bytes;
  C.BytesWritten = 4;
  C.GpuCoalescing = 0.9;
  C.GpuEfficiency = 0.5;
  C.CpuFlopEfficiency = 1.0;
  C.CpuMemEfficiency = 0.7;
  C.LoopTripCount = 1;
  return C;
}

} // namespace

void fcl::kern::registerVectorKernels(Registry &R) {
  // c[i] = a[i] + b[i].  Args: 0=a(In) 1=b(In) 2=c(Out) 3=n.
  {
    KernelInfo K;
    K.Name = "vec_add";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      const float *B = Args.bufferAs<float>(1);
      float *C = Args.bufferAs<float>(2);
      int64_t N = Args.i64(3);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I < N)
        C[I] = A[I] + B[I];
    };
    K.Cost = [](const CostQuery &) { return streamCost(1, 8); };
    R.add(std::move(K));
  }

  // y[i] = alpha*x[i] + y[i].  Args: 0=x(In) 1=y(InOut) 2=alpha 3=n.
  {
    KernelInfo K;
    K.Name = "saxpy";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::InOut, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *X = Args.bufferAs<float>(0);
      float *Y = Args.bufferAs<float>(1);
      float Alpha = static_cast<float>(Args.f64(2));
      int64_t N = Args.i64(3);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I < N)
        Y[I] = Alpha * X[I] + Y[I];
    };
    K.Cost = [](const CostQuery &) { return streamCost(2, 8); };
    R.add(std::move(K));
  }

  // y[i] = alpha*x[i].  Args: 0=x(In) 1=y(Out) 2=alpha 3=n.
  {
    KernelInfo K;
    K.Name = "vec_scale";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *X = Args.bufferAs<float>(0);
      float *Y = Args.bufferAs<float>(1);
      float Alpha = static_cast<float>(Args.f64(2));
      int64_t N = Args.i64(3);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I < N)
        Y[I] = Alpha * X[I];
    };
    K.Cost = [](const CostQuery &) { return streamCost(1, 4); };
    R.add(std::move(K));
  }

  // Histogram with atomic increments: FluidiCL cannot split kernels that
  // use atomics across devices (paper section 7), so this kernel triggers
  // the GPU-only fallback. Args: 0=x(In) 1=hist(InOut) 2=n 3=bins.
  {
    KernelInfo K;
    K.Name = "histogram_atomic";
    K.UsesAtomics = true;
    K.Args = {ArgAccess::In, ArgAccess::InOut, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *X = Args.bufferAs<float>(0);
      float *Hist = Args.bufferAs<float>(1);
      int64_t N = Args.i64(2), Bins = Args.i64(3);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I >= N)
        return;
      int64_t Bin = static_cast<int64_t>(X[I] * static_cast<float>(Bins));
      if (Bin >= Bins)
        Bin = Bins - 1;
      if (Bin < 0)
        Bin = 0;
      // Executed sequentially per device in the simulator, so the plain
      // add stands in for atomic_add.
      Hist[Bin] += 1.0f;
    };
    K.Cost = [](const CostQuery &) { return streamCost(4, 8); };
    R.add(std::move(K));
  }

  // Barrier-based per-work-group reduction:
  //   phase 0: local[lid] = x[gid]
  //   phase 1 (after barrier): lid 0 sums local into partial[group].
  // Args: 0=x(In) 1=partial(Out) 2=n.
  {
    KernelInfo K;
    K.Name = "block_sum";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar};
    K.NumPhases = 2;
    K.LocalBytes = 1024 * sizeof(float); // Upper bound on local size.
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *X = Args.bufferAs<float>(0);
      float *Partial = Args.bufferAs<float>(1);
      int64_t N = Args.i64(2);
      float *Local = reinterpret_cast<float *>(Ctx.Local);
      uint64_t Lid = Ctx.LocalId.X;
      int64_t Gid = static_cast<int64_t>(Ctx.GlobalId.X);
      if (Ctx.Phase == 0) {
        Local[Lid] = Gid < N ? X[Gid] : 0.0f;
        return;
      }
      if (Lid != 0)
        return;
      float Sum = 0;
      for (uint64_t I = 0; I < Ctx.LocalSize.X; ++I)
        Sum += Local[I];
      Partial[Ctx.flatGroupId()] = Sum;
    };
    K.Cost = [](const CostQuery &) { return streamCost(2, 4); };
    R.add(std::move(K));
  }
}
