//===- kern/polybench/Atax.cpp - ATAX kernels (y = A^T (A x)) ------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// ATAX from Polybench: two kernels. Kernel 1 computes tmp = A*x (one
/// work-item per row, row-major walk). Kernel 2 computes y = A^T*tmp (one
/// work-item per column, column walk). In the paper's evaluation ATAX runs
/// best on the GPU alone; FluidiCL matches the GPU.
///
//===----------------------------------------------------------------------===//

#include "kern/polybench/PolybenchKernels.h"

using namespace fcl;
using namespace fcl::kern;
using namespace fcl::kern::poly;

hw::WorkItemCost fcl::kern::poly::dotCost(double Trip, double BytesPerItem,
                                          double GpuCoal, double GpuEff,
                                          double CpuFlopEff,
                                          double CpuMemEff) {
  hw::WorkItemCost C;
  C.Flops = 2 * Trip;
  C.BytesRead = BytesPerItem;
  C.BytesWritten = sizeof(float);
  C.GpuCoalescing = GpuCoal;
  C.GpuEfficiency = GpuEff;
  C.CpuFlopEfficiency = CpuFlopEff;
  C.CpuMemEfficiency = CpuMemEff;
  C.LoopTripCount = Trip;
  C.NoUnrollPenalty = 1.6;
  return C;
}

void fcl::kern::registerAtaxKernels(Registry &R) {
  // Kernel 1: tmp[i] = sum_j A[i][j] * x[j].
  // Args: 0=A(In) 1=x(In) 2=tmp(Out) 3=NX 4=NY.
  {
    KernelInfo K;
    K.Name = "atax_kernel1";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      const float *X = Args.bufferAs<float>(1);
      float *Tmp = Args.bufferAs<float>(2);
      int64_t NX = Args.i64(3), NY = Args.i64(4);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I >= NX)
        return;
      float Sum = 0;
      for (int64_t J = 0; J < NY; ++J)
        Sum += A[I * NY + J] * X[J];
      Tmp[I] = Sum;
    };
    K.Cost = [](const CostQuery &Q) {
      double NY = static_cast<double>(Q.Scalars[4].IntValue);
      // Row walk: CPU streams rows through the cache; GPU accesses are
      // strided across the warp (poorly coalesced).
      return dotCost(NY, 4 * NY, /*GpuCoal=*/0.14, /*GpuEff=*/0.5,
                     /*CpuFlopEff=*/0.8, /*CpuMemEff=*/0.45);
    };
    R.add(std::move(K));
  }

  // Kernel 2: y[j] = sum_i A[i][j] * tmp[i].
  // Args: 0=A(In) 1=tmp(In) 2=y(Out) 3=NX 4=NY.
  {
    KernelInfo K;
    K.Name = "atax_kernel2";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      const float *Tmp = Args.bufferAs<float>(1);
      float *Y = Args.bufferAs<float>(2);
      int64_t NX = Args.i64(3), NY = Args.i64(4);
      int64_t J = static_cast<int64_t>(Ctx.GlobalId.X);
      if (J >= NY)
        return;
      float Sum = 0;
      for (int64_t I = 0; I < NX; ++I)
        Sum += A[I * NY + J] * Tmp[I];
      Y[J] = Sum;
    };
    K.Cost = [](const CostQuery &Q) {
      double NX = static_cast<double>(Q.Scalars[3].IntValue);
      // Column walk: perfectly coalesced on the GPU, cache hostile on CPU.
      return dotCost(NX, 4 * NX, /*GpuCoal=*/0.85, /*GpuEff=*/0.5,
                     /*CpuFlopEff=*/0.6, /*CpuMemEff=*/0.28);
    };
    R.add(std::move(K));
  }
}
