//===- kern/Kernel.h - Kernel descriptors and execution context -*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In this reproduction, OpenCL C kernels are represented as registered C++
/// work-item functions plus metadata: per-argument access kinds (the
/// out/inout information FluidiCL's "simple compiler analysis" extracts),
/// barrier phase structure, a per-launch cost descriptor for the timing
/// model, and optional device-optimized variants (paper section 6.6).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_KERN_KERNEL_H
#define FCL_KERN_KERNEL_H

#include "hw/CostModel.h"
#include "kern/NDRange.h"
#include "support/Error.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fcl {
namespace kern {

/// How a kernel argument is accessed. FluidiCL duplicates and merges only
/// Out/InOut buffers (paper section 4.1).
enum class ArgAccess {
  /// Read-only global buffer.
  In,
  /// Write-only global buffer.
  Out,
  /// Read-write global buffer.
  InOut,
  /// Scalar value (by value, no data management).
  Scalar,
};

/// Returns true for Out and InOut.
inline bool isWrittenAccess(ArgAccess A) {
  return A == ArgAccess::Out || A == ArgAccess::InOut;
}

/// One bound kernel argument: either a view of device memory or a scalar.
/// In TimingOnly execution buffers may have Data == nullptr.
struct ArgValue {
  std::byte *Data = nullptr;
  uint64_t Size = 0;     // Bytes, for buffers.
  int64_t IntValue = 0;  // For scalars.
  double FpValue = 0;    // For scalars.

  static ArgValue buffer(std::byte *Data, uint64_t Size) {
    ArgValue V;
    V.Data = Data;
    V.Size = Size;
    return V;
  }
  static ArgValue scalarInt(int64_t I) {
    ArgValue V;
    V.IntValue = I;
    V.FpValue = static_cast<double>(I);
    return V;
  }
  static ArgValue scalarFp(double D) {
    ArgValue V;
    V.FpValue = D;
    V.IntValue = static_cast<int64_t>(D);
    return V;
  }
};

/// The bound arguments of one kernel launch.
class ArgsView {
public:
  ArgsView() = default;
  explicit ArgsView(std::vector<ArgValue> Values) : Values(std::move(Values)) {}

  size_t size() const { return Values.size(); }
  const ArgValue &operator[](size_t I) const {
    assert(I < Values.size() && "argument index out of range");
    return Values[I];
  }

  /// Typed pointer to a buffer argument.
  template <typename T> T *bufferAs(size_t I) const {
    return reinterpret_cast<T *>((*this)[I].Data);
  }
  /// Element count of a buffer argument interpreted as T.
  template <typename T> uint64_t bufferLen(size_t I) const {
    return (*this)[I].Size / sizeof(T);
  }
  int64_t i64(size_t I) const { return (*this)[I].IntValue; }
  double f64(size_t I) const { return (*this)[I].FpValue; }

private:
  std::vector<ArgValue> Values;
};

/// Per-work-item execution context, mirroring the OpenCL built-in query
/// functions (get_global_id etc.) plus the barrier-phase index.
struct ItemCtx {
  Dim3 GlobalId;
  Dim3 LocalId;
  Dim3 GroupId;
  Dim3 LocalSize;
  Dim3 NumGroups;
  /// Barrier phase being executed (0 for barrier-free kernels). A kernel
  /// with NumPhases == P behaves as P barrier-separated regions; the engine
  /// runs phase p for all items of a work-group before phase p+1, which is
  /// exactly the guarantee a work-group barrier provides.
  int Phase = 0;
  /// Per-work-group local scratch (KernelInfo::LocalBytes), zeroed at
  /// work-group start.
  std::byte *Local = nullptr;

  uint64_t flatGroupId() const { return flattenGroupId(GroupId, NumGroups); }
};

/// Work-item body: executes one work-item (for one phase).
using WorkItemFn = std::function<void(const ItemCtx &, const ArgsView &)>;

/// Inputs available to a kernel's cost descriptor.
struct CostQuery {
  NDRange Range;
  std::vector<ArgValue> Scalars; // Full argument list (buffers included).
};

/// Produces the per-work-item cost for a launch.
using CostFn = std::function<hw::WorkItemCost(const CostQuery &)>;

/// A registered kernel.
struct KernelInfo {
  std::string Name;
  /// Access kind per argument, in argument order.
  std::vector<ArgAccess> Args;
  /// Barrier-separated phases (1 = no barriers).
  int NumPhases = 1;
  /// Local scratch bytes per work-group.
  uint64_t LocalBytes = 0;
  WorkItemFn Fn;
  CostFn Cost;
  /// Names of functionally-identical device-optimized variants that online
  /// profiling may choose between (paper section 6.6).
  std::vector<std::string> Variants;
  /// Kernel uses atomic primitives: FluidiCL cannot split it across
  /// devices (paper section 7) and falls back to GPU-only execution.
  bool UsesAtomics = false;
  /// A flat work-group range [a, b) writes only bytes inside the covering
  /// work-group-row band of every Out/InOut buffer (true for row-major
  /// outputs where item (x, y) writes out[y * W + x]). Enables the
  /// region-transfer extension (Options::RegionTransfers).
  bool RowContiguousOutput = false;

  /// Indices of Out/InOut buffer arguments.
  std::vector<size_t> writtenArgs() const {
    std::vector<size_t> Idx;
    for (size_t I = 0; I < Args.size(); ++I)
      if (isWrittenAccess(Args[I]))
        Idx.push_back(I);
    return Idx;
  }
};

/// Functionally executes work-items [LocalBegin, LocalEnd) (flattened local
/// IDs) of work-group \p GroupId, running all barrier phases in order.
/// \p LocalScratch must hold KernelInfo::LocalBytes bytes (may be null when
/// LocalBytes == 0). Pass [0, Range.itemsPerGroup()) for a whole group.
void executeWorkGroup(const KernelInfo &Kernel, const NDRange &Range,
                      const Dim3 &GroupId, const ArgsView &Args,
                      uint64_t LocalBegin, uint64_t LocalEnd,
                      std::byte *LocalScratch);

} // namespace kern
} // namespace fcl

#endif // FCL_KERN_KERNEL_H
