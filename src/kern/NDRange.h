//===- kern/NDRange.h - NDRange and flattened work-group IDs ---*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OpenCL-style NDRange geometry: up to three dimensions of work-items
/// organized into work-groups, plus the *flattened work-group ID* numbering
/// FluidiCL uses as its unit of work distribution (paper Figure 5) and the
/// offset calculation that turns a flat work-group interval back into an
/// N-D slice launch (paper section 5.2 / Figure 10).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_KERN_NDRANGE_H
#define FCL_KERN_NDRANGE_H

#include <cstdint>

namespace fcl {
namespace kern {

/// A 3-component extent/index. Unused dimensions are 1 (extents) or 0
/// (indices).
struct Dim3 {
  uint64_t X = 1;
  uint64_t Y = 1;
  uint64_t Z = 1;

  constexpr uint64_t product() const { return X * Y * Z; }
  constexpr bool operator==(const Dim3 &) const = default;
};

/// The index space of one kernel launch: global work-item extent and
/// work-group (local) extent per dimension. Local sizes must divide the
/// global sizes, as in OpenCL without remainder groups.
class NDRange {
public:
  NDRange() = default;

  /// 1-D range of \p Global items in groups of \p Local.
  static NDRange of1D(uint64_t Global, uint64_t Local);
  /// 2-D range; X is the fastest-varying dimension.
  static NDRange of2D(uint64_t GlobalX, uint64_t GlobalY, uint64_t LocalX,
                      uint64_t LocalY);
  /// 3-D range.
  static NDRange of3D(uint64_t GlobalX, uint64_t GlobalY, uint64_t GlobalZ,
                      uint64_t LocalX, uint64_t LocalY, uint64_t LocalZ);

  int dims() const { return Dims; }
  const Dim3 &globalSize() const { return Global; }
  const Dim3 &localSize() const { return Local; }

  /// Work-group grid extents per dimension.
  Dim3 numGroups() const;
  /// Total number of work-groups.
  uint64_t totalGroups() const { return numGroups().product(); }
  /// Work-items per work-group.
  uint64_t itemsPerGroup() const { return Local.product(); }
  /// Total number of work-items.
  uint64_t totalItems() const { return Global.product(); }

  bool operator==(const NDRange &) const = default;

private:
  Dim3 Global;
  Dim3 Local;
  int Dims = 1;
};

/// Flattens an N-D work-group ID to the 1-D numbering of paper Figure 5
/// (X fastest-varying: flat = (Z * NumY + Y) * NumX + X).
uint64_t flattenGroupId(const Dim3 &GroupId, const Dim3 &NumGroups);

/// Inverse of flattenGroupId.
Dim3 unflattenGroupId(uint64_t Flat, const Dim3 &NumGroups);

/// The slice launch computed by FluidiCL's offset calculation (section 5.2):
/// to run flat work-groups [StartFlat, EndFlat), a (possibly larger) box of
/// work-groups starting at GroupOffset with extents GroupCount is launched,
/// and work-groups outside [StartFlat, EndFlat) skip execution on-device.
struct SliceLaunch {
  Dim3 GroupOffset;
  Dim3 GroupCount;
  uint64_t StartFlat = 0;
  uint64_t EndFlat = 0;

  /// Number of work-groups that actually execute.
  uint64_t activeGroups() const { return EndFlat - StartFlat; }
  /// Number of work-groups launched (>= activeGroups for N-D ranges).
  uint64_t launchedGroups() const { return GroupCount.product(); }
};

/// Computes the slice launch covering flat work-groups [StartFlat, EndFlat)
/// of \p Range. For 1-D ranges the launch is exact; for 2-D/3-D it covers
/// whole rows/planes and relies on the on-device range check, exactly as
/// the paper's CPU subkernels do.
SliceLaunch computeSlice(const NDRange &Range, uint64_t StartFlat,
                         uint64_t EndFlat);

} // namespace kern
} // namespace fcl

#endif // FCL_KERN_NDRANGE_H
