//===- runtime/HeteroRuntime.h - Common runtime interface -------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application-facing runtime interface every experiment drives. It
/// mirrors the OpenCL host API subset FluidiCL supports (paper section 7):
/// buffer create/write/read plus blocking NDRange kernel launches. The
/// implementations are:
///
///   * runtime::SingleDeviceRuntime   - CPU-only / GPU-only baselines
///   * runtime::StaticPartitionRuntime- manual x% GPU split (Fig. 2/3,
///                                      OracleSP)
///   * fluidicl::Runtime              - the paper's contribution
///   * socl::SoclRuntime              - StarPU/SOCL-style task scheduler
///                                      (eager and dmda policies, Fig. 16)
///
/// Because every implementation runs on the same simulated mcl::Context,
/// execution times are directly comparable and deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_RUNTIME_HETERORUNTIME_H
#define FCL_RUNTIME_HETERORUNTIME_H

#include "kern/NDRange.h"
#include "mcl/Context.h"
#include "stats/Registry.h"
#include "stats/Report.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fcl {
namespace runtime {

/// Application-level handle to a runtime-managed buffer.
using BufferId = uint32_t;

/// Application-level kernel argument: a BufferId or a scalar.
struct KArg {
  bool IsBuffer = false;
  BufferId Buf = 0;
  int64_t IntValue = 0;
  double FpValue = 0;

  static KArg buffer(BufferId Id) {
    KArg A;
    A.IsBuffer = true;
    A.Buf = Id;
    return A;
  }
  static KArg i64(int64_t I) {
    KArg A;
    A.IntValue = I;
    A.FpValue = static_cast<double>(I);
    return A;
  }
  static KArg f64(double D) {
    KArg A;
    A.FpValue = D;
    A.IntValue = static_cast<int64_t>(D);
    return A;
  }
};

/// Abstract runtime: the single-device OpenCL programming model the
/// application was written against.
class HeteroRuntime {
public:
  virtual ~HeteroRuntime();

  /// The simulated machine this runtime executes on.
  mcl::Context &context() const { return Ctx; }

  /// Short identifier ("CPU", "GPU", "FluidiCL", ...).
  virtual std::string name() const = 0;

  /// Creates a buffer of \p Size bytes (clCreateBuffer).
  virtual BufferId createBuffer(uint64_t Size, std::string DebugName) = 0;

  /// Writes \p Bytes from host memory (clEnqueueWriteBuffer).
  virtual void writeBuffer(BufferId Id, const void *Src, uint64_t Bytes) = 0;

  /// Reads \p Bytes back to host memory (blocking clEnqueueReadBuffer).
  virtual void readBuffer(BufferId Id, void *Dst, uint64_t Bytes) = 0;

  /// Launches \p KernelName over \p Range; blocking, as in the paper's
  /// implementation (section 7).
  virtual void launchKernel(const std::string &KernelName,
                            const kern::NDRange &Range,
                            const std::vector<KArg> &Args) = 0;

  /// Drains any outstanding work (clFinish).
  virtual void finish() = 0;

  /// Current simulated time (total-running-time measurements).
  TimePoint now() const { return Ctx.now(); }

  /// Runtime counters and gauges accumulated so far (bytes moved, task
  /// placement, cache hits, ...). Every implementation adds to this as it
  /// runs; counter names are catalogued in docs/OBSERVABILITY.md.
  const stats::Registry &statsRegistry() const { return Stats; }

  /// Adds everything this runtime knows into \p Report: the counter
  /// registry plus, for implementations that track per-launch records
  /// (FluidiCL), one LaunchStats per kernel launch.
  virtual void collectStats(stats::RunReport &Report) const;

protected:
  explicit HeteroRuntime(mcl::Context &Ctx) : Ctx(Ctx) {}

  mcl::Context &Ctx;
  /// Mutable so const query paths (readBuffer routing decisions live in
  /// non-const methods, but name()/collectStats stay const) can account.
  mutable stats::Registry Stats;
};

} // namespace runtime
} // namespace fcl

#endif // FCL_RUNTIME_HETERORUNTIME_H
