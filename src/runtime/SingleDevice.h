//===- runtime/SingleDevice.h - CPU-only / GPU-only baselines ---*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's baselines: the unmodified application run directly on one
/// vendor runtime (CPU-only or GPU-only), with the usual upload / launch /
/// download flow on a single in-order queue.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_RUNTIME_SINGLEDEVICE_H
#define FCL_RUNTIME_SINGLEDEVICE_H

#include "runtime/HeteroRuntime.h"
#include "runtime/ManagedBuffer.h"

#include <memory>
#include <vector>

namespace fcl {
namespace runtime {

/// Runs every command on one device (the CPU-only and GPU-only baselines).
class SingleDeviceRuntime final : public HeteroRuntime {
public:
  SingleDeviceRuntime(mcl::Context &Ctx, mcl::DeviceKind Kind);
  ~SingleDeviceRuntime() override;

  std::string name() const override;
  BufferId createBuffer(uint64_t Size, std::string DebugName) override;
  void writeBuffer(BufferId Id, const void *Src, uint64_t Bytes) override;
  void readBuffer(BufferId Id, void *Dst, uint64_t Bytes) override;
  void launchKernel(const std::string &KernelName, const kern::NDRange &Range,
                    const std::vector<KArg> &Args) override;
  void finish() override;

  /// Simulated duration the device would need for this launch alone
  /// (used by Table 1 and the SOCL calibration).
  Duration kernelOnlyDuration(const std::string &KernelName,
                              const kern::NDRange &Range,
                              const std::vector<KArg> &Args);

private:
  ManagedBuffer &buf(BufferId Id);
  mcl::LaunchDesc buildLaunch(const std::string &KernelName,
                              const kern::NDRange &Range,
                              const std::vector<KArg> &Args);

  mcl::Device &Dev;
  std::unique_ptr<mcl::CommandQueue> Queue;
  std::vector<std::unique_ptr<ManagedBuffer>> Buffers;
};

} // namespace runtime
} // namespace fcl

#endif // FCL_RUNTIME_SINGLEDEVICE_H
