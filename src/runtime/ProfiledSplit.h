//===- runtime/ProfiledSplit.h - Qilin-style trained splitter ---*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Qilin-style adaptive-mapping baseline (the profiling-based related
/// work the paper positions FluidiCL against): a training run measures
/// each kernel's execution rate on each device, then production runs split
/// every kernel *statically per kernel* at the rate-proportional fraction
/// gpu/(gpu+cpu). Unlike FluidiCL it needs the training step, cannot react
/// to input-size or load changes that the training did not see, and still
/// pays the manual coherence costs of static splitting; unlike OracleSP it
/// does not need an exhaustive sweep.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_RUNTIME_PROFILEDSPLIT_H
#define FCL_RUNTIME_PROFILEDSPLIT_H

#include "runtime/StaticPartition.h"

#include <map>
#include <string>

namespace fcl {
namespace runtime {

/// Trained per-kernel split fractions.
class SplitModel {
public:
  /// Records a measured (kernel-only) duration for one device.
  void record(const std::string &Kernel, mcl::DeviceKind Kind,
              Duration Took);

  /// Rate-proportional GPU fraction for \p Kernel; 1.0 (GPU-only) when
  /// untrained, mirroring the GPU-oriented default of such systems.
  double gpuFraction(const std::string &Kernel) const;

  /// True when both devices have a sample for \p Kernel.
  bool trained(const std::string &Kernel) const;

private:
  struct Times {
    double CpuSeconds = 0;
    double GpuSeconds = 0;
  };
  std::map<std::string, Times> Samples;
};

/// Production runtime: per-kernel static splits at the trained fractions,
/// with the same manual data management as StaticPartitionRuntime (which
/// it delegates to, retuning the split before every launch).
class ProfiledSplitRuntime final : public HeteroRuntime {
public:
  ProfiledSplitRuntime(mcl::Context &Ctx, const SplitModel &Model);

  std::string name() const override { return "ProfiledSplit"; }
  BufferId createBuffer(uint64_t Size, std::string DebugName) override;
  void writeBuffer(BufferId Id, const void *Src, uint64_t Bytes) override;
  void readBuffer(BufferId Id, void *Dst, uint64_t Bytes) override;
  void launchKernel(const std::string &KernelName, const kern::NDRange &Range,
                    const std::vector<KArg> &Args) override;
  void finish() override;

private:
  const SplitModel &Model;
  StaticPartitionRuntime Body;
};

} // namespace runtime
} // namespace fcl

#endif // FCL_RUNTIME_PROFILEDSPLIT_H
