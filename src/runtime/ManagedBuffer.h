//===- runtime/ManagedBuffer.h - Host-shadowed device buffers ---*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A buffer with a host shadow and lazily-created, validity-tracked copies
/// on each device. This is the data-management bookkeeping a careful
/// *manual* multi-device implementation keeps (and what the SOCL-style
/// scheduler automates at task granularity): upload before use, download
/// before host reads, invalidate on writes. FluidiCL has its own richer
/// machinery (versions, merge buffers) in fluidicl/.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_RUNTIME_MANAGEDBUFFER_H
#define FCL_RUNTIME_MANAGEDBUFFER_H

#include "mcl/Buffer.h"
#include "mcl/CommandQueue.h"
#include "mcl/Context.h"

#include <memory>
#include <string>
#include <vector>

namespace fcl {
namespace runtime {

/// Host-shadowed, multi-device buffer with MSI-like validity tracking.
class ManagedBuffer {
public:
  ManagedBuffer(mcl::Context &Ctx, uint64_t Size, std::string DebugName);

  uint64_t size() const { return Size; }
  const std::string &debugName() const { return DebugName; }

  /// Host shadow storage (empty in TimingOnly mode).
  std::byte *hostData() { return Shadow.empty() ? nullptr : Shadow.data(); }

  /// Overwrites the shadow from host memory and invalidates all device
  /// copies (the host now holds the only valid version).
  void writeFromHost(const void *Src, uint64_t Bytes);

  /// Device-side mcl buffer for \p Dev, created on first use.
  mcl::Buffer &on(mcl::Device &Dev);

  bool hostValid() const { return HostIsValid; }
  bool validOn(mcl::Device &Dev) const;

  /// Ensures \p Dev has the current data, enqueuing an upload on \p Queue
  /// if its copy is stale. The host copy must be valid or the device copy
  /// already current. Returns the transfer event (or null if none needed).
  mcl::EventPtr ensureOn(mcl::Device &Dev, mcl::CommandQueue &Queue);

  /// Ensures the host shadow is current, reading back (blocking) from a
  /// valid device over \p Queue when necessary. \p Queue must target a
  /// device with a valid copy if the host is stale.
  void ensureHost(mcl::CommandQueue &Queue);

  /// Marks \p Dev as the sole holder of the current data (after a kernel
  /// wrote the buffer there).
  void markDeviceExclusive(mcl::Device &Dev);

  /// Marks the host shadow as current without touching device validity
  /// (after a host-side merge).
  void markHostCurrent();

  /// Marks every device copy stale, keeping the host valid.
  void invalidateDevices();

  /// Device holding a valid copy (preferring \p Preferred), or null.
  mcl::Device *anyValidDevice(mcl::Device *Preferred = nullptr) const;

private:
  struct DeviceSlot {
    mcl::Device *Dev = nullptr;
    std::unique_ptr<mcl::Buffer> Buf;
    bool Valid = false;
  };

  DeviceSlot &slotFor(mcl::Device &Dev);
  const DeviceSlot *findSlot(const mcl::Device &Dev) const;

  mcl::Context &Ctx;
  uint64_t Size;
  std::string DebugName;
  std::vector<std::byte> Shadow;
  bool HostIsValid = true;
  std::vector<DeviceSlot> Slots;
};

} // namespace runtime
} // namespace fcl

#endif // FCL_RUNTIME_MANAGEDBUFFER_H
