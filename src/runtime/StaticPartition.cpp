//===- runtime/StaticPartition.cpp - Manual x% GPU split baseline ---------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/StaticPartition.h"

#include "kern/Registry.h"
#include "support/Error.h"
#include "support/Format.h"

#include <cmath>
#include <cstring>

using namespace fcl;
using namespace fcl::runtime;

StaticPartitionRuntime::StaticPartitionRuntime(mcl::Context &Ctx,
                                               double GpuFraction)
    : HeteroRuntime(Ctx), GpuFraction(GpuFraction),
      GpuQueue(Ctx.createQueue(Ctx.gpu(), "sp-gpu")),
      CpuQueue(Ctx.createQueue(Ctx.cpu(), "sp-cpu")) {
  FCL_CHECK(GpuFraction >= 0.0 && GpuFraction <= 1.0,
            "GPU fraction out of [0,1]");
}

StaticPartitionRuntime::~StaticPartitionRuntime() {
  GpuQueue->finish();
  CpuQueue->finish();
}

void StaticPartitionRuntime::setGpuFraction(double Fraction) {
  FCL_CHECK(Fraction >= 0.0 && Fraction <= 1.0, "GPU fraction out of [0,1]");
  GpuFraction = Fraction;
}

std::string StaticPartitionRuntime::name() const {
  return formatString("Static%2.0f", GpuFraction * 100.0);
}

ManagedBuffer &StaticPartitionRuntime::buf(BufferId Id) {
  FCL_CHECK(Id < Buffers.size(), "invalid buffer id");
  return *Buffers[Id];
}

BufferId StaticPartitionRuntime::createBuffer(uint64_t Size,
                                              std::string DebugName) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  Buffers.push_back(
      std::make_unique<ManagedBuffer>(Ctx, Size, std::move(DebugName)));
  return static_cast<BufferId>(Buffers.size() - 1);
}

void StaticPartitionRuntime::writeBuffer(BufferId Id, const void *Src,
                                         uint64_t Bytes) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  buf(Id).writeFromHost(Src, Bytes);
}

void StaticPartitionRuntime::readBuffer(BufferId Id, void *Dst,
                                        uint64_t Bytes) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  ManagedBuffer &B = buf(Id);
  FCL_CHECK(Bytes <= B.size(), "read overruns buffer");
  if (!B.hostValid()) {
    mcl::Device *Src = B.anyValidDevice(&Ctx.gpu());
    FCL_CHECK(Src != nullptr, "buffer has no valid copy anywhere");
    B.ensureHost(Src->kind() == mcl::DeviceKind::Gpu ? *GpuQueue : *CpuQueue);
  }
  if (Dst && B.hostData())
    std::memcpy(Dst, B.hostData(), Bytes);
}

void StaticPartitionRuntime::launchOn(mcl::Device &Dev,
                                      mcl::CommandQueue &Queue,
                                      const kern::KernelInfo &Kernel,
                                      const kern::NDRange &Range,
                                      const std::vector<KArg> &Args,
                                      uint64_t FlatBegin, uint64_t FlatEnd,
                                      mcl::EventPtr &Done) {
  mcl::LaunchDesc Desc;
  Desc.Kernel = &Kernel;
  Desc.Range = Range;
  Desc.FlatBegin = FlatBegin;
  Desc.FlatEnd = FlatEnd;
  for (const KArg &A : Args) {
    if (A.IsBuffer) {
      Desc.Args.push_back(mcl::LaunchArg::buffer(&buf(A.Buf).on(Dev)));
    } else {
      mcl::LaunchArg L;
      L.IntValue = A.IntValue;
      L.FpValue = A.FpValue;
      Desc.Args.push_back(L);
    }
  }
  Done = Queue.enqueueKernel(std::move(Desc));
}

void StaticPartitionRuntime::launchKernel(const std::string &KernelName,
                                          const kern::NDRange &Range,
                                          const std::vector<KArg> &Args) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  const kern::KernelInfo &Kernel = kern::Registry::builtin().get(KernelName);
  FCL_CHECK(Kernel.Args.size() == Args.size(), "argument arity mismatch");

  uint64_t Total = Range.totalGroups();
  uint64_t GpuGroups = static_cast<uint64_t>(
      std::llround(GpuFraction * static_cast<double>(Total)));
  if (GpuGroups > Total)
    GpuGroups = Total;
  bool UsesGpu = GpuGroups > 0;
  bool UsesCpu = GpuGroups < Total;

  Stats.add("kernel_launches");
  Stats.add("workgroups_total", Total);
  Stats.add("gpu_workgroups_completed", GpuGroups);
  Stats.add("cpu_workgroups_completed", Total - GpuGroups);

  // Manual data management: the programmer makes the host copy current,
  // snapshots the pre-image of written buffers, and uploads inputs to the
  // devices that participate.
  std::vector<size_t> WrittenArgIdx;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (!Args[I].IsBuffer)
      continue;
    ManagedBuffer &B = buf(Args[I].Buf);
    if (!B.hostValid()) {
      mcl::Device *Src = B.anyValidDevice(&Ctx.gpu());
      FCL_CHECK(Src != nullptr, "buffer has no valid copy anywhere");
      B.ensureHost(Src->kind() == mcl::DeviceKind::Gpu ? *GpuQueue
                                                       : *CpuQueue);
    }
    if (UsesGpu)
      B.ensureOn(Ctx.gpu(), *GpuQueue);
    if (UsesCpu)
      B.ensureOn(Ctx.cpu(), *CpuQueue);
    if (kern::isWrittenAccess(Kernel.Args[I]))
      WrittenArgIdx.push_back(I);
  }

  // Pre-images for the host-side merge.
  std::vector<std::vector<std::byte>> PreImages;
  bool BothDevices = UsesGpu && UsesCpu;
  if (BothDevices && Ctx.functional()) {
    for (size_t I : WrittenArgIdx) {
      ManagedBuffer &B = buf(Args[I].Buf);
      PreImages.emplace_back(B.hostData(), B.hostData() + B.size());
    }
  }

  mcl::EventPtr GpuDone, CpuDone;
  if (UsesGpu)
    launchOn(Ctx.gpu(), *GpuQueue, Kernel, Range, Args, 0, GpuGroups,
             GpuDone);
  if (UsesCpu)
    launchOn(Ctx.cpu(), *CpuQueue, Kernel, Range, Args, GpuGroups, Total,
             CpuDone);
  if (GpuDone)
    GpuDone->wait();
  if (CpuDone)
    CpuDone->wait();

  if (!BothDevices) {
    mcl::Device &Only = UsesGpu ? Ctx.gpu() : Ctx.cpu();
    for (size_t I : WrittenArgIdx)
      buf(Args[I].Buf).markDeviceExclusive(Only);
    return;
  }

  // Read both halves back in full and merge on the host against the
  // pre-image (the generic manual scheme; per-row sub-buffer transfers are
  // an app-specific optimization FluidiCL does not get either).
  for (size_t W = 0; W < WrittenArgIdx.size(); ++W) {
    size_t I = WrittenArgIdx[W];
    ManagedBuffer &B = buf(Args[I].Buf);
    std::vector<std::byte> GpuCopy, CpuCopy;
    if (Ctx.functional()) {
      GpuCopy.resize(B.size());
      CpuCopy.resize(B.size());
    }
    mcl::EventPtr RG = GpuQueue->enqueueRead(
        B.on(Ctx.gpu()), GpuCopy.empty() ? nullptr : GpuCopy.data(),
        B.size());
    mcl::EventPtr RC = CpuQueue->enqueueRead(
        B.on(Ctx.cpu()), CpuCopy.empty() ? nullptr : CpuCopy.data(),
        B.size());
    RG->wait();
    RC->wait();
    if (Ctx.functional()) {
      const std::vector<std::byte> &Pre = PreImages[W];
      std::byte *Out = B.hostData();
      for (uint64_t Byte = 0; Byte < B.size(); ++Byte) {
        if (GpuCopy[Byte] != Pre[Byte])
          Out[Byte] = GpuCopy[Byte];
        else if (CpuCopy[Byte] != Pre[Byte])
          Out[Byte] = CpuCopy[Byte];
      }
    }
    // Charge the host merge pass (two reads + one write over the buffer).
    Stats.add("host_merge_bytes", B.size());
    Ctx.hostAdvance(Ctx.machine().Host.memcpyTime(3 * B.size()));
    B.markHostCurrent();
    B.invalidateDevices();
  }
}

void StaticPartitionRuntime::finish() {
  GpuQueue->finish();
  CpuQueue->finish();
}
