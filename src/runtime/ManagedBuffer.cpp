//===- runtime/ManagedBuffer.cpp - Host-shadowed device buffers -----------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ManagedBuffer.h"

#include "support/Error.h"

#include <cstring>

using namespace fcl;
using namespace fcl::runtime;

ManagedBuffer::ManagedBuffer(mcl::Context &Ctx, uint64_t Size,
                             std::string DebugName)
    : Ctx(Ctx), Size(Size), DebugName(std::move(DebugName)) {
  FCL_CHECK(Size > 0, "zero-sized managed buffer");
  if (Ctx.functional())
    Shadow.assign(Size, std::byte{0});
}

void ManagedBuffer::writeFromHost(const void *Src, uint64_t Bytes) {
  FCL_CHECK(Bytes <= Size, "host write overruns buffer");
  if (!Shadow.empty() && Src)
    std::memcpy(Shadow.data(), Src, Bytes);
  HostIsValid = true;
  for (DeviceSlot &S : Slots)
    S.Valid = false;
}

ManagedBuffer::DeviceSlot &ManagedBuffer::slotFor(mcl::Device &Dev) {
  for (DeviceSlot &S : Slots)
    if (S.Dev == &Dev)
      return S;
  DeviceSlot S;
  S.Dev = &Dev;
  S.Buf = Ctx.createBuffer(Dev, Size, DebugName);
  S.Valid = false;
  Slots.push_back(std::move(S));
  return Slots.back();
}

const ManagedBuffer::DeviceSlot *
ManagedBuffer::findSlot(const mcl::Device &Dev) const {
  for (const DeviceSlot &S : Slots)
    if (S.Dev == &Dev)
      return &S;
  return nullptr;
}

mcl::Buffer &ManagedBuffer::on(mcl::Device &Dev) { return *slotFor(Dev).Buf; }

bool ManagedBuffer::validOn(mcl::Device &Dev) const {
  const DeviceSlot *S = findSlot(Dev);
  return S && S->Valid;
}

mcl::EventPtr ManagedBuffer::ensureOn(mcl::Device &Dev,
                                      mcl::CommandQueue &Queue) {
  DeviceSlot &S = slotFor(Dev);
  if (S.Valid)
    return nullptr;
  FCL_CHECK(HostIsValid, "no valid source for device upload");
  FCL_CHECK(&Queue.device() == &Dev, "upload queue targets wrong device");
  mcl::EventPtr E =
      Queue.enqueueWrite(*S.Buf, Shadow.empty() ? nullptr : Shadow.data(),
                         Size);
  S.Valid = true; // Valid once the in-order queue reaches later commands.
  return E;
}

void ManagedBuffer::ensureHost(mcl::CommandQueue &Queue) {
  if (HostIsValid)
    return;
  const DeviceSlot *S = findSlot(Queue.device());
  FCL_CHECK(S && S->Valid, "no valid device copy to read back from");
  Queue.enqueueRead(*S->Buf, Shadow.empty() ? nullptr : Shadow.data(), Size,
                    0, /*Blocking=*/true);
  HostIsValid = true;
}

void ManagedBuffer::markDeviceExclusive(mcl::Device &Dev) {
  HostIsValid = false;
  for (DeviceSlot &S : Slots)
    S.Valid = S.Dev == &Dev;
  // Ensure the slot exists even if nothing touched it yet.
  slotFor(Dev).Valid = true;
}

void ManagedBuffer::markHostCurrent() { HostIsValid = true; }

void ManagedBuffer::invalidateDevices() {
  FCL_CHECK(HostIsValid, "invalidating devices without a valid host copy");
  for (DeviceSlot &S : Slots)
    S.Valid = false;
}

mcl::Device *ManagedBuffer::anyValidDevice(mcl::Device *Preferred) const {
  if (Preferred) {
    const DeviceSlot *S = findSlot(*Preferred);
    if (S && S->Valid)
      return Preferred;
  }
  for (const DeviceSlot &S : Slots)
    if (S.Valid)
      return S.Dev;
  return nullptr;
}
