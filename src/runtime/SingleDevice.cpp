//===- runtime/SingleDevice.cpp - CPU-only / GPU-only baselines -----------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/SingleDevice.h"

#include "kern/Registry.h"
#include "mcl/CpuEngine.h"
#include "mcl/GpuEngine.h"
#include "support/Error.h"

#include <cstring>

using namespace fcl;
using namespace fcl::runtime;

SingleDeviceRuntime::SingleDeviceRuntime(mcl::Context &Ctx,
                                         mcl::DeviceKind Kind)
    : HeteroRuntime(Ctx),
      Dev(Kind == mcl::DeviceKind::Cpu ? Ctx.cpu() : Ctx.gpu()),
      Queue(Ctx.createQueue(Dev, "app")) {}

SingleDeviceRuntime::~SingleDeviceRuntime() { Queue->finish(); }

std::string SingleDeviceRuntime::name() const {
  return Dev.kind() == mcl::DeviceKind::Cpu ? "CPU" : "GPU";
}

ManagedBuffer &SingleDeviceRuntime::buf(BufferId Id) {
  FCL_CHECK(Id < Buffers.size(), "invalid buffer id");
  return *Buffers[Id];
}

BufferId SingleDeviceRuntime::createBuffer(uint64_t Size,
                                           std::string DebugName) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  Buffers.push_back(
      std::make_unique<ManagedBuffer>(Ctx, Size, std::move(DebugName)));
  return static_cast<BufferId>(Buffers.size() - 1);
}

void SingleDeviceRuntime::writeBuffer(BufferId Id, const void *Src,
                                      uint64_t Bytes) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  Stats.add("app_bytes_written", Bytes);
  ManagedBuffer &B = buf(Id);
  B.writeFromHost(Src, Bytes);
  B.ensureOn(Dev, *Queue);
}

void SingleDeviceRuntime::readBuffer(BufferId Id, void *Dst, uint64_t Bytes) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  Stats.add("app_bytes_read", Bytes);
  ManagedBuffer &B = buf(Id);
  FCL_CHECK(Bytes <= B.size(), "read overruns buffer");
  B.ensureHost(*Queue);
  if (Dst && B.hostData())
    std::memcpy(Dst, B.hostData(), Bytes);
}

mcl::LaunchDesc
SingleDeviceRuntime::buildLaunch(const std::string &KernelName,
                                 const kern::NDRange &Range,
                                 const std::vector<KArg> &Args) {
  const kern::KernelInfo &Kernel = kern::Registry::builtin().get(KernelName);
  FCL_CHECK(Kernel.Args.size() == Args.size(), "argument arity mismatch");
  mcl::LaunchDesc Desc;
  Desc.Kernel = &Kernel;
  Desc.Range = Range;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I].IsBuffer) {
      Desc.Args.push_back(mcl::LaunchArg::buffer(&buf(Args[I].Buf).on(Dev)));
    } else {
      mcl::LaunchArg A;
      A.IntValue = Args[I].IntValue;
      A.FpValue = Args[I].FpValue;
      Desc.Args.push_back(A);
    }
  }
  return Desc;
}

void SingleDeviceRuntime::launchKernel(const std::string &KernelName,
                                       const kern::NDRange &Range,
                                       const std::vector<KArg> &Args) {
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  Stats.add("kernel_launches");
  Stats.add("workgroups_total", Range.totalGroups());
  Stats.add(Dev.kind() == mcl::DeviceKind::Cpu ? "cpu_workgroups_completed"
                                               : "gpu_workgroups_completed",
            Range.totalGroups());
  const kern::KernelInfo &Kernel = kern::Registry::builtin().get(KernelName);
  // Uploads for stale inputs, as a straightforward host program would issue.
  for (size_t I = 0; I < Args.size(); ++I)
    if (Args[I].IsBuffer)
      buf(Args[I].Buf).ensureOn(Dev, *Queue);
  mcl::LaunchDesc Desc = buildLaunch(KernelName, Range, Args);
  mcl::EventPtr Done = Queue->enqueueKernel(std::move(Desc));
  Done->wait(); // Kernel calls are blocking (paper section 7).
  for (size_t I = 0; I < Args.size(); ++I)
    if (Args[I].IsBuffer && kern::isWrittenAccess(Kernel.Args[I]))
      buf(Args[I].Buf).markDeviceExclusive(Dev);
}

void SingleDeviceRuntime::finish() { Queue->finish(); }

Duration
SingleDeviceRuntime::kernelOnlyDuration(const std::string &KernelName,
                                        const kern::NDRange &Range,
                                        const std::vector<KArg> &Args) {
  mcl::LaunchDesc Desc = buildLaunch(KernelName, Range, Args);
  if (Dev.kind() == mcl::DeviceKind::Gpu)
    return static_cast<mcl::GpuEngine &>(Dev).launchDuration(Desc);
  return static_cast<mcl::CpuEngine &>(Dev).launchDuration(Desc);
}
