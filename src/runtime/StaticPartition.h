//===- runtime/StaticPartition.h - Manual x% GPU split baseline -*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The manual static-partitioning baseline of paper Figures 2/3 and the
/// OracleSP bar of Figure 13: every kernel's flat work-group range is split
/// at a fixed GPU fraction, both devices execute their part concurrently,
/// and the programmer-visible data management (upload both, read back both
/// halves, merge on the host, re-upload) is performed explicitly. Sweeping
/// the fraction 0..100% and taking the best run yields OracleSP.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_RUNTIME_STATICPARTITION_H
#define FCL_RUNTIME_STATICPARTITION_H

#include "runtime/HeteroRuntime.h"
#include "runtime/ManagedBuffer.h"

#include <memory>
#include <vector>

namespace fcl {
namespace runtime {

/// Splits every kernel launch at a fixed GPU work fraction.
class StaticPartitionRuntime final : public HeteroRuntime {
public:
  /// \p GpuFraction in [0, 1]: share of flat work-groups (from the low end)
  /// run on the GPU; the rest runs on the CPU.
  StaticPartitionRuntime(mcl::Context &Ctx, double GpuFraction);
  ~StaticPartitionRuntime() override;

  std::string name() const override;
  BufferId createBuffer(uint64_t Size, std::string DebugName) override;
  void writeBuffer(BufferId Id, const void *Src, uint64_t Bytes) override;
  void readBuffer(BufferId Id, void *Dst, uint64_t Bytes) override;
  void launchKernel(const std::string &KernelName, const kern::NDRange &Range,
                    const std::vector<KArg> &Args) override;
  void finish() override;

  double gpuFraction() const { return GpuFraction; }

  /// Adjusts the split for subsequent launches (used by the Qilin-style
  /// ProfiledSplitRuntime to apply per-kernel trained fractions).
  void setGpuFraction(double Fraction);

private:
  ManagedBuffer &buf(BufferId Id);
  void launchOn(mcl::Device &Dev, mcl::CommandQueue &Queue,
                const kern::KernelInfo &Kernel, const kern::NDRange &Range,
                const std::vector<KArg> &Args, uint64_t FlatBegin,
                uint64_t FlatEnd, mcl::EventPtr &Done);

  double GpuFraction;
  std::unique_ptr<mcl::CommandQueue> GpuQueue;
  std::unique_ptr<mcl::CommandQueue> CpuQueue;
  std::vector<std::unique_ptr<ManagedBuffer>> Buffers;
};

} // namespace runtime
} // namespace fcl

#endif // FCL_RUNTIME_STATICPARTITION_H
