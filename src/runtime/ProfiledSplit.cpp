//===- runtime/ProfiledSplit.cpp - Qilin-style trained splitter -----------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ProfiledSplit.h"

using namespace fcl;
using namespace fcl::runtime;

void SplitModel::record(const std::string &Kernel, mcl::DeviceKind Kind,
                        Duration Took) {
  Times &T = Samples[Kernel];
  if (Kind == mcl::DeviceKind::Cpu)
    T.CpuSeconds = Took.toSeconds();
  else
    T.GpuSeconds = Took.toSeconds();
}

double SplitModel::gpuFraction(const std::string &Kernel) const {
  auto It = Samples.find(Kernel);
  if (It == Samples.end() || It->second.CpuSeconds <= 0 ||
      It->second.GpuSeconds <= 0)
    return 1.0; // Untrained: default to the GPU.
  // Rate-proportional split: rate = 1/time per device.
  double GpuRate = 1.0 / It->second.GpuSeconds;
  double CpuRate = 1.0 / It->second.CpuSeconds;
  return GpuRate / (GpuRate + CpuRate);
}

bool SplitModel::trained(const std::string &Kernel) const {
  auto It = Samples.find(Kernel);
  return It != Samples.end() && It->second.CpuSeconds > 0 &&
         It->second.GpuSeconds > 0;
}

ProfiledSplitRuntime::ProfiledSplitRuntime(mcl::Context &Ctx,
                                           const SplitModel &Model)
    : HeteroRuntime(Ctx), Model(Model), Body(Ctx, 1.0) {}

BufferId ProfiledSplitRuntime::createBuffer(uint64_t Size,
                                            std::string DebugName) {
  return Body.createBuffer(Size, std::move(DebugName));
}

void ProfiledSplitRuntime::writeBuffer(BufferId Id, const void *Src,
                                       uint64_t Bytes) {
  Body.writeBuffer(Id, Src, Bytes);
}

void ProfiledSplitRuntime::readBuffer(BufferId Id, void *Dst,
                                      uint64_t Bytes) {
  Body.readBuffer(Id, Dst, Bytes);
}

void ProfiledSplitRuntime::launchKernel(const std::string &KernelName,
                                        const kern::NDRange &Range,
                                        const std::vector<KArg> &Args) {
  Body.setGpuFraction(Model.gpuFraction(KernelName));
  Body.launchKernel(KernelName, Range, Args);
}

void ProfiledSplitRuntime::finish() { Body.finish(); }
