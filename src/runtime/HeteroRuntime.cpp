//===- runtime/HeteroRuntime.cpp - Common runtime interface ---------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/HeteroRuntime.h"

using namespace fcl;
using namespace fcl::runtime;

HeteroRuntime::~HeteroRuntime() = default;

void HeteroRuntime::collectStats(stats::RunReport &Report) const {
  Report.RuntimeName = name();
  Report.Counters.mergeFrom(Stats);
}
