//===- trace/Tracer.cpp - Execution tracing ---------------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Tracer.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cstdio>
#include <map>

using namespace fcl;
using namespace fcl::trace;

void Tracer::record(std::string Lane, std::string Name, TimePoint Start,
                    TimePoint End, std::string Detail) {
  FCL_CHECK(End >= Start, "trace slice ends before it starts");
  TraceEvent E;
  E.Lane = std::move(Lane);
  E.Name = std::move(Name);
  E.Detail = std::move(Detail);
  E.Start = Start;
  E.End = End;
  Events.push_back(std::move(E));
}

std::vector<TraceEvent> Tracer::laneEvents(const std::string &Lane) const {
  std::vector<TraceEvent> Out;
  for (const TraceEvent &E : Events)
    if (E.Lane == Lane)
      Out.push_back(E);
  return Out;
}

Duration Tracer::laneBusy(const std::string &Lane) const {
  Duration Busy = Duration::zero();
  for (const TraceEvent &E : Events)
    if (E.Lane == Lane)
      Busy += E.duration();
  return Busy;
}

static std::string escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      Out += formatString("\\u%04x", C);
      continue;
    }
    Out += C;
  }
  return Out;
}

std::string Tracer::renderChromeTrace() const {
  // Stable lane -> tid mapping in first-appearance order.
  std::map<std::string, int> LaneIds;
  std::vector<std::string> LaneOrder;
  for (const TraceEvent &E : Events)
    if (LaneIds.emplace(E.Lane, static_cast<int>(LaneIds.size())).second)
      LaneOrder.push_back(E.Lane);

  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;
  for (const std::string &Lane : LaneOrder) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += formatString("{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                        "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                        LaneIds[Lane], escapeJson(Lane).c_str());
  }
  for (const TraceEvent &E : Events) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += formatString(
        "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"detail\":\"%s\"}}",
        LaneIds[E.Lane], escapeJson(E.Name).c_str(),
        static_cast<double>(E.Start.nanos()) / 1000.0,
        static_cast<double>(E.duration().nanos()) / 1000.0,
        escapeJson(E.Detail).c_str());
  }
  Out += "\n]}\n";
  return Out;
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Text = renderChromeTrace();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}
