//===- trace/Tracer.cpp - Execution tracing ---------------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/Tracer.h"

#include "race/Race.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>

using namespace fcl;
using namespace fcl::trace;

static prof::Counter ProfRecords("trace.records");

Tracer::Tracer() {
  static std::atomic<uint64_t> NextRaceId{0};
  RaceSec = "trace.tracer#" +
            std::to_string(NextRaceId.fetch_add(1, std::memory_order_relaxed));
}

void Tracer::record(std::string Lane, std::string Name, TimePoint Start,
                    TimePoint End, std::string Detail) {
  FCL_PROF_SCOPE("trace.record");
  race::Section RaceS(RaceSec);
  ProfRecords.add();
  FCL_CHECK(End >= Start, "trace slice ends before it starts");
  TraceEvent E;
  E.Lane = std::move(Lane);
  E.Name = std::move(Name);
  E.Detail = std::move(Detail);
  E.Start = Start;
  E.End = End;
  Events.push_back(std::move(E));
}

void Tracer::counter(std::string Track, TimePoint At, double Value) {
  race::Section RaceS(RaceSec);
  CounterSample S;
  S.Track = std::move(Track);
  S.At = At;
  S.Value = Value;
  Counters.push_back(std::move(S));
}

void Tracer::mergeFrom(const Tracer &Other, const std::string &Prefix) {
  // Merging a tracer into itself would iterate Events/Counters while
  // record()/counter() append to them - iterator invalidation, then an
  // unbounded loop. No caller can mean it; fail loud.
  FCL_CHECK(&Other != this, "cannot merge a tracer into itself");
  for (const TraceEvent &E : Other.Events)
    record(Prefix + E.Lane, E.Name, E.Start, E.End, E.Detail);
  for (const CounterSample &C : Other.Counters)
    counter(Prefix + C.Track, C.At, C.Value);
}

std::vector<TraceEvent> Tracer::laneEvents(const std::string &Lane) const {
  std::vector<TraceEvent> Out;
  for (const TraceEvent &E : Events)
    if (E.Lane == Lane)
      Out.push_back(E);
  return Out;
}

std::vector<CounterSample> Tracer::trackSamples(const std::string &Track) const {
  std::vector<CounterSample> Out;
  for (const CounterSample &S : Counters)
    if (S.Track == Track)
      Out.push_back(S);
  return Out;
}

Duration Tracer::laneBusy(const std::string &Lane) const {
  Duration Busy = Duration::zero();
  for (const TraceEvent &E : Events)
    if (E.Lane == Lane)
      Busy += E.duration();
  return Busy;
}

void Tracer::annotateProfile(const prof::Snapshot &S) {
  // Sample every track at the current end of the timeline: phase totals
  // are whole-run aggregates, so one terminal sample per track renders as
  // a flat value beside the lanes.
  TimePoint At;
  for (const TraceEvent &E : Events)
    At = std::max(At, E.End);
  for (const CounterSample &C : Counters)
    At = std::max(At, C.At);
  for (const prof::PhaseStats &P : S.Phases)
    counter("prof " + P.Path + " self ms", At, P.exclusiveMs());
  for (const auto &[Name, V] : S.Counters)
    counter("prof counter " + Name, At, static_cast<double>(V));
}

std::string Tracer::renderChromeTrace() const {
  FCL_PROF_SCOPE("trace.render");
  // Stable lane -> tid mapping in first-appearance order.
  std::map<std::string, int> LaneIds;
  std::vector<std::string> LaneOrder;
  for (const TraceEvent &E : Events)
    if (LaneIds.emplace(E.Lane, static_cast<int>(LaneIds.size())).second)
      LaneOrder.push_back(E.Lane);

  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;
  for (const std::string &Lane : LaneOrder) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += formatString("{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                        "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                        LaneIds[Lane], jsonEscape(Lane).c_str());
  }
  for (const TraceEvent &E : Events) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += formatString(
        "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"detail\":\"%s\"}}",
        LaneIds[E.Lane], jsonEscape(E.Name).c_str(),
        static_cast<double>(E.Start.nanos()) / 1000.0,
        static_cast<double>(E.duration().nanos()) / 1000.0,
        jsonEscape(E.Detail).c_str());
  }
  // Counter tracks: Perfetto groups "C" events of the same pid/name into one
  // step-function track beside the slice lanes.
  for (const CounterSample &S : Counters) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += formatString("{\"ph\":\"C\",\"pid\":1,\"name\":\"%s\","
                        "\"ts\":%.3f,\"args\":{\"value\":%g}}",
                        jsonEscape(S.Track).c_str(),
                        static_cast<double>(S.At.nanos()) / 1000.0, S.Value);
  }
  Out += "\n]}\n";
  return Out;
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Text = renderChromeTrace();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}
