//===- trace/Tracer.h - Execution tracing -----------------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records what every simulated resource (GPU, CPU, PCIe directions, host)
/// is doing over virtual time and exports the timeline in the Chrome
/// tracing JSON format (open chrome://tracing or https://ui.perfetto.dev
/// and load the file). Attach a Tracer to an mcl::Context and every queue
/// command - kernel launches, CPU subkernels, data/status transfers,
/// merges, DH reads - shows up as a slice on its resource's lane, which
/// makes FluidiCL's cooperative schedule directly visible.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_TRACE_TRACER_H
#define FCL_TRACE_TRACER_H

#include "prof/Profiler.h"
#include "support/SimTime.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fcl {
namespace trace {

/// One completed slice on a resource lane.
struct TraceEvent {
  std::string Lane;
  std::string Name;
  std::string Detail; // Free-form note shown in the trace viewer args.
  TimePoint Start;
  TimePoint End;

  Duration duration() const { return End - Start; }
};

/// One point of a Perfetto counter track ("C" phase event): the value of a
/// named quantity at an instant (chunk size, outstanding transfers, live
/// work-groups, ...). The viewer draws each track as a step function next
/// to the slice lanes, so the numbers line up visually with the timeline.
struct CounterSample {
  std::string Track;
  TimePoint At;
  double Value = 0;
};

/// Collects slices and counter samples and renders them as a Chrome trace.
class Tracer {
public:
  Tracer();

  /// Records a slice; \p End must not precede \p Start.
  void record(std::string Lane, std::string Name, TimePoint Start,
              TimePoint End, std::string Detail = std::string());

  /// Records one counter-track point.
  void counter(std::string Track, TimePoint At, double Value);

  /// Appends every slice and counter sample of \p Other, with \p Prefix
  /// prepended to lane and track names. fcl::cluster merges per-worker
  /// tracers into one timeline this way ("w0 ", "w1 ", ...), after the
  /// worker threads have been joined.
  void mergeFrom(const Tracer &Other, const std::string &Prefix);

  /// Folds the wall-clock profiler's phase totals into the trace as
  /// Perfetto counter tracks ("prof <path> self ms" / "prof counter
  /// <name>") sampled at the timeline's end, so host-side hotspots can be
  /// read alongside the sim-time lanes. Call once, after the run.
  void annotateProfile(const prof::Snapshot &S);

  const std::vector<TraceEvent> &events() const { return Events; }
  const std::vector<CounterSample> &counterSamples() const {
    return Counters;
  }
  size_t size() const { return Events.size(); }
  void clear() {
    Events.clear();
    Counters.clear();
  }

  /// Events on one lane, in record order.
  std::vector<TraceEvent> laneEvents(const std::string &Lane) const;

  /// Counter samples of one track, in record order.
  std::vector<CounterSample> trackSamples(const std::string &Track) const;

  /// Busy time (sum of slice durations) of one lane.
  Duration laneBusy(const std::string &Lane) const;

  /// Renders the Chrome tracing JSON: a "traceEvents" array of "X" slices
  /// (one tid per lane, microsecond timestamps) plus "C" counter events,
  /// one Perfetto counter track per distinct counter name.
  std::string renderChromeTrace() const;

  /// Writes the Chrome trace to \p Path; false if the file cannot be
  /// written.
  bool writeChromeTrace(const std::string &Path) const;

private:
  std::vector<TraceEvent> Events;
  std::vector<CounterSample> Counters;
  /// fcl::race critical-section name: writes from different logical tasks
  /// are declared mutex-protected per tracer.
  std::string RaceSec;
};

} // namespace trace
} // namespace fcl

#endif // FCL_TRACE_TRACER_H
