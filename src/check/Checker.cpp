//===- check/Checker.cpp - Whole-registry safety sweep ---------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Checker.h"

#include "support/Error.h"
#include "work/Driver.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace fcl;
using namespace fcl::check;

namespace {

/// Executes one call on the host buffers (the state-advance step between
/// probes), mirroring work::computeReference's inner loop.
void executeCallOnHost(const kern::KernelInfo &Kernel,
                       const work::KernelCall &Call,
                       std::vector<std::vector<std::byte>> &HostBufs) {
  std::vector<kern::ArgValue> Values;
  for (const runtime::KArg &A : Call.Args) {
    if (A.IsBuffer) {
      std::vector<std::byte> &B = HostBufs[A.Buf];
      Values.push_back(kern::ArgValue::buffer(B.data(), B.size()));
    } else {
      kern::ArgValue V;
      V.IntValue = A.IntValue;
      V.FpValue = A.FpValue;
      Values.push_back(V);
    }
  }
  kern::ArgsView Args(std::move(Values));
  std::vector<std::byte> Scratch(Kernel.LocalBytes);
  kern::Dim3 Groups = Call.Range.numGroups();
  uint64_t Items = Call.Range.itemsPerGroup();
  for (uint64_t Flat = 0; Flat < Call.Range.totalGroups(); ++Flat) {
    if (!Scratch.empty())
      std::fill(Scratch.begin(), Scratch.end(), std::byte{0});
    kern::executeWorkGroup(Kernel, Call.Range,
                           kern::unflattenGroupId(Flat, Groups), Args, 0,
                           Items, Scratch.empty() ? nullptr : Scratch.data());
  }
}

/// Coverage workloads for the built-in kernels no Polybench application
/// launches: the vector demo kernels, the atomic histogram, the Jacobi
/// stencil and the runtime's own merge kernel.
work::Workload makeVectorCoverage() {
  work::Workload W;
  W.Name = "vector";
  W.Summary = "vec_add / saxpy / vec_scale / block_sum coverage";
  constexpr int64_t N = 128;
  W.Buffers = {{"x", N * 4}, {"y", N * 4}, {"z", N * 4}, {"partial", 4 * 4}};
  kern::NDRange R1 = kern::NDRange::of1D(N, 32);
  W.Calls.push_back({"vec_add", R1,
                     {runtime::KArg::buffer(0), runtime::KArg::buffer(1),
                      runtime::KArg::buffer(2), runtime::KArg::i64(N)}});
  W.Calls.push_back({"saxpy", R1,
                     {runtime::KArg::buffer(0), runtime::KArg::buffer(1),
                      runtime::KArg::f64(1.5), runtime::KArg::i64(N)}});
  W.Calls.push_back({"vec_scale", R1,
                     {runtime::KArg::buffer(0), runtime::KArg::buffer(2),
                      runtime::KArg::f64(0.5), runtime::KArg::i64(N)}});
  W.Calls.push_back({"block_sum", R1,
                     {runtime::KArg::buffer(0), runtime::KArg::buffer(3),
                      runtime::KArg::i64(N)}});
  W.ResultBuffers = {2, 3};
  return W;
}

work::Workload makeHistogramCoverage() {
  work::Workload W;
  W.Name = "histogram";
  W.Summary = "histogram_atomic coverage (hidden-RMW exemplar)";
  constexpr int64_t N = 256, Bins = 16;
  W.Buffers = {{"x", N * 4}, {"hist", Bins * 4}};
  W.Calls.push_back({"histogram_atomic", kern::NDRange::of1D(N, 32),
                     {runtime::KArg::buffer(0), runtime::KArg::buffer(1),
                      runtime::KArg::i64(N), runtime::KArg::i64(Bins)}});
  W.ResultBuffers = {1};
  return W;
}

work::Workload makeJacobiCoverage() {
  work::Workload W;
  W.Name = "jacobi";
  W.Summary = "jacobi2d_kernel coverage";
  constexpr int64_t N = 64;
  W.Buffers = {{"a", N * N * 4}, {"b", N * N * 4}};
  W.Calls.push_back({"jacobi2d_kernel", kern::NDRange::of2D(N, N, 32, 8),
                     {runtime::KArg::buffer(0), runtime::KArg::buffer(1),
                      runtime::KArg::i64(N)}});
  W.ResultBuffers = {1};
  return W;
}

work::Workload makeMergeCoverage() {
  work::Workload W;
  W.Name = "merge";
  W.Summary = "md_merge_kernel coverage (cpu/orig buffers differ)";
  constexpr uint64_t Bytes = 32768;
  // initHostData seeds each buffer differently, so cpu and orig disagree
  // nearly everywhere and the merge writes most of gpu.
  W.Buffers = {{"cpu", Bytes}, {"gpu", Bytes}, {"orig", Bytes}};
  uint64_t Items = (Bytes + kern::MergeChunkBytes - 1) / kern::MergeChunkBytes;
  W.Calls.push_back(
      {"md_merge_kernel", kern::NDRange::of1D(Items, 32),
       {runtime::KArg::buffer(0), runtime::KArg::buffer(1),
        runtime::KArg::buffer(2), runtime::KArg::i64(Bytes),
        runtime::KArg::i64(4)}});
  W.ResultBuffers = {1};
  return W;
}

} // namespace

uint64_t fcl::check::checkWorkload(const work::Workload &W, DiagSink &Sink,
                                   const kern::Registry &R,
                                   uint64_t BudgetBytes,
                                   const CallObserver &OnCall) {
  std::vector<std::vector<std::byte>> Host = work::initHostData(W);
  uint64_t Probed = 0;
  for (const work::KernelCall &Call : W.Calls) {
    const kern::KernelInfo &Kernel = R.get(Call.Kernel);
    FCL_CHECK(Kernel.Args.size() == Call.Args.size(),
              "argument arity mismatch");
    std::vector<OracleBinding> Bindings;
    for (size_t I = 0; I < Call.Args.size(); ++I) {
      const runtime::KArg &A = Call.Args[I];
      if (A.IsBuffer) {
        Bindings.push_back(OracleBinding::buffer(Host[A.Buf]));
      } else {
        OracleBinding B;
        B.IntValue = A.IntValue;
        B.FpValue = A.FpValue;
        Bindings.push_back(B);
      }
    }
    OracleReport Rep = verifyCall(Kernel, Call.Range, Bindings, Sink,
                                  BudgetBytes);
    if (Rep.Probed)
      ++Probed;
    if (OnCall)
      OnCall(Call, Rep);
    // Advance state so the next call probes against realistic inputs.
    executeCallOnHost(Kernel, Call, Host);
  }
  return Probed;
}

std::vector<work::Workload> fcl::check::coverageWorkloads() {
  // Small sizes: 1D globals are multiples of the 32-wide work-group, 2D
  // globals multiples of (32, 8), matching the workload constructors.
  std::vector<work::Workload> Suite;
  Suite.push_back(work::makeAtax(96, 96));
  Suite.push_back(work::makeBicg(96, 96));
  Suite.push_back(work::makeCorr(64, 64));
  Suite.push_back(work::makeGesummv(96));
  Suite.push_back(work::makeSyrk(64, 64));
  Suite.push_back(work::makeSyr2k(64, 64));
  Suite.push_back(work::makeMvt(96));
  Suite.push_back(work::makeGemm(64, 64, 64));
  Suite.push_back(work::makeCovar(64, 64));
  Suite.push_back(makeVectorCoverage());
  Suite.push_back(makeHistogramCoverage());
  Suite.push_back(makeJacobiCoverage());
  Suite.push_back(makeMergeCoverage());

  // Device-optimized variants share their primary's signature, so variant
  // coverage is the same workload with the call's kernel name substituted.
  const kern::Registry &R = kern::Registry::builtin();
  std::vector<work::Workload> WithVariants = Suite;
  for (const work::Workload &W : Suite) {
    for (size_t CI = 0; CI < W.Calls.size(); ++CI) {
      const kern::KernelInfo *Info = R.find(W.Calls[CI].Kernel);
      if (!Info)
        continue;
      for (const std::string &Variant : Info->Variants) {
        work::Workload Clone = W;
        Clone.Name = W.Name + "+" + Variant;
        Clone.Summary = "variant coverage for " + Variant;
        Clone.Calls[CI].Kernel = Variant;
        WithVariants.push_back(std::move(Clone));
      }
    }
  }
  return WithVariants;
}

std::vector<KernelVerdict> fcl::check::checkAllKernels(DiagSink &Sink,
                                                       uint64_t BudgetBytes) {
  const kern::Registry &R = kern::Registry::builtin();
  std::map<std::string, KernelVerdict> ByName;
  for (const std::string &Name : R.names()) {
    KernelVerdict V;
    V.Kernel = Name;
    V.DeclaredUnsafe = R.get(Name).UsesAtomics;
    ByName.emplace(Name, std::move(V));
  }
  for (const work::Workload &W : coverageWorkloads()) {
    checkWorkload(W, Sink, R, BudgetBytes,
                  [&](const work::KernelCall &Call, const OracleReport &Rep) {
                    KernelVerdict &V = ByName[Call.Kernel];
                    V.Kernel = Call.Kernel;
                    if (Rep.Probed) {
                      V.Covered = true;
                      ++V.CallsProbed;
                    } else {
                      ++V.CallsSkipped;
                    }
                    V.UnsafeToSplit |= Rep.SplitHazard;
                    V.Errors += Rep.Errors;
                    V.Warnings += Rep.Warnings;
                  });
  }
  std::vector<KernelVerdict> Out;
  for (auto &[Name, V] : ByName) {
    if (!V.Covered) {
      Sink.report(Diag::make(DiagKind::KernelNotCovered, Name,
                             "no coverage workload launches this kernel"));
      ++V.Warnings;
    }
    Out.push_back(V);
  }
  return Out;
}

std::string KernelVerdict::classification() const {
  if (!Covered)
    return "not-covered";
  if (UnsafeToSplit)
    return DeclaredUnsafe ? "unsafe-declared" : "UNSAFE-MISDECLARED";
  if (Errors > 0)
    return "misdeclared";
  if (DeclaredUnsafe)
    return "conservative";
  return "fluidic-safe";
}

std::string
fcl::check::renderSafetyReport(const std::vector<KernelVerdict> &Verdicts) {
  size_t NameW = 6;
  for (const KernelVerdict &V : Verdicts)
    NameW = std::max(NameW, V.Kernel.size());
  std::ostringstream OS;
  OS << "fluidic-safety report (" << Verdicts.size() << " kernels)\n";
  OS << std::string(NameW, '-')
     << "--------------------------------------------------\n";
  uint64_t Unsafe = 0, NotCovered = 0, Errors = 0;
  for (const KernelVerdict &V : Verdicts) {
    OS << V.Kernel << std::string(NameW - V.Kernel.size() + 2, ' ')
       << V.classification();
    if (V.CallsProbed)
      OS << "  calls=" << V.CallsProbed;
    if (V.CallsSkipped)
      OS << "  skipped=" << V.CallsSkipped;
    if (V.Errors)
      OS << "  errors=" << V.Errors;
    if (V.Warnings)
      OS << "  warnings=" << V.Warnings;
    OS << "\n";
    Errors += V.Errors;
    if (V.UnsafeToSplit && !V.DeclaredUnsafe)
      ++Unsafe;
    if (!V.Covered)
      ++NotCovered;
  }
  OS << std::string(NameW, '-')
     << "--------------------------------------------------\n";
  OS << "misdeclared-unsafe: " << Unsafe << "  not-covered: " << NotCovered
     << "  error diagnostics: " << Errors << "\n";
  return OS.str();
}
