//===- check/AccessOracle.h - Observed-access verification ------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AccessOracle executes one kernel launch work-group by work-group
/// against shadow copies of its buffers and derives each work-group's
/// byte-exact write footprint, then validates the observed footprints
/// against the declared kern::ArgAccess / UsesAtomics / RowContiguousOutput
/// metadata that FluidiCL's duplicate/merge machinery trusts blindly.
///
/// Kernels access buffers through raw pointers (ArgsView::bufferAs), so the
/// oracle cannot intercept loads and stores. Instead it uses differential
/// probing:
///
///  * Each work-group runs in isolation against pristine buffer copies; the
///    byte diff afterwards is its baseline write set.
///  * For every declared-written argument the group is re-run with that one
///    buffer's bytes XOR-perturbed (0xA5). Bytes whose written values (or
///    write-set membership) change reveal dependence on the buffer's prior
///    contents: a read-modify-write on the same argument, or an Out
///    argument that is secretly an InOut.
///  * A per-byte first-writer map across work-groups detects cross-group
///    write overlaps — the exact hazard that breaks the byte-level
///    diff/merge — and classifies them as lost-update overlaps, benign
///    same-value overlaps, or hidden atomic-style accumulation.
///
/// The oracle assumes the kernel is group-order independent (no work-group
/// reads another group's output), which is precisely the fluidic-safety
/// property being certified; order-dependent kernels surface as collision
/// or prior-contents diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_CHECK_ACCESSORACLE_H
#define FCL_CHECK_ACCESSORACLE_H

#include "check/Diag.h"
#include "kern/Kernel.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fcl {
namespace check {

/// One argument handed to the oracle: a host-side byte vector for buffer
/// arguments (the oracle never mutates it) or a scalar value.
struct OracleBinding {
  const std::vector<std::byte> *Host = nullptr;
  int64_t IntValue = 0;
  double FpValue = 0;

  static OracleBinding buffer(const std::vector<std::byte> &B) {
    OracleBinding V;
    V.Host = &B;
    return V;
  }
  static OracleBinding scalarInt(int64_t I) {
    OracleBinding V;
    V.IntValue = I;
    V.FpValue = static_cast<double>(I);
    return V;
  }
  static OracleBinding scalarFp(double D) {
    OracleBinding V;
    V.FpValue = D;
    V.IntValue = static_cast<int64_t>(D);
    return V;
  }
};

/// Observed behaviour of one argument across the probed launch.
struct ArgObservation {
  /// Distinct bytes written by at least one work-group.
  uint64_t BytesWritten = 0;
  /// Bytes written by 2+ work-groups where at least one write was a
  /// read-modify-write of the same buffer (atomic-style accumulation).
  uint64_t RmwCollisionBytes = 0;
  /// Bytes written by 2+ work-groups with differing plain values (merge
  /// picks an arbitrary winner: lost update).
  uint64_t LostUpdateBytes = 0;
  /// Bytes written by 2+ work-groups with identical plain values.
  uint64_t BenignOverlapBytes = 0;
  /// Written bytes falling outside the writing group's covering row band
  /// (only tracked when the kernel declares RowContiguousOutput).
  uint64_t RowBandEscapes = 0;
  /// Written values somewhere in the launch depend on this argument's
  /// prior contents (fatal for arguments declared Out: FluidiCL hands the
  /// kernel an unmerged duplicate).
  bool PriorContentsDependence = false;
};

/// Result of probing one kernel call.
struct OracleReport {
  /// False when the call was skipped (probe cost above budget).
  bool Probed = false;
  /// Cross-work-group collisions observed (RMW or lost-update): the kernel
  /// must not be split across devices.
  bool SplitHazard = false;
  /// Error-severity diagnostics emitted for this call.
  uint64_t Errors = 0;
  /// Warning-severity diagnostics emitted for this call.
  uint64_t Warnings = 0;
  /// Per-argument observations (empty when !Probed); scalar slots stay
  /// default-initialized.
  std::vector<ArgObservation> Args;
};

/// Default probe budget in scanned bytes (roughly groups x runs x total
/// buffer bytes); calls above it are skipped with a CheckSkippedTooLarge
/// info diagnostic. 1 GiB keeps the probe well under a second.
inline constexpr uint64_t OracleDefaultBudget = 1ull << 30;

/// Probes one launch of \p Kernel over \p Range with arguments \p Args
/// (one binding per declared argument; buffer bindings for In/Out/InOut,
/// scalar bindings for Scalar) and reports metadata disagreements into
/// \p Sink. Host buffers are never modified.
OracleReport verifyCall(const kern::KernelInfo &Kernel,
                        const kern::NDRange &Range,
                        const std::vector<OracleBinding> &Args, DiagSink &Sink,
                        uint64_t BudgetBytes = OracleDefaultBudget);

} // namespace check
} // namespace fcl

#endif // FCL_CHECK_ACCESSORACLE_H
