//===- check/AccessOracle.cpp - Observed-access verification --------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/AccessOracle.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cstring>

using namespace fcl;
using namespace fcl::check;

namespace {

/// XOR pattern applied to one buffer per perturbation run. Any nonzero
/// pattern works; 0xA5 flips bits in both nibbles so float payloads change
/// visibly.
constexpr std::byte PerturbMask{0xA5};

/// Shadow state for one buffer argument.
struct BufProbe {
  size_t ArgIndex = 0;
  uint64_t Size = 0;
  /// Bytes of the covering row band when the row-contiguity check applies
  /// to this argument, 0 otherwise.
  uint64_t BandBytes = 0;
  std::vector<std::byte> Base;      // pristine contents
  std::vector<std::byte> Perturbed; // Base ^ mask (written candidates only)
  std::vector<std::byte> Work;      // the copy the kernel runs against
  std::vector<std::byte> Res0;      // current group's baseline result
  std::vector<uint32_t> FirstWriter; // per byte: 0 = unwritten, else group+1
  std::vector<std::byte> FirstValue; // value the first writer left behind
  std::vector<uint8_t> Rmw;       // byte's value depends on own prior contents
  std::vector<uint8_t> CurWritten;   // current group's write bitmap
  std::vector<uint32_t> CurOffsets;  // current group's written offsets
  ArgObservation Obs;
};

} // namespace

OracleReport fcl::check::verifyCall(const kern::KernelInfo &Kernel,
                                    const kern::NDRange &Range,
                                    const std::vector<OracleBinding> &Args,
                                    DiagSink &Sink, uint64_t BudgetBytes) {
  const size_t NumArgs = Kernel.Args.size();
  FCL_CHECK(Args.size() == NumArgs, "oracle binding count mismatch");

  OracleReport Rep;
  Rep.Args.resize(NumArgs);

  const uint64_t TotalGroups = Range.totalGroups();
  const kern::Dim3 Groups = Range.numGroups();
  const uint64_t RowLen = Range.dims() == 1 ? 1 : Groups.X;
  const uint64_t NumRows = RowLen ? TotalGroups / RowLen : 0;

  std::vector<BufProbe> Bufs;
  uint64_t SumBytes = 0;
  for (size_t I = 0; I < NumArgs; ++I) {
    if (Kernel.Args[I] == kern::ArgAccess::Scalar) {
      FCL_CHECK(!Args[I].Host, "scalar argument bound to a buffer");
      continue;
    }
    FCL_CHECK(Args[I].Host, "buffer argument needs a host vector");
    BufProbe P;
    P.ArgIndex = I;
    P.Base = *Args[I].Host;
    P.Size = P.Base.size();
    FCL_CHECK(P.Size > 0, "empty buffer argument");
    const bool Written = isWrittenAccess(Kernel.Args[I]);
    if (Kernel.RowContiguousOutput && Written && NumRows &&
        P.Size % NumRows == 0)
      P.BandBytes = P.Size / NumRows;
    if (Written) {
      P.Perturbed = P.Base;
      for (std::byte &B : P.Perturbed)
        B ^= PerturbMask;
    }
    P.Work = P.Base;
    P.Res0.resize(P.Size);
    P.FirstWriter.assign(P.Size, 0);
    P.FirstValue.assign(P.Size, std::byte{0});
    P.Rmw.assign(P.Size, 0);
    P.CurWritten.assign(P.Size, 0);
    SumBytes += P.Size;
    Bufs.push_back(std::move(P));
  }

  // Perturbation candidates: every declared-written buffer argument.
  std::vector<size_t> Cands;
  for (size_t PI = 0; PI < Bufs.size(); ++PI)
    if (isWrittenAccess(Kernel.Args[Bufs[PI].ArgIndex]))
      Cands.push_back(PI);

  // Every run re-copies and re-scans every buffer once.
  const uint64_t Estimate = TotalGroups * (1 + Cands.size()) * SumBytes * 2;
  if (Estimate > BudgetBytes) {
    Sink.report(Diag::make(
        DiagKind::CheckSkippedTooLarge, Kernel.Name,
        formatString("probe cost %llu bytes exceeds oracle budget %llu; "
                     "re-run with a smaller problem size to verify this call",
                     (unsigned long long)Estimate,
                     (unsigned long long)BudgetBytes)));
    return Rep;
  }
  Rep.Probed = true;

  std::vector<kern::ArgValue> Values(NumArgs);
  for (size_t I = 0; I < NumArgs; ++I) {
    if (Kernel.Args[I] == kern::ArgAccess::Scalar) {
      Values[I].IntValue = Args[I].IntValue;
      Values[I].FpValue = Args[I].FpValue;
    }
  }
  for (BufProbe &P : Bufs)
    Values[P.ArgIndex] = kern::ArgValue::buffer(P.Work.data(), P.Size);
  const kern::ArgsView View(Values);

  std::vector<std::byte> Scratch(Kernel.LocalBytes);
  auto Exec = [&](uint64_t Flat) {
    if (!Scratch.empty())
      std::memset(Scratch.data(), 0, Scratch.size());
    kern::executeWorkGroup(Kernel, Range, kern::unflattenGroupId(Flat, Groups),
                           View, 0, Range.itemsPerGroup(), Scratch.data());
  };

  const uint64_t ErrBefore = Sink.errorCount();
  const uint64_t WarnBefore = Sink.warningCount();
  std::vector<uint8_t> PriorDep(NumArgs, 0);

  for (uint64_t G = 0; G < TotalGroups; ++G) {
    // Baseline run against pristine contents.
    for (BufProbe &P : Bufs)
      std::memcpy(P.Work.data(), P.Base.data(), P.Size);
    Exec(G);
    for (BufProbe &P : Bufs) {
      std::memcpy(P.Res0.data(), P.Work.data(), P.Size);
      P.CurOffsets.clear();
      for (uint64_t B = 0; B < P.Size; ++B)
        if (P.Res0[B] != P.Base[B]) {
          P.CurWritten[B] = 1;
          P.CurOffsets.push_back(static_cast<uint32_t>(B));
        }
    }

    // One perturbation run per written candidate: flip that buffer's prior
    // contents and compare outcomes against the baseline run.
    for (size_t CI : Cands) {
      for (size_t PI = 0; PI < Bufs.size(); ++PI) {
        BufProbe &P = Bufs[PI];
        std::memcpy(P.Work.data(),
                    PI == CI ? P.Perturbed.data() : P.Base.data(), P.Size);
      }
      Exec(G);
      const size_t CandArg = Bufs[CI].ArgIndex;
      for (size_t PI = 0; PI < Bufs.size(); ++PI) {
        BufProbe &P = Bufs[PI];
        const std::byte *Ref =
            PI == CI ? P.Perturbed.data() : P.Base.data();
        for (uint64_t B = 0; B < P.Size; ++B) {
          const bool WroteNow = P.Work[B] != Ref[B];
          const bool WroteBase = P.CurWritten[B] != 0;
          // A write only the perturbed run could see (the baseline write
          // coincided with the pristine byte) still belongs to the write
          // set.
          if (WroteNow && !WroteBase) {
            P.CurWritten[B] = 1;
            P.CurOffsets.push_back(static_cast<uint32_t>(B));
          }
          // Prior-contents dependence: the byte was written in at least
          // one of the two runs AND the outcomes differ. Comparing final
          // values (not write-set membership) is what keeps value
          // coincidences — a write landing on the pristine byte, or on
          // the perturbed byte — from being misread as dependence.
          if ((WroteNow || WroteBase) && P.Work[B] != P.Res0[B]) {
            PriorDep[CandArg] = 1;
            if (PI == CI)
              P.Rmw[B] = 1;
          }
        }
      }
    }

    // Fold the group's consolidated write set into the cross-group maps.
    for (BufProbe &P : Bufs) {
      const uint64_t Row = G / RowLen;
      for (uint32_t B : P.CurOffsets) {
        const uint32_t Prev = P.FirstWriter[B];
        if (Prev == 0) {
          P.FirstWriter[B] = static_cast<uint32_t>(G) + 1;
          P.FirstValue[B] = P.Res0[B];
        } else if (Prev != static_cast<uint32_t>(G) + 1) {
          if (P.Rmw[B])
            ++P.Obs.RmwCollisionBytes;
          else if (P.FirstValue[B] == P.Res0[B])
            ++P.Obs.BenignOverlapBytes;
          else
            ++P.Obs.LostUpdateBytes;
        }
        if (P.BandBytes &&
            (B < Row * P.BandBytes || B >= (Row + 1) * P.BandBytes))
          ++P.Obs.RowBandEscapes;
        P.CurWritten[B] = 0;
      }
    }
  }

  // Aggregate observations and emit diagnostics.
  bool AnyCollision = false;
  for (BufProbe &P : Bufs) {
    for (uint64_t B = 0; B < P.Size; ++B)
      if (P.FirstWriter[B])
        ++P.Obs.BytesWritten;
    P.Obs.PriorContentsDependence = PriorDep[P.ArgIndex] != 0;
    if (P.Obs.RmwCollisionBytes || P.Obs.LostUpdateBytes)
      AnyCollision = true;
  }

  for (BufProbe &P : Bufs) {
    const kern::ArgAccess Decl = Kernel.Args[P.ArgIndex];
    const ArgObservation &O = P.Obs;
    const int AI = static_cast<int>(P.ArgIndex);
    if (Decl == kern::ArgAccess::In && O.BytesWritten)
      Sink.report(Diag::make(
          DiagKind::WriteToReadOnlyArg, Kernel.Name,
          formatString("declared In but %llu of %llu bytes were written; "
                       "FluidiCL would neither duplicate nor merge this "
                       "buffer, corrupting it on split execution",
                       (unsigned long long)O.BytesWritten,
                       (unsigned long long)P.Size),
          AI));
    if (kern::isWrittenAccess(Decl) && O.BytesWritten == 0) {
      Diag D = Diag::make(
          DiagKind::UnwrittenOutArg, Kernel.Name,
          formatString("declared %s but no work-group wrote it; the "
                       "duplicate/merge cost is paid for nothing",
                       Decl == kern::ArgAccess::Out ? "Out" : "InOut"),
          AI);
      // An InOut that happens not to be written for this shape is wasteful
      // but not corrupting; a silent Out is a misdeclaration.
      if (Decl == kern::ArgAccess::InOut)
        D.Sev = Severity::Warning;
      Sink.report(std::move(D));
    }
    if (Decl == kern::ArgAccess::Out && O.PriorContentsDependence)
      Sink.report(Diag::make(
          DiagKind::OutArgReadsPriorContents, Kernel.Name,
          "declared Out but written values depend on the buffer's prior "
          "contents; must be InOut or results are lost when FluidiCL "
          "substitutes the unmerged duplicate",
          AI));
    if (O.RowBandEscapes)
      Sink.report(Diag::make(
          DiagKind::RowBandViolation, Kernel.Name,
          formatString("declared RowContiguousOutput but %llu written bytes "
                       "fall outside the writing group's row band",
                       (unsigned long long)O.RowBandEscapes),
          AI));
    if (!Kernel.UsesAtomics) {
      if (O.RmwCollisionBytes)
        Sink.report(Diag::make(
            DiagKind::HiddenAtomicHazard, Kernel.Name,
            formatString("%llu bytes see read-modify-write collisions from "
                         "multiple work-groups without UsesAtomics; split "
                         "execution loses increments",
                         (unsigned long long)O.RmwCollisionBytes),
            AI));
      if (O.LostUpdateBytes)
        Sink.report(Diag::make(
            DiagKind::CrossGroupWriteOverlap, Kernel.Name,
            formatString("%llu bytes are written with differing values by "
                         "multiple work-groups; the byte-level merge picks "
                         "an arbitrary winner",
                         (unsigned long long)O.LostUpdateBytes),
            AI));
      if (O.BenignOverlapBytes)
        Sink.report(Diag::make(
            DiagKind::BenignWriteOverlap, Kernel.Name,
            formatString("%llu bytes are written identically by multiple "
                         "work-groups; merge-safe today but fragile",
                         (unsigned long long)O.BenignOverlapBytes),
            AI));
    }
  }
  if (Kernel.UsesAtomics) {
    if (AnyCollision)
      Sink.report(Diag::make(
          DiagKind::UnsafeSplitDeclared, Kernel.Name,
          "cross-work-group collisions observed; correctly classified "
          "unsafe-to-split (GPU-only fallback, paper section 7)"));
    else
      Sink.report(Diag::make(
          DiagKind::DeclaredAtomicsUnobserved, Kernel.Name,
          "declared UsesAtomics but this probe observed no cross-work-group "
          "collision; classification is conservative but safe"));
  }

  Rep.SplitHazard = AnyCollision;
  Rep.Errors = Sink.errorCount() - ErrBefore;
  Rep.Warnings = Sink.warningCount() - WarnBefore;
  for (BufProbe &P : Bufs)
    Rep.Args[P.ArgIndex] = P.Obs;
  return Rep;
}
