//===- check/Diag.cpp - Fluidic-safety diagnostics ------------------------===//

#include "check/Diag.h"

#include "stats/Registry.h"
#include "support/Error.h"

#include <sstream>

namespace fcl::check {

const char *diagKindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::WriteToReadOnlyArg:
    return "access_write_to_in";
  case DiagKind::UnwrittenOutArg:
    return "access_unwritten_out";
  case DiagKind::OutArgReadsPriorContents:
    return "access_out_reads_prior";
  case DiagKind::CrossGroupWriteOverlap:
    return "access_cross_group_overlap";
  case DiagKind::BenignWriteOverlap:
    return "access_benign_overlap";
  case DiagKind::HiddenAtomicHazard:
    return "access_hidden_atomic";
  case DiagKind::UnsafeSplitDeclared:
    return "access_unsafe_split_declared";
  case DiagKind::DeclaredAtomicsUnobserved:
    return "access_atomics_unobserved";
  case DiagKind::RowBandViolation:
    return "access_row_band_violation";
  case DiagKind::KernelNotCovered:
    return "access_kernel_not_covered";
  case DiagKind::CheckSkippedTooLarge:
    return "access_skipped_too_large";
  case DiagKind::CpuRangeViolation:
    return "protocol_cpu_range";
  case DiagKind::BoundaryNotMonotone:
    return "protocol_boundary_not_monotone";
  case DiagKind::StatusBeforeData:
    return "protocol_status_before_data";
  case DiagKind::GpuCoverageGap:
    return "protocol_gpu_coverage_gap";
  case DiagKind::CpuCoverageGap:
    return "protocol_cpu_coverage_gap";
  case DiagKind::MergeBoundaryMismatch:
    return "protocol_merge_boundary_mismatch";
  case DiagKind::DoubleMerge:
    return "protocol_double_merge";
  case DiagKind::UnexpectedMerge:
    return "protocol_unexpected_merge";
  case DiagKind::MergeMissing:
    return "protocol_merge_missing";
  case DiagKind::VersionRegression:
    return "protocol_version_regression";
  case DiagKind::ScratchLeak:
    return "protocol_scratch_leak";
  case DiagKind::UseAfterRelease:
    return "shim_use_after_release";
  case DiagKind::DoubleRelease:
    return "shim_double_release";
  case DiagKind::UnsetKernelArgs:
    return "shim_unset_kernel_args";
  case DiagKind::NonBlockingReadAssumed:
    return "shim_nonblocking_read";
  case DiagKind::LeakedObjects:
    return "shim_leaked_objects";
  case DiagKind::RaceUnorderedAccess:
    return "race_unordered_access";
  case DiagKind::RaceReentrantCallback:
    return "race_reentrant_callback";
  case DiagKind::RaceLeaseOverlap:
    return "race_lease_overlap";
  }
  FCL_UNREACHABLE("unknown DiagKind");
}

Severity diagDefaultSeverity(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::WriteToReadOnlyArg:
  case DiagKind::UnwrittenOutArg:
  case DiagKind::OutArgReadsPriorContents:
  case DiagKind::CrossGroupWriteOverlap:
  case DiagKind::HiddenAtomicHazard:
  case DiagKind::RowBandViolation:
  case DiagKind::CpuRangeViolation:
  case DiagKind::BoundaryNotMonotone:
  case DiagKind::StatusBeforeData:
  case DiagKind::GpuCoverageGap:
  case DiagKind::CpuCoverageGap:
  case DiagKind::MergeBoundaryMismatch:
  case DiagKind::DoubleMerge:
  case DiagKind::UnexpectedMerge:
  case DiagKind::MergeMissing:
  case DiagKind::VersionRegression:
  case DiagKind::ScratchLeak:
  case DiagKind::UseAfterRelease:
  case DiagKind::DoubleRelease:
  case DiagKind::UnsetKernelArgs:
  case DiagKind::RaceUnorderedAccess:
  case DiagKind::RaceReentrantCallback:
  case DiagKind::RaceLeaseOverlap:
    return Severity::Error;
  case DiagKind::BenignWriteOverlap:
  case DiagKind::KernelNotCovered:
  case DiagKind::NonBlockingReadAssumed:
  case DiagKind::LeakedObjects:
    return Severity::Warning;
  case DiagKind::UnsafeSplitDeclared:
  case DiagKind::DeclaredAtomicsUnobserved:
  case DiagKind::CheckSkippedTooLarge:
    return Severity::Info;
  }
  FCL_UNREACHABLE("unknown DiagKind");
}

const char *severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Info:
    return "info";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  FCL_UNREACHABLE("unknown Severity");
}

std::string Diag::str() const {
  std::ostringstream Os;
  Os << severityName(Sev) << ": [" << diagKindName(Kind) << "]";
  if (!Kernel.empty())
    Os << " '" << Kernel << "'";
  if (ArgIndex >= 0)
    Os << " arg #" << ArgIndex;
  Os << ": " << Message;
  if (Repeat > 1)
    Os << " [x" << Repeat << "]";
  return Os.str();
}

bool parsePolicy(const std::string &Text, Policy &Out) {
  if (Text.empty() || Text == "on" || Text == "warn") {
    Out = Policy::Warn;
    return true;
  }
  if (Text == "off") {
    Out = Policy::Off;
    return true;
  }
  if (Text == "fail") {
    Out = Policy::Fail;
    return true;
  }
  return false;
}

void DiagSink::report(Diag D) {
  if (Pol == Policy::Off)
    return;
  if (D.Sev == Severity::Error)
    Errors += D.Repeat;
  else if (D.Sev == Severity::Warning)
    Warnings += D.Repeat;
  if (Stats) {
    Stats->add("check_diags", D.Repeat);
    if (D.Sev == Severity::Error)
      Stats->add("check_errors", D.Repeat);
    else if (D.Sev == Severity::Warning)
      Stats->add("check_warnings", D.Repeat);
    Stats->add(std::string("check_") + diagKindName(D.Kind), D.Repeat);
  }
  // Deduplicate: an identical diagnostic only bumps the first entry's
  // repeat count (first-occurrence context is kept, the observer already
  // fired for it).
  std::string Key;
  Key += diagKindName(D.Kind);
  Key += '\x1f';
  Key += severityName(D.Sev);
  Key += '\x1f';
  Key += D.Kernel;
  Key += '\x1f';
  Key += std::to_string(D.ArgIndex);
  Key += '\x1f';
  Key += D.Message;
  auto It = DedupIndex.find(Key);
  if (It != DedupIndex.end()) {
    Diags[It->second].Repeat += D.Repeat;
    return;
  }
  DedupIndex.emplace(std::move(Key), Diags.size());
  Diags.push_back(std::move(D));
  if (Observer)
    Observer(Diags.back());
}

uint64_t DiagSink::count(DiagKind Kind) const {
  uint64_t N = 0;
  for (const Diag &D : Diags)
    if (D.Kind == Kind)
      N += D.Repeat;
  return N;
}

void DiagSink::clear() {
  Diags.clear();
  DedupIndex.clear();
  Errors = 0;
  Warnings = 0;
}

std::string DiagSink::renderAll() const {
  std::string Out;
  for (const Diag &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

} // namespace fcl::check
