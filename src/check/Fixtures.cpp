//===- check/Fixtures.cpp - Deliberately misdeclared kernels ---------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Fixtures.h"

using namespace fcl;
using namespace fcl::check;
using namespace fcl::kern;

namespace {

constexpr int64_t FixN = 64; // Two 32-wide work-groups.

hw::WorkItemCost fixtureCost() {
  hw::WorkItemCost C;
  C.Flops = 1;
  C.BytesRead = 4;
  C.BytesWritten = 4;
  C.GpuCoalescing = 1.0;
  C.GpuEfficiency = 0.5;
  C.CpuFlopEfficiency = 1.0;
  C.CpuMemEfficiency = 1.0;
  C.LoopTripCount = 1;
  return C;
}

void registerFixtures(Registry &R) {
  // Declares arg 0 In but writes it: the hazard FluidiCL's single-copy
  // treatment of In buffers cannot tolerate.
  {
    KernelInfo K;
    K.Name = "fix_write_to_in";
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      float *A = Args.bufferAs<float>(0);
      float *B = Args.bufferAs<float>(1);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I >= Args.i64(2))
        return;
      B[I] = A[I] * 2.0f;
      A[I] = 1.0f; // Undeclared write.
    };
    K.Cost = [](const CostQuery &) { return fixtureCost(); };
    R.add(std::move(K));
  }

  // Declares two Out buffers but only ever writes the first: the second
  // would be duplicated, merged and transferred for nothing.
  {
    KernelInfo K;
    K.Name = "fix_unwritten_out";
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Out,
              ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      float *B = Args.bufferAs<float>(1);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I < Args.i64(3))
        B[I] = A[I] + 1.0f;
    };
    K.Cost = [](const CostQuery &) { return fixtureCost(); };
    R.add(std::move(K));
  }

  // Declares its accumulator Out but reads it (B[i] += A[i]): FluidiCL
  // hands Out kernels an unmerged duplicate, so prior contents are stale.
  {
    KernelInfo K;
    K.Name = "fix_out_reads_prior";
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      float *B = Args.bufferAs<float>(1);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I < Args.i64(2))
        B[I] = B[I] + A[I]; // Undeclared read of prior contents.
    };
    K.Cost = [](const CostQuery &) { return fixtureCost(); };
    R.add(std::move(K));
  }

  // Every work-group writes the same output slots with its own values:
  // the byte-level merge picks an arbitrary winner (lost update).
  {
    KernelInfo K;
    K.Name = "fix_cross_group_write";
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      float *B = Args.bufferAs<float>(1);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I < Args.i64(2))
        B[Ctx.LocalId.X] = A[I]; // Same slot from every group.
    };
    K.Cost = [](const CostQuery &) { return fixtureCost(); };
    R.add(std::move(K));
  }

  // Histogram-style accumulation without UsesAtomics: cross-group
  // read-modify-write collisions lose increments when split.
  {
    KernelInfo K;
    K.Name = "fix_hidden_atomic";
    K.Args = {ArgAccess::In, ArgAccess::InOut, ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      float *B = Args.bufferAs<float>(1);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I < Args.i64(2))
        B[I % 8] += A[I]; // Accumulates across groups, no UsesAtomics.
    };
    K.Cost = [](const CostQuery &) { return fixtureCost(); };
    R.add(std::move(K));
  }

  // Declares UsesAtomics but is a plain elementwise map: forfeits
  // co-execution for nothing (over-conservative, info diagnostic).
  {
    KernelInfo K;
    K.Name = "fix_false_atomic";
    K.UsesAtomics = true;
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      float *B = Args.bufferAs<float>(1);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I < Args.i64(2))
        B[I] = A[I] * 3.0f;
    };
    K.Cost = [](const CostQuery &) { return fixtureCost(); };
    R.add(std::move(K));
  }

  // Declares RowContiguousOutput but each group writes the other group's
  // band, which breaks the region-transfer extension.
  {
    KernelInfo K;
    K.Name = "fix_row_band";
    K.RowContiguousOutput = true;
    K.Args = {ArgAccess::In, ArgAccess::Out, ArgAccess::Scalar};
    K.Fn = [](const ItemCtx &Ctx, const ArgsView &Args) {
      const float *A = Args.bufferAs<float>(0);
      float *B = Args.bufferAs<float>(1);
      int64_t N = Args.i64(2);
      int64_t I = static_cast<int64_t>(Ctx.GlobalId.X);
      if (I < N)
        B[(I + 32) % N] = A[I]; // Lands in the neighbouring band.
    };
    K.Cost = [](const CostQuery &) { return fixtureCost(); };
    R.add(std::move(K));
  }
}

work::Workload twoBufferCase(const std::string &Kernel) {
  work::Workload W;
  W.Name = "fixture-" + Kernel;
  W.Summary = "misdeclaration fixture";
  W.Buffers = {{"a", FixN * 4}, {"b", FixN * 4}};
  W.Calls.push_back({Kernel, kern::NDRange::of1D(FixN, 32),
                     {runtime::KArg::buffer(0), runtime::KArg::buffer(1),
                      runtime::KArg::i64(FixN)}});
  W.ResultBuffers = {1};
  return W;
}

} // namespace

const kern::Registry &fcl::check::fixtureRegistry() {
  static Registry *R = [] {
    auto *Reg = new Registry();
    registerFixtures(*Reg);
    return Reg;
  }();
  return *R;
}

std::vector<FixtureCase> fcl::check::fixtureCases() {
  std::vector<FixtureCase> Cases;
  Cases.push_back({twoBufferCase("fix_write_to_in"),
                   DiagKind::WriteToReadOnlyArg});
  {
    work::Workload W;
    W.Name = "fixture-fix_unwritten_out";
    W.Summary = "misdeclaration fixture";
    W.Buffers = {{"a", FixN * 4}, {"b", FixN * 4}, {"c", FixN * 4}};
    W.Calls.push_back({"fix_unwritten_out", kern::NDRange::of1D(FixN, 32),
                       {runtime::KArg::buffer(0), runtime::KArg::buffer(1),
                        runtime::KArg::buffer(2), runtime::KArg::i64(FixN)}});
    W.ResultBuffers = {1};
    Cases.push_back({std::move(W), DiagKind::UnwrittenOutArg});
  }
  Cases.push_back({twoBufferCase("fix_out_reads_prior"),
                   DiagKind::OutArgReadsPriorContents});
  Cases.push_back({twoBufferCase("fix_cross_group_write"),
                   DiagKind::CrossGroupWriteOverlap});
  Cases.push_back({twoBufferCase("fix_hidden_atomic"),
                   DiagKind::HiddenAtomicHazard});
  Cases.push_back({twoBufferCase("fix_false_atomic"),
                   DiagKind::DeclaredAtomicsUnobserved});
  Cases.push_back({twoBufferCase("fix_row_band"),
                   DiagKind::RowBandViolation});
  return Cases;
}
