//===- check/Fixtures.h - Deliberately misdeclared kernels ------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixture kernels whose metadata deliberately disagrees with their
/// behaviour, one per AccessOracle diagnostic: write-to-In, never-written
/// Out, Out reading prior contents, cross-work-group lost-update overlap,
/// hidden atomic-style accumulation, over-conservative UsesAtomics, and a
/// RowContiguousOutput violation. They live in their own registry (never
/// in Registry::builtin()) and exist to prove the analyzer catches each
/// misdeclaration with the expected diagnostic — the checker's self-test
/// and fluidicl_sim's --check-fixtures mode both run them.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_CHECK_FIXTURES_H
#define FCL_CHECK_FIXTURES_H

#include "check/Diag.h"
#include "kern/Registry.h"
#include "work/Workload.h"

#include <vector>

namespace fcl {
namespace check {

/// Registry preloaded with the misdeclared fixture kernels (lazily built,
/// shared, read-only).
const kern::Registry &fixtureRegistry();

/// One fixture: a single-call workload over fixtureRegistry() and the
/// diagnostic the AccessOracle must emit for it.
struct FixtureCase {
  work::Workload W;
  DiagKind Expected;
};

/// All fixture cases, one per seeded misdeclaration.
std::vector<FixtureCase> fixtureCases();

} // namespace check
} // namespace fcl

#endif // FCL_CHECK_FIXTURES_H
