//===- check/ProtocolChecker.h - Cooperative-protocol invariants -*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime invariant assertions for the FluidiCL cooperative protocol. The
/// fluidicl runtime calls the on*() hooks at each protocol step of every
/// launch; the checker shadows the partition/merge bookkeeping and reports
/// violations of the rules that keep the diff/merge sound:
///
///  * CPU subkernel ranges descend contiguously from the top of the NDRange
///    and never re-execute a work-group (disjoint CPU/GPU partitions).
///  * Every status commit's boundary is non-increasing, and the CPU data
///    covering [boundary, total) was staged on the hd queue before the
///    status was committed ("data travels before status", section 4.2).
///  * The merge set fixed when the GPU exits credits the GPU only with
///    work-groups it executed and the CPU only with work-groups whose
///    completion was committed; each out buffer is merged exactly once.
///  * VersionTracker versions move monotonically and the CPU copy never
///    claims a version newer than the expected one.
///  * All pooled scratch buffers return to the BufferPool by run end.
///
/// Hooks are designed to be called from completion callbacks on the
/// simulated clock; per-launch state is keyed by kernel id, so trailing
/// events of a finished launch interleaving with the next launch are fine.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_CHECK_PROTOCOLCHECKER_H
#define FCL_CHECK_PROTOCOLCHECKER_H

#include "check/Diag.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fcl {
namespace check {

/// Shadow-verifies the cooperative execution protocol. One instance per
/// fluidicl::Runtime; diagnostics go to the shared DiagSink.
class ProtocolChecker {
public:
  explicit ProtocolChecker(DiagSink &Sink) : Sink(Sink) {}

  /// A kernel launch began. \p NumOuts is the number of written (merged)
  /// buffers; \p Cooperative is false for GPU-only fallbacks.
  void onLaunchStart(uint64_t Id, const std::string &Name,
                     uint64_t TotalGroups, size_t NumOuts, bool Cooperative);

  /// A CPU subkernel covering flat work-groups [Begin, End) completed.
  void onCpuSubkernel(uint64_t Id, uint64_t Begin, uint64_t End);

  /// CPU data covering flat work-groups [CoveredFrom, total) for out buffer
  /// \p OutSlot was staged on the hd queue (ahead of the next status).
  void onDataStaged(uint64_t Id, size_t OutSlot, uint64_t CoveredFrom);

  /// A status message carrying \p Boundary completed on the hd queue.
  void onStatusCommit(uint64_t Id, uint64_t Boundary);

  /// The GPU kernel exited having executed \p ExecutedGroups work-groups.
  void onGpuFinished(uint64_t Id, uint64_t ExecutedGroups);

  /// The merge set was fixed: the GPU keeps [0, Boundary), the CPU provides
  /// [Boundary, total). \p AnyCpuData is false when no merge will run.
  void onMergeSet(uint64_t Id, uint64_t Boundary, bool CpuRanAll,
                  bool AnyCpuData);

  /// A merge kernel for out buffer \p OutSlot was enqueued.
  void onMergeEnqueued(uint64_t Id, size_t OutSlot);

  /// \p Count pooled scratch buffers of this launch were released.
  void onScratchReleased(uint64_t Id, size_t Count);

  /// A VersionTracker mutation left buffer \p Buf at (Expected, CpuVersion).
  void onVersionNote(uint32_t Buf, uint64_t Expected, uint64_t CpuVersion);

  /// End of run (Runtime::finish after draining): per-launch merge/scratch
  /// completeness plus the pool-leak check. Idempotent.
  void onRunFinish(size_t PoolInUse);

private:
  struct LaunchState {
    std::string Name;
    uint64_t Total = 0;
    size_t NumOuts = 0;
    bool Cooperative = false;
    uint64_t CpuLow = 0;       // Lowest flat ID the CPU has executed.
    uint64_t LastBoundary = 0; // Last committed GPU-visible boundary.
    uint64_t GpuExecuted = 0;
    bool GpuFinished = false;
    bool MergeSetFixed = false;
    bool ExpectMerges = false;
    bool CpuRanAll = false;
    std::vector<uint64_t> DataCoveredFrom; // Per out slot.
    std::vector<uint64_t> MergeCount;      // Per out slot.
    bool Finalized = false;
  };

  LaunchState *find(uint64_t Id);
  void reportLaunch(DiagKind Kind, const LaunchState &L, std::string Message);

  DiagSink &Sink;
  std::map<uint64_t, LaunchState> Launches;
  // Per-buffer shadow of the VersionTracker: (expected, cpu version).
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> Versions;
};

} // namespace check
} // namespace fcl

#endif // FCL_CHECK_PROTOCOLCHECKER_H
