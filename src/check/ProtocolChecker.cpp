//===- check/ProtocolChecker.cpp - Cooperative-protocol invariants --------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/ProtocolChecker.h"

#include "support/Format.h"

using namespace fcl;
using namespace fcl::check;

ProtocolChecker::LaunchState *ProtocolChecker::find(uint64_t Id) {
  auto It = Launches.find(Id);
  return It == Launches.end() ? nullptr : &It->second;
}

void ProtocolChecker::reportLaunch(DiagKind Kind, const LaunchState &L,
                                   std::string Message) {
  Sink.report(Diag::make(Kind, L.Name, std::move(Message)));
}

void ProtocolChecker::onLaunchStart(uint64_t Id, const std::string &Name,
                                    uint64_t TotalGroups, size_t NumOuts,
                                    bool Cooperative) {
  LaunchState L;
  L.Name = Name;
  L.Total = TotalGroups;
  L.NumOuts = NumOuts;
  L.Cooperative = Cooperative;
  L.CpuLow = TotalGroups;
  L.LastBoundary = TotalGroups;
  L.DataCoveredFrom.assign(NumOuts, TotalGroups);
  L.MergeCount.assign(NumOuts, 0);
  Launches[Id] = std::move(L);
}

void ProtocolChecker::onCpuSubkernel(uint64_t Id, uint64_t Begin,
                                     uint64_t End) {
  LaunchState *L = find(Id);
  if (!L)
    return;
  if (Begin >= End || End > L->Total || End != L->CpuLow) {
    reportLaunch(
        DiagKind::CpuRangeViolation, *L,
        formatString("CPU subkernel [%llu, %llu) does not extend the "
                     "descending partition contiguously (next end must be "
                     "%llu of %llu)",
                     (unsigned long long)Begin, (unsigned long long)End,
                     (unsigned long long)L->CpuLow,
                     (unsigned long long)L->Total));
    return;
  }
  L->CpuLow = Begin;
}

void ProtocolChecker::onDataStaged(uint64_t Id, size_t OutSlot,
                                   uint64_t CoveredFrom) {
  LaunchState *L = find(Id);
  if (!L || OutSlot >= L->DataCoveredFrom.size())
    return;
  if (CoveredFrom < L->DataCoveredFrom[OutSlot])
    L->DataCoveredFrom[OutSlot] = CoveredFrom;
}

void ProtocolChecker::onStatusCommit(uint64_t Id, uint64_t Boundary) {
  LaunchState *L = find(Id);
  if (!L)
    return;
  if (Boundary > L->LastBoundary)
    reportLaunch(
        DiagKind::BoundaryNotMonotone, *L,
        formatString("status boundary rose from %llu to %llu; the "
                     "GPU-visible boundary must be non-increasing",
                     (unsigned long long)L->LastBoundary,
                     (unsigned long long)Boundary));
  if (Boundary < L->CpuLow)
    reportLaunch(
        DiagKind::CpuCoverageGap, *L,
        formatString("status claims CPU completion down to group %llu but "
                     "the CPU only executed down to %llu",
                     (unsigned long long)Boundary,
                     (unsigned long long)L->CpuLow));
  for (size_t S = 0; S < L->DataCoveredFrom.size(); ++S)
    if (L->DataCoveredFrom[S] > Boundary)
      reportLaunch(
          DiagKind::StatusBeforeData, *L,
          formatString("status committed boundary %llu but out buffer %zu "
                       "data is only staged from group %llu; data must "
                       "travel before status",
                       (unsigned long long)Boundary, S,
                       (unsigned long long)L->DataCoveredFrom[S]));
  if (Boundary < L->LastBoundary)
    L->LastBoundary = Boundary;
}

void ProtocolChecker::onGpuFinished(uint64_t Id, uint64_t ExecutedGroups) {
  LaunchState *L = find(Id);
  if (!L)
    return;
  L->GpuFinished = true;
  L->GpuExecuted = ExecutedGroups;
  if (ExecutedGroups > L->Total)
    reportLaunch(DiagKind::GpuCoverageGap, *L,
                 formatString("GPU reports %llu executed groups of %llu",
                              (unsigned long long)ExecutedGroups,
                              (unsigned long long)L->Total));
}

void ProtocolChecker::onMergeSet(uint64_t Id, uint64_t Boundary,
                                 bool CpuRanAll, bool AnyCpuData) {
  LaunchState *L = find(Id);
  if (!L)
    return;
  L->MergeSetFixed = true;
  L->CpuRanAll = CpuRanAll;
  L->ExpectMerges =
      AnyCpuData && L->Cooperative && L->NumOuts > 0;
  if (!L->Cooperative || CpuRanAll)
    return; // When the CPU owns everything the boundary is moot.
  if (L->GpuExecuted < Boundary)
    reportLaunch(
        DiagKind::GpuCoverageGap, *L,
        formatString("merge set credits the GPU with [0, %llu) but it only "
                     "executed %llu groups",
                     (unsigned long long)Boundary,
                     (unsigned long long)L->GpuExecuted));
  if (Boundary < L->CpuLow)
    reportLaunch(
        DiagKind::CpuCoverageGap, *L,
        formatString("merge set credits the CPU with [%llu, %llu) but it "
                     "only executed down to group %llu",
                     (unsigned long long)Boundary,
                     (unsigned long long)L->Total,
                     (unsigned long long)L->CpuLow));
  if (Boundary != L->LastBoundary)
    reportLaunch(
        DiagKind::MergeBoundaryMismatch, *L,
        formatString("merge set boundary %llu disagrees with the last "
                     "committed status boundary %llu",
                     (unsigned long long)Boundary,
                     (unsigned long long)L->LastBoundary));
}

void ProtocolChecker::onMergeEnqueued(uint64_t Id, size_t OutSlot) {
  LaunchState *L = find(Id);
  if (!L || OutSlot >= L->MergeCount.size())
    return;
  if (++L->MergeCount[OutSlot] > 1)
    reportLaunch(DiagKind::DoubleMerge, *L,
                 formatString("out buffer %zu merged %llu times; CPU data "
                              "must be applied exactly once",
                              OutSlot,
                              (unsigned long long)L->MergeCount[OutSlot]));
  else if (!L->ExpectMerges)
    reportLaunch(DiagKind::UnexpectedMerge, *L,
                 formatString("merge enqueued for out buffer %zu although "
                              "the CPU contributed no data",
                              OutSlot));
}

void ProtocolChecker::onScratchReleased(uint64_t Id, size_t Count) {
  LaunchState *L = find(Id);
  if (!L)
    return;
  // KernelExec acquires two scratch buffers (orig + cpu-data) per out
  // buffer of a cooperative launch; they must all come back in one batch.
  if (L->Cooperative && Count != 2 * L->NumOuts)
    reportLaunch(DiagKind::ScratchLeak, *L,
                 formatString("released %zu pooled scratch buffers, "
                              "expected %zu (2 per out buffer)",
                              Count, 2 * L->NumOuts));
}

void ProtocolChecker::onVersionNote(uint32_t Buf, uint64_t Expected,
                                    uint64_t CpuVersion) {
  auto [It, Inserted] = Versions.try_emplace(Buf, Expected, CpuVersion);
  auto &[LastExpected, LastCpu] = It->second;
  if (!Inserted && (Expected < LastExpected || CpuVersion < LastCpu))
    Sink.report(Diag::make(
        DiagKind::VersionRegression, "",
        formatString("buffer %u version moved backwards: expected %llu -> "
                     "%llu, cpu %llu -> %llu",
                     Buf, (unsigned long long)LastExpected,
                     (unsigned long long)Expected,
                     (unsigned long long)LastCpu,
                     (unsigned long long)CpuVersion)));
  if (CpuVersion > Expected)
    Sink.report(Diag::make(
        DiagKind::VersionRegression, "",
        formatString("buffer %u CPU copy claims version %llu newer than "
                     "the expected version %llu",
                     Buf, (unsigned long long)CpuVersion,
                     (unsigned long long)Expected)));
  LastExpected = Expected;
  LastCpu = CpuVersion;
}

void ProtocolChecker::onRunFinish(size_t PoolInUse) {
  for (auto &[Id, L] : Launches) {
    (void)Id;
    if (L.Finalized)
      continue;
    L.Finalized = true;
    if (!L.ExpectMerges)
      continue;
    for (size_t S = 0; S < L.MergeCount.size(); ++S)
      if (L.MergeCount[S] == 0)
        reportLaunch(
            DiagKind::MergeMissing, L,
            formatString("out buffer %zu was never merged although the CPU "
                         "contributed data below boundary %llu",
                         S, (unsigned long long)L.LastBoundary));
  }
  if (PoolInUse > 0)
    Sink.report(Diag::make(
        DiagKind::ScratchLeak, "",
        formatString("%zu pooled buffers still checked out after the run "
                     "drained",
                     PoolInUse)));
}
