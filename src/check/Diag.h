//===- check/Diag.h - Fluidic-safety diagnostics ----------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic catalogue and sink of the fcl::check subsystem. Three
/// producers feed it: the AccessOracle (observed kernel access footprints
/// vs declared ArgAccess/UsesAtomics metadata), the ProtocolChecker
/// (cooperative-protocol invariants inside the FluidiCL runtime), and the
/// ShimLint validation layer in the OpenCL-style host API. The sink
/// collects structured diagnostics, mirrors them into fcl::stats counters
/// (check_errors, check_warnings, check_<kind>) and, when a tracer is
/// observing the run, into zero-duration "Check" lane slices so violations
/// line up with the timeline.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_CHECK_DIAG_H
#define FCL_CHECK_DIAG_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace fcl {

namespace stats {
class Registry;
}

namespace check {

/// Everything the checker can complain about. Grouped by producer; the
/// catalogue (name, default severity, meaning) is documented in
/// docs/ANALYSIS.md.
enum class DiagKind {
  // --- AccessOracle: declared metadata vs observed behaviour -------------
  /// A work-item wrote bytes of an argument declared ArgAccess::In.
  WriteToReadOnlyArg,
  /// An argument declared Out (or InOut) was never written by any
  /// work-group of the probe launch.
  UnwrittenOutArg,
  /// Written values of an argument declared Out depend on the buffer's
  /// prior contents: the argument must be declared InOut or its data is
  /// lost when FluidiCL substitutes the unmerged duplicate.
  OutArgReadsPriorContents,
  /// Two work-groups wrote different values to the same byte without the
  /// kernel being marked UsesAtomics: the byte-level diff/merge picks an
  /// arbitrary winner (lost update).
  CrossGroupWriteOverlap,
  /// Two work-groups wrote the same byte with the same value (e.g.
  /// redundant boundary writes). Merge-safe, but fragile.
  BenignWriteOverlap,
  /// Read-modify-write collision across work-groups (histogram-style
  /// accumulation) on a kernel not marked UsesAtomics: splitting loses
  /// increments.
  HiddenAtomicHazard,
  /// Cross-work-group collisions observed and UsesAtomics is declared:
  /// the kernel is correctly classified unsafe-to-split (GPU-only
  /// fallback, paper section 7).
  UnsafeSplitDeclared,
  /// UsesAtomics is declared but no collision was observed in the probe:
  /// possibly over-conservative (safe, but forfeits co-execution).
  DeclaredAtomicsUnobserved,
  /// KernelInfo::RowContiguousOutput is declared but a work-group wrote
  /// outside its covering row band (breaks the region-transfer extension).
  RowBandViolation,
  /// A registered kernel has no coverage workload; the sweep could not
  /// verify it.
  KernelNotCovered,
  /// A call was skipped because the probe cost exceeds the oracle budget.
  CheckSkippedTooLarge,

  // --- ProtocolChecker: cooperative-execution invariants ------------------
  /// CPU subkernel ranges must descend contiguously from the top of the
  /// NDRange and never re-execute a work-group.
  CpuRangeViolation,
  /// The GPU-visible boundary must be non-increasing.
  BoundaryNotMonotone,
  /// A status commit advertised CPU work-groups whose data was never
  /// staged on the hd queue (the "data travels before status" rule).
  StatusBeforeData,
  /// The merge set credits the GPU with work-groups it never executed.
  GpuCoverageGap,
  /// The merge set credits the CPU with work-groups it never executed (or
  /// whose completion was never committed).
  CpuCoverageGap,
  /// The merge set boundary disagrees with the last committed status.
  MergeBoundaryMismatch,
  /// An out buffer was merged more than once (double-applied CPU data).
  DoubleMerge,
  /// A merge ran although the CPU contributed no data.
  UnexpectedMerge,
  /// Cooperative launch finished without merging every out buffer.
  MergeMissing,
  /// A buffer version moved backwards, or the CPU copy claims a version
  /// newer than the expected one.
  VersionRegression,
  /// Pooled scratch buffers (orig / cpu-data) were not all returned.
  ScratchLeak,

  // --- ShimLint: OpenCL-style host API misuse -----------------------------
  /// An API call referenced a released context, queue, buffer or kernel.
  UseAfterRelease,
  /// An object was released twice.
  DoubleRelease,
  /// clEnqueueNDRangeKernel with unset kernel arguments.
  UnsetKernelArgs,
  /// A non-blocking read was requested; the shim treats it as blocking,
  /// but the host must not touch the result before the event completes in
  /// real OpenCL.
  NonBlockingReadAssumed,
  /// A context was released while buffers/kernels/queues were still live.
  LeakedObjects,

  // --- fcl::race: would-be concurrency hazards (race/Bridge.h) ------------
  /// Two conflicting accesses to a shared host structure are unordered by
  /// the event graph's happens-before relation: a data race once
  /// simulators move onto OS threads.
  RaceUnorderedAccess,
  /// A non-reentrant callback scope was re-entered while active.
  RaceReentrantCallback,
  /// A device/resource lease was acquired while still held elsewhere.
  RaceLeaseOverlap,
};

/// Number of distinct DiagKind values (for tables/tests).
inline constexpr int NumDiagKinds =
    static_cast<int>(DiagKind::RaceLeaseOverlap) + 1;

enum class Severity {
  Info,
  Warning,
  Error,
};

/// Stable snake_case identifier (also the stats counter suffix).
const char *diagKindName(DiagKind Kind);

/// Severity a diagnostic of \p Kind carries unless the producer overrides
/// it (e.g. UnwrittenOutArg is an Error for Out but a Warning for InOut).
Severity diagDefaultSeverity(DiagKind Kind);

const char *severityName(Severity Sev);

/// One structured diagnostic.
struct Diag {
  DiagKind Kind;
  Severity Sev;
  /// Kernel (or API object) the diagnostic is about; may be empty.
  std::string Kernel;
  /// Argument index for per-argument access diagnostics, -1 otherwise.
  int ArgIndex = -1;
  /// Human-readable description with the observed evidence.
  std::string Message;
  /// Occurrences of this exact diagnostic. The sink deduplicates repeats
  /// of an identical (kind, severity, kernel, arg, message) diagnostic
  /// into one entry with this count, keeping first-occurrence context, so
  /// long serve runs cannot grow diagnostic memory unboundedly.
  uint64_t Repeat = 1;

  static Diag make(DiagKind Kind, std::string Kernel, std::string Message,
                   int ArgIndex = -1) {
    Diag D;
    D.Kind = Kind;
    D.Sev = diagDefaultSeverity(Kind);
    D.Kernel = std::move(Kernel);
    D.ArgIndex = ArgIndex;
    D.Message = std::move(Message);
    return D;
  }

  /// "error: [access_write_to_in] kernel 'x' arg #0: ..." rendering.
  std::string str() const;
};

/// What the embedding tool does with error diagnostics.
enum class Policy {
  /// Checking disabled; report() is a no-op.
  Off,
  /// Collect and report; the run continues and exits successfully.
  Warn,
  /// Collect and report; tools exit non-zero when any Error was seen.
  Fail,
};

/// Parses off|warn|fail (empty/"on" -> Warn). Returns false on junk.
bool parsePolicy(const std::string &Text, Policy &Out);

/// Collects diagnostics and fans them out to stats counters, the log, and
/// an optional observer (the FluidiCL runtime uses the observer to emit
/// tracer instants).
class DiagSink {
public:
  explicit DiagSink(Policy P = Policy::Warn) : Pol(P) {}

  Policy policy() const { return Pol; }
  void setPolicy(Policy P) { Pol = P; }
  bool enabled() const { return Pol != Policy::Off; }

  /// Counter registry that mirrors every reported diagnostic (may be
  /// null). Counters: check_diags, check_errors, check_warnings, and
  /// check_<kind-name> per kind.
  void setStats(stats::Registry *R) { Stats = R; }

  /// Called for every collected diagnostic, after counters are bumped.
  void setObserver(std::function<void(const Diag &)> Fn) {
    Observer = std::move(Fn);
  }

  /// Collects \p D (no-op when the policy is Off). A diagnostic identical
  /// to an already-collected one only bumps that entry's Repeat count
  /// (counters track total occurrences; the observer fires on the first
  /// occurrence only).
  void report(Diag D);

  const std::vector<Diag> &diags() const { return Diags; }
  uint64_t errorCount() const { return Errors; }
  uint64_t warningCount() const { return Warnings; }

  /// Number of collected diagnostics of \p Kind.
  uint64_t count(DiagKind Kind) const;

  /// True when the policy demands a non-zero exit (Fail + any Error).
  bool shouldFail() const { return Pol == Policy::Fail && Errors > 0; }

  void clear();

  /// Renders every collected diagnostic, one per line.
  std::string renderAll() const;

private:
  Policy Pol;
  stats::Registry *Stats = nullptr;
  std::function<void(const Diag &)> Observer;
  std::vector<Diag> Diags;
  /// Dedup index: identity key of each collected diagnostic -> index into
  /// Diags (see report()).
  std::map<std::string, size_t> DedupIndex;
  uint64_t Errors = 0;
  uint64_t Warnings = 0;
};

} // namespace check
} // namespace fcl

#endif // FCL_CHECK_DIAG_H
