//===- check/Checker.h - Whole-registry safety sweep ------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the AccessOracle over whole workloads and over the entire kernel
/// registry. checkWorkload probes every kernel call of one application
/// against host reference data, advancing the host state call by call so
/// each probe sees the inputs the real run would. checkAllKernels sweeps a
/// coverage suite that collectively launches every built-in kernel
/// (including device-optimized variants) and aggregates a per-kernel
/// safety verdict — the report fluidicl_check prints.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_CHECK_CHECKER_H
#define FCL_CHECK_CHECKER_H

#include "check/AccessOracle.h"
#include "check/Diag.h"
#include "kern/Registry.h"
#include "work/Workload.h"

#include <functional>
#include <string>
#include <vector>

namespace fcl {
namespace check {

/// Aggregated safety verdict for one registered kernel.
struct KernelVerdict {
  std::string Kernel;
  /// At least one coverage call was probed to completion.
  bool Covered = false;
  uint64_t CallsProbed = 0;
  /// Calls skipped for budget (counted separately from coverage).
  uint64_t CallsSkipped = 0;
  /// Cross-work-group collisions observed: must not be split.
  bool UnsafeToSplit = false;
  /// KernelInfo::UsesAtomics (the runtime's GPU-only fallback trigger).
  bool DeclaredUnsafe = false;
  uint64_t Errors = 0;
  uint64_t Warnings = 0;

  /// One-word classification for the safety report:
  /// fluidic-safe | unsafe-declared | UNSAFE-MISDECLARED | misdeclared |
  /// conservative | not-covered.
  std::string classification() const;
};

/// Observer invoked after each probed call of checkWorkload.
using CallObserver =
    std::function<void(const work::KernelCall &, const OracleReport &)>;

/// Probes every kernel call of \p W with the AccessOracle, resolving
/// kernels in \p R and advancing host buffer state between calls exactly
/// like work::computeReference. Returns the number of calls probed (not
/// skipped). Diagnostics go to \p Sink.
uint64_t checkWorkload(const work::Workload &W, DiagSink &Sink,
                       const kern::Registry &R,
                       uint64_t BudgetBytes = OracleDefaultBudget,
                       const CallObserver &OnCall = {});

/// Small-sized workloads that collectively launch every built-in kernel:
/// the scaled Polybench suite plus vector/histogram/jacobi/merge coverage
/// and an auto-generated clone per registered kernel variant.
std::vector<work::Workload> coverageWorkloads();

/// Runs coverageWorkloads() against the builtin registry and aggregates
/// one verdict per registered kernel, sorted by name. Registered kernels
/// no coverage workload launches get a KernelNotCovered warning.
std::vector<KernelVerdict>
checkAllKernels(DiagSink &Sink, uint64_t BudgetBytes = OracleDefaultBudget);

/// Renders \p Verdicts as the aligned safety-report table.
std::string renderSafetyReport(const std::vector<KernelVerdict> &Verdicts);

} // namespace check
} // namespace fcl

#endif // FCL_CHECK_CHECKER_H
