//===- support/Log.cpp - Leveled diagnostics logging ----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace fcl;

static LogLevel parseEnvLevel() {
  const char *Env = std::getenv("FCL_LOG");
  if (!Env)
    return LogLevel::Warn;
  if (std::strcmp(Env, "debug") == 0)
    return LogLevel::Debug;
  if (std::strcmp(Env, "info") == 0)
    return LogLevel::Info;
  if (std::strcmp(Env, "silent") == 0)
    return LogLevel::Silent;
  return LogLevel::Warn;
}

static LogLevel &currentLevel() {
  static LogLevel Level = parseEnvLevel();
  return Level;
}

void fcl::setLogLevel(LogLevel Level) { currentLevel() = Level; }

LogLevel fcl::logLevel() { return currentLevel(); }

void fcl::logMessage(LogLevel Level, const char *Fmt, ...) {
  if (static_cast<int>(Level) > static_cast<int>(currentLevel()))
    return;
  va_list Args;
  va_start(Args, Fmt);
  std::string Body = formatStringV(Fmt, Args);
  va_end(Args);
  const char *Tag = Level == LogLevel::Debug  ? "debug"
                    : Level == LogLevel::Info ? "info"
                                              : "warn";
  std::fprintf(stderr, "[fcl:%s] %s\n", Tag, Body.c_str());
}
