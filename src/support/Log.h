//===- support/Log.h - Leveled diagnostics logging -------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime-switchable diagnostic logging to stderr. The FluidiCL scheduler
/// logs its work-distribution decisions at the Debug level so experiments
/// can be traced (set FCL_LOG=debug or call setLogLevel).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SUPPORT_LOG_H
#define FCL_SUPPORT_LOG_H

namespace fcl {

enum class LogLevel {
  Silent = 0,
  Warn = 1,
  Info = 2,
  Debug = 3,
};

/// Sets the process-wide log threshold.
void setLogLevel(LogLevel Level);

/// Returns the current threshold; initialized once from the FCL_LOG
/// environment variable ("silent", "warn", "info", "debug").
LogLevel logLevel();

/// Emits a printf-style message to stderr if \p Level is enabled.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void logMessage(LogLevel Level, const char *Fmt, ...);

} // namespace fcl

#define FCL_LOG_DEBUG(...)                                                     \
  ::fcl::logMessage(::fcl::LogLevel::Debug, __VA_ARGS__)
#define FCL_LOG_INFO(...) ::fcl::logMessage(::fcl::LogLevel::Info, __VA_ARGS__)
#define FCL_LOG_WARN(...) ::fcl::logMessage(::fcl::LogLevel::Warn, __VA_ARGS__)

#endif // FCL_SUPPORT_LOG_H
