//===- support/Csv.cpp - CSV writer ---------------------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

#include "support/Error.h"

#include <cstdio>

using namespace fcl;

static std::string escapeCell(const std::string &Cell) {
  bool NeedsQuote = Cell.find_first_of(",\"\n") != std::string::npos;
  if (!NeedsQuote)
    return Cell;
  std::string Out = "\"";
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

CsvWriter::CsvWriter(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void CsvWriter::addRow(std::vector<std::string> Cells) {
  FCL_CHECK(Cells.size() == Header.size(), "csv row arity mismatch");
  Rows.push_back(std::move(Cells));
}

std::string CsvWriter::render() const {
  std::string Out;
  auto AppendRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      Out += escapeCell(Row[I]);
      if (I + 1 != Row.size())
        Out += ',';
    }
    Out += '\n';
  };
  AppendRow(Header);
  for (const auto &Row : Rows)
    AppendRow(Row);
  return Out;
}

bool CsvWriter::writeFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Text = render();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return Written == Text.size();
}
