//===- support/Table.cpp - Aligned console table printer -----------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include "support/Error.h"

using namespace fcl;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Cells) {
  FCL_CHECK(Cells.size() == Header.size(), "table row arity mismatch");
  Rows.push_back(std::move(Cells));
}

std::string Table::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto AppendRow = [&](std::string &Out, const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      Out += Row[I];
      if (I + 1 == Row.size())
        break;
      Out.append(Widths[I] - Row[I].size() + 2, ' ');
    }
    Out += '\n';
  };

  std::string Out;
  AppendRow(Out, Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  Out.append(Total > 2 ? Total - 2 : Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    AppendRow(Out, Row);
  return Out;
}

void Table::print(std::FILE *Out) const {
  std::string Text = render();
  std::fwrite(Text.data(), 1, Text.size(), Out);
}
