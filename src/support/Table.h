//===- support/Table.h - Aligned console table printer --------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny aligned-column table builder used by the bench harnesses to print
/// the paper's tables and figure series in a readable form.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SUPPORT_TABLE_H
#define FCL_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace fcl {

/// Collects rows of strings and prints them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends one row; must have the same arity as the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (header, separator, rows) as a string.
  std::string render() const;

  /// Prints the rendered table to \p Out (defaults to stdout).
  void print(std::FILE *Out = stdout) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace fcl

#endif // FCL_SUPPORT_TABLE_H
