//===- support/Error.h - Fatal errors and unreachable markers -*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error helpers. The library follows the LLVM convention:
/// invariant violations abort at the point of failure with a diagnostic.
/// Recoverable conditions are reported through return values instead.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SUPPORT_ERROR_H
#define FCL_SUPPORT_ERROR_H

namespace fcl {

/// Prints \p Message (with file/line context) to stderr and aborts.
[[noreturn]] void fatalError(const char *File, int Line, const char *Message);

} // namespace fcl

/// Aborts with a diagnostic; use for states that indicate a bug.
#define FCL_FATAL(Msg) ::fcl::fatalError(__FILE__, __LINE__, (Msg))

/// Marks control flow that must never be reached.
#define FCL_UNREACHABLE(Msg) ::fcl::fatalError(__FILE__, __LINE__, (Msg))

/// Checks an invariant in all build modes (unlike assert).
#define FCL_CHECK(Cond, Msg)                                                   \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::fcl::fatalError(__FILE__, __LINE__, (Msg));                            \
  } while (false)

#endif // FCL_SUPPORT_ERROR_H
