//===- support/Format.h - printf-style string formatting ------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small printf-style formatting helpers returning std::string. Used instead
/// of iostreams throughout the library (iostream is avoided per the LLVM
/// coding standards this project follows).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SUPPORT_FORMAT_H
#define FCL_SUPPORT_FORMAT_H

#include <string>

namespace fcl {

/// Formats like vsnprintf into a std::string.
std::string formatStringV(const char *Fmt, va_list Args);

/// Formats like snprintf into a std::string.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string formatString(const char *Fmt, ...);

/// Escapes \p S for inclusion inside a JSON string literal: quotes and
/// backslashes are backslash-escaped, control characters become \uXXXX.
/// Shared by every JSON emitter (trace, stats) so no interpolation site can
/// produce invalid JSON from a hostile kernel or buffer name.
std::string jsonEscape(const std::string &S);

} // namespace fcl

#endif // FCL_SUPPORT_FORMAT_H
