//===- support/Format.cpp - printf-style string formatting ---------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>

using namespace fcl;

std::string fcl::formatStringV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  return Result;
}

std::string fcl::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = formatStringV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string fcl::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      continue;
    case '\\':
      Out += "\\\\";
      continue;
    case '\n':
      Out += "\\n";
      continue;
    case '\t':
      Out += "\\t";
      continue;
    case '\r':
      Out += "\\r";
      continue;
    default:
      break;
    }
    if (static_cast<unsigned char>(C) < 0x20) {
      Out += formatString("\\u%04x", static_cast<unsigned>(
                                         static_cast<unsigned char>(C)));
      continue;
    }
    Out += C;
  }
  return Out;
}
