//===- support/Error.cpp - Fatal errors ----------------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void fcl::fatalError(const char *File, int Line, const char *Message) {
  std::fprintf(stderr, "fatal error: %s:%d: %s\n", File, Line, Message);
  std::fflush(stderr);
  std::abort();
}
