//===- support/Statistics.cpp - Summary statistics helpers ---------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace fcl;

double fcl::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double fcl::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values) {
    FCL_CHECK(V > 0, "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double fcl::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0;
  double M = mean(Values);
  double SqSum = 0;
  for (double V : Values)
    SqSum += (V - M) * (V - M);
  return std::sqrt(SqSum / static_cast<double>(Values.size() - 1));
}

double fcl::percentile(const std::vector<double> &Values, double Pct) {
  if (Values.empty())
    return 0;
  FCL_CHECK(Pct >= 0 && Pct <= 100, "percentile out of range");
  std::vector<double> Sorted = Values;
  std::sort(Sorted.begin(), Sorted.end());
  if (Pct == 0)
    return Sorted.front();
  // Nearest-rank: the smallest value with at least Pct% of the samples at
  // or below it.
  size_t Rank = static_cast<size_t>(
      std::ceil(Pct / 100.0 * static_cast<double>(Sorted.size())));
  return Sorted[Rank - 1];
}

void Accumulator::add(double Value) {
  if (Count == 0) {
    Min = Max = Value;
  } else {
    if (Value < Min)
      Min = Value;
    if (Value > Max)
      Max = Value;
  }
  Sum += Value;
  ++Count;
}
