//===- support/Statistics.h - Summary statistics helpers ------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean / geometric-mean / min / max helpers used by the benchmark
/// harnesses (the paper reports geomean speedups) and by the adaptive
/// chunk-size controller.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SUPPORT_STATISTICS_H
#define FCL_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace fcl {

/// Arithmetic mean of \p Values; 0 for an empty input.
double mean(const std::vector<double> &Values);

/// Geometric mean of \p Values; 0 for an empty input. All values must be
/// positive.
double geomean(const std::vector<double> &Values);

/// Sample standard deviation; 0 when fewer than two values.
double stddev(const std::vector<double> &Values);

/// Nearest-rank percentile of \p Values (copied and sorted internally);
/// \p Pct in [0, 100]. 0 for an empty input. percentile(V, 0) is the min
/// and percentile(V, 100) the max.
double percentile(const std::vector<double> &Values, double Pct);

/// Incremental accumulator for min/max/mean over a stream of samples.
class Accumulator {
public:
  void add(double Value);

  size_t count() const { return Count; }
  double sum() const { return Sum; }
  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }
  double min() const { return Count ? Min : 0; }
  double max() const { return Count ? Max : 0; }

private:
  size_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
};

} // namespace fcl

#endif // FCL_SUPPORT_STATISTICS_H
