//===- support/SimTime.h - Simulated-time types ---------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer nanosecond time types used throughout the discrete-event
/// simulation. All timestamps are deterministic simulated time, never wall
/// clock. Using 64-bit integer nanoseconds keeps event ordering exact and
/// reproducible across platforms (no floating-point tie ambiguity).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SUPPORT_SIMTIME_H
#define FCL_SUPPORT_SIMTIME_H

#include <cassert>
#include <compare>
#include <cstdint>

namespace fcl {

/// A span of simulated time in integer nanoseconds.
class Duration {
public:
  constexpr Duration() = default;
  constexpr explicit Duration(int64_t Nanos) : Nanos(Nanos) {}

  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration nanoseconds(int64_t N) { return Duration(N); }
  static constexpr Duration microseconds(int64_t U) {
    return Duration(U * 1000);
  }
  static constexpr Duration milliseconds(int64_t M) {
    return Duration(M * 1000 * 1000);
  }
  /// Converts (possibly fractional) seconds to a duration, rounding to the
  /// nearest nanosecond and clamping negatives to zero.
  static Duration seconds(double S) {
    if (S <= 0)
      return zero();
    return Duration(static_cast<int64_t>(S * 1e9 + 0.5));
  }

  constexpr int64_t nanos() const { return Nanos; }
  constexpr double toSeconds() const { return static_cast<double>(Nanos) * 1e-9; }
  constexpr double toMillis() const { return static_cast<double>(Nanos) * 1e-6; }
  constexpr double toMicros() const { return static_cast<double>(Nanos) * 1e-3; }

  constexpr Duration operator+(Duration RHS) const {
    return Duration(Nanos + RHS.Nanos);
  }
  constexpr Duration operator-(Duration RHS) const {
    return Duration(Nanos - RHS.Nanos);
  }
  constexpr Duration operator*(int64_t K) const { return Duration(Nanos * K); }
  Duration &operator+=(Duration RHS) {
    Nanos += RHS.Nanos;
    return *this;
  }
  constexpr auto operator<=>(const Duration &) const = default;

private:
  int64_t Nanos = 0;
};

/// An absolute point in simulated time (nanoseconds since simulation start).
class TimePoint {
public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(int64_t Nanos) : Nanos(Nanos) {}

  constexpr int64_t nanos() const { return Nanos; }
  constexpr double toSeconds() const { return static_cast<double>(Nanos) * 1e-9; }

  constexpr TimePoint operator+(Duration D) const {
    return TimePoint(Nanos + D.nanos());
  }
  constexpr Duration operator-(TimePoint RHS) const {
    return Duration(Nanos - RHS.Nanos);
  }
  constexpr auto operator<=>(const TimePoint &) const = default;

private:
  int64_t Nanos = 0;
};

} // namespace fcl

#endif // FCL_SUPPORT_SIMTIME_H
