//===- support/Csv.h - CSV writer ------------------------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV writer. Every bench harness writes its series to a CSV next
/// to the human-readable table so results can be replotted.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SUPPORT_CSV_H
#define FCL_SUPPORT_CSV_H

#include <string>
#include <vector>

namespace fcl {

/// Accumulates rows and writes an RFC-4180-ish CSV file.
class CsvWriter {
public:
  explicit CsvWriter(std::vector<std::string> Header);

  void addRow(std::vector<std::string> Cells);

  /// Renders all rows (header first) as CSV text.
  std::string render() const;

  /// Writes the CSV to \p Path. Returns false (and leaves no partial file
  /// guarantee) if the file cannot be opened.
  bool writeFile(const std::string &Path) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace fcl

#endif // FCL_SUPPORT_CSV_H
