//===- support/ArgParser.h - Tiny command-line parser -----------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal declarative command-line parser for the tools: long options
/// only ("--name=value" or "--name value" for valued options, "--name" for
/// booleans), with typed accessors, defaults, and generated --help text.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SUPPORT_ARGPARSER_H
#define FCL_SUPPORT_ARGPARSER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fcl {

/// Declarative long-option parser.
class ArgParser {
public:
  explicit ArgParser(std::string ProgramName, std::string Summary);

  /// Declares a boolean flag (present => true).
  void addFlag(const std::string &Name, const std::string &Help);

  /// Declares a string option with a default.
  void addOption(const std::string &Name, const std::string &Help,
                 const std::string &Default);

  /// Parses argv (excluding argv[0]). Returns false (and fills error())
  /// on unknown options or missing values. "--help" sets helpRequested().
  bool parse(int Argc, const char *const *Argv);

  bool helpRequested() const { return HelpRequested; }
  const std::string &error() const { return Error; }

  bool flag(const std::string &Name) const;
  const std::string &str(const std::string &Name) const;
  int64_t i64(const std::string &Name) const;
  double f64(const std::string &Name) const;

  /// True when the option was given explicitly (not defaulted).
  bool given(const std::string &Name) const;

  /// Positional arguments (everything not starting with "--").
  const std::vector<std::string> &positional() const { return Positional; }

  /// Generated usage text.
  std::string helpText() const;

private:
  struct Decl {
    std::string Help;
    std::string Value;
    bool IsFlag = false;
    bool Given = false;
  };

  const Decl &get(const std::string &Name) const;

  std::string ProgramName;
  std::string Summary;
  std::map<std::string, Decl> Decls;
  std::vector<std::string> Order;
  std::vector<std::string> Positional;
  std::string Error;
  bool HelpRequested = false;
};

} // namespace fcl

#endif // FCL_SUPPORT_ARGPARSER_H
