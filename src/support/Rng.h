//===- support/Rng.h - Deterministic random number generator --*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (splitmix64-seeded xorshift128+).
/// Used for workload data initialization and property-style tests; the
/// simulator itself never consumes randomness, so runs are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_SUPPORT_RNG_H
#define FCL_SUPPORT_RNG_H

#include <cstdint>

namespace fcl {

/// Deterministic 64-bit PRNG with explicit seeding.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the xorshift state.
    State[0] = splitMix(Seed);
    State[1] = splitMix(Seed);
  }

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t X = State[0];
    const uint64_t Y = State[1];
    State[0] = Y;
    X ^= X << 23;
    State[1] = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return State[1] + Y;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns a uniform float in [Lo, Hi).
  double nextInRange(double Lo, double Hi) {
    return Lo + nextDouble() * (Hi - Lo);
  }

private:
  uint64_t splitMix(uint64_t &Z) {
    Z += 0x9E3779B97F4A7C15ull;
    uint64_t R = Z;
    R = (R ^ (R >> 30)) * 0xBF58476D1CE4E5B9ull;
    R = (R ^ (R >> 27)) * 0x94D049BB133111EBull;
    return R ^ (R >> 31);
  }

  uint64_t State[2];
};

} // namespace fcl

#endif // FCL_SUPPORT_RNG_H
