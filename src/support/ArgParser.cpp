//===- support/ArgParser.cpp - Tiny command-line parser --------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cstdlib>

using namespace fcl;

ArgParser::ArgParser(std::string ProgramName, std::string Summary)
    : ProgramName(std::move(ProgramName)), Summary(std::move(Summary)) {}

void ArgParser::addFlag(const std::string &Name, const std::string &Help) {
  Decl D;
  D.Help = Help;
  D.IsFlag = true;
  D.Value = "0";
  FCL_CHECK(Decls.emplace(Name, std::move(D)).second, "duplicate option");
  Order.push_back(Name);
}

void ArgParser::addOption(const std::string &Name, const std::string &Help,
                          const std::string &Default) {
  Decl D;
  D.Help = Help;
  D.Value = Default;
  FCL_CHECK(Decls.emplace(Name, std::move(D)).second, "duplicate option");
  Order.push_back(Name);
}

bool ArgParser::parse(int Argc, const char *const *Argv) {
  for (int I = 0; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      HelpRequested = true;
      continue;
    }
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Name = Arg.substr(2);
    std::string Value;
    bool HasValue = false;
    size_t Eq = Name.find('=');
    if (Eq != std::string::npos) {
      Value = Name.substr(Eq + 1);
      Name = Name.substr(0, Eq);
      HasValue = true;
    }
    auto It = Decls.find(Name);
    if (It == Decls.end()) {
      Error = formatString("unknown option '--%s'", Name.c_str());
      return false;
    }
    Decl &D = It->second;
    if (D.IsFlag) {
      if (HasValue) {
        Error = formatString("flag '--%s' takes no value", Name.c_str());
        return false;
      }
      D.Value = "1";
      D.Given = true;
      continue;
    }
    if (!HasValue) {
      if (I + 1 >= Argc) {
        Error = formatString("option '--%s' needs a value", Name.c_str());
        return false;
      }
      Value = Argv[++I];
    }
    D.Value = Value;
    D.Given = true;
  }
  return true;
}

const ArgParser::Decl &ArgParser::get(const std::string &Name) const {
  auto It = Decls.find(Name);
  if (It == Decls.end())
    fatalError(__FILE__, __LINE__,
               formatString("undeclared option '%s'", Name.c_str()).c_str());
  return It->second;
}

bool ArgParser::flag(const std::string &Name) const {
  return get(Name).Value == "1";
}

const std::string &ArgParser::str(const std::string &Name) const {
  return get(Name).Value;
}

int64_t ArgParser::i64(const std::string &Name) const {
  return std::strtoll(get(Name).Value.c_str(), nullptr, 10);
}

double ArgParser::f64(const std::string &Name) const {
  return std::strtod(get(Name).Value.c_str(), nullptr);
}

bool ArgParser::given(const std::string &Name) const {
  return get(Name).Given;
}

std::string ArgParser::helpText() const {
  std::string Out = ProgramName + " - " + Summary + "\n\noptions:\n";
  for (const std::string &Name : Order) {
    const Decl &D = Decls.at(Name);
    std::string Left = "  --" + Name + (D.IsFlag ? "" : "=<value>");
    Out += formatString("%-32s %s", Left.c_str(), D.Help.c_str());
    if (!D.IsFlag && !D.Value.empty())
      Out += formatString(" (default: %s)", D.Value.c_str());
    Out += '\n';
  }
  Out += "  --help                           show this help\n";
  return Out;
}
