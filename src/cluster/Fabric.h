//===- cluster/Fabric.h - Deterministic epoch-barrier fabric ----*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-pair message fabric of fcl::cluster, reduced to its essence: a
/// bulk-synchronous epoch barrier. Worker threads advance their private
/// simulators in lockstep quanta; between quanta every worker is parked
/// here and the master (alone) drains outcome outboxes, steals queued work
/// and injects the next epoch's arrivals. Because every cross-thread
/// transfer happens at a barrier - never while a simulator is running -
/// the interleaving of OS threads cannot change what any simulator
/// observes, which is what makes same-seed cluster runs byte-identical
/// regardless of core count or scheduling.
///
/// Protocol (master side / worker side):
///
///   masterAwaitParked();      //               | awaitEpoch(Seen, E) parks,
///   ... exclusive access ...  //               | then blocks until the
///   releaseEpoch(++E);        // wakes workers | master publishes E > Seen.
///
/// stopAll() releases every parked worker with a shutdown verdict
/// (awaitEpoch returns false) so threads can be joined.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_CLUSTER_FABRIC_H
#define FCL_CLUSTER_FABRIC_H

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace fcl {
namespace cluster {

/// Race-analyzer channel names for the barrier's two happens-before edges.
/// The master publishes `EpochReleaseChan` after its between-epochs phase
/// (workers join it before advancing), and every worker publishes
/// `EpochParkChan` after its quantum (the master joins it when all are
/// parked). Together they tell fcl::race exactly what the barrier
/// guarantees - no more, no less.
inline const char *epochReleaseChan() { return "cluster.fabric.release"; }
inline const char *epochParkChan() { return "cluster.fabric.park"; }

/// Master/worker epoch barrier. One instance per cluster; `Workers` worker
/// threads plus exactly one master thread participate.
class EpochBarrier {
public:
  explicit EpochBarrier(int Workers) : Workers(Workers) {}

  /// Worker: parks this thread, then blocks until the master releases an
  /// epoch newer than \p LastSeen (stored to \p EpochOut) or shuts the
  /// fabric down (returns false).
  bool awaitEpoch(uint64_t LastSeen, uint64_t &EpochOut) {
    std::unique_lock<std::mutex> Lock(M);
    ++Parked;
    Cv.notify_all();
    Cv.wait(Lock, [&] { return Stop || Epoch > LastSeen; });
    if (Stop)
      return false;
    EpochOut = Epoch;
    return true;
  }

  /// Master: blocks until every worker is parked. On return the master has
  /// exclusive access to all worker state until releaseEpoch()/stopAll().
  void masterAwaitParked() {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Parked == Workers; });
  }

  /// Master: publishes epoch \p E (must increase) and wakes all workers.
  void releaseEpoch(uint64_t E) {
    std::lock_guard<std::mutex> Lock(M);
    Parked = 0;
    Epoch = E;
    Cv.notify_all();
  }

  /// Master: wakes everyone with a shutdown verdict; awaitEpoch() returns
  /// false from now on.
  void stopAll() {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
    Cv.notify_all();
  }

private:
  const int Workers;
  std::mutex M;
  std::condition_variable Cv;
  int Parked = 0;
  uint64_t Epoch = 0;
  bool Stop = false;
};

} // namespace cluster
} // namespace fcl

#endif // FCL_CLUSTER_FABRIC_H
