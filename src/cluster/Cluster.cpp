//===- cluster/Cluster.cpp - Sharded multi-pair serve tier ----------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cluster/Cluster.h"

#include "prof/Profiler.h"
#include "race/Bridge.h"
#include "race/Race.h"
#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <thread>

using namespace fcl;
using namespace fcl::cluster;

Cluster::Cluster(ClusterConfig C)
    : Cfg(std::move(C)), Barrier(Cfg.Workers),
      MasterRng(serve::StreamGen::mixSeed(Cfg.Worker.Seed, 1 << 20)) {
  FCL_CHECK(Cfg.Workers >= 1 && Cfg.Workers <= 64,
            "cluster worker count out of range");
  FCL_CHECK(Cfg.Quantum > Duration::zero(), "cluster quantum must be > 0");
  FCL_CHECK(Cfg.Worker.Arrival.Kind != serve::ArrivalKind::Closed,
            "closed-loop arrivals would couple worker clocks");
  Templates = serve::jobTemplates(Cfg.Worker.Mix);
  JobsObj = "cluster.jobs";
  for (int I = 0; I < Cfg.Workers; ++I) {
    auto W = std::make_unique<Worker>();
    W->Index = I;
    W->OutboxObj = formatString("cluster.outbox#%d", I);
    serve::EngineConfig EC = Cfg.Worker;
    EC.External = true;
    EC.Tracer = nullptr;
    if (Cfg.Worker.Tracer) {
      // Each worker records into a private tracer on its own thread; the
      // master merges them (with a "w<i> " lane prefix) after the join.
      W->Trace = std::make_unique<trace::Tracer>();
      EC.Tracer = W->Trace.get();
    }
    W->Eng = std::make_unique<serve::Engine>(EC);
    Worker *WP = W.get();
    W->Eng->setOutcomeFn([this, WP](const serve::JobOutcome &O) {
      if (race::Analyzer::enabled())
        race::Analyzer::instance().sharedWrite(WP->OutboxObj, "outcome");
      WP->Outbox.push_back(O);
    });
    Workers.push_back(std::move(W));
  }
}

Cluster::~Cluster() = default;

void Cluster::drawArrivals() {
  // All arrivals are a pure function of (seed, stream), drawn with the
  // exact RNG call order of serve's open-loop generator, then merged into
  // one cluster-wide sequence. stable_sort keeps equal timestamps in
  // stream-major order, so job ids - and therefore placement - are
  // deterministic.
  for (int S = 0; S < Cfg.Worker.Streams; ++S) {
    serve::StreamGen G(Cfg.Worker.Seed, S, Templates);
    Duration At = Cfg.Worker.Arrival.Kind == serve::ArrivalKind::Uniform
                      ? G.initialPhase(Cfg.Worker.Arrival)
                      : G.interarrival(Cfg.Worker.Arrival);
    while (At <= Cfg.Worker.Horizon) {
      const serve::JobTemplate &T = G.pickTemplate();
      Draws.push_back(
          {TimePoint() + At, S, static_cast<int>(&T - Templates.data())});
      At += G.interarrival(Cfg.Worker.Arrival);
    }
  }
  std::stable_sort(Draws.begin(), Draws.end(),
                   [](const Draw &A, const Draw &B) { return A.At < B.At; });
  Jobs.resize(Draws.size());
  for (size_t I = 0; I < Draws.size(); ++I) {
    ClusterJobRecord &J = Jobs[I];
    J.Id = I;
    J.Stream = Draws[I].Stream;
    const serve::JobTemplate &T = Templates[Draws[I].TemplateIdx];
    J.Workload = T.W.Name;
    J.MaxGroups = T.MaxGroups;
    J.Large = T.MaxGroups >= Cfg.Worker.LargeThreshold;
    J.ArrivalAt = Draws[I].At;
  }
}

int Cluster::placeJob(const Draw &D) {
  switch (Cfg.Place) {
  case Placement::HashAffine:
    return static_cast<int>(
        serve::StreamGen::mixSeed(Cfg.Worker.Seed, D.Stream) %
        static_cast<uint64_t>(Cfg.Workers));
  case Placement::LeastLoaded: {
    int Best = 0;
    for (int I = 1; I < Cfg.Workers; ++I)
      if (Workers[I]->OutstandingJobs < Workers[Best]->OutstandingJobs)
        Best = I;
    return Best;
  }
  case Placement::SizeAware: {
    int Best = 0;
    for (int I = 1; I < Cfg.Workers; ++I)
      if (Workers[I]->OutstandingGroups < Workers[Best]->OutstandingGroups)
        Best = I;
    return Best;
  }
  }
  return 0;
}

void Cluster::injectDraw(uint64_t Id, const Draw &D, int WI) {
  Worker &W = *Workers[WI];
  Jobs[Id].FirstWorker = WI;
  Jobs[Id].Worker = WI;
  if (race::Analyzer::enabled())
    race::Analyzer::instance().sharedWrite(JobsObj, "place");
  W.Eng->injectJob(Id, D.TemplateIdx, D.Stream, D.At);
  ++W.Assigned;
  ++W.OutstandingJobs;
  W.OutstandingGroups += Templates[D.TemplateIdx].MaxGroups;
  ++Messages;
}

void Cluster::drainOutboxes() {
  for (auto &WP : Workers) {
    Worker &W = *WP;
    if (W.Outbox.empty())
      continue;
    if (race::Analyzer::enabled())
      race::Analyzer::instance().sharedWrite(W.OutboxObj, "drain");
    for (const serve::JobOutcome &O : W.Outbox) {
      ClusterJobRecord &J = Jobs[O.ClusterId];
      FCL_CHECK(!J.Done && !J.Rejected, "duplicate cluster job outcome");
      J.Worker = W.Index;
      if (W.OutstandingJobs > 0)
        --W.OutstandingJobs;
      W.OutstandingGroups -= std::min(W.OutstandingGroups, J.MaxGroups);
      ++Messages;
      if (O.Rejected) {
        J.Rejected = true;
        ++RejectedN;
        ++W.Rejected;
        continue;
      }
      J.Done = true;
      J.StartAt = O.StartAt;
      J.EndAt = O.EndAt;
      ++CompletedN;
      ++W.Completed;
      // Cluster latency runs from the *cluster* arrival, so a stolen
      // job's transfer wait stays on its bill.
      W.E2eMs.push_back((O.EndAt - J.ArrivalAt).toMillis());
      if (O.EndAt > LastEnd)
        LastEnd = O.EndAt;
    }
    W.Outbox.clear();
  }
}

void Cluster::stealPass(TimePoint EpochStart) {
  bool Stole = false;
  for (auto &TP : Workers) {
    Worker &Thief = *TP;
    // Only a fully idle worker steals, and only one job per epoch: the
    // queues drain between epochs anyway, and modest steal volume keeps
    // the transfer bill low.
    if (Thief.Eng->readyDepth() != 0 || Thief.Eng->runningJobs() != 0)
      continue;
    Worker *Victim = nullptr;
    for (auto &VP : Workers) {
      if (VP->Index == Thief.Index || VP->Eng->readyDepth() == 0)
        continue;
      if (!Victim || VP->Eng->readyDepth() > Victim->Eng->readyDepth())
        Victim = VP.get();
    }
    if (!Victim)
      continue;
    serve::StolenJob S;
    if (!Victim->Eng->stealQueued(S))
      continue;
    ClusterJobRecord &J = Jobs[S.ClusterId];
    J.Stolen = true;
    J.Worker = Thief.Index;
    if (Victim->OutstandingJobs > 0)
      --Victim->OutstandingJobs;
    Victim->OutstandingGroups -= std::min(Victim->OutstandingGroups,
                                          J.MaxGroups);
    ++Thief.OutstandingJobs;
    Thief.OutstandingGroups += J.MaxGroups;
    ++Thief.StolenIn;
    // The transfer costs a simulated link hop plus deterministic jitter
    // (master RNG - workers never draw randomness).
    Duration Jitter = Duration::nanoseconds(static_cast<int64_t>(
        MasterRng.nextBelow(
            static_cast<uint64_t>(Cfg.LinkLatency.nanos()) + 1)));
    Thief.Eng->injectJob(S.ClusterId, S.TemplateIdx, S.Stream,
                         EpochStart + Cfg.LinkLatency + Jitter);
    ++StealsN;
    ++StolenN;
    ++Messages;
    Stole = true;
  }
  if (Stole)
    ++RebalanceEpochsN;
}

void Cluster::workerMain(Worker &W) {
  race::Analyzer &A = race::Analyzer::instance();
  uint64_t Seen = 0;
  for (;;) {
    uint64_t E = 0;
    if (!Barrier.awaitEpoch(Seen, E))
      return;
    Seen = E;
    // The barrier's release edge: everything the master did before
    // releasing this epoch happened-before everything this quantum runs.
    if (RacesOn)
      A.hbJoin(epochReleaseChan());
    {
      FCL_PROF_SCOPE("cluster.worker_epoch");
      W.Eng->advanceTo(TimePoint() + Cfg.Quantum * static_cast<int64_t>(E));
    }
    // The park edge: this quantum's work happens-before the master phase
    // that observes us parked.
    if (RacesOn)
      A.hbPublish(epochParkChan());
  }
}

ClusterReport Cluster::run() {
  race::Analyzer &A = race::Analyzer::instance();
  RacesOn = Cfg.Worker.Races != check::Policy::Off;
  if (RacesOn) {
    A.reset();
    A.setEnabled(true);
  }
  drawArrivals();

  std::vector<std::thread> Threads;
  Threads.reserve(Workers.size());
  for (auto &W : Workers)
    Threads.emplace_back([this, WP = W.get()] { workerMain(*WP); });

  size_t NextDraw = 0;
  uint64_t EpochIdx = 0;
  for (;;) {
    Barrier.masterAwaitParked();
    FCL_PROF_SCOPE("cluster.master_phase");
    if (RacesOn)
      A.hbJoin(epochParkChan());
    drainOutboxes();
    bool AllInjected = NextDraw == Draws.size();
    bool AllQuiet = true;
    for (auto &W : Workers)
      AllQuiet = AllQuiet && W->Eng->quiescent();
    if (AllInjected && AllQuiet)
      break;
    FCL_CHECK(EpochsRun < Cfg.MaxEpochs, "cluster failed to quiesce");
    TimePoint EpochStart =
        TimePoint() + Cfg.Quantum * static_cast<int64_t>(EpochIdx);
    TimePoint EpochEnd = EpochStart + Cfg.Quantum;
    if (Cfg.Steal && Cfg.Workers > 1)
      stealPass(EpochStart);
    while (NextDraw < Draws.size() && Draws[NextDraw].At < EpochEnd) {
      injectDraw(NextDraw, Draws[NextDraw], placeJob(Draws[NextDraw]));
      ++NextDraw;
    }
    if (RacesOn)
      A.hbPublish(epochReleaseChan());
    ++EpochIdx;
    ++EpochsRun;
    Barrier.releaseEpoch(EpochIdx);
  }
  Barrier.stopAll();
  for (std::thread &T : Threads)
    T.join();

  // Collect race findings before engine teardown so the destructors (and
  // the trace merge below) run unanalyzed, mirroring serve::Engine::run.
  if (RacesOn) {
    A.setEnabled(false);
    check::DiagSink Sink(check::Policy::Warn);
    race::reportFindings(A.takeFindings(), Sink);
    RaceFindingsN = Sink.diags().size();
    for (const check::Diag &D : Sink.diags())
      RaceDiagLines.push_back(D.str());
  }

  std::vector<serve::ServeReport> WReps;
  WReps.reserve(Workers.size());
  for (auto &W : Workers) {
    serve::ServeReport R = W->Eng->finishExternal();
    CheckErrorsN += R.CheckErrors;
    CheckWarningsN += R.CheckWarnings;
    for (const std::string &L : R.CheckDiags)
      CheckDiagLines.push_back(formatString("w%d: %s", W->Index, L.c_str()));
    ValidationFailuresN += R.ValidationFailures;
    WReps.push_back(std::move(R));
  }

  if (Cfg.Worker.Tracer)
    for (auto &W : Workers)
      Cfg.Worker.Tracer->mergeFrom(*W->Trace,
                                   formatString("w%d ", W->Index));

  for (const ClusterJobRecord &J : Jobs)
    FCL_CHECK(J.Done || J.Rejected, "cluster job lost in flight");
  return finalize(WReps);
}

ClusterReport Cluster::finalize(const std::vector<serve::ServeReport> &WReps) {
  ClusterReport Rep;
  Rep.Workers = Cfg.Workers;
  Rep.PlacementName = placementName(Cfg.Place);
  Rep.Steal = Cfg.Steal;
  Rep.PolicyName = serve::policyName(Cfg.Worker.P);
  Rep.ArrivalDesc = Cfg.Worker.Arrival.str();
  Rep.Mix = serve::mixName(Cfg.Worker.Mix);
  Rep.Machine = Cfg.Worker.MachineName;
  Rep.Seed = Cfg.Worker.Seed;
  Rep.Streams = Cfg.Worker.Streams;
  Rep.QueueDepth = Cfg.Worker.QueueDepth;
  Rep.LargeThreshold = Cfg.Worker.LargeThreshold;
  Rep.HorizonMs = Cfg.Worker.Horizon.toMillis();
  Rep.QuantumMs = Cfg.Quantum.toMillis();
  Rep.LinkLatencyUs = Cfg.LinkLatency.toMicros();
  Rep.Submitted = Jobs.size();
  Rep.Rejected = RejectedN;
  Rep.Completed = CompletedN;
  Rep.Stolen = StolenN;

  std::vector<double> QueueMs, ServiceMs, E2eMs;
  for (const ClusterJobRecord &J : Jobs) {
    if (!J.Done)
      continue;
    QueueMs.push_back(J.queueWaitMs());
    ServiceMs.push_back(J.serviceMs());
    E2eMs.push_back(J.e2eMs());
  }
  Rep.QueueWait = serve::summarizeLatency(QueueMs);
  Rep.Service = serve::summarizeLatency(ServiceMs);
  Rep.E2e = serve::summarizeLatency(E2eMs);
  Rep.MakespanMs = LastEnd.toSeconds() * 1e3;
  if (Rep.MakespanMs > 0)
    Rep.ThroughputJps = static_cast<double>(CompletedN) /
                        (Rep.MakespanMs / 1e3);
  Rep.Epochs = EpochsRun;
  Rep.Messages = Messages;
  Rep.Steals = StealsN;
  Rep.RebalanceEpochs = RebalanceEpochsN;

  for (size_t I = 0; I < Workers.size(); ++I) {
    const Worker &W = *Workers[I];
    WorkerSummary S;
    S.Index = W.Index;
    S.Assigned = W.Assigned;
    S.Completed = W.Completed;
    S.Rejected = W.Rejected;
    S.StolenIn = W.StolenIn;
    S.StolenOut = W.Eng->stolenOut();
    S.GpuBusyMs = WReps[I].GpuBusyMs;
    S.CpuBusyMs = WReps[I].CpuBusyMs;
    if (Rep.MakespanMs > 0) {
      S.GpuUtil = S.GpuBusyMs / Rep.MakespanMs;
      S.CpuUtil = S.CpuBusyMs / Rep.MakespanMs;
    }
    S.E2e = serve::summarizeLatency(W.E2eMs);
    Rep.PerWorker.push_back(S);
  }

  Rep.SloChecked = Cfg.Worker.SloMs > 0;
  Rep.SloMs = Cfg.Worker.SloMs;
  if (Rep.SloChecked)
    for (double V : E2eMs)
      if (V > Cfg.Worker.SloMs)
        ++Rep.SloViolations;
  Rep.Validated = Cfg.Worker.Validate;
  Rep.ValidationFailures = ValidationFailuresN;
  Rep.CheckEnabled = Cfg.Worker.FclOpts.Check != check::Policy::Off;
  Rep.CheckErrors = CheckErrorsN;
  Rep.CheckWarnings = CheckWarningsN;
  Rep.CheckDiags = CheckDiagLines;
  Rep.RacesEnabled = RacesOn;
  Rep.RaceFindings = RaceFindingsN;
  Rep.RaceDiags = RaceDiagLines;

  Rep.Stats.add("cluster_jobs_submitted", Rep.Submitted);
  Rep.Stats.add("cluster_jobs_rejected", Rep.Rejected);
  Rep.Stats.add("cluster_jobs_completed", Rep.Completed);
  Rep.Stats.add("cluster_jobs_stolen", Rep.Stolen);
  Rep.Stats.add("cluster_epochs", Rep.Epochs);
  Rep.Stats.add("cluster_messages", Rep.Messages);
  Rep.Stats.add("cluster_steals", Rep.Steals);
  Rep.Stats.add("cluster_rebalance_epochs", Rep.RebalanceEpochs);
  Rep.Stats.set("cluster_makespan_ms", Rep.MakespanMs);
  Rep.Stats.set("cluster_throughput_jps", Rep.ThroughputJps);
  Rep.Stats.set("cluster_e2e_p95_ms", Rep.E2e.P95);
  // Compound (DAG) job accounting, summed over workers; emitted only when
  // DAG jobs ran so plain mixes keep their pre-dag report bytes.
  {
    uint64_t DagJobs = 0, DagNodes = 0, DagTransfers = 0, DagPcieBytes = 0,
             DagSkipped = 0, DagSaved = 0;
    for (const serve::ServeReport &R : WReps) {
      DagJobs += R.DagJobs;
      DagNodes += R.DagNodes;
      DagTransfers += R.DagTransfers;
      DagPcieBytes += R.DagPcieBytes;
      DagSkipped += R.DagTransfersSkipped;
      DagSaved += R.DagBytesSaved;
    }
    if (DagJobs) {
      Rep.Stats.add("cluster_dag_jobs", DagJobs);
      Rep.Stats.add("cluster_dag_nodes", DagNodes);
      Rep.Stats.add("cluster_dag_transfers", DagTransfers);
      Rep.Stats.add("cluster_dag_pcie_bytes", DagPcieBytes);
      Rep.Stats.add("cluster_dag_transfers_skipped", DagSkipped);
      Rep.Stats.add("cluster_dag_bytes_saved", DagSaved);
    }
  }
  for (const WorkerSummary &S : Rep.PerWorker) {
    // Zero-padded so the registry's lexicographic order is worker order.
    Rep.Stats.add(formatString("cluster_w%02d_completed", S.Index),
                  S.Completed);
    Rep.Stats.add(formatString("cluster_w%02d_stolen_in", S.Index),
                  S.StolenIn);
    Rep.Stats.set(formatString("cluster_w%02d_gpu_util", S.Index), S.GpuUtil);
    Rep.Stats.set(formatString("cluster_w%02d_cpu_util", S.Index), S.CpuUtil);
  }

  Rep.Jobs = Jobs;
  return Rep;
}
