//===- cluster/Report.h - Cluster-level serving metrics ---------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregate outcome of one fcl::cluster run: cluster-level latency
/// distributions (a job's clock starts at its cluster arrival, so steal
/// transfer latency is part of its queue wait), per-worker utilization and
/// steal/placement counters, and the fabric's epoch/message totals.
///
/// Serializes to a deterministic JSON document ("fcl-cluster-report-v1"):
/// map-ordered keys and fixed %.6f float formatting, exactly like the
/// serve report, so the CI determinism gates can byte-diff two same-seed
/// runs at any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_CLUSTER_REPORT_H
#define FCL_CLUSTER_REPORT_H

#include "serve/Metrics.h"
#include "stats/Registry.h"
#include "support/SimTime.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fcl {
namespace cluster {

/// One worker pair's share of the cluster run.
struct WorkerSummary {
  int Index = 0;
  uint64_t Assigned = 0;  // Placed here by the master (first placement).
  uint64_t Completed = 0; // Finished here (includes stolen-in jobs).
  uint64_t Rejected = 0;
  uint64_t StolenIn = 0;
  uint64_t StolenOut = 0;
  double GpuBusyMs = 0;
  double CpuBusyMs = 0;
  /// Device occupancy against the *cluster* makespan, so an idle worker
  /// shows low utilization even if its private makespan was short.
  double GpuUtil = 0;
  double CpuUtil = 0;
  serve::LatencySummary E2e; // Jobs that completed on this worker.
};

/// Final state of one cluster job (master's view).
struct ClusterJobRecord {
  uint64_t Id = 0;
  int Stream = 0;
  std::string Workload;
  uint64_t MaxGroups = 0;
  bool Large = false;
  /// Worker of first placement and the worker that finished the job;
  /// they differ exactly when the job was stolen.
  int FirstWorker = -1;
  int Worker = -1;
  bool Stolen = false;
  bool Rejected = false;
  bool Done = false;
  TimePoint ArrivalAt; // Cluster arrival (pre-placement).
  TimePoint StartAt;
  TimePoint EndAt;

  double queueWaitMs() const { return (StartAt - ArrivalAt).toMillis(); }
  double serviceMs() const { return (EndAt - StartAt).toMillis(); }
  double e2eMs() const { return (EndAt - ArrivalAt).toMillis(); }
};

/// Aggregate outcome of one cluster run.
struct ClusterReport {
  // Configuration echo.
  int Workers = 0;
  std::string PlacementName;
  bool Steal = false;
  std::string PolicyName; // Per-worker serve policy.
  std::string ArrivalDesc;
  std::string Mix;
  std::string Machine;
  uint64_t Seed = 0;
  int Streams = 0;
  int QueueDepth = 0; // Per worker.
  uint64_t LargeThreshold = 0;
  double HorizonMs = 0;
  double QuantumMs = 0;
  double LinkLatencyUs = 0;

  // Job counts.
  uint64_t Submitted = 0;
  uint64_t Rejected = 0;
  uint64_t Completed = 0;
  uint64_t Stolen = 0;

  // Cluster-level latency over completed jobs (steal transfers count
  // toward queue wait - the client doesn't care where the job ran).
  serve::LatencySummary QueueWait;
  serve::LatencySummary Service;
  serve::LatencySummary E2e;

  double MakespanMs = 0;
  double ThroughputJps = 0; // Completed / makespan (simulated seconds).

  // Fabric totals.
  uint64_t Epochs = 0;
  uint64_t Messages = 0; // Injections + steal transfers + outcomes.
  uint64_t Steals = 0;
  uint64_t RebalanceEpochs = 0; // Epochs in which at least one steal ran.

  std::vector<WorkerSummary> PerWorker;

  // SLO verdict (when an SLO was given); binds to cluster e2e.
  bool SloChecked = false;
  double SloMs = 0;
  uint64_t SloViolations = 0;

  // Functional-mode validation (summed over workers).
  bool Validated = false;
  uint64_t ValidationFailures = 0;

  // fcl::check / fcl::race outcome. As in the serve report, the JSON
  // emits these objects only when diagnostics exist, so a clean analyzed
  // run serializes to the exact bytes of an unanalyzed one.
  bool CheckEnabled = false;
  uint64_t CheckErrors = 0;
  uint64_t CheckWarnings = 0;
  std::vector<std::string> CheckDiags;
  bool RacesEnabled = false;
  uint64_t RaceFindings = 0;
  std::vector<std::string> RaceDiags;

  /// Counter/gauge mirror (per-worker gauges use zero-padded indices so
  /// the lexicographic map order matches worker order).
  stats::Registry Stats;

  /// Every job in cluster submission order (rejected ones included).
  std::vector<ClusterJobRecord> Jobs;

  /// Deterministic JSON document (schema "fcl-cluster-report-v1").
  std::string toJson() const;

  /// Human-readable report for the tool's stdout.
  std::string toText() const;

  /// Per-job CSV (header + one row per job).
  std::string toCsv() const;
};

} // namespace cluster
} // namespace fcl

#endif // FCL_CLUSTER_REPORT_H
