//===- cluster/Report.cpp - Cluster-level serving metrics -----------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cluster/Report.h"

#include "support/Format.h"

using namespace fcl;
using namespace fcl::cluster;

namespace {

// All floats go through one fixed format so identical runs serialize to
// identical bytes.
std::string num(double V) { return formatString("%.6f", V); }

std::string latencyJson(const serve::LatencySummary &S) {
  return formatString(
      "{\"p50\": %s, \"p95\": %s, \"p99\": %s, \"mean\": %s, \"max\": %s}",
      num(S.P50).c_str(), num(S.P95).c_str(), num(S.P99).c_str(),
      num(S.Mean).c_str(), num(S.Max).c_str());
}

} // namespace

std::string ClusterReport::toJson() const {
  std::string J;
  J += "{\n";
  J += "  \"schema\": \"fcl-cluster-report-v1\",\n";
  J += formatString("  \"workers\": %d,\n", Workers);
  J += formatString("  \"placement\": \"%s\",\n",
                    jsonEscape(PlacementName).c_str());
  J += formatString("  \"steal\": %s,\n", Steal ? "true" : "false");
  J += formatString("  \"policy\": \"%s\",\n", jsonEscape(PolicyName).c_str());
  J += formatString("  \"arrival\": \"%s\",\n",
                    jsonEscape(ArrivalDesc).c_str());
  J += formatString("  \"mix\": \"%s\",\n", jsonEscape(Mix).c_str());
  J += formatString("  \"machine\": \"%s\",\n", jsonEscape(Machine).c_str());
  J += formatString("  \"seed\": %llu,\n",
                    static_cast<unsigned long long>(Seed));
  J += formatString("  \"streams\": %d,\n", Streams);
  J += formatString("  \"queue_depth\": %d,\n", QueueDepth);
  J += formatString("  \"large_threshold_groups\": %llu,\n",
                    static_cast<unsigned long long>(LargeThreshold));
  J += formatString("  \"horizon_ms\": %s,\n", num(HorizonMs).c_str());
  J += formatString("  \"quantum_ms\": %s,\n", num(QuantumMs).c_str());
  J += formatString("  \"link_latency_us\": %s,\n",
                    num(LinkLatencyUs).c_str());
  J += formatString("  \"submitted\": %llu,\n",
                    static_cast<unsigned long long>(Submitted));
  J += formatString("  \"rejected\": %llu,\n",
                    static_cast<unsigned long long>(Rejected));
  J += formatString("  \"completed\": %llu,\n",
                    static_cast<unsigned long long>(Completed));
  J += formatString("  \"stolen\": %llu,\n",
                    static_cast<unsigned long long>(Stolen));
  J += "  \"latency_ms\": {\n";
  J += formatString("    \"queue_wait\": %s,\n",
                    latencyJson(QueueWait).c_str());
  J += formatString("    \"service\": %s,\n", latencyJson(Service).c_str());
  J += formatString("    \"e2e\": %s\n", latencyJson(E2e).c_str());
  J += "  },\n";
  J += formatString("  \"makespan_ms\": %s,\n", num(MakespanMs).c_str());
  J += formatString("  \"throughput_jps\": %s,\n",
                    num(ThroughputJps).c_str());
  J += "  \"fabric\": {\n";
  J += formatString("    \"epochs\": %llu,\n",
                    static_cast<unsigned long long>(Epochs));
  J += formatString("    \"messages\": %llu,\n",
                    static_cast<unsigned long long>(Messages));
  J += formatString("    \"steals\": %llu,\n",
                    static_cast<unsigned long long>(Steals));
  J += formatString("    \"rebalance_epochs\": %llu\n",
                    static_cast<unsigned long long>(RebalanceEpochs));
  J += "  },\n";
  J += "  \"per_worker\": [";
  for (size_t I = 0; I < PerWorker.size(); ++I) {
    const WorkerSummary &W = PerWorker[I];
    J += formatString("%s\n    {\"worker\": %d, \"assigned\": %llu, "
                      "\"completed\": %llu, \"rejected\": %llu, "
                      "\"stolen_in\": %llu, \"stolen_out\": %llu, "
                      "\"gpu_busy_ms\": %s, \"cpu_busy_ms\": %s, "
                      "\"gpu_util\": %s, \"cpu_util\": %s, \"e2e\": %s}",
                      I ? "," : "", W.Index,
                      static_cast<unsigned long long>(W.Assigned),
                      static_cast<unsigned long long>(W.Completed),
                      static_cast<unsigned long long>(W.Rejected),
                      static_cast<unsigned long long>(W.StolenIn),
                      static_cast<unsigned long long>(W.StolenOut),
                      num(W.GpuBusyMs).c_str(), num(W.CpuBusyMs).c_str(),
                      num(W.GpuUtil).c_str(), num(W.CpuUtil).c_str(),
                      latencyJson(W.E2e).c_str());
  }
  J += PerWorker.empty() ? "],\n" : "\n  ],\n";
  J += "  \"slo\": {\n";
  J += formatString("    \"checked\": %s,\n", SloChecked ? "true" : "false");
  J += formatString("    \"slo_ms\": %s,\n", num(SloMs).c_str());
  J += formatString("    \"violations\": %llu\n",
                    static_cast<unsigned long long>(SloViolations));
  J += "  },\n";
  J += "  \"validation\": {\n";
  J += formatString("    \"validated\": %s,\n", Validated ? "true" : "false");
  J += formatString("    \"failures\": %llu\n",
                    static_cast<unsigned long long>(ValidationFailures));
  J += "  },\n";
  // Analysis verdicts appear only when something was found: a clean
  // --check/--races run must serialize to the same bytes as a plain run.
  if (!CheckDiags.empty()) {
    J += "  \"check\": {\n";
    J += formatString("    \"errors\": %llu,\n",
                      static_cast<unsigned long long>(CheckErrors));
    J += formatString("    \"warnings\": %llu,\n",
                      static_cast<unsigned long long>(CheckWarnings));
    J += "    \"diags\": [";
    for (size_t I = 0; I < CheckDiags.size(); ++I)
      J += formatString("%s\n      \"%s\"", I ? "," : "",
                        jsonEscape(CheckDiags[I]).c_str());
    J += "\n    ]\n";
    J += "  },\n";
  }
  if (!RaceDiags.empty()) {
    J += "  \"races\": {\n";
    J += formatString("    \"findings\": %llu,\n",
                      static_cast<unsigned long long>(RaceFindings));
    J += "    \"diags\": [";
    for (size_t I = 0; I < RaceDiags.size(); ++I)
      J += formatString("%s\n      \"%s\"", I ? "," : "",
                        jsonEscape(RaceDiags[I]).c_str());
    J += "\n    ]\n";
    J += "  },\n";
  }
  J += "  \"stats\": {\n";
  J += "    \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Stats.counters()) {
    J += formatString("%s\n      \"%s\": %llu", First ? "" : ",",
                      jsonEscape(Name).c_str(),
                      static_cast<unsigned long long>(Value));
    First = false;
  }
  J += First ? "},\n" : "\n    },\n";
  J += "    \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : Stats.gauges()) {
    J += formatString("%s\n      \"%s\": %s", First ? "" : ",",
                      jsonEscape(Name).c_str(), num(Value).c_str());
    First = false;
  }
  J += First ? "}\n" : "\n    }\n";
  J += "  }\n";
  J += "}\n";
  return J;
}

std::string ClusterReport::toText() const {
  std::string T;
  T += formatString("cluster: workers=%d placement=%s steal=%s policy=%s "
                    "arrival=%s mix=%s machine=%s seed=%llu streams=%d\n",
                    Workers, PlacementName.c_str(), Steal ? "on" : "off",
                    PolicyName.c_str(), ArrivalDesc.c_str(), Mix.c_str(),
                    Machine.c_str(), static_cast<unsigned long long>(Seed),
                    Streams);
  T += formatString(
      "jobs: submitted=%llu rejected=%llu completed=%llu stolen=%llu\n",
      static_cast<unsigned long long>(Submitted),
      static_cast<unsigned long long>(Rejected),
      static_cast<unsigned long long>(Completed),
      static_cast<unsigned long long>(Stolen));
  T += formatString("makespan %.3f ms, throughput %.1f jobs/s\n", MakespanMs,
                    ThroughputJps);
  auto Row = [](const char *Name, const serve::LatencySummary &S) {
    return formatString(
        "  %-11s p50 %9.3f  p95 %9.3f  p99 %9.3f  mean %9.3f  max %9.3f\n",
        Name, S.P50, S.P95, S.P99, S.Mean, S.Max);
  };
  T += "latency (ms):\n";
  T += Row("queue-wait", QueueWait);
  T += Row("service", Service);
  T += Row("e2e", E2e);
  T += formatString(
      "fabric: epochs=%llu messages=%llu steals=%llu rebalance-epochs=%llu\n",
      static_cast<unsigned long long>(Epochs),
      static_cast<unsigned long long>(Messages),
      static_cast<unsigned long long>(Steals),
      static_cast<unsigned long long>(RebalanceEpochs));
  for (const WorkerSummary &W : PerWorker)
    T += formatString("  w%-2d assigned=%-5llu completed=%-5llu "
                      "stolen-in=%-3llu stolen-out=%-3llu gpu %5.1f%% "
                      "cpu %5.1f%%\n",
                      W.Index, static_cast<unsigned long long>(W.Assigned),
                      static_cast<unsigned long long>(W.Completed),
                      static_cast<unsigned long long>(W.StolenIn),
                      static_cast<unsigned long long>(W.StolenOut),
                      W.GpuUtil * 100, W.CpuUtil * 100);
  if (SloChecked)
    T += formatString("slo: %.3f ms -> %llu violation(s)\n", SloMs,
                      static_cast<unsigned long long>(SloViolations));
  if (Validated)
    T += formatString("validation: %llu failure(s)\n",
                      static_cast<unsigned long long>(ValidationFailures));
  if (CheckEnabled)
    T += formatString("check: %llu error(s), %llu warning(s)\n",
                      static_cast<unsigned long long>(CheckErrors),
                      static_cast<unsigned long long>(CheckWarnings));
  if (RacesEnabled)
    T += formatString("races: %llu finding(s)\n",
                      static_cast<unsigned long long>(RaceFindings));
  return T;
}

std::string ClusterReport::toCsv() const {
  std::string C = "id,stream,workload,max_groups,large,first_worker,worker,"
                  "stolen,rejected,arrival_ms,start_ms,end_ms,queue_wait_ms,"
                  "service_ms,e2e_ms\n";
  for (const ClusterJobRecord &R : Jobs) {
    if (R.Rejected) {
      C += formatString("%llu,%d,%s,%llu,%d,%d,%d,%d,1,%s,,,,,\n",
                        static_cast<unsigned long long>(R.Id), R.Stream,
                        R.Workload.c_str(),
                        static_cast<unsigned long long>(R.MaxGroups),
                        R.Large ? 1 : 0, R.FirstWorker, R.Worker,
                        R.Stolen ? 1 : 0,
                        num(R.ArrivalAt.nanos() * 1e-6).c_str());
      continue;
    }
    C += formatString(
        "%llu,%d,%s,%llu,%d,%d,%d,%d,0,%s,%s,%s,%s,%s,%s\n",
        static_cast<unsigned long long>(R.Id), R.Stream, R.Workload.c_str(),
        static_cast<unsigned long long>(R.MaxGroups), R.Large ? 1 : 0,
        R.FirstWorker, R.Worker, R.Stolen ? 1 : 0,
        num(R.ArrivalAt.nanos() * 1e-6).c_str(),
        num(R.StartAt.nanos() * 1e-6).c_str(),
        num(R.EndAt.nanos() * 1e-6).c_str(), num(R.queueWaitMs()).c_str(),
        num(R.serviceMs()).c_str(), num(R.e2eMs()).c_str());
  }
  return C;
}
