//===- cluster/Cluster.h - Sharded multi-pair serve tier --------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// fcl::cluster scales the fcl::serve tier out: a master shards kernel
/// streams across N worker pairs, each worker an independent serve::Engine
/// over its own simulated CPU+GPU machine with its own virtual clock,
/// running on its own OS thread. The Maiter-style master/worker split
/// keeps all global decisions (placement, stealing, outcome accounting)
/// on the master; workers only execute.
///
/// Determinism model - the whole design hangs off one invariant:
///
///   Worker simulators advance in lockstep epochs of `Quantum` simulated
///   time, separated by a fabric barrier (cluster/Fabric.h). All
///   cross-worker traffic - arrival injection, steal transfers, outcome
///   collection - happens in the master's between-epochs phase while
///   every worker is parked. A worker's simulator therefore sees exactly
///   the same event sequence no matter how the OS schedules the threads,
///   and same-seed runs produce byte-identical reports (and traces) at
///   any worker count.
///
/// Work stealing moves whole queued jobs (job granularity - queued
/// requests have no device state yet) from the deepest queue to idle
/// workers at epoch boundaries, charging a simulated link latency for the
/// transfer. Placement policies are in cluster/Placement.h.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_CLUSTER_CLUSTER_H
#define FCL_CLUSTER_CLUSTER_H

#include "cluster/Fabric.h"
#include "cluster/Placement.h"
#include "cluster/Report.h"
#include "serve/Engine.h"
#include "support/Rng.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace fcl {
namespace cluster {

struct ClusterConfig {
  /// Worker pairs (each one serve::Engine over its own simulator).
  int Workers = 2;
  Placement Place = Placement::LeastLoaded;
  /// Epoch-boundary work stealing (job granularity).
  bool Steal = true;
  /// Simulated time per fabric epoch. Smaller quanta react faster to
  /// imbalance (more steal opportunities) at more barrier crossings.
  Duration Quantum = Duration::milliseconds(1);
  /// Simulated cost of migrating a stolen job between workers; a small
  /// deterministic jitter (master RNG) is added per transfer.
  Duration LinkLatency = Duration::microseconds(20);

  /// Per-worker serve configuration. Streams is the *cluster-wide* client
  /// stream count; arrivals are generated once by the master and sharded
  /// by placement. Closed-loop arrivals are not supported (the think loop
  /// would couple worker clocks); parse errors aside, the tool rejects it.
  serve::EngineConfig Worker;

  /// Upper bound on fabric epochs, as a quiescence failsafe.
  uint64_t MaxEpochs = 1u << 22;
};

/// One Cluster instance runs one complete cluster experiment.
class Cluster {
public:
  explicit Cluster(ClusterConfig Cfg);
  ~Cluster();

  /// Generates the cluster load, runs all workers to completion and
  /// returns the aggregate report.
  ClusterReport run();

private:
  /// Master-side per-worker state.
  struct Worker {
    int Index = 0;
    std::unique_ptr<serve::Engine> Eng;
    std::unique_ptr<trace::Tracer> Trace;
    /// Outcome outbox: filled by the engine on the worker's thread during
    /// its quantum, drained by the master at the next barrier.
    std::vector<serve::JobOutcome> Outbox;
    /// fcl::race shadow object for the outbox (the one master/worker
    /// shared structure outside the engines).
    std::string OutboxObj;
    /// Master bookkeeping for placement decisions (never reads engine
    /// internals mid-epoch): jobs placed here and not yet reported back.
    uint64_t OutstandingJobs = 0;
    uint64_t OutstandingGroups = 0;
    // Report tallies.
    uint64_t Assigned = 0;
    uint64_t Completed = 0;
    uint64_t Rejected = 0;
    uint64_t StolenIn = 0;
    std::vector<double> E2eMs;
  };

  /// A pre-drawn cluster arrival.
  struct Draw {
    TimePoint At;
    int Stream = 0;
    int TemplateIdx = 0;
  };

  void drawArrivals();
  int placeJob(const Draw &D);
  void injectDraw(uint64_t Id, const Draw &D, int W);
  void drainOutboxes();
  void stealPass(TimePoint EpochStart);
  void workerMain(Worker &W);
  ClusterReport finalize(const std::vector<serve::ServeReport> &WReps);

  ClusterConfig Cfg;
  std::vector<serve::JobTemplate> Templates;
  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<Draw> Draws;
  std::vector<ClusterJobRecord> Jobs;
  EpochBarrier Barrier;
  /// Master-only RNG for steal-transfer jitter.
  Rng MasterRng;
  bool RacesOn = false;

  uint64_t EpochsRun = 0;
  uint64_t Messages = 0;
  uint64_t StealsN = 0;
  uint64_t RebalanceEpochsN = 0;
  uint64_t RejectedN = 0;
  uint64_t CompletedN = 0;
  uint64_t StolenN = 0;
  TimePoint LastEnd;

  /// fcl::race shadow objects for the master's own shared structures.
  std::string JobsObj;

  // Aggregated fcl::check / fcl::race outcome.
  uint64_t CheckErrorsN = 0;
  uint64_t CheckWarningsN = 0;
  std::vector<std::string> CheckDiagLines;
  uint64_t RaceFindingsN = 0;
  std::vector<std::string> RaceDiagLines;
  uint64_t ValidationFailuresN = 0;
};

} // namespace cluster
} // namespace fcl

#endif // FCL_CLUSTER_CLUSTER_H
