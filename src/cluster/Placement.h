//===- cluster/Placement.h - Cluster job placement policies -----*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pluggable master-side placement: which worker pair an arriving job is
/// assigned to. Placement is decided at epoch boundaries from the master's
/// own outstanding-work bookkeeping (never from worker-internal state that
/// another thread might be mutating), so decisions are deterministic.
///
///   hash   - hash-affine: all jobs of a stream go to one worker (stable
///            stream->worker map; models session affinity, no balancing).
///   least  - least-loaded: the worker with the fewest outstanding jobs
///            (ties to the lowest index).
///   size   - size-aware: the worker with the smallest outstanding
///            work-group sum, so one heavy job counts for many light ones
///            (Soldado-style compound-computation awareness).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_CLUSTER_PLACEMENT_H
#define FCL_CLUSTER_PLACEMENT_H

#include <string>

namespace fcl {
namespace cluster {

enum class Placement {
  HashAffine,
  LeastLoaded,
  SizeAware,
};

inline const char *placementName(Placement P) {
  switch (P) {
  case Placement::HashAffine:
    return "hash";
  case Placement::LeastLoaded:
    return "least";
  case Placement::SizeAware:
    return "size";
  }
  return "?";
}

inline bool parsePlacement(const std::string &Name, Placement &Out) {
  if (Name == "hash") {
    Out = Placement::HashAffine;
    return true;
  }
  if (Name == "least") {
    Out = Placement::LeastLoaded;
    return true;
  }
  if (Name == "size") {
    Out = Placement::SizeAware;
    return true;
  }
  return false;
}

} // namespace cluster
} // namespace fcl

#endif // FCL_CLUSTER_PLACEMENT_H
