//===- race/Race.cpp - Happens-before would-be-race analyzer --------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "race/Race.h"

#include "support/Error.h"

#include <algorithm>
#include <sstream>

namespace fcl::race {

std::atomic<bool> Analyzer::Enabled{false};

namespace {
/// The calling thread's slot in Analyzer::Threads, valid while TlsGen
/// matches Analyzer::ThreadGen. Plain thread_locals (not thread ids) so
/// nothing nondeterministic ever feeds analysis results.
thread_local uint64_t TlsGen = 0;
thread_local size_t TlsSlot = 0;
} // namespace

const char *findingKindName(FindingKind Kind) {
  switch (Kind) {
  case FindingKind::UnorderedAccess:
    return "unordered_access";
  case FindingKind::ReentrantCallback:
    return "reentrant_callback";
  case FindingKind::LeaseOverlap:
    return "lease_overlap";
  }
  FCL_UNREACHABLE("unknown FindingKind");
}

Analyzer &Analyzer::instance() {
  static Analyzer A;
  return A;
}

void Analyzer::setEnabled(bool On) {
  Enabled.store(On, std::memory_order_relaxed);
}

void Analyzer::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  resetLocked();
}

uint32_t Analyzer::allocDomain() {
  std::lock_guard<std::mutex> Lock(Mu);
  return NextDomain++;
}

Analyzer::Task Analyzer::makeRootLocked(size_t Slot) {
  Task Root;
  Root.Seq = 0;
  Root.Strand = Slot == 0 ? 0 : NextStrand++;
  Root.Epoch = 1;
  auto C = std::make_shared<Clock>();
  (*C)[Root.Strand] = 1;
  Root.Explicit = std::move(C);
  NextEpoch[Root.Strand] = 2;
  if (Slot == 0) {
    // The host root: strand 0, epoch 1, begun at version 0 (everything
    // covers it - the host schedules the first events).
    History[0].push_back(HistEntry{1, 0, 0});
  } else {
    // Worker-thread roots begin at a real version in no domain, so they
    // are covered only by explicit clock/channel edges, never by drains.
    ++Sum.StrandsCreated;
    ++GlobalVersion;
    History[Root.Strand].push_back(HistEntry{1, GlobalVersion, NoDomain});
  }
  return Root;
}

void Analyzer::resetLocked() {
  Threads.clear();
  ++ThreadGen;
  PendingBySeq.clear();
  History.clear();
  NextEpoch.clear();
  Sections.clear();
  Channels.clear();
  Leases.clear();
  Guards.clear();
  Shadows.clear();
  Findings.clear();
  FindingCount.store(0, std::memory_order_relaxed);
  Sum = Summary();
  NextStrand = 1;
  GlobalVersion = 0;
  // The resetting thread is the host (slot 0).
  TlsGen = ThreadGen;
  TlsSlot = 0;
  auto TS = std::make_unique<ThreadState>();
  TS->Slot = 0;
  TS->Stack.push_back(makeRootLocked(0));
  Threads.push_back(std::move(TS));
}

Analyzer::ThreadState &Analyzer::stateLocked() {
  if (TlsGen != ThreadGen) {
    TlsGen = ThreadGen;
    TlsSlot = Threads.size();
    auto TS = std::make_unique<ThreadState>();
    TS->Slot = TlsSlot;
    TS->Stack.push_back(makeRootLocked(TlsSlot));
    Threads.push_back(std::move(TS));
  }
  return *Threads[TlsSlot];
}

Analyzer::Task &Analyzer::currentLocked() {
  ThreadState &S = stateLocked();
  FCL_CHECK(!S.Stack.empty(), "race analyzer has no current task");
  return S.Stack.back();
}

std::string Analyzer::taskLabelLocked() {
  ThreadState &S = stateLocked();
  const Task &T = S.Stack.back();
  if (T.Seq == 0) {
    if (S.Slot == 0)
      return "host";
    std::ostringstream Os;
    Os << "thread#" << S.Slot;
    return Os.str();
  }
  std::ostringstream Os;
  Os << "event#" << T.Seq;
  return Os.str();
}

const Analyzer::HistEntry *Analyzer::beginOf(uint32_t Strand,
                                             uint64_t Epoch) const {
  auto It = History.find(Strand);
  if (It == History.end())
    return nullptr;
  const auto &H = It->second;
  auto P = std::lower_bound(H.begin(), H.end(), Epoch,
                            [](const HistEntry &E, uint64_t V) {
                              return E.Epoch < V;
                            });
  if (P == H.end() || P->Epoch != Epoch)
    return nullptr;
  return &*P;
}

bool Analyzer::coversLocked(const Task &T, uint32_t Strand,
                            uint64_t Epoch) const {
  if (T.Strand == Strand && T.Epoch >= Epoch)
    return true;
  if (T.Explicit) {
    auto It = T.Explicit->find(Strand);
    if (It != T.Explicit->end() && It->second >= Epoch)
      return true;
  }
  // Drain joins: the task waited for everything the access's domain had
  // begun up to its watermark version. Never crosses domains - another
  // simulator's events may still be running on another thread.
  const HistEntry *E = beginOf(Strand, Epoch);
  if (!E)
    return false;
  if (E->Version == 0)
    return true; // the pre-history host root
  auto It = T.Drains.find(E->Domain);
  return It != T.Drains.end() && It->second >= E->Version;
}

Analyzer::Clock &Analyzer::mutableClockLocked(Task &T) {
  if (!T.Explicit) {
    auto C = std::make_shared<Clock>();
    T.Explicit = C;
    return *C;
  }
  if (T.Explicit.use_count() > 1) {
    auto C = std::make_shared<Clock>(*T.Explicit);
    T.Explicit = C;
    return *C;
  }
  // Sole owner: mutate in place.
  return const_cast<Clock &>(*T.Explicit);
}

void Analyzer::joinLocked(Task &T, const Stamp &S) {
  for (const auto &[Domain, V] : S.Drains) {
    uint64_t &E = T.Drains[Domain];
    if (V > E)
      E = V;
  }
  if (!S.Explicit || S.Explicit == T.Explicit)
    return;
  Clock &C = mutableClockLocked(T);
  for (const auto &[Strand, Epoch] : *S.Explicit) {
    uint64_t &E = C[Strand];
    if (Epoch > E)
      E = Epoch;
  }
}

Analyzer::Stamp Analyzer::stampLocked(const Task &T) const {
  return Stamp{T.Explicit, T.Drains};
}

void Analyzer::mergeStampLocked(Stamp &Dst, const Stamp &Src) {
  for (const auto &[Domain, V] : Src.Drains) {
    uint64_t &E = Dst.Drains[Domain];
    if (V > E)
      E = V;
  }
  if (!Src.Explicit || Src.Explicit == Dst.Explicit)
    return;
  if (!Dst.Explicit) {
    Dst.Explicit = Src.Explicit;
    return;
  }
  // Clone only when the source actually advances an entry (the common
  // case is the same task re-publishing an unchanged clock).
  bool Advances = false;
  for (const auto &[Strand, Epoch] : *Src.Explicit) {
    auto It = Dst.Explicit->find(Strand);
    if (It == Dst.Explicit->end() || It->second < Epoch) {
      Advances = true;
      break;
    }
  }
  if (!Advances)
    return;
  auto C = std::make_shared<Clock>(*Dst.Explicit);
  for (const auto &[Strand, Epoch] : *Src.Explicit) {
    uint64_t &E = (*C)[Strand];
    if (Epoch > E)
      E = Epoch;
  }
  Dst.Explicit = std::move(C);
}

void Analyzer::onSchedule(uint64_t Seq, uint32_t Domain) {
  std::lock_guard<std::mutex> Lock(Mu);
  Task &Cur = currentLocked();
  Pending P;
  P.At = stampLocked(Cur);
  // Strand compression: the first event a task schedules continues the
  // task's strand at the next epoch, so completion chains reuse one
  // strand and clocks stay small.
  if (!Cur.ForkedContinuation) {
    Cur.ForkedContinuation = true;
    P.TakesParentStrand = true;
    P.ParentStrand = Cur.Strand;
  }
  PendingBySeq.emplace(std::make_pair(Domain, Seq), std::move(P));
}

void Analyzer::onEventBegin(uint64_t Seq, uint32_t Domain) {
  std::lock_guard<std::mutex> Lock(Mu);
  ThreadState &S = stateLocked();
  // Program order: the event callback runs on the pumping task's OS
  // thread, after everything that task did before (re-)entering the run
  // loop - a real happens-before edge. This is what orders a worker's
  // next-epoch events after the cluster master's barrier-time mutations
  // (the worker root joins the master's channel, then pumps the loop).
  Stamp PumpedAfter = stampLocked(S.Stack.back());
  Pending P;
  auto It = PendingBySeq.find(std::make_pair(Domain, Seq));
  if (It != PendingBySeq.end()) {
    P = std::move(It->second);
    PendingBySeq.erase(It);
  }
  // Events scheduled before the analyzer was enabled have no snapshot and
  // start as roots (P left default: fresh strand, empty clock).
  Task T;
  T.Seq = Seq;
  if (P.TakesParentStrand) {
    T.Strand = P.ParentStrand;
  } else {
    T.Strand = NextStrand++;
    ++Sum.StrandsCreated;
  }
  uint64_t &Next = NextEpoch[T.Strand];
  if (Next == 0)
    Next = 1;
  T.Epoch = Next++;
  T.Explicit = P.At.Explicit;
  T.Drains = std::move(P.At.Drains);
  ++GlobalVersion;
  History[T.Strand].push_back(HistEntry{T.Epoch, GlobalVersion, Domain});
  S.Stack.push_back(std::move(T));
  mutableClockLocked(S.Stack.back())[S.Stack.back().Strand] =
      S.Stack.back().Epoch;
  joinLocked(S.Stack.back(), PumpedAfter);
  ++Sum.TasksExecuted;
}

void Analyzer::onEventEnd() {
  std::lock_guard<std::mutex> Lock(Mu);
  ThreadState &S = stateLocked();
  if (S.Stack.size() > 1)
    S.Stack.pop_back();
}

void Analyzer::onCancel(uint64_t Seq, uint32_t Domain) {
  std::lock_guard<std::mutex> Lock(Mu);
  PendingBySeq.erase(std::make_pair(Domain, Seq));
}

void Analyzer::onDrainExit(uint32_t Domain) {
  std::lock_guard<std::mutex> Lock(Mu);
  // Returning from a blocking run loop means every event this simulator
  // began so far has finished (or is an ancestor on this very stack):
  // join them all. O(1) thanks to the begin-version history.
  uint64_t &V = currentLocked().Drains[Domain];
  if (GlobalVersion > V)
    V = GlobalVersion;
  ++Sum.DrainJoins;
}

void Analyzer::sectionEnter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Sum.SectionOps;
  Task &Cur = currentLocked();
  auto It = Sections.find(Name);
  if (It != Sections.end())
    joinLocked(Cur, It->second);
  ++Cur.Held[Name];
}

void Analyzer::sectionExit(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  Task &Cur = currentLocked();
  // Accumulate rather than overwrite: a mutex acquire happens-after EVERY
  // prior release, and simulated sections can overlap (an inline-pumped
  // nested event enters and exits while an outer event still holds the
  // scope), so last-writer-wins would drop the nested publish.
  mergeStampLocked(Sections[Name], stampLocked(Cur));
  auto It = Cur.Held.find(Name);
  if (It != Cur.Held.end() && --It->second == 0)
    Cur.Held.erase(It);
}

void Analyzer::hbPublish(const std::string &Chan) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Sum.ChannelOps;
  mergeStampLocked(Channels[Chan], stampLocked(currentLocked()));
}

void Analyzer::hbJoin(const std::string &Chan) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Sum.ChannelOps;
  auto It = Channels.find(Chan);
  if (It != Channels.end())
    joinLocked(currentLocked(), It->second);
}

void Analyzer::leaseAcquire(const std::string &Name,
                            const std::string &Holder) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Sum.LeaseOps;
  LeaseState &L = Leases[Name];
  if (L.Held) {
    std::ostringstream Os;
    Os << "lease '" << Name << "' acquired by " << taskLabelLocked() << " ('"
       << Holder << "') while still held by '" << L.Holder
       << "' (overlapping ownership would corrupt the resource on OS "
          "threads)";
    recordFindingLocked(FindingKind::LeaseOverlap, Name, Os.str());
  } else {
    joinLocked(currentLocked(), L.LastRelease);
  }
  L.Held = true;
  L.Holder = Holder.empty() ? taskLabelLocked() : Holder;
}

void Analyzer::leaseRelease(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Sum.LeaseOps;
  LeaseState &L = Leases[Name];
  L.Held = false;
  L.LastRelease = stampLocked(currentLocked());
}

void Analyzer::guardEnter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Sum.GuardOps;
  GuardState &G = Guards[Name];
  if (G.Depth > 0) {
    std::ostringstream Os;
    Os << "non-reentrant scope '" << Name
       << "' re-entered while active: first entered by " << G.Holder
       << ", re-entered by " << taskLabelLocked()
       << " (a callback recursed into its own scope)";
    recordFindingLocked(FindingKind::ReentrantCallback, Name, Os.str());
  } else {
    G.Holder = taskLabelLocked();
  }
  ++G.Depth;
}

void Analyzer::guardExit(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  GuardState &G = Guards[Name];
  if (G.Depth > 0)
    --G.Depth;
}

void Analyzer::checkAccessLocked(Shadow &Sh, const std::string &Object,
                                 const char *What, bool IsWrite) {
  Task &Cur = currentLocked();
  std::string Label = taskLabelLocked();
  // Hybrid lockset rule: two accesses holding a common section are
  // mutually excluded on OS threads even when no release->acquire edge
  // orders them (the analyzer sees them overlap only because nested
  // events pump inline on one native stack).
  auto SharesLock = [&](const Access &Prev) {
    for (const std::string &L : Prev.Locks)
      if (Cur.Held.count(L))
        return true;
    return false;
  };
  auto Complain = [&](const Access &Prev, const char *PrevOp,
                      const char *CurOp) {
    std::ostringstream Os;
    Os << "conflicting accesses to '" << Object << "': " << PrevOp << " '"
       << Prev.What << "' by " << Prev.TaskLabel << " and " << CurOp << " '"
       << What << "' by " << Label
       << " are unordered by happens-before (a data race once simulators "
          "move onto OS threads)";
    recordFindingLocked(FindingKind::UnorderedAccess, Object, Os.str());
  };
  std::vector<std::string> Locks;
  Locks.reserve(Cur.Held.size());
  for (const auto &[Name, Depth] : Cur.Held)
    Locks.push_back(Name);
  if (Sh.HasWrite &&
      !coversLocked(Cur, Sh.LastWrite.Strand, Sh.LastWrite.Epoch) &&
      !SharesLock(Sh.LastWrite))
    Complain(Sh.LastWrite, "write", IsWrite ? "write" : "read");
  if (IsWrite) {
    for (const auto &[Strand, R] : Sh.Reads)
      if (!coversLocked(Cur, R.Strand, R.Epoch) && !SharesLock(R))
        Complain(R, "read", "write");
    Sh.HasWrite = true;
    Sh.LastWrite = Access{Cur.Strand, Cur.Epoch, What, Label, Locks};
    Sh.Reads.clear();
  } else {
    Sh.Reads[Cur.Strand] =
        Access{Cur.Strand, Cur.Epoch, What, Label, std::move(Locks)};
  }
}

void Analyzer::sharedWrite(const std::string &Object, const char *What) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Sum.AccessesChecked;
  checkAccessLocked(Shadows[Object], Object, What, /*IsWrite=*/true);
}

void Analyzer::sharedRead(const std::string &Object, const char *What) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Sum.AccessesChecked;
  checkAccessLocked(Shadows[Object], Object, What, /*IsWrite=*/false);
}

void Analyzer::recordFindingLocked(FindingKind Kind, const std::string &Object,
                                   std::string Message) {
  auto Key = std::make_pair(static_cast<int>(Kind), Object);
  auto It = Findings.find(Key);
  if (It != Findings.end()) {
    ++It->second.Repeats;
  } else {
    Finding F;
    F.Kind = Kind;
    F.Object = Object;
    F.Message = std::move(Message);
    Findings.emplace(std::move(Key), std::move(F));
  }
  FindingCount.fetch_add(1, std::memory_order_relaxed);
}

bool Analyzer::hasFindings() const {
  return FindingCount.load(std::memory_order_relaxed) != 0;
}

std::vector<Finding> Analyzer::findings() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<Finding> Out;
  Out.reserve(Findings.size());
  for (const auto &[Key, F] : Findings)
    Out.push_back(F);
  return Out;
}

std::vector<Finding> Analyzer::takeFindings() {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<Finding> Out;
  Out.reserve(Findings.size());
  for (const auto &[Key, F] : Findings)
    Out.push_back(F);
  Findings.clear();
  FindingCount.store(0, std::memory_order_relaxed);
  return Out;
}

Summary Analyzer::summary() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Sum;
}

} // namespace fcl::race
