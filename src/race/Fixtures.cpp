//===- race/Fixtures.cpp - Seeded concurrency-hazard fixtures -------------===//

#include "race/Fixtures.h"

#include "fluidicl/Runtime.h"
#include "sim/Simulator.h"
#include "support/Log.h"
#include "work/Driver.h"

#include <cstdio>

namespace fcl::race {
namespace {

// --- unordered_sibling_writes -------------------------------------------
// Two events forked independently from the host both write a shared
// accumulator with no declared synchronization: nothing orders them, so
// on OS threads the writes would race.
void runUnorderedSiblingWrites() {
  sim::Simulator S;
  auto Bump = [] {
    Analyzer::instance().sharedWrite("fixture.shared_total", "accumulate");
  };
  S.scheduleAfter(Duration::microseconds(1), Bump);
  S.scheduleAfter(Duration::microseconds(2), Bump);
  S.run();
}

// --- sectioned_sibling_writes (clean) ------------------------------------
// The same sibling shape, but both writes run inside the same declared
// Section (a would-be mutex): enter joins the previous holder's published
// clock, so the accesses are ordered.
void runSectionedSiblingWrites() {
  sim::Simulator S;
  auto Bump = [] {
    Section Sec("fixture.section");
    Analyzer::instance().sharedWrite("fixture.shared_total", "accumulate");
  };
  S.scheduleAfter(Duration::microseconds(1), Bump);
  S.scheduleAfter(Duration::microseconds(2), Bump);
  S.run();
}

// --- drain_ordered_writes (clean) ----------------------------------------
// Host writes after run() returns: the drain join orders the host after
// every event, so reading/writing what the events wrote is safe.
void runDrainOrderedWrites() {
  sim::Simulator S;
  S.scheduleAfter(Duration::microseconds(1), [] {
    Analyzer::instance().sharedWrite("fixture.result", "produce");
  });
  S.run();
  Analyzer::instance().sharedRead("fixture.result", "consume");
  Analyzer::instance().sharedWrite("fixture.result", "reset");
}

// --- lease_overlap --------------------------------------------------------
// Two independently forked events both acquire the same device lease and
// neither releases first: overlapping ownership.
void runLeaseOverlap() {
  sim::Simulator S;
  S.scheduleAfter(Duration::microseconds(1), [] {
    Analyzer::instance().leaseAcquire("fixture.device", "job-a");
  });
  S.scheduleAfter(Duration::microseconds(2), [] {
    Analyzer::instance().leaseAcquire("fixture.device", "job-b");
  });
  S.run();
}

// --- lease_handoff (clean) ------------------------------------------------
// Acquire/release/acquire in event order: a proper ownership handoff
// (acquire joins the previous release, so the holders are ordered).
void runLeaseHandoff() {
  sim::Simulator S;
  S.scheduleAfter(Duration::microseconds(1), [] {
    Analyzer::instance().leaseAcquire("fixture.device", "job-a");
  });
  S.scheduleAfter(Duration::microseconds(2), [] {
    Analyzer::instance().leaseRelease("fixture.device");
  });
  S.scheduleAfter(Duration::microseconds(3), [] {
    Analyzer::instance().leaseAcquire("fixture.device", "job-b");
  });
  S.run();
}

// --- reentrant_chunk_yield ------------------------------------------------
// A deliberately reentrant callback on the real async runtime surface:
// the chunk-yield hook resumes the CPU and then pumps the simulator from
// inside the hook, so the next chunk boundary re-enters the hook while
// the first invocation is still on the stack (the exact bug class the
// serve engine's park/resume protocol exists to avoid).
void runReentrantChunkYield() {
  mcl::Context Ctx(hw::paperMachine(), mcl::ExecMode::TimingOnly);
  fluidicl::Runtime RT(Ctx);
  RT.setChunkYield([&Ctx](std::function<void()> Resume) {
    Resume();
    Ctx.simulator().run();
  });
  work::runWorkload(RT, work::makeSyrk(512, 512), /*Validate=*/false);
}

const std::vector<FixtureCase> Cases = {
    {"unordered_sibling_writes",
     "sibling events write one accumulator with no synchronization",
     true, FindingKind::UnorderedAccess, runUnorderedSiblingWrites},
    {"lease_overlap",
     "two jobs acquire the same device lease without a release between",
     true, FindingKind::LeaseOverlap, runLeaseOverlap},
    {"reentrant_chunk_yield",
     "chunk-yield hook pumps the simulator and re-enters itself",
     true, FindingKind::ReentrantCallback, runReentrantChunkYield},
    {"sectioned_sibling_writes",
     "clean: the sibling writes are ordered through a declared Section",
     false, FindingKind::UnorderedAccess, runSectionedSiblingWrites},
    {"drain_ordered_writes",
     "clean: host touches event results only after the drain join",
     false, FindingKind::UnorderedAccess, runDrainOrderedWrites},
    {"lease_handoff",
     "clean: acquire/release/acquire is an ordered ownership handoff",
     false, FindingKind::LeaseOverlap, runLeaseHandoff},
};

} // namespace

const std::vector<FixtureCase> &fixtureCases() { return Cases; }

bool runFixtureSweep(bool Verbose) {
  Analyzer &A = Analyzer::instance();
  bool AllOk = true;
  for (const FixtureCase &C : Cases) {
    A.reset();
    A.setEnabled(true);
    C.Run();
    A.setEnabled(false);
    std::vector<Finding> Found = A.takeFindings();
    bool Ok;
    if (C.ExpectFinding) {
      // The hazard must be caught with its distinct diagnostic and must
      // not splash into other kinds.
      Ok = !Found.empty();
      for (const Finding &F : Found)
        if (F.Kind != C.Expected)
          Ok = false;
    } else {
      Ok = Found.empty();
    }
    if (Verbose || !Ok) {
      std::printf("race fixture %-28s %-4s (%s)\n", C.Name,
                  Ok ? "ok" : "FAIL", C.Hazard);
      for (const Finding &F : Found)
        std::printf("    [%s] %s\n", findingKindName(F.Kind),
                    F.Message.c_str());
    }
    AllOk = AllOk && Ok;
  }
  A.reset();
  return AllOk;
}

} // namespace fcl::race
