//===- race/Fixtures.h - Seeded concurrency-hazard fixtures -----*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deliberately hazardous mini-programs that the fcl::race analyzer must
/// catch, each with a distinct diagnostic, plus clean counterparts proving
/// the happens-before model does not cry wolf on properly ordered code.
/// `fluidicl_check --race-fixtures` and tests/race_test.cpp sweep them.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_RACE_FIXTURES_H
#define FCL_RACE_FIXTURES_H

#include "race/Race.h"

#include <vector>

namespace fcl {
namespace race {

/// One seeded fixture. Run() executes under an enabled, freshly reset
/// analyzer; the sweep then asserts the finding set is exactly what the
/// fixture declares (the expected kind and nothing else, or nothing).
struct FixtureCase {
  const char *Name;
  /// What the fixture demonstrates (one line, for --race-fixtures output).
  const char *Hazard;
  /// False for clean counterparts that must produce zero findings.
  bool ExpectFinding;
  FindingKind Expected;
  void (*Run)();
};

const std::vector<FixtureCase> &fixtureCases();

/// Runs every fixture under the analyzer and checks its outcome. Returns
/// true when all behave as declared. Resets and disables the analyzer
/// when done.
bool runFixtureSweep(bool Verbose);

} // namespace race
} // namespace fcl

#endif // FCL_RACE_FIXTURES_H
