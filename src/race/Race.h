//===- race/Race.h - Happens-before would-be-race analyzer ------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic half of the fcl::race concurrency-readiness analyzer.
///
/// Simulators, runtimes and serving engines historically ran on one OS
/// thread; the cluster tier now puts each device pair's simulator on its
/// own thread. Any pair of host-structure accesses that is not ordered by
/// the event graph's happens-before relation is a real data race there.
/// This analyzer finds those pairs, in both the single-threaded and the
/// threaded-cluster shape:
///
///  * Each simulator reports its causal structure (event schedule->execute
///    fork edges, drain joins at run-loop exits, cancellations) tagged with
///    its analysis *domain* (one per simulator instance), and the analyzer
///    maintains a vector clock per logical task (each thread's root program
///    plus every executed event).
///  * Instrumented code declares its synchronization intent: a Section is
///    a would-be mutex (enter joins the section's last published clock,
///    exit publishes the current clock), a lease is an ownership handoff
///    (acquire while held is a diagnostic), a guard is a non-reentrant
///    scope (nested entry is a diagnostic), and an hb channel is a real
///    cross-thread edge (a mutex/condition-variable handoff that already
///    exists, e.g. the cluster fabric's epoch barrier).
///  * Shared host structures (serve queues, version tracker, buffer pool,
///    stats registries, tracer, the cluster master's tables) are
///    shadow-tracked: every read/write is checked against the last
///    conflicting access, and any pair unordered by happens-before is
///    reported as a would-be race.
///
/// Vector clocks use strand compression: the first event a task schedules
/// continues the parent's strand at the next epoch, so completion chains
/// (the dominant shape here) keep clocks small; only genuine forks create
/// strands. Drain joins are O(1) and per-domain: the analyzer keeps a
/// global version counter, records at which version (and in which domain)
/// each (strand, epoch) began, and a task that returns from a blocking
/// run-loop remembers that it joined everything *its* simulator began up
/// to the current version. A drain never covers another simulator's
/// events - on OS threads those may still be running.
///
/// Tasks live on per-thread stacks: each OS thread that touches the
/// analyzer gets its own root task on first contact (the resetting thread
/// is the host; workers are thread#N), so concurrently executing events on
/// different threads never share a stack.
///
/// The analyzer is a process-wide singleton like prof::Profiler: disabled
/// (the default) every hook is one relaxed atomic load, and enabling it
/// never perturbs simulated time, scheduling order, or report bytes -
/// same-seed runs are byte-identical with the analyzer on or off.
///
/// Findings convert into check::DiagSink diagnostics through race/Bridge.h
/// (kept separate so this core depends on fcl_support only and the
/// simulator itself can link it).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_RACE_RACE_H
#define FCL_RACE_RACE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fcl {
namespace race {

/// What the analyzer can complain about. The check-subsystem mirror of
/// this catalogue lives in check::DiagKind (race/Bridge.cpp maps them).
enum class FindingKind {
  /// Two conflicting accesses to a shared object are unordered by
  /// happens-before: a data race once tasks move onto OS threads.
  UnorderedAccess,
  /// A non-reentrant scope (a callback that must not recurse into itself)
  /// was entered again while active.
  ReentrantCallback,
  /// A device/resource lease was acquired while another holder still held
  /// it (overlapping ownership).
  LeaseOverlap,
};

inline constexpr int NumFindingKinds =
    static_cast<int>(FindingKind::LeaseOverlap) + 1;

/// Stable snake_case identifier.
const char *findingKindName(FindingKind Kind);

/// One deduplicated finding: first-occurrence evidence plus a repeat
/// count, so long serve runs cannot grow finding memory unboundedly.
struct Finding {
  FindingKind Kind;
  /// The shared object / guard / lease the finding is about.
  std::string Object;
  /// Human-readable evidence from the first occurrence.
  std::string Message;
  /// Occurrences of this (kind, object) pair.
  uint64_t Repeats = 1;
};

/// Cheap whole-run counters for summary lines.
struct Summary {
  uint64_t TasksExecuted = 0;
  uint64_t StrandsCreated = 0;
  uint64_t AccessesChecked = 0;
  uint64_t SectionOps = 0;
  uint64_t LeaseOps = 0;
  uint64_t GuardOps = 0;
  uint64_t DrainJoins = 0;
  uint64_t ChannelOps = 0;
};

/// The process-wide happens-before analyzer.
class Analyzer {
public:
  static Analyzer &instance();

  /// One relaxed load; every instrumentation site checks this before
  /// paying for a call or for building object names.
  static bool enabled() { return Enabled.load(std::memory_order_relaxed); }

  void setEnabled(bool On);

  /// Drops all task/shadow/finding state and restarts from a fresh host
  /// task owned by the calling thread. Call between independent analyzed
  /// runs. Domain ids are NOT recycled (simulators outlive resets).
  void reset();

  /// Reserves a fresh analysis domain. Each simulator instance allocates
  /// one lazily so its fork/drain structure never collides with another
  /// simulator's event sequence numbers. Domain 0 is the legacy default
  /// for direct hook calls (unit tests).
  uint32_t allocDomain();

  // --- Simulator hooks (sim/Simulator.cpp) -------------------------------

  /// The current task scheduled event \p Seq in simulator domain
  /// \p Domain: snapshot the schedule-time clock (the fork edge).
  void onSchedule(uint64_t Seq, uint32_t Domain = 0);
  /// Event \p Seq starts executing in \p Domain (pushes a task on the
  /// calling thread's stack).
  void onEventBegin(uint64_t Seq, uint32_t Domain = 0);
  /// The innermost executing event on this thread finished (pops a task).
  void onEventEnd();
  /// Event \p Seq in \p Domain was cancelled; forget its snapshot.
  void onCancel(uint64_t Seq, uint32_t Domain = 0);
  /// A run loop of simulator \p Domain returned to its caller: the caller
  /// blocked until every event that simulator executed so far had
  /// finished, so it joins all of them (and only them - other domains may
  /// still be running on other threads).
  void onDrainExit(uint32_t Domain = 0);

  // --- Declared synchronization (instrumented code) -----------------------
  //
  // Prefer the RAII wrappers (Section / GuardScope) below.

  /// Would-be mutex acquire: joins the section's last published clock.
  void sectionEnter(const std::string &Name);
  /// Would-be mutex release: publishes the current task's clock.
  void sectionExit(const std::string &Name);

  /// Ownership handoff acquire; reports LeaseOverlap when already held.
  void leaseAcquire(const std::string &Name, const std::string &Holder);
  void leaseRelease(const std::string &Name);

  /// Non-reentrant scope; reports ReentrantCallback on nested entry.
  void guardEnter(const std::string &Name);
  void guardExit(const std::string &Name);

  // --- Real cross-thread edges (hb channels) -------------------------------

  /// Records a real synchronization edge that exists in the program (a
  /// mutex + condition-variable handoff, e.g. the cluster fabric's epoch
  /// barrier): publish merges the calling task's clock into the named
  /// channel; join makes the calling task cover everything published so
  /// far. Unlike Sections these never feed the lockset rule - they assert
  /// ordering that genuinely exists, so call them only where the code
  /// really blocks.
  void hbPublish(const std::string &Chan);
  void hbJoin(const std::string &Chan);

  // --- Shadowed shared-object accesses ------------------------------------

  /// Reports UnorderedAccess when the last conflicting access to
  /// \p Object does not happen-before the current task.
  void sharedWrite(const std::string &Object, const char *What);
  void sharedRead(const std::string &Object, const char *What);

  // --- Results -------------------------------------------------------------

  /// True when any finding was recorded (cheap; no lock ordering hazards).
  bool hasFindings() const;
  /// Findings in deterministic (kind, object) order; leaves them in place.
  std::vector<Finding> findings() const;
  /// findings(), then clears the finding set (task state is kept).
  std::vector<Finding> takeFindings();
  Summary summary() const;

private:
  Analyzer() { resetLocked(); }

  // Strand-compressed vector clock: strand id -> latest joined epoch.
  using Clock = std::map<uint32_t, uint64_t>;
  using ClockPtr = std::shared_ptr<const Clock>;
  /// Per-domain drain watermarks: domain -> highest global version whose
  /// events (begun in that domain) this task has joined.
  using DrainMap = std::map<uint32_t, uint64_t>;

  /// A published clock: the explicit (small) part plus "everything domain
  /// D begun up to version V" from drain joins.
  struct Stamp {
    ClockPtr Explicit;
    DrainMap Drains;
  };

  /// One executing logical task (a thread's root, or an event on that
  /// thread's task stack).
  struct Task {
    uint64_t Seq = 0; // 0 = a thread root task.
    uint32_t Strand = 0;
    uint64_t Epoch = 0;
    ClockPtr Explicit;
    DrainMap Drains;
    bool ForkedContinuation = false;
    /// Sections this task itself has entered and not yet exited (name ->
    /// depth). Deliberately NOT inherited by nested inline-pumped events:
    /// on OS threads those would be separate threads not holding the
    /// outer task's locks.
    std::map<std::string, uint64_t> Held;
  };

  /// One OS thread's task stack; [0] is the thread's root task and is
  /// never popped.
  struct ThreadState {
    size_t Slot = 0;
    std::vector<Task> Stack;
  };

  /// Fork-edge snapshot taken at schedule time.
  struct Pending {
    Stamp At;
    bool TakesParentStrand = false;
    uint32_t ParentStrand = 0;
  };

  struct Access {
    uint32_t Strand = 0;
    uint64_t Epoch = 0;
    std::string What;
    std::string TaskLabel;
    /// Sections held by the accessing task at access time: two accesses
    /// sharing a held section are mutually excluded on OS threads even
    /// when no release->acquire edge orders them (hybrid lockset rule).
    std::vector<std::string> Locks;
  };

  struct Shadow {
    bool HasWrite = false;
    Access LastWrite;
    /// Reads since the last write, newest epoch per strand.
    std::map<uint32_t, Access> Reads;
  };

  struct LeaseState {
    bool Held = false;
    std::string Holder;
    Stamp LastRelease;
  };

  struct GuardState {
    uint64_t Depth = 0;
    std::string Holder;
  };

  /// (strand, epoch) began at this global version, executing in this
  /// domain. Epoch and Version columns both strictly increase per strand.
  struct HistEntry {
    uint64_t Epoch = 0;
    uint64_t Version = 0;
    uint32_t Domain = 0;
  };

  void resetLocked();
  /// The calling thread's task stack, created (with a root task) on first
  /// contact after a reset.
  ThreadState &stateLocked();
  Task makeRootLocked(size_t Slot);
  Task &currentLocked();
  std::string taskLabelLocked();
  /// True when access (Strand, Epoch) happens-before the current task.
  bool coversLocked(const Task &T, uint32_t Strand, uint64_t Epoch) const;
  /// Joins \p S into the current task's clock.
  void joinLocked(Task &T, const Stamp &S);
  /// The current task's clock as a publishable stamp.
  Stamp stampLocked(const Task &T) const;
  /// Monotone stamp union: \p Dst covers everything it did plus \p Src
  /// (sections accumulate; a would-be mutex acquire happens-after every
  /// prior release, not just the latest).
  void mergeStampLocked(Stamp &Dst, const Stamp &Src);
  /// Mutable copy-on-write access to \p T's explicit clock.
  Clock &mutableClockLocked(Task &T);
  const HistEntry *beginOf(uint32_t Strand, uint64_t Epoch) const;
  void recordFindingLocked(FindingKind Kind, const std::string &Object,
                           std::string Message);
  void checkAccessLocked(Shadow &Sh, const std::string &Object,
                         const char *What, bool IsWrite);

  static std::atomic<bool> Enabled;

  /// Thread roots other than the host execute in no simulator, so no
  /// drain can ever cover them.
  static constexpr uint32_t NoDomain = 0xffffffffu;

  mutable std::mutex Mu;
  /// One stack per OS thread that has touched the analyzer since the last
  /// reset; slot 0 is the resetting (host) thread.
  std::vector<std::unique_ptr<ThreadState>> Threads;
  /// Bumped by reset() to invalidate the thread-local slot cache.
  uint64_t ThreadGen = 1;
  std::map<std::pair<uint32_t, uint64_t>, Pending> PendingBySeq;
  /// Per strand: epochs begun, with begin version and executing domain.
  std::map<uint32_t, std::vector<HistEntry>> History;
  std::map<uint32_t, uint64_t> NextEpoch;
  uint32_t NextStrand = 1;
  uint32_t NextDomain = 1; // survives reset(); 0 = legacy default
  uint64_t GlobalVersion = 0;

  std::map<std::string, Stamp> Sections;
  std::map<std::string, Stamp> Channels;
  std::map<std::string, LeaseState> Leases;
  std::map<std::string, GuardState> Guards;
  std::map<std::string, Shadow> Shadows;

  /// Deduplicated findings keyed by (kind, object).
  std::map<std::pair<int, std::string>, Finding> Findings;
  std::atomic<uint64_t> FindingCount{0};
  Summary Sum;
};

/// RAII would-be critical section. The name must outlive the scope (use
/// string literals or stable members).
class Section {
public:
  explicit Section(std::string Name) {
    if (Analyzer::enabled() && !Name.empty()) {
      Nm = std::move(Name);
      Analyzer::instance().sectionEnter(Nm);
    }
  }
  ~Section() {
    if (!Nm.empty())
      Analyzer::instance().sectionExit(Nm);
  }
  Section(const Section &) = delete;
  Section &operator=(const Section &) = delete;

private:
  std::string Nm;
};

/// RAII non-reentrant scope.
class GuardScope {
public:
  explicit GuardScope(std::string Name) {
    if (Analyzer::enabled() && !Name.empty()) {
      Nm = std::move(Name);
      Analyzer::instance().guardEnter(Nm);
    }
  }
  ~GuardScope() {
    if (!Nm.empty())
      Analyzer::instance().guardExit(Nm);
  }
  GuardScope(const GuardScope &) = delete;
  GuardScope &operator=(const GuardScope &) = delete;

private:
  std::string Nm;
};

} // namespace race
} // namespace fcl

#endif // FCL_RACE_RACE_H
