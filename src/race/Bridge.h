//===- race/Bridge.h - race findings -> check diagnostics -------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts fcl::race analyzer findings into check::DiagSink diagnostics
/// so they flow through the existing reporting fabric (stats counter
/// mirroring, trace-lane observers, policy-driven exit codes). Kept out
/// of race/Race.h so the analyzer core depends on fcl_support only and
/// the simulator itself can link it.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_RACE_BRIDGE_H
#define FCL_RACE_BRIDGE_H

#include "check/Diag.h"
#include "race/Race.h"

#include <cstddef>
#include <vector>

namespace fcl {
namespace race {

/// The check-subsystem diagnostic kind mirroring \p Kind.
check::DiagKind diagKindFor(FindingKind Kind);

/// Reports every finding into \p Sink (Diag.Kernel carries the object
/// name, Diag.Repeat the occurrence count). Returns the number reported.
size_t reportFindings(const std::vector<Finding> &Findings,
                      check::DiagSink &Sink);

/// Tool-side --races harness: resets the process-wide analyzer and
/// enables it unless \p P is Off.
void armAnalyzer(check::Policy P);

/// Disables the analyzer and drains its accumulated findings into
/// \p Sink; returns the number of distinct findings.
size_t disarmAnalyzer(check::DiagSink &Sink);

} // namespace race
} // namespace fcl

#endif // FCL_RACE_BRIDGE_H
