//===- race/Bridge.cpp - race findings -> check diagnostics ---------------===//

#include "race/Bridge.h"

#include "support/Error.h"

namespace fcl::race {

check::DiagKind diagKindFor(FindingKind Kind) {
  switch (Kind) {
  case FindingKind::UnorderedAccess:
    return check::DiagKind::RaceUnorderedAccess;
  case FindingKind::ReentrantCallback:
    return check::DiagKind::RaceReentrantCallback;
  case FindingKind::LeaseOverlap:
    return check::DiagKind::RaceLeaseOverlap;
  }
  FCL_UNREACHABLE("unknown FindingKind");
}

size_t reportFindings(const std::vector<Finding> &Findings,
                      check::DiagSink &Sink) {
  for (const Finding &F : Findings) {
    check::Diag D =
        check::Diag::make(diagKindFor(F.Kind), F.Object, F.Message);
    D.Repeat = F.Repeats;
    Sink.report(std::move(D));
  }
  return Findings.size();
}

void armAnalyzer(check::Policy P) {
  if (P == check::Policy::Off)
    return;
  Analyzer &A = Analyzer::instance();
  A.reset();
  A.setEnabled(true);
}

size_t disarmAnalyzer(check::DiagSink &Sink) {
  Analyzer &A = Analyzer::instance();
  A.setEnabled(false);
  return reportFindings(A.takeFindings(), Sink);
}

} // namespace fcl::race
