//===- dag/Graph.h - Kernel-launch dependence graphs ------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compound serve job as a small kernel DAG: nodes are the workload's
/// kernel launches with their declared buffer read/write sets (derived from
/// the registry's per-argument ArgAccess metadata - the same "simple
/// compiler analysis" information FluidiCL uses for duplication/merge), and
/// edges are data dependences computed by per-buffer last-writer
/// versioning (RAW, WAW and WAR all order; read-read does not).
///
/// Soldado et al. (see PAPERS.md) schedule whole multi-kernel computations
/// instead of single launches; dag::Graph is the unit their scheduler - and
/// our dag::DagJobExec - operates on. Construction is deterministic and
/// pure: the same workload always yields the same graph.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_DAG_GRAPH_H
#define FCL_DAG_GRAPH_H

#include "work/Workload.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fcl {
namespace dag {

/// One kernel launch inside a compound job.
struct Node {
  /// Index into Workload::Calls (and into Graph::nodes()).
  size_t Index = 0;
  /// Kernel name (copied out of the call for cheap access in traces).
  std::string Kernel;
  /// Workload buffer indices this launch reads (In / InOut args, deduped,
  /// in first-appearance order).
  std::vector<size_t> Reads;
  /// Workload buffer indices this launch writes (Out / InOut args).
  std::vector<size_t> Writes;
  /// Predecessor node indices (sorted, deduped): every RAW/WAW/WAR
  /// dependence on an earlier launch.
  std::vector<size_t> Deps;
  /// Successor node indices (sorted, deduped).
  std::vector<size_t> Succs;
  /// Flattened work-group count of the launch (cost/size proxy).
  uint64_t Groups = 0;
};

/// The dependence graph of one workload's kernel launches.
class Graph {
public:
  /// Derives the graph from \p W using kern::Registry::builtin() argument
  /// metadata. Aborts (FCL_CHECK) if a call's argument count disagrees
  /// with its registered kernel.
  static Graph fromWorkload(const work::Workload &W);

  const std::vector<Node> &nodes() const { return Nodes; }
  size_t size() const { return Nodes.size(); }
  const Node &node(size_t I) const { return Nodes[I]; }

  /// Total dependence edges.
  size_t numEdges() const;
  /// Nodes with no predecessors, in index order.
  std::vector<size_t> roots() const;
  /// Widest antichain a level-by-level (ASAP) schedule exposes: 1 for a
  /// pure chain, k for a k-way fan-out. Used by tests and --dag-stats.
  size_t maxParallelism() const;
  /// "chain", "fan-out", "fan-in", "dag" or "single" - a coarse shape
  /// label for docs/traces.
  const char *shapeName() const;

private:
  std::vector<Node> Nodes;
};

} // namespace dag
} // namespace fcl

#endif // FCL_DAG_GRAPH_H
