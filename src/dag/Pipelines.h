//===- dag/Pipelines.h - Synthetic multi-kernel pipelines -------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic compound workloads that exercise DAG shapes the Polybench
/// suite does not: a diamond (fan-out then fan-in through shared
/// intermediates) and a wide fan-out (one producer feeding independent
/// branches). Both are built from gemm_kernel launches so their cost and
/// residency behaviour is well understood, and both validate against the
/// host reference like every other work::Workload.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_DAG_PIPELINES_H
#define FCL_DAG_PIPELINES_H

#include "work/Workload.h"

#include <cstdint>

namespace fcl {
namespace dag {

/// Diamond: E = A B; F = E C; G = E D; H = F G. Nodes 1 and 2 both consume
/// node 0's output and run concurrently across the pair; node 3 joins them.
work::Workload makeDiamond(int64_t N);

/// Fan-out: E = A B, then \p Width independent products F_i = E C_i. After
/// node 0, every branch can run on either device; a residency-aware
/// placement keeps E where it was produced.
work::Workload makeFanout(int64_t N, int Width);

} // namespace dag
} // namespace fcl

#endif // FCL_DAG_PIPELINES_H
