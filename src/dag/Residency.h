//===- dag/Residency.h - Buffer residency tracking --------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks which memories hold the current version of each workload buffer
/// while a DAG job executes across the CPU+GPU pair. A buffer starts valid
/// at the host; a device write invalidates every other copy; an explicit
/// copy adds a location without bumping the version. A dependent kernel
/// placed where its producer ran finds its inputs already resident and
/// skips the redundant PCIe transfer - the core saving the residency-aware
/// placement in dag::DagJobExec is after (building on the idea behind
/// fluidicl::VersionTracker, but at whole-buffer granularity across an
/// entire compound job instead of work-group regions within one launch).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_DAG_RESIDENCY_H
#define FCL_DAG_RESIDENCY_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fcl {
namespace dag {

/// A memory that can hold a buffer copy.
enum class Loc : uint8_t { Host = 0, Gpu = 1, Cpu = 2 };

const char *locName(Loc L);

/// How DagJobExec places DAG nodes on the pair.
enum class Placement {
  /// Residency-scored: each ready node goes to the device minimizing
  /// estimated (missing-input transfer + compute + backlog) time, and
  /// inputs already resident at the chosen device skip their transfers.
  Residency,
  /// Residency-blind baseline: every node runs like an independent job -
  /// all inputs are uploaded from the host and all outputs are read back
  /// to the host, exactly what running the DAG as separate single-kernel
  /// jobs would pay.
  Blind,
};

/// Parses "residency" or "blind"; returns false for anything else.
bool parsePlacement(const std::string &Name, Placement &Out);
const char *placementName(Placement P);

/// Transfer accounting a DagJobExec feeds (the serve engine aggregates one
/// of these across all DAG jobs of a run).
struct DagStats {
  uint64_t Jobs = 0;
  uint64_t Nodes = 0;
  uint64_t GpuNodes = 0;
  uint64_t CpuNodes = 0;
  /// Transfers performed (H2D, D2H, and both legs of cross-device moves).
  uint64_t Transfers = 0;
  uint64_t TransferBytes = 0;
  /// Subset of TransferBytes that crossed the PCIe link (GPU endpoints,
  /// plus CPU endpoints on machines whose CPU device sits behind PCIe).
  uint64_t PcieBytes = 0;
  /// Input transfers skipped because the buffer was already resident at
  /// the node's device, and the bytes they would have moved.
  uint64_t TransfersSkipped = 0;
  uint64_t BytesSaved = 0;
};

/// Per-buffer version + valid-copy-set tracker.
class ResidencyTracker {
public:
  explicit ResidencyTracker(size_t NumBuffers)
      : Valid(NumBuffers, hostBit()), Version(NumBuffers, 0) {}

  size_t numBuffers() const { return Valid.size(); }

  /// True when \p At holds the current version of buffer \p B.
  bool has(size_t B, Loc At) const { return (Valid[B] & bit(At)) != 0; }

  /// A device produced a new version of \p B: every other copy is stale.
  void noteWrite(size_t B, Loc At) {
    Valid[B] = bit(At);
    ++Version[B];
  }

  /// The current version of \p B was copied to \p At.
  void noteCopy(size_t B, Loc At) { Valid[B] |= bit(At); }

  uint64_t version(size_t B) const { return Version[B]; }

  /// The single device holding the current version when it is not at the
  /// host (the source of a cross-device fetch). Host if host-resident.
  Loc owner(size_t B) const {
    if (has(B, Loc::Host))
      return Loc::Host;
    return has(B, Loc::Gpu) ? Loc::Gpu : Loc::Cpu;
  }

private:
  static uint8_t bit(Loc L) {
    return static_cast<uint8_t>(1u << static_cast<uint8_t>(L));
  }
  static uint8_t hostBit() { return bit(Loc::Host); }

  std::vector<uint8_t> Valid;
  std::vector<uint64_t> Version;
};

} // namespace dag
} // namespace fcl

#endif // FCL_DAG_RESIDENCY_H
