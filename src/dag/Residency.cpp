//===- dag/Residency.cpp - Buffer residency tracking ----------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dag/Residency.h"

using namespace fcl;
using namespace fcl::dag;

const char *fcl::dag::locName(Loc L) {
  switch (L) {
  case Loc::Host:
    return "host";
  case Loc::Gpu:
    return "gpu";
  case Loc::Cpu:
    return "cpu";
  }
  return "?";
}

bool fcl::dag::parsePlacement(const std::string &Name, Placement &Out) {
  if (Name == "residency") {
    Out = Placement::Residency;
    return true;
  }
  if (Name == "blind") {
    Out = Placement::Blind;
    return true;
  }
  return false;
}

const char *fcl::dag::placementName(Placement P) {
  switch (P) {
  case Placement::Residency:
    return "residency";
  case Placement::Blind:
    return "blind";
  }
  return "?";
}
