//===- dag/DagExec.cpp - Compound-job DAG executor ------------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dag/DagExec.h"

#include "hw/CostModel.h"
#include "kern/Registry.h"
#include "race/Race.h"
#include "support/Error.h"
#include "support/Format.h"
#include "trace/Tracer.h"
#include "work/Driver.h"

#include <algorithm>
#include <atomic>
#include <cmath>

using namespace fcl;
using namespace fcl::dag;

DagJobExec::DagJobExec(mcl::Context &Ctx, const work::Workload &W,
                       const Graph &G, Placement Place, bool Validate,
                       DagStats *Stats, trace::Tracer *Trace)
    : Ctx(Ctx), W(W), G(G), Place(Place), Validate(Validate), Stats(Stats),
      Trace(Trace), Res(W.Buffers.size()) {
  FCL_CHECK(G.size() == W.Calls.size(), "graph does not describe workload");
  static std::atomic<uint64_t> NextRaceId{0};
  RaceSec = formatString("serve.dagexec#%llu",
                         static_cast<unsigned long long>(NextRaceId++));
}

DagJobExec::~DagJobExec() = default;

void DagJobExec::start(DoneFn Done) {
  OnDone = std::move(Done);
  bool Functional = Ctx.functional();
  if (Functional) {
    Stage = work::initHostData(W);
    Init = Stage;
  }
  Qs[GpuIdx] = Ctx.createQueue(Ctx.gpu(), "dag-gpu");
  Qs[CpuIdx] = Ctx.createQueue(Ctx.cpu(), "dag-cpu");
  Bufs.resize(W.Buffers.size());
  Results.resize(W.ResultBuffers.size());
  if (Functional)
    for (size_t R = 0; R < W.ResultBuffers.size(); ++R)
      Results[R].resize(W.Buffers[W.ResultBuffers[R]].Bytes);

  Indegree.resize(G.size());
  NodeDevice.assign(G.size(), GpuIdx);
  NodeStart.resize(G.size());
  NodeEstNs.assign(G.size(), 0);
  FetchesLeft.assign(G.size(), 0);
  for (size_t I = 0; I < G.size(); ++I)
    Indegree[I] = G.node(I).Deps.size();
  if (Stats)
    ++Stats->Jobs;
  ReadyList = G.roots();
  pump();
}

void DagJobExec::pump() {
  if (Pumping)
    return;
  Pumping = true;
  while (!ReadyList.empty()) {
    // Lowest node index first: deterministic launch order regardless of
    // which completion unblocked what.
    auto It = std::min_element(ReadyList.begin(), ReadyList.end());
    size_t N = *It;
    ReadyList.erase(It);
    launchNode(N);
  }
  Pumping = false;
}

bool DagJobExec::pciePriced(size_t D) const {
  return D == GpuIdx || Ctx.machine().Cpu.BehindPcie;
}

void DagJobExec::accountTransfer(size_t D, uint64_t Bytes) {
  if (!Stats)
    return;
  ++Stats->Transfers;
  Stats->TransferBytes += Bytes;
  if (pciePriced(D))
    Stats->PcieBytes += Bytes;
}

mcl::Buffer &DagJobExec::deviceBuf(size_t B, size_t D) {
  if (!Bufs[B][D]) {
    Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
    mcl::Device &Dev = D == GpuIdx ? Ctx.gpu() : Ctx.cpu();
    Bufs[B][D] = Ctx.createBuffer(Dev, W.Buffers[B].Bytes, W.Buffers[B].Name);
  }
  return *Bufs[B][D];
}

void DagJobExec::launchNode(size_t N) {
  const Node &Nd = G.node(N);
  size_t D = pickDevice(N);
  NodeDevice[N] = D;
  NodeStart[N] = Ctx.now();
  NodeEstNs[N] = transferNs(N, D) + computeNs(N, D);
  BacklogNs[D] += NodeEstNs[N];
  bool Functional = Ctx.functional();
  Duration Api = Ctx.machine().Host.ApiCallOverhead;

  // Materialize every touched buffer on the chosen device, then stage the
  // inputs the device does not already hold. The in-order queue guarantees
  // the kernel observes all of them.
  //
  // FetchesLeft starts at one - a launch token this function holds while it
  // enqueues: hostAdvance() runs due simulator events, so a fetch issued
  // early in the loop can complete before the loop ends, and without the
  // token its callback would see a zero count and enqueue the kernel a
  // second time.
  FetchesLeft[N] = 1;
  for (size_t B : Nd.Writes)
    deviceBuf(B, D);
  for (size_t B : Nd.Reads) {
    mcl::Buffer &Dst = deviceBuf(B, D);
    uint64_t Bytes = W.Buffers[B].Bytes;
    if (Place == Placement::Residency && Res.has(B, devLoc(D))) {
      // Already resident where the node runs: the core saving.
      if (Stats) {
        ++Stats->TransfersSkipped;
        Stats->BytesSaved += Bytes;
      }
      continue;
    }
    if (Place == Placement::Blind || Res.has(B, Loc::Host)) {
      // Blind always re-uploads from the host (whose copy blind's per-node
      // readbacks keep current); residency uploads only when the host
      // holds the freshest version.
      Ctx.hostAdvance(Api);
      Qs[D]->enqueueWrite(Dst, Functional ? Stage[B].data() : nullptr, Bytes);
      accountTransfer(D, Bytes);
      Res.noteCopy(B, devLoc(D));
      continue;
    }
    // Current version lives only on the other device: fetch through the
    // host (device-to-device goes via PCIe + host memory, as in OpenCL 1.x
    // without peer copies). The kernel waits for all fetches to land.
    size_t E = 1 - D;
    FCL_CHECK(Res.has(B, devLoc(E)), "buffer resident nowhere");
    ++FetchesLeft[N];
    Ctx.hostAdvance(Api);
    mcl::EventPtr Ev = Qs[E]->enqueueRead(
        *Bufs[B][E], Functional ? Stage[B].data() : nullptr, Bytes);
    accountTransfer(E, Bytes);
    Ev->onComplete([this, N, B, D, Bytes] {
      race::Section RaceS(RaceSec);
      Res.noteCopy(B, Loc::Host);
      Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
      Qs[D]->enqueueWrite(*Bufs[B][D],
                          Ctx.functional() ? Stage[B].data() : nullptr, Bytes);
      accountTransfer(D, Bytes);
      Res.noteCopy(B, devLoc(D));
      if (--FetchesLeft[N] == 0)
        enqueueKernelNode(N);
    });
  }
  if (--FetchesLeft[N] == 0)
    enqueueKernelNode(N);
}

void DagJobExec::enqueueKernelNode(size_t N) {
  const work::KernelCall &Call = W.Calls[N];
  size_t D = NodeDevice[N];
  Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
  mcl::LaunchDesc Desc;
  Desc.Kernel = &kern::Registry::builtin().get(Call.Kernel);
  Desc.Range = Call.Range;
  for (const runtime::KArg &A : Call.Args) {
    if (A.IsBuffer) {
      Desc.Args.push_back(mcl::LaunchArg::buffer(Bufs[A.Buf][D].get()));
    } else {
      mcl::LaunchArg L;
      L.IntValue = A.IntValue;
      L.FpValue = A.FpValue;
      Desc.Args.push_back(L);
    }
  }
  mcl::EventPtr Ev = Qs[D]->enqueueKernel(std::move(Desc));
  Ev->onComplete([this, N] {
    race::Section RaceS(RaceSec);
    onKernelComplete(N);
  });
}

void DagJobExec::onKernelComplete(size_t N) {
  const Node &Nd = G.node(N);
  size_t D = NodeDevice[N];
  BacklogNs[D] -= NodeEstNs[N];
  for (size_t B : Nd.Writes)
    Res.noteWrite(B, devLoc(D));
  if (Stats) {
    ++Stats->Nodes;
    ++(D == GpuIdx ? Stats->GpuNodes : Stats->CpuNodes);
  }
  if (Trace)
    Trace->record("Serve DAG", formatString("%s n%zu", Nd.Kernel.c_str(), N),
                  NodeStart[N], Ctx.now(),
                  formatString("dev=%s shape=%s", D == GpuIdx ? "gpu" : "cpu",
                               G.shapeName()));
  if (Place == Placement::Blind) {
    // Independent-job semantics: every output returns to the host before
    // any consumer may start, exactly what separate jobs would pay.
    bool Functional = Ctx.functional();
    for (size_t B : Nd.Writes) {
      Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
      Qs[D]->enqueueRead(*Bufs[B][D],
                         Functional ? Stage[B].data() : nullptr,
                         W.Buffers[B].Bytes);
      accountTransfer(D, W.Buffers[B].Bytes);
      Res.noteCopy(B, Loc::Host);
    }
    mcl::EventPtr Tail = Qs[D]->enqueueCallback([] {});
    Tail->onComplete([this, N] {
      race::Section RaceS(RaceSec);
      nodeRetired(N);
    });
    return;
  }
  nodeRetired(N);
}

void DagJobExec::nodeRetired(size_t N) {
  ++DoneN;
  for (size_t S : G.node(N).Succs)
    if (--Indegree[S] == 0)
      ReadyList.push_back(S);
  if (DoneN == G.size()) {
    finishDag();
    return;
  }
  pump();
}

void DagJobExec::finishDag() {
  bool Functional = Ctx.functional();
  for (size_t R = 0; R < W.ResultBuffers.size(); ++R) {
    size_t B = W.ResultBuffers[R];
    if (Res.has(B, Loc::Host)) {
      // Blind already read every output back per node; no further cost.
      if (Functional)
        Results[R] = Stage[B];
      continue;
    }
    size_t D = Res.has(B, devLoc(GpuIdx)) ? GpuIdx : CpuIdx;
    Ctx.hostAdvance(Ctx.machine().Host.ApiCallOverhead);
    Qs[D]->enqueueRead(*Bufs[B][D],
                       Functional ? Results[R].data() : nullptr,
                       W.Buffers[B].Bytes);
    accountTransfer(D, W.Buffers[B].Bytes);
    Res.noteCopy(B, Loc::Host);
  }
  TailsLeft = Qs.size();
  for (auto &Q : Qs) {
    mcl::EventPtr Tail = Q->enqueueCallback([] {});
    Tail->onComplete([this] {
      race::Section RaceS(RaceSec);
      if (--TailsLeft == 0)
        finishJob();
    });
  }
}

void DagJobExec::finishJob() {
  if (Validate && Ctx.functional())
    ValidationFailed = !serve::validateResults(W, Init, Results);
  FCL_CHECK(OnDone, "job finished twice");
  DoneFn Fn = std::move(OnDone);
  OnDone = nullptr;
  Fn();
}

// --- Placement scoring ------------------------------------------------------

double DagJobExec::xferNs(size_t D, uint64_t Bytes) const {
  const hw::Machine &M = Ctx.machine();
  if (pciePriced(D))
    return static_cast<double>(M.Pcie.transferTime(Bytes).nanos());
  return static_cast<double>(M.Host.memcpyTime(Bytes).nanos());
}

double DagJobExec::computeNs(size_t N, size_t D) const {
  const work::KernelCall &Call = W.Calls[N];
  const kern::KernelInfo &K = kern::Registry::builtin().get(Call.Kernel);
  kern::CostQuery Q;
  Q.Range = Call.Range;
  for (const runtime::KArg &A : Call.Args) {
    if (A.IsBuffer) {
      Q.Scalars.push_back(
          kern::ArgValue::buffer(nullptr, W.Buffers[A.Buf].Bytes));
    } else {
      kern::ArgValue V;
      V.IntValue = A.IntValue;
      V.FpValue = A.FpValue;
      Q.Scalars.push_back(V);
    }
  }
  hw::WorkItemCost C = K.Cost(Q);
  const hw::Machine &M = Ctx.machine();
  if (D == GpuIdx) {
    hw::AbortConfig NoAbort; // Unmodified kernel on one device.
    return static_cast<double>(
               hw::gpuWaveTime(M, C, NoAbort, Call.Range.totalItems())
                   .nanos()) +
           static_cast<double>(M.Gpu.KernelLaunchOverhead.nanos());
  }
  double Groups = static_cast<double>(Call.Range.totalGroups());
  double Units = static_cast<double>(M.Cpu.ComputeUnits);
  double PerWg = static_cast<double>(
      hw::cpuWorkGroupTime(M, C, Call.Range.itemsPerGroup()).nanos());
  return std::ceil(Groups / Units) * PerWg +
         static_cast<double>(M.Cpu.KernelLaunchOverhead.nanos()) +
         Groups * static_cast<double>(M.Cpu.WgDispatchOverhead.nanos()) /
             Units;
}

double DagJobExec::transferNs(size_t N, size_t D) const {
  // A residency-blind placer has no idea where data lives, so it cannot
  // price movement at all: it scores nodes on backlog + compute alone and
  // then eats the per-node host staging its ignorance implies.
  if (Place == Placement::Blind)
    return 0;
  const Node &Nd = G.node(N);
  double Total = 0;
  for (size_t B : Nd.Reads) {
    uint64_t Bytes = W.Buffers[B].Bytes;
    if (Res.has(B, devLoc(D)))
      continue;
    if (Res.has(B, Loc::Host)) {
      Total += xferNs(D, Bytes);
      continue;
    }
    Total += xferNs(1 - D, Bytes) + xferNs(D, Bytes); // Cross-device fetch.
  }
  return Total;
}

size_t DagJobExec::pickDevice(size_t N) const {
  double Sg = BacklogNs[GpuIdx] + transferNs(N, GpuIdx) + computeNs(N, GpuIdx);
  double Sc = BacklogNs[CpuIdx] + transferNs(N, CpuIdx) + computeNs(N, CpuIdx);
  return Sg <= Sc ? GpuIdx : CpuIdx; // Tie goes to the GPU.
}
