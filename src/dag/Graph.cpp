//===- dag/Graph.cpp - Kernel-launch dependence graphs --------------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dag/Graph.h"

#include "kern/Registry.h"
#include "support/Error.h"

#include <algorithm>

using namespace fcl;
using namespace fcl::dag;

namespace {

void pushUnique(std::vector<size_t> &V, size_t X) {
  if (std::find(V.begin(), V.end(), X) == V.end())
    V.push_back(X);
}

} // namespace

Graph Graph::fromWorkload(const work::Workload &W) {
  Graph G;
  const kern::Registry &Reg = kern::Registry::builtin();
  // Per-buffer versioning state: the launch that last wrote the buffer and
  // the launches that read that version since (WAR ordering).
  std::vector<int> LastWriter(W.Buffers.size(), -1);
  std::vector<std::vector<size_t>> ReadersSince(W.Buffers.size());

  for (size_t I = 0; I < W.Calls.size(); ++I) {
    const work::KernelCall &Call = W.Calls[I];
    const kern::KernelInfo &K = Reg.get(Call.Kernel);
    FCL_CHECK(K.Args.size() == Call.Args.size(),
              "kernel call argument count disagrees with the registry");
    Node Nd;
    Nd.Index = I;
    Nd.Kernel = Call.Kernel;
    Nd.Groups = Call.Range.totalGroups();
    for (size_t A = 0; A < Call.Args.size(); ++A) {
      if (!Call.Args[A].IsBuffer)
        continue;
      size_t B = static_cast<size_t>(Call.Args[A].Buf);
      FCL_CHECK(B < W.Buffers.size(), "buffer argument index out of range");
      kern::ArgAccess Acc = K.Args[A];
      if (Acc == kern::ArgAccess::In || Acc == kern::ArgAccess::InOut)
        pushUnique(Nd.Reads, B);
      if (kern::isWrittenAccess(Acc))
        pushUnique(Nd.Writes, B);
    }

    for (size_t B : Nd.Reads) // RAW
      if (LastWriter[B] >= 0)
        pushUnique(Nd.Deps, static_cast<size_t>(LastWriter[B]));
    for (size_t B : Nd.Writes) {
      if (LastWriter[B] >= 0) // WAW
        pushUnique(Nd.Deps, static_cast<size_t>(LastWriter[B]));
      for (size_t R : ReadersSince[B]) // WAR
        if (R != I)
          pushUnique(Nd.Deps, R);
    }
    std::sort(Nd.Deps.begin(), Nd.Deps.end());

    for (size_t B : Nd.Writes) {
      LastWriter[B] = static_cast<int>(I);
      ReadersSince[B].clear();
    }
    for (size_t B : Nd.Reads)
      ReadersSince[B].push_back(I);
    G.Nodes.push_back(std::move(Nd));
  }

  for (const Node &Nd : G.Nodes)
    for (size_t D : Nd.Deps)
      G.Nodes[D].Succs.push_back(Nd.Index);
  for (Node &Nd : G.Nodes)
    std::sort(Nd.Succs.begin(), Nd.Succs.end());
  return G;
}

size_t Graph::numEdges() const {
  size_t N = 0;
  for (const Node &Nd : Nodes)
    N += Nd.Deps.size();
  return N;
}

std::vector<size_t> Graph::roots() const {
  std::vector<size_t> R;
  for (const Node &Nd : Nodes)
    if (Nd.Deps.empty())
      R.push_back(Nd.Index);
  return R;
}

size_t Graph::maxParallelism() const {
  // ASAP leveling: a node's level is 1 + max level of its predecessors;
  // the widest level is the parallelism an ideal schedule can expose.
  std::vector<size_t> Level(Nodes.size(), 0);
  size_t MaxLevel = 0;
  for (const Node &Nd : Nodes) { // Nodes are in call (topological) order.
    size_t L = 0;
    for (size_t D : Nd.Deps)
      L = std::max(L, Level[D] + 1);
    Level[Nd.Index] = L;
    MaxLevel = std::max(MaxLevel, L);
  }
  size_t Widest = 0;
  for (size_t L = 0; L <= MaxLevel; ++L) {
    size_t Width = 0;
    for (size_t I = 0; I < Nodes.size(); ++I)
      if (Level[I] == L)
        ++Width;
    Widest = std::max(Widest, Width);
  }
  return Widest;
}

const char *Graph::shapeName() const {
  if (Nodes.size() <= 1)
    return "single";
  bool FanOut = false, FanIn = false;
  for (const Node &Nd : Nodes) {
    if (Nd.Succs.size() > 1)
      FanOut = true;
    if (Nd.Deps.size() > 1)
      FanIn = true;
  }
  if (maxParallelism() > 1 && !FanOut && !FanIn)
    return "fan-out"; // Independent branches (e.g. BICG's two kernels).
  if (FanOut && FanIn)
    return "dag";
  if (FanOut)
    return "fan-out";
  if (FanIn)
    return "fan-in";
  return "chain";
}
