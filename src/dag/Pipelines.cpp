//===- dag/Pipelines.cpp - Synthetic multi-kernel pipelines ---------------===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dag/Pipelines.h"

#include "kern/polybench/PolybenchKernels.h"
#include "support/Error.h"
#include "support/Format.h"

using namespace fcl;
using namespace fcl::dag;
using namespace fcl::kern::poly;
using runtime::KArg;

namespace {

// One N x N gemm launch: Out = alpha * A * B (+ 0 * Out). Beta is zero so
// the InOut output argument contributes nothing and every node is a pure
// product - the host reference still matches whatever the initial pseudo-
// random contents of Out were.
work::KernelCall gemmCall(size_t A, size_t B, size_t Out, int64_t N) {
  return {"gemm_kernel",
          kern::NDRange::of2D(static_cast<uint64_t>(N),
                              static_cast<uint64_t>(N), WgSizeX2D, WgSizeY2D),
          {KArg::buffer(static_cast<runtime::BufferId>(A)),
           KArg::buffer(static_cast<runtime::BufferId>(B)),
           KArg::buffer(static_cast<runtime::BufferId>(Out)), KArg::f64(1.1),
           KArg::f64(0.0), KArg::i64(N), KArg::i64(N), KArg::i64(N)}};
}

} // namespace

work::Workload fcl::dag::makeDiamond(int64_t N) {
  work::Workload W;
  W.Name = formatString("DIAMOND(%lld)", static_cast<long long>(N));
  W.Summary = "E = A B; F = E C; G = E D; H = F G - fan-out then fan-in";
  uint64_t Sq = static_cast<uint64_t>(N * N) * sizeof(float);
  W.Buffers = {{"A", Sq}, {"B", Sq}, {"C", Sq}, {"D", Sq},
               {"E", Sq}, {"F", Sq}, {"G", Sq}, {"H", Sq}};
  W.Calls = {
      gemmCall(0, 1, 4, N), // E = A B
      gemmCall(4, 2, 5, N), // F = E C
      gemmCall(4, 3, 6, N), // G = E D
      gemmCall(5, 6, 7, N), // H = F G
  };
  W.ResultBuffers = {7};
  return W;
}

work::Workload fcl::dag::makeFanout(int64_t N, int Width) {
  FCL_CHECK(Width >= 1, "fan-out width must be at least 1");
  work::Workload W;
  W.Name = formatString("FANOUT(%lldx%d)", static_cast<long long>(N), Width);
  W.Summary = "E = A B then Width independent products F_i = E C_i";
  uint64_t Sq = static_cast<uint64_t>(N * N) * sizeof(float);
  W.Buffers = {{"A", Sq}, {"B", Sq}, {"E", Sq}};
  for (int I = 0; I < Width; ++I)
    W.Buffers.push_back({formatString("C%d", I), Sq});
  for (int I = 0; I < Width; ++I)
    W.Buffers.push_back({formatString("F%d", I), Sq});
  W.Calls = {gemmCall(0, 1, 2, N)}; // E = A B
  for (int I = 0; I < Width; ++I) {
    size_t C = 3 + static_cast<size_t>(I);
    size_t F = 3 + static_cast<size_t>(Width) + static_cast<size_t>(I);
    W.Calls.push_back(gemmCall(2, C, F, N)); // F_i = E C_i
    W.ResultBuffers.push_back(F);
  }
  return W;
}
