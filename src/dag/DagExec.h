//===- dag/DagExec.h - Compound-job DAG executor ----------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes one compound serve job - a dag::Graph over a work::Workload -
/// cooperatively across the CPU+GPU pair without ever blocking the
/// simulator. Each ready node is placed on the device minimizing estimated
/// completion time (queue backlog + missing-input transfers + modeled
/// compute); with Placement::Residency, inputs already resident where the
/// node runs skip their transfers entirely, which is the subsystem's whole
/// point: dependent kernels placed at their producer pay zero PCIe cost for
/// the produced data. Placement::Blind is the independent-jobs baseline -
/// every node uploads its inputs from the host and reads its outputs back,
/// exactly what submitting each kernel as its own serve job costs.
///
/// Independent branches overlap: the executor owns one in-order queue per
/// device and launches every dependency-satisfied node immediately, so a
/// fan-out DAG keeps both devices busy at once.
///
//===----------------------------------------------------------------------===//

#ifndef FCL_DAG_DAGEXEC_H
#define FCL_DAG_DAGEXEC_H

#include "dag/Graph.h"
#include "dag/Residency.h"
#include "serve/JobExec.h"

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

namespace fcl {
namespace trace {
class Tracer;
}

namespace dag {

/// Runs one DAG job across both devices; plugs into serve::JobExec like the
/// cooperative and single-device executors.
class DagJobExec final : public serve::JobExec {
public:
  /// \p G must describe \p W and both must outlive the executor. \p Stats
  /// (optional) accumulates transfer/node accounting across jobs; \p Trace
  /// (optional) gets one "Serve DAG" slice per node.
  DagJobExec(mcl::Context &Ctx, const work::Workload &W, const Graph &G,
             Placement Place, bool Validate, DagStats *Stats,
             trace::Tracer *Trace);
  ~DagJobExec() override;

  void start(DoneFn OnDone) override;

private:
  static constexpr size_t GpuIdx = 0;
  static constexpr size_t CpuIdx = 1;
  static Loc devLoc(size_t D) { return D == GpuIdx ? Loc::Gpu : Loc::Cpu; }

  void pump();
  void launchNode(size_t N);
  void enqueueKernelNode(size_t N);
  void onKernelComplete(size_t N);
  void nodeRetired(size_t N);
  void finishDag();
  void finishJob();

  /// Whether transfers touching device \p D cross the PCIe link.
  bool pciePriced(size_t D) const;
  void accountTransfer(size_t D, uint64_t Bytes);
  /// Ensures a device buffer exists for workload buffer \p B on \p D.
  mcl::Buffer &deviceBuf(size_t B, size_t D);

  /// Estimated nanoseconds to run node \p N's kernel on device \p D.
  double computeNs(size_t N, size_t D) const;
  /// Estimated nanoseconds of input (and, blind, output) transfers node
  /// \p N pays when placed on \p D, given current residency.
  double transferNs(size_t N, size_t D) const;
  /// Estimated nanoseconds to move \p Bytes to or from device \p D.
  double xferNs(size_t D, uint64_t Bytes) const;
  size_t pickDevice(size_t N) const;

  mcl::Context &Ctx;
  const work::Workload &W;
  const Graph &G;
  Placement Place;
  bool Validate;
  DagStats *Stats;
  trace::Tracer *Trace;

  std::array<std::unique_ptr<mcl::CommandQueue>, 2> Qs;
  /// One lazily-created device buffer per workload buffer per device.
  std::vector<std::array<std::unique_ptr<mcl::Buffer>, 2>> Bufs;
  /// Pristine initial host data, kept aside for validation (the host
  /// reference executes in place and must start from the same inputs).
  std::vector<std::vector<std::byte>> Init; // Functional mode only.
  /// Host-side transfer medium: uploads source from it, fetches and final
  /// reads land in it.
  std::vector<std::vector<std::byte>> Stage; // Functional mode only.
  std::vector<std::vector<std::byte>> Results;

  ResidencyTracker Res;
  std::vector<size_t> Indegree;
  std::vector<size_t> NodeDevice;
  std::vector<TimePoint> NodeStart;
  std::vector<double> NodeEstNs;
  /// Cross-device input fetches still in flight before the node's kernel
  /// can be enqueued.
  std::vector<size_t> FetchesLeft;
  std::vector<size_t> ReadyList;
  bool Pumping = false;
  /// Estimated nanoseconds of work already committed to each device.
  double BacklogNs[2] = {0, 0};
  size_t DoneN = 0;
  size_t TailsLeft = 0;
  DoneFn OnDone;
  /// fcl::race critical-section name: callbacks from both device queues
  /// mutate this executor's state.
  std::string RaceSec;
};

} // namespace dag
} // namespace fcl

#endif // FCL_DAG_DAGEXEC_H
