//===- hw/CostModel.h - Analytic kernel cost model --------------*- C++ -*-===//
//
// Part of the FluidiCL reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Roofline-style analytic timing for kernels on the simulated devices.
/// Each kernel describes its per-work-item arithmetic and memory traffic
/// plus device-efficiency factors (coalescing on the GPU, scalarization on
/// the CPU); the cost model turns that into wave times (GPU) and per-work-
/// group times (CPU), including the overhead of FluidiCL's abort checks and
/// the penalty of losing loop unrolling (paper sections 6.4/6.5).
///
//===----------------------------------------------------------------------===//

#ifndef FCL_HW_COSTMODEL_H
#define FCL_HW_COSTMODEL_H

#include "hw/Machine.h"
#include "support/SimTime.h"

#include <cstdint>

namespace fcl {
namespace hw {

/// Per-work-item execution characteristics of a kernel. The values may
/// depend on kernel arguments (e.g. the dot-product length), so kernels
/// produce a WorkItemCost per launch.
struct WorkItemCost {
  /// Arithmetic operations per work-item.
  double Flops = 0;
  /// Global-memory bytes read per work-item.
  double BytesRead = 0;
  /// Global-memory bytes written per work-item.
  double BytesWritten = 0;
  /// Fraction of GPU memory bandwidth achieved (coalescing quality).
  double GpuCoalescing = 1.0;
  /// GPU ALU utilization (divergence, ILP limits).
  double GpuEfficiency = 1.0;
  /// CPU arithmetic efficiency relative to the CpuModel scalar rate.
  double CpuFlopEfficiency = 1.0;
  /// Fraction of CPU memory bandwidth achieved (cache friendliness).
  double CpuMemEfficiency = 1.0;
  /// Innermost-loop trip count per work-item; bounds how often in-loop
  /// abort checks execute and where a wave can terminate early.
  double LoopTripCount = 1;
  /// Arithmetic multiplier applied on the GPU when in-loop abort checks
  /// suppress compiler loop unrolling (paper section 6.5).
  double NoUnrollPenalty = 1.0;
  /// GPU efficiency multiplier for the FluidiCL-transformed kernel (the
  /// paper observes improved GPU cache behaviour for modified SYRK code,
  /// making its speedup exceed the raw rate split - section 9.1).
  double GpuModifiedKernelBonus = 1.0;
};

/// Where the FluidiCL-transformed GPU kernel checks the CPU status word.
enum class AbortPolicyKind {
  /// Unmodified kernel: never aborts (single-device baselines).
  None,
  /// Check only at work-group start (paper's NoAbortUnroll configuration).
  AtStart,
  /// Checks at work-group start and inside innermost loops (section 6.4).
  InLoop,
};

/// Abort-check configuration for a GPU kernel launch.
struct AbortConfig {
  AbortPolicyKind Kind = AbortPolicyKind::None;
  /// Whether manual loop unrolling is applied after in-loop checks
  /// (section 6.5). Ignored unless Kind == InLoop.
  bool Unroll = true;
  /// Iterations fused per abort check when unrolling.
  int UnrollFactor = 8;
};

/// Number of abort checks one work-item executes under \p Config.
double abortChecksPerItem(const WorkItemCost &Cost, const AbortConfig &Config);

/// Effective per-item GPU arithmetic including abort-check overhead and the
/// no-unroll penalty, in FLOP-equivalents.
double gpuEffectiveFlopsPerItem(const GpuModel &Gpu, const WorkItemCost &Cost,
                                const AbortConfig &Config);

/// Time for the GPU to execute \p Items work-items at full wave occupancy.
Duration gpuWaveTime(const Machine &M, const WorkItemCost &Cost,
                     const AbortConfig &Config, uint64_t Items);

/// Number of early-termination checkpoints inside one in-flight GPU wave.
/// 1 means a started wave always runs to completion (no in-loop aborts).
int gpuWaveCheckpoints(const WorkItemCost &Cost, const AbortConfig &Config);

/// Time for one CPU compute unit to execute one work-group of \p Items
/// work-items (memory bandwidth shared across all compute units).
Duration cpuWorkGroupTime(const Machine &M, const WorkItemCost &Cost,
                          uint64_t Items);

/// Time for the GPU to diff+merge \p Bytes of CPU-computed data against the
/// original buffer (paper section 4.3): reads cpu_buf and orig, worst-case
/// writes gpu_buf, fully coalesced.
Duration gpuMergeTime(const Machine &M, uint64_t Bytes);

} // namespace hw
} // namespace fcl

#endif // FCL_HW_COSTMODEL_H
